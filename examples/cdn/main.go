// CDN: content distribution with PAST's caching (section 4). A small
// publisher inserts popular content once; clients clustered at 8 sites
// fetch it repeatedly. GreedyDual-Size caching on the nodes along the
// lookup routes absorbs the query load and collapses fetch distance —
// the paper's Figure 8 effect, shown live.
//
//	go run ./examples/cdn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"past/internal/cache"
	"past/internal/id"
	"past/internal/past"
	"past/internal/stats"
)

func run(policy cache.Policy) (meanHops float64, hitRate float64) {
	cfg := past.DefaultConfig()
	cfg.CachePolicy = policy

	cluster, err := past.NewCluster(past.ClusterSpec{
		N:                 120,
		Cfg:               cfg,
		Capacity:          func(int, *rand.Rand) int64 { return 4 << 20 },
		Seed:              23,
		ProximityClusters: 8, // clients cluster at 8 sites, like the trace
	})
	if err != nil {
		log.Fatal(err)
	}

	// The publisher inserts a catalogue of 200 items with Zipf
	// popularity (rank 0 hottest).
	rng := rand.New(rand.NewSource(23))
	publisher := cluster.Nodes[0]
	ids := make([]struct {
		fid  id.File
		size int64
	}, 200)
	for i := range ids {
		size := int64(1024 + rng.Intn(64<<10))
		res, err := publisher.Insert(past.InsertSpec{
			Name: fmt.Sprintf("asset-%03d.bin", i),
			Size: size,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.OK {
			log.Fatalf("publish %d failed: %s", i, res.Reason)
		}
		ids[i].fid = res.FileID
		ids[i].size = size
	}

	// 6000 fetches with Zipf popularity from random clients.
	zipf := stats.NewZipf(len(ids), 0.9)
	var hops, hits, n float64
	for i := 0; i < 6000; i++ {
		item := ids[zipf.Rank(rng)]
		client := cluster.Nodes[rng.Intn(len(cluster.Nodes))]
		got, err := client.Lookup(item.fid)
		if err != nil {
			log.Fatal(err)
		}
		if !got.Found {
			log.Fatal("published asset missing")
		}
		n++
		hops += float64(got.Hops)
		if got.FromCache {
			hits++
		}
	}
	return hops / n, hits / n
}

func main() {
	fmt.Println("content distribution: 120 nodes, 200 assets, 6000 Zipf-popular fetches")
	for _, pol := range []cache.Policy{cache.None, cache.LRU, cache.GDS} {
		hops, hit := run(pol)
		fmt.Printf("  %-5s caching: mean fetch distance %.2f hops, cache hit rate %.1f%%\n",
			pol, hops, 100*hit)
	}
	fmt.Println("caching absorbs the query load for popular content and cuts fetch distance")
}
