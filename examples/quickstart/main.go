// Quickstart: build an emulated PAST network, insert a file, look it up
// from another node, and reclaim it — the full client API in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"past/internal/past"
)

func main() {
	// A 50-node network, every node advertising 16 MB of storage. The
	// defaults are the paper's: k=5 replicas, b=4, l=32, tpri=0.1,
	// tdiv=0.05, GreedyDual-Size caching.
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        50,
		Cfg:      past.DefaultConfig(),
		Capacity: func(i int, r *rand.Rand) int64 { return 16 << 20 },
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %d-node PAST network (total capacity %d MB)\n",
		len(cluster.Nodes), cluster.TotalCapacity()>>20)

	// Any node is an access point. Insert a file through one of them.
	ap := cluster.Nodes[3]
	content := []byte("PAST stores k replicas on the k nodes closest to the fileId.")
	res, err := ap.Insert(past.InsertSpec{Name: "hello.txt", Content: content})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %q: fileId=%s, %d replicas (%d diverted), %d routing hops\n",
		"hello.txt", res.FileID.Short(), res.Stored, res.Diverted, res.Hops)

	// Retrieve it from a different access point; Pastry routes the
	// lookup to a nearby replica.
	got, err := cluster.Nodes[40].Lookup(res.FileID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup: found=%v size=%d hops=%d cached=%v\n",
		got.Found, got.Size, got.Hops, got.FromCache)
	fmt.Printf("content: %s\n", got.Content)

	// A second lookup from the same node is served by the cached copy
	// the first one left behind.
	again, err := cluster.Nodes[40].Lookup(res.FileID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat lookup: hops=%d cached=%v\n", again.Hops, again.FromCache)

	// Reclaim releases the replicas' storage (weaker than delete:
	// cached copies may briefly survive).
	rec, err := ap.Reclaim(res.FileID, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reclaimed %d bytes across the replica set\n", rec.Freed)
}
