// Squid replay: drive PAST with a real web-proxy access log — the
// exact input format of the paper's NLANR evaluation. Anyone holding
// such logs can reproduce the paper's experiments on their own data;
// this example writes a small synthetic log in squid format, parses it
// back, and replays it (first URL reference inserts, repeats look up),
// reporting utilization, hit rate, and fetch distance.
//
//	go run ./examples/squidreplay [access.log]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"past/internal/past"
	"past/internal/pastry"
	"past/internal/stats"
	"past/internal/trace"
)

func main() {
	var records []trace.SquidRecord
	var err error
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		records, err = trace.ReadSquidLog(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("parsed %d records from %s\n", len(records), os.Args[1])
	} else {
		records, err = trace.ReadSquidLog(strings.NewReader(syntheticLog()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no log given; generated %d synthetic squid records\n", len(records))
	}

	w, err := trace.FromSquid(records, 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d events, %d unique URLs, %d clients, %.1f MB content\n",
		len(w.Events), w.Files, w.Clients, float64(w.TotalBytes)/(1<<20))

	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	// Size the network so the workload lands around 90% utilization.
	perNode := w.TotalBytes * int64(cfg.K) * 10 / 9 / 20
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:                 20,
		Cfg:               cfg,
		Capacity:          func(int, *rand.Rand) int64 { return perNode },
		Seed:              99,
		ProximityClusters: w.Sites,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Map trace clients onto nodes round-robin by site.
	clientNode := make([]*past.Node, w.Clients)
	for c := 0; c < w.Clients; c++ {
		clientNode[c] = cluster.Nodes[(int(w.SiteOf[c])*5+c)%len(cluster.Nodes)]
	}

	fileIDs := make(map[int32][20]byte)
	var lookups, hits, hops, failed int
	for _, ev := range w.Events {
		node := clientNode[ev.Client]
		switch ev.Op {
		case trace.OpInsert:
			res, err := node.Insert(past.InsertSpec{
				Name: trace.FileName(ev.File), Size: ev.Size, Salt: uint64(ev.File) + 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.OK {
				fileIDs[ev.File] = res.FileID
			} else {
				failed++
			}
		case trace.OpLookup:
			fid, ok := fileIDs[ev.File]
			if !ok {
				continue
			}
			res, err := node.Lookup(fid)
			if err != nil {
				log.Fatal(err)
			}
			if res.Found {
				lookups++
				hops += res.Hops
				if res.FromCache {
					hits++
				}
			}
		}
	}
	fmt.Printf("replay done: utilization %.1f%%, %d failed inserts\n",
		100*cluster.Utilization(), failed)
	if lookups > 0 {
		fmt.Printf("lookups: %d, cache hit rate %.1f%%, mean fetch distance %.2f hops\n",
			lookups, 100*float64(hits)/float64(lookups), float64(hops)/float64(lookups))
	}
}

// syntheticLog fabricates a squid-format access log with Zipf-popular
// URLs from 32 clients.
func syntheticLog() string {
	r := stats.NewRand(7)
	z := stats.NewZipf(2000, 0.8)
	sizes := make([]int64, 2000)
	// Modest sizes keep the toy 40-node network in the regime where
	// most files fit (the paper ran 2250 nodes at 1000x the capacity).
	ln := stats.LogNormalFromMedianMean(300, 2400)
	for i := range sizes {
		sizes[i] = int64(ln.Sample(r)) + 1
	}
	var b strings.Builder
	b.WriteString("# synthetic squid access.log\n")
	for i := 0; i < 12000; i++ {
		u := z.Rank(r)
		fmt.Fprintf(&b, "%d.%03d %d 10.0.%d.%d TCP_MISS/200 %d GET http://synthetic.example/obj%d - DIRECT/1.2.3.4 text/html\n",
			983836800+i, r.Intn(1000), 50+r.Intn(400),
			r.Intn(8), 1+r.Intn(4), sizes[u], u)
	}
	return b.String()
}
