// Churn: a live demonstration of the storage invariant under node
// arrival, failure, and recovery (section 3.5). Files are inserted,
// then the network churns for several epochs — nodes fail, new nodes
// join, failed nodes recover — while every file stays retrievable and
// the "k replicas (or diverted-replica pointers) on the k closest
// nodes" invariant is re-established after every epoch.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"past/internal/id"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/topology"
)

func main() {
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3

	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        60,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return 8 << 20 },
		Seed:     31,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	client := cluster.Nodes[0]

	var files []id.File
	for i := 0; i < 80; i++ {
		res, err := client.Insert(past.InsertSpec{
			Name: fmt.Sprintf("doc-%03d", i),
			Size: int64(1024 + rng.Intn(16<<10)),
		})
		if err != nil || !res.OK {
			log.Fatalf("insert %d: %v %+v", i, err, res)
		}
		files = append(files, res.FileID)
	}
	fmt.Printf("inserted %d files into a %d-node network\n", len(files), len(cluster.Nodes))

	downLeaf := make(map[id.Node][]id.Node) // failed node -> last leaf set
	for epoch := 1; epoch <= 4; epoch++ {
		// Fail two random nodes (never the client).
		alive := cluster.Net.AliveNodes()
		rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		failed := 0
		for _, nid := range alive {
			if nid == client.ID() {
				continue
			}
			downLeaf[nid] = cluster.ByID[nid].Overlay().LeafSet()
			cluster.Fail(nid)
			failed++
			if failed == 2 {
				break
			}
		}

		// One previously failed node recovers (if any are down).
		recovered := 0
		for nid, leaf := range downLeaf {
			cluster.Recover(nid)
			if err := cluster.ByID[nid].Overlay().Rejoin(leaf); err != nil {
				log.Fatalf("epoch %d: rejoin: %v", epoch, err)
			}
			delete(downLeaf, nid)
			recovered++
			break
		}

		// A brand-new node joins.
		var nid id.Node
		rng.Read(nid[:])
		newcomer := past.New(nid, cluster.Net, cfg, 8<<20, rng.Int63())
		pos := topology.DefaultPlane.RandomPoint(rng)
		cluster.Net.Register(nid, pos, newcomer)
		boot := cluster.Net.AliveNodes()[0]
		if err := newcomer.Overlay().Join(boot); err != nil {
			log.Fatalf("epoch %d: join: %v", epoch, err)
		}
		cluster.Nodes = append(cluster.Nodes, newcomer)
		cluster.ByID[nid] = newcomer

		// Keep-alive rounds repair leaf sets; the repairs trigger the
		// replica maintenance of section 3.5.
		cluster.Maintain()
		cluster.Maintain()

		// Verify: every file retrievable AND the invariant holds.
		for _, f := range files {
			got, err := client.Lookup(f)
			if err != nil || !got.Found {
				log.Fatalf("epoch %d: file %s lost: %v", epoch, f.Short(), err)
			}
			for _, owner := range cluster.GlobalClosest(f.Key(), cfg.K) {
				n := cluster.ByID[owner]
				if n.HasReplica(f) {
					continue
				}
				if target, ok := n.HasPointer(f); ok && cluster.Net.Alive(target) && cluster.ByID[target].HasReplica(f) {
					continue
				}
				log.Fatalf("epoch %d: invariant broken at %s for %s", epoch, owner.Short(), f.Short())
			}
		}
		fmt.Printf("epoch %d: -%d failed, +1 joined, +%d recovered -> invariant holds, all %d files retrievable\n",
			epoch, failed, recovered, len(files))
	}
	fmt.Println("storage invariants maintained throughout the churn (paper, section 5)")
}
