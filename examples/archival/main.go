// Archival: the paper's motivating use case — backup without physical
// media transport. A client with a smartcard archives a directory's
// worth of files under a storage quota, the network loses nodes, and
// every archive remains retrievable and verifiable because PAST
// maintains k diverse replicas per file and re-replicates after
// failures.
//
//	go run ./examples/archival
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"past/internal/cert"
	"past/internal/id"
	"past/internal/past"
	"past/internal/pastry"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A certificate authority (the smartcard issuer) and a user card
	// with a 64 MB storage quota.
	issuer, err := cert.NewIssuer(rng)
	if err != nil {
		log.Fatal(err)
	}
	card, err := issuer.IssueCard(rng, 64<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Certificate verification on: storage nodes check file
	// certificates before accepting replicas, and lookups verify
	// content hashes end to end.
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	cfg.VerifyCerts = true
	cfg.Issuer = issuer.PublicKey()

	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        40,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return 8 << 20 },
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Storage nodes need smartcards of their own to issue store and
	// reclaim receipts.
	for _, n := range cluster.Nodes {
		nodeCard, err := issuer.IssueCard(rng, 0)
		if err != nil {
			log.Fatal(err)
		}
		n.SetSmartcard(nodeCard)
	}

	// Archive a batch of files.
	type archive struct {
		name    string
		content []byte
		fid     id.File
	}
	var archives []archive
	ap := cluster.Nodes[0]
	for i := 0; i < 12; i++ {
		a := archive{name: fmt.Sprintf("backup/2001-11/vol%02d.tar", i)}
		a.content = make([]byte, 4096+rng.Intn(32768))
		rng.Read(a.content)
		res, err := ap.Insert(past.InsertSpec{Name: a.name, Content: a.content, Owner: card})
		if err != nil {
			log.Fatal(err)
		}
		if !res.OK {
			log.Fatalf("archive %s rejected: %s", a.name, res.Reason)
		}
		// The store receipts prove k replicas exist.
		if len(res.Receipts) != cfg.K {
			log.Fatalf("expected %d store receipts, got %d", cfg.K, len(res.Receipts))
		}
		a.fid = res.FileID
		archives = append(archives, a)
	}
	fmt.Printf("archived %d files; quota used %d of %d bytes\n",
		len(archives), card.Quota().Used(), card.Quota().Limit())

	// Disaster strikes: five storage nodes fail.
	alive := cluster.Net.AliveNodes()
	rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	failed := 0
	for _, nid := range alive {
		if nid == ap.ID() {
			continue
		}
		cluster.Fail(nid)
		failed++
		if failed == 5 {
			break
		}
	}
	cluster.Maintain() // keep-alive rounds detect failures...
	cluster.Maintain() // ...and maintenance re-creates lost replicas
	fmt.Printf("%d nodes failed; leaf sets repaired and replicas re-created\n", failed)

	// Every archive is still retrievable, from any access point, and
	// the content is verified against the file certificate's hash.
	for _, a := range archives {
		got, err := cluster.RandomAliveNode().Lookup(a.fid)
		if err != nil {
			log.Fatal(err)
		}
		if !got.Found || !bytes.Equal(got.Content, a.content) {
			log.Fatalf("archive %s lost or corrupted", a.name)
		}
	}
	fmt.Printf("all %d archives verified intact after the failures\n", len(archives))

	// Retire one archive; the reclaim credits the quota.
	before := card.Quota().Used()
	if _, err := ap.Reclaim(archives[0].fid, card); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reclaimed %q: quota %d -> %d bytes\n",
		archives[0].name, before, card.Quota().Used())
}
