// Package frag layers file fragmentation and erasure coding on top of
// PAST — the recourse the paper prescribes for failed inserts ("an
// application may choose to retry the operation with a smaller file
// size, e.g. by fragmenting the file, and/or a smaller number of
// replicas", section 3.4) and the file-encoding direction it leaves as
// future work (section 3.6).
//
// A large file is split into fragments, each inserted as an independent
// PAST file; a manifest recording the fragment fileIds is inserted last
// and its fileId identifies the whole object. Two redundancy modes:
//
//   - Replicated: each fragment carries PAST's usual k replicas; all
//     fragments are needed to reassemble.
//   - ReedSolomon: fragments are RS(n, m) coded and inserted with k=1;
//     any n of the n+m fragments reassemble the file. Storage overhead
//     falls from k to (n+m)/n at equivalent loss tolerance, exactly the
//     trade-off section 3.6 sketches.
//
// Because each fragment has its own fileId, fragments scatter uniformly
// over the nodeId space, so a file too large for any single node's
// acceptance policy can still be stored at high global utilization, and
// retrieval parallelizes across nodes (the striping benefit the paper
// notes).
package frag

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"

	"past/internal/id"
	"past/internal/past"
	"past/internal/rs"
)

// Mode selects the redundancy scheme.
type Mode uint8

// Redundancy modes.
const (
	// Replicated stores each fragment with PAST's k replicas.
	Replicated Mode = iota
	// ReedSolomon stores RS-coded fragments with a single replica each.
	ReedSolomon
)

func (m Mode) String() string {
	if m == ReedSolomon {
		return "reed-solomon"
	}
	return "replicated"
}

// Errors returned by the fragment store.
var (
	ErrManifest   = errors.New("frag: malformed manifest")
	ErrFragment   = errors.New("frag: fragment unavailable or corrupt")
	ErrInsert     = errors.New("frag: fragment insertion failed")
	ErrBadOptions = errors.New("frag: invalid options")
)

// Options configures a Store.
type Options struct {
	// FragmentSize is the maximum fragment payload (default 64 KiB).
	FragmentSize int
	// Mode selects replication or RS coding.
	Mode Mode
	// DataShards/ParityShards configure RS(n, m) (defaults 8 and 4,
	// tolerating 4 losses at 1.5x storage).
	DataShards, ParityShards int
	// K overrides the replication factor for Replicated fragments and
	// the manifest (0: node default).
	K int
}

func (o Options) withDefaults() Options {
	if o.FragmentSize == 0 {
		o.FragmentSize = 64 << 10
	}
	if o.DataShards == 0 {
		o.DataShards = 8
	}
	if o.ParityShards == 0 {
		o.ParityShards = 4
	}
	return o
}

// Store fragments and reassembles files through a PAST access point.
type Store struct {
	node *past.Node
	opt  Options
	enc  *rs.Encoder
}

// NewStore creates a fragment store over the given access point.
func NewStore(node *past.Node, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if opt.FragmentSize < 1 {
		return nil, fmt.Errorf("%w: fragment size %d", ErrBadOptions, opt.FragmentSize)
	}
	s := &Store{node: node, opt: opt}
	if opt.Mode == ReedSolomon {
		enc, err := rs.New(opt.DataShards, opt.ParityShards)
		if err != nil {
			return nil, err
		}
		s.enc = enc
	}
	return s, nil
}

// manifest is the metadata object stored in PAST under the object's
// name; its fileId identifies the whole fragmented object. In RS mode
// the file is coded in groups of Data x GroupUnit bytes, each group
// yielding Data+Parity fragments (FragIDs is group-major), so every
// group independently tolerates Parity losses while fragments stay
// near the configured fragment size.
type manifest struct {
	Mode      Mode
	Size      int64 // original file size
	Data      int32 // RS data shards per group
	Parity    int32 // RS parity shards per group
	Groups    int32 // RS groups (1 in Replicated mode)
	GroupUnit int32 // RS shard payload unit (the configured FragmentSize)
	Sum       [20]byte
	FragIDs   []id.File
}

const manifestMagic = "PASTFRAG2"

func (m *manifest) encode() []byte {
	var b bytes.Buffer
	b.WriteString(manifestMagic)
	b.WriteByte(byte(m.Mode))
	binary.Write(&b, binary.BigEndian, m.Size)
	binary.Write(&b, binary.BigEndian, m.Data)
	binary.Write(&b, binary.BigEndian, m.Parity)
	binary.Write(&b, binary.BigEndian, m.Groups)
	binary.Write(&b, binary.BigEndian, m.GroupUnit)
	b.Write(m.Sum[:])
	binary.Write(&b, binary.BigEndian, int32(len(m.FragIDs)))
	for _, f := range m.FragIDs {
		b.Write(f[:])
	}
	return b.Bytes()
}

func decodeManifest(raw []byte) (*manifest, error) {
	r := bytes.NewReader(raw)
	magic := make([]byte, len(manifestMagic))
	if _, err := r.Read(magic); err != nil || string(magic) != manifestMagic {
		return nil, ErrManifest
	}
	var m manifest
	mode, err := r.ReadByte()
	if err != nil {
		return nil, ErrManifest
	}
	m.Mode = Mode(mode)
	for _, dst := range []any{&m.Size, &m.Data, &m.Parity, &m.Groups, &m.GroupUnit} {
		if err := binary.Read(r, binary.BigEndian, dst); err != nil {
			return nil, ErrManifest
		}
	}
	if _, err := r.Read(m.Sum[:]); err != nil {
		return nil, ErrManifest
	}
	var n int32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil || n < 0 || int(n) > r.Len()/id.FileBytes {
		return nil, ErrManifest
	}
	m.FragIDs = make([]id.File, n)
	for i := range m.FragIDs {
		if _, err := r.Read(m.FragIDs[i][:]); err != nil {
			return nil, ErrManifest
		}
	}
	return &m, nil
}

// Result reports a fragmented insertion.
type Result struct {
	// ManifestID retrieves the object.
	ManifestID id.File
	// Fragments is the number of fragment files inserted.
	Fragments int
	// StoredBytes is the total replica bytes consumed (fragments x
	// replication), for overhead comparisons.
	StoredBytes int64
}

// Insert fragments content and stores it under name. The returned
// manifest id retrieves the object with Fetch.
func (s *Store) Insert(name string, content []byte) (*Result, error) {
	if len(content) == 0 {
		return nil, fmt.Errorf("%w: empty content", ErrBadOptions)
	}
	m := &manifest{
		Mode: s.opt.Mode,
		Size: int64(len(content)),
		Sum:  sha1.Sum(content),
	}

	var frags [][]byte
	fragK := s.opt.K
	switch s.opt.Mode {
	case Replicated:
		for off := 0; off < len(content); off += s.opt.FragmentSize {
			end := off + s.opt.FragmentSize
			if end > len(content) {
				end = len(content)
			}
			frags = append(frags, content[off:end])
		}
		m.Groups = 1
	case ReedSolomon:
		// Code the file in groups of DataShards x FragmentSize so
		// fragments stay near the configured size regardless of the
		// file size; each group independently tolerates ParityShards
		// losses.
		groupBytes := s.opt.DataShards * s.opt.FragmentSize
		for off := 0; off < len(content); off += groupBytes {
			end := off + groupBytes
			if end > len(content) {
				end = len(content)
			}
			shards, err := s.enc.Split(content[off:end])
			if err != nil {
				return nil, err
			}
			if err := s.enc.Encode(shards); err != nil {
				return nil, err
			}
			frags = append(frags, shards...)
			m.Groups++
		}
		m.Data = int32(s.opt.DataShards)
		m.Parity = int32(s.opt.ParityShards)
		m.GroupUnit = int32(s.opt.FragmentSize)
		fragK = 1 // redundancy comes from parity shards, not replicas
	default:
		return nil, fmt.Errorf("%w: mode %d", ErrBadOptions, s.opt.Mode)
	}

	res := &Result{Fragments: len(frags)}
	for i, f := range frags {
		ins, err := s.node.Insert(past.InsertSpec{
			Name:    fmt.Sprintf("%s#frag%d", name, i),
			Content: f,
			K:       fragK,
		})
		if err != nil {
			return nil, err
		}
		if !ins.OK {
			return nil, fmt.Errorf("%w: fragment %d of %d: %s", ErrInsert, i, len(frags), ins.Reason)
		}
		m.FragIDs = append(m.FragIDs, ins.FileID)
		res.StoredBytes += int64(len(f)) * int64(ins.Stored)
	}

	man, err := s.node.Insert(past.InsertSpec{Name: name, Content: m.encode(), K: s.opt.K})
	if err != nil {
		return nil, err
	}
	if !man.OK {
		return nil, fmt.Errorf("%w: manifest: %s", ErrInsert, man.Reason)
	}
	res.ManifestID = man.FileID
	res.StoredBytes += int64(len(m.encode())) * int64(man.Stored)
	return res, nil
}

// Fetch retrieves and reassembles the object behind a manifest id. In
// ReedSolomon mode it succeeds as long as any DataShards fragments
// survive; missing shards are reconstructed.
func (s *Store) Fetch(manifestID id.File) ([]byte, error) {
	lk, err := s.node.Lookup(manifestID)
	if err != nil {
		return nil, err
	}
	if !lk.Found {
		return nil, fmt.Errorf("%w: manifest %s not found", ErrManifest, manifestID.Short())
	}
	m, err := decodeManifest(lk.Content)
	if err != nil {
		return nil, err
	}

	switch m.Mode {
	case Replicated:
		var out []byte
		for i, fid := range m.FragIDs {
			fr, err := s.node.Lookup(fid)
			if err != nil {
				return nil, err
			}
			if !fr.Found {
				return nil, fmt.Errorf("%w: fragment %d (%s)", ErrFragment, i, fid.Short())
			}
			out = append(out, fr.Content...)
		}
		return s.verify(m, out)
	case ReedSolomon:
		enc, err := rs.New(int(m.Data), int(m.Parity))
		if err != nil {
			return nil, err
		}
		perGroup := int(m.Data) + int(m.Parity)
		if int(m.Groups)*perGroup != len(m.FragIDs) || m.Groups < 1 || m.GroupUnit < 1 {
			return nil, ErrManifest
		}
		groupBytes := int(m.Data) * int(m.GroupUnit)
		var out []byte
		for g := 0; g < int(m.Groups); g++ {
			shards := make([][]byte, perGroup)
			present := 0
			for i := 0; i < perGroup; i++ {
				fid := m.FragIDs[g*perGroup+i]
				fr, err := s.node.Lookup(fid)
				if err != nil || !fr.Found {
					continue // erasure; RS absorbs up to Parity per group
				}
				shards[i] = fr.Content
				present++
			}
			if present < int(m.Data) {
				return nil, fmt.Errorf("%w: group %d has %d of %d fragments, need %d",
					ErrFragment, g, present, perGroup, m.Data)
			}
			if err := enc.Reconstruct(shards); err != nil {
				return nil, err
			}
			glen := groupBytes
			if g == int(m.Groups)-1 {
				glen = int(m.Size) - g*groupBytes
			}
			block, err := enc.Join(shards, glen)
			if err != nil {
				return nil, err
			}
			out = append(out, block...)
		}
		return s.verify(m, out)
	}
	return nil, ErrManifest
}

func (s *Store) verify(m *manifest, out []byte) ([]byte, error) {
	if int64(len(out)) < m.Size {
		return nil, fmt.Errorf("%w: reassembled %d of %d bytes", ErrFragment, len(out), m.Size)
	}
	out = out[:m.Size]
	if sha1.Sum(out) != m.Sum {
		return nil, fmt.Errorf("%w: content hash mismatch", ErrFragment)
	}
	return out, nil
}

// Reclaim releases the manifest and all fragments.
func (s *Store) Reclaim(manifestID id.File) error {
	lk, err := s.node.Lookup(manifestID)
	if err != nil {
		return err
	}
	if !lk.Found {
		return fmt.Errorf("%w: manifest %s not found", ErrManifest, manifestID.Short())
	}
	m, err := decodeManifest(lk.Content)
	if err != nil {
		return err
	}
	for _, fid := range m.FragIDs {
		if _, err := s.node.Reclaim(fid, nil); err != nil {
			return err
		}
	}
	_, err = s.node.Reclaim(manifestID, nil)
	return err
}
