package frag

import (
	"bytes"
	"math/rand"
	"testing"

	"past/internal/ec"
	"past/internal/rs"
)

// The erasure-coding contract both this package and the node-level EC
// mode (internal/ec, internal/past) stand on, verified exhaustively:
// EVERY m-subset of an RS(m,n) fragment set reconstructs the original
// bit-identically, and a bit-flipped fragment is caught by its content
// checksum and excluded — after which reconstruction from the honest
// remainder still yields the original, and the re-derived fragment
// matches the checksum the flipped copy failed.

// subsets invokes fn with every size-k subset of {0..n-1}.
func subsets(n, k int, fn func(pick []int)) {
	pick := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(pick)
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			pick[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func TestEveryMSubsetReconstructsBitIdentically(t *testing.T) {
	for _, p := range []struct{ m, n int }{{2, 2}, {3, 2}, {4, 3}, {5, 4}} {
		enc, err := rs.New(p.m, p.n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(p.m*100 + p.n)))
		content := make([]byte, 1000*p.m+rng.Intn(500)) // not shard-aligned
		rng.Read(content)

		shards, err := enc.Split(content)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(shards); err != nil {
			t.Fatal(err)
		}
		total := p.m + p.n

		tried := 0
		subsets(total, p.m, func(pick []int) {
			tried++
			sub := make([][]byte, total)
			for _, idx := range pick {
				sub[idx] = append([]byte(nil), shards[idx]...)
			}
			if err := enc.Reconstruct(sub); err != nil {
				t.Fatalf("rs(%d,%d) subset %v: reconstruct: %v", p.m, p.n, pick, err)
			}
			got, err := enc.Join(sub, len(content))
			if err != nil {
				t.Fatalf("rs(%d,%d) subset %v: join: %v", p.m, p.n, pick, err)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("rs(%d,%d) subset %v: content differs", p.m, p.n, pick)
			}
			// Parity shards must regenerate bit-identically too: any
			// repaired fragment is indistinguishable from the original.
			for idx := 0; idx < total; idx++ {
				if !bytes.Equal(sub[idx], shards[idx]) {
					t.Fatalf("rs(%d,%d) subset %v: rebuilt shard %d differs from original", p.m, p.n, pick, idx)
				}
			}
		})
		if want := binomial(total, p.m); tried != want {
			t.Fatalf("rs(%d,%d): tried %d subsets, want %d", p.m, p.n, tried, want)
		}
	}
}

func binomial(n, k int) int {
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestBitFlippedFragmentDetectedAndExcluded(t *testing.T) {
	const m, n = 4, 3
	enc, err := rs.New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	content := make([]byte, 4096)
	rng.Read(content)

	shards, err := enc.Split(content)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(shards); err != nil {
		t.Fatal(err)
	}
	crcs := make([]uint32, m+n)
	for i, s := range shards {
		crcs[i] = ec.Checksum(s)
	}

	// Flip one bit in each fragment position in turn.
	for victim := 0; victim < m+n; victim++ {
		dirty := make([][]byte, m+n)
		for i, s := range shards {
			dirty[i] = append([]byte(nil), s...)
		}
		dirty[victim][rng.Intn(len(dirty[victim]))] ^= 1 << uint(rng.Intn(8))

		// Detection: exactly the flipped fragment fails its checksum.
		excluded := 0
		for i, s := range dirty {
			if ec.Checksum(s) != crcs[i] {
				if i != victim {
					t.Fatalf("victim %d: fragment %d failed its checksum", victim, i)
				}
				dirty[i] = nil // exclude, as the fetch path does
				excluded++
			}
		}
		if excluded != 1 {
			t.Fatalf("victim %d: %d fragments excluded, want 1", victim, excluded)
		}

		// Exclusion leaves m+n-1 honest fragments — reconstruction must
		// restore the original content and re-derive the excluded
		// fragment bit-identically (checksum it failed now passes).
		if err := enc.Reconstruct(dirty); err != nil {
			t.Fatalf("victim %d: reconstruct: %v", victim, err)
		}
		got, err := enc.Join(dirty, len(content))
		if err != nil {
			t.Fatalf("victim %d: join: %v", victim, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("victim %d: content differs after exclusion", victim)
		}
		if ec.Checksum(dirty[victim]) != crcs[victim] {
			t.Fatalf("victim %d: rebuilt fragment fails the original checksum", victim)
		}
	}
}
