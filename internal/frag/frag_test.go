package frag

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"past/internal/cache"
	"past/internal/past"
	"past/internal/pastry"
)

func testCluster(t *testing.T, n int, capacity int64, seed int64) *past.Cluster {
	t.Helper()
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	cfg.CachePolicy = cache.None
	c, err := past.NewCluster(past.ClusterSpec{
		N:        n,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return capacity },
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReplicatedRoundTrip(t *testing.T) {
	c := testCluster(t, 40, 1<<22, 1)
	s, err := NewStore(c.Nodes[0], Options{FragmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 100_000) // 13 fragments
	rand.New(rand.NewSource(1)).Read(content)

	res, err := s.Insert("big.bin", content)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments != 13 {
		t.Fatalf("fragments = %d; want 13", res.Fragments)
	}

	// Fetch through a different access point.
	s2, _ := NewStore(c.Nodes[30], Options{FragmentSize: 8 << 10})
	got, err := s2.Fetch(res.ManifestID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("reassembled content mismatch")
	}
}

func TestReedSolomonRoundTrip(t *testing.T) {
	c := testCluster(t, 40, 1<<22, 2)
	s, err := NewStore(c.Nodes[0], Options{Mode: ReedSolomon, DataShards: 6, ParityShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 77_777)
	rand.New(rand.NewSource(2)).Read(content)

	res, err := s.Insert("coded.bin", content)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments != 9 {
		t.Fatalf("fragments = %d; want 9", res.Fragments)
	}
	got, err := s.Fetch(res.ManifestID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("reassembled content mismatch")
	}
}

func TestReedSolomonSurvivesFragmentLoss(t *testing.T) {
	c := testCluster(t, 40, 1<<22, 3)
	s, err := NewStore(c.Nodes[0], Options{Mode: ReedSolomon, DataShards: 4, ParityShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 50_000)
	rand.New(rand.NewSource(3)).Read(content)
	res, err := s.Insert("lossy.bin", content)
	if err != nil {
		t.Fatal(err)
	}

	// Destroy two fragments outright (reclaim them): with RS(4,2) the
	// object must still reassemble.
	lk, err := s.node.Lookup(res.ManifestID)
	if err != nil || !lk.Found {
		t.Fatal("manifest lookup failed")
	}
	m, err := decodeManifest(lk.Content)
	if err != nil {
		t.Fatal(err)
	}
	for _, fid := range m.FragIDs[:2] {
		if _, err := s.node.Reclaim(fid, nil); err != nil {
			t.Fatal(err)
		}
	}

	got, err := s.Fetch(res.ManifestID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch after losing 2 of 6 fragments")
	}

	// A third loss exceeds the parity budget.
	if _, err := s.node.Reclaim(m.FragIDs[2], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(res.ManifestID); err == nil {
		t.Fatal("fetch must fail with more losses than parity")
	}
}

func TestRSStorageOverheadBelowReplication(t *testing.T) {
	c := testCluster(t, 40, 1<<22, 4)
	content := make([]byte, 64_000)
	rand.New(rand.NewSource(4)).Read(content)

	rep, err := NewStore(c.Nodes[0], Options{Mode: Replicated, FragmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := rep.Insert("rep.bin", content)
	if err != nil {
		t.Fatal(err)
	}

	rsStore, err := NewStore(c.Nodes[0], Options{Mode: ReedSolomon, DataShards: 8, ParityShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rsStore.Insert("rs.bin", content)
	if err != nil {
		t.Fatal(err)
	}

	// Section 3.6: replication stores ~k x size (k=3 here); RS(8,4)
	// stores ~1.5 x size (plus the tiny manifest) — a 2x saving.
	if 10*r2.StoredBytes >= 6*r1.StoredBytes {
		t.Fatalf("RS overhead %d not well below replication %d", r2.StoredBytes, r1.StoredBytes)
	}
	if ratio := float64(r2.StoredBytes) / float64(len(content)); ratio > 1.6 {
		t.Fatalf("RS stored %.2fx the file size; want ~1.5x", ratio)
	}
}

func TestOversizedFileSucceedsFragmented(t *testing.T) {
	// A file larger than tpri allows on any node fails whole but
	// succeeds fragmented — the section 3.4 recourse.
	cap := int64(200_000)
	c := testCluster(t, 30, cap, 5)
	node := c.Nodes[0]
	content := make([]byte, 60_000) // 60k > tpri(0.1) * 200k = 20k
	rand.New(rand.NewSource(5)).Read(content)

	whole, err := node.Insert(past.InsertSpec{Name: "huge.bin", Content: content})
	if err != nil {
		t.Fatal(err)
	}
	if whole.OK {
		t.Fatal("sanity: whole-file insert should exceed every node's acceptance policy")
	}

	s, err := NewStore(node, Options{FragmentSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Insert("huge.bin", content)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Fetch(res.ManifestID)
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("fragmented fetch failed: %v", err)
	}
}

func TestReclaimFreesEverything(t *testing.T) {
	c := testCluster(t, 30, 1<<22, 6)
	s, err := NewStore(c.Nodes[0], Options{FragmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 20_000)
	rand.New(rand.NewSource(6)).Read(content)
	res, err := s.Insert("gone.bin", content)
	if err != nil {
		t.Fatal(err)
	}
	before := c.StoredBytes()
	if before == 0 {
		t.Fatal("nothing stored")
	}
	if err := s.Reclaim(res.ManifestID); err != nil {
		t.Fatal(err)
	}
	if c.StoredBytes() != 0 {
		t.Fatalf("%d bytes left after reclaim", c.StoredBytes())
	}
	if _, err := s.Fetch(res.ManifestID); err == nil {
		t.Fatal("fetch after reclaim must fail")
	}
}

func TestManifestCodec(t *testing.T) {
	m := &manifest{
		Mode:      ReedSolomon,
		Size:      123456,
		Data:      8,
		Parity:    4,
		Groups:    1,
		GroupUnit: 999,
	}
	for i := 0; i < 12; i++ {
		var f [20]byte
		f[0] = byte(i)
		m.FragIDs = append(m.FragIDs, f)
	}
	m.Sum = [20]byte{1, 2, 3}
	got, err := decodeManifest(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != m.Mode || got.Size != m.Size || got.Data != m.Data ||
		got.Parity != m.Parity || got.Groups != m.Groups || got.GroupUnit != m.GroupUnit || got.Sum != m.Sum {
		t.Fatalf("round trip: %+v vs %+v", got, m)
	}
	if len(got.FragIDs) != 12 || got.FragIDs[5] != m.FragIDs[5] {
		t.Fatal("frag ids lost")
	}
}

func TestManifestDecodeRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC!abcdefghijklmnop"),
		append([]byte(manifestMagic), 0, 0, 0), // truncated
	} {
		if _, err := decodeManifest(raw); err == nil {
			t.Fatalf("garbage %q decoded", raw)
		}
	}
	// Claimed fragment count beyond the payload must be rejected.
	m := &manifest{Size: 1}
	enc := m.encode()
	enc[len(enc)-1] = 200 // inflate the count
	if _, err := decodeManifest(enc); err == nil {
		t.Fatal("inflated count decoded")
	}
}

func TestOptionValidation(t *testing.T) {
	c := testCluster(t, 10, 1<<20, 7)
	if _, err := NewStore(c.Nodes[0], Options{FragmentSize: -1}); err == nil {
		t.Fatal("negative fragment size accepted")
	}
	if _, err := NewStore(c.Nodes[0], Options{Mode: ReedSolomon, DataShards: 300, ParityShards: 300}); err == nil {
		t.Fatal("oversized RS geometry accepted")
	}
	s, _ := NewStore(c.Nodes[0], Options{})
	if _, err := s.Insert("empty", nil); err == nil {
		t.Fatal("empty insert accepted")
	}
}

func TestFetchUnknownManifest(t *testing.T) {
	c := testCluster(t, 10, 1<<20, 8)
	s, _ := NewStore(c.Nodes[0], Options{})
	var ghost [20]byte
	ghost[0] = 0xff
	if _, err := s.Fetch(ghost); err == nil {
		t.Fatal("unknown manifest fetched")
	}
}

func TestManifestNotAFragmentFile(t *testing.T) {
	// Fetching a fileId that holds ordinary content must fail cleanly.
	c := testCluster(t, 10, 1<<20, 9)
	node := c.Nodes[0]
	res, err := node.Insert(past.InsertSpec{Name: "plain", Content: []byte("not a manifest")})
	if err != nil || !res.OK {
		t.Fatal("seed insert failed")
	}
	s, _ := NewStore(node, Options{})
	if _, err := s.Fetch(res.FileID); err == nil {
		t.Fatal("plain file fetched as manifest")
	}
}

func TestManyObjects(t *testing.T) {
	c := testCluster(t, 30, 1<<22, 10)
	s, _ := NewStore(c.Nodes[0], Options{FragmentSize: 4 << 10})
	rng := rand.New(rand.NewSource(10))
	type obj struct {
		id      [20]byte
		content []byte
	}
	var objs []obj
	for i := 0; i < 10; i++ {
		content := make([]byte, 1000+rng.Intn(20000))
		rng.Read(content)
		res, err := s.Insert(fmt.Sprintf("obj-%d", i), content)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj{id: res.ManifestID, content: content})
	}
	for i, o := range objs {
		got, err := s.Fetch(o.id)
		if err != nil || !bytes.Equal(got, o.content) {
			t.Fatalf("object %d corrupted: %v", i, err)
		}
	}
}

func TestReedSolomonMultiGroup(t *testing.T) {
	c := testCluster(t, 40, 1<<23, 11)
	// 4 KiB shards, 4 data shards -> 16 KiB groups; 70 KiB spans 5 groups.
	s, err := NewStore(c.Nodes[0], Options{Mode: ReedSolomon, DataShards: 4, ParityShards: 2, FragmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 70_000)
	rand.New(rand.NewSource(11)).Read(content)
	res, err := s.Insert("multi.bin", content)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fragments != 5*6 {
		t.Fatalf("fragments = %d; want 30 (5 groups x 6 shards)", res.Fragments)
	}

	// Lose two fragments in the FIRST group and two in the LAST: each
	// group absorbs its own losses independently.
	lk, _ := s.node.Lookup(res.ManifestID)
	m, err := decodeManifest(lk.Content)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 1, 24, 25} {
		if _, err := s.node.Reclaim(m.FragIDs[idx], nil); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Fetch(res.ManifestID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("multi-group content mismatch after per-group losses")
	}

	// Three losses in one group exceed its parity.
	if _, err := s.node.Reclaim(m.FragIDs[2], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(res.ManifestID); err == nil {
		t.Fatal("fetch must fail when one group exceeds its parity budget")
	}
}
