package frag_test

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"past/internal/frag"
	"past/internal/past"
	"past/internal/pastry"
)

// Example stores a large file as Reed-Solomon coded fragments and
// reassembles it, surviving the loss of parity-many fragments.
func Example() {
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        30,
		Cfg:      cfg,
		Capacity: func(i int, r *rand.Rand) int64 { return 4 << 20 },
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}

	store, err := frag.NewStore(cluster.Nodes[0], frag.Options{
		Mode:         frag.ReedSolomon,
		DataShards:   4,
		ParityShards: 2,
		FragmentSize: 16 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	content := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(content)
	res, err := store.Insert("video.bin", content)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fragments stored:", res.Fragments)
	fmt.Printf("storage overhead: %.2fx\n", float64(res.StoredBytes)/float64(len(content)))

	got, err := store.Fetch(res.ManifestID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("intact:", bytes.Equal(got, content))

	// Output:
	// fragments stored: 12
	// storage overhead: 1.51x
	// intact: true
}
