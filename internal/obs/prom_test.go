package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePromGolden pins the exposition byte for byte: family TYPE
// lines exactly once each, series in sorted-name order, the histogram
// rendered cumulatively with _bucket/_sum/_count, and multi-snapshot
// expositions (per-node plus fleet) interleaving series under the one
// TYPE line. A Prometheus scraper parses this text; format drift is a
// breaking change, hence the golden.
func TestWritePromGolden(t *testing.T) {
	mk := func(lookups, stored int64, lat []int64) Snapshot {
		s := Snapshot{Counters: map[string]int64{
			CtrLookups:        lookups,
			CtrReplicasStored: stored,
			CtrStoreBytes:     4096,
			CtrRPCTimeNanos:   1_500_000,
		}}
		s.RPCLat = lat
		return s
	}
	lat := make([]int64, LatencyBucketCount)
	lat[10] = 2 // two RPCs in [512us, 1.024ms)
	lat[LatencyBucketCount-1] = 1

	var single bytes.Buffer
	if err := WriteProm(&single, mk(3, 1, lat), map[string]string{"node": "ab12cd34"}); err != nil {
		t.Fatal(err)
	}
	wantSingle := strings.Join([]string{
		`# TYPE past_lookups_total counter`,
		`past_lookups_total{node="ab12cd34"} 3`,
		`# TYPE past_replicas_stored_total counter`,
		`past_replicas_stored_total{node="ab12cd34"} 1`,
		`# TYPE past_rpc_time_nanos_total counter`,
		`past_rpc_time_nanos_total{node="ab12cd34"} 1500000`,
		`# TYPE past_store_bytes gauge`,
		`past_store_bytes{node="ab12cd34"} 4096`,
		``,
	}, "\n")
	got := single.String()
	histAt := strings.Index(got, "# TYPE past_rpc_latency_seconds histogram\n")
	if histAt < 0 {
		t.Fatalf("no histogram TYPE line in:\n%s", got)
	}
	if got[:histAt] != wantSingle {
		t.Errorf("counter section:\n%s\nwant:\n%s", got[:histAt], wantSingle)
	}
	hist := got[histAt:]
	// The le label is appended last within the bucket's label set, per
	// Prometheus convention.
	for _, want := range []string{
		"past_rpc_latency_seconds_bucket{node=\"ab12cd34\",le=\"1e-06\"} 0\n",
		"past_rpc_latency_seconds_bucket{node=\"ab12cd34\",le=\"0.001024\"} 2\n",
		"past_rpc_latency_seconds_bucket{node=\"ab12cd34\",le=\"+Inf\"} 3\n",
		"past_rpc_latency_seconds_sum{node=\"ab12cd34\"} 0.0015\n",
		"past_rpc_latency_seconds_count{node=\"ab12cd34\"} 3\n",
	} {
		if !strings.Contains(hist, want) {
			t.Errorf("histogram missing %q in:\n%s", want, hist)
		}
	}

	// Multi-snapshot: the TYPE line appears once, then both series.
	var multi bytes.Buffer
	err := WritePromAll(&multi, []Labeled{
		{Labels: map[string]string{"node": "aa"}, Snap: mk(1, 0, nil)},
		{Labels: map[string]string{"node": "fleet"}, Snap: mk(9, 2, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := multi.String()
	if c := strings.Count(m, "# TYPE past_lookups_total counter"); c != 1 {
		t.Errorf("TYPE line appears %d times, want 1:\n%s", c, m)
	}
	wantOrder := []string{
		`past_lookups_total{node="aa"} 1`,
		`past_lookups_total{node="fleet"} 9`,
	}
	last := -1
	for _, w := range wantOrder {
		i := strings.Index(m, w)
		if i < 0 || i < last {
			t.Errorf("series %q missing or out of order:\n%s", w, m)
		}
		last = i
	}
}

// TestPromLabelEscaping: only backslash, double quote, and newline are
// escaped — exactly the exposition-format spec. Go's %q would also
// escape non-ASCII and control bytes, which a Prometheus parser then
// reads back differently than the raw value.
func TestPromLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{`all\of"them` + "\n", `all\\of\"them\n`},
		{"naïve-ütf8", "naïve-ütf8"}, // multi-byte survives unescaped
	}
	for _, c := range cases {
		snap := Snapshot{Counters: map[string]int64{"x": 1}}
		var b bytes.Buffer
		if err := WriteProm(&b, snap, map[string]string{"v": c.in}); err != nil {
			t.Fatal(err)
		}
		want := `past_x{v="` + c.want + `"} 1` + "\n"
		if !strings.Contains(b.String(), want) {
			t.Errorf("label %q rendered %q, want contains %q", c.in, b.String(), want)
		}
	}
}

// TestParsePromRoundTrip: a node's exposition parses back into the
// snapshot that produced it — counters, gauges, and the de-accumulated
// latency buckets. This is the fleet scraper's HTTP fallback path.
func TestParsePromRoundTrip(t *testing.T) {
	var st NodeStats
	st.Lookups.Add(7)
	st.MsgsIn.Add(100)
	st.ObserveRPC(300 * time.Microsecond)
	st.ObserveRPC(300 * time.Microsecond)
	st.ObserveRPC(90 * time.Millisecond)
	snap := st.Snapshot()
	snap.Set(CtrStoreBytes, 12345)

	var b bytes.Buffer
	if err := WriteProm(&b, snap, map[string]string{"node": "roundtrip"}); err != nil {
		t.Fatal(err)
	}
	got, err := ParseProm(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Counters, snap.Counters) {
		t.Errorf("counters round-trip:\n got %v\nwant %v", got.Counters, snap.Counters)
	}
	if !reflect.DeepEqual(got.RPCLat, snap.RPCLat) {
		t.Errorf("buckets round-trip:\n got %v\nwant %v", got.RPCLat, snap.RPCLat)
	}
	if got.TotalRPCs() != 3 {
		t.Errorf("TotalRPCs = %d, want 3", got.TotalRPCs())
	}
}

// TestSnapshotConcurrent hammers one registry from writer goroutines
// while readers snapshot, delta, aggregate, and render it. Run under
// -race this pins the concurrency contract: observation never requires
// a lock and never tears.
func TestSnapshotConcurrent(t *testing.T) {
	var st NodeStats
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				st.Lookups.Add(1)
				st.MsgsIn.Add(2)
				st.ObserveRPC(time.Duration(seed+int64(i%1000)) * time.Microsecond)
			}
		}(int64(w + 1))
	}
	prev := st.Snapshot()
	for i := 0; i < 200; i++ {
		cur := st.Snapshot()
		d := cur.Delta(prev)
		if d.Get(CtrLookups) < 0 || d.Get(CtrMsgsIn) < 0 {
			t.Fatalf("negative delta from a monotonic counter: %v", d.Counters)
		}
		agg := Aggregate(prev, d)
		var b bytes.Buffer
		if err := WriteProm(&b, agg, map[string]string{"node": "t"}); err != nil {
			t.Fatal(err)
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
	final := st.Snapshot()
	if final.Get(CtrLookups) == 0 || final.TotalRPCs() == 0 {
		t.Fatal("writers made no progress")
	}
}
