package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBucketCount is the number of exponential RPC-latency buckets:
// bucket i counts RPCs with duration < 1us * 2^i, the last bucket is
// the +Inf overflow. 2^26 us ≈ 67s, beyond any configured deadline.
const LatencyBucketCount = 28

// LatencyBucketBound returns the inclusive upper bound of bucket i
// (duration < bound lands in the bucket), or a negative duration for
// the +Inf overflow bucket.
func LatencyBucketBound(i int) time.Duration {
	if i >= LatencyBucketCount-1 {
		return -1
	}
	return time.Microsecond << uint(i)
}

// NodeStats is one node's live counter registry. Every field is a
// single atomic — cheap enough to stay on permanently, safe under the
// concurrent hedged lookups and maintenance goroutines of a live node.
// Gauges that already live elsewhere on the node (store bytes, cache
// contents) are folded in at snapshot time by the owner, not duplicated
// here.
type NodeStats struct {
	// Traffic, counted at this node's network boundary.
	MsgsIn, MsgsOut   atomic.Int64
	BytesIn, BytesOut atomic.Int64
	// RPCErrors counts outgoing invokes that failed (timeouts, dead
	// peers, application errors alike).
	RPCErrors atomic.Int64

	// Storage-management events (the paper's section 3 policies).
	ReplicasStored  atomic.Int64 // replicas accepted (primary + diverted-in)
	ReplicasDropped atomic.Int64 // replicas discarded or migrated away
	DivertedIn      atomic.Int64 // replicas accepted via replica diversion
	FileDiversions  atomic.Int64 // re-salted insert retries issued as client

	// Client operations served with this node as access point.
	Lookups, Inserts, Reclaims atomic.Int64

	// Resilience-layer events on client operations at this access point.
	Retries, Hedges, HedgeWins, PartialInserts atomic.Int64

	// LoadSteers counts hedged lookups whose primary attempt was
	// proactively entered through an alternate first hop because the
	// preferred one advertised saturation via a load hint.
	LoadSteers atomic.Int64

	// RPC latency histogram for outgoing invokes (wall clock; reported,
	// never replayed).
	RPCTimeNanos atomic.Int64
	rpcLat       [LatencyBucketCount]atomic.Int64
}

// ObserveRPC records one outgoing RPC's duration.
func (s *NodeStats) ObserveRPC(d time.Duration) {
	s.RPCTimeNanos.Add(int64(d))
	us := d / time.Microsecond
	b := 0
	for b < LatencyBucketCount-1 && us >= time.Duration(1)<<uint(b) {
		b++
	}
	s.rpcLat[b].Add(1)
}

// Counter names used in snapshots and the text exposition. Exported as
// constants so tests and renderers cannot drift from the registry.
const (
	CtrMsgsIn          = "msgs_in_total"
	CtrMsgsOut         = "msgs_out_total"
	CtrBytesIn         = "bytes_in_total"
	CtrBytesOut        = "bytes_out_total"
	CtrRPCErrors       = "rpc_errors_total"
	CtrRPCTimeNanos    = "rpc_time_nanos_total"
	CtrReplicasStored  = "replicas_stored_total"
	CtrReplicasDropped = "replicas_dropped_total"
	CtrDivertedIn      = "replica_diversions_in_total"
	CtrFileDiversions  = "file_diversions_total"
	CtrLookups         = "lookups_total"
	CtrInserts         = "inserts_total"
	CtrReclaims        = "reclaims_total"
	CtrRetries         = "retries_total"
	CtrHedges          = "hedges_total"
	CtrHedgeWins       = "hedge_wins_total"
	CtrPartialInserts  = "partial_inserts_total"
	CtrLoadSteers      = "load_steers_total"

	// Names the owning node fills in at snapshot time (gauges and
	// counters held by other subsystems).
	CtrStoreBytes     = "store_bytes"
	CtrStoreCapacity  = "store_capacity_bytes"
	CtrStoreReplicas  = "store_replicas"
	CtrStorePointers  = "store_pointers"
	CtrCacheBytes     = "cache_bytes"
	CtrCacheEntries   = "cache_entries"
	CtrCacheHits      = "cache_hits_total"
	CtrCacheMisses    = "cache_misses_total"
	CtrCacheEvictions = "cache_evictions_total"
	CtrReroutes       = "reroutes_total"
	CtrOverloadHops   = "overload_hops_total"
	CtrLeafRepairs    = "leaf_repairs_total"
	CtrLeafSetSize    = "leaf_set_size"
	CtrTableEntries   = "routing_table_entries"
	CtrBelowKEvents   = "below_k_events_total"

	// Durable storage-engine counters (internal/logstore). The backend
	// owns the atomics; the node folds them in at snapshot time through
	// the CounterSource interface, so they ride the same registry and
	// Prometheus path as every other counter.
	CtrWALAppends       = "logstore_wal_appends_total"
	CtrWALBytes         = "logstore_wal_bytes_total"
	CtrFsyncs           = "logstore_fsyncs_total"
	CtrCheckpoints      = "logstore_checkpoints_total"
	CtrCompactions      = "logstore_compactions_total"
	CtrCompactedBytes   = "logstore_compacted_bytes_total"
	CtrSegRotations     = "logstore_segment_rotations_total"
	CtrTornTruncations  = "logstore_torn_truncations_total"
	CtrRecoveredRecords = "logstore_recovered_records_total"
	CtrRecoveryNanos    = "logstore_recovery_nanos_total"
	CtrChecksumFailures = "logstore_checksum_failures_total"
	CtrSegments         = "logstore_segments"

	// Cache-engine counters (internal/cachengine). The engine owns the
	// atomics and contributes them through CounterSource, like the
	// storage backend. The legacy cache_hits/misses/evictions names
	// above stay populated (hits = RAM + flash) so dashboards and the
	// stats RPC see one continuous series.
	CtrCacheRAMHits       = "cachengine_ram_hits_total"
	CtrCacheFlashHits     = "cachengine_flash_hits_total"
	CtrCacheAdmitRejects  = "cachengine_admit_rejects_total"
	CtrCacheNegHits       = "cachengine_negative_hits_total"
	CtrCacheNegEntries    = "cachengine_negative_entries"
	CtrCacheFlashSpills   = "cachengine_flash_spills_total"
	CtrCacheFlashPromotes = "cachengine_flash_promotes_total"
	CtrCacheFlashDrops    = "cachengine_flash_seg_drops_total"
	CtrCacheFlashBytes    = "cachengine_flash_bytes"
	CtrCacheFlashEntries  = "cachengine_flash_entries"
	CtrCacheShards        = "cachengine_shards"

	// Erasure-coding counters (internal/ec). The fragment store and the
	// lazy repair queue own the values; the node folds them in through
	// CounterSource so repair depth/bytes show up in /metrics, the stats
	// RPC, and fleet SLO evaluation.
	CtrECFragments      = "ec_fragments"
	CtrECFragmentBytes  = "ec_fragment_bytes"
	CtrECFragReads      = "ec_fragment_reads_total"
	CtrECCRCFailures    = "ec_crc_failures_total"
	CtrECInserts        = "ec_inserts_total"
	CtrECReconstructs   = "ec_reconstructs_total"
	CtrECRepairDepth    = "ec_repair_queue_depth"
	CtrECRepairEnqueued = "ec_repairs_enqueued_total"
	CtrECRepairDone     = "ec_repairs_done_total"
	CtrECRepairFailed   = "ec_repairs_failed_total"
	CtrECRepairDeferred = "ec_repairs_deferred_total"
	CtrECRepairBytes    = "ec_repair_bytes_total"
)

// CounterSource lets a subsystem contribute named counters to a node's
// snapshot. A storage backend implementing it has its counters folded
// into StatsSnapshot, and from there into /metrics, the stats RPC, and
// the experiment drivers.
type CounterSource interface {
	ObsCounters() map[string]int64
}

// Snapshot is a point-in-time copy of a registry (or an aggregate of
// several): a name->value counter map plus the RPC-latency bucket
// counts. It is a plain value — gob/JSON encodable, diffable, and safe
// to hand across goroutines.
type Snapshot struct {
	Counters map[string]int64
	RPCLat   []int64 // LatencyBucketCount bucket counts
}

// Snapshot copies the registry's own counters. The owner adds its
// gauge values before exposing the result.
func (s *NodeStats) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{
			CtrMsgsIn:          s.MsgsIn.Load(),
			CtrMsgsOut:         s.MsgsOut.Load(),
			CtrBytesIn:         s.BytesIn.Load(),
			CtrBytesOut:        s.BytesOut.Load(),
			CtrRPCErrors:       s.RPCErrors.Load(),
			CtrRPCTimeNanos:    s.RPCTimeNanos.Load(),
			CtrReplicasStored:  s.ReplicasStored.Load(),
			CtrReplicasDropped: s.ReplicasDropped.Load(),
			CtrDivertedIn:      s.DivertedIn.Load(),
			CtrFileDiversions:  s.FileDiversions.Load(),
			CtrLookups:         s.Lookups.Load(),
			CtrInserts:         s.Inserts.Load(),
			CtrReclaims:        s.Reclaims.Load(),
			CtrRetries:         s.Retries.Load(),
			CtrHedges:          s.Hedges.Load(),
			CtrHedgeWins:       s.HedgeWins.Load(),
			CtrPartialInserts:  s.PartialInserts.Load(),
			CtrLoadSteers:      s.LoadSteers.Load(),
		},
		RPCLat: make([]int64, LatencyBucketCount),
	}
	for i := range s.rpcLat {
		snap.RPCLat[i] = s.rpcLat[i].Load()
	}
	return snap
}

// Get returns a counter by name (0 if absent).
func (s Snapshot) Get(name string) int64 { return s.Counters[name] }

// Set stores a counter value, allocating the map if needed, and
// returns the snapshot for chaining.
func (s *Snapshot) Set(name string, v int64) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	s.Counters[name] = v
}

// Names returns the snapshot's counter names in sorted order, for
// deterministic rendering.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Delta returns this snapshot minus prev, counter by counter (absent
// counters count as zero on either side). Latency buckets subtract
// element-wise. Gauges subtract like counters; interpret their deltas
// as net change over the interval.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{Counters: make(map[string]int64, len(s.Counters))}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range prev.Counters {
		if _, ok := s.Counters[k]; !ok {
			out.Counters[k] = -v
		}
	}
	n := len(s.RPCLat)
	if len(prev.RPCLat) > n {
		n = len(prev.RPCLat)
	}
	if n > 0 {
		out.RPCLat = make([]int64, n)
		for i := 0; i < n; i++ {
			var a, b int64
			if i < len(s.RPCLat) {
				a = s.RPCLat[i]
			}
			if i < len(prev.RPCLat) {
				b = prev.RPCLat[i]
			}
			out.RPCLat[i] = a - b
		}
	}
	return out
}

// TotalRPCs returns the number of RPCs the latency histogram has seen.
func (s Snapshot) TotalRPCs() int64 {
	var n int64
	for _, v := range s.RPCLat {
		n += v
	}
	return n
}

// RPCQuantile returns the p-th percentile (0-100) of the RPC-latency
// histogram, interpolating linearly between the edges of the bucket the
// rank lands in rather than snapping to a boundary. The overflow bucket
// has no upper edge; mass landing there reports its lower edge. Returns
// 0 when the histogram is empty.
func (s Snapshot) RPCQuantile(p float64) time.Duration {
	total := s.TotalRPCs()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := p / 100 * float64(total)
	var cum int64
	for i, c := range s.RPCLat {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) >= target {
			hi := LatencyBucketBound(i)
			if hi < 0 { // +Inf overflow: report the bucket's lower edge
				return LatencyBucketBound(i - 1)
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = LatencyBucketBound(i - 1)
			}
			frac := (target - prev) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
	}
	return 0
}

// Aggregate sums snapshots counter-by-counter and bucket-by-bucket —
// the experiment drivers use it to view an emulated network as one
// system.
func Aggregate(snaps ...Snapshot) Snapshot {
	out := Snapshot{Counters: make(map[string]int64), RPCLat: make([]int64, LatencyBucketCount)}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for i, v := range s.RPCLat {
			if i < len(out.RPCLat) {
				out.RPCLat[i] += v
			}
		}
	}
	return out
}
