// Package obs is the observability layer: per-request route tracing,
// per-node stats registries, and the export paths (Prometheus-style
// text exposition, JSONL event streams) that make a running PAST node
// inspectable. The paper's entire evaluation is a measurement exercise;
// obs turns the measurements the experiment drivers take offline into
// properties of every live node.
//
// Everything in this package is out-of-band by construction: no code
// path here draws from a protocol RNG, reorders messages, or changes a
// routing decision, so a chaos soak produces bit-for-bit identical
// fingerprints with tracing and registries on or off. Sampling is
// deterministic (every Nth operation, counted — never drawn), and all
// hot-path counters are single atomic adds.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"past/internal/id"
)

// Routing-choice labels, one per rule of the Pastry routing procedure
// (section 2.1) plus the repair/consume outcomes layered on it.
const (
	// ChoiceLeaf: the key was within the leaf-set range and the hop is
	// the numerically closest leaf-set member.
	ChoiceLeaf = "leaf"
	// ChoiceTable: the hop came from the routing table (one more shared
	// prefix digit).
	ChoiceTable = "table"
	// ChoiceRare: the fallback of section 2.1 — any known node at least
	// as close in prefix and numerically closer to the key.
	ChoiceRare = "rare"
	// ChoiceRandom: randomized routing (Config.RandomizeP) picked a
	// random valid candidate instead of the best one.
	ChoiceRandom = "random"
	// ChoiceReroute: the best candidate was already excluded (found dead
	// on this route, or avoided by a hedge) and this hop is the best
	// remaining alternate.
	ChoiceReroute = "reroute"
	// ChoiceLocal: the node consumed the message itself — either the
	// application claimed it (a lookup served en route) or the node is
	// the numerically closest live node it knows of.
	ChoiceLocal = "local"
)

// HopRecord is one routing decision on a traced route: which node
// decided, where the message went, under which rule, and what it cost.
type HopRecord struct {
	// From is the node that made the routing decision.
	From id.Node
	// To is the chosen next hop (equal to From for a ChoiceLocal
	// terminal record).
	To id.Node
	// Choice is the routing rule that produced the hop (Choice*).
	Choice string
	// Prefix is the number of digits From's nodeId shares with the key.
	Prefix int
	// Distance is the proximity metric From->To, or -1 when unknown.
	Distance float64
	// RPCNanos is the wall-clock duration of the forwarding RPC (zero
	// for ChoiceLocal records). Wall time is reported, not replayed: it
	// never feeds back into a protocol decision.
	RPCNanos int64
	// Failed marks a hop attempt that did not complete — the next hop
	// was dead, unreachable, or timed out — after which the route either
	// rerouted (a ChoiceReroute record follows) or gave up.
	Failed bool
}

// String renders one record as "a1b2->c3d4 table p=2".
func (h HopRecord) String() string {
	s := fmt.Sprintf("%s->%s %s p=%d", h.From.Short(), h.To.Short(), h.Choice, h.Prefix)
	if h.Failed {
		s += " FAILED"
	}
	return s
}

// Trace is one sampled client operation's route history.
type Trace struct {
	// Seq is the tracer-assigned sample sequence number.
	Seq int64
	// Op is the client operation ("lookup", "insert", "reclaim").
	Op string
	// Key is the routed destination (the fileId's key).
	Key id.Node
	// Hops is the hop-by-hop record of the operation's final routed
	// attempt, ending in a ChoiceLocal record at the consuming node.
	Hops []HopRecord
	// RouteHops is the hop count the routing layer reported, which must
	// equal the number of successful forwarding records (see HopCount).
	RouteHops int
	// OK reports whether the operation succeeded (file found, insert
	// acknowledged).
	OK bool
	// Err carries the failure, if the operation returned an error.
	Err string
}

// HopCount returns the number of successful forwarding hops in the
// trace: records that completed (not Failed) and actually moved the
// message (not ChoiceLocal). It equals RouteHops on a complete trace.
func (t *Trace) HopCount() int {
	n := 0
	for _, h := range t.Hops {
		if !h.Failed && h.Choice != ChoiceLocal {
			n++
		}
	}
	return n
}

// Reroutes returns the number of failed hop attempts recorded.
func (t *Trace) Reroutes() int {
	n := 0
	for _, h := range t.Hops {
		if h.Failed {
			n++
		}
	}
	return n
}

// String renders the trace compactly for logs and pretty-printers.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s hops=%d ok=%v", t.Seq, t.Op, t.Key.Short(), t.RouteHops, t.OK)
	for _, h := range t.Hops {
		fmt.Fprintf(&b, "\n  %s", h)
	}
	return b.String()
}

// Detailed renders the trace like String, adding each hop's RPC
// wall-clock latency when recorded — what `pastctl trace` prints for a
// cross-process route. The records themselves are the same type the
// netsim tracer collects, so both paths share one renderer.
func (t *Trace) Detailed() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s hops=%d ok=%v", t.Seq, t.Op, t.Key.Short(), t.RouteHops, t.OK)
	if t.Err != "" {
		fmt.Fprintf(&b, " err=%q", t.Err)
	}
	for _, h := range t.Hops {
		fmt.Fprintf(&b, "\n  %s", h)
		if h.RPCNanos > 0 {
			fmt.Fprintf(&b, " rpc=%v", time.Duration(h.RPCNanos).Round(time.Microsecond))
		}
	}
	return b.String()
}

// Tracer samples client operations into Traces: every Nth started
// operation is traced, the rest pay a single counter increment. The
// decision is a deterministic count — no RNG — so enabling a Tracer
// cannot perturb a seeded run. A nil *Tracer is valid and samples
// nothing, which is how untraced nodes skip the layer entirely.
type Tracer struct {
	every int64
	keep  int

	// OnTrace, if set, observes every finished trace (the JSONL event
	// stream attaches here). Called without the tracer lock held.
	OnTrace func(*Trace)

	mu      sync.Mutex
	started int64
	seq     int64
	traces  []*Trace // ring of the most recent `keep` traces
	next    int      // ring write position
	wrapped bool
}

// NewTracer creates a tracer sampling every Nth operation and retaining
// the most recent keep traces. every < 1 selects 1 (trace everything);
// keep < 1 selects 64.
func NewTracer(every, keep int) *Tracer {
	if every < 1 {
		every = 1
	}
	if keep < 1 {
		keep = 64
	}
	return &Tracer{every: int64(every), keep: keep}
}

// ShouldSample counts one started operation and reports whether it is
// the every-Nth one to be traced. Safe for concurrent use; nil-safe.
func (t *Tracer) ShouldSample() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.started++
	return (t.started-1)%t.every == 0
}

// Add retains a finished trace, assigning its sequence number.
// Nil-safe; a nil trace is ignored.
func (t *Tracer) Add(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	tr.Seq = t.seq
	if len(t.traces) < t.keep {
		t.traces = append(t.traces, tr)
	} else {
		t.traces[t.next] = tr
		t.wrapped = true
	}
	t.next = (t.next + 1) % t.keep
	cb := t.OnTrace
	t.mu.Unlock()
	if cb != nil {
		cb(tr)
	}
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]*Trace(nil), t.traces...)
	}
	out := make([]*Trace, 0, len(t.traces))
	out = append(out, t.traces[t.next:]...)
	out = append(out, t.traces[:t.next]...)
	return out
}

// Started returns how many operations this tracer has counted.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// Sampled returns how many traces were retained (total, including ones
// that have since rotated out of the ring).
func (t *Tracer) Sampled() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
