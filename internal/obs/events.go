package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event is one line of the structured JSONL event stream the chaos and
// bench drivers emit: faults injected, invariant violations, per-tick
// traffic summaries, sampled route-trace summaries, and per-round
// fleet metric deltas. Fields are fixed, and the one map (Counters) is
// rendered with sorted keys by encoding/json, so the encoding stays
// deterministic and the stream greppable offline.
type Event struct {
	// Kind classifies the event: "fault", "violation", "tick", "trace",
	// "phase", "experiment", "summary".
	Kind string `json:"kind"`
	// Tick is the virtual time of the event, when the emitter has one.
	Tick int `json:"tick,omitempty"`
	// Node names the node the event concerns (short id), if any.
	Node string `json:"node,omitempty"`
	// Op is the client operation or fault/violation kind.
	Op string `json:"op,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
	// N is the event's primary quantity (a count, a delta, elapsed ms).
	N int64 `json:"n,omitempty"`
	// Hops carries a trace summary's hop count.
	Hops int `json:"hops,omitempty"`
	// OK carries an operation outcome.
	OK bool `json:"ok,omitempty"`
	// Counters carries a named-counter payload for "stats" events —
	// the fleet-aggregated registry delta of one scenario round — so
	// scenario runs leave a queryable metrics timeline next to the
	// fault/violation/tick events.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// EventLog is a concurrency-safe JSONL writer. A nil *EventLog accepts
// and discards events, so emitters need no conditionals.
type EventLog struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	n   int64
	err error
}

// NewEventLog writes events to w, one JSON object per line.
func NewEventLog(w io.Writer) *EventLog {
	bw := bufio.NewWriter(w)
	return &EventLog{w: bw, enc: json.NewEncoder(bw)}
}

// Emit appends one event. The first write error is retained (and
// reported by Close); later emits are dropped.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if err := l.enc.Encode(e); err != nil {
		l.err = err
		return
	}
	l.n++
}

// Count returns the number of events written.
func (l *EventLog) Count() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Close flushes the stream and returns the first write error, if any.
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.w.Flush()
}

// ReadEvents parses a JSONL event stream, failing on the first
// malformed line (with its line number) — the check `make trace-demo`
// and the tests run against emitted streams.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return out, fmt.Errorf("obs: events line %d: %w", line, err)
		}
		if e.Kind == "" {
			return out, fmt.Errorf("obs: events line %d: missing kind", line)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: events: %w", err)
	}
	return out, nil
}

// CountByKind tallies events per kind, for summaries.
func CountByKind(events []Event) map[string]int {
	out := make(map[string]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}
