package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseProm parses one node's text exposition — the output of WriteProm
// for a single snapshot, as served at a daemon's /metrics — back into a
// Snapshot. It is the fleet scraper's HTTP fallback path when a node's
// client RPC port is unreachable but its debug endpoint is not.
//
// Counter and gauge samples become Counters entries (labels ignored);
// the past_rpc_latency_seconds_bucket series is de-accumulated back
// into the RPCLat bucket counts by matching each sample's `le` value
// against the bucket bounds WriteProm renders. Unknown metric families
// and the derived _sum/_count samples are skipped. Multi-series
// expositions (several label sets per name, as WritePromAll emits) are
// not supported: last sample wins per name.
func ParseProm(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Counters: make(map[string]int64)}
	le := leIndex()
	buckets := make(map[int]int64)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, valueStr, err := splitSample(line)
		if err != nil {
			return snap, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		name, ok := strings.CutPrefix(name, "past_")
		if !ok {
			continue
		}
		switch name {
		case "rpc_latency_seconds_sum", "rpc_latency_seconds_count":
			continue // derived from the buckets and rpc_time_nanos_total
		case "rpc_latency_seconds_bucket":
			idx, ok := le[labelValue(labels, "le")]
			if !ok {
				continue // a bound this build doesn't know; skip the sample
			}
			v, err := strconv.ParseInt(valueStr, 10, 64)
			if err != nil {
				return snap, fmt.Errorf("obs: metrics line %d: bucket value %q", lineNo, valueStr)
			}
			buckets[idx] = v
		default:
			// Values are written as integers; parse through float so a
			// foreign exposition with exponent notation still loads.
			f, err := strconv.ParseFloat(valueStr, 64)
			if err != nil {
				return snap, fmt.Errorf("obs: metrics line %d: value %q", lineNo, valueStr)
			}
			snap.Counters[name] = int64(f)
		}
	}
	if err := sc.Err(); err != nil {
		return snap, fmt.Errorf("obs: metrics: %w", err)
	}

	if len(buckets) > 0 {
		snap.RPCLat = make([]int64, LatencyBucketCount)
		var prev int64
		for i := 0; i < LatencyBucketCount; i++ {
			cum, ok := buckets[i]
			if !ok {
				cum = prev
			}
			snap.RPCLat[i] = cum - prev
			prev = cum
		}
	}
	return snap, nil
}

// leIndex maps each rendered `le` label value back to its bucket index.
func leIndex() map[string]int {
	out := make(map[string]int, LatencyBucketCount)
	for i := 0; i < LatencyBucketCount; i++ {
		out[bucketLE(i)] = i
	}
	return out
}

// splitSample splits `name{labels} value` (labels optional) into parts.
// The label block is returned raw; values never contain spaces.
func splitSample(line string) (name, labels, value string, err error) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", "", fmt.Errorf("malformed sample %q", line)
	}
	value = line[sp+1:]
	head := strings.TrimSpace(line[:sp])
	if i := strings.IndexByte(head, '{'); i >= 0 {
		if !strings.HasSuffix(head, "}") {
			return "", "", "", fmt.Errorf("malformed labels in %q", line)
		}
		return head[:i], head[i+1 : len(head)-1], value, nil
	}
	return head, "", value, nil
}

// labelValue extracts one label's (unescaped) value from a raw label
// block. Good enough for the labels WriteProm emits: values with
// embedded commas or braces are not split correctly, but `le` and
// `node` never carry them.
func labelValue(labels, key string) string {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k != key {
			continue
		}
		v = strings.TrimPrefix(v, `"`)
		v = strings.TrimSuffix(v, `"`)
		return strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(v)
	}
	return ""
}
