package obs

import (
	"context"
	"time"

	"past/internal/id"
	"past/internal/netsim"
)

// InstrumentedNet wraps a netsim.Net and accounts every outgoing
// invoke — message and byte counts, RPC wall-clock latency, failures —
// into a NodeStats registry. It changes no behavior: same calls, same
// errors, no RNG, so it can wrap the fault-injected chaos view without
// perturbing a seeded run.
type InstrumentedNet struct {
	inner netsim.Net
	stats *NodeStats
}

var _ netsim.Net = (*InstrumentedNet)(nil)

// InstrumentNet wraps inner so every outgoing invoke is accounted into
// stats. A nil stats returns inner unchanged.
func InstrumentNet(inner netsim.Net, stats *NodeStats) netsim.Net {
	if stats == nil {
		return inner
	}
	return &InstrumentedNet{inner: inner, stats: stats}
}

// Inner returns the wrapped network.
func (n *InstrumentedNet) Inner() netsim.Net { return n.inner }

// Invoke delivers through the wrapped network, timing the exchange.
func (n *InstrumentedNet) Invoke(ctx context.Context, src, dst id.Node, msg any) (any, error) {
	n.stats.MsgsOut.Add(1)
	if s, ok := msg.(netsim.Sized); ok {
		n.stats.BytesOut.Add(int64(s.WireSize()))
	}
	start := time.Now()
	reply, err := n.inner.Invoke(ctx, src, dst, msg)
	n.stats.ObserveRPC(time.Since(start))
	if err != nil {
		n.stats.RPCErrors.Add(1)
	} else if s, ok := reply.(netsim.Sized); ok {
		n.stats.BytesIn.Add(int64(s.WireSize()))
	}
	return reply, err
}

// Alive passes through.
func (n *InstrumentedNet) Alive(dst id.Node) bool { return n.inner.Alive(dst) }

// Proximity passes through.
func (n *InstrumentedNet) Proximity(a, b id.Node) (float64, bool) {
	return n.inner.Proximity(a, b)
}
