package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"past/internal/id"
)

func testNode(b byte) id.Node {
	var n id.Node
	for i := range n {
		n[i] = b
	}
	return n
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(3, 8)
	want := []bool{true, false, false, true, false, false, true}
	for i, w := range want {
		if got := tr.ShouldSample(); got != w {
			t.Fatalf("ShouldSample call %d = %v, want %v", i+1, got, w)
		}
	}
	if tr.Started() != int64(len(want)) {
		t.Fatalf("Started = %d, want %d", tr.Started(), len(want))
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.ShouldSample() {
		t.Fatal("nil tracer must never sample")
	}
	tr.Add(&Trace{Op: "lookup"}) // must not panic
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces = %v, want nil", got)
	}
	if tr.Started() != 0 || tr.Sampled() != 0 {
		t.Fatal("nil tracer counts must be zero")
	}
}

func TestTracerRingAndCallback(t *testing.T) {
	tr := NewTracer(1, 3)
	var fired []int64
	tr.OnTrace = func(x *Trace) { fired = append(fired, x.Seq) }
	for i := 0; i < 5; i++ {
		tr.Add(&Trace{Op: "lookup"})
	}
	if tr.Sampled() != 5 {
		t.Fatalf("Sampled = %d, want 5", tr.Sampled())
	}
	got := tr.Traces()
	if len(got) != 3 {
		t.Fatalf("ring retained %d traces, want 3", len(got))
	}
	for i, want := range []int64{3, 4, 5} {
		if got[i].Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d (oldest first)", i, got[i].Seq, want)
		}
	}
	if len(fired) != 5 || fired[0] != 1 || fired[4] != 5 {
		t.Fatalf("OnTrace fired with seqs %v, want 1..5", fired)
	}
}

func TestTraceHopCountAndReroutes(t *testing.T) {
	a, b, c := testNode(1), testNode(2), testNode(3)
	tr := &Trace{Op: "lookup", Hops: []HopRecord{
		{From: a, To: b, Choice: ChoiceTable, Failed: true},
		{From: a, To: c, Choice: ChoiceReroute},
		{From: c, To: c, Choice: ChoiceLocal},
	}}
	if got := tr.HopCount(); got != 1 {
		t.Fatalf("HopCount = %d, want 1 (failed and local records excluded)", got)
	}
	if got := tr.Reroutes(); got != 1 {
		t.Fatalf("Reroutes = %d, want 1", got)
	}
	if s := tr.String(); !strings.Contains(s, "lookup") {
		t.Fatalf("String() = %q, want op name included", s)
	}
}

func TestSnapshotDelta(t *testing.T) {
	var s NodeStats
	s.MsgsOut.Add(5)
	s.Lookups.Add(2)
	s.ObserveRPC(3 * time.Microsecond)
	before := s.Snapshot()

	s.MsgsOut.Add(7)
	s.ObserveRPC(3 * time.Microsecond)
	s.ObserveRPC(time.Second)
	after := s.Snapshot()

	d := after.Delta(before)
	if got := d.Get(CtrMsgsOut); got != 7 {
		t.Fatalf("delta msgs_out = %d, want 7", got)
	}
	if got := d.Get(CtrLookups); got != 0 {
		t.Fatalf("delta lookups = %d, want 0", got)
	}
	if got := d.TotalRPCs(); got != 2 {
		t.Fatalf("delta rpc count = %d, want 2", got)
	}
	if got := after.TotalRPCs(); got != 3 {
		t.Fatalf("total rpc count = %d, want 3", got)
	}
}

func TestSnapshotSetAndNames(t *testing.T) {
	var s Snapshot
	s.Set(CtrStoreBytes, 42)
	s.Set(CtrCacheBytes, 7)
	if got := s.Get(CtrStoreBytes); got != 42 {
		t.Fatalf("Get = %d, want 42", got)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != CtrCacheBytes || names[1] != CtrStoreBytes {
		t.Fatalf("Names = %v, want sorted [%s %s]", names, CtrCacheBytes, CtrStoreBytes)
	}
}

func TestAggregate(t *testing.T) {
	var a, b NodeStats
	a.MsgsIn.Add(3)
	b.MsgsIn.Add(4)
	a.ObserveRPC(time.Microsecond)
	b.ObserveRPC(time.Microsecond)
	agg := Aggregate(a.Snapshot(), b.Snapshot())
	if got := agg.Get(CtrMsgsIn); got != 7 {
		t.Fatalf("aggregate msgs_in = %d, want 7", got)
	}
	if got := agg.TotalRPCs(); got != 2 {
		t.Fatalf("aggregate rpc count = %d, want 2", got)
	}
}

func TestLatencyBucketBound(t *testing.T) {
	if got := LatencyBucketBound(0); got != time.Microsecond {
		t.Fatalf("bucket 0 bound = %v, want 1us", got)
	}
	if got := LatencyBucketBound(LatencyBucketCount - 1); got >= 0 {
		t.Fatalf("last bucket bound = %v, want negative (+Inf)", got)
	}
}

func TestWritePromFormat(t *testing.T) {
	var s NodeStats
	s.Lookups.Add(9)
	s.ObserveRPC(2 * time.Microsecond)
	snap := s.Snapshot()
	snap.Set(CtrStoreBytes, 1024)

	var buf bytes.Buffer
	if err := WriteProm(&buf, snap, map[string]string{"node": "ab12"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE past_lookups_total counter",
		`past_lookups_total{node="ab12"} 9`,
		"# TYPE past_store_bytes gauge",
		`past_store_bytes{node="ab12"} 1024`,
		"# TYPE past_rpc_latency_seconds histogram",
		`past_rpc_latency_seconds_bucket{node="ab12",le="+Inf"} 1`,
		`past_rpc_latency_seconds_count{node="ab12"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteProm(&buf2, snap, map[string]string{"node": "ab12"}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("prom output must be deterministic across renders")
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	in := []Event{
		{Kind: "phase", Detail: "seed", N: 40},
		{Kind: "fault", Tick: 3, Op: "drop"},
		{Kind: "trace", Tick: 4, Op: "lookup", Hops: 2, OK: true},
		{Kind: "summary", Tick: 20, N: 123, OK: true},
	}
	for _, e := range in {
		l.Emit(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Count() != int64(len(in)) {
		t.Fatalf("Count = %d, want %d", l.Count(), len(in))
	}

	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(out[i], in[i]) {
			t.Fatalf("event %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	byKind := CountByKind(out)
	if byKind["fault"] != 1 || byKind["trace"] != 1 {
		t.Fatalf("CountByKind = %v", byKind)
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(Event{Kind: "fault"}) // must not panic
	if l.Count() != 0 {
		t.Fatal("nil log count must be 0")
	}
	if err := l.Close(); err != nil {
		t.Fatal("nil log close must be nil")
	}
}

func TestReadEventsMalformed(t *testing.T) {
	in := "{\"kind\":\"fault\"}\nnot json\n"
	if _, err := ReadEvents(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line must fail with its line number, got %v", err)
	}
	in = "{\"tick\":3}\n"
	if _, err := ReadEvents(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "missing kind") {
		t.Fatalf("kindless event must fail, got %v", err)
	}
}

// TestConcurrentRegistryAndTracer hammers the registry and tracer from
// many goroutines; run under -race it proves the counters and the
// sampler are safe on a live node's hot paths.
func TestConcurrentRegistryAndTracer(t *testing.T) {
	var s NodeStats
	tr := NewTracer(2, 16)
	tr.OnTrace = func(*Trace) {}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.MsgsOut.Add(1)
				s.BytesOut.Add(64)
				s.ObserveRPC(time.Duration(i) * time.Microsecond)
				if tr.ShouldSample() {
					tr.Add(&Trace{Op: "lookup", OK: true})
				}
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.Get(CtrMsgsOut); got != workers*per {
		t.Fatalf("msgs_out = %d, want %d", got, workers*per)
	}
	if got := snap.TotalRPCs(); got != workers*per {
		t.Fatalf("rpc count = %d, want %d", got, workers*per)
	}
	if got := tr.Started(); got != workers*per {
		t.Fatalf("tracer started = %d, want %d", got, workers*per)
	}
	if got := tr.Sampled(); got != workers*per/2 {
		t.Fatalf("tracer sampled = %d, want %d", got, workers*per/2)
	}
}
