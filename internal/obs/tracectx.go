package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
)

// DefaultTraceBudget is the hop budget a forced trace travels with: the
// maximum number of hop records a single trace may accumulate before
// collection stops (routing itself is never cut short). It is a ceiling
// on trace payload growth, well above any healthy route length.
const DefaultTraceBudget = 64

// TraceContext is the compact per-request trace state that crosses
// process boundaries: it rides the wire envelope (wire.Request) and the
// routed message (pastry.RouteRequest), so hop records collected on
// every pastd along a route can be stitched back together on the reply
// path. The zero value means "no trace": nothing is collected and the
// wire format is unchanged from untraced requests.
type TraceContext struct {
	// ID identifies the trace across processes. Drawn out-of-band
	// (crypto/rand), never from a protocol RNG, so requesting a trace
	// cannot perturb a seeded run.
	ID uint64
	// Sampled asks nodes on the route to collect hop records. With it
	// off the context is carried but inert — the fingerprint-invariance
	// contract: propagation compiled in, collection off, bit-identical
	// behavior.
	Sampled bool
	// Budget caps the number of hop records the trace may accumulate
	// (0: unlimited). Routing continues past the budget; only the
	// recording stops.
	Budget uint8
}

// Active reports whether this context asks for hop collection.
func (tc TraceContext) Active() bool { return tc.Sampled && tc.ID != 0 }

// HasRoom reports whether a trace holding n hop records may record
// another under this context's budget.
func (tc TraceContext) HasRoom(n int) bool {
	return tc.Budget == 0 || n < int(tc.Budget)
}

// NewTraceID draws a random trace id from crypto/rand — out-of-band by
// construction, so it cannot disturb seeded protocol RNGs.
func NewTraceID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for anything that matters;
		// for a trace id, a fixed nonzero fallback keeps the trace usable.
		return 1
	}
	tid := binary.LittleEndian.Uint64(b[:])
	if tid == 0 {
		tid = 1
	}
	return tid
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace context to ctx; the transport stamps
// it onto every outgoing wire envelope built under this context.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context attached by
// ContextWithTrace, reporting whether one was present.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
