package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Labeled pairs a snapshot with its label set, for expositions that
// carry several series of the same metrics (per-node plus a fleet
// aggregate) in one response.
type Labeled struct {
	Labels map[string]string
	Snap   Snapshot
}

// WriteProm renders a snapshot in the Prometheus text exposition
// format (version 0.0.4), every metric prefixed "past_" and carrying
// the given labels. Counters whose name ends in "_total" are typed
// counter, the rest gauge; the RPC-latency buckets render as a proper
// cumulative histogram past_rpc_latency_seconds with _bucket/_sum/
// _count series. Output order is deterministic (sorted names, sorted
// label keys).
func WriteProm(w io.Writer, snap Snapshot, labels map[string]string) error {
	return WritePromAll(w, []Labeled{{Labels: labels, Snap: snap}})
}

// WritePromAll renders several labeled snapshots of the same metric
// family as one valid exposition: each `# TYPE` line appears exactly
// once, followed by every series carrying that name — which is what a
// naive concatenation of per-snapshot WriteProm outputs would violate.
// The fleet aggregator's combined /metrics endpoint uses it to serve
// per-node series and the fleet aggregate side by side, distinguished
// only by labels.
func WritePromAll(w io.Writer, snaps []Labeled) error {
	// Union of counter names across all snapshots, sorted.
	nameSet := make(map[string]struct{})
	for _, ls := range snaps {
		for name := range ls.Snap.Counters {
			nameSet[name] = struct{}{}
		}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		typ := "gauge"
		if strings.HasSuffix(name, "_total") {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# TYPE past_%s %s\n", name, typ); err != nil {
			return err
		}
		for _, ls := range snaps {
			v, ok := ls.Snap.Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "past_%s%s %d\n", name, renderLabels(ls.Labels), v); err != nil {
				return err
			}
		}
	}

	histTyped := false
	for _, ls := range snaps {
		if len(ls.Snap.RPCLat) == 0 {
			continue
		}
		if !histTyped {
			if _, err := fmt.Fprintf(w, "# TYPE past_rpc_latency_seconds histogram\n"); err != nil {
				return err
			}
			histTyped = true
		}
		lab := renderLabels(ls.Labels)
		var cum int64
		for i, v := range ls.Snap.RPCLat {
			cum += v
			if _, err := fmt.Fprintf(w, "past_rpc_latency_seconds_bucket%s %d\n",
				renderLabelsExtra(ls.Labels, "le", bucketLE(i)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "past_rpc_latency_seconds_sum%s %g\npast_rpc_latency_seconds_count%s %d\n",
			lab, float64(ls.Snap.Get(CtrRPCTimeNanos))/1e9, lab, cum); err != nil {
			return err
		}
	}
	return nil
}

// bucketLE renders bucket i's upper bound as its `le` label value.
func bucketLE(i int) string {
	if b := LatencyBucketBound(i); b >= 0 {
		return fmt.Sprintf("%g", b.Seconds())
	}
	return "+Inf"
}

// labelEscaper escapes a label value per the exposition format: only
// backslash, double quote, and newline are special. (Go's %q would
// additionally escape non-ASCII and control bytes, producing values a
// Prometheus parser reads back differently than they were written.)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels formats {k="v",...} with sorted keys, or "" when empty.
func renderLabels(labels map[string]string) string {
	return renderLabelsExtra(labels, "", "")
}

// renderLabelsExtra renders labels plus one extra pair (appended last,
// as Prometheus convention places "le").
func renderLabelsExtra(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, labelEscaper.Replace(labels[k]))
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, labelEscaper.Replace(extraV))
	}
	b.WriteByte('}')
	return b.String()
}
