package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders a snapshot in the Prometheus text exposition
// format (version 0.0.4), every metric prefixed "past_" and carrying
// the given labels. Counters whose name ends in "_total" are typed
// counter, the rest gauge; the RPC-latency buckets render as a
// cumulative histogram past_rpc_latency_seconds. Output order is
// deterministic (sorted names, sorted label keys).
func WriteProm(w io.Writer, snap Snapshot, labels map[string]string) error {
	lab := renderLabels(labels)
	for _, name := range snap.Names() {
		typ := "gauge"
		if strings.HasSuffix(name, "_total") {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# TYPE past_%s %s\npast_%s%s %d\n",
			name, typ, name, lab, snap.Counters[name]); err != nil {
			return err
		}
	}
	if len(snap.RPCLat) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# TYPE past_rpc_latency_seconds histogram\n"); err != nil {
		return err
	}
	var cum int64
	for i, v := range snap.RPCLat {
		cum += v
		le := "+Inf"
		if b := LatencyBucketBound(i); b >= 0 {
			le = fmt.Sprintf("%g", b.Seconds())
		}
		if _, err := fmt.Fprintf(w, "past_rpc_latency_seconds_bucket%s %d\n",
			renderLabelsExtra(labels, "le", le), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "past_rpc_latency_seconds_sum%s %g\npast_rpc_latency_seconds_count%s %d\n",
		lab, float64(snap.Get(CtrRPCTimeNanos))/1e9, lab, cum)
	return err
}

// renderLabels formats {k="v",...} with sorted keys, or "" when empty.
func renderLabels(labels map[string]string) string {
	return renderLabelsExtra(labels, "", "")
}

// renderLabelsExtra renders labels plus one extra pair (appended last,
// as Prometheus convention places "le").
func renderLabelsExtra(labels map[string]string, extraK, extraV string) string {
	if len(labels) == 0 && extraK == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}
