package transport

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"errors"

	"past/internal/admit"
	"past/internal/cache"
	"past/internal/id"
	"past/internal/netsim"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/topology"
	"past/internal/wire"
)

var registerOnce sync.Once

func register() {
	registerOnce.Do(func() {
		wire.RegisterWire()
		past.RegisterWire()
	})
}

// tcpNode is one PAST node served over a loopback TCP socket.
type tcpNode struct {
	t    *TCP
	node *past.Node
}

func startNode(t *testing.T, rng *rand.Rand, cfg past.Config, capacity int64) *tcpNode {
	t.Helper()
	var nid id.Node
	rng.Read(nid[:])
	pos := topology.DefaultPlane.RandomPoint(rng)
	tr, err := New(nid, "127.0.0.1:0", pos)
	if err != nil {
		t.Fatal(err)
	}
	n := past.New(nid, tr, cfg, capacity, rng.Int63())
	tr.Serve(n)
	return &tcpNode{t: tr, node: n}
}

func buildTCPCluster(t *testing.T, n int, seed int64) []*tcpNode {
	t.Helper()
	register()
	rng := rand.New(rand.NewSource(seed))
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 8}
	cfg.K = 3

	nodes := make([]*tcpNode, 0, n)
	first := startNode(t, rng, cfg, 1<<22)
	first.node.Overlay().Bootstrap()
	nodes = append(nodes, first)
	for i := 1; i < n; i++ {
		nd := startNode(t, rng, cfg, 1<<22)
		bootID, err := nd.t.Bootstrap(nodes[0].t.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.node.Overlay().Join(bootID); err != nil {
			t.Fatalf("join node %d over TCP: %v", i, err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.t.Close()
		}
	})
	return nodes
}

func TestTCPInsertLookupReclaim(t *testing.T) {
	nodes := buildTCPCluster(t, 8, 1)
	client := nodes[3].node
	content := []byte("bytes that crossed real sockets")

	res, err := client.Insert(past.InsertSpec{Name: "tcp-file", Content: content})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Stored != 3 {
		t.Fatalf("insert over TCP: %+v", res)
	}

	got, err := nodes[6].node.Lookup(res.FileID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || !bytes.Equal(got.Content, content) {
		t.Fatalf("lookup over TCP: %+v", got)
	}

	rr, err := nodes[1].node.Reclaim(res.FileID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Found {
		t.Fatal("reclaim over TCP found nothing")
	}
}

func TestTCPClientRPC(t *testing.T) {
	nodes := buildTCPCluster(t, 6, 2)
	// A pure client (not part of the overlay) drives a node via the
	// client RPCs, exactly what cmd/pastctl does.
	addr := nodes[2].t.Addr()
	var cid id.Node
	rand.New(rand.NewSource(99)).Read(cid[:])
	ct, err := New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	reply, err := ct.InvokeAddr(addr, &past.ClientInsert{Name: "rpc-file", Content: []byte("hello rpc")})
	if err != nil {
		t.Fatal(err)
	}
	ir := reply.(*past.ClientInsertReply)
	if !ir.OK {
		t.Fatalf("client insert: %+v", ir)
	}

	reply, err = ct.InvokeAddr(addr, &past.ClientLookup{File: ir.FileID})
	if err != nil {
		t.Fatal(err)
	}
	lr := reply.(*past.ClientLookupReply)
	if !lr.Found || string(lr.Content) != "hello rpc" {
		t.Fatalf("client lookup: %+v", lr)
	}

	reply, err = ct.InvokeAddr(addr, &past.ClientReclaim{File: ir.FileID})
	if err != nil {
		t.Fatal(err)
	}
	if rr := reply.(*past.ClientReclaimReply); !rr.Found {
		t.Fatal("client reclaim found nothing")
	}
}

func TestTCPNodeFailureDetected(t *testing.T) {
	nodes := buildTCPCluster(t, 8, 3)
	client := nodes[0].node
	res, err := client.Insert(past.InsertSpec{Name: "survivor", Content: []byte("data")})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}

	// Kill a node holding a replica (not the client).
	var victim *tcpNode
	for _, nd := range nodes[1:] {
		if nd.node.HasReplica(res.FileID) {
			victim = nd
			break
		}
	}
	if victim == nil {
		t.Skip("no replica on a non-client node")
	}
	victim.t.Close()

	// Keep-alive rounds on the survivors repair leaf sets and re-create
	// the lost replica.
	for round := 0; round < 2; round++ {
		for _, nd := range nodes {
			if nd == victim {
				continue
			}
			nd.node.Overlay().CheckLeafSet()
		}
	}

	got, err := client.Lookup(res.FileID)
	if err != nil || !got.Found {
		t.Fatalf("lookup after TCP node failure: %v %+v", err, got)
	}
}

func TestTCPUnknownNode(t *testing.T) {
	register()
	rng := rand.New(rand.NewSource(4))
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 8}
	cfg.K = 3
	nd := startNode(t, rng, cfg, 1<<20)
	defer nd.t.Close()
	var ghost id.Node
	rng.Read(ghost[:])
	if _, err := nd.t.Invoke(context.Background(), nd.node.ID(), ghost, &pastry.Ping{}); err == nil {
		t.Fatal("invoke of unknown node must fail")
	}
	if nd.t.Alive(ghost) {
		t.Fatal("ghost node reported alive")
	}
	if !nd.t.Alive(nd.node.ID()) {
		t.Fatal("self must be alive")
	}
}

func TestTCPProximityFromDirectory(t *testing.T) {
	nodes := buildTCPCluster(t, 4, 5)
	a, b := nodes[0], nodes[1]
	d, ok := a.t.Proximity(a.node.ID(), b.node.ID())
	if !ok || d <= 0 {
		t.Fatalf("proximity = %g, %v", d, ok)
	}
	// Symmetric across transports.
	d2, ok := b.t.Proximity(a.node.ID(), b.node.ID())
	if !ok || fmt.Sprintf("%.6f", d) != fmt.Sprintf("%.6f", d2) {
		t.Fatalf("asymmetric proximity: %g vs %g", d, d2)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	nodes := buildTCPCluster(t, 6, 6)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := nodes[i%len(nodes)].node
			res, err := client.Insert(past.InsertSpec{
				Name:    fmt.Sprintf("conc-%d", i),
				Content: []byte(fmt.Sprintf("payload %d", i)),
			})
			if err != nil {
				errs <- err
				return
			}
			if !res.OK {
				errs <- fmt.Errorf("insert %d failed: %s", i, res.Reason)
				return
			}
			got, err := client.Lookup(res.FileID)
			if err != nil {
				errs <- err
				return
			}
			if !got.Found {
				errs <- fmt.Errorf("lookup %d not found", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCachePolicyOverTCP(t *testing.T) {
	register()
	rng := rand.New(rand.NewSource(7))
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 8}
	cfg.K = 3
	cfg.CachePolicy = cache.GDS

	first := startNode(t, rng, cfg, 1<<22)
	first.node.Overlay().Bootstrap()
	nodes := []*tcpNode{first}
	for i := 1; i < 6; i++ {
		nd := startNode(t, rng, cfg, 1<<22)
		bootID, err := nd.t.Bootstrap(first.t.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.node.Overlay().Join(bootID); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.t.Close()
		}
	}()

	res, err := nodes[0].node.Insert(past.InsertSpec{Name: "hot", Content: []byte("popular content")})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}
	far := nodes[5].node
	if _, err := far.Lookup(res.FileID); err != nil {
		t.Fatal(err)
	}
	second, err := far.Lookup(res.FileID)
	if err != nil || !second.Found {
		t.Fatalf("second lookup: %v %+v", err, second)
	}
	if second.Hops != 0 {
		t.Fatalf("second lookup took %d hops; expected cached at access point", second.Hops)
	}
}

func TestInvokeAddrDialFailure(t *testing.T) {
	register()
	rng := rand.New(rand.NewSource(8))
	var nid id.Node
	rng.Read(nid[:])
	tr, err := New(nid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.InvokeAddr("127.0.0.1:1", &pastry.Ping{}); err == nil {
		t.Fatal("dial to a closed port must fail")
	}
	if _, err := tr.Bootstrap("127.0.0.1:1"); err == nil {
		t.Fatal("bootstrap via a dead address must fail")
	}
}

func TestInvokeBeforeServe(t *testing.T) {
	register()
	rng := rand.New(rand.NewSource(9))
	var a, b id.Node
	rng.Read(a[:])
	rng.Read(b[:])
	ta, err := New(a, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	// Self-invoke without an endpoint installed errors cleanly.
	if _, err := ta.Invoke(context.Background(), a, a, &pastry.Ping{}); err == nil {
		t.Fatal("self-invoke without endpoint must fail")
	}
	// Invoke to an id that is not in the directory.
	if _, err := ta.Invoke(context.Background(), a, b, &pastry.Ping{}); err == nil {
		t.Fatal("unknown destination must fail")
	}
}

func TestConnectionPoolReuse(t *testing.T) {
	nodes := buildTCPCluster(t, 3, 10)
	a, b := nodes[0], nodes[1]
	// Repeated pings between the same pair must reuse pooled
	// connections rather than growing without bound.
	for i := 0; i < 50; i++ {
		if _, err := a.t.Invoke(context.Background(), a.node.ID(), b.node.ID(), &pastry.Ping{}); err != nil {
			t.Fatal(err)
		}
	}
	a.t.mu.Lock()
	pooled := len(a.t.idle[b.node.ID()])
	a.t.mu.Unlock()
	if pooled == 0 || pooled > 2 {
		t.Fatalf("pool size %d; want 1..2", pooled)
	}
}

func TestServerRejectsAfterClose(t *testing.T) {
	register()
	rng := rand.New(rand.NewSource(11))
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 8}
	cfg.K = 1
	nd := startNode(t, rng, cfg, 1<<20)
	addr := nd.t.Addr()
	nd.node.Overlay().Bootstrap()
	if err := nd.t.Close(); err != nil {
		t.Fatal(err)
	}
	var cid id.Node
	rng.Read(cid[:])
	ct, err := New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	if _, err := ct.InvokeAddr(addr, &pastry.Ping{}); err == nil {
		t.Fatal("closed server still answering")
	}
}

// faultyServer is a raw TCP server whose per-connection behavior is
// scripted: each accepted connection consumes the next script entry.
// "echo" answers every request on the connection correctly; "half"
// reads one request, writes a truncated (half-written) response, and
// slams the connection shut; "echo-then-half" echoes the first request
// and half-writes the second (poisoning a connection only after the
// client has pooled it).
type faultyServer struct {
	ln      net.Listener
	accepts atomic.Int32
}

func newFaultyServer(t *testing.T, script []string) *faultyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &faultyServer{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.accepts.Add(1)
			mode := "echo"
			if i < len(script) {
				mode = script[i]
			}
			go func(c net.Conn, mode string) {
				defer c.Close()
				codec := wire.NewCodec(c)
				for n := 0; ; n++ {
					req, err := codec.ReadRequest()
					if err != nil {
						return
					}
					if mode == "half" || (mode == "echo-then-half" && n > 0) {
						// A prefix of a valid gob stream: enough bytes to
						// look like the start of a response, then EOF.
						c.Write([]byte{0x1f, 0xff, 0x83})
						return
					}
					if err := codec.WriteResponse(&wire.Response{Msg: req.Msg}); err != nil {
						return
					}
				}
			}(c, mode)
		}
	}()
	return s
}

// dialFaulty wires a client transport to the faulty server under a fake
// node id, bypassing directory gossip.
func dialFaulty(t *testing.T, s *faultyServer) (*TCP, id.Node) {
	t.Helper()
	register()
	var cid, sid id.Node
	rng := rand.New(rand.NewSource(99))
	rng.Read(cid[:])
	rng.Read(sid[:])
	ct, err := New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ct.Close() })
	ct.mu.Lock()
	ct.dir[sid] = wire.DirEntry{ID: sid, Addr: s.ln.Addr().String()}
	ct.mu.Unlock()
	return ct, sid
}

func TestStalePooledConnRetriesOnFreshDial(t *testing.T) {
	// Connection 1 succeeds and is pooled, then serves a half-written
	// response on reuse; the retry's fresh connection behaves.
	s := newFaultyServer(t, []string{"echo-then-half", "echo"})
	ct, sid := dialFaulty(t, s)

	// Hand the pool a healthy-looking connection whose server side will
	// poison the next exchange.
	if _, err := ct.Invoke(context.Background(), ct.self, sid, &pastry.Ping{}); err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	ct.mu.Lock()
	pooled := len(ct.idle[sid])
	ct.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("pooled %d connections; want 1", pooled)
	}

	if _, err := ct.Invoke(context.Background(), ct.self, sid, &pastry.Ping{}); err != nil {
		t.Fatalf("invoke over stale pooled conn must retry on a fresh dial: %v", err)
	}
	if got := s.accepts.Load(); got != 2 {
		t.Fatalf("server saw %d connections; want 2 (pooled + one retry)", got)
	}
	// The poisoned connection must not have been re-pooled; only the
	// fresh one may remain.
	ct.mu.Lock()
	pooled = len(ct.idle[sid])
	ct.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("pool holds %d connections after retry; want 1", pooled)
	}
}

func TestHalfWrittenResponseOnFreshConnFails(t *testing.T) {
	// A half-written response on a FRESH connection is authoritative:
	// exactly one attempt, error surfaced, nothing pooled.
	s := newFaultyServer(t, []string{"half"})
	ct, sid := dialFaulty(t, s)

	if _, err := ct.Invoke(context.Background(), ct.self, sid, &pastry.Ping{}); err == nil {
		t.Fatal("invoke must fail when the fresh connection dies mid-response")
	}
	if got := s.accepts.Load(); got != 1 {
		t.Fatalf("server saw %d connections; want 1 (no retry for fresh conns)", got)
	}
	ct.mu.Lock()
	pooled := len(ct.idle[sid])
	ct.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("broken connection was pooled (%d)", pooled)
	}
}

func TestStaleConnRetryAlsoFailingSurfacesError(t *testing.T) {
	// Pooled conn goes stale AND the retry's fresh conn half-writes:
	// the error surfaces after exactly one retry, and neither broken
	// connection lands back in the pool.
	s := newFaultyServer(t, []string{"echo-then-half", "half"})
	ct, sid := dialFaulty(t, s)

	if _, err := ct.Invoke(context.Background(), ct.self, sid, &pastry.Ping{}); err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	if _, err := ct.Invoke(context.Background(), ct.self, sid, &pastry.Ping{}); err == nil {
		t.Fatal("invoke must fail when the retry's fresh connection also dies")
	}
	if got := s.accepts.Load(); got != 2 {
		t.Fatalf("server saw %d connections; want 2 (pooled + exactly one retry)", got)
	}
	ct.mu.Lock()
	pooled := len(ct.idle[sid])
	ct.mu.Unlock()
	if pooled != 0 {
		t.Fatalf("broken connection was pooled (%d)", pooled)
	}
}

// admitTCPPair builds a two-node TCP overlay where only the second
// node runs admission control against a frozen clock, plus a fileId
// whose route from the first node enters through the gated one.
func admitTCPPair(t *testing.T, retry *past.RetryPolicy, ac admit.Config) (client *past.Node, gated *past.Node, f id.File) {
	t.Helper()
	register()
	rng := rand.New(rand.NewSource(42))
	cfg := past.DefaultConfig()
	// FailFast surfaces a hop's shed to the caller instead of absorbing
	// it into per-hop reroute — the two-node topology has no alternate
	// routes anyway, and these tests assert on the raw wire error.
	cfg.Pastry = pastry.Config{B: 4, L: 8, FailFast: true}
	cfg.K = 1
	cfg.Retry = retry

	a := startNode(t, rng, cfg, 1<<20)
	a.node.Overlay().Bootstrap()

	frozen := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ac.Clock = func() time.Time { return frozen }
	gcfg := cfg
	gcfg.Retry = nil
	gcfg.Admit = &ac
	b := startNode(t, rng, gcfg, 1<<20)
	bootID, err := b.t.Bootstrap(a.t.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.node.Overlay().Join(bootID); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.t.Close(); b.t.Close() })

	// Find a missing fileId that a routes through b (misses are never
	// cached, so every lookup re-crosses the wire).
	for i := 0; i < 1000; i++ {
		rng.Read(f[:])
		if a.node.Overlay().FirstHop(f.Key()) == b.node.ID() {
			return a.node, b.node, f
		}
	}
	t.Fatal("no key routing a->b found")
	return nil, nil, f
}

func TestTCPOverloadedRoundTripsWire(t *testing.T) {
	// A gated node sheds a routed lookup; the shed must cross the real
	// socket as a string and rehydrate into netsim.ErrOverloaded at the
	// sender, where errors.Is classification drives rerouting/retry.
	client, gated, f := admitTCPPair(t, nil, admit.Config{Rate: 1, Burst: 2, Depth: 1})
	var overloaded error
	for i := 0; i < 10 && overloaded == nil; i++ {
		if _, err := client.Lookup(f); err != nil {
			overloaded = err
		}
	}
	if overloaded == nil {
		t.Fatal("frozen token bucket never shed over TCP")
	}
	if !errors.Is(overloaded, netsim.ErrOverloaded) {
		t.Fatalf("remote shed did not rehydrate to ErrOverloaded: %v", overloaded)
	}
	if gated.AdmitController().Shed() == 0 {
		t.Fatal("gated node recorded no sheds")
	}
}

func TestTCPOverloadHonoredByRetryBackoff(t *testing.T) {
	// Identical runs except for OverloadFactor: same jitter seed, same
	// shedding server, so the captured backoff sleeps must differ by
	// exactly the factor — proving the policy classified the remote,
	// rehydrated error as overload and backed off harder.
	run := func(factor float64) []time.Duration {
		var sleeps []time.Duration
		client, _, f := admitTCPPair(t, &past.RetryPolicy{
			MaxAttempts:    3,
			BaseDelay:      10 * time.Millisecond,
			JitterSeed:     7,
			OverloadFactor: factor,
			Sleep:          func(d time.Duration) { sleeps = append(sleeps, d) },
		}, admit.Config{Rate: 1, Burst: 1, Depth: 1})
		// Burn the gated node's entire frozen budget so every retry
		// attempt below fails with a shed.
		for i := 0; i < 4; i++ {
			client.Lookup(f)
		}
		sleeps = nil
		_, err := client.Lookup(f)
		if !errors.Is(err, netsim.ErrOverloaded) {
			t.Fatalf("factor %g: final error %v; want ErrOverloaded", factor, err)
		}
		return sleeps
	}
	flat := run(1)
	doubled := run(2)
	if len(flat) != 2 || len(doubled) != 2 {
		t.Fatalf("want 2 backoff sleeps per run, got %d and %d", len(flat), len(doubled))
	}
	for i := range flat {
		if flat[i] <= 0 {
			t.Fatalf("backoff %d not positive: %v", i, flat[i])
		}
		if doubled[i] != 2*flat[i] {
			t.Fatalf("backoff %d: %v with factor 2 vs %v with factor 1", i, doubled[i], flat[i])
		}
	}
}

func TestTCPConcurrentClientsAdmission(t *testing.T) {
	// The satellite race test: many concurrent TCP clients hit one
	// admission-gated node's blocking client-RPC gate. Every request
	// must resolve — granted after queueing, or shed with a wire-coded
	// ErrOverloaded — with the counters reconciling exactly.
	register()
	rng := rand.New(rand.NewSource(77))
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 8}
	cfg.K = 1
	cfg.Admit = &admit.Config{Rate: 50, Burst: 2, Depth: 4}
	nd := startNode(t, rng, cfg, 1<<20)
	nd.node.Overlay().Bootstrap()
	defer nd.t.Close()
	addr := nd.t.Addr()

	const clients, perClient = 8, 4
	var wg sync.WaitGroup
	var served, shed atomic.Int64
	errCh := make(chan error, clients*perClient)
	for i := 0; i < clients; i++ {
		var cid id.Node
		rng.Read(cid[:])
		ct, err := New(cid, "127.0.0.1:0", topology.Point{})
		if err != nil {
			t.Fatal(err)
		}
		defer ct.Close()
		for j := 0; j < perClient; j++ {
			wg.Add(1)
			go func(ct *TCP, i, j int) {
				defer wg.Done()
				var f id.File
				rand.New(rand.NewSource(int64(i*100 + j))).Read(f[:])
				_, err := ct.InvokeAddr(addr, &past.ClientLookup{File: f})
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, netsim.ErrOverloaded):
					shed.Add(1)
				default:
					errCh <- err
				}
			}(ct, i, j)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("unexpected client error: %v", err)
	}
	total := int64(clients * perClient)
	if served.Load()+shed.Load() != total {
		t.Fatalf("served %d + shed %d != %d", served.Load(), shed.Load(), total)
	}
	if shed.Load() == 0 {
		t.Fatal("burst of concurrent clients never shed (capacity 6 vs 32 arrivals)")
	}
	ctl := nd.node.AdmitController()
	if ctl.Admitted()+ctl.Shed() != total {
		t.Fatalf("controller admitted %d + shed %d != %d", ctl.Admitted(), ctl.Shed(), total)
	}
}
