// Package transport runs PAST nodes over real TCP sockets. It
// implements the same netsim.Net interface the in-process emulation
// provides, so the identical pastry.Node and past.Node code routes,
// joins, stores, and repairs over the wire.
//
// A TCP value is one process's view of the network: a directory of
// id -> address mappings (seeded from a bootstrap node and spread by
// announcement), a pool of client connections, and a server that
// delivers incoming requests to the local endpoint. Node positions on
// the emulated proximity plane travel with the directory entries; a
// deployment would substitute measured round-trip times.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/obs"
	"past/internal/topology"
	"past/internal/wire"
)

// TracedEndpoint is implemented by endpoints that accept the wire
// envelope's trace context alongside a delivery (past.Node does). The
// transport hands incoming requests carrying an active trace context to
// DeliverTraced; plain endpoints keep receiving Deliver, so trace
// propagation is strictly opt-in per endpoint.
type TracedEndpoint interface {
	netsim.Endpoint
	DeliverTraced(tc obs.TraceContext, from id.Node, msg any) (any, error)
}

// deliver hands one request to the endpoint, routing through the traced
// entry point when the envelope carries an active trace context.
func deliver(ep netsim.Endpoint, req *wire.Request) (any, error) {
	if req.TC.Active() {
		if te, ok := ep.(TracedEndpoint); ok {
			return te.DeliverTraced(req.TC, req.Src, req.Msg)
		}
	}
	return ep.Deliver(req.Src, req.Msg)
}

// DefaultDialTimeout bounds connection establishment unless the
// instance overrides it with SetDialTimeout; a node that cannot be
// dialed is reported down, which is how Pastry detects failures.
const DefaultDialTimeout = 2 * time.Second

// DialTimeout is the historical name of the package default.
const DialTimeout = DefaultDialTimeout

// TCP is a transport endpoint: client side (netsim.Net) plus server.
type TCP struct {
	self id.Node
	addr string // listen address, rewritten to the bound address

	mu          sync.Mutex
	dialTimeout time.Duration
	dir         map[id.Node]wire.DirEntry
	idle        map[id.Node][]*conn
	idleAddr    map[string][]*conn
	serving     map[net.Conn]struct{}
	ep          netsim.Endpoint
	ln          net.Listener
	wg          sync.WaitGroup
	done        chan struct{}
	once        sync.Once
}

var _ netsim.Net = (*TCP)(nil)

type conn struct {
	c     net.Conn
	codec *wire.Codec
}

// New creates a transport for the node self, listening on addr (use
// 127.0.0.1:0 for tests). pos is the node's position on the proximity
// plane. The endpoint must be set with Serve before traffic arrives.
func New(self id.Node, addr string, pos topology.Point) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{
		self:        self,
		addr:        ln.Addr().String(),
		dialTimeout: DefaultDialTimeout,
		dir:         make(map[id.Node]wire.DirEntry),
		idle:        make(map[id.Node][]*conn),
		idleAddr:    make(map[string][]*conn),
		serving:     make(map[net.Conn]struct{}),
		ln:          ln,
		done:        make(chan struct{}),
	}
	t.dir[self] = wire.DirEntry{ID: self, Addr: t.addr, X: pos.X, Y: pos.Y}
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCP) Addr() string { return t.addr }

// SetDialTimeout overrides this instance's connection-establishment
// bound (the failure-detection horizon). It applies to future dials;
// zero or negative restores the package default.
func (t *TCP) SetDialTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultDialTimeout
	}
	t.mu.Lock()
	t.dialTimeout = d
	t.mu.Unlock()
}

// dialTimeoutNow returns the instance's current dial timeout.
func (t *TCP) dialTimeoutNow() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dialTimeout
}

// Serve installs the local endpoint and starts accepting connections.
func (t *TCP) Serve(ep netsim.Endpoint) {
	t.mu.Lock()
	t.ep = ep
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop()
}

// Close stops the server and closes pooled connections.
func (t *TCP) Close() error {
	t.once.Do(func() { close(t.done) })
	err := t.ln.Close()
	t.mu.Lock()
	for _, cs := range t.idle {
		for _, c := range cs {
			c.c.Close()
		}
	}
	t.idle = make(map[id.Node][]*conn)
	for _, cs := range t.idleAddr {
		for _, c := range cs {
			c.c.Close()
		}
	}
	t.idleAddr = make(map[string][]*conn)
	for c := range t.serving {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return err
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			return
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

func (t *TCP) serveConn(c net.Conn) {
	defer t.wg.Done()
	t.mu.Lock()
	t.serving[c] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.serving, c)
		t.mu.Unlock()
		c.Close()
	}()
	codec := wire.NewCodec(c)
	for {
		req, err := codec.ReadRequest()
		if err != nil {
			return
		}
		resp := t.dispatch(req)
		if err := codec.WriteResponse(resp); err != nil {
			return
		}
	}
}

// dispatch handles directory gossip locally and hands everything else
// to the node endpoint.
func (t *TCP) dispatch(req *wire.Request) *wire.Response {
	switch m := req.Msg.(type) {
	case *wire.DirEntry:
		t.AddEntry(*m)
		return &wire.Response{Msg: &wire.DirReply{Entries: t.Entries()}}
	case *wire.DirQuery:
		return &wire.Response{Msg: &wire.DirReply{Entries: t.Entries()}}
	}
	t.mu.Lock()
	ep := t.ep
	t.mu.Unlock()
	if ep == nil {
		return &wire.Response{Err: "transport: no endpoint installed"}
	}
	reply, err := deliver(ep, req)
	if err != nil {
		return &wire.Response{Err: err.Error()}
	}
	return &wire.Response{Msg: reply}
}

// AddEntry records (or updates) a directory entry.
func (t *TCP) AddEntry(e wire.DirEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dir[e.ID] = e
}

// Entries returns a directory snapshot with this node's entry first
// (bootstrap peers identify the responder by that position).
func (t *TCP) Entries() []wire.DirEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]wire.DirEntry, 0, len(t.dir))
	out = append(out, t.dir[t.self])
	for nid, e := range t.dir {
		if nid != t.self {
			out = append(out, e)
		}
	}
	return out
}

// SelfEntry returns this node's directory entry.
func (t *TCP) SelfEntry() wire.DirEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dir[t.self]
}

// Invoke sends msg to dst and returns its reply, implementing
// netsim.Net. Unknown or unreachable destinations map onto the
// emulation's sentinel errors so the protocol layers behave
// identically over sockets; the context deadline bounds the whole
// exchange (dial + write + read) and its expiry surfaces as
// netsim.ErrTimeout.
func (t *TCP) Invoke(ctx context.Context, src, dst id.Node, msg any) (any, error) {
	if err := netsim.CtxErr(ctx); err != nil {
		return nil, err
	}
	t.mu.Lock()
	e, ok := t.dir[dst]
	t.mu.Unlock()
	if !ok {
		return nil, netsim.ErrUnknownNode
	}
	req := &wire.Request{Src: src, Msg: msg}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.TC = tc
	}
	if dst == t.self {
		// Loopback shortcut mirrors the emulation's direct call.
		t.mu.Lock()
		ep := t.ep
		t.mu.Unlock()
		if ep == nil {
			return nil, errors.New("transport: no endpoint installed")
		}
		return deliver(ep, req)
	}
	resp, err := t.call(ctx, dst, e.Addr, req)
	if err != nil {
		if ctxErr := netsim.CtxErr(ctx); ctxErr != nil {
			return nil, ctxErr
		}
		if isTimeout(err) {
			return nil, fmt.Errorf("%w: %s: %v", netsim.ErrTimeout, dst.Short(), err)
		}
		return nil, fmt.Errorf("%w: %s: %v", netsim.ErrNodeDown, dst.Short(), err)
	}
	if resp.Err != "" {
		return nil, rehydrateErr(resp.Err)
	}
	return resp.Msg, nil
}

// isTimeout reports whether a socket-level failure was a deadline
// expiry rather than a refused/reset connection.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// rehydrateErr maps an error string received over the wire back onto
// the sentinel taxonomy, so errors.Is classification (and therefore
// retry decisions) work identically over sockets and in-process. Any
// unrecognized string stays an opaque application error.
func rehydrateErr(s string) error {
	for _, sentinel := range []error{netsim.ErrNodeDown, netsim.ErrUnknownNode, netsim.ErrTimeout, netsim.ErrOverloaded} {
		if strings.Contains(s, sentinel.Error()) {
			return fmt.Errorf("%w: remote: %s", sentinel, s)
		}
	}
	return errors.New(s)
}

// InvokeAddr sends msg directly to a known address (used before the
// destination's nodeId is known, e.g. the first bootstrap contact, and
// by pure clients — pastctl, past-load, the past-cluster orchestrator —
// that address nodes by socket rather than by id). Connections are
// pooled per address. A pooled connection may have gone stale while
// idle — the peer restarted, the socket half-closed — in which case the
// first exchange fails at the socket layer; the request is then retried
// exactly once on a fresh dial, so a killed-then-restarted node is
// redialed transparently instead of surfacing a spurious decode error.
// Remote errors are rehydrated onto the sentinel taxonomy, so callers
// can classify ErrOverloaded and friends across restarts too.
func (t *TCP) InvokeAddr(addr string, msg any) (any, error) {
	return t.InvokeAddrContext(context.Background(), addr, msg)
}

// InvokeAddrContext is InvokeAddr bounded by a context: the deadline
// covers the exchange, and a trace context attached with
// obs.ContextWithTrace is stamped onto the wire envelope — which is how
// `pastctl trace` asks a live access point for a hop-recorded lookup.
func (t *TCP) InvokeAddrContext(ctx context.Context, addr string, msg any) (any, error) {
	req := &wire.Request{Src: t.self, Msg: msg}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.TC = tc
	}
	c, pooled, err := t.getAddrConn(ctx, addr)
	if err != nil {
		return nil, err
	}
	resp, err := roundTrip(ctx, c, req)
	if err != nil {
		c.c.Close()
		if !pooled {
			return nil, err
		}
		if c, err = t.dial(ctx, addr); err != nil {
			return nil, err
		}
		if resp, err = roundTrip(ctx, c, req); err != nil {
			c.c.Close()
			return nil, err
		}
	}
	t.putAddrConn(addr, c)
	if resp.Err != "" {
		return nil, rehydrateErr(resp.Err)
	}
	return resp.Msg, nil
}

// getAddrConn returns an idle pooled connection to addr if one exists
// (pooled = true), else a fresh dial.
func (t *TCP) getAddrConn(ctx context.Context, addr string) (*conn, bool, error) {
	t.mu.Lock()
	if cs := t.idleAddr[addr]; len(cs) > 0 {
		c := cs[len(cs)-1]
		t.idleAddr[addr] = cs[:len(cs)-1]
		t.mu.Unlock()
		return c, true, nil
	}
	t.mu.Unlock()
	c, err := t.dial(ctx, addr)
	return c, false, err
}

func (t *TCP) putAddrConn(addr string, c *conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.idleAddr[addr]) >= 2 {
		c.c.Close()
		return
	}
	t.idleAddr[addr] = append(t.idleAddr[addr], c)
}

// call performs one request/response on a pooled connection; a busy
// pool dials a fresh connection, so re-entrant RPC chains (A->B->A->B)
// cannot deadlock. A connection that fails mid-exchange (including a
// half-written response) is closed, never returned to the pool. If the
// failed connection came FROM the pool it may simply have gone stale
// while idle (peer restart, half-closed socket), so the request is
// retried once on a fresh dial before the destination is declared
// dead — a fresh-dial failure is authoritative.
func (t *TCP) call(ctx context.Context, dst id.Node, addr string, req *wire.Request) (*wire.Response, error) {
	c, pooled, err := t.getConn(ctx, dst, addr)
	if err != nil {
		return nil, err
	}
	resp, err := roundTrip(ctx, c, req)
	if err != nil {
		c.c.Close()
		if !pooled || netsim.CtxErr(ctx) != nil {
			return nil, err
		}
		if c, err = t.dial(ctx, addr); err != nil {
			return nil, err
		}
		if resp, err = roundTrip(ctx, c, req); err != nil {
			c.c.Close()
			return nil, err
		}
	}
	t.putConn(dst, c)
	return resp, nil
}

// roundTrip writes one request and reads its response, bounded by the
// context deadline via SetDeadline on the socket. The deadline is
// cleared afterwards so the connection can return to the pool clean.
func roundTrip(ctx context.Context, c *conn, req *wire.Request) (*wire.Response, error) {
	if dl, ok := ctx.Deadline(); ok {
		if err := c.c.SetDeadline(dl); err != nil {
			return nil, err
		}
	}
	if err := c.codec.WriteRequest(req); err != nil {
		return nil, err
	}
	resp, err := c.codec.ReadResponse()
	if err != nil {
		return nil, err
	}
	if _, ok := ctx.Deadline(); ok {
		if err := c.c.SetDeadline(time.Time{}); err != nil {
			c.c.Close()
			return resp, nil // response already complete; just drop the conn
		}
	}
	return resp, nil
}

// getConn returns an idle pooled connection if one exists (pooled =
// true), else a fresh dial.
func (t *TCP) getConn(ctx context.Context, dst id.Node, addr string) (*conn, bool, error) {
	t.mu.Lock()
	if cs := t.idle[dst]; len(cs) > 0 {
		c := cs[len(cs)-1]
		t.idle[dst] = cs[:len(cs)-1]
		t.mu.Unlock()
		return c, true, nil
	}
	t.mu.Unlock()
	c, err := t.dial(ctx, addr)
	return c, false, err
}

func (t *TCP) dial(ctx context.Context, addr string) (*conn, error) {
	d := net.Dialer{Timeout: t.dialTimeoutNow()}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &conn{c: c, codec: wire.NewCodec(c)}, nil
}

func (t *TCP) putConn(dst id.Node, c *conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.idle[dst]) >= 2 {
		c.c.Close()
		return
	}
	t.idle[dst] = append(t.idle[dst], c)
}

// Alive reports whether dst is reachable right now, by probing the
// connection path (the keep-alive analogue).
func (t *TCP) Alive(dst id.Node) bool {
	if dst == t.self {
		return true
	}
	t.mu.Lock()
	e, ok := t.dir[dst]
	t.mu.Unlock()
	if !ok {
		return false
	}
	c, err := net.DialTimeout("tcp", e.Addr, t.dialTimeoutNow())
	if err != nil {
		return false
	}
	c.Close()
	return true
}

// Proximity returns the plane distance between two directory entries.
func (t *TCP) Proximity(a, b id.Node) (float64, bool) {
	t.mu.Lock()
	ea, oka := t.dir[a]
	eb, okb := t.dir[b]
	t.mu.Unlock()
	if !oka || !okb {
		return 0, false
	}
	return topology.Distance(topology.Point{X: ea.X, Y: ea.Y}, topology.Point{X: eb.X, Y: eb.Y}), true
}

// Bootstrap seeds this transport's directory from the node at addr,
// announces this node to every directory member, and returns the
// bootstrap node's id (the overlay join target).
func (t *TCP) Bootstrap(addr string) (id.Node, error) {
	self := t.SelfEntry()
	reply, err := t.InvokeAddr(addr, &self)
	if err != nil {
		return id.Node{}, fmt.Errorf("transport: bootstrap %s: %w", addr, err)
	}
	dr, ok := reply.(*wire.DirReply)
	if !ok {
		return id.Node{}, fmt.Errorf("transport: bootstrap %s: unexpected reply %T", addr, reply)
	}
	if len(dr.Entries) == 0 {
		return id.Node{}, fmt.Errorf("transport: bootstrap %s returned an empty directory", addr)
	}
	bootID := dr.Entries[0].ID // responder lists itself first
	for _, e := range dr.Entries {
		t.AddEntry(e)
	}
	// Announce to everyone else so their directories include us before
	// overlay traffic arrives.
	for _, e := range dr.Entries {
		if e.ID == t.self || e.ID == bootID {
			continue
		}
		if _, err := t.InvokeAddr(e.Addr, &self); err != nil {
			continue // best effort; gossip repairs later
		}
	}
	return bootID, nil
}
