package transport

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/pastry"
	"past/internal/topology"
	"past/internal/wire"
)

// epFunc adapts a function to netsim.Endpoint.
type epFunc func(from id.Node, msg any) (any, error)

func (f epFunc) Deliver(from id.Node, msg any) (any, error) { return f(from, msg) }

// restartableServer is a stand-in for one pastd life: a transport bound
// to a fixed address with a pluggable endpoint. Kill() drops it the way
// SIGKILL does (sockets reset, nothing flushed); a new life is started
// at the same address, which is exactly what the cluster orchestrator's
// restart does.
type restartableServer struct {
	t    *testing.T
	id   id.Node
	addr string
	tr   *TCP
}

func startRestartable(t *testing.T, addr string, sid id.Node, ep netsim.Endpoint) *restartableServer {
	t.Helper()
	tr, err := New(sid, addr, topology.Point{})
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	tr.Serve(ep)
	return &restartableServer{t: t, id: sid, addr: tr.Addr(), tr: tr}
}

func (s *restartableServer) kill() {
	s.tr.Close()
}

func (s *restartableServer) restart(ep netsim.Endpoint) {
	s.t.Helper()
	// The replacement process can lose the port race briefly while the
	// kernel tears the old listener down; retry like a supervisor would.
	var err error
	for i := 0; i < 50; i++ {
		var tr *TCP
		tr, err = New(s.id, s.addr, topology.Point{})
		if err == nil {
			tr.Serve(ep)
			s.tr = tr
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.t.Fatalf("restart %s: %v", s.addr, err)
}

func echoEP() netsim.Endpoint {
	return epFunc(func(from id.Node, msg any) (any, error) { return msg, nil })
}

// TestInvokeAddrStaleConnAcrossRestart: a pooled InvokeAddr connection
// to a node that was killed and restarted at the same address must be
// detected stale and redialed — the caller sees a clean reply, not a
// spurious gob decode error.
func TestInvokeAddrStaleConnAcrossRestart(t *testing.T) {
	register()
	rng := rand.New(rand.NewSource(71))
	var sid, cid id.Node
	rng.Read(sid[:])
	rng.Read(cid[:])

	srv := startRestartable(t, "127.0.0.1:0", sid, echoEP())
	defer func() { srv.tr.Close() }()

	ct, err := New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	if _, err := ct.InvokeAddr(srv.addr, &pastry.Ping{}); err != nil {
		t.Fatalf("first InvokeAddr: %v", err)
	}
	ct.mu.Lock()
	pooled := len(ct.idleAddr[srv.addr])
	ct.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("pooled %d addr connections; want 1", pooled)
	}

	// Kill and restart the server at the same address: the pooled
	// connection is now a dead socket.
	srv.kill()
	srv.restart(echoEP())

	reply, err := ct.InvokeAddr(srv.addr, &pastry.Ping{})
	if err != nil {
		t.Fatalf("InvokeAddr across restart must redial the stale conn: %v", err)
	}
	if _, ok := reply.(*pastry.Ping); !ok {
		t.Fatalf("unexpected reply %T", reply)
	}
	ct.mu.Lock()
	pooled = len(ct.idleAddr[srv.addr])
	ct.mu.Unlock()
	if pooled != 1 {
		t.Fatalf("pool holds %d addr connections after retry; want only the fresh one", pooled)
	}
}

// TestSentinelsSurviveRestart: ErrOverloaded and ErrTimeout returned by
// the NEW life of a restarted node must still classify under errors.Is
// when the request rode the stale-conn retry path — the sentinel
// rehydration has to happen on the retried exchange too.
func TestSentinelsSurviveRestart(t *testing.T) {
	register()
	rng := rand.New(rand.NewSource(72))
	var sid, cid id.Node
	rng.Read(sid[:])
	rng.Read(cid[:])

	srv := startRestartable(t, "127.0.0.1:0", sid, echoEP())
	defer func() { srv.tr.Close() }()

	ct, err := New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	// Warm both pools: the addr pool via InvokeAddr, the id pool via
	// Invoke (after teaching the directory the server's address).
	if _, err := ct.InvokeAddr(srv.addr, &pastry.Ping{}); err != nil {
		t.Fatal(err)
	}
	ct.AddEntry(wire.DirEntry{ID: sid, Addr: srv.addr})
	if _, err := ct.Invoke(context.Background(), cid, sid, &pastry.Ping{}); err != nil {
		t.Fatal(err)
	}

	// The new life sheds everything.
	srv.kill()
	srv.restart(epFunc(func(from id.Node, msg any) (any, error) {
		return nil, netsim.ErrOverloaded
	}))

	_, err = ct.InvokeAddr(srv.addr, &pastry.Ping{})
	if !errors.Is(err, netsim.ErrOverloaded) {
		t.Fatalf("InvokeAddr across restart: got %v, want ErrOverloaded", err)
	}
	if err != nil && strings.Contains(err.Error(), "gob") {
		t.Fatalf("spurious decode error leaked through: %v", err)
	}
	_, err = ct.Invoke(context.Background(), cid, sid, &pastry.Ping{})
	if !errors.Is(err, netsim.ErrOverloaded) {
		t.Fatalf("Invoke across restart: got %v, want ErrOverloaded", err)
	}

	// And a timeout sentinel from the newest life, for the taxonomy's
	// other retryable member.
	srv.kill()
	srv.restart(epFunc(func(from id.Node, msg any) (any, error) {
		return nil, netsim.ErrTimeout
	}))
	_, err = ct.InvokeAddr(srv.addr, &pastry.Ping{})
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("InvokeAddr timeout across restart: got %v, want ErrTimeout", err)
	}
}
