package cachengine

import (
	"sync"
	"sync/atomic"

	"past/internal/id"
	"past/internal/logstore"
)

// flashTier pairs the on-disk flash segments (logstore.Flash) with the
// in-RAM object index. Objects enter by spilling out of the RAM tier's
// evictions; space is reclaimed by dropping the oldest segment whole,
// which drops every index entry still pointing into it. The index is
// rebuilt from a segment scan on open, so a crash either recovers the
// flash contents or cleanly discards the torn remainder — never serves
// bad bytes (every read re-verifies the record CRC).
type flashTier struct {
	fl       *logstore.Flash
	capacity int64

	mu      sync.RWMutex
	idx     map[id.File]logstore.FlashLoc
	segKeys map[uint32][]id.File // keys appended per segment, for O(drop) reclaim

	spills   atomic.Int64
	segDrops atomic.Int64
}

// openFlashTier opens the directory and rebuilds the index from the
// recovered records (later duplicates win), then enforces capacity.
func openFlashTier(cfg FlashConfig) (*flashTier, error) {
	fl, recs, err := logstore.OpenFlash(cfg.Dir, cfg.SegmentBytes)
	if err != nil {
		return nil, err
	}
	t := &flashTier{
		fl:       fl,
		capacity: cfg.Capacity,
		idx:      make(map[id.File]logstore.FlashLoc, len(recs)),
		segKeys:  make(map[uint32][]id.File),
	}
	for _, r := range recs {
		t.idx[r.File] = r.Loc
		t.segKeys[r.Loc.Seg] = append(t.segKeys[r.Loc.Seg], r.File)
	}
	t.mu.Lock()
	t.enforceLocked()
	t.mu.Unlock()
	return t, nil
}

// spill appends an evicted RAM object to flash. It is the cache.Cache
// OnEvict callback, so it runs under a shard mutex — the lock order is
// always shard → tier → segment file, and the tier never calls back
// into a shard. Content-less objects (size-only accounting) cannot
// spill.
func (t *flashTier) spill(f id.File, size int64, content []byte) {
	if content == nil || int64(len(content))+64 > t.capacity {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	loc, err := t.fl.Append(f, content)
	if err != nil {
		return // a broken flash tier degrades to RAM-only, silently
	}
	t.idx[f] = loc
	t.segKeys[loc.Seg] = append(t.segKeys[loc.Seg], f)
	t.spills.Add(1)
	t.enforceLocked()
}

// enforceLocked drops oldest segments until total bytes fit the
// capacity. The active segment is never dropped. Caller holds t.mu.
func (t *flashTier) enforceLocked() {
	for t.fl.Bytes() > t.capacity {
		seg, ok := t.fl.OldestSegment()
		if !ok {
			return
		}
		for _, k := range t.segKeys[seg] {
			if loc, ok := t.idx[k]; ok && loc.Seg == seg {
				delete(t.idx, k)
			}
		}
		delete(t.segKeys, seg)
		t.fl.DropSegment(seg)
		t.segDrops.Add(1)
	}
}

// get reads f from flash, CRC-verified. A stale or unreadable location
// is dropped from the index and reported as a miss.
func (t *flashTier) get(f id.File) ([]byte, bool) {
	t.mu.RLock()
	loc, ok := t.idx[f]
	t.mu.RUnlock()
	if !ok {
		return nil, false
	}
	content, ok := t.fl.Read(f, loc)
	if !ok {
		t.mu.Lock()
		if cur, still := t.idx[f]; still && cur == loc {
			delete(t.idx, f)
		}
		t.mu.Unlock()
		return nil, false
	}
	return content, true
}

func (t *flashTier) contains(f id.File) bool {
	t.mu.RLock()
	_, ok := t.idx[f]
	t.mu.RUnlock()
	return ok
}

// remove forgets f; the record stays as dead bytes until its segment
// is dropped.
func (t *flashTier) remove(f id.File) bool {
	t.mu.Lock()
	_, ok := t.idx[f]
	if ok {
		delete(t.idx, f)
	}
	t.mu.Unlock()
	return ok
}

// usage returns (bytes across segments, live index entries).
func (t *flashTier) usage() (int64, int64) {
	t.mu.RLock()
	entries := int64(len(t.idx))
	t.mu.RUnlock()
	return t.fl.Bytes(), entries
}

func (t *flashTier) close() error { return t.fl.Close() }
