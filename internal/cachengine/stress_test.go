package cachengine

import (
	"bytes"
	"sync"
	"testing"

	"past/internal/cache"
)

// TestEngineStress hammers every engine entry point from many
// goroutines with the full feature set enabled. It exists to run under
// -race: correctness here is "no data race, no panic, and contents
// that do come back are the right bytes".
func TestEngineStress(t *testing.T) {
	e, err := New(Config{
		Policy:          cache.GDS,
		Shards:          8,
		Doorkeeper:      true,
		DoorkeeperBits:  1 << 10,
		NegativeEntries: 256,
		RAMBytes:        64 << 10,
		Flash:           &FlashConfig{Dir: t.TempDir(), Capacity: 256 << 10, SegmentBytes: 32 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetLimit(64 << 10)

	const (
		workers = 8
		ops     = 4000
		keys    = 128
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed
			next := func(n uint64) uint64 { // xorshift, no shared rand
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng % n
			}
			for i := 0; i < ops; i++ {
				f := efid(next(keys))
				switch next(16) {
				case 0:
					e.Remove(f)
				case 1:
					e.SetLimit(int64(32<<10 + next(64<<10)))
				case 2:
					e.NoteMiss(f)
				case 3:
					e.NegativeHit(f)
					e.Invalidate(f)
				case 4:
					e.Contains(f)
					e.Used()
					e.Len()
					e.Stats()
					e.ObsCounters()
				case 5, 6, 7, 8:
					size := 64 + int(next(1024))
					e.Insert(f, int64(size), epayload(f, size))
				default:
					size, content, ok := e.Get(f)
					if ok && content != nil {
						if size != int64(len(content)) {
							t.Errorf("Get %x: size %d != len %d", f[:4], size, len(content))
							return
						}
						// Payloads are a pure function of (file, size):
						// whatever tier served this, the bytes must match.
						if !bytes.Equal(content, epayload(f, len(content))) {
							t.Errorf("Get %x: corrupt content", f[:4])
							return
						}
					}
				}
			}
		}(uint64(w)*2654435761 + 1)
	}
	wg.Wait()

	st := e.Stats()
	if st.RAMHits+st.Misses == 0 {
		t.Fatal("stress ran no lookups?")
	}
	if e.Used() > 64<<10+64<<10 {
		t.Fatalf("RAM used %d far above any grant", e.Used())
	}
}
