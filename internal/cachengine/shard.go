package cachengine

import (
	"sync"

	"past/internal/cache"
	"past/internal/id"
)

// shard is one independently-locked slice of the RAM tier: a policy
// structure (GD-S, LRU, or FIFO heap from internal/cache) plus its
// admission doorkeeper, behind one mutex. Shards never interact; a
// fileId maps to exactly one shard, so per-shard GD-S inflation and
// per-shard doorkeeper state see every operation on their keys.
type shard struct {
	mu sync.Mutex
	c  *cache.Cache
	dk *doorkeeper // nil when admission filtering is off
}

func (s *shard) get(f id.File) (int64, []byte, bool) {
	s.mu.Lock()
	size, content, ok := s.c.Get(f)
	s.mu.Unlock()
	return size, content, ok
}

// insert offers a file to the shard. promoted marks flash promotions,
// which bypass the doorkeeper (the flash hit already proved warmth).
// rejected reports a doorkeeper rejection, distinct from the policy
// declining the file (too large, None policy).
func (s *shard) insert(f id.File, size int64, content []byte, promoted bool) (cached, rejected bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Refreshes skip the doorkeeper: the file is already resident, so
	// the admission question was settled when it entered.
	if s.dk != nil && !promoted && !s.c.Contains(f) {
		if !s.dk.allow(f) {
			return false, true
		}
	}
	return s.c.Insert(f, size, content), false
}

func (s *shard) contains(f id.File) bool {
	s.mu.Lock()
	ok := s.c.Contains(f)
	s.mu.Unlock()
	return ok
}

func (s *shard) remove(f id.File) bool {
	s.mu.Lock()
	ok := s.c.Remove(f)
	s.mu.Unlock()
	return ok
}

func (s *shard) setLimit(n int64) {
	s.mu.Lock()
	s.c.SetLimit(n)
	s.mu.Unlock()
}

func (s *shard) used() int64 {
	s.mu.Lock()
	n := s.c.Used()
	s.mu.Unlock()
	return n
}

func (s *shard) len() int {
	s.mu.Lock()
	n := s.c.Len()
	s.mu.Unlock()
	return n
}

func (s *shard) evictions() int64 {
	s.mu.Lock()
	_, _, ev := s.c.Stats()
	s.mu.Unlock()
	return ev
}
