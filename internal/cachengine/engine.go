// Package cachengine is the node's concurrent cache engine: the
// general, CacheLib-style rebuild of internal/cache for the hot path.
//
// internal/cache implements the paper's replacement policies
// (GreedyDual-Size, LRU, FIFO) as single-goroutine structures — right
// for the trace-driven Figure-8 experiments, a dead end for a node
// serving concurrent routed traffic, where every Get/Insert would
// serialize on one mutex around a heap. The engine composes those same
// policy structures into a concurrent, tiered cache:
//
//   - RAM tier: N power-of-two shards keyed by fileId bits, each an
//     independently-locked policy instance (one cache.Cache behind one
//     mutex), so concurrent operations on different fileIds never
//     contend. Per-shard GD-S keeps its own inflation clock, exactly as
//     each CacheLib pool ages independently.
//   - Admission: a doorkeeper frequency filter per shard — a fileId
//     must be seen twice within a reset window before it may enter, so
//     one-hit-wonders never churn the cache — composed with the
//     paper's size-fraction insertion rule (applied per shard by the
//     underlying policy structure).
//   - Negative cache: a bounded map of fileIds that recently missed,
//     letting the owning node short-circuit repeated lookups for
//     absent files without routing. Any insert evidence invalidates.
//   - Flash tier: objects evicted from RAM but still warm spill into
//     dedicated logstore flash segments with an in-RAM index, so the
//     cached working set can exceed memory. Get falls through
//     RAM → flash → miss; flash hits promote back to RAM.
//
// With Shards=1 and every extra disabled (the zero-value Config plus a
// policy), the engine is operation-for-operation identical to the
// wrapped cache.Cache — which is how the emulated experiments keep
// their fingerprints while the daemon runs the full engine.
package cachengine

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"past/internal/cache"
	"past/internal/id"
	"past/internal/obs"
)

// FlashConfig configures the flash tier.
type FlashConfig struct {
	// Dir is the directory holding the flash segments. Required.
	Dir string
	// Capacity bounds the bytes across flash segments; the oldest
	// segment is dropped when exceeded. Default 64MB.
	Capacity int64
	// SegmentBytes is the per-segment rotation target. Default 4MB.
	SegmentBytes int64
}

// Config parameterizes an Engine. The zero value of every field picks
// the legacy-compatible default: GD-S is selected by the owner via
// Policy, one shard, no doorkeeper, no negative cache, no flash tier —
// bit-for-bit the behavior of a bare cache.Cache.
type Config struct {
	// Policy is the per-shard replacement policy.
	Policy cache.Policy
	// Frac is the insertion-policy fraction c, applied by each shard to
	// its own capacity. Default 1 (the paper's value).
	Frac float64
	// Shards is the RAM-tier shard count, rounded up to a power of two.
	// Default 1.
	Shards int
	// RAMBytes, when positive, caps the RAM tier regardless of the
	// limit the owner grants via SetLimit — the knob that lets a node
	// with a huge disk keep a bounded hot tier (and the experiments
	// shape working-set-vs-RAM ratios).
	RAMBytes int64
	// Doorkeeper enables the admission frequency filter: a fileId is
	// admitted only on its second appearance within a reset window.
	Doorkeeper bool
	// DoorkeeperBits is the per-shard filter size in bits, rounded up
	// to a power of two. Default 32768.
	DoorkeeperBits int
	// NegativeEntries bounds the negative cache (0 disables it).
	NegativeEntries int
	// Flash, when non-nil, enables the flash tier.
	Flash *FlashConfig
}

func (c Config) withDefaults() Config {
	if c.Frac == 0 {
		c.Frac = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	c.Shards = ceilPow2(c.Shards)
	if c.DoorkeeperBits <= 0 {
		c.DoorkeeperBits = 1 << 15
	}
	if c.Flash != nil {
		f := *c.Flash
		if f.Capacity <= 0 {
			f.Capacity = 64 << 20
		}
		if f.SegmentBytes <= 0 {
			f.SegmentBytes = 4 << 20
		}
		c.Flash = &f
	}
	return c
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Engine is the concurrent cache engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg   Config
	mask  uint32
	shard []*shard
	neg   *negCache
	flash *flashTier

	// limit is the owner-granted capacity (before the RAMBytes clamp).
	limit atomic.Int64

	ramHits      atomic.Int64
	flashHits    atomic.Int64
	misses       atomic.Int64
	admitRejects atomic.Int64
	negHits      atomic.Int64
}

var _ obs.CounterSource = (*Engine)(nil)

// New builds an engine. It fails only when a flash tier is configured
// and its directory cannot be opened.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, mask: uint32(cfg.Shards - 1)}
	if cfg.NegativeEntries > 0 {
		e.neg = newNegCache(cfg.Shards, cfg.NegativeEntries)
	}
	if cfg.Flash != nil && cfg.Policy != cache.None {
		if cfg.Flash.Dir == "" {
			return nil, fmt.Errorf("cachengine: flash tier needs a directory")
		}
		ft, err := openFlashTier(*cfg.Flash)
		if err != nil {
			return nil, err
		}
		e.flash = ft
	}
	e.shard = make([]*shard, cfg.Shards)
	for i := range e.shard {
		s := &shard{c: cache.New(cfg.Policy, cfg.Frac)}
		if cfg.Doorkeeper {
			s.dk = newDoorkeeper(cfg.DoorkeeperBits)
		}
		if e.flash != nil {
			s.c.OnEvict = e.flash.spill
		}
		e.shard[i] = s
	}
	return e, nil
}

// MustNew is New for configurations that cannot fail (no flash tier).
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// shardOf selects the shard by fileId bits. FileIds are hashes, so the
// low word is uniform.
func (e *Engine) shardOf(f id.File) *shard {
	return e.shard[binary.LittleEndian.Uint32(f[0:4])&e.mask]
}

// Get looks up f, falling through RAM → flash → miss. A flash hit
// promotes the object back into the RAM tier. Recency state and the
// tier hit/miss counters are updated.
func (e *Engine) Get(f id.File) (size int64, content []byte, ok bool) {
	sh := e.shardOf(f)
	if size, content, ok := sh.get(f); ok {
		e.ramHits.Add(1)
		return size, content, true
	}
	if e.flash != nil {
		if content, ok := e.flash.get(f); ok {
			e.flashHits.Add(1)
			// Promotion bypasses the doorkeeper: a flash hit is proof of
			// warmth. The insert may evict colder RAM residents, which
			// spill right back to flash.
			sh.insert(f, int64(len(content)), content, true)
			return int64(len(content)), content, true
		}
	}
	e.misses.Add(1)
	return 0, nil, false
}

// Access looks up f for its side effects, reporting a hit.
func (e *Engine) Access(f id.File) bool {
	_, _, ok := e.Get(f)
	return ok
}

// Insert offers a file to the cache. The doorkeeper (when enabled)
// rejects fileIds on first sight; the per-shard insertion policy
// applies after it. Any insert is existence evidence, so a matching
// negative-cache entry is invalidated even when the object is not
// admitted.
func (e *Engine) Insert(f id.File, size int64, content []byte) bool {
	if e.neg != nil {
		e.neg.invalidate(f)
	}
	cached, rejected := e.shardOf(f).insert(f, size, content, false)
	if rejected {
		e.admitRejects.Add(1)
	}
	return cached
}

// Contains reports whether f is resident in RAM or flash, without
// touching recency or counters.
func (e *Engine) Contains(f id.File) bool {
	if e.shardOf(f).contains(f) {
		return true
	}
	return e.flash != nil && e.flash.contains(f)
}

// Remove drops f from both tiers — the owner calls it when the file
// becomes a local replica, which must not be double-served from cache.
func (e *Engine) Remove(f id.File) bool {
	removed := e.shardOf(f).remove(f)
	if e.flash != nil && e.flash.remove(f) {
		removed = true
	}
	return removed
}

// SetLimit grants the RAM tier n bytes (clamped to RAMBytes when
// configured), distributed evenly across shards; shards evict as
// needed. The owning node calls this as replica storage grows and
// shrinks, exactly as it did with the single cache.
func (e *Engine) SetLimit(n int64) {
	if n < 0 {
		n = 0
	}
	e.limit.Store(n)
	if e.cfg.RAMBytes > 0 && n > e.cfg.RAMBytes {
		n = e.cfg.RAMBytes
	}
	nsh := int64(len(e.shard))
	base, rem := n/nsh, n%nsh
	for i, sh := range e.shard {
		share := base
		if int64(i) < rem {
			share++
		}
		sh.setLimit(share)
	}
}

// Limit returns the owner-granted RAM limit (before the RAMBytes
// clamp), matching the legacy cache's accounting that the node's
// status surfaces.
func (e *Engine) Limit() int64 { return e.limit.Load() }

// Used returns bytes resident in the RAM tier.
func (e *Engine) Used() int64 {
	var n int64
	for _, sh := range e.shard {
		n += sh.used()
	}
	return n
}

// Len returns the number of RAM-resident files.
func (e *Engine) Len() int {
	var n int
	for _, sh := range e.shard {
		n += sh.len()
	}
	return n
}

// NegativeHit reports whether f was recently noted absent; a hit is
// counted. Always false without a negative cache.
func (e *Engine) NegativeHit(f id.File) bool {
	if e.neg == nil || !e.neg.hit(f) {
		return false
	}
	e.negHits.Add(1)
	return true
}

// NoteMiss records that a full lookup for f came back not-found.
func (e *Engine) NoteMiss(f id.File) {
	if e.neg != nil {
		e.neg.add(f)
	}
}

// Invalidate drops any negative-cache entry for f — called on every
// sighting of the file (replica stored, insert routed through, cached
// copy offered).
func (e *Engine) Invalidate(f id.File) {
	if e.neg != nil {
		e.neg.invalidate(f)
	}
}

// Close releases the flash tier's files. The RAM tier needs no
// teardown.
func (e *Engine) Close() error {
	if e.flash != nil {
		return e.flash.close()
	}
	return nil
}

// Stats is a point-in-time aggregate of the engine's counters.
type Stats struct {
	RAMHits, FlashHits, Misses int64
	Evictions                  int64
	AdmitRejects, NegHits      int64

	FlashSpills, FlashPromotes, FlashSegDrops int64
	FlashBytes, FlashEntries                  int64
}

// Hits returns total hits across tiers.
func (s Stats) Hits() int64 { return s.RAMHits + s.FlashHits }

// HitRate returns hits / (hits + misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits() + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// Stats aggregates the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		RAMHits:      e.ramHits.Load(),
		FlashHits:    e.flashHits.Load(),
		Misses:       e.misses.Load(),
		AdmitRejects: e.admitRejects.Load(),
		NegHits:      e.negHits.Load(),
	}
	for _, sh := range e.shard {
		st.Evictions += sh.evictions()
	}
	if e.flash != nil {
		st.FlashSpills = e.flash.spills.Load()
		st.FlashPromotes = e.flashHits.Load()
		st.FlashSegDrops = e.flash.segDrops.Load()
		st.FlashBytes, st.FlashEntries = e.flash.usage()
	}
	return st
}

// ObsCounters implements obs.CounterSource: the engine's tier counters
// under cachengine_* names. The owning node separately maintains the
// legacy cache_hits/misses/evictions series from Stats, so existing
// dashboards keep working.
func (e *Engine) ObsCounters() map[string]int64 {
	st := e.Stats()
	m := map[string]int64{
		obs.CtrCacheRAMHits:      st.RAMHits,
		obs.CtrCacheFlashHits:    st.FlashHits,
		obs.CtrCacheAdmitRejects: st.AdmitRejects,
		obs.CtrCacheNegHits:      st.NegHits,
		obs.CtrCacheShards:       int64(len(e.shard)),
	}
	if e.neg != nil {
		m[obs.CtrCacheNegEntries] = e.neg.entries()
	}
	if e.flash != nil {
		m[obs.CtrCacheFlashSpills] = st.FlashSpills
		m[obs.CtrCacheFlashPromotes] = st.FlashPromotes
		m[obs.CtrCacheFlashDrops] = st.FlashSegDrops
		m[obs.CtrCacheFlashBytes] = st.FlashBytes
		m[obs.CtrCacheFlashEntries] = st.FlashEntries
	}
	return m
}
