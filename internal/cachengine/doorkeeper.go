package cachengine

import (
	"encoding/binary"

	"past/internal/id"
)

// doorkeeper is the admission frequency filter (the "doorkeeper" of
// TinyLFU, the same one-hit-wonder defense CacheLib's admission
// policies implement): a small bloom filter of recently-offered
// fileIds. A file is admitted only when both its probe bits are
// already set — i.e. on at least its second offer within the current
// window. The filter resets once enough distinct first-sightings
// accumulate, so stale history cannot pin the filter full.
//
// FileIds are already uniform hashes, so the probes are just two
// disjoint 32-bit windows of the id — no extra hashing. The doorkeeper
// is per-shard and guarded by the shard mutex; it needs no locking of
// its own. Capacity evictions do not clear probe bits: a recently
// evicted file re-enters on its next offer, which is exactly the
// re-admission behavior a frequency filter wants.
type doorkeeper struct {
	bits  []uint64
	mask  uint32
	adds  int // first-sightings since the last reset
	reset int // reset threshold
}

// newDoorkeeper sizes the filter to nbits (rounded up to a power of
// two, minimum 64). The reset threshold is an eighth of the bit count:
// with two probes per key that caps occupancy near 25%, keeping the
// false-admit rate low.
func newDoorkeeper(nbits int) *doorkeeper {
	nbits = ceilPow2(max(nbits, 64))
	return &doorkeeper{
		bits:  make([]uint64, nbits/64),
		mask:  uint32(nbits - 1),
		reset: max(nbits/8, 8),
	}
}

// allow reports whether f may enter the cache, recording the sighting
// if not.
func (d *doorkeeper) allow(f id.File) bool {
	// Probe windows avoid bytes 0..3, which pick the shard.
	p1 := binary.LittleEndian.Uint32(f[4:8]) & d.mask
	p2 := binary.LittleEndian.Uint32(f[8:12]) & d.mask
	seen := d.test(p1) && d.test(p2)
	if seen {
		return true
	}
	d.set(p1)
	d.set(p2)
	d.adds++
	if d.adds >= d.reset {
		clear(d.bits)
		d.adds = 0
	}
	return false
}

func (d *doorkeeper) test(i uint32) bool { return d.bits[i/64]&(1<<(i%64)) != 0 }
func (d *doorkeeper) set(i uint32)       { d.bits[i/64] |= 1 << (i % 64) }
