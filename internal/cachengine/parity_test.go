package cachengine

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"past/internal/cache"
	"past/internal/id"
)

// evictRec records one eviction for order comparison.
type evictRec struct {
	file id.File
	size int64
}

// TestShardedParity: a sharded engine on a serialized trace must
// behave exactly like independent reference cache.Cache instances
// routed by the same shard function — same results, same residents,
// and the same per-shard eviction order. Sharding partitions the key
// space; it must not change what any partition does.
func TestShardedParity(t *testing.T) {
	const nShards = 4
	for _, pol := range []cache.Policy{cache.GDS, cache.LRU, cache.FIFO} {
		eng := MustNew(Config{Policy: pol, Shards: nShards})

		ref := make([]*cache.Cache, nShards)
		engEv := make([][]evictRec, nShards)
		refEv := make([][]evictRec, nShards)
		for i := range ref {
			i := i
			ref[i] = cache.New(pol, 1)
			ref[i].OnEvict = func(f id.File, size int64, _ []byte) {
				refEv[i] = append(refEv[i], evictRec{f, size})
			}
			eng.shard[i].c.OnEvict = func(f id.File, size int64, _ []byte) {
				engEv[i] = append(engEv[i], evictRec{f, size})
			}
		}
		shardIdx := func(f id.File) int {
			return int(binary.LittleEndian.Uint32(f[0:4]) & (nShards - 1))
		}
		setRefLimit := func(n int64) {
			// Mirror Engine.SetLimit's base+remainder split.
			base, rem := n/nShards, n%nShards
			for i := range ref {
				share := base
				if int64(i) < rem {
					share++
				}
				ref[i].SetLimit(share)
			}
		}

		eng.SetLimit(8192)
		setRefLimit(8192)

		r := rand.New(rand.NewSource(int64(pol) + 99))
		for i := 0; i < 20000; i++ {
			f := efid(uint64(r.Intn(256)))
			si := shardIdx(f)
			switch r.Intn(12) {
			case 0:
				if got, want := eng.Remove(f), ref[si].Remove(f); got != want {
					t.Fatalf("%v op %d: Remove=%v ref=%v", pol, i, got, want)
				}
			case 1:
				n := int64(4096 + r.Intn(8192))
				eng.SetLimit(n)
				setRefLimit(n)
			case 2, 3, 4, 5:
				size := int64(1 + r.Intn(700))
				if got, want := eng.Insert(f, size, nil), ref[si].Insert(f, size, nil); got != want {
					t.Fatalf("%v op %d: Insert=%v ref=%v", pol, i, got, want)
				}
			default:
				gs, _, gok := eng.Get(f)
				ws, _, wok := ref[si].Get(f)
				if gok != wok || gs != ws {
					t.Fatalf("%v op %d: Get=(%d,%v) ref=(%d,%v)", pol, i, gs, gok, ws, wok)
				}
			}
		}

		var refUsed int64
		var refLen int
		for i := range ref {
			refUsed += ref[i].Used()
			refLen += ref[i].Len()
		}
		if eng.Used() != refUsed || eng.Len() != refLen {
			t.Fatalf("%v: used/len (%d,%d) ref (%d,%d)", pol, eng.Used(), eng.Len(), refUsed, refLen)
		}
		for i := range ref {
			if len(engEv[i]) != len(refEv[i]) {
				t.Fatalf("%v shard %d: %d evictions, ref %d", pol, i, len(engEv[i]), len(refEv[i]))
			}
			for j := range engEv[i] {
				if engEv[i][j] != refEv[i][j] {
					t.Fatalf("%v shard %d eviction %d: %x/%d, ref %x/%d", pol, i, j,
						engEv[i][j].file[:4], engEv[i][j].size, refEv[i][j].file[:4], refEv[i][j].size)
				}
			}
		}
	}
}
