package cachengine

import (
	"sync"
	"sync/atomic"
	"testing"

	"past/internal/cache"
	"past/internal/id"
)

// benchKeys builds a resident working set and returns its ids.
func benchKeys(insert func(id.File, int64, []byte) bool, n int) []id.File {
	keys := make([]id.File, n)
	for i := range keys {
		keys[i] = efid(uint64(i))
		insert(keys[i], 256, nil)
	}
	return keys
}

// singleLockCache is the pre-engine node cache: one cache.Cache behind
// one mutex. The baseline the sharded engine is measured against.
type singleLockCache struct {
	mu sync.Mutex
	c  *cache.Cache
}

func (s *singleLockCache) Get(f id.File) (int64, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Get(f)
}

func (s *singleLockCache) Insert(f id.File, size int64, content []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Insert(f, size, content)
}

// BenchmarkEngineGetParallel measures Get throughput on the sharded
// engine under GOMAXPROCS-way parallelism (run with -cpu 8 for the
// acceptance number).
func BenchmarkEngineGetParallel(b *testing.B) {
	e := MustNew(Config{Policy: cache.GDS, Shards: 64})
	e.SetLimit(1 << 30)
	keys := benchKeys(e.Insert, 4096)

	var ctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := ctr.Add(1) * 2654435761
		for pb.Next() {
			e.Get(keys[i%uint64(len(keys))])
			i++
		}
	})
}

// BenchmarkSingleLockGetParallel is the same workload against the
// single-mutex cache.Cache the node used before the engine.
func BenchmarkSingleLockGetParallel(b *testing.B) {
	s := &singleLockCache{c: cache.New(cache.GDS, 1)}
	s.c.SetLimit(1 << 30)
	keys := benchKeys(s.Insert, 4096)

	var ctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := ctr.Add(1) * 2654435761
		for pb.Next() {
			s.Get(keys[i%uint64(len(keys))])
			i++
		}
	})
}

// BenchmarkEngineInsertParallel exercises the write path: refreshing
// inserts over a fixed key set.
func BenchmarkEngineInsertParallel(b *testing.B) {
	e := MustNew(Config{Policy: cache.GDS, Shards: 64})
	e.SetLimit(1 << 30)
	keys := benchKeys(e.Insert, 4096)

	var ctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := ctr.Add(1) * 2654435761
		for pb.Next() {
			e.Insert(keys[i%uint64(len(keys))], 256, nil)
			i++
		}
	})
}

// BenchmarkSingleLockInsertParallel is the matching baseline.
func BenchmarkSingleLockInsertParallel(b *testing.B) {
	s := &singleLockCache{c: cache.New(cache.GDS, 1)}
	s.c.SetLimit(1 << 30)
	keys := benchKeys(s.Insert, 4096)

	var ctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := ctr.Add(1) * 2654435761
		for pb.Next() {
			s.Insert(keys[i%uint64(len(keys))], 256, nil)
			i++
		}
	})
}
