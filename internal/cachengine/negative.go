package cachengine

import (
	"encoding/binary"
	"sync"

	"past/internal/id"
)

// negCache remembers fileIds whose lookups recently came back
// not-found, so the owning node can answer repeated misses locally
// instead of routing them. Entries are bounded per shard and evicted
// FIFO — there is no clock in the engine, so staleness is capped by
// churn, and any sighting of the file (an insert routed through, a
// replica stored, a cached copy offered) invalidates the entry.
type negCache struct {
	mask  uint32
	shard []negShard
}

type negShard struct {
	mu   sync.Mutex
	m    map[id.File]int // file -> ring slot
	ring []id.File       // FIFO of resident entries
	pos  int
}

// newNegCache builds a negative cache with ~entries total capacity
// spread over nShards shards (same power-of-two count as the engine).
func newNegCache(nShards, entries int) *negCache {
	per := max(entries/nShards, 1)
	n := &negCache{mask: uint32(nShards - 1), shard: make([]negShard, nShards)}
	for i := range n.shard {
		n.shard[i].m = make(map[id.File]int, per)
		n.shard[i].ring = make([]id.File, per)
	}
	return n
}

func (n *negCache) shardOf(f id.File) *negShard {
	return &n.shard[binary.LittleEndian.Uint32(f[0:4])&n.mask]
}

// add notes a confirmed miss for f.
func (n *negCache) add(f id.File) {
	s := n.shardOf(f)
	s.mu.Lock()
	if _, dup := s.m[f]; !dup {
		// Overwrite the oldest slot; its entry (if still ours) leaves.
		if old := s.ring[s.pos]; old != (id.File{}) {
			if slot, ok := s.m[old]; ok && slot == s.pos {
				delete(s.m, old)
			}
		}
		s.ring[s.pos] = f
		s.m[f] = s.pos
		s.pos = (s.pos + 1) % len(s.ring)
	}
	s.mu.Unlock()
}

// hit reports whether f is noted absent.
func (n *negCache) hit(f id.File) bool {
	s := n.shardOf(f)
	s.mu.Lock()
	_, ok := s.m[f]
	s.mu.Unlock()
	return ok
}

// invalidate forgets f.
func (n *negCache) invalidate(f id.File) {
	s := n.shardOf(f)
	s.mu.Lock()
	if slot, ok := s.m[f]; ok {
		delete(s.m, f)
		s.ring[slot] = id.File{}
	}
	s.mu.Unlock()
}

// entries returns the resident entry count.
func (n *negCache) entries() int64 {
	var total int64
	for i := range n.shard {
		s := &n.shard[i]
		s.mu.Lock()
		total += int64(len(s.m))
		s.mu.Unlock()
	}
	return total
}
