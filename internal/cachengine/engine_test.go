package cachengine

import (
	"bytes"
	"math/rand"
	"testing"

	"past/internal/cache"
	"past/internal/id"
	"past/internal/obs"
)

func efid(n uint64) id.File { return id.NewFile("f", nil, n) }

func epayload(f id.File, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = f[i%len(f)] ^ byte(i)
	}
	return b
}

// TestLegacyEquivalence: with one shard and every extra disabled, the
// engine must be operation-for-operation identical to a bare
// cache.Cache — that is what keeps the emulated experiments'
// fingerprints stable.
func TestLegacyEquivalence(t *testing.T) {
	for _, pol := range []cache.Policy{cache.GDS, cache.LRU, cache.FIFO} {
		eng := MustNew(Config{Policy: pol})
		ref := cache.New(pol, 1)
		eng.SetLimit(4096)
		ref.SetLimit(4096)

		r := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			f := efid(uint64(r.Intn(64)))
			switch r.Intn(10) {
			case 0:
				if got, want := eng.Remove(f), ref.Remove(f); got != want {
					t.Fatalf("%v op %d: Remove=%v ref=%v", pol, i, got, want)
				}
			case 1, 2, 3:
				size := int64(1 + r.Intn(900))
				if got, want := eng.Insert(f, size, nil), ref.Insert(f, size, nil); got != want {
					t.Fatalf("%v op %d: Insert=%v ref=%v", pol, i, got, want)
				}
			case 4:
				n := int64(2048 + r.Intn(4096))
				eng.SetLimit(n)
				ref.SetLimit(n)
			default:
				gs, _, gok := eng.Get(f)
				ws, _, wok := ref.Get(f)
				if gok != wok || gs != ws {
					t.Fatalf("%v op %d: Get=(%d,%v) ref=(%d,%v)", pol, i, gs, gok, ws, wok)
				}
			}
			if eng.Used() != ref.Used() || eng.Len() != ref.Len() {
				t.Fatalf("%v op %d: used/len (%d,%d) ref (%d,%d)",
					pol, i, eng.Used(), eng.Len(), ref.Used(), ref.Len())
			}
		}
		st := eng.Stats()
		rh, rm, rev := ref.Stats()
		if st.RAMHits != rh || st.Misses != rm || st.Evictions != rev {
			t.Fatalf("%v: stats (%d,%d,%d) ref (%d,%d,%d)",
				pol, st.RAMHits, st.Misses, st.Evictions, rh, rm, rev)
		}
	}
}

func TestDoorkeeperAdmitsOnSecondOffer(t *testing.T) {
	e := MustNew(Config{Policy: cache.GDS, Shards: 2, Doorkeeper: true})
	e.SetLimit(1 << 20)

	f := efid(1)
	if e.Insert(f, 100, nil) {
		t.Fatal("first offer should be rejected by the doorkeeper")
	}
	if e.Contains(f) {
		t.Fatal("rejected file must not be resident")
	}
	if !e.Insert(f, 100, nil) {
		t.Fatal("second offer should be admitted")
	}
	if !e.Contains(f) {
		t.Fatal("admitted file must be resident")
	}
	// A resident file's refresh skips the doorkeeper.
	if !e.Insert(f, 120, nil) {
		t.Fatal("refresh of a resident file should succeed")
	}
	if st := e.Stats(); st.AdmitRejects != 1 {
		t.Fatalf("AdmitRejects = %d, want 1", st.AdmitRejects)
	}
}

func TestDoorkeeperResets(t *testing.T) {
	d := newDoorkeeper(64) // reset after 8 first-sightings
	f := efid(999)
	if d.allow(f) {
		t.Fatal("first sighting must be rejected")
	}
	// 8 distinct other files trigger the reset (some may collide in 64
	// bits and be "allowed"; feed until adds wraps).
	for n := uint64(0); d.adds != 0; n++ {
		d.allow(efid(n))
	}
	if d.allow(f) {
		t.Fatal("after a reset the file must be treated as unseen again")
	}
}

func TestNegativeCache(t *testing.T) {
	e := MustNew(Config{Policy: cache.GDS, Shards: 4, NegativeEntries: 8})
	e.SetLimit(1 << 20)

	f := efid(42)
	if e.NegativeHit(f) {
		t.Fatal("unnoted file must not hit")
	}
	e.NoteMiss(f)
	if !e.NegativeHit(f) {
		t.Fatal("noted miss must hit")
	}
	// Insert evidence invalidates.
	e.Insert(f, 10, nil)
	if e.NegativeHit(f) {
		t.Fatal("insert must invalidate the negative entry")
	}
	e.NoteMiss(f)
	e.Invalidate(f)
	if e.NegativeHit(f) {
		t.Fatal("Invalidate must drop the entry")
	}

	// The table is bounded: far more notes than capacity stay capped.
	for n := uint64(0); n < 1000; n++ {
		e.NoteMiss(efid(n))
	}
	if got := e.neg.entries(); got > 8 {
		t.Fatalf("negative entries = %d, want <= 8", got)
	}
	if st := e.Stats(); st.NegHits != 1 {
		t.Fatalf("NegHits = %d, want 1", st.NegHits)
	}
}

func TestNegativeCacheDisabled(t *testing.T) {
	e := MustNew(Config{Policy: cache.GDS})
	e.NoteMiss(efid(1))
	e.Invalidate(efid(1))
	if e.NegativeHit(efid(1)) {
		t.Fatal("disabled negative cache must never hit")
	}
}

func TestFlashFallThroughAndPromotion(t *testing.T) {
	e, err := New(Config{
		Policy: cache.GDS,
		Shards: 1,
		Flash:  &FlashConfig{Dir: t.TempDir(), Capacity: 1 << 20, SegmentBytes: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetLimit(1024)

	// Two 400-byte files fit; the third evicts the coldest, which
	// spills to flash.
	contents := map[id.File][]byte{}
	for n := uint64(0); n < 3; n++ {
		f := efid(n)
		contents[f] = epayload(f, 400)
		if !e.Insert(f, 400, contents[f]) {
			t.Fatalf("insert %d refused", n)
		}
	}
	st := e.Stats()
	if st.FlashSpills == 0 {
		t.Fatalf("expected an eviction to spill, stats %+v", st)
	}
	if st.FlashEntries == 0 || st.FlashBytes == 0 {
		t.Fatalf("flash usage empty: %+v", st)
	}

	// Every file must still be readable — from RAM or flash.
	for f, want := range contents {
		size, got, ok := e.Get(f)
		if !ok || size != 400 || !bytes.Equal(got, want) {
			t.Fatalf("Get %x: ok=%v size=%d contentMatch=%v", f[:4], ok, size, bytes.Equal(got, want))
		}
	}
	st = e.Stats()
	if st.FlashHits == 0 {
		t.Fatalf("expected at least one flash hit, stats %+v", st)
	}
	if st.FlashPromotes != st.FlashHits {
		t.Fatalf("every flash hit promotes: promotes=%d hits=%d", st.FlashPromotes, st.FlashHits)
	}

	// A promoted file is now a RAM hit.
	var promoted id.File
	for f := range contents {
		if e.shardOf(f).contains(f) {
			promoted = f
			break
		}
	}
	before := e.Stats().RAMHits
	if _, _, ok := e.Get(promoted); !ok {
		t.Fatal("promoted file must hit")
	}
	if e.Stats().RAMHits != before+1 {
		t.Fatal("promoted file should hit in RAM")
	}
}

func TestFlashCapacityDropsOldestSegment(t *testing.T) {
	e, err := New(Config{
		Policy: cache.GDS,
		Flash:  &FlashConfig{Dir: t.TempDir(), Capacity: 8 << 10, SegmentBytes: 2 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetLimit(512)

	for n := uint64(0); n < 200; n++ {
		f := efid(n)
		e.Insert(f, 256, epayload(f, 256))
	}
	st := e.Stats()
	if st.FlashSegDrops == 0 {
		t.Fatalf("expected segment drops under capacity pressure, stats %+v", st)
	}
	if st.FlashBytes > 8<<10+2<<10 {
		t.Fatalf("flash bytes %d way over capacity", st.FlashBytes)
	}
}

func TestRemoveDropsBothTiers(t *testing.T) {
	e, err := New(Config{
		Policy: cache.GDS,
		Flash:  &FlashConfig{Dir: t.TempDir(), Capacity: 1 << 20, SegmentBytes: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetLimit(512)

	a, b := efid(1), efid(2)
	e.Insert(a, 400, epayload(a, 400))
	e.Insert(b, 400, epayload(b, 400)) // evicts a → flash
	if !e.Contains(a) {
		t.Fatal("a should be in flash")
	}
	if !e.Remove(a) {
		t.Fatal("Remove(a) should report true")
	}
	if e.Contains(a) {
		t.Fatal("removed file must be gone from both tiers")
	}
	if _, _, ok := e.Get(a); ok {
		t.Fatal("removed file must miss")
	}
}

func TestRAMBytesClampsGrant(t *testing.T) {
	e := MustNew(Config{Policy: cache.GDS, Shards: 4, RAMBytes: 1000})
	e.SetLimit(100000)
	if e.Limit() != 100000 {
		t.Fatalf("Limit() reports the owner grant, got %d", e.Limit())
	}
	var share int64
	for _, sh := range e.shard {
		share += sh.c.Limit()
	}
	if share != 1000 {
		t.Fatalf("shard limits sum to %d, want RAMBytes clamp 1000", share)
	}
	// Remainder distribution: an uneven grant is spread base+1/base.
	e2 := MustNew(Config{Policy: cache.GDS, Shards: 4})
	e2.SetLimit(10)
	var total int64
	for _, sh := range e2.shard {
		l := sh.c.Limit()
		if l != 2 && l != 3 {
			t.Fatalf("uneven share %d", l)
		}
		total += l
	}
	if total != 10 {
		t.Fatalf("shares sum to %d, want 10", total)
	}
}

func TestNewFlashErrors(t *testing.T) {
	if _, err := New(Config{Policy: cache.GDS, Flash: &FlashConfig{}}); err == nil {
		t.Fatal("flash without a directory must error")
	}
	// None policy never caches, so the flash tier is skipped entirely.
	e, err := New(Config{Policy: cache.None, Flash: &FlashConfig{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	if e.flash != nil {
		t.Fatal("None policy should not open a flash tier")
	}
}

func TestObsCounters(t *testing.T) {
	e, err := New(Config{
		Policy:          cache.GDS,
		Shards:          2,
		Doorkeeper:      true,
		NegativeEntries: 16,
		Flash:           &FlashConfig{Dir: t.TempDir(), Capacity: 1 << 20, SegmentBytes: 16 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.SetLimit(1024)

	f := efid(5)
	e.Insert(f, 100, epayload(f, 100)) // doorkeeper reject
	e.Insert(f, 100, epayload(f, 100))
	e.Get(f)
	e.Get(efid(6))
	e.NoteMiss(efid(6))
	e.NegativeHit(efid(6))

	m := e.ObsCounters()
	for _, name := range []string{
		obs.CtrCacheRAMHits, obs.CtrCacheFlashHits, obs.CtrCacheAdmitRejects,
		obs.CtrCacheNegHits, obs.CtrCacheNegEntries, obs.CtrCacheShards,
		obs.CtrCacheFlashSpills, obs.CtrCacheFlashPromotes, obs.CtrCacheFlashDrops,
		obs.CtrCacheFlashBytes, obs.CtrCacheFlashEntries,
	} {
		if _, ok := m[name]; !ok {
			t.Fatalf("ObsCounters missing %q", name)
		}
	}
	if m[obs.CtrCacheRAMHits] != 1 || m[obs.CtrCacheAdmitRejects] != 1 ||
		m[obs.CtrCacheNegHits] != 1 || m[obs.CtrCacheShards] != 2 {
		t.Fatalf("counter values off: %v", m)
	}
	if st := e.Stats(); st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Fatalf("HitRate = %v, want in (0,1)", st.HitRate())
	}
}
