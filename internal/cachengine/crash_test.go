package cachengine

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"past/internal/cache"
)

// TestFlashCrashRecovery simulates an unclean stop: an engine spills a
// working set to flash, the process "dies" (no Close), the segment
// files are damaged the way a crash damages them (torn tail on the
// active segment, a flipped byte mid-file on an older one), and a new
// engine opens the same directory. The contract is recover-or-discard:
// every Get must return either the exact original bytes or a clean
// miss — never corrupt data — and the recovered tier must keep working.
func TestFlashCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Policy: cache.GDS,
		Shards: 2,
		Flash:  &FlashConfig{Dir: dir, Capacity: 4 << 20, SegmentBytes: 8 << 10},
	}

	e1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1.SetLimit(1 << 10)

	// Small RAM, many files: almost everything spills to flash across
	// several segments.
	const nFiles = 128
	contents := map[uint64][]byte{}
	for n := uint64(0); n < nFiles; n++ {
		f := efid(n)
		contents[n] = epayload(f, 256)
		e1.Insert(f, 256, contents[n])
	}
	if st := e1.Stats(); st.FlashSpills == 0 || st.FlashEntries == 0 {
		t.Fatalf("setup produced no spills: %+v", st)
	}
	// Crash: no e1.Close(). Damage the segments directly.
	segs, err := filepath.Glob(filepath.Join(dir, "flash-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 segments, got %v (%v)", segs, err)
	}
	sort.Strings(segs)

	// Torn tail on the newest segment: append half a record.
	newest := segs[len(segs)-1]
	fh, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(make([]byte, 13)); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	// Bit flip in the middle of the oldest segment's record area.
	oldest := segs[0]
	blob, err := os.ReadFile(oldest)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(oldest, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	e2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery open failed: %v", err)
	}
	defer e2.Close()
	e2.SetLimit(1 << 10)

	recovered := 0
	for n := uint64(0); n < nFiles; n++ {
		f := efid(n)
		size, got, ok := e2.Get(f)
		if !ok {
			continue // discarded — acceptable
		}
		if size != 256 || !bytes.Equal(got, contents[n]) {
			t.Fatalf("file %d: recovered wrong bytes (size %d)", n, size)
		}
		recovered++
	}
	// The flip kills part of one segment, the torn tail is truncated;
	// the bulk must survive.
	if recovered == 0 {
		t.Fatal("recovery discarded everything")
	}
	t.Logf("recovered %d/%d files", recovered, nFiles)

	// The recovered tier must accept new spills and serve them.
	extra := efid(9999)
	want := epayload(extra, 256)
	e2.Insert(extra, 256, want)
	for n := uint64(0); n < 16; n++ { // push it out of RAM
		f := efid(100000 + n)
		e2.Insert(f, 256, epayload(f, 256))
	}
	if e2.shardOf(extra).contains(extra) {
		t.Fatal("extra file should have been evicted from RAM")
	}
	if _, got, ok := e2.Get(extra); !ok || !bytes.Equal(got, want) {
		t.Fatal("post-recovery spill not served from flash")
	}
}

// TestFlashCleanReopen: a clean Close/reopen keeps the whole index.
func TestFlashCleanReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Policy: cache.GDS,
		Flash:  &FlashConfig{Dir: dir, Capacity: 4 << 20, SegmentBytes: 8 << 10},
	}
	e1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1.SetLimit(1 << 10)
	for n := uint64(0); n < 32; n++ {
		f := efid(n)
		e1.Insert(f, 512, epayload(f, 512))
	}
	spilled := e1.Stats().FlashEntries
	if spilled == 0 {
		t.Fatal("no spills")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.Stats().FlashEntries; got != spilled {
		t.Fatalf("reopened with %d flash entries, want %d", got, spilled)
	}
	e2.SetLimit(1 << 10)
	for n := uint64(0); n < 32; n++ {
		f := efid(n)
		if _, got, ok := e2.Get(f); ok {
			if !bytes.Equal(got, epayload(f, 512)) {
				t.Fatalf("file %d: wrong bytes after reopen", n)
			}
		}
	}
}
