package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randNode(r *rand.Rand) Node {
	var n Node
	r.Read(n[:])
	return n
}

func TestNodeFromUint64(t *testing.T) {
	n := NodeFromUint64(0x1234)
	hi, lo := n.Halves()
	if hi != 0 || lo != 0x1234 {
		t.Fatalf("halves = %x,%x; want 0,1234", hi, lo)
	}
}

func TestCmp(t *testing.T) {
	a := NodeFromUint64(1)
	b := NodeFromUint64(2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less wrong")
	}
	hi := NodeFromHalves(1, 0)
	if !b.Less(hi) {
		t.Fatal("high half must dominate comparison")
	}
}

func TestRingDistWrap(t *testing.T) {
	// Distance between 0 and 2^128-1 is 1, across the wrap point.
	var zero Node
	var max Node
	for i := range max {
		max[i] = 0xff
	}
	d := zero.RingDist(max)
	if d != NodeFromUint64(1) {
		t.Fatalf("RingDist(0, max) = %v; want 1", d)
	}
}

func TestRingDistSimple(t *testing.T) {
	a := NodeFromUint64(100)
	b := NodeFromUint64(160)
	if d := a.RingDist(b); d != NodeFromUint64(60) {
		t.Fatalf("RingDist = %v; want 60", d)
	}
}

func TestRingDistSymmetric(t *testing.T) {
	f := func(ab [2 * NodeBytes]byte) bool {
		var a, b Node
		copy(a[:], ab[:NodeBytes])
		copy(b[:], ab[NodeBytes:])
		return a.RingDist(b) == b.RingDist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingDistIdentity(t *testing.T) {
	f := func(raw [NodeBytes]byte) bool {
		n := Node(raw)
		return n.RingDist(n).IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingDistAtMostHalfRing(t *testing.T) {
	// Ring distance can never exceed 2^127.
	half := NodeFromHalves(1<<63, 0)
	f := func(ab [2 * NodeBytes]byte) bool {
		var a, b Node
		copy(a[:], ab[:NodeBytes])
		copy(b[:], ab[NodeBytes:])
		d := a.RingDist(b)
		return d.Cmp(half) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloserTotalOrder(t *testing.T) {
	// Closer must induce a strict total order among distinct ids: exactly
	// one of Closer(a,b), Closer(b,a) holds when a != b.
	f := func(raw [3 * NodeBytes]byte) bool {
		var n, a, b Node
		copy(n[:], raw[:NodeBytes])
		copy(a[:], raw[NodeBytes:2*NodeBytes])
		copy(b[:], raw[2*NodeBytes:])
		if a == b {
			return !n.Closer(a, b) && !n.Closer(b, a)
		}
		return n.Closer(a, b) != n.Closer(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigitRoundTrip(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		f := func(raw [NodeBytes]byte, idx uint8, val uint8) bool {
			n := Node(raw)
			i := int(idx) % NumDigits(b)
			v := int(val) % (1 << b)
			m := n.WithDigit(i, b, v)
			if m.Digit(i, b) != v {
				return false
			}
			// All other digits untouched.
			for j := 0; j < NumDigits(b); j++ {
				if j != i && m.Digit(j, b) != n.Digit(j, b) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
	}
}

func TestDigitKnown(t *testing.T) {
	// 0x12 0x34 ... with b=4: digits 1,2,3,4...
	n := Node{0x12, 0x34}
	want := []int{1, 2, 3, 4}
	for i, w := range want {
		if g := n.Digit(i, 4); g != w {
			t.Fatalf("digit %d = %d; want %d", i, g, w)
		}
	}
	// b=2: 0x12 = 00 01 00 10
	want2 := []int{0, 1, 0, 2}
	for i, w := range want2 {
		if g := n.Digit(i, 2); g != w {
			t.Fatalf("b=2 digit %d = %d; want %d", i, g, w)
		}
	}
}

func TestSharedPrefixMatchesDigits(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		f := func(raw [2 * NodeBytes]byte) bool {
			var x, y Node
			copy(x[:], raw[:NodeBytes])
			copy(y[:], raw[NodeBytes:])
			p := x.SharedPrefix(y, b)
			// Definition check digit by digit.
			n := 0
			for n < NumDigits(b) && x.Digit(n, b) == y.Digit(n, b) {
				n++
			}
			return p == n
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("b=%d: %v", b, err)
		}
	}
}

func TestSharedPrefixSelf(t *testing.T) {
	n := NodeFromUint64(42)
	if p := n.SharedPrefix(n, 4); p != NumDigits(4) {
		t.Fatalf("SharedPrefix(self) = %d; want %d", p, NumDigits(4))
	}
}

func TestParseNodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n := randNode(r)
		got, err := ParseNode(n.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != n {
			t.Fatalf("round trip: %v != %v", got, n)
		}
	}
}

func TestParseNodeErrors(t *testing.T) {
	if _, err := ParseNode("zz"); err == nil {
		t.Fatal("want error for bad hex")
	}
	if _, err := ParseNode("abcd"); err == nil {
		t.Fatal("want error for short input")
	}
}

func TestParseFileRoundTrip(t *testing.T) {
	f := NewFile("report.pdf", []byte("pubkey"), 99)
	got, err := ParseFile(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatal("file round trip mismatch")
	}
	if _, err := ParseFile("00"); err == nil {
		t.Fatal("want error for short file id")
	}
}

func TestNewFileSaltChangesId(t *testing.T) {
	pub := []byte("owner")
	a := NewFile("f", pub, 1)
	b := NewFile("f", pub, 2)
	if a == b {
		t.Fatal("different salts must produce different fileIds")
	}
	if a != NewFile("f", pub, 1) {
		t.Fatal("fileId derivation must be deterministic")
	}
}

func TestFileKey(t *testing.T) {
	f := NewFile("x", nil, 0)
	k := f.Key()
	for i := 0; i < NodeBytes; i++ {
		if k[i] != f[i] {
			t.Fatal("Key must be the 128 msb of the fileId")
		}
	}
}

func TestNodeFromPublicKeyDeterministic(t *testing.T) {
	a := NodeFromPublicKey([]byte("k1"))
	b := NodeFromPublicKey([]byte("k1"))
	c := NodeFromPublicKey([]byte("k2"))
	if a != b {
		t.Fatal("nodeId derivation must be deterministic")
	}
	if a == c {
		t.Fatal("distinct keys must map to distinct nodeIds")
	}
}

func TestCheckBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for base 3")
		}
	}()
	NumDigits(3)
}

func TestWithDigitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for digit value out of range")
		}
	}()
	var n Node
	n.WithDigit(0, 4, 16)
}

func TestShortStrings(t *testing.T) {
	n := NodeFromHalves(0xdeadbeef00000000, 0)
	if n.Short() != "deadbeef" {
		t.Fatalf("Short = %q", n.Short())
	}
	f := NewFile("a", nil, 0)
	if len(f.Short()) != 8 {
		t.Fatalf("file Short length = %d", len(f.Short()))
	}
}

func BenchmarkRingDist(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randNode(r), randNode(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.RingDist(y)
	}
}

func BenchmarkSharedPrefix(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randNode(r), randNode(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.SharedPrefix(y, 4)
	}
}
