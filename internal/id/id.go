// Package id implements the identifier algebra used by Pastry and PAST.
//
// Pastry assigns every node a 128-bit nodeId that names a position on a
// circular namespace ranging from 0 to 2^128-1. PAST assigns every file a
// 160-bit fileId; replicas of a file are stored on the k nodes whose
// nodeIds are numerically closest to the 128 most significant bits of the
// fileId. For routing, identifiers are interpreted as sequences of digits
// with base 2^b.
//
// The package provides the arithmetic the rest of the system is built on:
// big-endian comparison, circular (ring) distance, digit extraction, and
// shared-prefix length, plus the SHA-1 derivations the paper specifies for
// nodeIds (hash of the node's public key) and fileIds (hash of file name,
// owner public key, and a random salt).
package id

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
)

// NodeBytes and FileBytes are the identifier widths, in bytes.
const (
	NodeBytes = 16 // 128-bit nodeIds
	FileBytes = 20 // 160-bit fileIds
)

// Node is a 128-bit Pastry node identifier. The zero value is the
// identifier 0; Node values are comparable and usable as map keys.
type Node [NodeBytes]byte

// File is a 160-bit PAST file identifier.
type File [FileBytes]byte

// NodeFromPublicKey derives a nodeId as the SHA-1 hash of the node's
// public key, truncated to 128 bits, per section 2 of the paper. The
// quasi-random assignment guarantees no correlation between nodeId value
// and the node's location, connectivity, ownership, or jurisdiction.
func NodeFromPublicKey(pub []byte) Node {
	sum := sha1.Sum(pub)
	var n Node
	copy(n[:], sum[:NodeBytes])
	return n
}

// NodeFromUint64 builds a nodeId whose low 64 bits are v. Intended for
// tests and deterministic examples.
func NodeFromUint64(v uint64) Node {
	var n Node
	binary.BigEndian.PutUint64(n[8:], v)
	return n
}

// NodeFromHalves builds a nodeId from its high and low 64-bit halves.
func NodeFromHalves(hi, lo uint64) Node {
	var n Node
	binary.BigEndian.PutUint64(n[:8], hi)
	binary.BigEndian.PutUint64(n[8:], lo)
	return n
}

// Halves returns the big-endian 64-bit halves of n.
func (n Node) Halves() (hi, lo uint64) {
	return binary.BigEndian.Uint64(n[:8]), binary.BigEndian.Uint64(n[8:])
}

// ParseNode parses a 32-hex-digit nodeId.
func ParseNode(s string) (Node, error) {
	var n Node
	b, err := hex.DecodeString(s)
	if err != nil {
		return n, fmt.Errorf("id: parse node %q: %w", s, err)
	}
	if len(b) != NodeBytes {
		return n, fmt.Errorf("id: parse node %q: want %d bytes, got %d", s, NodeBytes, len(b))
	}
	copy(n[:], b)
	return n, nil
}

// String renders the nodeId as 32 lowercase hex digits.
func (n Node) String() string { return hex.EncodeToString(n[:]) }

// Short renders the leading 8 hex digits, for logs.
func (n Node) Short() string { return hex.EncodeToString(n[:4]) }

// Cmp compares two nodeIds as unsigned big-endian integers, returning
// -1, 0, or +1.
func (n Node) Cmp(o Node) int {
	for i := 0; i < NodeBytes; i++ {
		switch {
		case n[i] < o[i]:
			return -1
		case n[i] > o[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether n < o as unsigned big-endian integers.
func (n Node) Less(o Node) bool { return n.Cmp(o) < 0 }

// IsZero reports whether n is the all-zero identifier.
func (n Node) IsZero() bool { return n == Node{} }

// sub returns n - o mod 2^128.
func (n Node) sub(o Node) Node {
	nh, nl := n.Halves()
	oh, ol := o.Halves()
	lo, borrow := bits.Sub64(nl, ol, 0)
	hi, _ := bits.Sub64(nh, oh, borrow)
	return NodeFromHalves(hi, lo)
}

// CWDist returns the clockwise distance from n to o on the ring, i.e.
// (o - n) mod 2^128.
func (n Node) CWDist(o Node) Node { return o.sub(n) }

// RingDist returns the circular (numerical) distance between n and o:
// min((n-o) mod 2^128, (o-n) mod 2^128). This is the metric "numerically
// closest" refers to throughout the paper.
func (n Node) RingDist(o Node) Node {
	d1 := n.sub(o)
	d2 := o.sub(n)
	if d1.Less(d2) {
		return d1
	}
	return d2
}

// Closer reports whether a is strictly nearer to n than b is, under ring
// distance, breaking ties by smaller identifier so that orderings are
// total and deterministic.
func (n Node) Closer(a, b Node) bool {
	da, db := n.RingDist(a), n.RingDist(b)
	if c := da.Cmp(db); c != 0 {
		return c < 0
	}
	return a.Less(b)
}

// Digit returns the i-th base-2^b digit of n, counting from the most
// significant digit (digit 0). b must be 1, 2, 4, or 8.
func (n Node) Digit(i, b int) int {
	checkBase(b)
	perByte := 8 / b
	byteIdx := i / perByte
	within := i % perByte
	shift := uint(8 - b*(within+1))
	mask := byte(1<<b - 1)
	return int(n[byteIdx] >> shift & mask)
}

// NumDigits returns the number of base-2^b digits in a 128-bit id.
func NumDigits(b int) int {
	checkBase(b)
	return 128 / b
}

// SharedPrefix returns the number of leading base-2^b digits n and o have
// in common.
func (n Node) SharedPrefix(o Node, b int) int {
	checkBase(b)
	total := NumDigits(b)
	for i := 0; i < NodeBytes; i++ {
		if x := n[i] ^ o[i]; x != 0 {
			// Leading zero bits within this byte, truncated to whole digits.
			zeroBits := bits.LeadingZeros8(x)
			d := (i*8 + zeroBits) / b
			if d > total {
				d = total
			}
			return d
		}
	}
	return total
}

// WithDigit returns a copy of n whose i-th base-2^b digit is set to v.
func (n Node) WithDigit(i, b, v int) Node {
	checkBase(b)
	if v < 0 || v >= 1<<b {
		panic(fmt.Sprintf("id: digit value %d out of range for base 2^%d", v, b))
	}
	perByte := 8 / b
	byteIdx := i / perByte
	within := i % perByte
	shift := uint(8 - b*(within+1))
	mask := byte(1<<b-1) << shift
	out := n
	out[byteIdx] = out[byteIdx]&^mask | byte(v)<<shift
	return out
}

func checkBase(b int) {
	switch b {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("id: unsupported digit base 2^%d (b must be 1, 2, 4, or 8)", b))
	}
}

// NewFile computes a fileId as the SHA-1 hash of the file's textual name,
// the owner's public key, and a salt, per section 2.2 of the paper.
// Re-salting with a fresh value yields a new fileId for the same file;
// PAST's file diversion relies on this.
func NewFile(name string, ownerPub []byte, salt uint64) File {
	h := sha1.New()
	h.Write([]byte(name))
	h.Write(ownerPub)
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], salt)
	h.Write(sb[:])
	var f File
	h.Sum(f[:0])
	return f
}

// ParseFile parses a 40-hex-digit fileId.
func ParseFile(s string) (File, error) {
	var f File
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("id: parse file %q: %w", s, err)
	}
	if len(b) != FileBytes {
		return f, fmt.Errorf("id: parse file %q: want %d bytes, got %d", s, FileBytes, len(b))
	}
	copy(f[:], b)
	return f, nil
}

// String renders the fileId as 40 lowercase hex digits.
func (f File) String() string { return hex.EncodeToString(f[:]) }

// Short renders the leading 8 hex digits, for logs.
func (f File) Short() string { return hex.EncodeToString(f[:4]) }

// Key returns the 128 most significant bits of the fileId, the value that
// Pastry routes on and that replica placement is defined against.
func (f File) Key() Node {
	var n Node
	copy(n[:], f[:NodeBytes])
	return n
}

// IsZero reports whether f is the all-zero identifier.
func (f File) IsZero() bool { return f == File{} }
