package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"past/internal/id"
	"past/internal/stats"
)

func fid(n uint64) id.File { return id.NewFile("f", nil, n) }

func TestNonePolicyNeverCaches(t *testing.T) {
	c := New(None, 1)
	c.SetLimit(1000)
	if c.Insert(fid(1), 10, nil) {
		t.Fatal("None policy must not cache")
	}
	if c.Access(fid(1)) {
		t.Fatal("None policy must miss")
	}
}

func TestInsertAndAccess(t *testing.T) {
	c := New(LRU, 1)
	c.SetLimit(1000)
	if !c.Insert(fid(1), 100, nil) {
		t.Fatal("insert failed")
	}
	if !c.Access(fid(1)) {
		t.Fatal("want hit")
	}
	if c.Access(fid(2)) {
		t.Fatal("want miss")
	}
	h, m, _ := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d", h, m)
	}
	if c.Used() != 100 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestInsertionFractionPolicy(t *testing.T) {
	// Paper: cache a file only if size < c * current cache size.
	c := New(GDS, 0.5)
	c.SetLimit(1000)
	if c.Insert(fid(1), 500, nil) {
		t.Fatal("size == c*limit must be rejected")
	}
	if !c.Insert(fid(2), 499, nil) {
		t.Fatal("size < c*limit must be accepted")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(LRU, 1)
	c.SetLimit(300)
	c.Insert(fid(1), 100, nil)
	c.Insert(fid(2), 100, nil)
	c.Insert(fid(3), 100, nil)
	c.Access(fid(1)) // 1 is now most recent; 2 is LRU
	c.Insert(fid(4), 100, nil)
	if c.Contains(fid(2)) {
		t.Fatal("LRU victim should have been 2")
	}
	if !c.Contains(fid(1)) || !c.Contains(fid(3)) || !c.Contains(fid(4)) {
		t.Fatal("wrong eviction set")
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	c := New(FIFO, 1)
	c.SetLimit(300)
	c.Insert(fid(1), 100, nil)
	c.Insert(fid(2), 100, nil)
	c.Insert(fid(3), 100, nil)
	c.Access(fid(1)) // must NOT rescue 1 under FIFO
	c.Insert(fid(4), 100, nil)
	if c.Contains(fid(1)) {
		t.Fatal("FIFO victim should have been 1 despite the hit")
	}
}

func TestGDSPrefersSmallFiles(t *testing.T) {
	// With cost 1, H = L + 1/size: small files get higher weight, so a
	// large file is evicted before small ones, maximizing hit count.
	c := New(GDS, 1)
	c.SetLimit(1000)
	c.Insert(fid(1), 800, nil) // large
	c.Insert(fid(2), 100, nil) // small
	c.Insert(fid(3), 150, nil) // forces eviction
	if c.Contains(fid(1)) {
		t.Fatal("GD-S should have evicted the large file")
	}
	if !c.Contains(fid(2)) || !c.Contains(fid(3)) {
		t.Fatal("small files should survive")
	}
}

func TestGDSAgingEvictsColdFiles(t *testing.T) {
	// GD-S aging: a small cold file starts with high weight H = 1/size,
	// but every eviction raises the inflation value L, so once
	// L exceeds it the cold file is evicted despite its size advantage.
	c := New(GDS, 1)
	c.SetLimit(200)
	c.Insert(fid(1), 20, nil) // cold, H = 0 + 1/20 = 0.05
	for i := 0; i < 50; i++ {
		c.Insert(fid(uint64(10+i)), 100, nil) // churn raises L by ~0.01 per eviction
	}
	if c.Contains(fid(1)) {
		t.Fatal("cold small file survived; GD-S inflation broken")
	}

	// By contrast, a small file that is re-accessed each round keeps its
	// weight at L + 1/size, above the churn files, and survives.
	c2 := New(GDS, 1)
	c2.SetLimit(200)
	c2.Insert(fid(1), 20, nil)
	for i := 0; i < 50; i++ {
		c2.Access(fid(1))
		c2.Insert(fid(uint64(10+i)), 100, nil)
	}
	if !c2.Contains(fid(1)) {
		t.Fatal("recently-accessed small file was evicted")
	}
}

func TestSetLimitShrinkEvicts(t *testing.T) {
	c := New(GDS, 1)
	c.SetLimit(1000)
	for i := 0; i < 10; i++ {
		c.Insert(fid(uint64(i)), 90, nil)
	}
	if c.Used() != 900 {
		t.Fatalf("used = %d", c.Used())
	}
	c.SetLimit(300) // a replica arrived; the cache must give way
	if c.Used() > 300 {
		t.Fatalf("used = %d after shrink", c.Used())
	}
	c.SetLimit(-10)
	if c.Used() != 0 || c.Limit() != 0 {
		t.Fatal("negative limit must clamp to 0 and flush")
	}
}

func TestRemove(t *testing.T) {
	c := New(LRU, 1)
	c.SetLimit(100)
	c.Insert(fid(1), 40, nil)
	if !c.Remove(fid(1)) {
		t.Fatal("remove failed")
	}
	if c.Remove(fid(1)) {
		t.Fatal("double remove must fail")
	}
	if c.Used() != 0 {
		t.Fatal("accounting after remove")
	}
}

func TestReinsertRefreshes(t *testing.T) {
	c := New(LRU, 1)
	c.SetLimit(200)
	c.Insert(fid(1), 100, nil)
	c.Insert(fid(2), 100, nil)
	if !c.Insert(fid(1), 100, nil) {
		t.Fatal("reinsert must succeed as refresh")
	}
	c.Insert(fid(3), 100, nil) // evicts LRU = 2
	if c.Contains(fid(2)) || !c.Contains(fid(1)) {
		t.Fatal("reinsert did not refresh recency")
	}
	if c.Used() != 200 {
		t.Fatalf("used = %d; refresh must not double-count", c.Used())
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	c := New(GDS, 1)
	c.SetLimit(100)
	if c.Insert(fid(1), -5, nil) {
		t.Fatal("negative size must be rejected")
	}
}

func TestZeroSizeFiles(t *testing.T) {
	c := New(GDS, 1)
	c.SetLimit(100)
	if !c.Insert(fid(1), 0, nil) {
		t.Fatal("zero-size file should cache")
	}
	if !c.Access(fid(1)) {
		t.Fatal("zero-size hit")
	}
}

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range []Policy{None, LRU, GDS, FIFO} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("want error")
	}
	if New(GDS, 1).Policy() != GDS {
		t.Fatal("Policy accessor")
	}
}

func TestNewPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(GDS, 0)
}

// TestCacheInvariant property-checks used <= limit and used equals the
// sum of resident sizes across random operation sequences.
func TestCacheInvariant(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, pol := range []Policy{LRU, GDS, FIFO} {
			c := New(pol, 1)
			c.SetLimit(1000)
			resident := map[uint64]int64{}
			for _, op := range ops {
				k := uint64(op % 64)
				switch op % 4 {
				case 0, 1:
					size := int64(r.Intn(400))
					// A successful insert leaves the file resident at the
					// offered size — including refreshes, which update the
					// accounting of an already-cached file.
					if c.Insert(fid(k), size, nil) {
						resident[k] = size
					}
				case 2:
					c.Access(fid(k))
				case 3:
					c.Remove(fid(k))
				}
				// Reconcile shadow map with cache contents.
				for f2 := range resident {
					if !c.Contains(fid(f2)) {
						delete(resident, f2)
					}
				}
				var sum int64
				for _, s := range resident {
					sum += s
				}
				if c.Used() > c.Limit() || c.Used() != sum || c.Len() != len(resident) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGDSBeatsLRUOnZipfMixedSizes reproduces the qualitative Figure 8
// finding: under Zipf-popular requests with heterogeneous sizes, GD-S
// achieves at least LRU's hit rate.
func TestGDSBeatsLRUOnZipfMixedSizes(t *testing.T) {
	run := func(pol Policy) float64 {
		r := stats.NewRand(99)
		z := stats.NewZipf(2000, 0.9)
		sizes := make([]int64, 2000)
		ln := stats.LogNormalFromMedianMean(1312, 10517)
		for i := range sizes {
			sizes[i] = int64(ln.Sample(r)) + 1
		}
		c := New(pol, 1)
		c.SetLimit(64 * 1024)
		hits, total := 0, 0
		for i := 0; i < 60000; i++ {
			k := uint64(z.Rank(r))
			total++
			if c.Access(fid(k)) {
				hits++
			} else {
				c.Insert(fid(k), sizes[k], nil)
			}
		}
		return float64(hits) / float64(total)
	}
	gds := run(GDS)
	lru := run(LRU)
	t.Logf("hit rates: gd-s=%.3f lru=%.3f", gds, lru)
	if gds < lru-0.01 {
		t.Fatalf("GD-S hit rate %.3f below LRU %.3f", gds, lru)
	}
}

func BenchmarkGDSInsertEvict(b *testing.B) {
	c := New(GDS, 1)
	c.SetLimit(1 << 20)
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Insert(fid(uint64(i)), int64(r.Intn(4096)), nil)
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	c := New(LRU, 1)
	c.SetLimit(1 << 20)
	for i := 0; i < 1000; i++ {
		c.Insert(fid(uint64(i)), 512, nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(fid(uint64(i % 1000)))
	}
}
