// Package cache implements PAST's file cache (section 4 of the paper).
//
// PAST nodes use the unused portion of their advertised disk space to
// cache files that are routed through them during insert and lookup
// operations; cached copies can be evicted at any time, in particular
// when the node accepts a new primary or diverted replica.
//
// The insertion policy caches a file if its size is less than a fraction
// c of the node's current cache capacity. The replacement policy is
// GreedyDual-Size (Cao & Irani) with cost c(d)=1, which maximizes hit
// rate: every cached file d carries a weight H(d) = L + c(d)/s(d); the
// file with minimal H is evicted and its weight becomes the new
// inflation value L. LRU and FIFO are provided for comparison (the
// paper's Figure 8 compares GD-S against LRU and no caching).
package cache

import (
	"container/heap"
	"fmt"

	"past/internal/id"
)

// Policy selects the replacement algorithm.
type Policy uint8

// Replacement policies.
const (
	// None disables caching entirely.
	None Policy = iota
	// LRU evicts the least recently used file.
	LRU
	// GDS is GreedyDual-Size with uniform cost, the paper's policy.
	GDS
	// FIFO evicts the oldest-inserted file; used by ablation benches.
	FIFO
)

func (p Policy) String() string {
	switch p {
	case None:
		return "none"
	case LRU:
		return "lru"
	case GDS:
		return "gd-s"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy converts a policy name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "none":
		return None, nil
	case "lru":
		return LRU, nil
	case "gd-s", "gds":
		return GDS, nil
	case "fifo":
		return FIFO, nil
	}
	return None, fmt.Errorf("cache: unknown policy %q", s)
}

type item struct {
	file    id.File
	size    int64
	content []byte  // nil when the owner runs size-only accounting
	pri     float64 // eviction priority: smallest evicted first
	idx     int     // heap index
}

type itemHeap []*item

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return h[i].pri < h[j].pri }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *itemHeap) Push(x any)        { it := x.(*item); it.idx = len(*h); *h = append(*h, it) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Cache is one node's file cache. Not safe for concurrent use; the
// owning node serializes access. (internal/cachengine wraps one Cache
// per shard behind a mutex to build the concurrent engine.)
type Cache struct {
	// OnEvict, when set, observes every capacity eviction with the
	// evicted file's size and content (nil under size-only accounting).
	// Explicit Remove calls do not fire it. The callback must not call
	// back into the cache. The cachengine flash tier uses it to spill
	// evicted-but-warm objects to a second tier.
	OnEvict func(f id.File, size int64, content []byte)

	policy  Policy
	c       float64 // insertion fraction (the paper's c parameter)
	limit   int64
	used    int64
	tick    float64
	inflate float64 // GD-S aging value L
	items   map[id.File]*item
	h       itemHeap

	hits, misses int64
	evictions    int64
}

// New creates a cache with the given replacement policy and insertion
// fraction c (the paper's experiments use c=1). The limit starts at 0;
// the owning node sets it to its free space via SetLimit.
func New(policy Policy, c float64) *Cache {
	if c <= 0 {
		panic("cache: insertion fraction must be positive")
	}
	return &Cache{policy: policy, c: c, items: make(map[id.File]*item)}
}

// Policy returns the replacement policy.
func (ca *Cache) Policy() Policy { return ca.policy }

// Used returns bytes currently cached.
func (ca *Cache) Used() int64 { return ca.used }

// Limit returns the current capacity.
func (ca *Cache) Limit() int64 { return ca.limit }

// Len returns the number of cached files.
func (ca *Cache) Len() int { return len(ca.items) }

// Stats returns cumulative hits, misses, and evictions.
func (ca *Cache) Stats() (hits, misses, evictions int64) {
	return ca.hits, ca.misses, ca.evictions
}

// SetLimit changes the cache capacity, evicting as needed. The owning
// PAST node calls this whenever its replica store grows or shrinks: the
// cache lives in whatever space replicas do not occupy, which is why
// cache performance degrades gracefully as utilization rises.
func (ca *Cache) SetLimit(n int64) {
	if n < 0 {
		n = 0
	}
	ca.limit = n
	ca.evictTo(ca.limit)
}

// priority computes the eviction priority of a (re)used file.
func (ca *Cache) priority(size int64, onHit bool) float64 {
	switch ca.policy {
	case GDS:
		s := size
		if s < 1 {
			s = 1
		}
		return ca.inflate + 1/float64(s) // H = L + c(d)/s(d), c(d)=1
	case LRU:
		ca.tick++
		return ca.tick
	case FIFO:
		if onHit {
			return -1 // sentinel: FIFO does not reorder on hit
		}
		ca.tick++
		return ca.tick
	default:
		return 0
	}
}

// Insert offers a file to the cache; it reports whether the file was
// cached (or refreshed, if already present). Files of at least c×limit
// bytes are not cached, per the paper's insertion policy. content may be
// nil for size-only accounting (the trace experiments), in which case
// Get returns a nil payload.
//
// Re-inserting a file that is already cached refreshes it: recency is
// touched, non-nil content replaces the cached copy, and a changed size
// updates the accounting — re-applying the insertion policy to the new
// size and evicting as needed if the cache now overflows.
func (ca *Cache) Insert(f id.File, size int64, content []byte) bool {
	if ca.policy == None || size < 0 {
		return false
	}
	if it, ok := ca.items[f]; ok {
		return ca.refresh(it, size, content)
	}
	if float64(size) >= ca.c*float64(ca.limit) {
		return false
	}
	if size > ca.limit {
		return false
	}
	ca.evictTo(ca.limit - size)
	it := &item{file: f, size: size, content: content, pri: ca.priority(size, false)}
	ca.items[f] = it
	heap.Push(&ca.h, it)
	ca.used += size
	return true
}

// refresh updates an already-cached file on re-insert. Same-size offers
// only touch recency (and adopt non-nil content); a size change updates
// the byte accounting, re-applies the insertion policy, and evicts until
// the cache fits again. Reports whether the file is still cached.
func (ca *Cache) refresh(it *item, size int64, content []byte) bool {
	if size == it.size {
		if content != nil {
			it.content = content
		}
		ca.touch(it)
		return true
	}
	// The file changed size: it must satisfy the insertion policy anew.
	if float64(size) >= ca.c*float64(ca.limit) || size > ca.limit {
		ca.Remove(it.file)
		return false
	}
	ca.used += size - it.size
	it.size = size
	it.content = content
	ca.touch(it)
	// A grown file can overflow the cache; evict (possibly including the
	// refreshed file itself, if its priority is minimal) until it fits.
	ca.evictTo(ca.limit)
	_, still := ca.items[it.file]
	return still
}

// Access looks up f, updating recency state and hit/miss counters.
func (ca *Cache) Access(f id.File) bool {
	_, _, ok := ca.Get(f)
	return ok
}

// Get looks up f, returning its size and content on a hit. Recency state
// and the hit/miss counters are updated.
func (ca *Cache) Get(f id.File) (size int64, content []byte, ok bool) {
	it, found := ca.items[f]
	if !found {
		ca.misses++
		return 0, nil, false
	}
	ca.hits++
	ca.touch(it)
	return it.size, it.content, true
}

// Contains reports whether f is cached, without touching any state.
func (ca *Cache) Contains(f id.File) bool {
	_, ok := ca.items[f]
	return ok
}

func (ca *Cache) touch(it *item) {
	p := ca.priority(it.size, true)
	if p < 0 {
		return // FIFO: no reorder on hit
	}
	it.pri = p
	heap.Fix(&ca.h, it.idx)
}

// Remove drops f from the cache if present.
func (ca *Cache) Remove(f id.File) bool {
	it, ok := ca.items[f]
	if !ok {
		return false
	}
	heap.Remove(&ca.h, it.idx)
	delete(ca.items, f)
	ca.used -= it.size
	return true
}

// evictTo evicts minimum-priority files until used <= target.
func (ca *Cache) evictTo(target int64) {
	if target < 0 {
		target = 0
	}
	for ca.used > target && len(ca.h) > 0 {
		it := heap.Pop(&ca.h).(*item)
		delete(ca.items, it.file)
		ca.used -= it.size
		ca.evictions++
		if ca.policy == GDS {
			// GreedyDual-Size aging: the evicted weight becomes the new
			// inflation value, so long-resident files decay relative to
			// fresh ones without a full-heap subtraction.
			ca.inflate = it.pri
		}
		if ca.OnEvict != nil {
			ca.OnEvict(it.file, it.size, it.content)
		}
	}
}
