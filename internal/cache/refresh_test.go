package cache

import (
	"testing"

	"past/internal/id"
)

// Re-inserting a cached file with a new size must update the byte
// accounting, not just recency. This was a real bug: Insert used to
// touch recency and return, leaving used bytes (and stale content)
// reflecting the old size forever.
func TestInsertRefreshUpdatesSizeAccounting(t *testing.T) {
	for _, pol := range []Policy{GDS, LRU, FIFO} {
		ca := New(pol, 1)
		ca.SetLimit(1000)
		if !ca.Insert(fid(1), 100, []byte("old")) {
			t.Fatalf("%v: initial insert failed", pol)
		}
		if !ca.Insert(fid(1), 300, []byte("newer")) {
			t.Fatalf("%v: refresh insert failed", pol)
		}
		if ca.Used() != 300 {
			t.Errorf("%v: used = %d after grow, want 300", pol, ca.Used())
		}
		if _, content, ok := ca.Get(fid(1)); !ok || string(content) != "newer" {
			t.Errorf("%v: content = %q after refresh, want %q", pol, content, "newer")
		}
		if !ca.Insert(fid(1), 50, []byte("small")) {
			t.Fatalf("%v: shrink refresh failed", pol)
		}
		if ca.Used() != 50 {
			t.Errorf("%v: used = %d after shrink, want 50", pol, ca.Used())
		}
	}
}

// A same-size refresh adopts non-nil content and touches recency only;
// accounting must be unchanged.
func TestInsertRefreshSameSize(t *testing.T) {
	ca := New(GDS, 1)
	ca.SetLimit(1000)
	ca.Insert(fid(1), 100, []byte("aaa"))
	ca.Insert(fid(1), 100, nil) // size-only offer: keep the cached copy
	if _, content, ok := ca.Get(fid(1)); !ok || string(content) != "aaa" {
		t.Fatalf("nil-content refresh dropped content: %q", content)
	}
	ca.Insert(fid(1), 100, []byte("bbb"))
	if _, content, _ := ca.Get(fid(1)); string(content) != "bbb" {
		t.Fatalf("refresh did not adopt new content: %q", content)
	}
	if ca.Used() != 100 {
		t.Fatalf("used = %d, want 100", ca.Used())
	}
}

// A refresh that grows the file beyond the remaining space must evict
// other files to fit, and a refresh that grows it beyond the insertion
// policy must drop it.
func TestInsertRefreshGrowEvicts(t *testing.T) {
	ca := New(LRU, 1)
	ca.SetLimit(1000)
	ca.Insert(fid(1), 400, nil)
	ca.Insert(fid(2), 400, nil)
	// Growing file 2 to 900 overflows; file 1 (least recent) must go.
	if !ca.Insert(fid(2), 900, nil) {
		t.Fatalf("grow refresh failed")
	}
	if ca.Contains(fid(1)) {
		t.Errorf("grow refresh did not evict the colder file")
	}
	if ca.Used() != 900 || ca.Len() != 1 {
		t.Errorf("used=%d len=%d, want 900/1", ca.Used(), ca.Len())
	}
	// Growing beyond the insertion policy (c=1: size >= limit) drops it.
	if ca.Insert(fid(2), 1000, nil) {
		t.Errorf("refresh beyond insertion policy reported cached")
	}
	if ca.Contains(fid(2)) || ca.Used() != 0 {
		t.Errorf("inadmissible refresh left the file cached (used=%d)", ca.Used())
	}
}

// OnEvict observes capacity evictions (with content) but not explicit
// removals.
func TestOnEvictHook(t *testing.T) {
	ca := New(GDS, 1)
	var evicted []int64
	ca.OnEvict = func(_ id.File, size int64, content []byte) {
		evicted = append(evicted, size)
		if content == nil {
			t.Errorf("OnEvict content nil for full-content item")
		}
	}
	ca.SetLimit(1000)
	ca.Insert(fid(1), 400, []byte("x"))
	ca.Insert(fid(2), 400, []byte("y"))
	ca.Remove(fid(1))
	if len(evicted) != 0 {
		t.Fatalf("Remove fired OnEvict")
	}
	ca.SetLimit(100) // capacity shrink evicts the remaining file
	if len(evicted) != 1 || evicted[0] != 400 {
		t.Fatalf("evicted = %v, want [400]", evicted)
	}
}
