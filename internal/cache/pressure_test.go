package cache

import (
	"testing"

	"past/internal/stats"
)

// checkHeapConsistency asserts the cache's internal invariants: the
// heap satisfies the min-heap property, every item's recorded index is
// its actual slot, the heap and the lookup map agree exactly, and the
// byte accounting matches the items.
func checkHeapConsistency(t *testing.T, ca *Cache) {
	t.Helper()
	if len(ca.h) != len(ca.items) {
		t.Fatalf("heap has %d items, map has %d", len(ca.h), len(ca.items))
	}
	var used int64
	for i, it := range ca.h {
		if it.idx != i {
			t.Fatalf("item %s records index %d but sits at %d", it.file.Short(), it.idx, i)
		}
		if got, ok := ca.items[it.file]; !ok || got != it {
			t.Fatalf("heap item %s missing from (or stale in) the map", it.file.Short())
		}
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < len(ca.h) && ca.h[child].pri < it.pri {
				t.Fatalf("heap property violated: parent %d pri %g > child %d pri %g",
					i, it.pri, child, ca.h[child].pri)
			}
		}
		used += it.size
	}
	if used != ca.used {
		t.Fatalf("accounted %d bytes, items hold %d", ca.used, used)
	}
	if ca.used > ca.limit {
		t.Fatalf("used %d exceeds limit %d", ca.used, ca.limit)
	}
}

// TestGDSHeapConsistentUnderInsertPressure drives a near-full GD-S
// cache with a hot Zipf stream — the regime admission control creates
// at an access node, where nearly every insert forces one or more
// evictions and hits keep re-floating hot entries via heap.Fix. The
// heap, the map, and the byte accounting must stay mutually consistent
// throughout, and the GD-S inflation value must never decrease.
func TestGDSHeapConsistentUnderInsertPressure(t *testing.T) {
	const (
		limit = 10_000
		files = 400
		ops   = 8000
	)
	ca := New(GDS, 1)
	ca.SetLimit(limit)
	r := stats.NewRand(17)
	z := stats.NewZipf(files, 0.9)
	sizeOf := func(i int) int64 { return 50 + int64(i%13)*40 } // 50..530 bytes

	// Pre-fill to the brim so every subsequent insert works under
	// eviction pressure.
	for i := 0; i < files; i++ {
		ca.Insert(fid(uint64(i)), sizeOf(i), nil)
	}
	if free := ca.Limit() - ca.Used(); free > 600 {
		t.Fatalf("pre-fill left %d bytes free; want a near-full cache", free)
	}

	lastInflate := ca.inflate
	for op := 0; op < ops; op++ {
		i := z.Rank(r)
		switch op % 3 {
		case 0: // hot lookup: heap.Fix path
			ca.Access(fid(uint64(i)))
		case 1: // hot insert: eviction + push path
			ca.Insert(fid(uint64(i)), sizeOf(i), nil)
		default: // cold insert: unique key, guaranteed pressure
			ca.Insert(fid(uint64(files+op)), sizeOf(op), nil)
		}
		if ca.inflate < lastInflate {
			t.Fatalf("op %d: GD-S inflation decreased %g -> %g", op, lastInflate, ca.inflate)
		}
		lastInflate = ca.inflate
		if op%100 == 0 {
			checkHeapConsistency(t, ca)
		}
	}
	checkHeapConsistency(t, ca)

	_, _, evictions := ca.Stats()
	if evictions == 0 {
		t.Fatal("pressure stream forced no evictions")
	}
	// Occasional shrinking (replica growth stealing cache space) and
	// explicit removal must preserve the invariants too.
	ca.SetLimit(limit / 2)
	checkHeapConsistency(t, ca)
	for i := 0; i < files; i += 7 {
		ca.Remove(fid(uint64(i)))
	}
	checkHeapConsistency(t, ca)
}

// BenchmarkEvict measures the cost of an insert that must evict on a
// full cache, GD-S (heap) vs LRU (heap by recency tick) — the paper's
// policy against the common default.
func BenchmarkEvict(b *testing.B) {
	for _, pol := range []Policy{GDS, LRU} {
		b.Run(pol.String(), func(b *testing.B) {
			const limit = 1 << 20
			ca := New(pol, 1)
			ca.SetLimit(limit)
			// Fill with 4 KiB entries.
			n := uint64(limit / 4096)
			for i := uint64(0); i < n; i++ {
				ca.Insert(fid(i), 4096, nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Each insert displaces exactly one resident entry.
				ca.Insert(fid(n+uint64(i)), 4096, nil)
			}
			b.StopTimer()
			if ca.Used() > limit {
				b.Fatalf("cache overfull: %d > %d", ca.Used(), limit)
			}
		})
	}
}

// BenchmarkHit measures the hot-hit path (map lookup + heap.Fix for
// GD-S and LRU; FIFO skips the reorder).
func BenchmarkHit(b *testing.B) {
	for _, pol := range []Policy{GDS, LRU, FIFO} {
		b.Run(pol.String(), func(b *testing.B) {
			ca := New(pol, 1)
			ca.SetLimit(1 << 20)
			for i := uint64(0); i < 200; i++ {
				ca.Insert(fid(i), 4096, nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !ca.Access(fid(uint64(i) % 200)) {
					b.Fatal("unexpected miss")
				}
			}
		})
	}
}
