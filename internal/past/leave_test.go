package past

import (
	"fmt"
	"testing"

	"past/internal/id"
)

func TestGracefulLeavePreservesFiles(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 40, cfg, 1<<21, 95)
	client := c.Nodes[0]

	var files []id.File
	for i := 0; i < 60; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("lv-%d", i), Size: 2048})
		if err != nil || !res.OK {
			t.Fatalf("insert %d: %v %+v", i, err, res)
		}
		files = append(files, res.FileID)
	}

	// Pick a node holding many replicas (never the client) and leave it.
	var leaver *Node
	for _, n := range c.Nodes[1:] {
		if n.StoredBytes() > 0 {
			leaver = n
			break
		}
	}
	if leaver == nil {
		t.Fatal("no replica-holding node")
	}
	lr := leaver.Leave()
	if lr.Offloaded == 0 {
		t.Fatalf("leave offloaded nothing: %+v", lr)
	}
	if lr.Failed > 0 {
		t.Fatalf("leave failed to place %d replicas despite ample space", lr.Failed)
	}
	c.Net.Remove(leaver.ID())

	// Every file must be retrievable immediately — WITHOUT any
	// keep-alive/maintenance round: that is the point of graceful
	// departure.
	for _, f := range files {
		got, err := client.Lookup(f)
		if err != nil || !got.Found {
			t.Fatalf("file %s lost right after graceful leave: %v", f.Short(), err)
		}
	}

	// And the replica invariant holds against the post-departure ring.
	for _, f := range files {
		assertReplicaInvariant(t, c, f, cfg.K)
	}

	// Routes no longer touch the departed node.
	for _, n := range c.Nodes {
		if n == leaver {
			continue
		}
		for _, m := range n.Overlay().LeafSet() {
			if m == leaver.ID() {
				t.Fatalf("node %s still lists the departed node in its leaf set", n.ID().Short())
			}
		}
	}
}

func TestLeaveRehomesDivertedReplicas(t *testing.T) {
	c, f, a, b := divertedCluster(t, 96)
	// The node B holding the diverted replica leaves gracefully; the
	// diverting node A must drop its pointer and re-create the replica.
	lr := b.Leave()
	c.Net.Remove(b.ID())
	if lr.OwnersNotified == 0 {
		t.Fatalf("no diverted-replica owners notified: %+v", lr)
	}

	if target, ok := a.HasPointer(f.id); ok && target == b.ID() {
		t.Fatal("diverting node still points at the departed holder")
	}
	got, err := c.Nodes[1].Lookup(f.id)
	if err != nil || !got.Found {
		t.Fatalf("file with diverted replica lost after holder's graceful leave: %v", err)
	}
}

func TestLeavingNodeRefusesNewReplicas(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<21, 97)
	n := c.Nodes[5]
	n.mu.Lock()
	n.leaving = true
	n.mu.Unlock()
	rep := n.handleStoreReplica(&storeReplicaMsg{File: id.NewFile("x", nil, 1), Key: id.NodeFromUint64(1), Size: 10, K: 3})
	if rep.Status != storeFailed {
		t.Fatalf("leaving node accepted a replica: %v", rep.Status)
	}
	drep := n.handleDivertStore(&divertStoreMsg{File: id.NewFile("y", nil, 2), Size: 10})
	if drep.Status != divertNoSpace {
		t.Fatalf("leaving node accepted a diverted replica: %v", drep.Status)
	}
	arep := n.handleAcquire(&acquireMsg{File: id.NewFile("z", nil, 3), Key: id.NodeFromUint64(3), Size: 10, K: 3})
	if arep.Status != acquireFailed {
		t.Fatalf("leaving node accepted an acquire: %v", arep.Status)
	}
}
