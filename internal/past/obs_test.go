package past

import (
	"fmt"
	"math"
	"testing"

	"past/internal/id"
	"past/internal/metrics"
	"past/internal/obs"
)

// TestTracedLookupMatchesCollectorHops pins the agreement between the
// two observation paths: the hop count a traced lookup's per-hop
// records reconstruct must equal the hop count the metrics.Collector is
// fed for the same operation (LookupResult.Hops, net of the pointer
// chase the trace does not cover).
func TestTracedLookupMatchesCollectorHops(t *testing.T) {
	cfg := smallCfg()
	tracer := obs.NewTracer(1, 256)
	cfg.Tracer = tracer
	col := metrics.NewCollector(40<<20, 4)
	cfg.Monitor = col
	c := testCluster(t, 40, cfg, 1<<20, 7)

	var files []id.File
	for i := 0; i < 12; i++ {
		ins, err := c.RandomAliveNode().Insert(InsertSpec{
			Name: fmt.Sprintf("obs-%d", i), Size: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ins.OK {
			files = append(files, ins.FileID)
		}
	}
	if len(files) == 0 {
		t.Fatal("no files inserted")
	}

	var hopSum, found int
	for _, f := range files {
		client := c.RandomAliveNode()
		lr, err := client.Lookup(f)
		if err != nil {
			t.Fatal(err)
		}
		if !lr.Found {
			t.Fatalf("file %s not found on a quiet network", f.Short())
		}
		col.RecordLookup(col.Utilization(), lr.Hops, true, lr.FromCache)
		hopSum += lr.Hops
		found++

		if len(lr.Trace) == 0 {
			t.Fatal("lookup sampled at every=1 returned no trace")
		}
		want := lr.Hops
		if lr.Indirect {
			want-- // the pointer chase is one RPC, not a routing hop
		}
		tr := obs.Trace{Hops: lr.Trace}
		if tr.HopCount() != want {
			t.Fatalf("trace reconstructs %d hops, lookup reported %d (indirect=%v)",
				tr.HopCount(), want, lr.Indirect)
		}
	}

	// The collector's aggregate view must agree with what we fed it.
	meanHops, _, n := col.GlobalLookupStats()
	if n != found {
		t.Fatalf("collector saw %d lookups, want %d", n, found)
	}
	if want := float64(hopSum) / float64(found); math.Abs(meanHops-want) > 1e-9 {
		t.Fatalf("collector mean hops %.4f, want %.4f", meanHops, want)
	}

	// The tracer retained lookup traces whose RouteHops match too.
	lookups := 0
	for _, tr := range tracer.Traces() {
		if tr.Op != "lookup" {
			continue
		}
		lookups++
		if got := (&obs.Trace{Hops: tr.Hops}).HopCount(); got != tr.RouteHops {
			t.Fatalf("retained trace: records give %d hops, RouteHops says %d", got, tr.RouteHops)
		}
	}
	if lookups != found {
		t.Fatalf("tracer retained %d lookup traces, want %d", lookups, found)
	}
}

// TestStatsRegistryAndSnapshot checks that client operations land in
// the per-node registry and that StatsSnapshot folds in the gauges.
func TestStatsRegistryAndSnapshot(t *testing.T) {
	c := testCluster(t, 30, smallCfg(), 1<<20, 9)
	client := c.RandomAliveNode()
	ins, err := client.Insert(InsertSpec{Name: "stats", Content: []byte("hello")})
	if err != nil || !ins.OK {
		t.Fatalf("insert: %v ok=%v", err, ins != nil && ins.OK)
	}
	if _, err := client.Lookup(ins.FileID); err != nil {
		t.Fatal(err)
	}

	st := client.Stats()
	if st.Inserts.Load() != 1 || st.Lookups.Load() != 1 {
		t.Fatalf("registry inserts=%d lookups=%d, want 1/1", st.Inserts.Load(), st.Lookups.Load())
	}
	if st.MsgsOut.Load() == 0 {
		t.Fatal("client issued RPCs but msgs_out is 0")
	}

	snap := client.StatsSnapshot()
	if snap.Get(obs.CtrInserts) != 1 || snap.Get(obs.CtrLookups) != 1 {
		t.Fatalf("snapshot inserts=%d lookups=%d, want 1/1",
			snap.Get(obs.CtrInserts), snap.Get(obs.CtrLookups))
	}
	if snap.Get(obs.CtrStoreCapacity) != 1<<20 {
		t.Fatalf("snapshot capacity gauge = %d, want %d", snap.Get(obs.CtrStoreCapacity), 1<<20)
	}
	if snap.Get(obs.CtrLeafSetSize) == 0 || snap.Get(obs.CtrTableEntries) == 0 {
		t.Fatal("snapshot must carry overlay gauges")
	}
	if snap.TotalRPCs() == 0 {
		t.Fatal("snapshot latency histogram is empty after RPCs")
	}

	// Replicas must be accounted somewhere in the cluster.
	var stored int64
	for _, n := range c.Nodes {
		stored += n.Stats().ReplicasStored.Load()
	}
	if stored < int64(smallCfg().K) {
		t.Fatalf("cluster-wide replicas_stored = %d, want >= k=%d", stored, smallCfg().K)
	}

	// The ClientStats RPC handler serves the same snapshot shape.
	reply, err := client.handleClientRPC(obs.TraceContext{}, &ClientStats{})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := reply.(*ClientStatsReply)
	if !ok {
		t.Fatalf("ClientStats reply type %T", reply)
	}
	if sr.Stats.Get(obs.CtrInserts) != 1 {
		t.Fatalf("RPC snapshot inserts = %d, want 1", sr.Stats.Get(obs.CtrInserts))
	}
}

// TestTracerSamplesEveryNth checks the deterministic sampling cadence
// through the full client path.
func TestTracerSamplesEveryNth(t *testing.T) {
	cfg := smallCfg()
	tracer := obs.NewTracer(3, 64)
	cfg.Tracer = tracer
	c := testCluster(t, 20, cfg, 1<<20, 11)
	client := c.RandomAliveNode()
	ins, err := client.Insert(InsertSpec{Name: "f", Content: []byte("x")}) // op 1: sampled
	if err != nil || !ins.OK {
		t.Fatalf("insert: %v", err)
	}
	for i := 0; i < 8; i++ { // ops 2..9: sampled at 4 and 7
		if _, err := client.Lookup(ins.FileID); err != nil {
			t.Fatal(err)
		}
	}
	if got := tracer.Started(); got != 9 {
		t.Fatalf("tracer saw %d ops, want 9", got)
	}
	if got := tracer.Sampled(); got != 3 {
		t.Fatalf("tracer sampled %d ops, want 3 (every 3rd of 9)", got)
	}
	trs := tracer.Traces()
	if trs[0].Op != "insert" || trs[1].Op != "lookup" || trs[2].Op != "lookup" {
		t.Fatalf("sampled ops %q %q %q, want insert, lookup, lookup", trs[0].Op, trs[1].Op, trs[2].Op)
	}
}
