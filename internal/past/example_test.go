package past_test

import (
	"fmt"
	"log"
	"math/rand"

	"past/internal/cache"
	"past/internal/past"
	"past/internal/pastry"
)

// Example demonstrates the complete client API on an emulated network.
func Example() {
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	cfg.CachePolicy = cache.None // deterministic hop counts for the example

	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        30,
		Cfg:      cfg,
		Capacity: func(i int, r *rand.Rand) int64 { return 1 << 20 },
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert through any node.
	res, err := cluster.Nodes[0].Insert(past.InsertSpec{
		Name:    "motd",
		Content: []byte("welcome to PAST"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replicas stored:", res.Stored)

	// Look up from another node.
	got, err := cluster.Nodes[29].Lookup(res.FileID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("found:", got.Found)
	fmt.Println("content:", string(got.Content))

	// Reclaim the storage.
	rec, err := cluster.Nodes[0].Reclaim(res.FileID, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("freed bytes:", rec.Freed)

	// Output:
	// replicas stored: 3
	// found: true
	// content: welcome to PAST
	// freed bytes: 45
}

// ExampleNode_Insert shows file diversion: identical salts collide, and
// the client re-salts into a different part of the nodeId space.
func ExampleNode_Insert() {
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        20,
		Cfg:      cfg,
		Capacity: func(i int, r *rand.Rand) int64 { return 1 << 20 },
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	node := cluster.Nodes[0]

	first, _ := node.Insert(past.InsertSpec{Name: "dup", Size: 64, Salt: 9})
	second, _ := node.Insert(past.InsertSpec{Name: "dup", Size: 64, Salt: 9})
	fmt.Println("first attempts:", first.Attempts)
	fmt.Println("second attempts:", second.Attempts) // fileId collision forced a re-salt
	fmt.Println("distinct ids:", first.FileID != second.FileID)

	// Output:
	// first attempts: 1
	// second attempts: 2
	// distinct ids: true
}
