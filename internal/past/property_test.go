package past

import (
	"fmt"
	"math/rand"
	"testing"

	"past/internal/id"
	"past/internal/store"
)

// TestRandomOpSequencesPreserveInvariants drives a cluster with random
// interleavings of insert, lookup, reclaim, node failure, recovery, and
// maintenance, then checks the global invariants after every batch:
//
//  1. no node stores more bytes than its advertised capacity;
//  2. every live file satisfies the k-closest replica/pointer invariant;
//  3. every live file is retrievable; every reclaimed file's replicas
//     are gone from every store;
//  4. no diverted-out pointer dangles at a live node without a replica.
func TestRandomOpSequencesPreserveInvariants(t *testing.T) {
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomOps(t, seed)
		})
	}
}

func runRandomOps(t *testing.T, seed int64) {
	cfg := smallCfg()
	c := testCluster(t, 40, cfg, 1<<21, seed)
	rng := rand.New(rand.NewSource(seed))
	client := c.Nodes[0] // never failed, so ops always have an access point

	type file struct {
		fid  id.File
		size int64
	}
	live := map[id.File]int64{}
	reclaimed := map[id.File]bool{}
	down := map[id.Node][]id.Node{}
	nextName := 0

	for batch := 0; batch < 8; batch++ {
		for op := 0; op < 25; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				size := int64(rng.Intn(8 << 10))
				res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("p-%d-%d", seed, nextName), Size: size})
				nextName++
				if err != nil {
					t.Fatal(err)
				}
				if res.OK {
					live[res.FileID] = size
				}
			case 4, 5, 6: // lookup of a random live file
				for fid := range live {
					if _, err := client.Lookup(fid); err != nil {
						t.Fatal(err)
					}
					break
				}
			case 7: // reclaim
				// Reclaim only while every node is up: a node that is
				// down during a reclaim legitimately revives its stale
				// replica on recovery (the paper's weak reclaim
				// semantics), which would void the strict assertion.
				if len(down) > 0 {
					continue
				}
				for fid := range live {
					if _, err := client.Reclaim(fid, nil); err != nil {
						t.Fatal(err)
					}
					delete(live, fid)
					reclaimed[fid] = true
					break
				}
			case 8: // fail a node (at most 2 down at once, never the client)
				if len(down) >= 2 {
					continue
				}
				alive := c.Net.AliveNodes()
				nid := alive[rng.Intn(len(alive))]
				if nid == client.ID() {
					continue
				}
				down[nid] = c.ByID[nid].Overlay().LeafSet()
				c.Fail(nid)
			case 9: // recover a node
				for nid, leaf := range down {
					c.Recover(nid)
					if err := c.ByID[nid].Overlay().Rejoin(leaf); err != nil {
						t.Fatal(err)
					}
					delete(down, nid)
					break
				}
			}
		}
		c.Maintain()
		c.Maintain()
		checkGlobalInvariants(t, c, cfg.K, live, reclaimed)
	}
}

func checkGlobalInvariants(t *testing.T, c *Cluster, k int, live map[id.File]int64, reclaimed map[id.File]bool) {
	t.Helper()
	// (1) capacity; (4) pointer integrity.
	for _, n := range c.Nodes {
		if !c.Net.Alive(n.ID()) {
			continue
		}
		if n.StoredBytes() > n.Capacity() {
			t.Fatalf("node %s stores %d > capacity %d", n.ID().Short(), n.StoredBytes(), n.Capacity())
		}
		_, ptrs := n.StoreSnapshot()
		for _, p := range ptrs {
			if p.Role != store.DivertedOut {
				continue
			}
			if !c.Net.Alive(p.Target) {
				continue // repaired on the next maintenance round
			}
			if !c.ByID[p.Target].HasReplica(p.File) {
				// A dangling pointer to a live node is only legal for
				// reclaimed files (stale backup state is discarded lazily).
				if !reclaimed[p.File] {
					t.Fatalf("node %s has dangling pointer to %s for live file %s",
						n.ID().Short(), p.Target.Short(), p.File.Short())
				}
			}
		}
	}
	// (2)+(3) live files.
	for fid := range live {
		assertReplicaInvariant(t, c, fid, k)
		got, err := c.Nodes[0].Lookup(fid)
		if err != nil || !got.Found {
			t.Fatalf("live file %s not retrievable: %v", fid.Short(), err)
		}
	}
	// (3) reclaimed files hold no replicas anywhere.
	for fid := range reclaimed {
		for _, n := range c.Nodes {
			if n.HasReplica(fid) {
				t.Fatalf("reclaimed file %s still on %s", fid.Short(), n.ID().Short())
			}
		}
	}
}
