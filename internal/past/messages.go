package past

import (
	"past/internal/cert"
	"past/internal/id"
	"past/internal/store"
)

// Routed payloads (travel inside pastry.RouteRequest).

// InsertMsg asks the first node among the k closest to the fileId to
// coordinate storing k replicas.
type InsertMsg struct {
	File    id.File
	Size    int64
	Content []byte
	Cert    *cert.FileCertificate
	K       int
}

// InsertReply reports the outcome of one insert attempt.
type InsertReply struct {
	OK       bool
	Reason   string
	Receipts []*cert.StoreReceipt
	// Stored counts replicas created; Diverted counts how many of them
	// were replica-diverted.
	Stored, Diverted int
}

// LookupMsg retrieves a file; it is consumed by the first node on the
// route that holds the file (replica, diverted replica, pointer, or
// cached copy).
type LookupMsg struct {
	File id.File
}

// LookupReply carries the file back toward the client.
type LookupReply struct {
	Found     bool
	Size      int64
	Content   []byte
	Cert      *cert.FileCertificate
	FromCache bool
	// ExtraHops counts the pointer chase to a diverted replica, which
	// the paper charges as one additional RPC.
	ExtraHops int
}

// ReclaimMsg reclaims the storage of the k replicas of a file.
type ReclaimMsg struct {
	File id.File
	Cert *cert.ReclaimCertificate
}

// ReclaimReply reports the reclaimed replicas.
type ReclaimReply struct {
	Found    bool
	Receipts []*cert.ReclaimReceipt
	Freed    int64
}

// Direct node-to-node messages.

// storeReplicaMsg asks a member of the replica set to store a replica
// (primary, or diverted on its behalf).
type storeReplicaMsg struct {
	File    id.File
	Key     id.Node // 128-bit fileId prefix, for replica-set geometry
	Size    int64
	Content []byte
	Cert    *cert.FileCertificate
	K       int
}

// storeReplicaStatus enumerates the outcomes of a store request.
type storeReplicaStatus uint8

const (
	storeOK          storeReplicaStatus = iota // stored locally
	storeOKDiverted                            // stored at a diverted node
	storeAlreadyHeld                           // idempotent: replica already present
	storeFailed                                // neither local store nor diversion possible
)

type storeReplicaReply struct {
	Status  storeReplicaStatus
	Receipt *cert.StoreReceipt
}

// divertStoreMsg asks a non-replica-set node B to hold a diverted
// replica on behalf of Owner.
type divertStoreMsg struct {
	File    id.File
	Size    int64
	Content []byte
	Cert    *cert.FileCertificate
	Owner   id.Node
}

type divertStoreStatus uint8

const (
	divertOK divertStoreStatus = iota
	divertAlreadyHolds
	divertNoSpace
)

type divertStoreReply struct {
	Status  divertStoreStatus
	Receipt *cert.StoreReceipt
}

// freeSpaceMsg queries a node's remaining free space (piggybacked on
// keep-alives in a deployment; an explicit message here).
type freeSpaceMsg struct{}

type freeSpaceReply struct {
	Free int64
}

// installPointerMsg asks a node to record a diverted-replica pointer
// (the k+1-th closest node's backup pointer, or a migration pointer).
type installPointerMsg struct {
	File   id.File
	Target id.Node
	Size   int64
	Role   store.PtrRole
}

// discardMsg asks a node to discard its replica of (or pointer to) a
// file, either during reclaim (with certificate) or when aborting a
// failed insert (abort=true, no certificate needed).
type discardMsg struct {
	File  id.File
	Cert  *cert.ReclaimCertificate
	Abort bool
}

type discardReply struct {
	Had     bool
	Size    int64
	Receipt *cert.ReclaimReceipt
}

// fetchMsg retrieves replica content directly from a known holder
// (pointer chase during lookup, content transfer during migration).
type fetchMsg struct {
	File id.File
}

type fetchReply struct {
	Found   bool
	Size    int64
	Content []byte
	Cert    *cert.FileCertificate
}

// acquireMsg tells a node it should now hold a replica of File (it has
// become one of the k closest). Holder is a live node that has a copy.
// If HolderLeaving, the holder has just ceased to be one of the k
// closest, so the receiver may install a diverted-replica pointer to it
// instead of copying the content (section 3.5's join optimization).
type acquireMsg struct {
	File          id.File
	Key           id.Node
	Size          int64
	K             int
	Holder        id.Node
	HolderLeaving bool
}

type acquireStatus uint8

const (
	acquireAlreadyHave acquireStatus = iota
	acquireStored
	acquirePointer // installed pointer to the (leaving) holder
	acquireFailed
)

type acquireReply struct {
	Status acquireStatus
}

// locateSpaceMsg implements section 3.5's overflow search: a node asks a
// distant leaf-set member to find, within that member's own leaf set, a
// node able to hold a diverted replica.
type locateSpaceMsg struct {
	File id.File
	Size int64
}

type locateSpaceReply struct {
	OK        bool
	Candidate id.Node
}

// convertToDivertedMsg tells the holder of a (former primary) replica
// that Owner now points at it, so the entry must be retained as a
// diverted-in replica.
type convertToDivertedMsg struct {
	File  id.File
	Owner id.Node
}

type ackMsg struct{}

// pointerCheckMsg asks the supposed owner of a diverted-in replica
// whether its pointer at Holder still stands. Holders use it to detect
// orphaned diverted replicas: a live owner that denies the reference
// frees the holder to adopt (and then migrate or discard) the copy. A
// dead owner is NOT a denial — it may recover with its pointer intact.
type pointerCheckMsg struct {
	File   id.File
	Holder id.Node
}

type pointerCheckReply struct {
	Valid bool
}

// replicaSetQuery is a routed message answered by the node numerically
// closest to Key with its view of the replica set. A holder far from
// the key (its replica stranded by a partition or mass churn) uses it
// during maintenance: its own leaf set may not span the key, so its
// local ReplicaSet approximation could nominate wrong nodes.
type replicaSetQuery struct {
	K int
}

type replicaSetReply struct {
	Set []id.Node
}
