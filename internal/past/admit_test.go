package past

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"past/internal/admit"
	"past/internal/id"
	"past/internal/netsim"
)

// admitCluster builds a cluster where every node runs admission control
// against a shared, test-controlled clock. With the clock frozen, each
// node's routed-message budget is exactly Burst+Depth before it sheds;
// advancing the clock refills the buckets.
func admitCluster(t *testing.T, n int, ac admit.Config, seed int64) (*Cluster, *time.Time) {
	t.Helper()
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	ac.Clock = func() time.Time { return now }
	cfg := smallCfg()
	cfg.Admit = &ac
	c := testCluster(t, n, cfg, 1<<20, seed)
	return c, &now
}

// missLookups drives routed traffic by looking up files that do not
// exist: a miss is never cached, so every call crosses the network and
// burns admission tokens at each hop (unlike repeated lookups of a real
// file, which get served from path caches after the first pass).
func missLookups(c *Cluster, rng *rand.Rand, count int) {
	for i := 0; i < count; i++ {
		var f id.File
		rng.Read(f[:])
		c.RandomAliveNode().Lookup(f)
	}
}

func TestAdmissionShedsAndReroutesWithoutEviction(t *testing.T) {
	// Freeze the clock and hammer routed lookups: nodes run out of
	// tokens, shed with ErrOverloaded, and upstream hops must reroute
	// around them without evicting them from routing state.
	c, now := admitCluster(t, 25, admit.Config{Rate: 1, Burst: 8, Depth: 4}, 7)
	client := c.Nodes[0]
	res, err := client.Insert(InsertSpec{Name: "hot", Content: []byte("hot file")})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}

	leafBefore := len(client.Overlay().LeafSet())
	rng := rand.New(rand.NewSource(1))
	// Errors are expected here: under total saturation a lookup can
	// come back ErrOverloaded or not-found. The accounting below is
	// what matters.
	missLookups(c, rng, 400)

	var shed, admitted, overloadHops int64
	for _, node := range c.Nodes {
		shed += node.AdmitController().Shed()
		admitted += node.AdmitController().Admitted()
		overloadHops += node.Overlay().OverloadHops()
	}
	if admitted == 0 {
		t.Fatal("admission counters never moved")
	}
	if shed == 0 {
		t.Fatal("no routed work was shed under a frozen token bucket")
	}
	if overloadHops == 0 {
		t.Fatal("no hop rerouted around an overloaded node")
	}
	// Overload must not tear down routing state: a shed hop is busy,
	// not dead, so the client's leaf set survives the storm intact.
	if got := len(client.Overlay().LeafSet()); got != leafBefore {
		t.Fatalf("leaf set changed under overload: %d -> %d", leafBefore, got)
	}

	// Thaw the clock: tokens refill and the same cluster serves the
	// real file again, proving the shedding nodes were never treated as
	// failed.
	*now = now.Add(time.Hour)
	got, err := c.Nodes[1].Lookup(res.FileID)
	if err != nil || !got.Found {
		t.Fatalf("lookup after refill: %v %+v", err, got)
	}
}

func TestAdmissionDisabledIsUnchanged(t *testing.T) {
	// Config.Admit == nil must leave every path untouched: no
	// controller, no admission counters in the snapshot.
	c := testCluster(t, 10, smallCfg(), 1<<20, 3)
	n := c.RandomAliveNode()
	if n.AdmitController() != nil {
		t.Fatal("controller exists without Config.Admit")
	}
	snap := n.StatsSnapshot()
	if _, ok := snap.Counters[admit.CtrAdmitted]; ok {
		t.Fatal("admission counters leaked into a snapshot without admission control")
	}
}

func TestAdmissionCountersInSnapshot(t *testing.T) {
	c, _ := admitCluster(t, 12, admit.Config{Rate: 1, Burst: 500, Depth: 50}, 11)
	rng := rand.New(rand.NewSource(2))
	missLookups(c, rng, 20)
	var total int64
	for _, node := range c.Nodes {
		total += node.StatsSnapshot().Get(admit.CtrAdmitted)
	}
	if total == 0 {
		t.Fatal("admit_admitted_total missing from snapshots")
	}
}

func TestRetryLoopOverloadExtraBackoff(t *testing.T) {
	// The same jitter seed produces the same base backoff sequence, so
	// one retry loop failing with ErrTimeout and one failing with
	// ErrOverloaded isolate the overload factor exactly.
	sleeps := func(factor float64, fail error) []time.Duration {
		var out []time.Duration
		n := &Node{cfg: Config{Retry: &RetryPolicy{
			MaxAttempts:    4,
			BaseDelay:      10 * time.Millisecond,
			JitterSeed:     99,
			OverloadFactor: factor,
			Sleep:          func(d time.Duration) { out = append(out, d) },
		}}}
		n.retryLoop(context.Background(), nil, func(context.Context) (any, error) {
			return nil, fail
		})
		return out
	}
	base := sleeps(2, netsim.ErrTimeout)
	over := sleeps(2, netsim.ErrOverloaded)
	if len(base) != 3 || len(over) != 3 {
		t.Fatalf("want 3 backoffs each, got %d and %d", len(base), len(over))
	}
	for i := range base {
		if over[i] != 2*base[i] {
			t.Fatalf("backoff %d: overload %v != 2x base %v", i, over[i], base[i])
		}
	}
	// Factor 1 disables the extra backoff.
	flat := sleeps(1, netsim.ErrOverloaded)
	for i := range base {
		if flat[i] != base[i] {
			t.Fatalf("factor 1 backoff %d: %v != base %v", i, flat[i], base[i])
		}
	}
}

func TestRetryLoopStillRetriesOverload(t *testing.T) {
	n := &Node{cfg: Config{Retry: &RetryPolicy{MaxAttempts: 2}}}
	attempts := 0
	_, err := n.retryLoop(context.Background(), nil, func(context.Context) (any, error) {
		attempts++
		return nil, netsim.ErrOverloaded
	})
	if attempts != 2 {
		t.Fatalf("overload must be retried: %d attempts", attempts)
	}
	if !errors.Is(err, netsim.ErrOverloaded) {
		t.Fatalf("final error: %v", err)
	}
}

func TestLoadSteeredHedgeAvoidsHotFirstHop(t *testing.T) {
	cfg := smallCfg()
	cfg.Retry = &RetryPolicy{MaxAttempts: 2, Hedge: true}
	c := testCluster(t, 30, cfg, 1<<20, 17)
	client := c.Nodes[0]
	res, err := client.Insert(InsertSpec{Name: "steered", Content: []byte("steer me")})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v", err)
	}
	fh := client.Overlay().FirstHop(res.FileID.Key())
	if fh.IsZero() {
		t.Skip("client is the consuming node for this key; no first hop to steer around")
	}
	// Simulate a saturation hint from the preferred entry point.
	client.noteLoadHint(fh, 255)
	got, err := client.Lookup(res.FileID)
	if err != nil || !got.Found {
		t.Fatalf("steered lookup: %v %+v", err, got)
	}
	if n := client.Stats().LoadSteers.Load(); n != 1 {
		t.Fatalf("load steer not recorded: %d", n)
	}
	// The consumed hint decays, so steering is not permanent.
	if h := client.loadHintFor(fh); h != 127 {
		t.Fatalf("hint after steer = %d; want decayed 127", h)
	}
	// Below the threshold no steer fires.
	client.noteLoadHint(fh, 100)
	if _, err := client.Lookup(res.FileID); err != nil {
		t.Fatalf("unsteered lookup: %v", err)
	}
	if n := client.Stats().LoadSteers.Load(); n != 1 {
		t.Fatalf("steer fired below threshold: %d", n)
	}
}

func TestLoadHintPiggybackReachesSender(t *testing.T) {
	// Nodes under admission control stamp their load on every route
	// reply they relay; senders must capture the hints. A low burst
	// with a frozen clock drives every node into token debt quickly.
	c, _ := admitCluster(t, 20, admit.Config{Rate: 1, Burst: 3, Depth: 30}, 23)
	rng := rand.New(rand.NewSource(4))
	missLookups(c, rng, 200)
	hinted := 0
	for _, node := range c.Nodes {
		node.loadMu.Lock()
		for _, h := range node.loadHints {
			if h > 0 {
				hinted++
			}
		}
		node.loadMu.Unlock()
	}
	if hinted == 0 {
		t.Fatal("no load hints captured from route replies")
	}
}

func TestAdmissionFingerprintUnchangedWhenOff(t *testing.T) {
	// The admission wiring (hint hooks, reply stamping) must not
	// disturb a run with admission disabled: two identical clusters
	// serve identical results with identical hop counts.
	run := func() []int {
		c := testCluster(t, 15, smallCfg(), 1<<20, 31)
		res, err := c.Nodes[0].Insert(InsertSpec{Name: "det", Content: []byte("det")})
		if err != nil || !res.OK {
			t.Fatalf("insert: %v", err)
		}
		var hops []int
		for i := 0; i < 20; i++ {
			got, err := c.Nodes[i%len(c.Nodes)].Lookup(res.FileID)
			if err != nil || !got.Found {
				t.Fatalf("lookup %d: %v", i, err)
			}
			hops = append(hops, got.Hops)
		}
		return hops
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hop stream diverged at %d: %v vs %v", i, a, b)
		}
	}
}
