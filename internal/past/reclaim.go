package past

import (
	"context"
	"fmt"

	"past/internal/cert"
	"past/internal/ec"
	"past/internal/id"
	"past/internal/store"
)

// ReclaimResult reports the outcome of a Reclaim.
type ReclaimResult struct {
	// Found reports whether any replica was discarded.
	Found bool
	// Freed is the total bytes released across replicas.
	Freed int64
	// Receipts holds the reclaim receipts when certificates are enabled;
	// the client verifies them for quota credits.
	Receipts []*cert.ReclaimReceipt
}

// Reclaim releases the storage occupied by the k replicas of the file.
// Per the paper's weak semantics, reclaim is not a delete: cached copies
// may continue to serve lookups until they age out of the caches, but
// PAST no longer guarantees the file can be retrieved. owner may be nil
// when certificate verification is disabled.
//
// Reclaim assumes the file was stored with the configured replication
// factor; a file inserted with a larger per-insert K is only guaranteed
// to be reclaimed on the K+1 closest nodes the coordinator covers.
func (n *Node) Reclaim(f id.File, owner *cert.Smartcard) (*ReclaimResult, error) {
	return n.ReclaimContext(context.Background(), f, owner)
}

// ReclaimContext is Reclaim bounded by a context. When Config.Retry is
// set, transient routing failures are retried under the policy (reclaim
// is idempotent: a replica already discarded by an earlier attempt
// simply reports not-held on the next).
func (n *Node) ReclaimContext(ctx context.Context, f id.File, owner *cert.Smartcard) (*ReclaimResult, error) {
	n.st().Reclaims.Add(1)
	var rc *cert.ReclaimCertificate
	if owner != nil {
		rc = owner.IssueReclaimCert(f)
	} else if n.cfg.VerifyCerts {
		return nil, fmt.Errorf("past: reclaim %s: certificate verification requires an owner card", f.Short())
	}
	reply, err := n.retryLoop(ctx, nil, func(actx context.Context) (any, error) {
		rep, _, rerr := n.overlay.RouteContext(actx, f.Key(), &ReclaimMsg{File: f, Cert: rc})
		if rerr != nil {
			return nil, rerr
		}
		return rep, nil
	})
	if err != nil {
		return nil, fmt.Errorf("past: reclaim %s: %w", f.Short(), err)
	}
	rr, ok := reply.(*ReclaimReply)
	if !ok {
		return nil, fmt.Errorf("past: reclaim %s: unexpected reply %T", f.Short(), reply)
	}
	res := &ReclaimResult{Found: rr.Found, Freed: rr.Freed, Receipts: rr.Receipts}
	if owner != nil && rr.Found {
		if n.cfg.VerifyCerts && n.cfg.NodeKeys != nil {
			// The paper's client verifies each reclaim receipt for a
			// credit against the storage quota: only bytes vouched for
			// by a correctly signed receipt are credited.
			var credited int64
			for _, r := range rr.Receipts {
				if r.FileID != f {
					continue
				}
				pub, ok := n.cfg.NodeKeys.NodeKey(r.Node)
				if !ok || r.Verify(pub) != nil {
					continue
				}
				credited += r.Size
			}
			owner.Quota().Credit(credited)
		} else {
			owner.Quota().Credit(rr.Freed)
		}
	}
	return res, nil
}

// coordinateReclaim runs at the first node among the k closest: it
// instructs the k+1 closest nodes (including C, which may hold a backup
// pointer) to discard their replicas and pointers.
func (n *Node) coordinateReclaim(key id.Node, m *ReclaimMsg) *ReclaimReply {
	rep := &ReclaimReply{}
	// An erasure-coded object also has fragments spread over the leaf
	// set; reclaim them before the map replicas disappear.
	n.mu.Lock()
	e, held := n.store.Get(m.File)
	n.mu.Unlock()
	if held && ec.IsMap(e.Content) {
		if fmap, err := ec.DecodeMap(e.Content); err == nil {
			for idx, h := range fmap.Holders {
				n.ecDropFragAt(h, m.File, idx)
				rep.Freed += int64(fmap.ShardSize)
			}
		}
	}
	// k+1 to reach the backup-pointer node C as well.
	for _, member := range n.overlay.ReplicaSet(key, n.cfg.K+1) {
		var dr *discardReply
		if member == n.ID() {
			var err error
			var res any
			res, err = n.handleDiscard(&discardMsg{File: m.File, Cert: m.Cert})
			if err != nil {
				continue
			}
			dr = res.(*discardReply)
		} else {
			res, err := n.net.Invoke(context.Background(), n.ID(), member, &discardMsg{File: m.File, Cert: m.Cert})
			if err != nil {
				continue
			}
			dr = res.(*discardReply)
		}
		if dr.Had {
			rep.Found = true
			rep.Freed += dr.Size
			if dr.Receipt != nil {
				rep.Receipts = append(rep.Receipts, dr.Receipt)
			}
		}
	}
	return rep
}

// handleDiscard removes this node's replica of, and/or pointer to, a
// file. Reclaims carry a certificate that is verified against the
// stored file certificate; insert aborts (Abort=true) need none, since
// they only ever remove replicas created moments ago by the aborting
// coordinator.
func (n *Node) handleDiscard(m *discardMsg) (any, error) {
	n.mu.Lock()
	if n.cfg.VerifyCerts && !m.Abort {
		if m.Cert == nil {
			n.mu.Unlock()
			return nil, fmt.Errorf("past: discard %s: missing reclaim certificate", m.File.Short())
		}
		var fc *cert.FileCertificate
		if e, ok := n.store.Get(m.File); ok {
			fc = e.Cert
		}
		if err := m.Cert.Verify(n.cfg.Issuer, fc); err != nil {
			n.mu.Unlock()
			return nil, fmt.Errorf("past: discard %s: %w", m.File.Short(), err)
		}
	}

	rep := &discardReply{}
	if e, ok := n.removeReplicaLocked(m.File); ok {
		rep.Had = true
		rep.Size += e.Size
	}
	ptr, hadPtr := n.store.RemovePointer(m.File)
	n.mu.Unlock()

	if hadPtr && ptr.Role == store.DivertedOut {
		// Chase the pointer so the diverted replica is discarded too.
		if res, err := n.net.Invoke(context.Background(), n.ID(), ptr.Target, &discardMsg{File: m.File, Cert: m.Cert, Abort: m.Abort}); err == nil {
			if dr := res.(*discardReply); dr.Had {
				rep.Had = true
				rep.Size += dr.Size
			}
		}
	}
	if rep.Had && n.card != nil {
		rep.Receipt = n.card.IssueReclaimReceipt(m.File, rep.Size)
	}
	return rep, nil
}
