package past

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentClientsEmulated drives many goroutines through the
// emulated network at once: inserts, lookups, and reclaims racing
// across overlapping access points. Run under -race in CI; the
// invariant checks run after the storm settles.
func TestConcurrentClientsEmulated(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 40, cfg, 1<<22, 90)

	const workers = 8
	const perWorker = 15
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	files := make(chan fileRef, workers*perWorker)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := c.Nodes[w%len(c.Nodes)]
			for i := 0; i < perWorker; i++ {
				res, err := client.Insert(InsertSpec{
					Name: fmt.Sprintf("conc-%d-%d", w, i),
					Size: int64(512 + 97*i),
				})
				if err != nil {
					errs <- err
					return
				}
				if !res.OK {
					errs <- fmt.Errorf("worker %d insert %d failed: %s", w, i, res.Reason)
					return
				}
				got, err := client.Lookup(res.FileID)
				if err != nil || !got.Found {
					errs <- fmt.Errorf("worker %d lookup %d: %v", w, i, err)
					return
				}
				if i%5 == 4 {
					if _, err := client.Reclaim(res.FileID, nil); err != nil {
						errs <- err
						return
					}
				} else {
					files <- fileRef{id: res.FileID, size: int64(512 + 97*i)}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	close(files)
	for err := range errs {
		t.Fatal(err)
	}

	// After the storm: accounting sane, every surviving file intact.
	for _, n := range c.Nodes {
		if n.StoredBytes() > n.Capacity() {
			t.Fatalf("node %s overcommitted", n.ID().Short())
		}
	}
	for f := range files {
		assertReplicaInvariant(t, c, f.id, cfg.K)
		got, err := c.Nodes[0].Lookup(f.id)
		if err != nil || !got.Found || got.Size != f.size {
			t.Fatalf("file %s corrupted after concurrent storm: %v %+v", f.id, err, got)
		}
	}
}
