package past

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"past/internal/cache"
	"past/internal/cert"
	"past/internal/id"
	"past/internal/pastry"
)

// testCluster builds a small PAST network with uniform capacities.
func testCluster(t testing.TB, n int, cfg Config, capacity int64, seed int64) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterSpec{
		N:        n,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return capacity },
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newCard issues a smartcard with the given quota from a throwaway
// issuer.
func newCard(t *testing.T, quota int64) (*cert.Issuer, *cert.Smartcard) {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	iss, err := cert.NewIssuer(rng)
	if err != nil {
		t.Fatal(err)
	}
	card, err := iss.IssueCard(rng, quota)
	if err != nil {
		t.Fatal(err)
	}
	return iss, card
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	return cfg
}

func TestInsertLookupRoundTrip(t *testing.T) {
	c := testCluster(t, 40, smallCfg(), 1<<20, 1)
	client := c.RandomAliveNode()
	content := []byte("hello, PAST")
	res, err := client.Insert(InsertSpec{Name: "greeting", Content: content})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || res.Stored != 3 {
		t.Fatalf("insert result: %+v", res)
	}

	// Lookup from several different access points.
	for i := 0; i < 5; i++ {
		got, err := c.RandomAliveNode().Lookup(res.FileID)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Found || !bytes.Equal(got.Content, content) {
			t.Fatalf("lookup %d: %+v", i, got)
		}
	}
}

func TestReplicaPlacementInvariant(t *testing.T) {
	c := testCluster(t, 50, smallCfg(), 1<<20, 2)
	client := c.RandomAliveNode()
	for i := 0; i < 40; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("file-%d", i), Size: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("insert %d failed: %s", i, res.Reason)
		}
		assertReplicaInvariant(t, c, res.FileID, 3)
	}
}

// assertReplicaInvariant checks that each of the k globally closest live
// nodes holds a replica of f or a pointer to a live node holding one.
func assertReplicaInvariant(t *testing.T, c *Cluster, f id.File, k int) {
	t.Helper()
	for _, nid := range c.GlobalClosest(f.Key(), k) {
		n := c.ByID[nid]
		if n.HasReplica(f) {
			continue
		}
		if target, ok := n.HasPointer(f); ok {
			if !c.Net.Alive(target) {
				t.Fatalf("node %s points to dead node %s for %s", nid.Short(), target.Short(), f.Short())
			}
			if !c.ByID[target].HasReplica(f) {
				t.Fatalf("node %s points to %s which lacks %s", nid.Short(), target.Short(), f.Short())
			}
			continue
		}
		t.Fatalf("node %s (among %d closest) has neither replica nor pointer for %s",
			nid.Short(), k, f.Short())
	}
}

func TestLookupNotFound(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 3)
	res, err := c.RandomAliveNode().Lookup(id.NewFile("ghost", nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("phantom file found")
	}
}

func TestInsertZeroSizeFile(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 4)
	res, err := c.RandomAliveNode().Insert(InsertSpec{Name: "empty", Size: 0})
	if err != nil || !res.OK {
		t.Fatalf("zero-size insert: %v %+v", err, res)
	}
	got, err := c.RandomAliveNode().Lookup(res.FileID)
	if err != nil || !got.Found || got.Size != 0 {
		t.Fatalf("zero-size lookup: %v %+v", err, got)
	}
}

func TestReplicaDiversion(t *testing.T) {
	// Heterogeneous capacities — the paper's primary cause of storage
	// imbalance: small nodes soon reject primaries under tpri, while the
	// large leaf-set members still accept diverted replicas under tdiv.
	cfg := smallCfg()
	cfg.TPri = 0.1
	cfg.TDiv = 0.05
	c, err := NewCluster(ClusterSpec{
		N:   40,
		Cfg: cfg,
		Capacity: func(i int, _ *rand.Rand) int64 {
			if i%2 == 0 {
				return 30_000
			}
			return 300_000
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := c.RandomAliveNode()

	diverted := 0
	var files []id.File
	for i := 0; i < 300; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("f%d", i), Size: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			break // storage exhausted; fine
		}
		diverted += res.Diverted
		files = append(files, res.FileID)
	}
	if diverted == 0 {
		t.Fatal("no replica diversion occurred; test should force some")
	}
	// Every successfully inserted file must satisfy the invariant and be
	// retrievable.
	for _, f := range files {
		assertReplicaInvariant(t, c, f, 3)
		got, err := c.RandomAliveNode().Lookup(f)
		if err != nil || !got.Found {
			t.Fatalf("lookup %s after diversion: %v %+v", f.Short(), err, got)
		}
	}
}

func TestFileDiversionRetries(t *testing.T) {
	// Same salt forces a fileId collision on the first attempt; the
	// client must re-salt (file diversion) and then succeed.
	c := testCluster(t, 30, smallCfg(), 1<<20, 6)
	client := c.RandomAliveNode()
	first, err := client.Insert(InsertSpec{Name: "dup", Size: 100, Salt: 77})
	if err != nil || !first.OK {
		t.Fatalf("first insert: %v %+v", err, first)
	}
	second, err := client.Insert(InsertSpec{Name: "dup", Size: 100, Salt: 77})
	if err != nil {
		t.Fatal(err)
	}
	if !second.OK || second.Attempts < 2 {
		t.Fatalf("collision should force a re-salted retry: %+v", second)
	}
	if second.FileID == first.FileID {
		t.Fatal("retry must produce a fresh fileId")
	}
}

func TestInsertFailsWhenFull(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 15, cfg, 2_000, 7)
	client := c.RandomAliveNode()
	// Fill the system with inserts until they fail, then verify failure
	// reporting: 4 attempts, OK=false.
	var failed *InsertResult
	for i := 0; i < 500; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("fill%d", i), Size: 600})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			failed = res
			break
		}
	}
	if failed == nil {
		t.Fatal("system never filled up")
	}
	if failed.Attempts != 4 {
		t.Fatalf("failed insert attempts = %d; want 4 (1 + 3 file diversions)", failed.Attempts)
	}
	if failed.Reason == "" {
		t.Fatal("failure must carry a reason")
	}
}

func TestReclaim(t *testing.T) {
	cfg := smallCfg()
	cfg.CachePolicy = cache.None // so lookups cannot be served from caches
	c := testCluster(t, 30, cfg, 1<<20, 8)
	client := c.RandomAliveNode()
	res, err := client.Insert(InsertSpec{Name: "doomed", Size: 5000})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}

	before := c.StoredBytes()
	rr, err := client.Reclaim(res.FileID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Found || rr.Freed != 3*5000 {
		t.Fatalf("reclaim: %+v", rr)
	}
	if c.StoredBytes() != before-3*5000 {
		t.Fatalf("stored bytes %d; want %d", c.StoredBytes(), before-3*5000)
	}
	got, err := client.Lookup(res.FileID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Found {
		t.Fatal("file still found after reclaim with caching disabled")
	}
}

func TestReclaimWeakSemanticsWithCache(t *testing.T) {
	// With caching enabled, reclaim does NOT guarantee the file is gone:
	// cached copies may still serve lookups (the paper's weak semantics).
	c := testCluster(t, 30, smallCfg(), 1<<20, 9)
	client := c.RandomAliveNode()
	res, _ := client.Insert(InsertSpec{Name: "soft", Size: 100})
	// Populate caches along a lookup path.
	if _, err := client.Lookup(res.FileID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Reclaim(res.FileID, nil); err != nil {
		t.Fatal(err)
	}
	// No node holds a replica anymore.
	for _, n := range c.Nodes {
		if n.HasReplica(res.FileID) {
			t.Fatal("replica survived reclaim")
		}
	}
	// But a cached copy may exist somewhere; that is permitted (weaker
	// than delete). Nothing to assert beyond "no crash": lookups may
	// succeed or fail depending on cache contents.
	if _, err := client.Lookup(res.FileID); err != nil {
		t.Fatal(err)
	}
}

func TestCachingAlongLookupPath(t *testing.T) {
	c := testCluster(t, 60, smallCfg(), 1<<22, 10)
	client := c.RandomAliveNode()
	res, err := client.Insert(InsertSpec{Name: "popular", Size: 4096})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}

	// First lookup from a fixed remote node, then again: the second one
	// must cost no more hops, and the client node itself should now have
	// a cached copy making the repeat lookup free.
	far := c.RandomAliveNode()
	first, err := far.Lookup(res.FileID)
	if err != nil || !first.Found {
		t.Fatalf("first lookup: %v %+v", err, first)
	}
	second, err := far.Lookup(res.FileID)
	if err != nil || !second.Found {
		t.Fatalf("second lookup: %v %+v", err, second)
	}
	if second.Hops != 0 {
		t.Fatalf("second lookup cost %d hops; want 0 (cached at access point)", second.Hops)
	}
	if !second.FromCache && !far.HasReplica(res.FileID) {
		t.Fatal("second lookup neither cached nor local replica")
	}
}

func TestCacheDisplacedByReplicas(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 20, cfg, 50_000, 11)
	client := c.RandomAliveNode()
	res, err := client.Insert(InsertSpec{Name: "cached", Size: 1000})
	if err != nil || !res.OK {
		t.Fatal("seed insert failed")
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Lookup(res.FileID); err != nil {
			t.Fatal(err)
		}
	}
	// Fill storage; caches must shrink, never pushing replicas out.
	for i := 0; i < 200; i++ {
		r, err := client.Insert(InsertSpec{Name: fmt.Sprintf("filler%d", i), Size: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			break
		}
	}
	for _, n := range c.Nodes {
		if n.StoredBytes() > n.Capacity() {
			t.Fatalf("node %s overcommitted", n.ID().Short())
		}
	}
}

func TestQuotaEnforcedOnInsert(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 12)
	iss, card := newCard(t, 1<<14) // 16 KiB quota
	cfg := c.Nodes[0].cfg
	_ = cfg
	_ = iss
	client := c.RandomAliveNode()

	// k=3 * 4096 = 12288 fits the quota; a second identical insert would
	// exceed it.
	res, err := client.Insert(InsertSpec{Name: "a", Content: make([]byte, 4096), Owner: card})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}
	if _, err := client.Insert(InsertSpec{Name: "b", Content: make([]byte, 4096), Owner: card}); err == nil {
		t.Fatal("quota-exceeding insert must error")
	}
	// Reclaim credits the quota; then the insert fits.
	if _, err := client.Reclaim(res.FileID, card); err != nil {
		t.Fatal(err)
	}
	if res2, err := client.Insert(InsertSpec{Name: "b", Content: make([]byte, 4096), Owner: card}); err != nil || !res2.OK {
		t.Fatalf("post-reclaim insert: %v %+v", err, res2)
	}
}

func TestKExceedingLeafSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for k > l/2+1")
		}
	}()
	cfg := DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 4}
	cfg.K = 5
	New(id.NodeFromUint64(1), nil, cfg, 1000, 1)
}

// TestStatisticalFileBalance verifies the section 2 premise: uniformly
// distributed nodeIds and fileIds roughly balance the number of files
// per node, before any explicit storage management is needed.
func TestStatisticalFileBalance(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 50, cfg, 1<<26, 70)
	client := c.Nodes[0]
	const files = 600
	for i := 0; i < files; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("bal-%d", i), Size: 100})
		if err != nil || !res.OK {
			t.Fatalf("insert %d: %v %+v", i, err, res)
		}
	}
	counts := make([]int, 0, len(c.Nodes))
	total := 0
	for _, n := range c.Nodes {
		entries, _ := n.StoreSnapshot()
		counts = append(counts, len(entries))
		total += len(entries)
	}
	if total != files*cfg.K {
		t.Fatalf("replica count %d; want %d", total, files*cfg.K)
	}
	mean := float64(total) / float64(len(counts))
	max := 0
	var sq float64
	for _, cnt := range counts {
		if cnt > max {
			max = cnt
		}
		d := float64(cnt) - mean
		sq += d * d
	}
	// A node's load is proportional to its nodeId-space arc, which is
	// exponentially distributed: per-node counts have CV around 1/sqrt(k)
	// and the maximum arc is ~ln(N) times the mean. "Approximately
	// balanced" (section 2) means within those statistics, not Poisson
	// tightness — which is exactly why the paper needs explicit storage
	// management on top.
	cv := 0.0
	if mean > 0 {
		cv = (sq / float64(len(counts))) / (mean * mean) // squared CV
	}
	if cv > 1.2 {
		t.Fatalf("per-node load CV^2 = %.2f; far beyond arc statistics", cv)
	}
	if float64(max) > 1.8*math.Log(float64(len(counts)))*mean {
		t.Fatalf("most loaded node has %d replicas vs mean %.1f; beyond max-arc statistics", max, mean)
	}
}

func TestInsertRejectsOversizedK(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 71) // l=16 -> max k = 9
	if _, err := c.Nodes[0].Insert(InsertSpec{Name: "k", Size: 10, K: 10}); err == nil {
		t.Fatal("k > l/2+1 must be rejected")
	}
	if res, err := c.Nodes[0].Insert(InsertSpec{Name: "k", Size: 10, K: 9}); err != nil || !res.OK {
		t.Fatalf("k = l/2+1 must work: %v %+v", err, res)
	}
}
