// Package past implements the PAST storage utility: the paper's primary
// contribution. A past.Node couples a Pastry overlay node with a local
// replica store and a file cache, and implements the three client
// operations (Insert, Lookup, Reclaim) together with the storage
// management that is the subject of the paper:
//
//   - replica diversion (section 3.3): a node among the k numerically
//     closest to a fileId that cannot accommodate a replica diverts it to
//     a leaf-set member with maximal free space, keeping a pointer, with
//     a backup pointer at the k+1-th closest node;
//   - file diversion (section 3.4): when an insert attempt fails, the
//     client re-salts the fileId and retries in a different part of the
//     nodeId space, up to three times;
//   - replica maintenance (section 3.5): nodes re-establish the
//     "k replicas on the k closest nodes" invariant as nodes join, fail,
//     and recover, migrating replicas or installing diverted-replica
//     pointers;
//   - caching (section 4): files are cached on the nodes a request is
//     routed through, in the unused portion of the advertised disk, with
//     GreedyDual-Size replacement.
package past

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"sync"

	"past/internal/admit"
	"past/internal/cache"
	"past/internal/cachengine"
	"past/internal/cert"
	"past/internal/ec"
	"past/internal/id"
	"past/internal/netsim"
	"past/internal/obs"
	"past/internal/pastry"
	"past/internal/store"
)

// Config carries PAST's parameters on top of the Pastry configuration.
type Config struct {
	Pastry pastry.Config
	// K is the replication factor (the paper fixes k=5, chosen from the
	// availability analysis of desktop machines in Bolosky et al.).
	K int
	// TPri is the acceptance threshold for primary replicas: a node
	// rejects file D when SD/FN > TPri. Paper default 0.1.
	TPri float64
	// TDiv is the (stricter) acceptance threshold for diverted replicas.
	// Paper default 0.05.
	TDiv float64
	// MaxRetries is the number of file diversions (re-salted retries)
	// after the first failed insert attempt. Paper: 3.
	MaxRetries int
	// CachePolicy selects the cache replacement policy (default GD-S).
	CachePolicy cache.Policy
	// CacheFrac is the insertion-policy fraction c: cache a file only if
	// its size is below c times the current cache capacity. Paper: 1.
	CacheFrac float64
	// CacheEngine, when non-nil, tunes the node's cache engine beyond
	// the paper's single policy structure: RAM-tier sharding, the
	// admission doorkeeper, the negative cache, and the flash tier
	// (see internal/cachengine). Policy and Frac are taken from
	// CachePolicy/CacheFrac unless explicitly overridden here. Nil runs
	// the engine in its legacy-equivalent configuration — one shard,
	// no extras — which is operation-for-operation identical to the
	// original cache.Cache, keeping the trace-driven experiments'
	// fingerprints intact.
	CacheEngine *cachengine.Config
	// VerifyCerts enables certificate generation and verification on the
	// insert/lookup/reclaim paths. Requires Issuer, and smartcards on
	// the participating nodes. The trace-driven experiments disable it,
	// as public-key operations would dominate their run time without
	// affecting any measured quantity.
	VerifyCerts bool
	// Issuer is the smartcard issuer's public key, used to verify
	// certificate chains when VerifyCerts is set.
	Issuer ed25519.PublicKey
	// NodeKeys resolves a nodeId to that node's public key. When set
	// together with VerifyCerts, clients verify the store receipts
	// returned by an insert, confirming the requested number of copies
	// was created (section 2.2).
	NodeKeys NodeKeyDirectory
	// Monitor, if non-nil, observes storage events for the experiment
	// harness.
	Monitor Monitor
	// RandomDivert replaces the paper's max-free-space choice of the
	// diverted-replica target (section 3.3.1, policy 2) with a uniformly
	// random eligible node. Used only by the ablation benchmarks.
	RandomDivert bool
	// Retry, when non-nil, enables the client-side resilience layer:
	// budgeted backoff retries around Insert/Lookup/Reclaim, per-attempt
	// deadlines, and hedged lookups. Nil preserves fail-fast behavior.
	Retry *RetryPolicy
	// PartialInsert lets an insert coordinator succeed with fewer than k
	// replicas when some replica-set members are unreachable (at least
	// one replica must still be stored). The shortfall is a repair debt
	// that replica maintenance settles once the leaf set heals; without
	// this flag any unreachable member aborts the attempt.
	PartialInsert bool
	// Tracer, when non-nil, samples client operations started at this
	// node (every Nth, deterministically) and records their per-hop
	// route traces. Nil traces nothing and costs nothing.
	Tracer *obs.Tracer
	// ECMode, when non-nil, switches inserts to erasure-coded storage:
	// the coordinator RS(Data, Parity)-encodes the object, spreads the
	// fragments over distinct leaf-set members, and k-replicates only a
	// fragment map. Lookups reconstruct from any Data fragments; lost
	// fragments are re-created by the lazy repair engine during
	// maintenance. Nil keeps pure k-way replication.
	ECMode *ec.Params
	// ECRepairBudget caps the bytes one maintenance pass may spend on
	// fragment repair (fetching survivors plus placing the rebuilt
	// shard). Work beyond the cap is deferred to later passes. Zero
	// means uncapped.
	ECRepairBudget int64
	// Admit, when non-nil, enables per-node admission control: routed
	// client work (lookups, inserts, reclaims arriving over the
	// network) and client RPCs are gated by a token bucket with a
	// bounded queue; excess load is shed with netsim.ErrOverloaded and
	// replies piggyback a load hint. Nil admits everything — exactly
	// the pre-admission behavior. Maintenance, join, and keep-alive
	// traffic is never gated: shedding repair work under load would
	// trade overload for durability loss.
	Admit *admit.Config
}

// DefaultConfig returns the paper's parameters: k=5, tpri=0.1,
// tdiv=0.05, three retries, GD-S caching with c=1, b=4, l=32.
func DefaultConfig() Config {
	return Config{
		Pastry:      pastry.DefaultConfig(),
		K:           5,
		TPri:        0.1,
		TDiv:        0.05,
		MaxRetries:  3,
		CachePolicy: cache.GDS,
		CacheFrac:   1,
	}
}

// withDefaults fills parameters whose zero value is never meaningful.
// TPri, TDiv, and MaxRetries are taken literally: tpri=1/tdiv=0 with no
// retries is exactly the paper's no-diversion baseline (section 5.1),
// so zero must remain expressible. Use DefaultConfig for paper defaults.
func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 5
	}
	if c.CacheFrac == 0 {
		c.CacheFrac = 1
	}
	return c
}

// NodeKeyDirectory resolves node identities to their public keys. The
// paper's smartcard scheme makes every node's key verifiable against
// the issuer; this interface abstracts how a deployment distributes
// them (the emulation uses an in-memory registry).
type NodeKeyDirectory interface {
	NodeKey(n id.Node) (ed25519.PublicKey, bool)
}

// KeyRegistry is an in-memory NodeKeyDirectory.
type KeyRegistry struct {
	mu   sync.RWMutex
	keys map[id.Node]ed25519.PublicKey
}

// NewKeyRegistry creates an empty registry.
func NewKeyRegistry() *KeyRegistry {
	return &KeyRegistry{keys: make(map[id.Node]ed25519.PublicKey)}
}

// Add records a node's public key.
func (k *KeyRegistry) Add(n id.Node, pub ed25519.PublicKey) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys[n] = pub
}

// NodeKey implements NodeKeyDirectory.
func (k *KeyRegistry) NodeKey(n id.Node) (ed25519.PublicKey, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	pub, ok := k.keys[n]
	return pub, ok
}

// Monitor observes storage events; the experiment harness uses it to
// maintain utilization and diversion-ratio series.
type Monitor interface {
	// ReplicaStored fires when a node stores a replica (primary or
	// diverted).
	ReplicaStored(f id.File, size int64, diverted bool)
	// ReplicaDiscarded fires when a node discards a replica.
	ReplicaDiscarded(f id.File, size int64, diverted bool)
}

// Node is a PAST storage node.
type Node struct {
	cfg     Config
	overlay *pastry.Node
	net     netsim.Net
	stats   *obs.NodeStats

	mu    sync.Mutex
	store store.Backend
	cache *cachengine.Engine
	card  *cert.Smartcard
	rng   *rand.Rand
	retry retryState

	// erasure-coded storage (always initialized; active when
	// Config.ECMode is set, but any node can hold fragments and serve
	// repair for objects inserted by EC-mode coordinators)
	frags          *ec.FragStore
	repairq        *ec.RepairQueue
	ecInserts      int64 // EC-coordinated inserts (under mu)
	ecReconstructs int64 // lookups served by fragment reconstruction (under mu)

	// admission control (nil when Config.Admit is nil)
	admitCtl *admit.Controller
	// loadHints caches the most recent admission-load hint piggybacked
	// by each next hop, for load-steered hedging.
	loadMu    sync.Mutex
	loadHints map[id.Node]uint8

	// maintenance state
	maintaining     bool
	maintainPending bool
	leaving         bool  // graceful departure in progress: refuse new replicas
	belowK          int64 // replicas that could not be re-created anywhere
}

// New creates a PAST node with the given storage capacity in bytes,
// backed by the in-memory store. The caller must register the node as
// the netsim endpoint for nid and then call Bootstrap or Join on the
// overlay (via the Overlay accessor).
func New(nid id.Node, net netsim.Net, cfg Config, capacity int64, seed int64) *Node {
	return NewWithStore(nid, net, cfg, store.New(capacity), seed)
}

// NewWithStore creates a PAST node over an explicit storage backend —
// a store.DiskStore for a persistent daemon, the in-memory store for
// emulation. It panics if the cache engine cannot start, which is only
// possible with a misconfigured flash tier — callers that enable flash
// should use NewWithStoreEngine and handle the error.
func NewWithStore(nid id.Node, net netsim.Net, cfg Config, backend store.Backend, seed int64) *Node {
	n, err := NewWithStoreEngine(nid, net, cfg, backend, seed)
	if err != nil {
		panic(err)
	}
	return n
}

// cacheEngineConfig resolves the node's effective cachengine.Config:
// the optional CacheEngine tuning with Policy/Frac inherited from the
// paper-level knobs unless explicitly overridden.
func (c Config) cacheEngineConfig() cachengine.Config {
	var ec cachengine.Config
	if c.CacheEngine != nil {
		ec = *c.CacheEngine
	}
	if ec.Policy == cache.None {
		ec.Policy = c.CachePolicy
	}
	if ec.Frac == 0 {
		ec.Frac = c.CacheFrac
	}
	return ec
}

// NewWithStoreEngine is NewWithStore surfacing cache-engine startup
// errors (a flash tier whose directory cannot be opened).
func NewWithStoreEngine(nid id.Node, net netsim.Net, cfg Config, backend store.Backend, seed int64) (*Node, error) {
	cfg = cfg.withDefaults()
	eng, err := cachengine.New(cfg.cacheEngineConfig())
	if err != nil {
		return nil, fmt.Errorf("past: cache engine: %w", err)
	}
	if cfg.ECMode != nil {
		if err := cfg.ECMode.Validate(); err != nil {
			return nil, err
		}
	}
	n := &Node{
		cfg:     cfg,
		stats:   &obs.NodeStats{},
		store:   backend,
		cache:   eng,
		rng:     rand.New(rand.NewSource(seed)),
		frags:   ec.NewFragStore(),
		repairq: ec.NewRepairQueue(seed ^ 0xec0de),
	}
	// Both layers share the instrumented view of the network, so every
	// outgoing RPC — routing, maintenance, diversion — is accounted.
	n.net = obs.InstrumentNet(net, n.stats)
	n.overlay = pastry.New(nid, n.net, cfg.Pastry, (*app)(n), seed^0x5eed)
	n.overlay.OnLeafSetChange = n.maintainReplicas
	n.overlay.OnReroute = func(id.Node) {
		if rm := n.resMon(); rm != nil {
			rm.RecordReroute()
		}
	}
	if cfg.Admit != nil {
		n.admitCtl = admit.New(*cfg.Admit)
		n.overlay.LoadFunc = n.admitCtl.LoadHint
	}
	// Load hints are captured whether or not this node itself runs
	// admission control: a hint-free node still steers around loaded
	// peers.
	n.loadHints = make(map[id.Node]uint8)
	n.overlay.OnLoadHint = n.noteLoadHint
	n.cache.SetLimit(n.store.Free())
	if cfg.K > n.overlay.Config().L/2+1 {
		panic(fmt.Sprintf("past: k=%d exceeds l/2+1=%d", cfg.K, n.overlay.Config().L/2+1))
	}
	return n, nil
}

// Overlay returns the underlying Pastry node (for Bootstrap/Join and
// state inspection).
func (n *Node) Overlay() *pastry.Node { return n.overlay }

// ID returns the node's identifier.
func (n *Node) ID() id.Node { return n.overlay.ID() }

// SetSmartcard installs the node's smartcard, used to issue store and
// reclaim receipts when certificate verification is enabled.
func (n *Node) SetSmartcard(c *cert.Smartcard) { n.card = c }

// Capacity returns the advertised storage capacity in bytes.
func (n *Node) Capacity() int64 { return n.store.Capacity() }

// StoredBytes returns the bytes occupied by replicas on this node.
func (n *Node) StoredBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Used()
}

// Utilization returns this node's replica storage utilization in [0,1].
func (n *Node) Utilization() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Utilization()
}

// CacheStats returns cumulative cache hits (across the RAM and flash
// tiers), misses, and evictions.
func (n *Node) CacheStats() (hits, misses, evictions int64) {
	st := n.cache.Stats()
	return st.Hits(), st.Misses, st.Evictions
}

// Cache returns the node's cache engine, for the daemon's shutdown
// path (flash teardown) and the load driver's tier statistics.
func (n *Node) Cache() *cachengine.Engine { return n.cache }

// StoreSnapshot returns the node's replica entries and pointers, for
// invariant checking in tests and the state printer.
func (n *Node) StoreSnapshot() ([]store.Entry, []store.Pointer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store.Entries(), n.store.Pointers()
}

// BelowKEvents returns how many times maintenance failed to re-create a
// replica anywhere (the paper's "number of replicas may temporarily
// drop below k" case).
func (n *Node) BelowKEvents() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.belowK
}

// addReplicaLocked stores a replica and gives the cache whatever space
// remains. Caller holds n.mu.
func (n *Node) addReplicaLocked(e store.Entry) error {
	// Replicas displace cached copies: shrink the cache first so the
	// store sees the space as free.
	n.cache.SetLimit(n.store.Free() - e.Size)
	if err := n.store.Add(e); err != nil {
		n.cache.SetLimit(n.store.Free())
		return err
	}
	// The replica must not also linger as a cached copy — and a stored
	// replica is existence evidence, clearing any negative-cache entry.
	n.cache.Remove(e.File)
	n.cache.Invalidate(e.File)
	n.cache.SetLimit(n.store.Free())
	n.st().ReplicasStored.Add(1)
	if e.Kind == store.DivertedIn {
		n.st().DivertedIn.Add(1)
	}
	if n.cfg.Monitor != nil {
		n.cfg.Monitor.ReplicaStored(e.File, e.Size, e.Kind == store.DivertedIn)
	}
	return nil
}

// removeReplicaLocked discards a replica and returns the space to the
// cache. Caller holds n.mu.
func (n *Node) removeReplicaLocked(f id.File) (store.Entry, bool) {
	e, ok := n.store.Remove(f)
	if !ok {
		return store.Entry{}, false
	}
	n.cache.SetLimit(n.store.Free())
	n.st().ReplicasDropped.Add(1)
	if n.cfg.Monitor != nil {
		n.cfg.Monitor.ReplicaDiscarded(e.File, e.Size, e.Kind == store.DivertedIn)
	}
	return e, true
}

// Stats returns the node's live counter registry. It is always present;
// counting cannot be disabled (single atomic adds on the hot paths).
func (n *Node) Stats() *obs.NodeStats { return n.st() }

// discardStats absorbs counts from Nodes constructed without
// NewWithStore (struct literals in tests).
var discardStats obs.NodeStats

// st returns the node's registry, nil-safely.
func (n *Node) st() *obs.NodeStats {
	if n.stats == nil {
		return &discardStats
	}
	return n.stats
}

// StatsSnapshot returns the full observability snapshot for this node:
// the registry's counters plus the gauges owned by the store, cache, and
// overlay. This is what the metrics endpoint, the stats RPC, and the
// experiment drivers consume.
func (n *Node) StatsSnapshot() obs.Snapshot {
	snap := n.st().Snapshot()
	n.mu.Lock()
	snap.Set(obs.CtrStoreBytes, n.store.Used())
	snap.Set(obs.CtrStoreCapacity, n.store.Capacity())
	snap.Set(obs.CtrStoreReplicas, int64(n.store.Len()))
	snap.Set(obs.CtrStorePointers, int64(len(n.store.Pointers())))
	snap.Set(obs.CtrCacheBytes, n.cache.Used())
	snap.Set(obs.CtrCacheEntries, int64(n.cache.Len()))
	// Legacy cache series (hits = RAM + flash), plus the engine's own
	// per-tier counters under cachengine_* names.
	cst := n.cache.Stats()
	snap.Set(obs.CtrCacheHits, cst.Hits())
	snap.Set(obs.CtrCacheMisses, cst.Misses)
	snap.Set(obs.CtrCacheEvictions, cst.Evictions)
	for name, v := range n.cache.ObsCounters() {
		snap.Set(name, v)
	}
	snap.Set(obs.CtrBelowKEvents, n.belowK)
	snap.Set(obs.CtrECFragments, int64(n.frags.Len()))
	snap.Set(obs.CtrECFragmentBytes, n.frags.Bytes())
	snap.Set(obs.CtrECFragReads, n.frags.Reads())
	snap.Set(obs.CtrECCRCFailures, n.frags.CRCFailures())
	snap.Set(obs.CtrECInserts, n.ecInserts)
	snap.Set(obs.CtrECReconstructs, n.ecReconstructs)
	for name, v := range n.repairq.ObsCounters() {
		snap.Set(name, v)
	}
	// Backends with their own instrumentation (the log-structured store)
	// export it through the same snapshot.
	if src, ok := n.store.(obs.CounterSource); ok {
		for name, v := range src.ObsCounters() {
			snap.Set(name, v)
		}
	}
	n.mu.Unlock()
	snap.Set(obs.CtrReroutes, n.overlay.Reroutes())
	snap.Set(obs.CtrLeafRepairs, n.overlay.LeafRepairs())
	snap.Set(obs.CtrOverloadHops, n.overlay.OverloadHops())
	snap.Set(obs.CtrLeafSetSize, int64(len(n.overlay.LeafSet())))
	snap.Set(obs.CtrTableEntries, int64(n.overlay.TableSize()))
	if n.admitCtl != nil {
		for name, v := range n.admitCtl.ObsCounters() {
			snap.Set(name, v)
		}
	}
	return snap
}

// AdmitController returns the node's admission controller, or nil when
// admission control is disabled.
func (n *Node) AdmitController() *admit.Controller { return n.admitCtl }

// noteLoadHint records the latest admission-load hint observed for a
// next hop (piggybacked on route replies, or implied by a shed).
func (n *Node) noteLoadHint(hop id.Node, load uint8) {
	n.loadMu.Lock()
	n.loadHints[hop] = load
	n.loadMu.Unlock()
}

// loadHintFor returns the last known load hint for a hop (0 if none).
func (n *Node) loadHintFor(hop id.Node) uint8 {
	n.loadMu.Lock()
	defer n.loadMu.Unlock()
	return n.loadHints[hop]
}

// issueStoreReceipt signs a store receipt if a smartcard is installed.
func (n *Node) issueStoreReceipt(f id.File) *cert.StoreReceipt {
	if n.card == nil {
		return nil
	}
	return n.card.IssueStoreReceipt(f)
}
