package past

import (
	"fmt"
	"math"
	"math/rand"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/store"
	"past/internal/topology"
)

// Cluster is an emulated PAST network: N nodes in one process, exactly
// as the paper's evaluation ran 2250 nodes in one JVM. It is the
// substrate for the trace-driven experiments, the integration tests, and
// the examples.
type Cluster struct {
	Net   *netsim.Network
	Nodes []*Node
	ByID  map[id.Node]*Node
	// ClusterOf maps node index to its proximity-cluster index (when the
	// cluster was built with proximity clusters; nil otherwise).
	ClusterOf []int

	rng *rand.Rand
}

// ClusterSpec describes a cluster to build.
type ClusterSpec struct {
	// N is the number of nodes.
	N int
	// Cfg is the PAST configuration shared by all nodes.
	Cfg Config
	// Capacity returns the advertised storage capacity of node i in
	// bytes. Required.
	Capacity func(i int, r *rand.Rand) int64
	// Seed makes the cluster deterministic.
	Seed int64
	// ProximityClusters > 0 places the nodes into that many tight
	// proximity clusters (for the caching experiment); 0 places them
	// uniformly.
	ProximityClusters int
	// WrapNet, if set, wraps the network each node communicates
	// through — the fault-injection hook (internal/chaos). Nodes are
	// still registered on the raw Network; only their outgoing view is
	// wrapped. Called once per node in build order.
	WrapNet func(nid id.Node, inner netsim.Net) netsim.Net
	// PerNode, if set, derives node i's configuration from the shared
	// Cfg — the hook for per-node state such as a cache engine's flash
	// directory. Called once per node in build order.
	PerNode func(i int, cfg Config) Config
}

// NewCluster builds the network by sequential joins, each new node
// bootstrapping from the proximally closest existing node.
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("past: cluster needs N > 0")
	}
	if spec.Capacity == nil {
		return nil, fmt.Errorf("past: cluster needs a Capacity function")
	}
	c := &Cluster{
		Net:  netsim.New(),
		ByID: make(map[id.Node]*Node, spec.N),
		rng:  rand.New(rand.NewSource(spec.Seed)),
	}
	plane := topology.DefaultPlane
	var positions []topology.Point
	if spec.ProximityClusters > 0 {
		positions, c.ClusterOf = plane.Clusters(c.rng, spec.N, spec.ProximityClusters, plane.Side/40)
	} else {
		positions = plane.Uniform(c.rng, spec.N)
	}

	for i := 0; i < spec.N; i++ {
		var nid id.Node
		c.rng.Read(nid[:])
		if _, dup := c.ByID[nid]; dup {
			return nil, fmt.Errorf("past: nodeId collision while building cluster")
		}
		var nnet netsim.Net = c.Net
		if spec.WrapNet != nil {
			nnet = spec.WrapNet(nid, c.Net)
		}
		ncfg := spec.Cfg
		if spec.PerNode != nil {
			ncfg = spec.PerNode(i, ncfg)
		}
		node := New(nid, nnet, ncfg, spec.Capacity(i, c.rng), c.rng.Int63())
		c.Net.Register(nid, positions[i], node)
		if i == 0 {
			node.Overlay().Bootstrap()
		} else {
			boot := c.closestExisting(positions[i])
			if err := node.Overlay().Join(boot); err != nil {
				return nil, fmt.Errorf("past: join node %d: %w", i, err)
			}
		}
		c.Nodes = append(c.Nodes, node)
		c.ByID[nid] = node
	}
	return c, nil
}

func (c *Cluster) closestExisting(pos topology.Point) id.Node {
	best := id.Node{}
	bestD := math.Inf(1)
	for nid := range c.ByID {
		if !c.Net.Alive(nid) {
			continue
		}
		p, _ := c.Net.Position(nid)
		if d := topology.Distance(pos, p); d < bestD {
			best, bestD = nid, d
		}
	}
	return best
}

// TotalCapacity returns the aggregate advertised capacity of all nodes.
func (c *Cluster) TotalCapacity() int64 {
	var sum int64
	for _, n := range c.Nodes {
		sum += n.Capacity()
	}
	return sum
}

// StoredBytes returns the aggregate replica bytes across live nodes.
func (c *Cluster) StoredBytes() int64 {
	var sum int64
	for _, n := range c.Nodes {
		sum += n.StoredBytes()
	}
	return sum
}

// Utilization returns global storage utilization in [0, 1].
func (c *Cluster) Utilization() float64 {
	tc := c.TotalCapacity()
	if tc == 0 {
		return 0
	}
	return float64(c.StoredBytes()) / float64(tc)
}

// RandomAliveNode returns a uniformly random live node.
func (c *Cluster) RandomAliveNode() *Node {
	alive := c.Net.AliveNodes()
	return c.ByID[alive[c.rng.Intn(len(alive))]]
}

// Rand returns the cluster's deterministic random source.
func (c *Cluster) Rand() *rand.Rand { return c.rng }

// Fail marks a node failed (it keeps its disk contents for recovery).
func (c *Cluster) Fail(nid id.Node) { c.Net.Fail(nid) }

// Recover brings a failed node back; the node itself must Rejoin.
func (c *Cluster) Recover(nid id.Node) { c.Net.Recover(nid) }

// Maintain runs one keep-alive round on every live node, the emulated
// analogue of the periodic leaf-set keep-alives. Two rounds after a
// batch of failures restore all leaf sets.
func (c *Cluster) Maintain() {
	for _, nid := range c.Net.AliveNodes() {
		c.ByID[nid].Overlay().CheckLeafSet()
	}
}

// MaintainAll runs a keep-alive round and then forces a replica-
// maintenance (anti-entropy) pass on every live node. The forced pass
// matters under message loss: the change-triggered maintenance can be
// starved when its RPCs are dropped, and only a periodic re-scan
// re-establishes the k-replica invariant.
func (c *Cluster) MaintainAll() {
	c.Maintain()
	for _, nid := range c.Net.AliveNodes() {
		c.ByID[nid].Maintain()
	}
}

// The four methods below, with GlobalClosest, make Cluster a
// chaos.ClusterState — the window the fault-injection invariant checker
// reads cluster ground truth through.

// Alive reports whether a node is currently up.
func (c *Cluster) Alive(nid id.Node) bool { return c.Net.Alive(nid) }

// NodeHasReplica reports whether nid holds a replica of f.
func (c *Cluster) NodeHasReplica(nid id.Node, f id.File) bool {
	n, ok := c.ByID[nid]
	return ok && n.HasReplica(f)
}

// NodePointer returns the target of nid's diverted-replica pointer for
// f, if it holds one.
func (c *Cluster) NodePointer(nid id.Node, f id.File) (id.Node, bool) {
	n, ok := c.ByID[nid]
	if !ok {
		return id.Node{}, false
	}
	return n.HasPointer(f)
}

// ReplicaHolders returns the live nodes holding a replica of f, in
// ascending nodeId order.
func (c *Cluster) ReplicaHolders(f id.File) []id.Node {
	var out []id.Node
	for _, nid := range c.Net.AliveNodes() {
		if n, ok := c.ByID[nid]; ok && n.HasReplica(f) {
			out = append(out, nid)
		}
	}
	return out
}

// PrimaryHolders returns the live nodes holding a primary replica of f,
// in ascending nodeId order.
func (c *Cluster) PrimaryHolders(f id.File) []id.Node {
	var out []id.Node
	for _, nid := range c.Net.AliveNodes() {
		n, ok := c.ByID[nid]
		if !ok {
			continue
		}
		if kind, has := n.ReplicaKind(f); has && kind == store.Primary {
			out = append(out, nid)
		}
	}
	return out
}

// ECFile implements chaos.FragmentState: a file's coding parameters,
// read from any node replicating its fragment map. Dead nodes are
// consulted too — the parameters are static, and the checker needs them
// precisely when every map holder is down.
func (c *Cluster) ECFile(f id.File) (data, total int, ok bool) {
	for _, n := range c.Nodes {
		if data, total, ok = n.ECInfo(f); ok {
			return data, total, true
		}
	}
	return 0, 0, false
}

// FragmentHolders implements chaos.FragmentState: the live nodes
// holding each fragment index of f.
func (c *Cluster) FragmentHolders(f id.File) map[int][]id.Node {
	out := make(map[int][]id.Node)
	for _, nid := range c.Net.AliveNodes() {
		n, ok := c.ByID[nid]
		if !ok {
			continue
		}
		for _, idx := range n.FragIndices(f) {
			out[idx] = append(out[idx], nid)
		}
	}
	return out
}

// GlobalClosest returns the k live nodes numerically closest to key, by
// brute force — ground truth for invariant checks.
func (c *Cluster) GlobalClosest(key id.Node, k int) []id.Node {
	alive := c.Net.AliveNodes()
	// Selection by repeated scan; k is small.
	out := make([]id.Node, 0, k)
	used := make(map[id.Node]bool, k)
	for len(out) < k && len(out) < len(alive) {
		var best id.Node
		first := true
		for _, nid := range alive {
			if used[nid] {
				continue
			}
			if first || key.Closer(nid, best) {
				best, first = nid, false
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}
