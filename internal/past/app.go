package past

import (
	"context"
	"fmt"

	"past/internal/ec"
	"past/internal/id"
	"past/internal/netsim"
	"past/internal/obs"
	"past/internal/pastry"
	"past/internal/store"
)

// app is the PAST node viewed as the Pastry application layer. It is a
// distinct type so that pastry upcalls don't collide with the netsim
// endpoint method set.
type app Node

var _ pastry.Application = (*app)(nil)

func (a *app) node() *Node { return (*Node)(a) }

// Forward fires at every node a routed message visits. Lookups are
// consumed by the first node that can produce the file (replica,
// diverted-replica pointer, or cached copy); inserts and reclaims are
// consumed by the first node that is among the k numerically closest to
// the fileId.
func (a *app) Forward(key id.Node, msg any) (bool, any, error) {
	n := a.node()
	switch m := msg.(type) {
	case *LookupMsg:
		if rep := n.localLookup(m.File); rep != nil {
			return true, rep, nil
		}
	case *InsertMsg:
		if n.overlay.IsAmongKClosest(key, m.K) {
			return true, n.coordinateInsert(key, m), nil
		}
	case *ReclaimMsg:
		if n.overlay.IsAmongKClosest(key, n.cfg.K) {
			return true, n.coordinateReclaim(key, m), nil
		}
	}
	return false, nil, nil
}

// Deliver fires at the numerically closest node; it must produce a
// definitive answer.
func (a *app) Deliver(key id.Node, msg any) (any, error) {
	n := a.node()
	switch m := msg.(type) {
	case *LookupMsg:
		if rep := n.localLookup(m.File); rep != nil {
			return rep, nil
		}
		return &LookupReply{Found: false}, nil
	case *InsertMsg:
		return n.coordinateInsert(key, m), nil
	case *ReclaimMsg:
		return n.coordinateReclaim(key, m), nil
	case *replicaSetQuery:
		return &replicaSetReply{Set: n.overlay.ReplicaSet(key, m.K)}, nil
	default:
		return nil, fmt.Errorf("past: node %s: unknown routed payload %T", n.ID().Short(), msg)
	}
}

// Backward fires on each path node as the reply returns toward the
// client: files are cached on all the nodes a successful insert or
// lookup was routed through (section 4).
func (a *app) Backward(key id.Node, msg, reply any) {
	n := a.node()
	switch m := msg.(type) {
	case *LookupMsg:
		if r, ok := reply.(*LookupReply); ok && r.Found {
			n.cacheFile(m.File, r.Size, r.Content)
		}
	case *InsertMsg:
		if r, ok := reply.(*InsertReply); ok && r.OK {
			n.cacheFile(m.File, m.Size, m.Content)
		}
	}
}

// cacheFile offers a file to the local cache, unless this node holds a
// replica of it (a replica already serves lookups).
func (n *Node) cacheFile(f id.File, size int64, content []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, held := n.store.Get(f); held {
		return
	}
	n.cache.Insert(f, size, content)
}

// Deliver implements netsim.Endpoint: PAST's direct node-to-node
// messages are handled here; everything else (routing, join, pings) is
// delegated to the Pastry layer.
func (n *Node) Deliver(from id.Node, msg any) (any, error) {
	return n.deliver(obs.TraceContext{}, from, msg)
}

// DeliverTraced implements transport.TracedEndpoint: the transport
// hands over the trace context it found on the wire envelope, which is
// how a `pastctl trace` request starts hop collection at its access
// point.
func (n *Node) DeliverTraced(tc obs.TraceContext, from id.Node, msg any) (any, error) {
	return n.deliver(tc, from, msg)
}

func (n *Node) deliver(tc obs.TraceContext, from id.Node, msg any) (any, error) {
	n.st().MsgsIn.Add(1)
	if s, ok := msg.(netsim.Sized); ok {
		n.st().BytesIn.Add(int64(s.WireSize()))
	}
	switch m := msg.(type) {
	case *storeReplicaMsg:
		return n.handleStoreReplica(m), nil
	case *divertStoreMsg:
		return n.handleDivertStore(m), nil
	case *freeSpaceMsg:
		n.mu.Lock()
		defer n.mu.Unlock()
		return &freeSpaceReply{Free: n.store.Free()}, nil
	case *installPointerMsg:
		n.mu.Lock()
		defer n.mu.Unlock()
		n.store.SetPointer(store.Pointer{File: m.File, Target: m.Target, Size: m.Size, Role: m.Role})
		return &ackMsg{}, nil
	case *discardMsg:
		return n.handleDiscard(m)
	case *fetchMsg:
		return n.handleFetch(m), nil
	case *acquireMsg:
		return n.handleAcquire(m), nil
	case *locateSpaceMsg:
		return n.handleLocateSpace(m), nil
	case *convertToDivertedMsg:
		return n.handleConvertToDiverted(m), nil
	case *pointerCheckMsg:
		return n.handlePointerCheck(m), nil
	case *divertedHolderLeaving:
		return n.handleDivertedHolderLeaving(m), nil
	case *storeFragMsg:
		return n.handleStoreFrag(m), nil
	case *fetchFragMsg:
		return n.handleFetchFrag(m), nil
	case *checkFragMsg:
		return n.handleCheckFrag(m), nil
	case *dropFragMsg:
		return n.handleDropFrag(m), nil
	case *mapUpdateMsg:
		return n.handleMapUpdate(m), nil
	case *ClientInsert, *ClientLookup, *ClientReclaim:
		// Mutating/serving client RPCs queue at the admission gate
		// (blocking mode: the TCP server has a real caller to park).
		if n.admitCtl != nil {
			if err := n.admitCtl.Admit(context.Background()); err != nil {
				return nil, err
			}
		}
		return n.handleClientRPC(tc, msg)
	case *ClientStatus, *ClientStats, *ClientReplicaReport, *ClientObsReport:
		// Introspection stays ungated: an operator must be able to read
		// load stats from an overloaded node, the live-fleet checker
		// must be able to audit one mid-fault, and the fleet scraper
		// must keep seeing an overloaded node's counters.
		return n.handleClientRPC(tc, msg)
	default:
		// Routed client work arriving over the network (this node is a
		// hop or the consumer for someone else's lookup/insert/reclaim)
		// is gated non-blocking: a shed surfaces as ErrOverloaded at the
		// upstream hop, which reroutes around us without evicting us.
		// Overlay control traffic — joins, pings, state exchange,
		// maintenance — is never gated.
		if n.admitCtl != nil {
			if rr, ok := msg.(*pastry.RouteRequest); ok {
				switch rr.Payload.(type) {
				case *LookupMsg, *InsertMsg, *ReclaimMsg:
					if err := n.admitCtl.TryAdmit(); err != nil {
						return nil, err
					}
				}
			}
		}
		return n.overlay.Deliver(from, msg)
	}
}

var _ netsim.Endpoint = (*Node)(nil)

// localLookup serves a lookup from this node if possible: from the
// replica store, from the cache, or by chasing a diverted-replica
// pointer (one extra RPC, as the paper charges it). A nil return means
// this node cannot serve the file and routing continues.
func (n *Node) localLookup(f id.File) *LookupReply {
	n.mu.Lock()
	if e, ok := n.store.Get(f); ok {
		n.mu.Unlock()
		if ec.IsMap(e.Content) {
			// Erasure-coded object: reconstruct from any m fragments. A
			// failed reconstruction (too few fragments reachable right
			// now) lets routing continue toward other map holders.
			return n.ecReconstruct(e)
		}
		return &LookupReply{Found: true, Size: e.Size, Content: e.Content, Cert: e.Cert}
	}
	if size, content, ok := n.cache.Get(f); ok {
		n.mu.Unlock()
		return &LookupReply{Found: true, Size: size, Content: content, FromCache: true}
	}
	p, hasPtr := n.store.GetPointer(f)
	n.mu.Unlock()
	if hasPtr {
		res, err := n.net.Invoke(context.Background(), n.ID(), p.Target, &fetchMsg{File: f})
		if err == nil {
			if fr := res.(*fetchReply); fr.Found {
				if ec.IsMap(fr.Content) {
					// The pointer led to a diverted fragment-map replica:
					// reconstruct the object rather than serving raw map
					// bytes.
					return n.ecReconstruct(store.Entry{File: f, Size: fr.Size, Content: fr.Content, Cert: fr.Cert})
				}
				return &LookupReply{Found: true, Size: fr.Size, Content: fr.Content,
					Cert: fr.Cert, ExtraHops: 1}
			}
		}
	}
	return nil
}

// handleFetch returns the replica content for a pointer chase or a
// migration transfer.
func (n *Node) handleFetch(m *fetchMsg) *fetchReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.store.Get(m.File)
	if !ok {
		return &fetchReply{}
	}
	return &fetchReply{Found: true, Size: e.Size, Content: e.Content, Cert: e.Cert}
}
