package past

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"past/internal/chaos"
	"past/internal/ec"
	"past/internal/id"
)

func newECCluster(t *testing.T, n int, p ec.Params, budget int64) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.ECMode = &p
	cfg.ECRepairBudget = budget
	c, err := NewCluster(ClusterSpec{
		N:        n,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return 4 << 20 },
		Seed:     1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fragHolderNode returns a live node holding a fragment of f.
func fragHolderNode(c *Cluster, f id.File) *Node {
	for _, nid := range c.Net.AliveNodes() {
		if n := c.ByID[nid]; len(n.FragIndices(f)) > 0 {
			return n
		}
	}
	return nil
}

func TestECInsertLookupRoundTrip(t *testing.T) {
	c := newECCluster(t, 10, ec.Params{Data: 3, Parity: 2}, 0)
	rng := rand.New(rand.NewSource(5))

	var files []id.File
	contents := make(map[id.File][]byte)
	for i := 0; i < 5; i++ {
		content := make([]byte, 3000+rng.Intn(5000))
		rng.Read(content)
		res, err := c.RandomAliveNode().Insert(InsertSpec{Name: fmt.Sprintf("ec-%d", i), Content: content})
		if err != nil || !res.OK {
			t.Fatalf("insert %d: %+v, %v", i, res, err)
		}
		files = append(files, res.FileID)
		contents[res.FileID] = content
	}

	// Every lookup must reconstruct the original bytes.
	for _, f := range files {
		res, err := c.RandomAliveNode().Lookup(f)
		if err != nil || !res.Found {
			t.Fatalf("lookup %s: %+v, %v", f.Short(), res, err)
		}
		if !bytes.Equal(res.Content, contents[f]) {
			t.Fatalf("lookup %s: content mismatch", f.Short())
		}
	}

	// The fragment invariant must hold from the start: all m+n indices
	// on live nodes, every object reconstructible.
	ck := &chaos.Checker{K: 3}
	if v := ck.CheckDurability(c, files, 0); len(v) != 0 {
		t.Fatalf("durability violations on a healthy cluster: %v", v)
	}
	if v := ck.CheckConverged(c, files, 0); len(v) != 0 {
		t.Fatalf("convergence violations on a healthy cluster: %v", v)
	}

	// Coding parameters are visible to the checker.
	data, total, ok := c.ECFile(files[0])
	if !ok || data != 3 || total != 5 {
		t.Fatalf("ECFile = (%d, %d, %v), want (3, 5, true)", data, total, ok)
	}
	if got := len(c.FragmentHolders(files[0])); got != 5 {
		t.Fatalf("fragment indices live = %d, want 5", got)
	}
}

func TestECLookupDegradesGracefully(t *testing.T) {
	c := newECCluster(t, 12, ec.Params{Data: 3, Parity: 2}, 0)
	rng := rand.New(rand.NewSource(6))
	content := make([]byte, 6000)
	rng.Read(content)
	res, err := c.RandomAliveNode().Insert(InsertSpec{Name: "degrade", Content: content})
	if err != nil || !res.OK {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	f := res.FileID

	// Drop parity-many fragments outright (no repair chance: delete the
	// fragments rather than the nodes, so maintenance sees live holders
	// and the lookup must hedge past the gaps).
	dropped := 0
	for _, n := range c.Nodes {
		if dropped >= 2 {
			break
		}
		for _, idx := range n.FragIndices(f) {
			n.frags.Delete(f, idx)
			dropped++
		}
	}
	if dropped != 2 {
		t.Fatalf("dropped %d fragments, want 2", dropped)
	}
	lr, err := c.RandomAliveNode().Lookup(f)
	if err != nil || !lr.Found || !bytes.Equal(lr.Content, content) {
		t.Fatalf("lookup with m survivors failed: %+v, %v", lr, err)
	}
}

func TestECLazyRepairAfterFailure(t *testing.T) {
	c := newECCluster(t, 12, ec.Params{Data: 3, Parity: 2}, 0)
	rng := rand.New(rand.NewSource(7))
	content := make([]byte, 9000)
	rng.Read(content)
	res, err := c.RandomAliveNode().Insert(InsertSpec{Name: "repair-me", Content: content})
	if err != nil || !res.OK {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	f := res.FileID

	// Kill a fragment holder. Its fragment is unreachable; anti-entropy
	// must enqueue it and repair must re-place it on a live node.
	victim := fragHolderNode(c, f)
	if victim == nil {
		t.Fatal("no fragment holder found")
	}
	c.Fail(victim.ID())
	for i := 0; i < 3; i++ {
		c.MaintainAll()
	}

	ck := &chaos.Checker{K: 3}
	if v := ck.CheckConverged(c, []id.File{f}, 1); len(v) != 0 {
		t.Fatalf("violations after repair: %v", v)
	}
	lr, err := c.RandomAliveNode().Lookup(f)
	if err != nil || !lr.Found || !bytes.Equal(lr.Content, content) {
		t.Fatalf("lookup after repair: %+v, %v", lr, err)
	}

	// Some live node must have performed the repair.
	var repaired int64
	for _, nid := range c.Net.AliveNodes() {
		snap := c.ByID[nid].StatsSnapshot()
		repaired += snap.Get("ec_repairs_done_total")
	}
	if repaired == 0 {
		t.Fatal("no repairs recorded")
	}
}

func TestECRepairCorruptFragment(t *testing.T) {
	c := newECCluster(t, 12, ec.Params{Data: 3, Parity: 2}, 0)
	rng := rand.New(rand.NewSource(8))
	content := make([]byte, 5000)
	rng.Read(content)
	res, err := c.RandomAliveNode().Insert(InsertSpec{Name: "corrupt-me", Content: content})
	if err != nil || !res.OK {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	f := res.FileID

	holder := fragHolderNode(c, f)
	idx := holder.FragIndices(f)[0]
	if !holder.frags.CorruptForTest(f, idx) {
		t.Fatal("corruption injection failed")
	}
	for i := 0; i < 3; i++ {
		c.MaintainAll()
	}

	// The CRC failure was detected and the fragment re-created.
	ck := &chaos.Checker{K: 3}
	if v := ck.CheckConverged(c, []id.File{f}, 1); len(v) != 0 {
		t.Fatalf("violations after corrupt-fragment repair: %v", v)
	}
	if holder.frags.CRCFailures() == 0 {
		t.Fatal("corruption was never detected")
	}
	lr, err := c.RandomAliveNode().Lookup(f)
	if err != nil || !lr.Found || !bytes.Equal(lr.Content, content) {
		t.Fatalf("lookup after corruption repair: %+v, %v", lr, err)
	}
}

func TestECFragmentLossInvariantFires(t *testing.T) {
	c := newECCluster(t, 10, ec.Params{Data: 3, Parity: 2}, 0)
	rng := rand.New(rand.NewSource(9))
	content := make([]byte, 4000)
	rng.Read(content)
	res, err := c.RandomAliveNode().Insert(InsertSpec{Name: "lose-me", Content: content})
	if err != nil || !res.OK {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	f := res.FileID

	// Delete fragments until fewer than m distinct indices remain; the
	// checker must call the object lost even while map replicas survive.
	deleted := 0
	for _, n := range c.Nodes {
		for _, idx := range n.FragIndices(f) {
			if deleted < 3 {
				n.frags.Delete(f, idx)
				deleted++
			}
		}
	}
	if deleted != 3 {
		t.Fatalf("deleted %d fragments, want 3", deleted)
	}
	ck := &chaos.Checker{K: 3}
	v := ck.CheckDurability(c, []id.File{f}, 0)
	found := false
	for _, viol := range v {
		if viol.Kind == chaos.ViolationFragmentsLost {
			found = true
		}
	}
	if !found {
		t.Fatalf("fragment-loss violation not raised: %v", v)
	}
}

func TestECReclaimDropsFragments(t *testing.T) {
	c := newECCluster(t, 10, ec.Params{Data: 3, Parity: 2}, 0)
	rng := rand.New(rand.NewSource(10))
	content := make([]byte, 4500)
	rng.Read(content)
	ap := c.RandomAliveNode()
	res, err := ap.Insert(InsertSpec{Name: "reclaim-me", Content: content})
	if err != nil || !res.OK {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	f := res.FileID
	if _, err := ap.Reclaim(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(c.FragmentHolders(f)); got != 0 {
		t.Fatalf("%d fragment indices survive reclaim", got)
	}
}
