package past

import (
	"context"
	"past/internal/cert"
	"past/internal/id"
	"past/internal/store"
)

// Replica maintenance (section 3.5). The storage invariant — k replicas
// of every file on the k nodes with nodeIds closest to its fileId — must
// survive node arrival, failure, and recovery. Pastry's leaf-set
// adjustment is the trigger: whenever this node's leaf set changes, it
// rescans its file table. For every primary replica it holds, it checks
// that each member of the (new) replica set has the file, offering it to
// members that lack it; a member acquires the file by storing it, by
// diverting it within its leaf set, by the section-3.5 overflow search
// through its most distant leaf members, or — when the offering holder
// has just ceased to be one of the k closest — by installing a
// diverted-replica pointer to the holder, which then keeps the replica
// (the "gradual migration" optimization). Replicas this node is no
// longer responsible for are discarded unless a new member pointed at
// them.

// Maintain forces one full replica-maintenance pass, independent of
// leaf-set changes. Drivers call it as a periodic anti-entropy round:
// under message loss the change-triggered maintenance can be starved
// (its RPCs dropped, the change long past), and only a periodic re-scan
// restores the invariant.
func (n *Node) Maintain() { n.maintainReplicas() }

// maintainReplicas is installed as the overlay's OnLeafSetChange hook.
// Re-entrant invocations (a maintenance RPC can itself reveal a dead
// node and mutate the leaf set again) are coalesced into one more pass.
func (n *Node) maintainReplicas() {
	if !n.overlay.Joined() {
		return
	}
	n.mu.Lock()
	if n.maintaining {
		n.maintainPending = true
		n.mu.Unlock()
		return
	}
	n.maintaining = true
	n.mu.Unlock()
	for {
		n.maintainOnce()
		n.mu.Lock()
		if !n.maintainPending {
			n.maintaining = false
			n.mu.Unlock()
			return
		}
		n.maintainPending = false
		n.mu.Unlock()
	}
}

func (n *Node) maintainOnce() {
	n.mu.Lock()
	entries := n.store.Entries()
	pointers := n.store.Pointers()
	n.mu.Unlock()
	k := n.cfg.K

	for _, e := range entries {
		if e.Kind != store.Primary {
			// Diverted-in replicas are the referring node's charge — but
			// an orphaned one (its live owner denies the pointer, e.g.
			// because the owner re-replicated during a partition and
			// migrated the file home after it healed) would leak storage
			// forever. Adopt it as primary so the normal path below can
			// migrate or discard it. A dead or unreachable owner is never
			// treated as a denial: it may recover with its pointer intact.
			if e.Kind == store.DivertedIn && n.net.Alive(e.Owner) {
				res, err := n.net.Invoke(context.Background(), n.ID(), e.Owner, &pointerCheckMsg{File: e.File, Holder: n.ID()})
				if err == nil && !res.(*pointerCheckReply).Valid {
					n.mu.Lock()
					if cur, ok := n.store.Get(e.File); ok && cur.Kind == store.DivertedIn {
						n.removeReplicaLocked(e.File)
						cur.Kind = store.Primary
						cur.Owner = id.Node{}
						_ = n.addReplicaLocked(cur)
						n.maintainPending = true // re-scan with the new role
					}
					n.mu.Unlock()
				}
			}
			continue
		}
		key := e.File.Key()
		rs := n.overlay.ReplicaSet(key, k)
		selfIn := containsNode(rs, n.ID())
		if !selfIn {
			// The local approximation is unreliable when this node's leaf
			// set does not span the key (a replica stranded far away by a
			// partition): ask the key's owner for the authoritative set,
			// or offers would go to wrong nodes and strand more copies.
			if reply, _, err := n.overlay.Route(key, &replicaSetQuery{K: k}); err == nil {
				if rq, ok := reply.(*replicaSetReply); ok && len(rq.Set) > 0 {
					rs = rq.Set
					selfIn = containsNode(rs, n.ID())
				}
			}
		}
		covered := 0 // members confirmed to hold a distinct copy
		for _, r := range rs {
			if r == n.ID() {
				continue
			}
			res, err := n.net.Invoke(context.Background(), n.ID(), r, &acquireMsg{
				File: e.File, Key: key, Size: e.Size, K: k,
				Holder: n.ID(), HolderLeaving: !selfIn,
			})
			if err != nil {
				continue // dead member; its failure will trigger repair
			}
			switch res.(*acquireReply).Status {
			case acquireAlreadyHave, acquireStored:
				covered++
			case acquireFailed:
				n.mu.Lock()
				n.belowK++
				n.mu.Unlock()
			}
		}
		if !selfIn && covered > 0 {
			// Discard unless a newcomer installed a pointer to us (the
			// entry has been converted to diverted-in) — and never when
			// no member could confirm a copy, which would risk dropping
			// the last replica instead of temporarily exceeding k.
			n.mu.Lock()
			if cur, ok := n.store.Get(e.File); ok && cur.Kind == store.Primary {
				n.removeReplicaLocked(e.File)
			}
			n.mu.Unlock()
		}
	}

	// Pointer upkeep: nodes holding diverted replicas and the nodes
	// referring to them exchange keep-alives even when leaf sets drift
	// apart; a dead target means the replica is gone and, for a
	// diverted-out pointer, that this node must re-create its replica.
	for _, p := range pointers {
		if !n.net.Alive(p.Target) {
			n.mu.Lock()
			n.store.RemovePointer(p.File)
			n.mu.Unlock()
			if p.Role == store.DivertedOut {
				n.reacquireSelf(p.File)
			}
			continue
		}
		if p.Role == store.DivertedOut {
			n.migratePointerHome(p)
		}
	}

	// Fragment-level anti-entropy + lazy repair for erasure-coded
	// objects whose map this node leads (nil frags only on bare
	// struct-literal nodes in tests).
	if n.frags != nil {
		n.ecMaintain()
	}
}

// containsNode reports whether ids includes nid.
func containsNode(ids []id.Node, nid id.Node) bool {
	for _, r := range ids {
		if r == nid {
			return true
		}
	}
	return false
}

// migratePointerHome implements the paper's gradual migration: when
// space has freed up locally, a diverted replica is pulled back to the
// referring node and the remote copy discarded, shortening future
// lookups and releasing the remote node's space.
func (n *Node) migratePointerHome(p store.Pointer) {
	n.mu.Lock()
	can := n.store.CanAccept(p.Size, n.cfg.TPri)
	n.mu.Unlock()
	if !can {
		return
	}
	content, fc, size, ok := n.fetchFrom(p.Target, p.File)
	if !ok {
		return
	}
	n.mu.Lock()
	if _, still := n.store.GetPointer(p.File); !still {
		n.mu.Unlock()
		return
	}
	err := n.addReplicaLocked(store.Entry{
		File: p.File, Size: size, Kind: store.Primary, Content: content, Cert: fc,
	})
	if err == nil {
		n.store.RemovePointer(p.File)
	}
	n.mu.Unlock()
	if err == nil {
		_, _ = n.net.Invoke(context.Background(), n.ID(), p.Target, &discardMsg{File: p.File, Abort: true})
	}
}

// fetchFrom retrieves replica content (and certificate) from a holder.
func (n *Node) fetchFrom(holder id.Node, f id.File) (content []byte, fc *cert.FileCertificate, size int64, ok bool) {
	if holder == n.ID() {
		n.mu.Lock()
		defer n.mu.Unlock()
		e, has := n.store.Get(f)
		if !has {
			return nil, nil, 0, false
		}
		return e.Content, e.Cert, e.Size, true
	}
	res, err := n.net.Invoke(context.Background(), n.ID(), holder, &fetchMsg{File: f})
	if err != nil {
		return nil, nil, 0, false
	}
	fr := res.(*fetchReply)
	if !fr.Found {
		return nil, nil, 0, false
	}
	return fr.Content, fr.Cert, fr.Size, true
}

// handleAcquire runs at a node that has (possibly) just become one of
// the k closest for a file another node holds.
func (n *Node) handleAcquire(m *acquireMsg) *acquireReply {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return &acquireReply{Status: acquireFailed}
	}
	if _, ok := n.store.Get(m.File); ok {
		n.mu.Unlock()
		return &acquireReply{Status: acquireAlreadyHave}
	}
	if _, ok := n.store.GetPointer(m.File); ok {
		n.mu.Unlock()
		return &acquireReply{Status: acquireAlreadyHave}
	}
	canLocal := n.store.CanAccept(m.Size, n.cfg.TPri)
	n.mu.Unlock()

	if canLocal {
		content, fc, size, ok := n.fetchFrom(m.Holder, m.File)
		if ok {
			n.mu.Lock()
			err := n.addReplicaLocked(store.Entry{
				File: m.File, Size: size, Kind: store.Primary, Content: content, Cert: fc,
			})
			n.mu.Unlock()
			if err == nil {
				return &acquireReply{Status: acquireStored}
			}
		}
		return &acquireReply{Status: acquireFailed}
	}

	if m.HolderLeaving {
		// Given the cost of copying file data relative to wide-area
		// bandwidth, install a pointer and require the leaving holder to
		// keep the replica; it is semantically a replica diversion.
		n.mu.Lock()
		n.store.SetPointer(store.Pointer{File: m.File, Target: m.Holder, Size: m.Size, Role: store.DivertedOut})
		n.mu.Unlock()
		if _, err := n.net.Invoke(context.Background(), n.ID(), m.Holder, &convertToDivertedMsg{File: m.File, Owner: n.ID()}); err != nil {
			n.mu.Lock()
			n.store.RemovePointer(m.File)
			n.mu.Unlock()
			return &acquireReply{Status: acquireFailed}
		}
		return &acquireReply{Status: acquirePointer}
	}

	// The holder stays responsible for its own replica, so this node
	// needs a distinct copy: divert within the leaf set.
	content, fc, size, ok := n.fetchFrom(m.Holder, m.File)
	if !ok {
		return &acquireReply{Status: acquireFailed}
	}
	sm := &storeReplicaMsg{File: m.File, Key: m.Key, Size: size, Content: content, Cert: fc, K: m.K}
	if r := n.divertReplica(sm); r.Status == storeOKDiverted {
		return &acquireReply{Status: acquireStored}
	}

	// Section 3.5 overflow: ask the two most distant leaf-set members to
	// locate a node within their leaf sets; 2l nodes are reachable.
	lo, hi := n.overlay.LeafSides()
	var distant []id.Node
	if len(lo) > 0 {
		distant = append(distant, lo[len(lo)-1])
	}
	if len(hi) > 0 {
		distant = append(distant, hi[len(hi)-1])
	}
	for _, far := range distant {
		res, err := n.net.Invoke(context.Background(), n.ID(), far, &locateSpaceMsg{File: m.File, Size: size})
		if err != nil {
			continue
		}
		ls := res.(*locateSpaceReply)
		if !ls.OK {
			continue
		}
		dres, err := n.net.Invoke(context.Background(), n.ID(), ls.Candidate,
			&divertStoreMsg{File: m.File, Size: size, Content: content, Cert: fc, Owner: n.ID()})
		if err != nil {
			continue
		}
		if dres.(*divertStoreReply).Status == divertOK {
			n.mu.Lock()
			n.store.SetPointer(store.Pointer{File: m.File, Target: ls.Candidate, Size: size, Role: store.DivertedOut})
			n.mu.Unlock()
			return &acquireReply{Status: acquireStored}
		}
	}

	// No space anywhere reachable: the replica count drops below k until
	// nodes or disks are added (the caller counts this).
	return &acquireReply{Status: acquireFailed}
}

// handlePointerCheck answers a diverted-replica holder's liveness probe:
// whether this node still points at the holder for the file.
func (n *Node) handlePointerCheck(m *pointerCheckMsg) *pointerCheckReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.store.GetPointer(m.File)
	return &pointerCheckReply{Valid: ok && p.Target == m.Holder}
}

// handleLocateSpace searches this node's leaf set (and itself) for a
// node able to hold a diverted replica of the given size, returning the
// one with the most free space.
func (n *Node) handleLocateSpace(m *locateSpaceMsg) *locateSpaceReply {
	var best id.Node
	var bestFree int64 = -1

	n.mu.Lock()
	if n.store.CanAccept(m.Size, n.cfg.TDiv) {
		if _, held := n.store.Get(m.File); !held {
			best, bestFree = n.ID(), n.store.Free()
		}
	}
	n.mu.Unlock()

	for _, member := range n.overlay.LeafSet() {
		res, err := n.net.Invoke(context.Background(), n.ID(), member, &freeSpaceMsg{})
		if err != nil {
			continue
		}
		free := res.(*freeSpaceReply).Free
		if free <= bestFree || free <= 0 {
			continue
		}
		if float64(m.Size)/float64(free) <= n.cfg.TDiv || m.Size == 0 {
			best, bestFree = member, free
		}
	}
	if bestFree < 0 {
		return &locateSpaceReply{}
	}
	return &locateSpaceReply{OK: true, Candidate: best}
}

// handleConvertToDiverted re-labels a (former primary) replica as held
// on behalf of Owner, which has installed a pointer to it.
func (n *Node) handleConvertToDiverted(m *convertToDivertedMsg) any {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.store.Get(m.File)
	if !ok {
		return &ackMsg{}
	}
	if e.Kind == store.DivertedIn {
		e.Owner = m.Owner
	}
	// Re-add with the new role; accounting events reflect the change.
	n.removeReplicaLocked(m.File)
	e.Kind = store.DivertedIn
	e.Owner = m.Owner
	_ = n.addReplicaLocked(e)
	return &ackMsg{}
}

// reacquireSelf re-creates this node's replica after the node holding
// its diverted copy failed: fetch the file from any live replica via a
// normal lookup, then store it (or divert it again).
func (n *Node) reacquireSelf(f id.File) {
	reply, _, err := n.overlay.Route(f.Key(), &LookupMsg{File: f})
	if err != nil {
		n.mu.Lock()
		n.belowK++
		n.mu.Unlock()
		return
	}
	lr, ok := reply.(*LookupReply)
	if !ok || !lr.Found {
		n.mu.Lock()
		n.belowK++
		n.mu.Unlock()
		return
	}
	sm := &storeReplicaMsg{File: f, Key: f.Key(), Size: lr.Size, Content: lr.Content, Cert: lr.Cert, K: n.cfg.K}
	if r := n.handleStoreReplica(sm); r.Status == storeFailed {
		n.mu.Lock()
		n.belowK++
		n.mu.Unlock()
	}
}
