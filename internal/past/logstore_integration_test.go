package past

import (
	"math/rand"
	"reflect"
	"testing"

	"past/internal/id"
	"past/internal/logstore"
	"past/internal/netsim"
	"past/internal/obs"
	"past/internal/topology"
)

// logstoreTestOpts: synchronous but cheap (no fsync-per-op), no
// background churn, so the test is deterministic and fast.
func logstoreTestOpts(capacity int64) logstore.Options {
	return logstore.Options{Capacity: capacity, Sync: logstore.SyncNever, CheckpointBytes: -1, CompactRatio: -1}
}

// buildLogstoreCluster is testCluster with one node (index 0) running
// on a log-structured backend rooted at dir.
func buildLogstoreCluster(t *testing.T, n int, dir string, seed int64) (*Cluster, *Node, *logstore.Store) {
	t.Helper()
	cfg := smallCfg()
	rng := rand.New(rand.NewSource(seed))
	c := &Cluster{Net: netsim.New(), ByID: make(map[id.Node]*Node, n), rng: rng}
	plane := topology.DefaultPlane
	positions := plane.Uniform(rng, n)
	var subject *Node
	var ls *logstore.Store
	for i := 0; i < n; i++ {
		var nid id.Node
		rng.Read(nid[:])
		var node *Node
		if i == 0 {
			s, err := logstore.Open(dir, logstoreTestOpts(1<<20))
			if err != nil {
				t.Fatal(err)
			}
			ls = s
			node = NewWithStore(nid, c.Net, cfg, s, rng.Int63())
			subject = node
		} else {
			node = New(nid, c.Net, cfg, 1<<20, rng.Int63())
		}
		c.Net.Register(nid, positions[i], node)
		if i == 0 {
			node.Overlay().Bootstrap()
		} else {
			if err := node.Overlay().Join(c.Nodes[rng.Intn(len(c.Nodes))].ID()); err != nil {
				t.Fatal(err)
			}
		}
		c.Nodes = append(c.Nodes, node)
		c.ByID[nid] = node
	}
	return c, subject, ls
}

// TestNodeOnLogstoreRestartRoundTrip drives inserts through a cluster
// whose first node stores replicas in a logstore, then "restarts" that
// node by reopening the directory: the rebuilt backend must present the
// identical Entries and Pointers lists.
func TestNodeOnLogstoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, subject, ls := buildLogstoreCluster(t, 20, dir, 7)

	client := c.Nodes[len(c.Nodes)-1]
	for i := 0; i < 30; i++ {
		content := make([]byte, 200)
		c.rng.Read(content)
		if _, err := client.Insert(InsertSpec{Name: "file", Salt: uint64(i), Content: content}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	entries := ls.Entries()
	pointers := ls.Pointers()
	if len(entries) == 0 {
		t.Fatal("no replicas landed on the logstore node; adjust cluster size")
	}

	// Crash the node's store and reopen the directory, as a pastd
	// restart would.
	if err := ls.Sync(); err != nil {
		t.Fatal(err)
	}
	ls.Kill()
	ls2, err := logstore.Open(dir, logstoreTestOpts(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer ls2.Close()
	if !reflect.DeepEqual(ls2.Entries(), entries) {
		t.Fatal("Entries differ after restart")
	}
	if !reflect.DeepEqual(ls2.Pointers(), pointers) {
		t.Fatal("Pointers differ after restart")
	}

	// A fresh node over the recovered backend serves the replicas and
	// exports the storage counters through the stats snapshot.
	node2 := NewWithStore(subject.ID(), c.Net, smallCfg(), ls2, 1)
	snap := node2.StatsSnapshot()
	if snap.Get(obs.CtrStoreReplicas) != int64(len(entries)) {
		t.Fatalf("replica gauge %d, want %d", snap.Get(obs.CtrStoreReplicas), len(entries))
	}
	if _, ok := snap.Counters[obs.CtrWALAppends]; !ok {
		t.Fatal("logstore counters missing from stats snapshot")
	}
	for _, e := range entries {
		got, ok := ls2.Get(e.File)
		if !ok || got.Content == nil {
			t.Fatalf("replica %s content lost across restart", e.File.Short())
		}
	}
}
