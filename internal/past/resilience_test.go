package past

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"past/internal/id"
	"past/internal/netsim"
)

// recMon records resilience events, implementing both Monitor and
// ResilienceMonitor.
type recMon struct {
	mu             sync.Mutex
	retries        int
	hedges         []bool
	reroutes       int
	partialInserts int
}

func (m *recMon) ReplicaStored(id.File, int64, bool)    {}
func (m *recMon) ReplicaDiscarded(id.File, int64, bool) {}
func (m *recMon) RecordRetry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}
func (m *recMon) RecordHedge(won bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hedges = append(m.hedges, won)
}
func (m *recMon) RecordReroute() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reroutes++
}
func (m *recMon) RecordPartialInsert() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.partialInserts++
}

func (m *recMon) hedgeLog() []bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]bool(nil), m.hedges...)
}

func lookupFound(r any) bool {
	lr, ok := r.(*LookupResult)
	return ok && lr.Found
}

// TestHedgeConcurrentHedgeWins drives the concurrent hedge with a
// primary that never answers: the hedge must fire after HedgeDelay,
// supply the result (exactly one winner), and the losing primary's
// context must be cancelled.
func TestHedgeConcurrentHedgeWins(t *testing.T) {
	mon := &recMon{}
	n := &Node{cfg: Config{Monitor: mon}}
	pol := RetryPolicy{Hedge: true, HedgeDelay: time.Millisecond}.withDefaults()

	primaryCancelled := make(chan error, 1)
	route := func(ctx context.Context, avoid id.Node) (any, error) {
		if avoid.IsZero() { // the primary: hang until cancelled
			<-ctx.Done()
			primaryCancelled <- ctx.Err()
			return nil, netsim.CtxErr(ctx)
		}
		return &LookupResult{Found: true, Size: 7}, nil
	}
	res, err := n.hedgeConcurrent(context.Background(), pol, id.NodeFromUint64(1), route, lookupFound)
	if err != nil {
		t.Fatal(err)
	}
	lr := res.(*LookupResult)
	if !lr.Found || lr.Size != 7 {
		t.Fatalf("winner must be the hedge's result, got %+v", lr)
	}
	select {
	case cerr := <-primaryCancelled:
		if cerr != context.Canceled {
			t.Fatalf("losing primary saw %v; want context.Canceled", cerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("losing primary was never cancelled")
	}
	if got := mon.hedgeLog(); len(got) != 1 || !got[0] {
		t.Fatalf("hedge log = %v; want exactly one winning hedge", got)
	}
}

// TestHedgeConcurrentPrimaryWins is the mirror: a slow-but-successful
// primary outlasts the hedge delay, a hedge launches and hangs, the
// primary's result wins, and the losing hedge is cancelled.
func TestHedgeConcurrentPrimaryWins(t *testing.T) {
	mon := &recMon{}
	n := &Node{cfg: Config{Monitor: mon}}
	pol := RetryPolicy{Hedge: true, HedgeDelay: time.Millisecond}.withDefaults()

	hedgeLaunched := make(chan struct{})
	hedgeCancelled := make(chan error, 1)
	route := func(ctx context.Context, avoid id.Node) (any, error) {
		if avoid.IsZero() { // the primary: answer after the hedge is up
			<-hedgeLaunched
			return &LookupResult{Found: true, Size: 3}, nil
		}
		close(hedgeLaunched)
		<-ctx.Done()
		hedgeCancelled <- ctx.Err()
		return nil, netsim.CtxErr(ctx)
	}
	res, err := n.hedgeConcurrent(context.Background(), pol, id.NodeFromUint64(1), route, lookupFound)
	if err != nil {
		t.Fatal(err)
	}
	lr := res.(*LookupResult)
	if !lr.Found || lr.Size != 3 {
		t.Fatalf("winner must be the primary's result, got %+v", lr)
	}
	select {
	case cerr := <-hedgeCancelled:
		if cerr != context.Canceled {
			t.Fatalf("losing hedge saw %v; want context.Canceled", cerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("losing hedge was never cancelled")
	}
	if got := mon.hedgeLog(); len(got) != 1 || got[0] {
		t.Fatalf("hedge log = %v; want exactly one losing hedge", got)
	}
}

// TestHedgedLookupThroughAlternateEntry exercises the sequential
// failover hedge end to end: the client's first hop toward a file dies,
// the primary attempt fails over inside routing, and the lookup still
// succeeds under the policy without the client seeing an error.
func TestHedgedLookupThroughAlternateEntry(t *testing.T) {
	cfg := smallCfg()
	cfg.Retry = &RetryPolicy{MaxAttempts: 3, Hedge: true}
	c := testCluster(t, 40, cfg, 1<<20, 31)
	client := c.RandomAliveNode()
	res, err := client.Insert(InsertSpec{Name: "hedged", Size: 900})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}
	hop := client.Overlay().FirstHop(res.FileID.Key())
	if hop.IsZero() {
		t.Skip("client is its own access point for this key")
	}
	c.Fail(hop)
	defer c.Recover(hop)
	lr, err := client.Lookup(res.FileID)
	if err != nil || !lr.Found {
		t.Fatalf("lookup with dead first hop: %v %+v", err, lr)
	}
}

// TestFileDiversionsAccounting pins FileDiversions == Attempts-1 on
// every path: clean success, success after a re-salted retry, and
// exhausted failure.
func TestFileDiversionsAccounting(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 33)
	client := c.RandomAliveNode()

	clean, err := client.Insert(InsertSpec{Name: "clean", Size: 100})
	if err != nil || !clean.OK {
		t.Fatalf("insert: %v %+v", err, clean)
	}
	if clean.Attempts != 1 || clean.FileDiversions != 0 {
		t.Fatalf("clean insert: attempts=%d diversions=%d; want 1, 0", clean.Attempts, clean.FileDiversions)
	}

	// Re-inserting the same name+salt collides with the live file,
	// forcing at least one file diversion before succeeding.
	if _, err := client.Insert(InsertSpec{Name: "dup", Size: 100, Salt: 9}); err != nil {
		t.Fatal(err)
	}
	diverted, err := client.Insert(InsertSpec{Name: "dup", Size: 100, Salt: 9})
	if err != nil || !diverted.OK {
		t.Fatalf("re-salted insert: %v %+v", err, diverted)
	}
	if diverted.Attempts < 2 || diverted.FileDiversions != diverted.Attempts-1 {
		t.Fatalf("diverted success: attempts=%d diversions=%d; want diversions == attempts-1 >= 1",
			diverted.Attempts, diverted.FileDiversions)
	}

	// Fill a tiny cluster until inserts fail outright.
	full := testCluster(t, 15, smallCfg(), 2_000, 34)
	fc := full.RandomAliveNode()
	var failed *InsertResult
	for i := 0; i < 500 && failed == nil; i++ {
		r, err := fc.Insert(InsertSpec{Name: fmt.Sprintf("fill%d", i), Size: 600})
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK {
			failed = r
		}
	}
	if failed == nil {
		t.Fatal("system never filled up")
	}
	if failed.FileDiversions != failed.Attempts-1 {
		t.Fatalf("failed insert: attempts=%d diversions=%d; want diversions == attempts-1",
			failed.Attempts, failed.FileDiversions)
	}
}

// TestPartialInsert verifies the degradation accounting: with
// PartialInsert set and one replica-set member dead, an insert succeeds
// with Stored < k and Partial set, the monitor records the debt, and
// replica maintenance settles it once the member recovers.
func TestPartialInsert(t *testing.T) {
	mon := &recMon{}
	cfg := smallCfg()
	cfg.PartialInsert = true
	cfg.Monitor = mon
	c := testCluster(t, 30, cfg, 1<<20, 35)

	// Pick a fileId and kill one of its replica set (not the coordinator,
	// which must stay reachable to run the insert).
	fid := id.NewFile("partial", nil, 4242)
	closest := c.GlobalClosest(fid.Key(), 3)
	victim := closest[1]
	c.Fail(victim)

	client := c.ByID[closest[0]]
	res, err := client.Insert(InsertSpec{Name: "partial", Salt: 4242, Size: 800})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || !res.Partial || res.Stored != 2 {
		t.Fatalf("insert with dead member: %+v; want OK partial with 2 replicas", res)
	}
	if mon.partialInserts != 1 {
		t.Fatalf("monitor recorded %d partial inserts; want 1", mon.partialInserts)
	}

	// Recovery + maintenance must settle the repair debt.
	c.Recover(victim)
	for i := 0; i < 3; i++ {
		c.MaintainAll()
	}
	replicas := 0
	for _, n := range c.Nodes {
		if n.HasReplica(res.FileID) {
			replicas++
		}
	}
	if replicas != 3 {
		t.Fatalf("replicas after heal = %d; want 3", replicas)
	}
}
