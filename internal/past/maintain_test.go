package past

import (
	"fmt"
	"math/rand"
	"testing"

	"past/internal/store"
)

// divertedCluster builds a cluster with heterogeneous capacities and
// inserts until some file has a diverted replica; it returns the
// cluster, the file, the diverting node (holds the pointer), and the
// diversion target.
func divertedCluster(t *testing.T, seed int64) (c *Cluster, f fileRef, a, b *Node) {
	t.Helper()
	cfg := smallCfg()
	var err error
	c, err = NewCluster(ClusterSpec{
		N:   40,
		Cfg: cfg,
		Capacity: func(i int, _ *rand.Rand) int64 {
			if i%2 == 0 {
				return 30_000
			}
			return 300_000
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := c.Nodes[1]
	for i := 0; i < 500; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("dc-%d", i), Size: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			break
		}
		if res.Diverted == 0 {
			continue
		}
		for _, nid := range c.GlobalClosest(res.FileID.Key(), cfg.K) {
			n := c.ByID[nid]
			if target, ok := n.HasPointer(res.FileID); ok {
				return c, fileRef{id: res.FileID, size: 2000}, n, c.ByID[target]
			}
		}
	}
	t.Skip("no diversion materialized at this seed")
	return nil, fileRef{}, nil, nil
}

type fileRef struct {
	id   [20]byte
	size int64
}

func TestMigratePointerHome(t *testing.T) {
	c, f, a, b := divertedCluster(t, 61)
	if !b.HasReplica(f.id) {
		t.Fatal("sanity: diversion target lacks the replica")
	}

	// Free space at A: reclaim everything else A holds.
	entries, _ := a.StoreSnapshot()
	for _, e := range entries {
		if e.File != f.id {
			a.mu.Lock()
			a.removeReplicaLocked(e.File)
			a.mu.Unlock()
		}
	}

	// A maintenance pass at A migrates the diverted replica home.
	a.maintainReplicas()

	if _, still := a.HasPointer(f.id); still {
		t.Fatal("pointer survived migration")
	}
	if !a.HasReplica(f.id) {
		t.Fatal("replica not migrated home")
	}
	if b.HasReplica(f.id) {
		t.Fatal("remote copy not discarded after migration")
	}
	// And the file is still retrievable.
	got, err := c.RandomAliveNode().Lookup(f.id)
	if err != nil || !got.Found {
		t.Fatalf("lookup after migration: %v %+v", err, got)
	}
}

func TestReacquireAfterDivertTargetFailure(t *testing.T) {
	c, f, a, b := divertedCluster(t, 62)

	// The node holding the diverted replica dies; A's pointer dangles.
	c.Fail(b.ID())
	a.maintainReplicas()

	if target, ok := a.HasPointer(f.id); ok && target == b.ID() {
		t.Fatal("dangling pointer to dead diversion target survived")
	}
	// A re-created its replica: either locally, or re-diverted with a
	// fresh pointer, or recorded a below-k event if space was exhausted.
	hasLocal := a.HasReplica(f.id)
	newTarget, hasPtr := a.HasPointer(f.id)
	switch {
	case hasLocal:
	case hasPtr:
		if !c.Net.Alive(newTarget) || !c.ByID[newTarget].HasReplica(f.id) {
			t.Fatal("re-diverted pointer does not reference a live replica")
		}
	case a.BelowKEvents() > 0:
	default:
		t.Fatal("neither re-acquired nor counted below-k")
	}
	// The file remains retrievable from the surviving replicas.
	got, err := c.Nodes[1].Lookup(f.id)
	if err != nil || !got.Found {
		t.Fatalf("lookup after diversion-target failure: %v %+v", err, got)
	}
}

func TestHandleConvertToDiverted(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 63)
	n := c.Nodes[0]
	owner := c.Nodes[1].ID()

	// Converting an absent file is a harmless ack.
	var ghost [20]byte
	ghost[3] = 9
	if reply := n.handleConvertToDiverted(&convertToDivertedMsg{File: ghost, Owner: owner}); reply == nil {
		t.Fatal("nil reply")
	}

	// Insert so n holds a primary somewhere; find one it holds.
	client := c.Nodes[1]
	var held fileRef
	for i := 0; i < 200; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("cv-%d", i), Size: 100})
		if err != nil || !res.OK {
			t.Fatal("insert failed")
		}
		if n.HasReplica(res.FileID) {
			held = fileRef{id: res.FileID, size: 100}
			break
		}
	}
	if held.size == 0 {
		t.Skip("node holds nothing at this seed")
	}
	n.handleConvertToDiverted(&convertToDivertedMsg{File: held.id, Owner: owner})
	entries, _ := n.StoreSnapshot()
	found := false
	for _, e := range entries {
		if e.File == held.id {
			found = true
			if e.Kind != store.DivertedIn || e.Owner != owner {
				t.Fatalf("conversion wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("entry vanished during conversion")
	}
}

func TestClientRPCsLocal(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 64)
	n := c.Nodes[0]
	from := c.Nodes[1].ID()

	reply, err := n.Deliver(from, &ClientInsert{Name: "rpc", Content: []byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	ir := reply.(*ClientInsertReply)
	if !ir.OK {
		t.Fatalf("client insert: %+v", ir)
	}

	reply, err = n.Deliver(from, &ClientLookup{File: ir.FileID})
	if err != nil {
		t.Fatal(err)
	}
	lr := reply.(*ClientLookupReply)
	if !lr.Found || string(lr.Content) != "abc" {
		t.Fatalf("client lookup: %+v", lr)
	}

	reply, err = n.Deliver(from, &ClientReclaim{File: ir.FileID})
	if err != nil {
		t.Fatal(err)
	}
	if rr := reply.(*ClientReclaimReply); !rr.Found || rr.Freed != 9 {
		t.Fatalf("client reclaim: %+v", rr)
	}
}

func TestAccessors(t *testing.T) {
	c := testCluster(t, 15, smallCfg(), 10_000, 65)
	n := c.Nodes[0]
	if n.Utilization() != 0 {
		t.Fatal("fresh node utilization")
	}
	if c.TotalCapacity() != 15*10_000 {
		t.Fatalf("total capacity = %d", c.TotalCapacity())
	}
	if c.Utilization() != 0 {
		t.Fatal("cluster utilization")
	}
	if c.Rand() == nil {
		t.Fatal("nil rand")
	}
	res, err := n.Insert(InsertSpec{Name: "acc", Size: 300})
	if err != nil || !res.OK {
		t.Fatal("insert")
	}
	if c.Utilization() <= 0 {
		t.Fatal("utilization did not rise")
	}
	ok, err := n.Exists(res.FileID)
	if err != nil || !ok {
		t.Fatal("Exists")
	}
	if _, err := n.Lookup(res.FileID); err != nil {
		t.Fatal(err)
	}
	// The lookup cached nothing on the holder itself; CacheContains and
	// CacheStats simply must be callable and consistent.
	h, m, _ := n.CacheStats()
	if h < 0 || m < 0 {
		t.Fatal("cache stats")
	}
	_ = n.CacheContains(res.FileID)
}

func TestStatusSnapshot(t *testing.T) {
	c := testCluster(t, 20, smallCfg(), 1<<20, 66)
	n := c.Nodes[0]
	if _, err := n.Insert(InsertSpec{Name: "st", Size: 500}); err != nil {
		t.Fatal(err)
	}
	st := n.Status()
	if st.ID != n.ID() || !st.Joined {
		t.Fatalf("status identity: %+v", st)
	}
	if st.Capacity != 1<<20 || st.Used+st.Free != st.Capacity {
		t.Fatalf("status accounting: %+v", st)
	}
	if st.LeafSetSize == 0 || st.TableEntries == 0 {
		t.Fatalf("status overlay state empty: %+v", st)
	}
	// RegisterWire is idempotent and callable.
	RegisterWire()
	RegisterWire()
}
