package past

import (
	"bytes"
	"testing"

	"past/internal/cachengine"
	"past/internal/id"
	"past/internal/obs"
)

// engineCfg is smallCfg with the full cache engine enabled (sharding,
// negative cache; no flash — flash has its own test below).
func engineCfg() Config {
	cfg := smallCfg()
	cfg.CacheEngine = &cachengine.Config{
		Shards:          4,
		NegativeEntries: 64,
	}
	return cfg
}

func TestNegativeCacheShortCircuitsLookups(t *testing.T) {
	c := testCluster(t, 20, engineCfg(), 1<<20, 11)
	client := c.RandomAliveNode()
	absent := id.NewFile("never-inserted", nil, 7)

	res, err := client.Lookup(absent)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Negative {
		t.Fatalf("first miss should route: %+v", res)
	}
	msgsAfterFirst := client.Stats().MsgsOut.Load()

	res, err = client.Lookup(absent)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || !res.Negative {
		t.Fatalf("second miss should be negative-cached: %+v", res)
	}
	if got := client.Stats().MsgsOut.Load(); got != msgsAfterFirst {
		t.Fatalf("negative-cached lookup sent %d messages", got-msgsAfterFirst)
	}
	if st := client.Cache().Stats(); st.NegHits != 1 {
		t.Fatalf("NegHits = %d, want 1", st.NegHits)
	}

	// Inserting the file must invalidate the client's negative entry:
	// the reply caches the file along the return path through cacheFile,
	// whose Insert clears the entry.
	ins, err := client.Insert(InsertSpec{Name: "never-inserted", Salt: 7, Content: []byte("now it exists")})
	if err != nil {
		t.Fatal(err)
	}
	if !ins.OK || ins.FileID != absent {
		t.Fatalf("insert: %+v (want fileId %x)", ins, absent[:4])
	}
	got, err := client.Lookup(absent)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || got.Negative {
		t.Fatalf("post-insert lookup: %+v", got)
	}
	if !bytes.Equal(got.Content, []byte("now it exists")) {
		t.Fatal("wrong content after invalidation")
	}
}

func TestEngineCountersInSnapshot(t *testing.T) {
	c := testCluster(t, 20, engineCfg(), 1<<20, 12)
	client := c.RandomAliveNode()

	res, err := client.Insert(InsertSpec{Name: "f", Content: bytes.Repeat([]byte("x"), 512)})
	if err != nil || !res.OK {
		t.Fatalf("insert: %+v err=%v", res, err)
	}
	if _, err := client.Lookup(res.FileID); err != nil {
		t.Fatal(err)
	}
	client.Lookup(id.NewFile("ghost", nil, 1))
	client.Lookup(id.NewFile("ghost", nil, 1)) // negative hit

	snap := client.StatsSnapshot()
	if snap.Get(obs.CtrCacheShards) != 4 {
		t.Fatalf("shards counter = %d, want 4", snap.Get(obs.CtrCacheShards))
	}
	if snap.Get(obs.CtrCacheNegHits) != 1 {
		t.Fatalf("neg hits counter = %d, want 1", snap.Get(obs.CtrCacheNegHits))
	}
	// The legacy series must stay coherent with the engine's tiers.
	eng := client.Cache().Stats()
	if snap.Get(obs.CtrCacheHits) != eng.Hits() || snap.Get(obs.CtrCacheMisses) != eng.Misses {
		t.Fatalf("legacy series diverged: snap=(%d,%d) engine=(%d,%d)",
			snap.Get(obs.CtrCacheHits), snap.Get(obs.CtrCacheMisses), eng.Hits(), eng.Misses)
	}
}

// TestFlashTierOnNode runs a node whose cache engine spills to a flash
// tier and verifies a cached-but-evicted file is still served — with
// the engine reporting flash activity.
func TestFlashTierOnNode(t *testing.T) {
	cfg := smallCfg()
	cfg.CacheEngine = &cachengine.Config{
		Shards:   1,
		RAMBytes: 2 << 10, // tiny RAM tier forces spills
		Flash: &cachengine.FlashConfig{
			Dir:          t.TempDir(),
			Capacity:     1 << 20,
			SegmentBytes: 32 << 10,
		},
	}
	c := testCluster(t, 16, cfg, 1<<20, 13)
	client := c.RandomAliveNode()

	// Insert files through the overlay; the replies cache them on the
	// client (the access point), where the tiny RAM tier evicts older
	// entries into flash.
	var files []id.File
	for i := 0; i < 12; i++ {
		content := bytes.Repeat([]byte{byte('a' + i)}, 700)
		res, err := client.Insert(InsertSpec{Name: "flashfile", Salt: uint64(i), Content: content})
		if err != nil || !res.OK {
			t.Fatalf("insert %d: %+v err=%v", i, res, err)
		}
		files = append(files, res.FileID)
	}
	st := client.Cache().Stats()
	if st.FlashSpills == 0 {
		t.Fatalf("tiny RAM tier never spilled: %+v", st)
	}

	// Every file must still be retrievable; files the client holds only
	// in flash are served from there (FromCache, zero hops).
	for i, f := range files {
		got, err := client.Lookup(f)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Found || !bytes.Equal(got.Content, bytes.Repeat([]byte{byte('a' + i)}, 700)) {
			t.Fatalf("file %d: %+v", i, got)
		}
	}
	if st := client.Cache().Stats(); st.FlashHits == 0 {
		t.Fatalf("lookups never hit flash: %+v", st)
	}
	if err := client.Cache().Close(); err != nil {
		t.Fatal(err)
	}
}
