package past

import (
	"context"
	"fmt"

	"past/internal/ec"
	"past/internal/id"
	"past/internal/rs"
	"past/internal/store"
)

// Erasure-coded storage mode (the paper's section 3.6 future work,
// promoted to a first-class node-level mode). With Config.ECMode set,
// the insert coordinator RS(m, n)-encodes the object and places the
// m+n fragments on distinct leaf-set members under the tdiv acceptance
// threshold — the same diversion machinery that steers replicas away
// from full nodes. What it k-replicates through the ordinary path is a
// small fragment map (ec.Map), so map durability rides the existing
// replica-maintenance invariant untouched. Lookups reaching a map
// holder reconstruct from any m fragments, fetched in parallel with
// hedging to the remaining holders as fetches fail.
//
// Fragments themselves are NOT replicated; their durability comes from
// the lazy repair engine: the first replica-set member (the leader)
// probes fragment holders during each maintenance pass, enqueues
// missing or corrupt fragments on a per-node ec.RepairQueue, and drains
// it under Config.ECRepairBudget bytes per pass — re-encoding each lost
// fragment from m survivors and re-placing it, then bumping the map
// version and propagating the updated map to the other replicas.

// Direct EC messages.

// storeFragMsg places one fragment at a node.
type storeFragMsg struct {
	File    id.File
	Index   int
	Version uint32
	Data    []byte
	CRC     uint32
}

type storeFragReply struct {
	OK bool
}

// fetchFragMsg retrieves a fragment (CRC-verified by the holder).
type fetchFragMsg struct {
	File  id.File
	Index int
}

type fetchFragReply struct {
	Found   bool
	Version uint32
	Data    []byte
	CRC     uint32
}

// checkFragMsg is the anti-entropy probe: does the holder still have a
// valid copy of the fragment?
type checkFragMsg struct {
	File  id.File
	Index int
}

type checkFragReply struct {
	Have    bool
	Version uint32
}

// dropFragMsg discards a fragment (insert abort, reclaim).
type dropFragMsg struct {
	File  id.File
	Index int
}

// mapUpdateMsg carries a re-encoded fragment map to the other
// replica-set members after a repair moved a fragment. Receivers accept
// it only if the version is newer than what they hold.
type mapUpdateMsg struct {
	Raw []byte
}

// ecEncoder returns a coder for the given parameters. Matrix
// construction is cheap relative to one fragment placement, so no cache
// is kept.
func ecEncoder(p ec.Params) (*rs.Encoder, error) {
	return rs.New(p.Data, p.Parity)
}

// fragAccept applies the tdiv acceptance policy to a fragment: the
// fragment competes for the space replicas and cached copies use, so
// the node's free space is the store's minus bytes already pledged to
// fragments. Caller holds n.mu.
func (n *Node) fragAcceptLocked(size int64) bool {
	free := n.store.Free() - n.frags.Bytes()
	if size == 0 {
		return free >= 0
	}
	if free <= 0 {
		return false
	}
	return float64(size)/float64(free) <= n.cfg.TDiv
}

// syncFragSpaceLocked re-points the cache limit at the space left after
// replicas and fragments. Caller holds n.mu.
func (n *Node) syncFragSpaceLocked() {
	n.cache.SetLimit(n.store.Free() - n.frags.Bytes())
}

// handleStoreFrag stores one fragment at this node.
func (n *Node) handleStoreFrag(m *storeFragMsg) *storeFragReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving || !n.fragAcceptLocked(int64(len(m.Data))) {
		return &storeFragReply{}
	}
	if ec.Checksum(m.Data) != m.CRC {
		return &storeFragReply{} // corrupted in transit; decline
	}
	n.frags.Put(ec.Fragment{File: m.File, Index: m.Index, Version: m.Version, Data: m.Data, CRC: m.CRC})
	n.syncFragSpaceLocked()
	return &storeFragReply{OK: true}
}

// handleFetchFrag serves a fragment; the store verifies the CRC and
// drops a corrupt copy, so the reply's Found=false covers both missing
// and corrupt.
func (n *Node) handleFetchFrag(m *fetchFragMsg) *fetchFragReply {
	f, ok := n.frags.Get(m.File, m.Index)
	if !ok {
		return &fetchFragReply{}
	}
	return &fetchFragReply{Found: true, Version: f.Version, Data: f.Data, CRC: f.CRC}
}

func (n *Node) handleCheckFrag(m *checkFragMsg) *checkFragReply {
	v, ok := n.frags.Has(m.File, m.Index)
	return &checkFragReply{Have: ok, Version: v}
}

func (n *Node) handleDropFrag(m *dropFragMsg) any {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.frags.Delete(m.File, m.Index)
	n.syncFragSpaceLocked()
	return &ackMsg{}
}

// handleMapUpdate installs a newer fragment map over the one this node
// replicates, if any. Older or equal versions are ignored — repair may
// race with maintenance-driven map copies.
func (n *Node) handleMapUpdate(m *mapUpdateMsg) any {
	nm, err := ec.DecodeMap(m.Raw)
	if err != nil {
		return &ackMsg{}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.store.Get(nm.File)
	if !ok || !ec.IsMap(e.Content) {
		return &ackMsg{}
	}
	cur, err := ec.DecodeMap(e.Content)
	if err == nil && cur.Version >= nm.Version {
		return &ackMsg{}
	}
	e.Content = m.Raw
	e.Size = int64(len(m.Raw))
	n.removeReplicaLocked(nm.File)
	_ = n.addReplicaLocked(e)
	return &ackMsg{}
}

// coordinateECInsert is the EC-mode insert coordinator: encode, place
// fragments over the leaf set, then k-replicate the fragment map
// through the ordinary replication path. Any placement shortfall aborts
// the attempt (dropping placed fragments), and the client's file
// diversion re-salts into a different leaf set.
func (n *Node) coordinateECInsert(key id.Node, m *InsertMsg) *InsertReply {
	p := *n.cfg.ECMode
	enc, err := ecEncoder(p)
	if err != nil {
		return &InsertReply{Reason: fmt.Sprintf("ec: %v", err)}
	}
	shards, err := enc.Split(m.Content)
	if err != nil {
		return &InsertReply{Reason: fmt.Sprintf("ec: %v", err)}
	}
	if err := enc.Encode(shards); err != nil {
		return &InsertReply{Reason: fmt.Sprintf("ec: %v", err)}
	}
	shardSize := len(shards[0])

	// Place the m+n fragments on distinct nodes, numerically closest
	// first. A node that is full (tdiv), dead, or leaving is skipped and
	// the fragment moves to the next candidate — the diversion machinery
	// at fragment granularity.
	cands := n.overlay.FragmentTargets(key, n.overlay.Config().L+1)
	holders := make([]id.Node, p.Total())
	crcs := make([]uint32, p.Total())
	var placed []int
	next := 0
	dropPlaced := func() {
		for _, idx := range placed {
			n.ecDropFragAt(holders[idx], m.File, idx)
		}
	}
	for idx := 0; idx < p.Total(); idx++ {
		crcs[idx] = ec.Checksum(shards[idx])
		ok := false
		for !ok && next < len(cands) {
			target := cands[next]
			next++
			if n.ecStoreFragAt(target, &storeFragMsg{
				File: m.File, Index: idx, Version: 1, Data: shards[idx], CRC: crcs[idx],
			}) {
				holders[idx] = target
				placed = append(placed, idx)
				ok = true
			}
		}
		if !ok {
			dropPlaced()
			return &InsertReply{Reason: fmt.Sprintf("ec: only %d of %d fragments placeable", len(placed), p.Total())}
		}
	}

	fmap := &ec.Map{
		File: m.File, Size: m.Size, Data: p.Data, Parity: p.Parity,
		ShardSize: shardSize, Version: 1, Holders: holders, CRCs: crcs,
	}
	raw := fmap.Encode()
	mm := *m
	mm.Content = raw
	mm.Size = int64(len(raw))
	rep := n.replicateInsert(key, &mm)
	if !rep.OK {
		dropPlaced()
		return rep
	}
	n.mu.Lock()
	n.ecInserts++
	n.mu.Unlock()
	return rep
}

// ecStoreFragAt places one fragment at target (this node included).
func (n *Node) ecStoreFragAt(target id.Node, m *storeFragMsg) bool {
	if target == n.ID() {
		return n.handleStoreFrag(m).OK
	}
	res, err := n.net.Invoke(context.Background(), n.ID(), target, m)
	return err == nil && res.(*storeFragReply).OK
}

func (n *Node) ecDropFragAt(target id.Node, f id.File, idx int) {
	if target == n.ID() {
		n.handleDropFrag(&dropFragMsg{File: f, Index: idx})
		return
	}
	_, _ = n.net.Invoke(context.Background(), n.ID(), target, &dropFragMsg{File: f, Index: idx})
}

// ecFetchFragAt fetches one fragment, verifying it against the map's
// CRC (fragment content never changes across repairs, so the map CRC is
// authoritative). Returns the shard and the bytes moved.
func (n *Node) ecFetchFragAt(target id.Node, f id.File, idx int, wantCRC uint32) ([]byte, int64) {
	var fr *fetchFragReply
	if target == n.ID() {
		fr = n.handleFetchFrag(&fetchFragMsg{File: f, Index: idx})
	} else {
		res, err := n.net.Invoke(context.Background(), n.ID(), target, &fetchFragMsg{File: f, Index: idx})
		if err != nil {
			return nil, 0
		}
		fr = res.(*fetchFragReply)
	}
	if !fr.Found || ec.Checksum(fr.Data) != wantCRC {
		return nil, 0
	}
	return fr.Data, int64(len(fr.Data))
}

// ecReconstruct serves a lookup from a fragment map held locally:
// fetch any m fragments (the first m holders in parallel, hedging to
// the remaining holders as fetches fail), rebuild missing data shards
// with ReconstructInto, and join. A nil return means fewer than m
// fragments were reachable; the caller degrades to not-found here and
// routing may still find another map holder with better connectivity.
func (n *Node) ecReconstruct(e store.Entry) *LookupReply {
	fmap, err := ec.DecodeMap(e.Content)
	if err != nil {
		return nil
	}
	enc, err := ecEncoder(fmap.Params())
	if err != nil {
		return nil
	}
	total := fmap.Params().Total()

	// Candidate order: local fragments are free, then data shards (a
	// full set of data shards joins without any decode), then parity.
	var order []int
	for _, local := range [2]bool{true, false} {
		for idx := 0; idx < total; idx++ {
			if (fmap.Holders[idx] == n.ID()) == local {
				order = append(order, idx)
			}
		}
	}

	type fres struct {
		idx  int
		data []byte
	}
	ch := make(chan fres, total)
	next, inflight := 0, 0
	launch := func() {
		for next < len(order) {
			idx := order[next]
			next++
			inflight++
			go func(idx int) {
				data, _ := n.ecFetchFragAt(fmap.Holders[idx], e.File, idx, fmap.CRCs[idx])
				ch <- fres{idx, data}
			}(idx)
			return
		}
	}
	for i := 0; i < fmap.Data; i++ {
		launch()
	}
	shards := make([][]byte, total)
	have := 0
	var missing []int
	for have < fmap.Data && inflight > 0 {
		r := <-ch
		inflight--
		if r.data != nil {
			shards[r.idx] = r.data
			have++
		} else {
			missing = append(missing, r.idx)
			launch() // hedge: try the next holder
		}
	}
	// Lookup-discovered losses feed the repair queue if this node leads
	// the object's replica set (the same node the anti-entropy pass
	// elects), so a hot object is repaired before the next full scan.
	if len(missing) > 0 && n.ecLeader(e.File) {
		for _, idx := range missing {
			n.repairq.Enqueue(ec.RepairItem{
				File: e.File, Index: idx,
				Cost: int64(fmap.ShardSize) * int64(fmap.Data+1),
			})
		}
	}
	if have < fmap.Data {
		return nil
	}
	for idx := 0; idx < fmap.Data; idx++ {
		if shards[idx] == nil {
			dst := make([]byte, fmap.ShardSize)
			if err := enc.ReconstructInto(shards, idx, dst); err != nil {
				return nil
			}
			shards[idx] = dst
		}
	}
	content, err := enc.Join(shards, int(fmap.Size))
	if err != nil {
		return nil
	}
	n.mu.Lock()
	n.ecReconstructs++
	n.mu.Unlock()
	// The fragment fetches stand in for the paper's one-extra-RPC
	// pointer chase; charge them the same way.
	return &LookupReply{Found: true, Size: fmap.Size, Content: content, Cert: e.Cert, ExtraHops: 1}
}

// ecLeader reports whether this node is the first member of the file's
// replica set — the single node that runs fragment anti-entropy and
// repair for the object, so k map holders don't quadruple the probe and
// repair traffic.
func (n *Node) ecLeader(f id.File) bool {
	rs := n.overlay.ReplicaSet(f.Key(), n.cfg.K)
	return len(rs) > 0 && rs[0] == n.ID()
}

// ecMaintain is the fragment-level anti-entropy and lazy-repair pass,
// appended to every replica-maintenance round. For each fragment map
// this node leads, probe every holder; enqueue missing/corrupt
// fragments; then drain the repair queue under the per-pass bandwidth
// budget.
func (n *Node) ecMaintain() {
	n.mu.Lock()
	entries := n.store.Entries()
	n.mu.Unlock()
	for _, e := range entries {
		// Content-on-demand engines (logstore) list metadata-only
		// entries; a fragment map is small, so re-read plausible
		// candidates before testing the magic.
		if e.Content == nil && e.Size > 0 && e.Size <= ec.MaxMapSize {
			n.mu.Lock()
			if full, ok := n.store.Get(e.File); ok {
				e = full
			}
			n.mu.Unlock()
		}
		if !ec.IsMap(e.Content) {
			continue
		}
		fmap, err := ec.DecodeMap(e.Content)
		if err != nil || !n.ecLeader(e.File) {
			continue
		}
		for idx, holder := range fmap.Holders {
			have := false
			if holder == n.ID() {
				_, have = n.frags.Has(e.File, idx)
			} else if n.net.Alive(holder) {
				res, err := n.net.Invoke(context.Background(), n.ID(), holder, &checkFragMsg{File: e.File, Index: idx})
				have = err == nil && res.(*checkFragReply).Have
			}
			if have {
				n.repairq.Drop(e.File, idx) // reappeared (e.g. transient partition)
			} else {
				n.repairq.Enqueue(ec.RepairItem{
					File: e.File, Index: idx,
					Cost: int64(fmap.ShardSize) * int64(fmap.Data+1),
				})
			}
		}
	}
	n.repairq.Drain(n.cfg.ECRepairBudget, n.repairFragment)
}

// repairFragment re-creates one lost fragment: fetch m survivors,
// rebuild the target shard, place it on a live node not already holding
// a fragment of the file, bump the map version, and propagate the new
// map to the other replica-set members. Returns the bytes moved and
// whether the repair succeeded; a failed repair is rediscovered by the
// next anti-entropy probe.
func (n *Node) repairFragment(it ec.RepairItem) (int64, bool) {
	n.mu.Lock()
	e, ok := n.store.Get(it.File)
	n.mu.Unlock()
	if !ok || !ec.IsMap(e.Content) {
		return 0, false // map reclaimed or migrated away; nothing to repair
	}
	fmap, err := ec.DecodeMap(e.Content)
	if err != nil || it.Index >= fmap.Params().Total() {
		return 0, false
	}
	enc, err := ecEncoder(fmap.Params())
	if err != nil {
		return 0, false
	}
	total := fmap.Params().Total()

	var moved int64
	shards := make([][]byte, total)
	have := 0
	for idx := 0; idx < total && have < fmap.Data; idx++ {
		if idx == it.Index {
			continue
		}
		data, b := n.ecFetchFragAt(fmap.Holders[idx], it.File, idx, fmap.CRCs[idx])
		moved += b
		if data != nil {
			shards[idx] = data
			have++
		}
	}
	if have < fmap.Data {
		return moved, false // object is below m survivors; nothing to rebuild from
	}
	dst := make([]byte, fmap.ShardSize)
	if err := enc.ReconstructInto(shards, it.Index, dst); err != nil {
		return moved, false
	}
	if ec.Checksum(dst) != fmap.CRCs[it.Index] {
		return moved, false // rebuilt shard does not match the map: refuse to spread it
	}

	// Re-place: prefer the original holder (it may have restarted
	// empty), then any close node not holding another fragment of this
	// file, keeping the one-fragment-per-node spread.
	taken := make(map[id.Node]bool, total)
	for idx, h := range fmap.Holders {
		if idx != it.Index {
			taken[h] = true
		}
	}
	cands := []id.Node{fmap.Holders[it.Index]}
	for _, c := range n.overlay.FragmentTargets(it.File.Key(), n.overlay.Config().L+1) {
		if !taken[c] && c != fmap.Holders[it.Index] {
			cands = append(cands, c)
		}
	}
	sf := &storeFragMsg{File: it.File, Index: it.Index, Version: fmap.Version + 1, Data: dst, CRC: fmap.CRCs[it.Index]}
	for _, c := range cands {
		if c != n.ID() && !n.net.Alive(c) {
			continue
		}
		if !n.ecStoreFragAt(c, sf) {
			continue
		}
		moved += int64(len(dst))
		fmap.Holders[it.Index] = c
		fmap.Version++
		raw := fmap.Encode()
		n.handleMapUpdate(&mapUpdateMsg{Raw: raw})
		for _, r := range n.overlay.ReplicaSet(it.File.Key(), n.cfg.K) {
			if r == n.ID() {
				continue
			}
			_, _ = n.net.Invoke(context.Background(), n.ID(), r, &mapUpdateMsg{Raw: raw})
		}
		return moved, true
	}
	return moved, false
}

// ECInfo reports the coding parameters of a file whose map this node
// replicates (the invariant checkers' hook).
func (n *Node) ECInfo(f id.File) (data, total int, ok bool) {
	n.mu.Lock()
	e, held := n.store.Get(f)
	n.mu.Unlock()
	if !held || !ec.IsMap(e.Content) {
		return 0, 0, false
	}
	fmap, err := ec.DecodeMap(e.Content)
	if err != nil {
		return 0, 0, false
	}
	return fmap.Data, fmap.Params().Total(), true
}

// FragIndices reports the fragment indices this node holds for a file.
func (n *Node) FragIndices(f id.File) []int { return n.frags.Indices(f) }

// RepairQueue returns the node's lazy-repair queue (tests and drivers).
func (n *Node) RepairQueue() *ec.RepairQueue { return n.repairq }

// FragBytes returns the bytes pledged to fragments on this node.
func (n *Node) FragBytes() int64 { return n.frags.Bytes() }
