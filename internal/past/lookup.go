package past

import (
	"context"
	"fmt"

	"past/internal/id"
	"past/internal/obs"
	"past/internal/store"
)

// LookupResult reports the outcome of a Lookup.
type LookupResult struct {
	Found bool
	Size  int64
	// Content is the file payload (nil under size-only accounting).
	Content []byte
	// FromCache reports whether a cached copy (rather than one of the k
	// replicas) served the request.
	FromCache bool
	// Hops is the total fetch distance in overlay hops: routing hops to
	// the serving node plus the pointer chase to a diverted replica, if
	// any. A request served by the access point itself costs 0.
	Hops int
	// Indirect reports that the lookup reached a diverted replica
	// through a pointer — the one additional RPC the paper charges to
	// replica diversion (section 3.3).
	Indirect bool
	// Negative reports that the not-found answer came from this node's
	// negative cache — a recent full lookup already missed, so the
	// request was not routed at all. Only possible when the cache
	// engine's negative cache is enabled.
	Negative bool
	// Trace holds the per-hop route records of the attempt that produced
	// this result, when the operation was sampled by Config.Tracer.
	Trace []obs.HopRecord
}

// Lookup retrieves the file with the given fileId. Requests are routed
// toward the fileId and served by the first node along the route holding
// the file — with high probability a node near the client, given
// Pastry's locality properties and the k adjacent replicas. Successful
// lookups leave cached copies of the file on the nodes along the route.
func (n *Node) Lookup(f id.File) (*LookupResult, error) {
	return n.LookupContext(context.Background(), f)
}

// LookupContext is Lookup bounded by a context. When Config.Retry is
// set, the request runs under the resilience layer: per-attempt
// deadlines, backoff retries on transient routing failures AND on
// not-found results (a miss under faults may be spurious — the replicas
// exist but the route was cut short), and hedged attempts through a
// different first hop when the policy enables them.
func (n *Node) LookupContext(ctx context.Context, f id.File) (*LookupResult, error) {
	n.st().Lookups.Add(1)
	// A recent full lookup already came back not-found: answer locally
	// without routing. Any insert evidence for f invalidates the entry,
	// so a false negative lasts only until the file is next sighted.
	if n.cache.NegativeHit(f) {
		return &LookupResult{Found: false, Negative: true}, nil
	}
	return n.lookupTraced(ctx, f, n.cfg.Tracer.ShouldSample())
}

// LookupTraced is LookupContext under an explicit trace context: the
// route is always hop-recorded (regardless of the sampling tracer), the
// trace context propagates across process boundaries so remote relays
// keep recording under the same trace id, and the negative cache is
// bypassed — a trace that never left the access point would show no
// route. `pastctl trace` reaches this through the ClientLookup RPC.
func (n *Node) LookupTraced(ctx context.Context, f id.File, tc obs.TraceContext) (*LookupResult, error) {
	n.st().Lookups.Add(1)
	ctx = obs.ContextWithTrace(ctx, tc)
	return n.lookupTraced(ctx, f, true)
}

// lookupTraced runs the routed lookup under the resilience layer (when
// configured), optionally hop-recording the route.
func (n *Node) lookupTraced(ctx context.Context, f id.File, traced bool) (*LookupResult, error) {
	pol, hasPol := n.policy()
	attempt := func(actx context.Context) (any, error) {
		if !hasPol {
			return n.lookupOnce(actx, f, id.Node{}, traced)
		}
		out, err := n.hedged(actx, pol, f.Key(),
			func(rctx context.Context, avoid id.Node) (any, error) {
				return n.lookupOnce(rctx, f, avoid, traced)
			},
			func(res any) bool {
				lr, ok := res.(*LookupResult)
				return ok && lr.Found
			})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	out, err := n.retryLoop(ctx, func(res any) bool {
		lr, ok := res.(*LookupResult)
		return !ok || !lr.Found
	}, attempt)
	if err != nil {
		if traced {
			n.cfg.Tracer.Add(&obs.Trace{Op: "lookup", Key: f.Key(), Err: err.Error()})
		}
		return nil, err
	}
	res, _ := out.(*LookupResult)
	if res == nil {
		res = &LookupResult{Found: false}
	}
	if !res.Found {
		// A completed route answered not-found (transient routing
		// failures surface as errors above, not here): remember it so
		// repeated lookups for the absent file stop consuming routing.
		n.cache.NoteMiss(f)
	}
	if traced {
		routeHops := res.Hops
		if res.Indirect {
			routeHops-- // the pointer chase is not a routing hop
		}
		n.cfg.Tracer.Add(&obs.Trace{
			Op: "lookup", Key: f.Key(),
			Hops: res.Trace, RouteHops: routeHops, OK: res.Found,
		})
	}
	return res, nil
}

// lookupOnce performs a single routed lookup attempt. A non-zero avoid
// is excluded as the first hop (a hedge steering around the primary's
// entry point). With traced set, the attempt records its per-hop route
// into the result.
func (n *Node) lookupOnce(ctx context.Context, f id.File, avoid id.Node, traced bool) (*LookupResult, error) {
	var (
		reply any
		hops  int
		trace []obs.HopRecord
		err   error
	)
	msg := &LookupMsg{File: f}
	switch {
	case traced && avoid.IsZero():
		reply, hops, trace, err = n.overlay.RouteTracedContext(ctx, f.Key(), msg)
	case traced:
		reply, hops, trace, err = n.overlay.RouteAvoidingTraced(ctx, f.Key(), msg, avoid)
	case avoid.IsZero():
		reply, hops, err = n.overlay.RouteContext(ctx, f.Key(), msg)
	default:
		reply, hops, err = n.overlay.RouteAvoiding(ctx, f.Key(), msg, avoid)
	}
	if err != nil {
		return nil, fmt.Errorf("past: lookup %s: %w", f.Short(), err)
	}
	lr, ok := reply.(*LookupReply)
	if !ok {
		return nil, fmt.Errorf("past: lookup %s: unexpected reply %T", f.Short(), reply)
	}
	if !lr.Found {
		return &LookupResult{Found: false, Hops: hops, Trace: trace}, nil
	}
	if n.cfg.VerifyCerts && lr.Cert != nil {
		if err := lr.Cert.Verify(n.cfg.Issuer, lr.Content); err != nil {
			return nil, fmt.Errorf("past: lookup %s: content failed verification: %w", f.Short(), err)
		}
	}
	return &LookupResult{
		Found:     true,
		Size:      lr.Size,
		Content:   lr.Content,
		FromCache: lr.FromCache,
		Hops:      hops + lr.ExtraHops,
		Indirect:  lr.ExtraHops > 0,
		Trace:     trace,
	}, nil
}

// Exists reports whether a lookup for f would succeed, without caching
// side effects on this node. (Intermediate nodes still observe the
// routed request.)
func (n *Node) Exists(f id.File) (bool, error) {
	res, err := n.Lookup(f)
	if err != nil {
		return false, err
	}
	return res.Found, nil
}

// HasReplica reports whether this node itself holds a replica of f
// (primary or diverted-in), for tests and invariant checks.
func (n *Node) HasReplica(f id.File) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.store.Get(f)
	return ok
}

// HasPointer reports whether this node holds a diverted-replica pointer
// for f, and the pointer target.
func (n *Node) HasPointer(f id.File) (id.Node, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.store.GetPointer(f)
	return p.Target, ok
}

// ReplicaKind returns the kind (primary vs diverted-in) of this node's
// replica of f, if it holds one.
func (n *Node) ReplicaKind(f id.File) (store.Kind, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.store.Get(f)
	return e.Kind, ok
}

// CacheContains reports whether f is cached on this node, without
// touching recency state.
func (n *Node) CacheContains(f id.File) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cache.Contains(f)
}
