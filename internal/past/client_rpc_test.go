package past

import (
	"math/rand"
	"testing"

	"past/internal/id"
	"past/internal/obs"
)

// TestClientReplicaReport: the batch local-state RPC must answer
// without routing — each node reports exactly its own holds, and the
// union over the cluster matches the ground-truth HasReplica walk the
// emulator's invariant checker performs.
func TestClientReplicaReport(t *testing.T) {
	c, err := NewCluster(ClusterSpec{
		N:        12,
		Cfg:      DefaultConfig(),
		Capacity: func(i int, r *rand.Rand) int64 { return 1 << 20 },
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}

	var files []id.File
	for i := 0; i < 6; i++ {
		res, err := c.Nodes[i%len(c.Nodes)].Insert(InsertSpec{
			Name:    "report-" + string(rune('a'+i)),
			Content: []byte{byte(i), 1, 2, 3},
		})
		if err != nil || !res.OK {
			t.Fatalf("insert %d: %v %+v", i, err, res)
		}
		files = append(files, res.FileID)
	}
	// Unknown file: every hold must come back empty.
	var absent id.File
	absent[0] = 0xFF
	files = append(files, absent)

	for _, n := range c.Nodes {
		reply, err := n.handleClientRPC(obs.TraceContext{}, &ClientReplicaReport{Files: files})
		if err != nil {
			t.Fatal(err)
		}
		rep, ok := reply.(*ClientReplicaReportReply)
		if !ok {
			t.Fatalf("unexpected reply %T", reply)
		}
		if rep.Node != n.ID() {
			t.Fatalf("reply names %s, served by %s", rep.Node.Short(), n.ID().Short())
		}
		if len(rep.Holds) != len(files) {
			t.Fatalf("got %d holds for %d files", len(rep.Holds), len(files))
		}
		for i, f := range files {
			h := rep.Holds[i]
			if h.Has != n.HasReplica(f) {
				t.Fatalf("node %s file %s: reported Has=%v, ground truth %v",
					n.ID().Short(), f.Short(), h.Has, n.HasReplica(f))
			}
			tgt, hasPtr := n.HasPointer(f)
			if h.HasPtr != hasPtr || (hasPtr && h.Ptr != tgt) {
				t.Fatalf("node %s file %s: pointer mismatch", n.ID().Short(), f.Short())
			}
			if f == absent && (h.Has || h.HasPtr) {
				t.Fatalf("node %s reported a hold for a never-inserted file", n.ID().Short())
			}
		}
	}

	// Every real file has at least one replica somewhere.
	for _, f := range files[:len(files)-1] {
		total := 0
		for _, n := range c.Nodes {
			if n.HasReplica(f) {
				total++
			}
		}
		if total == 0 {
			t.Fatalf("file %s has no replicas in the emulated cluster", f.Short())
		}
	}
}
