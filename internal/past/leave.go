package past

import (
	"context"
	"past/internal/id"
	"past/internal/store"
)

// Graceful departure. The paper's maintenance recovers from abrupt
// failures (section 3.5); an operator-initiated shutdown can do better:
// while still reachable, the node copies each primary replica to the
// node that becomes responsible for it, asks the owners of the diverted
// replicas it holds to re-home them, and announces its departure so
// routes avoid it immediately. pastd runs this on SIGTERM.

// divertedHolderLeaving tells the owner of a diverted replica that the
// node holding it is departing, so the owner must re-create the replica
// now (it can still fetch the content from the departing holder).
type divertedHolderLeaving struct {
	File id.File
}

func (n *Node) handleDivertedHolderLeaving(m *divertedHolderLeaving) any {
	n.mu.Lock()
	p, ok := n.store.GetPointer(m.File)
	if ok && p.Role == store.DivertedOut {
		n.store.RemovePointer(m.File)
	}
	n.mu.Unlock()
	if ok {
		n.reacquireSelf(m.File)
	}
	return &ackMsg{}
}

// LeaveResult reports the departure hand-off.
type LeaveResult struct {
	// Offloaded counts replicas successfully re-homed.
	Offloaded int
	// Failed counts replicas that could not be placed anywhere (the
	// replica set drops below k for those files until maintenance or
	// new capacity catches up).
	Failed int
	// OwnersNotified counts diverted-replica owners told to re-home.
	OwnersNotified int
}

// Leave gracefully removes this node from the storage network. After it
// returns, the caller should take the node off the network (close its
// transport or deregister its endpoint).
func (n *Node) Leave() *LeaveResult {
	res := &LeaveResult{}
	n.mu.Lock()
	n.leaving = true // refuse new replicas while handing off
	entries := n.store.Entries()
	n.mu.Unlock()
	k := n.cfg.K

	for _, e := range entries {
		switch e.Kind {
		case store.Primary:
			key := e.File.Key()
			// The nodes responsible once we are gone: the k closest
			// among our leaf set, excluding ourselves.
			placed := false
			for _, r := range n.overlay.ReplicaSet(key, k+1) {
				if r == n.ID() {
					continue
				}
				reply, err := n.net.Invoke(context.Background(), n.ID(), r, &acquireMsg{
					File: e.File, Key: key, Size: e.Size, K: k,
					Holder: n.ID(), HolderLeaving: false, // force a real copy
				})
				if err != nil {
					continue
				}
				switch reply.(*acquireReply).Status {
				case acquireAlreadyHave, acquireStored:
					placed = true
				}
			}
			if placed {
				res.Offloaded++
			} else {
				res.Failed++
				n.mu.Lock()
				n.belowK++
				n.mu.Unlock()
			}
		case store.DivertedIn:
			// Tell the referring node to re-home its replica while our
			// copy is still fetchable.
			if !e.Owner.IsZero() {
				if _, err := n.net.Invoke(context.Background(), n.ID(), e.Owner, &divertedHolderLeaving{File: e.File}); err == nil {
					res.OwnersNotified++
				}
			}
		}
	}

	n.overlay.Depart()
	return res
}
