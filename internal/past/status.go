package past

import (
	"past/internal/id"
	"past/internal/obs"
	"past/internal/store"
)

// Status is an operator-visible snapshot of one node, served to remote
// clients via the ClientStatus RPC (pastctl status).
type Status struct {
	ID       id.Node
	Joined   bool
	Capacity int64
	Used     int64
	Free     int64

	Replicas     int // total replicas held
	DivertedIn   int // held on behalf of other nodes
	PointersOut  int // diverted-out references
	BackupPtrs   int // k+1-th-closest backup references
	CacheBytes   int64
	CacheEntries int
	CacheHits    int64
	CacheMisses  int64

	LeafSetSize  int
	TableEntries int
	BelowKEvents int64
}

// Status collects the snapshot.
func (n *Node) Status() Status {
	n.mu.Lock()
	st := Status{
		ID:       n.overlay.ID(),
		Capacity: n.store.Capacity(),
		Used:     n.store.Used(),
		Free:     n.store.Free(),
		Replicas: n.store.Len(),

		CacheBytes:   n.cache.Used(),
		CacheEntries: n.cache.Len(),
		BelowKEvents: n.belowK,
	}
	cst := n.cache.Stats()
	st.CacheHits, st.CacheMisses = cst.Hits(), cst.Misses
	for _, e := range n.store.Entries() {
		if e.Kind == store.DivertedIn {
			st.DivertedIn++
		}
	}
	for _, p := range n.store.Pointers() {
		if p.Role == store.DivertedOut {
			st.PointersOut++
		} else {
			st.BackupPtrs++
		}
	}
	n.mu.Unlock()

	st.Joined = n.overlay.Joined()
	st.LeafSetSize = len(n.overlay.LeafSet())
	st.TableEntries = n.overlay.TableSize()
	return st
}

// ClientStatus requests a node's Status snapshot.
type ClientStatus struct{}

// ClientStatusReply carries it back.
type ClientStatusReply struct {
	Status Status
}

// ClientStats requests a node's full observability snapshot (pastctl
// stats): every registry counter plus the store/cache/overlay gauges.
type ClientStats struct{}

// ClientStatsReply carries it back.
type ClientStatsReply struct {
	Stats obs.Snapshot
}
