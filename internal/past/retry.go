package past

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/netsim"
)

// RetryPolicy configures the client-side resilience layer around
// Insert, Lookup, and Reclaim: a budget of attempts separated by capped
// exponential backoff with deterministic seeded jitter, a per-attempt
// deadline, and (for lookups) hedging — a second attempt through a
// different first hop, exploiting the k replicas the system already
// pays for. A nil *RetryPolicy on Config disables the layer entirely:
// one attempt, no deadline, exactly the pre-resilience behavior.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per operation, including
	// the first. Zero or negative selects 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it, capped at MaxDelay. Zero means no backoff
	// sleeps, which is what the deterministic soak uses (the emulated
	// network has no real latency to wait out).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Zero with a positive
	// BaseDelay selects 32x BaseDelay.
	MaxDelay time.Duration
	// JitterSeed seeds the jitter RNG; a fixed seed makes the backoff
	// sequence (and therefore the whole retry schedule) reproducible.
	JitterSeed int64
	// Timeout bounds each individual attempt (the per-request deadline
	// layered over the per-RPC HopTimeout). Zero leaves attempts
	// bounded only by the caller's context.
	Timeout time.Duration
	// Hedge enables hedged lookups.
	Hedge bool
	// HedgeDelay selects the hedging mode. Zero is the sequential
	// failover hedge: the second attempt starts only after the first
	// fails, entering the overlay through a different first hop — fully
	// deterministic, so it is the mode the reproducible chaos soak
	// runs. A positive delay is the classical concurrent hedge: if the
	// primary has not answered within the delay, a second attempt races
	// it and the first success wins, the loser cancelled.
	HedgeDelay time.Duration
	// Sleep replaces time.Sleep for backoff waits (virtual-time
	// harnesses). Nil uses time.Sleep; with BaseDelay 0 it is never
	// called.
	Sleep func(time.Duration)
	// OverloadFactor multiplies the backoff before a retry whose
	// previous attempt failed with netsim.ErrOverloaded. An overloaded
	// replica needs its queue to drain, not an eager re-attempt that
	// deepens it — so overload backs off harder than a dead-node
	// timeout. Zero selects 2; 1 disables the extra backoff.
	OverloadFactor float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.MaxDelay == 0 && p.BaseDelay > 0 {
		p.MaxDelay = 32 * p.BaseDelay
	}
	if p.OverloadFactor <= 0 {
		p.OverloadFactor = 2
	}
	return p
}

// backoff returns the wait before retry number attempt (1-based):
// capped exponential growth from BaseDelay, jittered uniformly into
// [d/2, d] so synchronized clients spread out. The jitter draw comes
// from the policy's seeded RNG, so the schedule is reproducible.
func (p RetryPolicy) backoff(rng *rand.Rand, attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

func (p RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// ResilienceMonitor is the optional extension of Monitor that observes
// resilience-layer events; metrics.Collector implements it. A Monitor
// that does not is simply not called.
type ResilienceMonitor interface {
	// RecordRetry fires on every backed-off re-attempt of a client
	// operation.
	RecordRetry()
	// RecordHedge fires once per hedged attempt launched; won reports
	// whether the hedge, not the primary, supplied the result.
	RecordHedge(won bool)
	// RecordReroute fires when routing presumes a next hop failed and
	// moves to an alternate.
	RecordReroute()
	// RecordPartialInsert fires when an insert returns with fewer than
	// k replicas stored, leaving a repair debt for maintenance.
	RecordPartialInsert()
}

// resMon returns the monitor's resilience extension, if it has one.
func (n *Node) resMon() ResilienceMonitor {
	if rm, ok := n.cfg.Monitor.(ResilienceMonitor); ok {
		return rm
	}
	return nil
}

func (n *Node) recordRetry() {
	n.st().Retries.Add(1)
	if rm := n.resMon(); rm != nil {
		rm.RecordRetry()
	}
}

func (n *Node) recordHedge(won bool) {
	n.st().Hedges.Add(1)
	if won {
		n.st().HedgeWins.Add(1)
	}
	if rm := n.resMon(); rm != nil {
		rm.RecordHedge(won)
	}
}

func (n *Node) recordPartialInsert() {
	n.st().PartialInserts.Add(1)
	if rm := n.resMon(); rm != nil {
		rm.RecordPartialInsert()
	}
}

// retryState holds the node's per-policy RNG, created lazily so a Node
// without a policy pays nothing.
type retryState struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (n *Node) retryJitter(pol RetryPolicy, attempt int) time.Duration {
	n.retry.mu.Lock()
	defer n.retry.mu.Unlock()
	if n.retry.rng == nil {
		n.retry.rng = rand.New(rand.NewSource(pol.JitterSeed))
	}
	return pol.backoff(n.retry.rng, attempt)
}

// retryLoop runs one client operation under the node's retry policy.
// fn performs a single attempt under its context (which carries the
// per-attempt deadline when the policy sets one). An attempt is retried
// when it fails with a transient delivery error (netsim.Retryable), or
// when unsatisfied reports its result as a soft failure — a lookup that
// came back not-found under faults may be a spurious miss worth another
// attempt. Fatal errors, context expiry, and budget exhaustion return
// the last outcome.
func (n *Node) retryLoop(ctx context.Context, unsatisfied func(any) bool, fn func(context.Context) (any, error)) (any, error) {
	pol, ok := n.policy()
	if !ok {
		return fn(ctx)
	}
	var last any
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			n.recordRetry()
			d := n.retryJitter(pol, attempt)
			if lastErr != nil && errors.Is(lastErr, netsim.ErrOverloaded) {
				// Retryable-with-extra-backoff: give the shedding node's
				// queue time to drain before offering it more work.
				d = time.Duration(float64(d) * pol.OverloadFactor)
			}
			pol.sleep(d)
			if err := netsim.CtxErr(ctx); err != nil {
				break
			}
		}
		actx := ctx
		var cancel context.CancelFunc
		if pol.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, pol.Timeout)
		}
		res, err := fn(actx)
		if cancel != nil {
			cancel()
		}
		last, lastErr = res, err
		if err != nil {
			if netsim.Retryable(err) && netsim.CtxErr(ctx) == nil {
				continue
			}
			return res, err
		}
		if unsatisfied != nil && unsatisfied(res) {
			continue
		}
		return res, nil
	}
	return last, lastErr
}

// policy returns the effective retry policy and whether one is set.
func (n *Node) policy() (RetryPolicy, bool) {
	if n.cfg.Retry == nil {
		return RetryPolicy{}, false
	}
	return n.cfg.Retry.withDefaults(), true
}

// hedged runs one lookup-style attempt with hedging per the policy.
// route performs the attempt; avoid, when non-zero, is excluded as the
// first hop (the hedge's entry-point diversity). ok classifies a
// returned reply as a success worth winning with.
func (n *Node) hedged(ctx context.Context, pol RetryPolicy, key id.Node,
	route func(ctx context.Context, avoid id.Node) (any, error),
	ok func(any) bool) (any, error) {

	if !pol.Hedge {
		return route(ctx, id.Node{})
	}
	primaryHop := n.overlay.FirstHop(key)
	if !primaryHop.IsZero() && n.steerAroundLoad(primaryHop) {
		// The preferred entry point advertised saturation via a load
		// hint: swap the roles so the *primary* attempt enters through
		// an alternate first hop and the loaded one is only tried as
		// the fallback. No RNG draws — deterministic under fixed seeds.
		n.st().LoadSteers.Add(1)
		inner := route
		route = func(ctx context.Context, avoid id.Node) (any, error) {
			if avoid.IsZero() {
				return inner(ctx, primaryHop)
			}
			return inner(ctx, id.Node{})
		}
	}
	if pol.HedgeDelay <= 0 {
		return n.hedgeSequential(ctx, primaryHop, route, ok)
	}
	return n.hedgeConcurrent(ctx, pol, primaryHop, route, ok)
}

// loadSteerThreshold is the hint level (out of 255) above which hedged
// lookups proactively avoid a first hop: ~78% queue occupancy.
const loadSteerThreshold = 200

// steerAroundLoad reports whether hop's last known load hint crosses
// the steering threshold. A consumed hint decays by half so avoidance
// is not permanent: unless fresh replies or sheds renew the signal, the
// hop is offered traffic again after a few operations.
func (n *Node) steerAroundLoad(hop id.Node) bool {
	n.loadMu.Lock()
	defer n.loadMu.Unlock()
	h := n.loadHints[hop]
	if h < loadSteerThreshold {
		return false
	}
	n.loadHints[hop] = h / 2
	return true
}

// hedgeSequential is the deterministic failover hedge: run the primary
// attempt to completion; only if it fails (transiently) or comes back
// unsatisfied does the hedge run, entering through a different first
// hop. Under the synchronous emulation an attempt completes in zero
// virtual time, so any positive virtual hedge delay could never fire
// before the primary resolved — sequential failover is the limit case,
// and it consumes no RNG draws from racing goroutines, preserving
// bit-reproducible chaos fingerprints.
func (n *Node) hedgeSequential(ctx context.Context, primaryHop id.Node,
	route func(ctx context.Context, avoid id.Node) (any, error),
	ok func(any) bool) (any, error) {

	res, err := route(ctx, id.Node{})
	if err == nil && ok(res) {
		return res, nil
	}
	if err != nil && !netsim.Retryable(err) {
		return res, err
	}
	if primaryHop.IsZero() || netsim.CtxErr(ctx) != nil {
		return res, err // no distinct entry point, or out of time
	}
	hres, herr := route(ctx, primaryHop)
	if herr == nil && ok(hres) {
		n.recordHedge(true)
		return hres, nil
	}
	n.recordHedge(false)
	// Prefer the primary's outcome: it is the attempt a policy-less
	// client would have made.
	if err != nil || hres == nil {
		return res, err
	}
	if herr == nil && res == nil {
		return hres, herr
	}
	return res, err
}

// hedgeConcurrent is the classical hedge: the primary attempt runs on
// its own goroutine; if it has not resolved within HedgeDelay, a second
// attempt races it through a different first hop. The first success
// wins and the loser's context is cancelled. Exactly one of the two
// supplies the returned result.
func (n *Node) hedgeConcurrent(ctx context.Context, pol RetryPolicy, primaryHop id.Node,
	route func(ctx context.Context, avoid id.Node) (any, error),
	ok func(any) bool) (any, error) {

	type outcome struct {
		res any
		err error
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	prim := make(chan outcome, 1)
	go func() {
		res, err := route(pctx, id.Node{})
		prim <- outcome{res, err}
	}()

	var primOut *outcome
	timer := time.NewTimer(pol.HedgeDelay)
	defer timer.Stop()
	select {
	case out := <-prim:
		if out.err == nil && ok(out.res) {
			return out.res, nil
		}
		if out.err != nil && !netsim.Retryable(out.err) {
			return out.res, out.err
		}
		primOut = &out // primary already failed; hedge immediately
	case <-timer.C:
		// Primary still in flight past the hedge delay.
	case <-ctx.Done():
		return nil, netsim.CtxErr(ctx)
	}
	if primaryHop.IsZero() {
		if primOut != nil {
			return primOut.res, primOut.err
		}
		out := <-prim
		return out.res, out.err
	}

	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	hch := make(chan outcome, 1)
	go func() {
		res, err := route(hctx, primaryHop)
		hch <- outcome{res, err}
	}()

	var hedgeOut *outcome
	for primOut == nil || hedgeOut == nil {
		select {
		case out := <-prim:
			primOut = &out
			if out.err == nil && ok(out.res) {
				hcancel() // hedge lost: cancel it
				n.recordHedge(false)
				return out.res, nil
			}
		case out := <-hch:
			hedgeOut = &out
			if out.err == nil && ok(out.res) {
				pcancel() // primary lost: cancel it
				n.recordHedge(true)
				return out.res, nil
			}
		case <-ctx.Done():
			return nil, netsim.CtxErr(ctx)
		}
	}
	// Both resolved without a satisfying result: report the primary's.
	n.recordHedge(false)
	return primOut.res, primOut.err
}
