package past

import (
	"fmt"
	"math/rand"
	"testing"

	"past/internal/id"
	"past/internal/topology"
)

// The paper's section 5 preamble: "It was verified that the storage
// invariants are maintained properly despite random node failures and
// recoveries." These tests are that verification.

func TestChurnFailuresPreserveInvariant(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 50, cfg, 1<<20, 20)
	client := c.RandomAliveNode()

	var files []id.File
	for i := 0; i < 60; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("churn-%d", i), Size: 2048})
		if err != nil || !res.OK {
			t.Fatalf("insert %d: %v %+v", i, err, res)
		}
		files = append(files, res.FileID)
	}

	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 3; round++ {
		// Fail 3 random live nodes (never the client).
		alive := c.Net.AliveNodes()
		rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		failed := 0
		for _, nid := range alive {
			if nid == client.ID() {
				continue
			}
			c.Fail(nid)
			failed++
			if failed == 3 {
				break
			}
		}

		// Keep-alive rounds detect the failures; leaf-set repair fires
		// the maintenance that re-creates lost replicas.
		c.Maintain()
		c.Maintain()

		for _, f := range files {
			assertReplicaInvariant(t, c, f, cfg.K)
			got, err := client.Lookup(f)
			if err != nil {
				t.Fatalf("round %d: lookup %s: %v", round, f.Short(), err)
			}
			if !got.Found {
				t.Fatalf("round %d: file %s lost", round, f.Short())
			}
		}
	}
}

func TestChurnRecoveryPreservesInvariant(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 40, cfg, 1<<20, 22)
	client := c.Nodes[0]

	var files []id.File
	for i := 0; i < 40; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("rec-%d", i), Size: 1024})
		if err != nil || !res.OK {
			t.Fatalf("insert %d failed", i)
		}
		files = append(files, res.FileID)
	}

	// Fail two nodes, remembering their leaf sets for recovery.
	victims := []*Node{c.Nodes[5], c.Nodes[25]}
	lastLeaf := make(map[id.Node][]id.Node)
	for _, v := range victims {
		lastLeaf[v.ID()] = v.Overlay().LeafSet()
		c.Fail(v.ID())
	}
	c.Maintain()
	c.Maintain()
	for _, f := range files {
		assertReplicaInvariant(t, c, f, cfg.K)
	}

	// Recover them; they rejoin from their last known leaf sets.
	for _, v := range victims {
		c.Recover(v.ID())
		if err := v.Overlay().Rejoin(lastLeaf[v.ID()]); err != nil {
			t.Fatal(err)
		}
	}
	c.Maintain()
	c.Maintain()

	for _, f := range files {
		assertReplicaInvariant(t, c, f, cfg.K)
		got, err := client.Lookup(f)
		if err != nil || !got.Found {
			t.Fatalf("post-recovery lookup %s: %v %+v", f.Short(), err, got)
		}
	}
}

func TestJoinTriggersReplicaMigration(t *testing.T) {
	cfg := smallCfg()
	c := testCluster(t, 30, cfg, 1<<20, 23)
	client := c.Nodes[0]

	var files []id.File
	for i := 0; i < 50; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("mig-%d", i), Size: 512})
		if err != nil || !res.OK {
			t.Fatalf("insert %d failed", i)
		}
		files = append(files, res.FileID)
	}

	// Add 10 new nodes; some become among-the-k-closest for existing
	// files and must acquire replicas (or pointers).
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 10; i++ {
		var nid id.Node
		rng.Read(nid[:])
		node := New(nid, c.Net, cfg, 1<<20, rng.Int63())
		pos := randomPos(rng)
		c.Net.Register(nid, pos, node)
		if err := node.Overlay().Join(c.closestExisting(pos)); err != nil {
			t.Fatal(err)
		}
		c.Nodes = append(c.Nodes, node)
		c.ByID[nid] = node
	}
	c.Maintain()

	for _, f := range files {
		assertReplicaInvariant(t, c, f, cfg.K)
		got, err := client.Lookup(f)
		if err != nil || !got.Found {
			t.Fatalf("post-join lookup %s failed", f.Short())
		}
	}
}

func TestDivertedReplicaSurvivesReferrerFailure(t *testing.T) {
	// Section 3.3 condition (2): the failure of the diverting node A must
	// not orphan the replica on B — node C's backup pointer keeps it
	// reachable and maintenance restores the invariant.
	cfg := smallCfg()
	c, err := NewCluster(ClusterSpec{
		N:   40,
		Cfg: cfg,
		Capacity: func(i int, _ *rand.Rand) int64 {
			if i%2 == 0 {
				return 30_000
			}
			return 300_000
		},
		Seed: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := c.RandomAliveNode()

	// Insert until some file gets a diverted replica.
	var f id.File
	var diverter id.Node
	for i := 0; i < 400 && diverter.IsZero(); i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("d-%d", i), Size: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			break
		}
		if res.Diverted > 0 {
			f = res.FileID
			for _, nid := range c.GlobalClosest(f.Key(), cfg.K) {
				if _, ok := c.ByID[nid].HasPointer(f); ok {
					diverter = nid
					break
				}
			}
		}
	}
	if diverter.IsZero() {
		t.Skip("no diversion with a pointer at a k-closest node materialized")
	}

	c.Fail(diverter)
	c.Maintain()
	c.Maintain()

	assertReplicaInvariant(t, c, f, cfg.K)
	got, err := client.Lookup(f)
	if err != nil || !got.Found {
		t.Fatalf("file with diverted replica lost after referrer failure: %v %+v", err, got)
	}
}

func TestBelowKAccounting(t *testing.T) {
	// When the whole neighborhood is full, maintenance cannot re-create
	// replicas and must count the below-k condition rather than loop or
	// crash.
	cfg := smallCfg()
	c := testCluster(t, 12, cfg, 4_000, 26)
	client := c.Nodes[0]
	for i := 0; i < 100; i++ {
		res, err := client.Insert(InsertSpec{Name: fmt.Sprintf("full-%d", i), Size: 300})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			break
		}
	}
	// Fail a node; survivors try to re-create its replicas into a full
	// system.
	c.Fail(c.Nodes[6].ID())
	c.Maintain()
	c.Maintain()
	// The run must terminate (no livelock) — reaching here is the test;
	// belowK may or may not have incremented depending on placement.
	var total int64
	for _, n := range c.Nodes {
		total += n.BelowKEvents()
	}
	t.Logf("below-k events: %d", total)
}

// randomPos returns a random plane position for ad-hoc node additions.
func randomPos(r *rand.Rand) topology.Point {
	return topology.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
}
