package past

import (
	"context"
	"encoding/gob"

	"past/internal/id"
	"past/internal/obs"
	"past/internal/pastry"
	"past/internal/store"
)

// Client RPCs: a PAST node doubles as the access point for remote
// clients (cmd/pastctl). These messages arrive over the TCP transport
// and are served by running the corresponding local operation. Owner
// smartcards never leave the client, so remote operations run without
// certificates; deployments that require them run the client library
// in-process instead.

// ClientInsert asks the receiving node to insert a file on the caller's
// behalf.
type ClientInsert struct {
	Name    string
	Content []byte
	K       int
}

// ClientInsertReply reports the outcome.
type ClientInsertReply struct {
	OK       bool
	FileID   id.File
	Attempts int
	Reason   string
}

// ClientLookup asks the receiving node to retrieve a file.
type ClientLookup struct {
	File id.File
}

// ClientLookupReply carries the file back to the client. When the
// request arrived under an active trace context, Trace carries the
// stitched per-hop route records (spanning every process the route
// crossed) and TraceID echoes the trace id they were collected under.
type ClientLookupReply struct {
	Found     bool
	Size      int64
	Content   []byte
	FromCache bool
	Hops      int
	Trace     []obs.HopRecord
	TraceID   uint64
}

// ClientObsReport asks the receiving node for its full observability
// snapshot plus its identity, in one round trip. It is the fleet
// scraper's primary collection path; the node's /metrics debug endpoint
// is the fallback.
type ClientObsReport struct{}

// ClientObsReportReply carries the snapshot back.
type ClientObsReportReply struct {
	Node     id.Node
	Snapshot obs.Snapshot
}

// ClientReplicaReport asks the receiving node what it holds LOCALLY
// for each listed file — replica (and its kind) and diverted-replica
// pointer. It never routes. The past-cluster orchestrator snapshots
// every live node with one of these and feeds the result to the same
// chaos.Checker invariants the emulator enforces.
type ClientReplicaReport struct {
	Files []id.File
}

// ReplicaHold is one file's local state on one node.
type ReplicaHold struct {
	Has     bool    // node holds a replica (primary or diverted-in)
	Primary bool    // the replica is primary (meaningful when Has)
	HasPtr  bool    // node holds a diverted-replica pointer
	Ptr     id.Node // the pointer target (meaningful when HasPtr)
	// Erasure-coding state: when the held replica is a fragment map,
	// ECTotal > 0 carries the coding shape; Frags lists the fragment
	// indices this node holds locally (independent of Has — fragment
	// holders usually don't replicate the map).
	ECData  int
	ECTotal int
	Frags   []int
}

// ClientReplicaReportReply carries the per-file holds, parallel to the
// request's Files, plus the responder's identity.
type ClientReplicaReportReply struct {
	Node  id.Node
	Holds []ReplicaHold
}

// ClientReclaim asks the receiving node to reclaim a file's storage.
type ClientReclaim struct {
	File id.File
}

// ClientReclaimReply reports the reclaimed bytes.
type ClientReclaimReply struct {
	Found bool
	Freed int64
}

// handleClientRPC serves the client messages; it returns (nil, nil) for
// non-client messages. A non-zero trace context (stamped on the wire
// envelope by the client's transport) turns a ClientLookup into a
// hop-recorded lookup whose reply carries the full cross-process route.
func (n *Node) handleClientRPC(tc obs.TraceContext, msg any) (any, error) {
	switch m := msg.(type) {
	case *ClientInsert:
		res, err := n.Insert(InsertSpec{Name: m.Name, Content: m.Content, K: m.K})
		if err != nil {
			return nil, err
		}
		return &ClientInsertReply{OK: res.OK, FileID: res.FileID, Attempts: res.Attempts, Reason: res.Reason}, nil
	case *ClientLookup:
		var res *LookupResult
		var err error
		if tc.Active() {
			res, err = n.LookupTraced(context.Background(), m.File, tc)
		} else {
			res, err = n.Lookup(m.File)
		}
		if err != nil {
			return nil, err
		}
		reply := &ClientLookupReply{Found: res.Found, Size: res.Size, Content: res.Content,
			FromCache: res.FromCache, Hops: res.Hops}
		if tc.Active() {
			reply.Trace, reply.TraceID = res.Trace, tc.ID
		}
		return reply, nil
	case *ClientReclaim:
		res, err := n.Reclaim(m.File, nil)
		if err != nil {
			return nil, err
		}
		return &ClientReclaimReply{Found: res.Found, Freed: res.Freed}, nil
	case *ClientReplicaReport:
		reply := &ClientReplicaReportReply{
			Node:  n.ID(),
			Holds: make([]ReplicaHold, len(m.Files)),
		}
		for i, f := range m.Files {
			h := &reply.Holds[i]
			if kind, ok := n.ReplicaKind(f); ok {
				h.Has = true
				h.Primary = kind == store.Primary
			}
			if tgt, ok := n.HasPointer(f); ok {
				h.HasPtr, h.Ptr = true, tgt
			}
			if data, total, ok := n.ECInfo(f); ok {
				h.ECData, h.ECTotal = data, total
			}
			h.Frags = n.FragIndices(f)
		}
		return reply, nil
	case *ClientStatus:
		return &ClientStatusReply{Status: n.Status()}, nil
	case *ClientStats:
		return &ClientStatsReply{Stats: n.StatsSnapshot()}, nil
	case *ClientObsReport:
		return &ClientObsReportReply{Node: n.ID(), Snapshot: n.StatsSnapshot()}, nil
	}
	return nil, nil
}

// RegisterWire registers every PAST and Pastry message type with the
// gob codec used by the TCP transport.
func RegisterWire() {
	pastry.RegisterWire()
	gob.Register(&InsertMsg{})
	gob.Register(&InsertReply{})
	gob.Register(&LookupMsg{})
	gob.Register(&LookupReply{})
	gob.Register(&ReclaimMsg{})
	gob.Register(&ReclaimReply{})
	gob.Register(&storeReplicaMsg{})
	gob.Register(&storeReplicaReply{})
	gob.Register(&divertStoreMsg{})
	gob.Register(&divertStoreReply{})
	gob.Register(&freeSpaceMsg{})
	gob.Register(&freeSpaceReply{})
	gob.Register(&installPointerMsg{})
	gob.Register(&discardMsg{})
	gob.Register(&discardReply{})
	gob.Register(&fetchMsg{})
	gob.Register(&fetchReply{})
	gob.Register(&acquireMsg{})
	gob.Register(&acquireReply{})
	gob.Register(&locateSpaceMsg{})
	gob.Register(&locateSpaceReply{})
	gob.Register(&convertToDivertedMsg{})
	gob.Register(&pointerCheckMsg{})
	gob.Register(&pointerCheckReply{})
	gob.Register(&replicaSetQuery{})
	gob.Register(&replicaSetReply{})
	gob.Register(&divertedHolderLeaving{})
	gob.Register(&storeFragMsg{})
	gob.Register(&storeFragReply{})
	gob.Register(&fetchFragMsg{})
	gob.Register(&fetchFragReply{})
	gob.Register(&checkFragMsg{})
	gob.Register(&checkFragReply{})
	gob.Register(&dropFragMsg{})
	gob.Register(&mapUpdateMsg{})
	gob.Register(&ackMsg{})
	gob.Register(&ClientInsert{})
	gob.Register(&ClientInsertReply{})
	gob.Register(&ClientLookup{})
	gob.Register(&ClientLookupReply{})
	gob.Register(&ClientReclaim{})
	gob.Register(&ClientReclaimReply{})
	gob.Register(&ClientReplicaReport{})
	gob.Register(&ClientReplicaReportReply{})
	gob.Register(&ClientStatus{})
	gob.Register(&ClientStatusReply{})
	gob.Register(&ClientStats{})
	gob.Register(&ClientStatsReply{})
	gob.Register(&ClientObsReport{})
	gob.Register(&ClientObsReportReply{})
}
