package past

import (
	"math/rand"
	"strings"
	"testing"

	"past/internal/cert"
	"past/internal/pastry"
)

// secureCluster builds a cluster with certificate verification enabled,
// smartcards on every node, and a key registry for receipt checks.
func secureCluster(t *testing.T, n int, seed int64) (*Cluster, *cert.Issuer, *KeyRegistry) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	issuer, err := cert.NewIssuer(rng)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewKeyRegistry()
	cfg := DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	cfg.VerifyCerts = true
	cfg.Issuer = issuer.PublicKey()
	cfg.NodeKeys = reg

	c, err := NewCluster(ClusterSpec{
		N:        n,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return 1 << 21 },
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range c.Nodes {
		card, err := issuer.IssueCard(rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		node.SetSmartcard(card)
		// Receipts identify nodes by the card-derived id (the paper's
		// nodeId IS the hash of the card key); the emulation assigns
		// overlay ids independently, so the registry indexes the
		// card-derived id the receipts actually carry.
		reg.Add(card.NodeID(), card.PublicKey())
	}
	return c, issuer, reg
}

func newOwnerCard(t *testing.T, issuer *cert.Issuer, quota int64, seed int64) *cert.Smartcard {
	t.Helper()
	card, err := issuer.IssueCard(rand.New(rand.NewSource(seed)), quota)
	if err != nil {
		t.Fatal(err)
	}
	return card
}

func TestCertifiedInsertLookup(t *testing.T) {
	c, issuer, _ := secureCluster(t, 30, 50)
	owner := newOwnerCard(t, issuer, 1<<20, 51)
	client := c.Nodes[0]

	res, err := client.Insert(InsertSpec{Name: "signed", Content: []byte("certified bytes"), Owner: owner})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("certified insert failed: %s", res.Reason)
	}
	got, err := c.Nodes[20].Lookup(res.FileID)
	if err != nil || !got.Found {
		t.Fatalf("certified lookup: %v %+v", err, got)
	}
}

func TestInsertWithoutCertificateRejected(t *testing.T) {
	c, _, _ := secureCluster(t, 20, 52)
	res, err := c.Nodes[0].Insert(InsertSpec{Name: "naked", Content: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("uncertified insert accepted by verifying nodes")
	}
	if !strings.Contains(res.Reason, "certificate") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestCorruptContentRejectedAtStorageNode(t *testing.T) {
	// A malicious access point altering the content after certification
	// is caught by the first storage node's hash check.
	c, issuer, _ := secureCluster(t, 20, 53)
	owner := newOwnerCard(t, issuer, 1<<20, 54)

	fc, err := owner.IssueFileCert("f", []byte("real content"), 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	client := c.Nodes[0]
	msg := &InsertMsg{File: fc.FileID, Size: 8, Content: []byte("tampered"), Cert: fc, K: 3}
	reply, _, err := client.Overlay().Route(fc.FileID.Key(), msg)
	if err != nil {
		t.Fatal(err)
	}
	ir := reply.(*InsertReply)
	if ir.OK {
		t.Fatal("tampered content stored")
	}
	if !strings.Contains(ir.Reason, "certificate") {
		t.Fatalf("reason = %q", ir.Reason)
	}
}

func TestForeignReclaimRejected(t *testing.T) {
	c, issuer, _ := secureCluster(t, 20, 55)
	owner := newOwnerCard(t, issuer, 1<<20, 56)
	attacker := newOwnerCard(t, issuer, 1<<20, 57)
	client := c.Nodes[0]

	res, err := client.Insert(InsertSpec{Name: "mine", Content: []byte("precious"), Owner: owner})
	if err != nil || !res.OK {
		t.Fatalf("insert: %v %+v", err, res)
	}

	// The attacker's reclaim certificate verifies as a signature but
	// names the wrong owner; every storing node refuses, so the reclaim
	// frees nothing and the replicas survive.
	evil, err := client.Reclaim(res.FileID, attacker)
	if err != nil {
		t.Fatal(err)
	}
	if evil.Found || evil.Freed != 0 {
		t.Fatalf("foreign reclaim freed storage: %+v", evil)
	}
	got, err := client.Lookup(res.FileID)
	if err != nil || !got.Found {
		t.Fatal("file lost to a foreign reclaim attempt")
	}

	// The rightful owner still can reclaim; the verified reclaim
	// receipts credit the quota back in full (size x k).
	usedBefore := owner.Quota().Used()
	rr, err := client.Reclaim(res.FileID, owner)
	if err != nil || !rr.Found {
		t.Fatalf("owner reclaim: %v %+v", err, rr)
	}
	if len(rr.Receipts) == 0 {
		t.Fatal("no reclaim receipts returned")
	}
	if got := usedBefore - owner.Quota().Used(); got != int64(len("precious"))*3 {
		t.Fatalf("quota credit %d; want %d", got, len("precious")*3)
	}
}

func TestStoreReceiptsVerifiedByClient(t *testing.T) {
	c, issuer, _ := secureCluster(t, 30, 58)
	owner := newOwnerCard(t, issuer, 1<<20, 59)
	client := c.Nodes[0]

	res, err := client.Insert(InsertSpec{Name: "receipted", Content: []byte("bytes"), Owner: owner})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || len(res.Receipts) < 3 {
		t.Fatalf("expected 3 verified receipts: %+v", res)
	}
	// Distinct storing nodes.
	seen := map[string]bool{}
	for _, r := range res.Receipts {
		seen[r.Node.String()] = true
	}
	if len(seen) != len(res.Receipts) {
		t.Fatal("duplicate receipt issuers")
	}
}

func TestReceiptVerificationCatchesUnknownNode(t *testing.T) {
	// With an empty key registry, receipt verification must fail closed.
	c, issuer, reg := secureCluster(t, 20, 60)
	owner := newOwnerCard(t, issuer, 1<<20, 61)
	// Wipe the registry.
	*reg = *NewKeyRegistry()
	if _, err := c.Nodes[0].Insert(InsertSpec{Name: "x", Content: []byte("y"), Owner: owner}); err == nil {
		t.Fatal("insert with unverifiable receipts must error")
	}
}
