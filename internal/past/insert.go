package past

import (
	"context"
	"fmt"
	"sort"

	"past/internal/cert"
	"past/internal/ec"
	"past/internal/id"
	"past/internal/netsim"
	"past/internal/obs"
	"past/internal/store"
)

// Insert failures are reported in-band (InsertResult.OK=false with a
// Reason) rather than as errors, because a failed insertion is an
// expected high-utilization outcome the caller reacts to — the paper's
// recourse is fragmenting the file or lowering k (section 3.4, and see
// internal/frag). The error return is reserved for operational faults
// (unroutable network, quota exhaustion, invalid parameters).

// InsertSpec describes a file to insert.
type InsertSpec struct {
	// Name is the file's textual name, one input to the fileId hash.
	Name string
	// Size is the file size in bytes. If Content is non-nil, Size is
	// ignored and len(Content) is used.
	Size int64
	// Content is the file payload; nil runs size-only accounting (the
	// trace experiments).
	Content []byte
	// K overrides the configured replication factor when positive.
	K int
	// Owner, when set, issues and signs the file certificate and is
	// debited size*k quota bytes per the paper's insert semantics.
	Owner *cert.Smartcard
	// Salt seeds fileId generation; zero means draw one at random. File
	// diversion retries increment it.
	Salt uint64
	// Created is the owner-asserted creation time for the certificate.
	Created int64
}

// InsertResult reports the outcome of an Insert.
type InsertResult struct {
	FileID id.File
	// OK is false if all attempts failed.
	OK bool
	// Attempts is the number of insert attempts performed (1 + file
	// diversions). The paper allows at most 4.
	Attempts int
	// FileDiversions is the number of re-salted retries performed:
	// always Attempts-1, on success and on failure alike (the first
	// attempt is not a diversion).
	FileDiversions int
	// Diverted counts replicas that were stored via replica diversion.
	Diverted int
	// Stored counts replicas created.
	Stored int
	// Partial reports a degraded success: the insert stored at least
	// one but fewer than the requested k replicas because part of the
	// replica set was unreachable (Config.PartialInsert). The shortfall
	// is a repair debt settled by replica maintenance.
	Partial bool
	// Hops is the number of routing hops of the final (successful or
	// last) attempt.
	Hops int
	// Receipts holds the store receipts when certificates are enabled.
	Receipts []*cert.StoreReceipt
	// Reason describes the failure, if any.
	Reason string
	// Trace holds the per-hop route records of the final attempt, when
	// the operation was sampled by Config.Tracer.
	Trace []obs.HopRecord
}

// Insert stores a file on the k nodes whose nodeIds are numerically
// closest to the fileId, performing replica diversion inside leaf sets
// and up to MaxRetries file diversions (re-salted fileIds) on failure.
// It may be called on any node; this node acts as the client's access
// point.
func (n *Node) Insert(spec InsertSpec) (*InsertResult, error) {
	return n.InsertContext(context.Background(), spec)
}

// InsertContext is Insert bounded by a context. When Config.Retry is
// set, each routed attempt runs under the policy's per-attempt deadline
// and transient routing failures are retried with backoff before the
// attempt counts as failed.
func (n *Node) InsertContext(ctx context.Context, spec InsertSpec) (*InsertResult, error) {
	k := spec.K
	if k <= 0 {
		k = n.cfg.K
	}
	if maxK := n.overlay.Config().L/2 + 1; k > maxK {
		return nil, fmt.Errorf("past: insert %q: k=%d exceeds l/2+1=%d (the paper's bound: any of the k closest nodes must see the whole replica set in its leaf set)",
			spec.Name, k, maxK)
	}
	size := spec.Size
	if spec.Content != nil {
		size = int64(len(spec.Content))
	}
	salt := spec.Salt
	if salt == 0 {
		n.mu.Lock()
		salt = n.rng.Uint64()
		n.mu.Unlock()
	}
	n.st().Inserts.Add(1)
	traced := n.cfg.Tracer.ShouldSample()
	finishTrace := func(res *InsertResult, err error) {
		if !traced {
			return
		}
		tr := &obs.Trace{Op: "insert"}
		if err != nil {
			tr.Err = err.Error()
		}
		if res != nil {
			tr.Key = res.FileID.Key()
			tr.Hops = res.Trace
			tr.RouteHops = res.Hops
			tr.OK = res.OK
			if !res.OK && res.Reason != "" {
				tr.Err = res.Reason
			}
		}
		n.cfg.Tracer.Add(tr)
	}

	res := &InsertResult{}
	for attempt := 0; attempt <= n.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			// A re-salted retry is a file diversion (section 3.4).
			n.st().FileDiversions.Add(1)
		}
		res.Attempts = attempt + 1
		var fid id.File
		var fc *cert.FileCertificate
		if spec.Owner != nil {
			var err error
			fc, err = spec.Owner.IssueFileCert(spec.Name, spec.Content, k, salt+uint64(attempt), spec.Created)
			if err != nil {
				err = fmt.Errorf("past: insert %q: %w", spec.Name, err)
				finishTrace(nil, err)
				return nil, err
			}
			fid = fc.FileID
		} else {
			fid = id.NewFile(spec.Name, nil, salt+uint64(attempt))
		}
		res.FileID = fid

		msg := &InsertMsg{File: fid, Size: size, Content: spec.Content, Cert: fc, K: k}
		type routed struct {
			reply any
			hops  int
			trace []obs.HopRecord
		}
		out, err := n.retryLoop(ctx, nil, func(actx context.Context) (any, error) {
			var (
				reply any
				hops  int
				trace []obs.HopRecord
				rerr  error
			)
			if traced {
				reply, hops, trace, rerr = n.overlay.RouteTracedContext(actx, fid.Key(), msg)
			} else {
				reply, hops, rerr = n.overlay.RouteContext(actx, fid.Key(), msg)
			}
			if rerr != nil {
				return nil, rerr
			}
			return routed{reply, hops, trace}, nil
		})
		if err != nil {
			err = fmt.Errorf("past: insert %q: route: %w", spec.Name, err)
			finishTrace(res, err)
			return nil, err
		}
		ir, ok := out.(routed).reply.(*InsertReply)
		if !ok {
			err = fmt.Errorf("past: insert %q: unexpected reply %T", spec.Name, out.(routed).reply)
			finishTrace(res, err)
			return nil, err
		}
		res.Hops = out.(routed).hops
		res.Trace = out.(routed).trace
		if ir.OK {
			res.OK = true
			res.FileDiversions = attempt
			res.Stored = ir.Stored
			res.Diverted = ir.Diverted
			res.Receipts = ir.Receipts
			res.Partial = ir.Stored < k
			if res.Partial {
				n.recordPartialInsert()
			}
			if n.cfg.VerifyCerts && n.cfg.NodeKeys != nil {
				// Confirm the requested number of copies was created:
				// each receipt must verify against the storing node's
				// public key (section 2.2). A partial success vouches
				// only for the replicas it actually stored.
				want := k
				if n.cfg.PartialInsert && ir.Stored < k {
					want = ir.Stored
				}
				if err := verifyReceipts(ir.Receipts, fid, want, n.cfg.NodeKeys); err != nil {
					err = fmt.Errorf("past: insert %q: %w", spec.Name, err)
					finishTrace(res, err)
					return nil, err
				}
			}
			finishTrace(res, nil)
			return res, nil
		}
		res.Reason = ir.Reason
		// Failed attempt: the debited quota for this fileId is returned.
		if spec.Owner != nil {
			spec.Owner.Quota().Credit(size * int64(k))
		}
	}
	res.FileDiversions = res.Attempts - 1
	finishTrace(res, nil)
	return res, nil
}

// verifyReceipts checks that k distinct, correctly signed store receipts
// for fid were returned.
func verifyReceipts(receipts []*cert.StoreReceipt, fid id.File, k int, keys NodeKeyDirectory) error {
	seen := make(map[id.Node]bool, len(receipts))
	for _, r := range receipts {
		if r.FileID != fid {
			return fmt.Errorf("store receipt for wrong file %s", r.FileID.Short())
		}
		pub, ok := keys.NodeKey(r.Node)
		if !ok {
			return fmt.Errorf("no public key for storing node %s", r.Node.Short())
		}
		if err := r.Verify(pub); err != nil {
			return fmt.Errorf("store receipt from %s: %w", r.Node.Short(), err)
		}
		seen[r.Node] = true
	}
	if len(seen) < k {
		return fmt.Errorf("only %d distinct store receipts for %d requested copies", len(seen), k)
	}
	return nil
}

// coordinateInsert runs on the first node among the k closest to the
// fileId that an insert message reaches. It stores one replica locally
// (or diverts it) and forwards the request directly to the other k-1
// closest nodes, which all lie in this node's leaf set. If any member
// can neither store nor divert its replica, the stored replicas are
// discarded and a negative acknowledgment triggers file diversion at
// the client.
func (n *Node) coordinateInsert(key id.Node, m *InsertMsg) *InsertReply {
	if n.cfg.VerifyCerts {
		if m.Cert == nil {
			return &InsertReply{Reason: "missing file certificate"}
		}
		if err := m.Cert.Verify(n.cfg.Issuer, m.Content); err != nil {
			return &InsertReply{Reason: fmt.Sprintf("certificate rejected: %v", err)}
		}
		if m.Cert.K != m.K || m.Cert.FileID != m.File {
			return &InsertReply{Reason: "certificate does not match insert request"}
		}
	}

	// Erasure-coded mode: fragment the object over the leaf set and
	// k-replicate only the fragment map (see ec.go). Content-free
	// inserts (size-only trace accounting) cannot be coded and fall
	// through to plain replication, as does map content itself.
	if n.cfg.ECMode != nil && len(m.Content) > 0 && !ec.IsMap(m.Content) {
		return n.coordinateECInsert(key, m)
	}
	return n.replicateInsert(key, m)
}

// replicateInsert is the k-way replication fan-out shared by plain
// inserts and the EC coordinator (which replicates the fragment map
// through it).
func (n *Node) replicateInsert(key id.Node, m *InsertMsg) *InsertReply {
	members := n.overlay.ReplicaSet(key, m.K)
	rep := &InsertReply{}
	var stored []id.Node
	abort := func(reason string) *InsertReply {
		for _, s := range stored {
			if s == n.ID() {
				n.mu.Lock()
				n.removeReplicaLocked(m.File)
				n.store.RemovePointer(m.File)
				n.mu.Unlock()
			} else {
				_, _ = n.net.Invoke(context.Background(), n.ID(), s, &discardMsg{File: m.File, Abort: true})
			}
		}
		return &InsertReply{Reason: reason}
	}

	sm := &storeReplicaMsg{File: m.File, Key: key, Size: m.Size, Content: m.Content, Cert: m.Cert, K: m.K}
	skipped := 0
	for _, member := range members {
		var sr *storeReplicaReply
		if member == n.ID() {
			sr = n.handleStoreReplica(sm)
		} else {
			res, err := n.net.Invoke(context.Background(), n.ID(), member, sm)
			if err != nil {
				if n.cfg.PartialInsert && netsim.Retryable(err) {
					// Degraded mode: skip the unreachable member and
					// keep going. The missing replica is a repair debt
					// that maintenance settles once the leaf set heals.
					skipped++
					continue
				}
				// A replica-set member died mid-insert; the client will
				// re-salt (and maintenance will have repaired the leaf
				// set by then).
				return abort(fmt.Sprintf("replica node %s unreachable", member.Short()))
			}
			sr = res.(*storeReplicaReply)
		}
		switch sr.Status {
		case storeOK:
			stored = append(stored, member)
			rep.Stored++
		case storeOKDiverted:
			stored = append(stored, member)
			rep.Stored++
			rep.Diverted++
		case storeAlreadyHeld:
			// fileId collision: the paper rejects the later file.
			return abort("fileId collision")
		case storeFailed:
			return abort("insufficient storage in replica set")
		}
		if sr.Receipt != nil {
			rep.Receipts = append(rep.Receipts, sr.Receipt)
		}
	}
	if skipped > 0 && rep.Stored == 0 {
		// Nothing was stored anywhere: not even a degraded success.
		return abort("entire replica set unreachable")
	}
	rep.OK = true
	return rep
}

// handleStoreReplica stores one replica at this node: locally if the
// acceptance policy admits it, otherwise via replica diversion.
func (n *Node) handleStoreReplica(m *storeReplicaMsg) *storeReplicaReply {
	n.mu.Lock()
	if n.leaving {
		n.mu.Unlock()
		return &storeReplicaReply{Status: storeFailed}
	}
	if _, dup := n.store.Get(m.File); dup {
		n.mu.Unlock()
		return &storeReplicaReply{Status: storeAlreadyHeld}
	}
	if _, dup := n.store.GetPointer(m.File); dup {
		n.mu.Unlock()
		return &storeReplicaReply{Status: storeAlreadyHeld}
	}
	if n.store.CanAccept(m.Size, n.cfg.TPri) {
		err := n.addReplicaLocked(store.Entry{
			File: m.File, Size: m.Size, Kind: store.Primary,
			Content: m.Content, Cert: m.Cert,
		})
		n.mu.Unlock()
		if err != nil {
			return &storeReplicaReply{Status: storeFailed}
		}
		return &storeReplicaReply{Status: storeOK, Receipt: n.issueStoreReceipt(m.File)}
	}
	n.mu.Unlock()
	return n.divertReplica(m)
}

// divertReplica implements replica diversion (section 3.3): choose the
// node with maximal remaining free space among the members of this
// node's leaf set that (a) are not among the k closest to the fileId and
// (b) do not already hold a diverted replica of the file; ask it to
// store the replica under the tdiv policy; on success enter pointers in
// this node's file table and at the k+1-th closest node C, so the
// diverted replica survives the failure of either referrer.
func (n *Node) divertReplica(m *storeReplicaMsg) *storeReplicaReply {
	replicaSet := n.overlay.ReplicaSet(m.Key, m.K)
	inSet := make(map[id.Node]bool, len(replicaSet))
	for _, r := range replicaSet {
		inSet[r] = true
	}

	type candidate struct {
		node id.Node
		free int64
	}
	var cands []candidate
	for _, b := range n.overlay.LeafSet() {
		if inSet[b] || b == n.ID() {
			continue
		}
		res, err := n.net.Invoke(context.Background(), n.ID(), b, &freeSpaceMsg{})
		if err != nil {
			continue
		}
		cands = append(cands, candidate{node: b, free: res.(*freeSpaceReply).Free})
	}
	if n.cfg.RandomDivert {
		// Ablation mode: ignore free space when picking the target.
		n.mu.Lock()
		n.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		n.mu.Unlock()
	} else {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].free != cands[j].free {
				return cands[i].free > cands[j].free
			}
			return cands[i].node.Less(cands[j].node)
		})
	}

	dm := &divertStoreMsg{File: m.File, Size: m.Size, Content: m.Content, Cert: m.Cert, Owner: n.ID()}
	for _, c := range cands {
		res, err := n.net.Invoke(context.Background(), n.ID(), c.node, dm)
		if err != nil {
			continue // dead candidate; try the next
		}
		dr := res.(*divertStoreReply)
		switch dr.Status {
		case divertOK:
			n.mu.Lock()
			n.store.SetPointer(store.Pointer{File: m.File, Target: c.node, Size: m.Size, Role: store.DivertedOut})
			n.mu.Unlock()
			n.installBackupPointer(m, c.node)
			return &storeReplicaReply{Status: storeOKDiverted, Receipt: n.issueStoreReceipt(m.File)}
		case divertAlreadyHolds:
			// Another replica-set member already diverted to this node;
			// it is ineligible (criterion b), move to the next candidate.
			continue
		case divertNoSpace:
			// The chosen node declined: per the paper's policy the whole
			// file is diverted to another part of the nodeId space.
			return &storeReplicaReply{Status: storeFailed}
		}
	}
	return &storeReplicaReply{Status: storeFailed}
}

// installBackupPointer enters the pointer to the diverted replica into
// the file table of node C, the k+1-th closest node to the fileId, so
// the failure of this node does not orphan the replica on B.
func (n *Node) installBackupPointer(m *storeReplicaMsg, b id.Node) {
	ext := n.overlay.ReplicaSet(m.Key, m.K+1)
	if len(ext) <= m.K {
		return // network smaller than k+1 nodes
	}
	c := ext[m.K]
	if c == n.ID() || c == b {
		return
	}
	_, _ = n.net.Invoke(context.Background(), n.ID(), c, &installPointerMsg{File: m.File, Target: b, Size: m.Size, Role: store.Backup})
}

// handleDivertStore stores a diverted replica on behalf of Owner, under
// the stricter tdiv acceptance policy.
func (n *Node) handleDivertStore(m *divertStoreMsg) *divertStoreReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaving {
		return &divertStoreReply{Status: divertNoSpace}
	}
	if _, dup := n.store.Get(m.File); dup {
		return &divertStoreReply{Status: divertAlreadyHolds}
	}
	if !n.store.CanAccept(m.Size, n.cfg.TDiv) {
		return &divertStoreReply{Status: divertNoSpace}
	}
	if err := n.addReplicaLocked(store.Entry{
		File: m.File, Size: m.Size, Kind: store.DivertedIn,
		Owner: m.Owner, Content: m.Content, Cert: m.Cert,
	}); err != nil {
		return &divertStoreReply{Status: divertNoSpace}
	}
	return &divertStoreReply{Status: divertOK, Receipt: n.issueStoreReceipt(m.File)}
}
