// Package stats provides the random processes and descriptive statistics
// the PAST evaluation is built from: truncated normal distributions for
// node storage capacities (Table 1 of the paper), a finite Zipf sampler
// for web-request popularity (the paper cites Breslau et al.'s evidence
// of Zipf-like web request distributions), and lognormal file-size
// distributions calibrated from published medians and means.
//
// All sampling is driven by an explicit *rand.Rand so that every
// experiment in this repository is deterministic given its seed.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic PRNG for the given seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// TruncNormal is a normal distribution with mean Mean and standard
// deviation Sigma, truncated to the closed interval [Lo, Hi]. The paper's
// node-capacity distributions d1-d4 are all of this form.
type TruncNormal struct {
	Mean, Sigma float64
	Lo, Hi      float64
}

// Sample draws one value by rejection. It panics if the interval is
// empty or inverted, which indicates a misconfigured experiment.
func (t TruncNormal) Sample(r *rand.Rand) float64 {
	if t.Lo > t.Hi {
		panic(fmt.Sprintf("stats: truncated normal with empty support [%g,%g]", t.Lo, t.Hi))
	}
	if t.Sigma <= 0 {
		return math.Min(math.Max(t.Mean, t.Lo), t.Hi)
	}
	for {
		v := r.NormFloat64()*t.Sigma + t.Mean
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
}

// Zipf samples ranks 0..N-1 with probability proportional to
// 1/(rank+1)^Alpha. Unlike math/rand's Zipf it supports exponents <= 1,
// which real web traces exhibit (Breslau et al. report alpha in
// 0.64-0.83); it uses an explicit inverse-CDF table, so construction is
// O(N) and sampling is O(log N).
type Zipf struct {
	cdf   []float64
	alpha float64
}

// NewZipf builds a finite Zipf distribution over n ranks with exponent
// alpha > 0.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs n > 0")
	}
	if alpha <= 0 {
		panic("stats: Zipf needs alpha > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, alpha: alpha}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Alpha returns the exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Rank draws a popularity rank in [0, N), rank 0 being the most popular.
func (z *Zipf) Rank(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// LogNormal is the distribution of exp(N(Mu, Sigma^2)).
type LogNormal struct {
	Mu, Sigma float64
}

// LogNormalFromMedianMean solves for the unique lognormal with the given
// median and mean. For a lognormal, median = e^mu and
// mean = e^(mu + sigma^2/2), so sigma^2 = 2 ln(mean/median). The paper
// reports exactly these two moments for both of its workloads, which is
// what makes this the natural synthetic substitute.
func LogNormalFromMedianMean(median, mean float64) LogNormal {
	if median <= 0 || mean < median {
		panic(fmt.Sprintf("stats: lognormal needs 0 < median <= mean, got median=%g mean=%g", median, mean))
	}
	mu := math.Log(median)
	sigma := math.Sqrt(2 * math.Log(mean/median))
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Sample draws one value.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(r.NormFloat64()*l.Sigma + l.Mu)
}

// Exponential is the exponential distribution with the given rate
// (events per unit time); its samples are the inter-arrival times of a
// Poisson process with that rate. The open-loop load generator and the
// churn models draw arrival gaps from it.
type Exponential struct {
	// Rate is the event rate; the mean inter-arrival time is 1/Rate.
	Rate float64
}

// Sample draws one inter-arrival time.
func (e Exponential) Sample(r *rand.Rand) float64 {
	if e.Rate <= 0 {
		panic(fmt.Sprintf("stats: exponential needs rate > 0, got %g", e.Rate))
	}
	return r.ExpFloat64() / e.Rate
}

// SizeDist produces integer file sizes: a lognormal body clamped to
// [Min, Max], with an optional probability PZero of an empty file (both
// paper workloads contain zero-byte files).
type SizeDist struct {
	LN       LogNormal
	Min, Max int64
	PZero    float64
}

// Sample draws one file size in bytes.
func (s SizeDist) Sample(r *rand.Rand) int64 {
	if s.PZero > 0 && r.Float64() < s.PZero {
		return 0
	}
	v := int64(s.LN.Sample(r))
	if v < s.Min {
		v = s.Min
	}
	if s.Max > 0 && v > s.Max {
		v = s.Max
	}
	return v
}

// Summary holds descriptive statistics of an int64 sample.
type Summary struct {
	Count  int
	Sum    int64
	Mean   float64
	Median int64
	Min    int64
	Max    int64
}

// Summarize computes count, sum, mean, median, min, and max. It does not
// modify xs.
func Summarize(xs []int64) Summary {
	var s Summary
	s.Count = len(xs)
	if s.Count == 0 {
		return s
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.Median = Percentile(sorted, 50)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	return s
}

// Percentile returns the p-th percentile (0-100) of an ascending-sorted
// sample using nearest-rank.
func Percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// PercentileInterp returns the p-th percentile (0-100) of an
// ascending-sorted sample with linear interpolation between adjacent
// order statistics (the "C = 1" variant spreadsheet software uses).
// Unlike nearest-rank Percentile it is continuous in p, which matters
// when reporting tail quantiles like p999 from modest sample counts.
func PercentileInterp(sorted []int64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return float64(sorted[0])
	}
	if p >= 100 {
		return float64(sorted[n-1])
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return float64(sorted[n-1])
	}
	return float64(sorted[lo]) + frac*float64(sorted[lo+1]-sorted[lo])
}

// logHistSub is the number of sub-buckets per power-of-two octave in a
// LogHist. 32 sub-buckets bound the relative quantization error of any
// recorded value by 1/32 ≈ 3%, at 5 significant bits of precision —
// the classic HDR-histogram layout.
const logHistSub = 32

// logHistBuckets spans values up to 2^63-1: octave of the largest value
// is 62 (bits.Len64 = 63), so the highest index is 57*32+63.
const logHistBuckets = 58*logHistSub + logHistSub

// LogHist is a log-bucketed histogram for non-negative int64
// observations (latencies in nanoseconds, sizes in bytes). Buckets are
// exact below logHistSub and then logHistSub-per-octave, so quantile
// error is bounded relative to the value, not absolute — p999 of a
// 10s tail is as trustworthy as p50 of a 100µs body. The zero value is
// ready to use. Not safe for concurrent use; shard and Merge instead.
type LogHist struct {
	counts [logHistBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// logBucket maps a value to its bucket index.
func logBucket(v int64) int {
	if v < logHistSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 6 // 6 = log2(logHistSub) + 1
	return exp*logHistSub + int(v>>uint(exp))
}

// LogBucketLo returns the inclusive lower bound of bucket i.
func LogBucketLo(i int) int64 {
	if i < 2*logHistSub {
		return int64(i)
	}
	exp := i/logHistSub - 1
	return int64(i-exp*logHistSub) << uint(exp)
}

// LogBucketHi returns the exclusive upper bound of bucket i, saturating
// at MaxInt64 for the topmost bucket (whose true bound is 2^63).
func LogBucketHi(i int) int64 {
	if i < 2*logHistSub {
		return int64(i) + 1
	}
	exp := i/logHistSub - 1
	hi := LogBucketLo(i) + int64(1)<<uint(exp)
	if hi <= 0 {
		return math.MaxInt64
	}
	return hi
}

// Record adds one observation. Negative values clamp to zero.
func (h *LogHist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[logBucket(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of observations.
func (h *LogHist) Count() int64 { return h.n }

// Sum returns the sum of observations.
func (h *LogHist) Sum() int64 { return h.sum }

// Min returns the smallest observation (0 if empty).
func (h *LogHist) Min() int64 { return h.min }

// Max returns the largest observation (0 if empty).
func (h *LogHist) Max() int64 { return h.max }

// Mean returns the mean observation (0 if empty).
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Merge adds all of o's observations into h.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Quantile returns the p-th percentile (0-100), interpolating linearly
// between the edges of the bucket the target rank lands in rather than
// snapping to a bucket boundary (nearest-rank), and clamping to the
// recorded min/max so an interpolated tail never exceeds an observed
// value. Returns 0 on an empty histogram.
func (h *LogHist) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return float64(h.min)
	}
	if p >= 100 {
		return float64(h.max)
	}
	target := p / 100 * float64(h.n)
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) >= target {
			lo, hi := float64(LogBucketLo(i)), float64(LogBucketHi(i))
			frac := (target - prev) / float64(c)
			v := lo + frac*(hi-lo)
			if v < float64(h.min) {
				v = float64(h.min)
			}
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
	}
	return float64(h.max)
}

// Histogram counts observations in fixed-width buckets over [Lo, Hi).
// Observations outside the range land in the first or last bucket, so no
// sample is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	N      int64
}

// NewHistogram creates a histogram with nbuckets buckets over [lo, hi).
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if nbuckets <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, nbuckets)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.N++
}

// Bucket returns the index of the bucket v falls in.
func (h *Histogram) Bucket(v float64) int {
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// BucketLo returns the lower bound of bucket i.
func (h *Histogram) BucketLo(i int) float64 {
	return h.Lo + (h.Hi-h.Lo)*float64(i)/float64(len(h.Counts))
}
