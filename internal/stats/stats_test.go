package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTruncNormalBounds(t *testing.T) {
	r := NewRand(1)
	tn := TruncNormal{Mean: 27, Sigma: 10.8, Lo: 2, Hi: 51}
	for i := 0; i < 10000; i++ {
		v := tn.Sample(r)
		if v < tn.Lo || v > tn.Hi {
			t.Fatalf("sample %g outside [%g,%g]", v, tn.Lo, tn.Hi)
		}
	}
}

func TestTruncNormalMean(t *testing.T) {
	r := NewRand(2)
	tn := TruncNormal{Mean: 27, Sigma: 9.6, Lo: 4, Hi: 49}
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += tn.Sample(r)
	}
	mean := sum / n
	if math.Abs(mean-27) > 0.5 {
		t.Fatalf("empirical mean %g too far from 27", mean)
	}
}

func TestTruncNormalDegenerateSigma(t *testing.T) {
	r := NewRand(3)
	tn := TruncNormal{Mean: 100, Sigma: 0, Lo: 0, Hi: 50}
	if v := tn.Sample(r); v != 50 {
		t.Fatalf("degenerate sample = %g; want clamped 50", v)
	}
}

func TestTruncNormalPanicsOnEmptySupport(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	TruncNormal{Mean: 0, Sigma: 1, Lo: 5, Hi: 1}.Sample(NewRand(1))
}

func TestZipfRankRange(t *testing.T) {
	r := NewRand(4)
	z := NewZipf(100, 0.8)
	for i := 0; i < 10000; i++ {
		k := z.Rank(r)
		if k < 0 || k >= 100 {
			t.Fatalf("rank %d out of range", k)
		}
	}
}

func TestZipfMonotonePopularity(t *testing.T) {
	r := NewRand(5)
	z := NewZipf(50, 0.8)
	counts := make([]int, 50)
	for i := 0; i < 200000; i++ {
		counts[z.Rank(r)]++
	}
	// Rank 0 must dominate rank 10, rank 10 must dominate rank 40.
	if counts[0] <= counts[10] || counts[10] <= counts[40] {
		t.Fatalf("popularity not decreasing: %d, %d, %d", counts[0], counts[10], counts[40])
	}
}

func TestZipfLowAlphaSupported(t *testing.T) {
	// math/rand's Zipf cannot do alpha <= 1; ours must.
	z := NewZipf(1000, 0.64)
	if z.Alpha() != 0.64 || z.N() != 1000 {
		t.Fatal("accessor mismatch")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestLogNormalCalibration(t *testing.T) {
	// The paper's NLANR workload: median 1,312 B, mean 10,517 B.
	ln := LogNormalFromMedianMean(1312, 10517)
	r := NewRand(6)
	const n = 400000
	xs := make([]float64, n)
	sum := 0.0
	for i := range xs {
		xs[i] = ln.Sample(r)
		sum += xs[i]
	}
	sort.Float64s(xs)
	med := xs[n/2]
	mean := sum / n
	if math.Abs(med-1312)/1312 > 0.05 {
		t.Fatalf("median %g too far from 1312", med)
	}
	if math.Abs(mean-10517)/10517 > 0.15 {
		t.Fatalf("mean %g too far from 10517", mean)
	}
}

func TestLogNormalFromMedianMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for mean < median")
		}
	}()
	LogNormalFromMedianMean(100, 50)
}

func TestSizeDistClampsAndZeroes(t *testing.T) {
	r := NewRand(7)
	sd := SizeDist{
		LN:    LogNormalFromMedianMean(1312, 10517),
		Min:   0,
		Max:   1 << 20,
		PZero: 0.01,
	}
	zeroes := 0
	for i := 0; i < 20000; i++ {
		v := sd.Sample(r)
		if v < 0 || v > 1<<20 {
			t.Fatalf("size %d outside clamp", v)
		}
		if v == 0 {
			zeroes++
		}
	}
	if zeroes == 0 {
		t.Fatal("expected some zero-byte files")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{5, 1, 9, 3, 7})
	if s.Count != 5 || s.Min != 1 || s.Max != 9 || s.Median != 5 || s.Sum != 25 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Fatal("empty summary must be zero")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []int64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want int64
	}{{0, 10}, {10, 10}, {50, 50}, {90, 90}, {100, 100}}
	for _, c := range cases {
		if g := Percentile(sorted, c.p); g != c.want {
			t.Fatalf("P%g = %d; want %d", c.p, g, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(raw []int64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		pp := math.Mod(math.Abs(p), 120) // include out-of-range percentiles
		v := Percentile(raw, pp)
		return v >= raw[0] && v <= raw[len(raw)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialMoments(t *testing.T) {
	// At a fixed seed the empirical mean and variance of exponential
	// inter-arrival samples must match 1/rate and 1/rate^2 within a few
	// percent — the distribution test the loadgen arrival process leans on.
	r := NewRand(11)
	e := Exponential{Rate: 250} // 250 req/s -> mean gap 4ms
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := e.Sample(r)
		if v < 0 {
			t.Fatalf("negative inter-arrival time %g", v)
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	wantMean := 1.0 / e.Rate
	wantVar := 1.0 / (e.Rate * e.Rate)
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Fatalf("mean = %g; want %g within 2%%", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Fatalf("variance = %g; want %g within 5%%", variance, wantVar)
	}
}

func TestExponentialDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	e := Exponential{Rate: 10}
	for i := 0; i < 1000; i++ {
		if e.Sample(a) != e.Sample(b) {
			t.Fatal("exponential sampling not deterministic")
		}
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for rate <= 0")
		}
	}()
	Exponential{Rate: 0}.Sample(NewRand(1))
}

func TestPercentileInterp(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 100},
		{50, 55},   // midpoint of the 5th and 6th order statistics
		{25, 32.5}, // rank 2.25 -> 30 + 0.25*10
		{90, 91},   // rank 8.1 -> 90 + 0.1*10
		{99, 99.1}, // rank 8.91 -> 90 + 0.91*10
	}
	for _, c := range cases {
		if g := PercentileInterp(sorted, c.p); math.Abs(g-c.want) > 1e-9 {
			t.Fatalf("P%g = %g; want %g", c.p, g, c.want)
		}
	}
	if PercentileInterp(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	if PercentileInterp([]int64{42}, 73) != 42 {
		t.Fatal("single sample must be its own percentile")
	}
}

func TestLogBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose [lo, hi) range contains it,
	// and bucket bounds must tile the axis with no gaps or overlaps.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 65, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range values {
		i := logBucket(v)
		lo, hi := LogBucketLo(i), LogBucketHi(i)
		// The topmost bucket's bound saturates at MaxInt64, which is then
		// inclusive.
		if v < lo || (v >= hi && !(v == math.MaxInt64 && hi == math.MaxInt64)) {
			t.Fatalf("value %d in bucket %d with range [%d,%d)", v, i, lo, hi)
		}
	}
	for i := 0; i < 4*logHistSub; i++ {
		if LogBucketHi(i) != LogBucketLo(i+1) {
			t.Fatalf("bucket %d hi %d != bucket %d lo %d", i, LogBucketHi(i), i+1, LogBucketLo(i+1))
		}
	}
}

func TestLogHistRelativeError(t *testing.T) {
	// The quantization error of any recorded value is bounded by one
	// sub-bucket width: 1/logHistSub of the value.
	var h LogHist
	r := NewRand(9)
	for i := 0; i < 5000; i++ {
		v := int64(1 + r.Intn(1<<30))
		i := logBucket(v)
		lo, hi := LogBucketLo(i), LogBucketHi(i)
		if float64(hi-lo) > float64(v)/float64(logHistSub)+1 {
			t.Fatalf("bucket width %d too wide for value %d", hi-lo, v)
		}
		h.Record(v)
	}
	if h.Count() != 5000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestLogHistQuantileInterpolates(t *testing.T) {
	// With all mass inside one wide bucket, quantiles must move smoothly
	// across the bucket rather than snapping to an edge (nearest-rank).
	// Bucket at 2^20 spans [1048576, 1081344) — both values land in it.
	var h LogHist
	for i := 0; i < 500; i++ {
		h.Record(1 << 20)
		h.Record(1<<20 + 30000)
	}
	lo := float64(int64(1) << 20)
	q25, q75 := h.Quantile(25), h.Quantile(75)
	if !(q25 > lo && q75 > q25 && q75 < float64(h.Max())) {
		t.Fatalf("quantiles not interpolating within bucket: q25=%g q75=%g", q25, q75)
	}
	// Interpolation must never escape the observed range.
	if h.Quantile(99.99) > float64(h.Max()) || h.Quantile(0.01) < float64(h.Min()) {
		t.Fatal("quantile escaped [min,max]")
	}
}

func TestLogHistQuantileAccuracy(t *testing.T) {
	// Against a known sample, every reported quantile must be within one
	// sub-bucket (~3%) of the exact interpolated percentile.
	var h LogHist
	r := NewRand(13)
	xs := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(100 + r.ExpFloat64()*50000)
		xs = append(xs, v)
		h.Record(v)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9} {
		exact := PercentileInterp(xs, p)
		got := h.Quantile(p)
		if math.Abs(got-exact)/exact > 2.0/logHistSub {
			t.Fatalf("P%g = %g; exact %g (rel err %g)", p, got, exact, math.Abs(got-exact)/exact)
		}
	}
}

func TestLogHistMergeAndMoments(t *testing.T) {
	var a, b LogHist
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(&b)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged moments: n=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	if a.Sum() != 200*201/2 {
		t.Fatalf("merged sum = %d", a.Sum())
	}
	if m := a.Mean(); math.Abs(m-100.5) > 1e-9 {
		t.Fatalf("merged mean = %g", m)
	}
	var empty LogHist
	a.Merge(&empty)
	a.Merge(nil)
	if a.Count() != 200 {
		t.Fatal("merging empty changed the histogram")
	}
	if empty.Quantile(50) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestLogHistNegativeClamps(t *testing.T) {
	var h LogHist
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record not clamped: %+v", h)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(5)
	h.Add(15)
	h.Add(15)
	h.Add(-3)  // clamps to first bucket
	h.Add(250) // clamps to last bucket
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Bucket(15) != 1 {
		t.Fatalf("Bucket(15) = %d", h.Bucket(15))
	}
	if h.BucketLo(1) != 10 {
		t.Fatalf("BucketLo(1) = %g", h.BucketLo(1))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestDeterminism(t *testing.T) {
	// Two generators with the same seed must produce identical streams.
	a, b := NewRand(42), NewRand(42)
	z1, z2 := NewZipf(100, 0.8), NewZipf(100, 0.8)
	for i := 0; i < 1000; i++ {
		if z1.Rank(a) != z2.Rank(b) {
			t.Fatal("Zipf sampling not deterministic")
		}
	}
}

func BenchmarkZipfRank(b *testing.B) {
	r := NewRand(1)
	z := NewZipf(1_000_000, 0.8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = z.Rank(r)
	}
}

func BenchmarkTruncNormal(b *testing.B) {
	r := NewRand(1)
	tn := TruncNormal{Mean: 27, Sigma: 10.8, Lo: 2, Hi: 51}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tn.Sample(r)
	}
}
