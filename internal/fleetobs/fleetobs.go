// Package fleetobs is the fleet-wide observability plane: it collects
// per-node obs.Snapshot registries from every member of a live cluster
// (over the batch ClientObsReport RPC, falling back to scraping the
// node's /metrics debug endpoint), merges them into fleet-level series
// with obs.Aggregate, tracks restart-aware counter deltas so rates stay
// correct across crash/rejoin cycles, and evaluates declarative SLOs as
// windowed burn rates over the aggregated stream. The past-top live
// dashboard, the aggregator's combined /metrics endpoint, and the
// cluster scenario driver's per-round SLO reporting all sit on top of
// this package.
package fleetobs

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/obs"
	"past/internal/past"
)

// Target names one fleet member to scrape.
type Target struct {
	// Name is the display name ("node03"); it becomes the series' node
	// label on the combined /metrics endpoint.
	Name string
	// Addr is the node's client RPC address — the primary collection
	// path (one ClientObsReport round trip).
	Addr string
	// DebugAddr is the node's debug HTTP address; when set, a failed RPC
	// falls back to GET /metrics there. Optional.
	DebugAddr string
}

// RPC abstracts the client transport the scraper invokes nodes through;
// *transport.TCP satisfies it.
type RPC interface {
	InvokeAddr(addr string, msg any) (any, error)
}

// Tracker turns a stream of cumulative per-node snapshots into
// per-interval deltas, detecting process restarts: a node that crashed
// and rejoined reports a registry reset to zero, so a naive delta would
// go negative and poison every fleet rate. A reference counter running
// backwards marks the restart, and the node's whole current snapshot
// becomes that interval's delta (everything it counted, it counted
// since the restart).
type Tracker struct {
	prev map[string]obs.Snapshot
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{prev: make(map[string]obs.Snapshot)} }

// Delta returns the interval delta for the node identified by key given
// its current cumulative snapshot, and whether a restart was detected.
// The first sighting of a key returns the snapshot itself (all of it is
// new to the tracker).
func (t *Tracker) Delta(key string, cur obs.Snapshot) (obs.Snapshot, bool) {
	prev, seen := t.prev[key]
	t.prev[key] = cur
	if !seen {
		return cur, false
	}
	if restarted(prev, cur) {
		return cur, true
	}
	return cur.Delta(prev), false
}

// restarted reports whether cur must come from a fresh process life.
// Every "_total" counter is monotonic within one life, so any one of
// them running backwards proves a restart — checking them all matters
// because a busy rejoin can push the fresh life's message counters past
// the old life's before the next poll, while a quieter counter (WAL
// appends, cumulative RPC time) still betrays the reset.
func restarted(prev, cur obs.Snapshot) bool {
	for k, v := range prev.Counters {
		if strings.HasSuffix(k, "_total") && cur.Get(k) < v {
			return true
		}
	}
	for i, v := range prev.RPCLat {
		if i < len(cur.RPCLat) && cur.RPCLat[i] < v {
			return true
		}
	}
	return false
}

// NodeSample is one target's state in one poll.
type NodeSample struct {
	Target Target
	// Node is the responder's overlay identity (zero when the scrape
	// failed or the HTTP fallback served it, which carries no identity).
	Node id.Node
	// Snap is the node's current cumulative snapshot.
	Snap obs.Snapshot
	// Window is the delta since the scraper last saw this node.
	Window obs.Snapshot
	// Restarted reports that the node's registry reset since last poll.
	Restarted bool
	// Source is how the snapshot was obtained: "rpc" or "http".
	Source string
	// Err is the scrape failure, if both paths failed.
	Err string
}

// Live reports whether the scrape succeeded.
func (ns *NodeSample) Live() bool { return ns.Err == "" }

// Sample is one poll of the whole fleet.
type Sample struct {
	Seq  int
	When time.Time
	// Nodes holds one entry per target, in target order.
	Nodes []NodeSample
	// Live is the number of targets that answered.
	Live int
	// Fleet sums the current snapshots of the live nodes — gauges
	// (store bytes, cache entries, leaf-set sizes) are meaningful here,
	// cumulative counters are not (a restarted node's count vanishes).
	Fleet obs.Snapshot
	// Window sums the live nodes' deltas since the previous poll —
	// the fleet's activity over the interval; rates divide by elapsed.
	Window obs.Snapshot
	// Totals carries the scraper's monotonic fleet counters: window
	// deltas of "_total" counters and latency buckets accumulated since
	// the scraper started, immune to restarts and scrape gaps.
	Totals obs.Snapshot
}

// Merged is the fleet-as-one-system view: gauges summed from the
// current snapshots, counters and the latency histogram from the
// monotonic totals. This is the snapshot the aggregator serves under
// the node="fleet" label.
func (s *Sample) Merged() obs.Snapshot {
	out := obs.Snapshot{
		Counters: make(map[string]int64, len(s.Totals.Counters)+8),
		RPCLat:   append([]int64(nil), s.Totals.RPCLat...),
	}
	for k, v := range s.Fleet.Counters {
		if !strings.HasSuffix(k, "_total") {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Totals.Counters {
		out.Counters[k] = v
	}
	return out
}

// Scraper polls a fixed target set and maintains the fleet aggregates.
// Poll is synchronous and serialized; the aggregator's HTTP endpoints
// trigger one poll per request (scrape-on-request, no background loop).
type Scraper struct {
	rpc   RPC
	httpc *http.Client

	mu      sync.Mutex
	targets []Target
	tracker *Tracker
	totals  obs.Snapshot
	seq     int
	last    *Sample
}

// NewScraper builds a scraper over the given transport and targets.
func NewScraper(rpc RPC, targets []Target) *Scraper {
	return &Scraper{
		rpc:     rpc,
		httpc:   &http.Client{Timeout: 3 * time.Second},
		targets: append([]Target(nil), targets...),
		tracker: NewTracker(),
		totals:  obs.Snapshot{Counters: make(map[string]int64), RPCLat: make([]int64, obs.LatencyBucketCount)},
	}
}

// Targets returns the scrape set.
func (s *Scraper) Targets() []Target {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Target(nil), s.targets...)
}

// Last returns the most recent sample (nil before the first Poll).
func (s *Scraper) Last() *Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Poll scrapes every target once and returns the fleet sample. A target
// that fails both collection paths is recorded with its error and
// excluded from the aggregates; the poll itself never fails.
func (s *Scraper) Poll() *Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	sample := &Sample{Seq: s.seq, When: time.Now(), Nodes: make([]NodeSample, len(s.targets))}
	var current, windows []obs.Snapshot
	for i, t := range s.targets {
		ns := &sample.Nodes[i]
		ns.Target = t
		s.scrape(ns)
		if !ns.Live() {
			continue
		}
		ns.Window, ns.Restarted = s.tracker.Delta(t.Name, ns.Snap)
		sample.Live++
		current = append(current, ns.Snap)
		windows = append(windows, ns.Window)
		s.accumulate(ns.Window)
	}
	sample.Fleet = obs.Aggregate(current...)
	sample.Window = obs.Aggregate(windows...)
	sample.Totals = cloneSnapshot(s.totals)
	s.last = sample
	return sample
}

// scrape fills one node's sample: RPC first, HTTP /metrics fallback.
func (s *Scraper) scrape(ns *NodeSample) {
	reply, err := s.rpc.InvokeAddr(ns.Target.Addr, &past.ClientObsReport{})
	if err == nil {
		rep, ok := reply.(*past.ClientObsReportReply)
		if !ok {
			ns.Err = fmt.Sprintf("unexpected reply %T", reply)
			return
		}
		ns.Node, ns.Snap, ns.Source = rep.Node, rep.Snapshot, "rpc"
		return
	}
	rpcErr := err
	if ns.Target.DebugAddr != "" {
		if snap, herr := s.scrapeHTTP(ns.Target.DebugAddr); herr == nil {
			ns.Snap, ns.Source = snap, "http"
			return
		}
	}
	ns.Err = rpcErr.Error()
}

func (s *Scraper) scrapeHTTP(debugAddr string) (obs.Snapshot, error) {
	resp, err := s.httpc.Get("http://" + debugAddr + "/metrics")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Snapshot{}, fmt.Errorf("metrics endpoint: %s", resp.Status)
	}
	return obs.ParseProm(resp.Body)
}

// accumulate folds one node's window delta into the monotonic fleet
// totals. Only "_total" counters and latency buckets accumulate —
// gauges have no meaningful sum over time — and negative deltas are
// dropped (they can only come from scrape anomalies; totals must never
// run backwards).
func (s *Scraper) accumulate(w obs.Snapshot) {
	for k, v := range w.Counters {
		if v > 0 && strings.HasSuffix(k, "_total") {
			s.totals.Counters[k] += v
		}
	}
	for i, v := range w.RPCLat {
		if v > 0 && i < len(s.totals.RPCLat) {
			s.totals.RPCLat[i] += v
		}
	}
}

func cloneSnapshot(s obs.Snapshot) obs.Snapshot {
	out := obs.Snapshot{
		Counters: make(map[string]int64, len(s.Counters)),
		RPCLat:   append([]int64(nil), s.RPCLat...),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	return out
}
