package fleetobs

import (
	"fmt"
	"math"
	"time"

	"past/internal/obs"
)

// Objective is one declarative service-level objective, evaluated
// against per-window fleet-aggregated snapshots. Exactly one of the two
// forms applies:
//
//   - latency: Threshold > 0 — the window's interpolated RPC latency
//     quantile (Quantile, 0-100) must stay under Threshold. A window
//     with no RPCs passes vacuously.
//   - ratio: Bad (and optionally Total) name counters in the window.
//     With Total set, the window breaches when bad > MaxRatio * total
//     (vacuous pass when total is 0); without Total, any bad > 0
//     breaches — a zero-tolerance count objective.
//
// Budget is the error budget: the tolerated fraction of breached
// windows. The burn rate is (breached fraction)/Budget; Budget 0 means
// zero tolerance — one breach burns infinitely.
type Objective struct {
	Name      string
	Quantile  float64
	Threshold time.Duration
	Bad       string
	Total     string
	MaxRatio  float64
	Budget    float64
}

// IsLatency reports the objective's form.
func (o Objective) IsLatency() bool { return o.Threshold > 0 }

// Breached evaluates the objective against one window.
func (o Objective) Breached(w obs.Snapshot) bool {
	if o.IsLatency() {
		if w.TotalRPCs() == 0 {
			return false
		}
		return w.RPCQuantile(o.Quantile) > o.Threshold
	}
	bad := w.Get(o.Bad)
	if o.Total == "" {
		return bad > 0
	}
	total := w.Get(o.Total)
	if total <= 0 {
		return false
	}
	return float64(bad) > o.MaxRatio*float64(total)
}

// describe renders the objective's condition.
func (o Objective) describe() string {
	switch {
	case o.IsLatency():
		return fmt.Sprintf("rpc p%g < %v", o.Quantile, o.Threshold)
	case o.Total == "":
		return fmt.Sprintf("%s == 0", o.Bad)
	default:
		return fmt.Sprintf("%s <= %.3g*%s", o.Bad, o.MaxRatio, o.Total)
	}
}

// Burn is one objective's standing over a run: how many windows were
// evaluated, how many breached, and the resulting budget burn.
type Burn struct {
	Objective Objective
	Windows   int
	Breaches  int
}

// Frac is the fraction of windows that breached.
func (b Burn) Frac() float64 {
	if b.Windows == 0 {
		return 0
	}
	return float64(b.Breaches) / float64(b.Windows)
}

// Rate is the burn rate: breached fraction over error budget. A run
// with no breaches burns 0 regardless of budget; breaches against a
// zero budget burn infinitely.
func (b Burn) Rate() float64 {
	if b.Breaches == 0 {
		return 0
	}
	if b.Objective.Budget <= 0 {
		return math.Inf(1)
	}
	return b.Frac() / b.Objective.Budget
}

// OK reports whether the objective held (burn rate within budget).
func (b Burn) OK() bool { return b.Rate() <= 1 }

// Line renders the burn as one stable report line. Passing runs render
// exactly "breaches=0 burn=0.00 OK", so seed-stable scenario summaries
// stay byte-identical across runs.
func (b Burn) Line() string {
	status := "OK"
	if !b.OK() {
		status = "BREACH"
	}
	rate := "INF"
	if r := b.Rate(); !math.IsInf(r, 1) {
		rate = fmt.Sprintf("%.2f", r)
	}
	return fmt.Sprintf("slo %-22s %-28s windows=%-3d breaches=%-3d burn=%s %s",
		b.Objective.Name, b.Objective.describe(), b.Windows, b.Breaches, rate, status)
}

// Evaluator accumulates burn state for a fixed objective set across a
// stream of windows.
type Evaluator struct {
	burns []Burn
}

// NewEvaluator starts an evaluator over the given objectives.
func NewEvaluator(objs []Objective) *Evaluator {
	e := &Evaluator{burns: make([]Burn, len(objs))}
	for i, o := range objs {
		e.burns[i].Objective = o
	}
	return e
}

// Observe evaluates every objective against one window.
func (e *Evaluator) Observe(w obs.Snapshot) {
	for i := range e.burns {
		b := &e.burns[i]
		b.Windows++
		if b.Objective.Breached(w) {
			b.Breaches++
		}
	}
}

// Burns returns the accumulated burn state, in objective order.
func (e *Evaluator) Burns() []Burn {
	return append([]Burn(nil), e.burns...)
}

// DefaultScenarioSLOs are the objectives the cluster scenario driver
// evaluates per chaos round when the caller supplies none: acked
// durability is absolute (an acknowledged insert must never be lost or
// served corrupt), invariants must hold, and the fleet's RPC p99 must
// stay under 4s — comfortably above the daemons' 2s per-hop timeout, so
// the objective only trips on pathological latency, not on routine
// timeout-bounded reroutes.
func DefaultScenarioSLOs() []Objective {
	return []Objective{
		{Name: "acked-loss", Bad: "scenario_acked_lost_total", Total: "scenario_acked_total", MaxRatio: 0, Budget: 0},
		{Name: "acked-corruption", Bad: "scenario_acked_corrupt_total", Total: "scenario_acked_total", MaxRatio: 0, Budget: 0},
		{Name: "invariant-violations", Bad: "scenario_violations_total", Budget: 0},
		{Name: "rpc-latency-p99", Quantile: 99, Threshold: 4 * time.Second, Budget: 0.1},
	}
}

// ECScenarioSLOs extends the defaults for erasure-coded fleets: served
// or repaired fragments must never fail their content checksum (lazy
// repair refuses to re-place a shard whose rebuild mismatches the map
// CRC, so corruption spreading is a zero-tolerance objective), and
// repairs must not be starved outright — some enqueued repairs may
// legitimately retry across rounds, but a fleet that fails every
// repair it attempts is burning its durability margin.
func ECScenarioSLOs() []Objective {
	return append(DefaultScenarioSLOs(),
		Objective{Name: "ec-crc-corruption", Bad: "ec_crc_failures_total", Budget: 0},
		Objective{Name: "ec-repair-starvation", Bad: "ec_repairs_failed_total", Total: "ec_repairs_enqueued_total", MaxRatio: 0.9, Budget: 0.34},
	)
}
