package fleetobs

import (
	"fmt"
	"net/http"

	"past/internal/obs"
)

// NewHandler serves the aggregator's HTTP plane over a scraper:
//
//	/metrics  combined Prometheus exposition — one series per live node
//	          (label node="<name>") plus the fleet aggregate (label
//	          node="fleet"), each metric family typed exactly once
//	/nodes    plain-text per-node scrape table
//	/healthz  200 while at least one target answers, 503 otherwise
//	/         index of the above; unknown paths are 404, not an echo
//	          of the index
//
// Collection is scrape-on-request: each /metrics or /nodes request
// triggers one synchronous fleet poll, so the aggregator adds no
// background load between scrapes.
func NewHandler(s *Scraper) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		sample := s.Poll()
		var series []obs.Labeled
		for i := range sample.Nodes {
			ns := &sample.Nodes[i]
			if !ns.Live() {
				continue
			}
			series = append(series, obs.Labeled{
				Labels: map[string]string{"node": ns.Target.Name},
				Snap:   ns.Snap,
			})
		}
		series = append(series, obs.Labeled{
			Labels: map[string]string{"node": "fleet"},
			Snap:   sample.Merged(),
		})
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePromAll(w, series)
	})
	mux.HandleFunc("/nodes", func(w http.ResponseWriter, r *http.Request) {
		sample := s.Poll()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "poll %d: %d/%d live\n", sample.Seq, sample.Live, len(sample.Nodes))
		for i := range sample.Nodes {
			ns := &sample.Nodes[i]
			if !ns.Live() {
				fmt.Fprintf(w, "%-8s %-21s DOWN %s\n", ns.Target.Name, ns.Target.Addr, ns.Err)
				continue
			}
			restarted := ""
			if ns.Restarted {
				restarted = " RESTARTED"
			}
			fmt.Fprintf(w, "%-8s %-21s %-4s id=%s lookups=%d inserts=%d store=%dB cache=%d%s\n",
				ns.Target.Name, ns.Target.Addr, ns.Source, ns.Node.Short(),
				ns.Snap.Get(obs.CtrLookups), ns.Snap.Get(obs.CtrInserts),
				ns.Snap.Get(obs.CtrStoreBytes), ns.Snap.Get(obs.CtrCacheEntries), restarted)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		last := s.Last()
		if last == nil {
			last = s.Poll()
		}
		if last.Live == 0 {
			http.Error(w, "no live targets", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok: %d/%d live\n", last.Live, len(last.Nodes))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "past fleet aggregator: %d targets\n/metrics\n/nodes\n/healthz\n", len(s.Targets()))
	})
	return mux
}
