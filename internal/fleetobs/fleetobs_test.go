package fleetobs

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"past/internal/id"
	"past/internal/obs"
	"past/internal/past"
)

func snap(pairs ...any) obs.Snapshot {
	s := obs.Snapshot{Counters: make(map[string]int64)}
	for i := 0; i < len(pairs); i += 2 {
		s.Counters[pairs[i].(string)] = int64(pairs[i+1].(int))
	}
	return s
}

func TestTrackerDelta(t *testing.T) {
	tr := NewTracker()

	// First sighting: the whole snapshot is the window.
	d, restarted := tr.Delta("n0", snap(obs.CtrMsgsIn, 10, obs.CtrLookups, 3))
	if restarted || d.Get(obs.CtrLookups) != 3 {
		t.Fatalf("first sight: delta=%v restarted=%v", d.Counters, restarted)
	}

	// Steady state: plain difference.
	d, restarted = tr.Delta("n0", snap(obs.CtrMsgsIn, 25, obs.CtrLookups, 8))
	if restarted || d.Get(obs.CtrLookups) != 5 || d.Get(obs.CtrMsgsIn) != 15 {
		t.Fatalf("steady: delta=%v restarted=%v", d.Counters, restarted)
	}

	// Reference counter ran backwards: a restart. The delta is the full
	// current snapshot — everything the new life counted — not a
	// poisonous negative difference.
	d, restarted = tr.Delta("n0", snap(obs.CtrMsgsIn, 4, obs.CtrLookups, 2))
	if !restarted || d.Get(obs.CtrLookups) != 2 {
		t.Fatalf("restart: delta=%v restarted=%v", d.Counters, restarted)
	}

	// Keys are independent tracks.
	d, restarted = tr.Delta("n1", snap(obs.CtrMsgsIn, 1, obs.CtrLookups, 1))
	if restarted || d.Get(obs.CtrLookups) != 1 {
		t.Fatalf("independent key: delta=%v restarted=%v", d.Counters, restarted)
	}

	// A busy rejoin can push the fresh life's message counters PAST the
	// old life's before the next poll; a quieter monotonic counter
	// running backwards must still betray the restart.
	tr2 := NewTracker()
	tr2.Delta("n0", snap(obs.CtrMsgsIn, 100, "logstore_wal_appends_total", 50))
	d, restarted = tr2.Delta("n0", snap(obs.CtrMsgsIn, 140, "logstore_wal_appends_total", 7))
	if !restarted || d.Get("logstore_wal_appends_total") != 7 {
		t.Fatalf("masked restart: delta=%v restarted=%v", d.Counters, restarted)
	}
}

func TestObjectiveBreached(t *testing.T) {
	// Latency form: vacuous pass on an idle window, breach only when the
	// quantile clears the threshold.
	lat := Objective{Name: "p99", Quantile: 99, Threshold: 4 * time.Second}
	if lat.Breached(obs.Snapshot{}) {
		t.Error("latency objective breached on an empty window")
	}
	var slow obs.NodeStats
	for i := 0; i < 100; i++ {
		slow.ObserveRPC(10 * time.Second)
	}
	if !lat.Breached(slow.Snapshot()) {
		t.Error("latency objective passed a 10s-per-RPC window")
	}
	var fast obs.NodeStats
	for i := 0; i < 100; i++ {
		fast.ObserveRPC(2 * time.Millisecond)
	}
	if lat.Breached(fast.Snapshot()) {
		t.Error("latency objective breached a 2ms-per-RPC window")
	}

	// Count form (no Total): any bad event breaches.
	cnt := Objective{Name: "violations", Bad: "v_total"}
	if cnt.Breached(snap("v_total", 0)) {
		t.Error("count objective breached at zero")
	}
	if !cnt.Breached(snap("v_total", 1)) {
		t.Error("count objective passed bad=1")
	}

	// Ratio form: vacuous when the denominator is zero.
	ratio := Objective{Name: "loss", Bad: "lost_total", Total: "acked_total", MaxRatio: 0.1}
	if ratio.Breached(snap("lost_total", 5, "acked_total", 0)) {
		t.Error("ratio objective breached with zero denominator")
	}
	if ratio.Breached(snap("lost_total", 1, "acked_total", 100)) {
		t.Error("ratio objective breached at 1% with a 10% budget")
	}
	if !ratio.Breached(snap("lost_total", 11, "acked_total", 100)) {
		t.Error("ratio objective passed at 11% with a 10% budget")
	}
}

func TestBurnRateAndLine(t *testing.T) {
	// No breaches burn zero regardless of budget — including budget 0 —
	// and render the pinned stable suffix scenario summaries rely on.
	clean := Burn{Objective: Objective{Name: "acked-loss", Bad: "lost_total", Total: "acked_total"}, Windows: 12}
	if clean.Rate() != 0 || !clean.OK() {
		t.Fatalf("clean burn: rate=%v ok=%v", clean.Rate(), clean.OK())
	}
	if line := clean.Line(); !strings.Contains(line, "breaches=0   burn=0.00 OK") {
		t.Errorf("clean line %q lacks the stable passing suffix", line)
	}

	// Breach against a zero budget: infinite burn, BREACH.
	hard := Burn{Objective: Objective{Name: "x", Bad: "b_total"}, Windows: 10, Breaches: 1}
	if !math.IsInf(hard.Rate(), 1) || hard.OK() {
		t.Fatalf("zero-budget breach: rate=%v ok=%v", hard.Rate(), hard.OK())
	}
	if line := hard.Line(); !strings.Contains(line, "burn=INF BREACH") {
		t.Errorf("zero-budget line %q", line)
	}

	// Budgeted objective: 1 breach in 10 windows against a 10% budget is
	// exactly burn 1.00 — at the edge, still OK; 2 breaches doubles it.
	soft := Burn{Objective: Objective{Name: "p99", Quantile: 99, Threshold: time.Second, Budget: 0.1}, Windows: 10, Breaches: 1}
	if soft.Rate() != 1 || !soft.OK() {
		t.Fatalf("at-budget: rate=%v ok=%v", soft.Rate(), soft.OK())
	}
	soft.Breaches = 2
	if soft.Rate() != 2 || soft.OK() {
		t.Fatalf("over-budget: rate=%v ok=%v", soft.Rate(), soft.OK())
	}
	if line := soft.Line(); !strings.Contains(line, "burn=2.00 BREACH") {
		t.Errorf("over-budget line %q", line)
	}
}

func TestEvaluator(t *testing.T) {
	e := NewEvaluator(DefaultScenarioSLOs())
	e.Observe(snap("scenario_acked_total", 50))                                 // clean round
	e.Observe(snap("scenario_acked_total", 50, "scenario_acked_lost_total", 1)) // loses a file
	burns := e.Burns()
	if len(burns) != 4 {
		t.Fatalf("burns = %d objectives, want 4", len(burns))
	}
	byName := make(map[string]Burn)
	for _, b := range burns {
		if b.Windows != 2 {
			t.Errorf("%s observed %d windows, want 2", b.Objective.Name, b.Windows)
		}
		byName[b.Objective.Name] = b
	}
	if b := byName["acked-loss"]; b.Breaches != 1 || b.OK() {
		t.Errorf("acked-loss: breaches=%d ok=%v, want 1 breach and BREACH", b.Breaches, b.OK())
	}
	if b := byName["acked-corruption"]; b.Breaches != 0 || !b.OK() {
		t.Errorf("acked-corruption: breaches=%d ok=%v, want clean", b.Breaches, b.OK())
	}
	if b := byName["rpc-latency-p99"]; b.Breaches != 0 || !b.OK() {
		t.Errorf("rpc-latency-p99: breaches=%d ok=%v, want vacuous pass", b.Breaches, b.OK())
	}
}

// fakeRPC serves canned ClientObsReport replies keyed by address, so
// scraper behavior is testable without booting a fleet.
type fakeRPC struct {
	replies map[string]*past.ClientObsReportReply
	down    map[string]bool
}

func (f *fakeRPC) InvokeAddr(addr string, msg any) (any, error) {
	if f.down[addr] {
		return nil, errors.New("connection refused")
	}
	rep, ok := f.replies[addr]
	if !ok {
		return nil, errors.New("no such node")
	}
	return rep, nil
}

func fakeReply(seed byte, pairs ...any) *past.ClientObsReportReply {
	var n id.Node
	n[0] = seed
	return &past.ClientObsReportReply{Node: n, Snapshot: snap(pairs...)}
}

func TestScraperPoll(t *testing.T) {
	rpc := &fakeRPC{
		replies: map[string]*past.ClientObsReportReply{
			"a:1": fakeReply(1, obs.CtrMsgsIn, 10, obs.CtrLookups+"_x", 0, obs.CtrLookups, 4, obs.CtrStoreBytes, 100),
			"b:1": fakeReply(2, obs.CtrMsgsIn, 20, obs.CtrLookups, 6, obs.CtrStoreBytes, 50),
		},
		down: map[string]bool{"c:1": true},
	}
	s := NewScraper(rpc, []Target{
		{Name: "node00", Addr: "a:1"},
		{Name: "node01", Addr: "b:1"},
		{Name: "node02", Addr: "c:1"},
	})

	p1 := s.Poll()
	if p1.Seq != 1 || p1.Live != 2 || len(p1.Nodes) != 3 {
		t.Fatalf("poll 1: seq=%d live=%d nodes=%d", p1.Seq, p1.Live, len(p1.Nodes))
	}
	if p1.Nodes[2].Live() || p1.Nodes[2].Err == "" {
		t.Fatalf("down target recorded live: %+v", p1.Nodes[2])
	}
	if p1.Nodes[0].Source != "rpc" || p1.Nodes[0].Node[0] != 1 {
		t.Fatalf("rpc scrape: %+v", p1.Nodes[0])
	}
	// Fleet sums current snapshots of the live nodes (gauges included);
	// totals accumulate only the "_total" counters.
	if got := p1.Fleet.Get(obs.CtrStoreBytes); got != 150 {
		t.Errorf("fleet store bytes = %d, want 150", got)
	}
	if got := p1.Totals.Counters[obs.CtrLookups]; got != 10 {
		t.Errorf("totals lookups = %d, want 10", got)
	}
	if _, ok := p1.Totals.Counters[obs.CtrStoreBytes]; ok {
		t.Error("a gauge leaked into the monotonic totals")
	}

	// Second poll: node00 restarts (counters reset), node01 advances.
	// Totals keep node01's delta plus node00's fresh count, never going
	// backwards.
	rpc.replies["a:1"] = fakeReply(1, obs.CtrMsgsIn, 2, obs.CtrLookups, 1, obs.CtrStoreBytes, 10)
	rpc.replies["b:1"] = fakeReply(2, obs.CtrMsgsIn, 30, obs.CtrLookups, 9, obs.CtrStoreBytes, 50)
	p2 := s.Poll()
	if !p2.Nodes[0].Restarted {
		t.Fatal("restart not detected")
	}
	if got := p2.Window.Get(obs.CtrLookups); got != 4 { // 1 (fresh life) + 3 (delta)
		t.Errorf("window lookups = %d, want 4", got)
	}
	if got := p2.Totals.Counters[obs.CtrLookups]; got != 14 {
		t.Errorf("totals lookups = %d, want 14", got)
	}
	merged := p2.Merged()
	if merged.Get(obs.CtrLookups) != 14 || merged.Get(obs.CtrStoreBytes) != 60 {
		t.Errorf("merged: lookups=%d store=%d, want 14 and 60", merged.Get(obs.CtrLookups), merged.Get(obs.CtrStoreBytes))
	}
	if s.Last() != p2 {
		t.Error("Last() is not the latest poll")
	}
}

func TestScraperHTTPFallback(t *testing.T) {
	// A node whose RPC path is down but whose debug endpoint serves
	// /metrics is still collected, marked source "http".
	var st obs.NodeStats
	st.Lookups.Add(5)
	st.MsgsIn.Add(9)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		obs.WriteProm(w, st.Snapshot(), nil)
	}))
	defer backend.Close()

	rpc := &fakeRPC{down: map[string]bool{"x:1": true}}
	s := NewScraper(rpc, []Target{{Name: "node00", Addr: "x:1", DebugAddr: strings.TrimPrefix(backend.URL, "http://")}})
	p := s.Poll()
	ns := p.Nodes[0]
	if !ns.Live() || ns.Source != "http" || ns.Snap.Get(obs.CtrLookups) != 5 {
		t.Fatalf("http fallback: live=%v source=%q lookups=%d err=%q",
			ns.Live(), ns.Source, ns.Snap.Get(obs.CtrLookups), ns.Err)
	}
}

func TestHandler(t *testing.T) {
	rpc := &fakeRPC{
		replies: map[string]*past.ClientObsReportReply{
			"a:1": fakeReply(1, obs.CtrMsgsIn, 10, obs.CtrLookups, 4),
		},
		down: map[string]bool{"b:1": true},
	}
	s := NewScraper(rpc, []Target{{Name: "node00", Addr: "a:1"}, {Name: "node01", Addr: "b:1"}})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		`past_lookups_total{node="node00"} 4`,
		`past_lookups_total{node="fleet"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "node01") {
		t.Error("/metrics carries a series for the dead node")
	}

	code, body = get("/nodes")
	if code != http.StatusOK || !strings.Contains(body, "DOWN") || !strings.Contains(body, "node00") {
		t.Errorf("/nodes: status %d body %q", code, body)
	}

	if code, _ = get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz with a live node: status %d", code)
	}

	code, body = get("/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", code, body)
	}
	if code, _ = get("/no-such"); code != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", code)
	}

	// With every target down the aggregator reports itself unhealthy.
	rpc.down["a:1"] = true
	s.Poll()
	if code, _ = get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz with no live nodes: status %d, want 503", code)
	}
}
