package fleetobs_test

import (
	"crypto/rand"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"past/internal/cluster"
	"past/internal/daemon"
	"past/internal/fleetobs"
	"past/internal/id"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/topology"
	"past/internal/transport"
)

// TestMain is the self-exec pivot: re-executed with the daemon sentinel
// in the environment, this binary IS a pastd process.
func TestMain(m *testing.M) {
	cluster.MaybeRunDaemon(daemon.Run)
	os.Exit(m.Run())
}

// TestFleetObsLive is the fleet-observability demo against a real
// multi-process cluster (`make fleet-obs-demo` runs exactly this): boot
// five pastd processes, push traffic through them, then assert that
// (a) the aggregated /metrics endpoint materializes per-node series
// plus the node="fleet" aggregate, and (b) a client-initiated trace
// comes back stitched across at least two distinct processes with
// per-hop RPC latencies.
func TestFleetObsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live multi-process demo (run via make fleet-obs-demo)")
	}
	c, err := cluster.Start(cluster.Config{Nodes: 5, Seed: 77, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("start fleet: %v", err)
	}
	defer c.Close()

	const files = 8
	ids := make([]id.File, files)
	for i := 0; i < files; i++ {
		f, err := c.InsertVia(i%5, fmt.Sprintf("obs-%d", i), []byte(strings.Repeat("x", 64+i)))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		ids[i] = f
	}
	for i, f := range ids {
		found, _, err := c.LookupVia((i+2)%5, f)
		if err != nil || !found {
			t.Fatalf("lookup %d: found=%v err=%v", i, found, err)
		}
	}

	// The aggregation plane: its own client transport, one target per
	// process, the combined endpoint over a scrape-on-request scraper.
	var cid id.Node
	if _, err := rand.Read(cid[:]); err != nil {
		t.Fatal(err)
	}
	tr, err := transport.New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	targets := make([]fleetobs.Target, len(c.Procs))
	for i, p := range c.Procs {
		targets[i] = fleetobs.Target{Name: fmt.Sprintf("node%02d", i), Addr: p.Addr, DebugAddr: p.DebugAddr}
	}
	scraper := fleetobs.NewScraper(tr, targets)
	srv := httptest.NewServer(fleetobs.NewHandler(scraper))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	exposition := string(body)
	for _, want := range []string{
		`past_inserts_total{node="node00"}`,
		`past_inserts_total{node="node04"}`,
		`past_lookups_total{node="fleet"}`,
		`past_rpc_latency_seconds_bucket{node="fleet",le="+Inf"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	sample := scraper.Last()
	if sample == nil || sample.Live != 5 {
		t.Fatalf("scrape: sample=%v", sample)
	}
	merged := sample.Merged()
	if got := merged.Get(obs.CtrInserts); got < files {
		t.Errorf("fleet inserts = %d, want >= %d", got, files)
	}
	if got := merged.Get(obs.CtrLookups); got < files {
		t.Errorf("fleet lookups = %d, want >= %d", got, files)
	}

	// Cross-process trace: a fresh trace context rides the client RPC to
	// the access point and the RouteRequest across relays; the stitched
	// route must name at least two distinct processes and carry a wall-
	// clock latency on every forwarding hop. With 8 keys and 5 access
	// points, at least one (key, access point) pair routes remotely.
	var lr *past.ClientLookupReply
	bestProcs := 0
search:
	for _, f := range ids {
		for i := 0; i < 5; i++ {
			reply, err := c.TraceVia(i, f)
			if err != nil {
				t.Fatalf("trace via %d: %v", i, err)
			}
			if !reply.Found {
				t.Fatalf("trace via %d: file %s not found", i, f.Short())
			}
			procs := make(map[id.Node]bool)
			for _, h := range reply.Trace {
				procs[h.From] = true
			}
			if len(procs) >= 2 {
				lr, bestProcs = reply, len(procs)
				break search
			}
		}
	}
	if lr == nil {
		t.Fatal("no trace crossed a process boundary across 8 keys x 5 access points")
	}
	if lr.TraceID == 0 {
		t.Error("stitched trace lost its trace id")
	}
	forwards := 0
	for _, h := range lr.Trace {
		if h.From != h.To && !h.Failed {
			forwards++
			if h.RPCNanos <= 0 {
				t.Errorf("forwarding hop %s has no RPC latency", h)
			}
		}
	}
	if forwards == 0 {
		t.Error("multi-process trace has no forwarding hop records")
	}
	t.Logf("trace %016x: %d records, %d processes", lr.TraceID, len(lr.Trace), bestProcs)
}
