package cert

import (
	"errors"
	"math/rand"
	"testing"

	"past/internal/id"
)

// detRand is a deterministic io.Reader for key generation in tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) { return d.r.Read(p) }

func newTestIssuer(t *testing.T, seed int64) (*Issuer, detRand) {
	t.Helper()
	rng := detRand{rand.New(rand.NewSource(seed))}
	iss, err := NewIssuer(rng)
	if err != nil {
		t.Fatal(err)
	}
	return iss, rng
}

func TestFileCertRoundTrip(t *testing.T) {
	iss, rng := newTestIssuer(t, 1)
	card, err := iss.IssueCard(rng, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("the content of the file")
	fc, err := card.IssueFileCert("report.pdf", content, 5, 42, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if fc.FileID != id.NewFile("report.pdf", card.PublicKey(), 42) {
		t.Fatal("fileId not derived per the paper")
	}
	if err := fc.Verify(iss.PublicKey(), content); err != nil {
		t.Fatal(err)
	}
	// Verification without content re-check also passes.
	if err := fc.Verify(iss.PublicKey(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestFileCertDetectsTampering(t *testing.T) {
	iss, rng := newTestIssuer(t, 2)
	card, _ := iss.IssueCard(rng, 1<<30)
	content := []byte("data")
	fc, err := card.IssueFileCert("f", content, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	if err := fc.Verify(iss.PublicKey(), []byte("other")); !errors.Is(err, ErrContentHash) {
		t.Fatalf("corrupt content: err = %v; want ErrContentHash", err)
	}

	tampered := *fc
	tampered.K = 10
	if err := tampered.Verify(iss.PublicKey(), content); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered k: err = %v; want ErrBadSignature", err)
	}

	otherIssuer, _ := newTestIssuer(t, 3)
	if err := fc.Verify(otherIssuer.PublicKey(), content); !errors.Is(err, ErrBadIssuer) {
		t.Fatalf("wrong issuer: err = %v; want ErrBadIssuer", err)
	}
}

func TestFileCertRejectsBadK(t *testing.T) {
	iss, rng := newTestIssuer(t, 4)
	card, _ := iss.IssueCard(rng, 1<<30)
	if _, err := card.IssueFileCert("f", []byte("x"), 0, 1, 0); !errors.Is(err, ErrBadReplication) {
		t.Fatalf("err = %v; want ErrBadReplication", err)
	}
}

func TestQuotaDebitOnIssue(t *testing.T) {
	iss, rng := newTestIssuer(t, 5)
	card, _ := iss.IssueCard(rng, 100)
	// 30 bytes * k=3 = 90, fits.
	if _, err := card.IssueFileCert("a", make([]byte, 30), 3, 1, 0); err != nil {
		t.Fatal(err)
	}
	if card.Quota().Used() != 90 {
		t.Fatalf("used = %d; want 90", card.Quota().Used())
	}
	// Next insert exceeds quota.
	if _, err := card.IssueFileCert("b", make([]byte, 30), 3, 2, 0); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v; want ErrQuotaExceeded", err)
	}
	// Credit and retry.
	card.Quota().Credit(90)
	if _, err := card.IssueFileCert("b", make([]byte, 30), 3, 3, 0); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaNegativeDebit(t *testing.T) {
	q := NewQuota(10)
	if err := q.Debit(-1); err == nil {
		t.Fatal("negative debit must fail")
	}
	q.Credit(100)
	if q.Used() != 0 {
		t.Fatal("over-credit must clamp at zero")
	}
	if q.Limit() != 10 {
		t.Fatal("limit accessor wrong")
	}
}

func TestStoreReceipt(t *testing.T) {
	iss, rng := newTestIssuer(t, 6)
	owner, _ := iss.IssueCard(rng, 1<<30)
	storer, _ := iss.IssueCard(rng, 1<<30)
	fc, _ := owner.IssueFileCert("f", []byte("x"), 1, 1, 0)

	r := storer.IssueStoreReceipt(fc.FileID)
	if r.Node != storer.NodeID() {
		t.Fatal("receipt node mismatch")
	}
	if err := r.Verify(storer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(owner.PublicKey()); err == nil {
		t.Fatal("receipt must not verify against a different node's key")
	}
	forged := *r
	forged.FileID = id.NewFile("g", owner.PublicKey(), 9)
	if err := forged.Verify(storer.PublicKey()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged receipt: err = %v; want ErrBadSignature", err)
	}
}

func TestReclaimCertAndReceipt(t *testing.T) {
	iss, rng := newTestIssuer(t, 7)
	owner, _ := iss.IssueCard(rng, 1<<30)
	attacker, _ := iss.IssueCard(rng, 1<<30)
	storer, _ := iss.IssueCard(rng, 1<<30)
	fc, _ := owner.IssueFileCert("f", []byte("x"), 1, 1, 0)

	rc := owner.IssueReclaimCert(fc.FileID)
	if err := rc.Verify(iss.PublicKey(), fc); err != nil {
		t.Fatal(err)
	}

	// A different card cannot reclaim someone else's file.
	evil := attacker.IssueReclaimCert(fc.FileID)
	if err := evil.Verify(iss.PublicKey(), fc); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("foreign reclaim: err = %v; want ErrWrongOwner", err)
	}

	rr := storer.IssueReclaimReceipt(fc.FileID, 123)
	if err := rr.Verify(storer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if rr.Size != 123 {
		t.Fatal("size not carried")
	}
	bad := *rr
	bad.Size = 999
	if err := bad.Verify(storer.PublicKey()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered size: err = %v; want ErrBadSignature", err)
	}
}

func TestNodeIDFromCard(t *testing.T) {
	iss, rng := newTestIssuer(t, 8)
	card, _ := iss.IssueCard(rng, 1)
	if card.NodeID() != id.NodeFromPublicKey(card.PublicKey()) {
		t.Fatal("NodeID must be SHA-1 of the card public key")
	}
}

func TestContentHashStable(t *testing.T) {
	a := ContentHash([]byte("x"))
	b := ContentHash([]byte("x"))
	c := ContentHash([]byte("y"))
	if a != b || a == c {
		t.Fatal("content hash must be deterministic and discriminating")
	}
}

func BenchmarkIssueFileCert(b *testing.B) {
	rng := detRand{rand.New(rand.NewSource(1))}
	iss, _ := NewIssuer(rng)
	card, _ := iss.IssueCard(rng, 1<<60)
	content := make([]byte, 1024)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := card.IssueFileCert("f", content, 5, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyFileCert(b *testing.B) {
	rng := detRand{rand.New(rand.NewSource(1))}
	iss, _ := NewIssuer(rng)
	card, _ := iss.IssueCard(rng, 1<<60)
	content := make([]byte, 1024)
	fc, _ := card.IssueFileCert("f", content, 5, 1, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fc.Verify(iss.PublicKey(), content); err != nil {
			b.Fatal(err)
		}
	}
}
