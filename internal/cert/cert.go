// Package cert implements PAST's security artifacts (section 2.3 of the
// paper): smartcards holding a private/public key pair whose public key
// is signed by the card issuer, file certificates, store receipts,
// reclaim certificates and receipts, and the per-user storage quota the
// certificates enforce.
//
// The smartcard is simulated in software with ed25519 keys. The paper's
// trust assumptions carry over: certificates bind fileIds to content
// hashes and replication factors so storage nodes and clients can verify
// the integrity and authenticity of stored content, and receipts let a
// client verify that k diverse replicas were actually created.
package cert

import (
	"crypto/ed25519"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"past/internal/id"
)

// Errors returned by verification and quota operations.
var (
	ErrBadSignature   = errors.New("cert: bad signature")
	ErrBadIssuer      = errors.New("cert: card public key not signed by issuer")
	ErrContentHash    = errors.New("cert: content does not match certificate hash")
	ErrQuotaExceeded  = errors.New("cert: storage quota exceeded")
	ErrWrongOwner     = errors.New("cert: certificate owner mismatch")
	ErrBadReplication = errors.New("cert: replication factor out of range")
)

// Issuer is the smartcard issuer: the root of trust that signs card
// public keys.
type Issuer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewIssuer creates an issuer with keys read from rng (use
// crypto/rand.Reader in production, a seeded reader in tests).
func NewIssuer(rng io.Reader) (*Issuer, error) {
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("cert: generate issuer key: %w", err)
	}
	return &Issuer{priv: priv, pub: pub}, nil
}

// PublicKey returns the issuer's verification key.
func (i *Issuer) PublicKey() ed25519.PublicKey { return i.pub }

// IssueCard creates a smartcard with a fresh key pair, a quota of quota
// bytes, and the issuer's signature over the card's public key.
func (i *Issuer) IssueCard(rng io.Reader, quota int64) (*Smartcard, error) {
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("cert: generate card key: %w", err)
	}
	return &Smartcard{
		priv:      priv,
		pub:       pub,
		issuerSig: ed25519.Sign(i.priv, pub),
		quota:     &Quota{limit: quota},
	}, nil
}

// Smartcard generates and verifies certificates and maintains the
// holder's storage quota.
type Smartcard struct {
	priv      ed25519.PrivateKey
	pub       ed25519.PublicKey
	issuerSig []byte
	quota     *Quota
}

// PublicKey returns the card's public key.
func (c *Smartcard) PublicKey() ed25519.PublicKey { return c.pub }

// IssuerSig returns the issuer's signature over the card's public key.
func (c *Smartcard) IssuerSig() []byte { return c.issuerSig }

// NodeID derives the card holder's nodeId as the SHA-1 hash of the
// card's public key (section 2 of the paper).
func (c *Smartcard) NodeID() id.Node { return id.NodeFromPublicKey(c.pub) }

// Quota returns the card's quota ledger.
func (c *Smartcard) Quota() *Quota { return c.quota }

// ContentHash is the SHA-1 hash of file content stored in certificates.
func ContentHash(content []byte) [20]byte { return sha1.Sum(content) }

// FileCertificate binds a fileId to the content hash, replication
// factor, salt, creation date, and owner; it is signed by the owner's
// card (section 2.2).
type FileCertificate struct {
	FileID      id.File
	ContentHash [20]byte
	K           int
	Salt        uint64
	Created     int64 // owner-asserted creation time, unix seconds
	Owner       ed25519.PublicKey
	OwnerSig    []byte // issuer's signature over Owner
	Sig         []byte // owner's signature over the fields above
}

func (fc *FileCertificate) signingBytes() []byte {
	buf := make([]byte, 0, 64+len(fc.Owner))
	buf = append(buf, fc.FileID[:]...)
	buf = append(buf, fc.ContentHash[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(fc.K))
	buf = binary.BigEndian.AppendUint64(buf, fc.Salt)
	buf = binary.BigEndian.AppendUint64(buf, uint64(fc.Created))
	buf = append(buf, fc.Owner...)
	return buf
}

// IssueFileCert creates and signs a file certificate for content to be
// inserted under the given name with replication factor k, debiting
// size*k bytes against the card's quota. The fileId is the SHA-1 hash of
// the file name, the owner's public key, and the salt.
func (c *Smartcard) IssueFileCert(name string, content []byte, k int, salt uint64, created int64) (*FileCertificate, error) {
	if k < 1 {
		return nil, ErrBadReplication
	}
	if err := c.quota.Debit(int64(len(content)) * int64(k)); err != nil {
		return nil, err
	}
	fc := &FileCertificate{
		FileID:      id.NewFile(name, c.pub, salt),
		ContentHash: ContentHash(content),
		K:           k,
		Salt:        salt,
		Created:     created,
		Owner:       c.pub,
		OwnerSig:    c.issuerSig,
	}
	fc.Sig = ed25519.Sign(c.priv, fc.signingBytes())
	return fc, nil
}

// Verify checks the certificate chain (issuer signed the owner key, the
// owner signed the certificate) and, if content is non-nil, that the
// content matches the certified hash. Storage nodes run this before
// accepting responsibility for a replica.
func (fc *FileCertificate) Verify(issuerPub ed25519.PublicKey, content []byte) error {
	if fc.K < 1 {
		return ErrBadReplication
	}
	if !ed25519.Verify(issuerPub, fc.Owner, fc.OwnerSig) {
		return ErrBadIssuer
	}
	if !ed25519.Verify(fc.Owner, fc.signingBytes(), fc.Sig) {
		return ErrBadSignature
	}
	if content != nil && ContentHash(content) != fc.ContentHash {
		return ErrContentHash
	}
	return nil
}

// StoreReceipt is issued by each node that accepts responsibility for a
// replica; the client verifies k receipts to confirm the requested
// number of copies exists.
type StoreReceipt struct {
	FileID id.File
	Node   id.Node
	Sig    []byte
}

func storeReceiptBytes(f id.File, n id.Node) []byte {
	buf := make([]byte, 0, len(f)+len(n)+2)
	buf = append(buf, 'S', 'R')
	buf = append(buf, f[:]...)
	buf = append(buf, n[:]...)
	return buf
}

// IssueStoreReceipt signs a receipt confirming this card's node stores a
// replica of the file.
func (c *Smartcard) IssueStoreReceipt(f id.File) *StoreReceipt {
	n := c.NodeID()
	return &StoreReceipt{FileID: f, Node: n, Sig: ed25519.Sign(c.priv, storeReceiptBytes(f, n))}
}

// Verify checks the receipt against the storing node's public key.
func (r *StoreReceipt) Verify(nodePub ed25519.PublicKey) error {
	if id.NodeFromPublicKey(nodePub) != r.Node {
		return ErrWrongOwner
	}
	if !ed25519.Verify(nodePub, storeReceiptBytes(r.FileID, r.Node), r.Sig) {
		return ErrBadSignature
	}
	return nil
}

// ReclaimCertificate authorizes reclaiming the storage of a file; nodes
// verify that the file's legitimate owner requested the operation.
type ReclaimCertificate struct {
	FileID   id.File
	Owner    ed25519.PublicKey
	OwnerSig []byte
	Sig      []byte
}

func reclaimBytes(f id.File, owner ed25519.PublicKey) []byte {
	buf := make([]byte, 0, len(f)+len(owner)+2)
	buf = append(buf, 'R', 'C')
	buf = append(buf, f[:]...)
	buf = append(buf, owner...)
	return buf
}

// IssueReclaimCert creates a signed reclaim certificate for fileId f.
func (c *Smartcard) IssueReclaimCert(f id.File) *ReclaimCertificate {
	return &ReclaimCertificate{
		FileID:   f,
		Owner:    c.pub,
		OwnerSig: c.issuerSig,
		Sig:      ed25519.Sign(c.priv, reclaimBytes(f, c.pub)),
	}
}

// Verify checks the reclaim certificate chain and that it was issued by
// the owner recorded in the file certificate.
func (rc *ReclaimCertificate) Verify(issuerPub ed25519.PublicKey, fileCert *FileCertificate) error {
	if !ed25519.Verify(issuerPub, rc.Owner, rc.OwnerSig) {
		return ErrBadIssuer
	}
	if !ed25519.Verify(rc.Owner, reclaimBytes(rc.FileID, rc.Owner), rc.Sig) {
		return ErrBadSignature
	}
	if fileCert != nil && !fileCert.Owner.Equal(rc.Owner) {
		return ErrWrongOwner
	}
	return nil
}

// ReclaimReceipt is returned by a storing node after it discards its
// replica; the client verifies it for a quota credit.
type ReclaimReceipt struct {
	FileID id.File
	Node   id.Node
	Size   int64
	Sig    []byte
}

func reclaimReceiptBytes(f id.File, n id.Node, size int64) []byte {
	buf := make([]byte, 0, len(f)+len(n)+10)
	buf = append(buf, 'R', 'R')
	buf = append(buf, f[:]...)
	buf = append(buf, n[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(size))
	return buf
}

// IssueReclaimReceipt signs a receipt for a discarded replica of the
// given size.
func (c *Smartcard) IssueReclaimReceipt(f id.File, size int64) *ReclaimReceipt {
	n := c.NodeID()
	return &ReclaimReceipt{FileID: f, Node: n, Size: size,
		Sig: ed25519.Sign(c.priv, reclaimReceiptBytes(f, n, size))}
}

// Verify checks the receipt against the storing node's public key.
func (r *ReclaimReceipt) Verify(nodePub ed25519.PublicKey) error {
	if id.NodeFromPublicKey(nodePub) != r.Node {
		return ErrWrongOwner
	}
	if !ed25519.Verify(nodePub, reclaimReceiptBytes(r.FileID, r.Node, r.Size), r.Sig) {
		return ErrBadSignature
	}
	return nil
}

// Quota is the storage ledger a smartcard maintains: demand for storage
// can never exceed what the holder is entitled to, which is PAST's
// defense against storage exhaustion (section 3.5).
type Quota struct {
	limit int64
	used  int64
}

// NewQuota creates a ledger with the given byte limit.
func NewQuota(limit int64) *Quota { return &Quota{limit: limit} }

// Debit reserves n bytes, failing with ErrQuotaExceeded if the limit
// would be crossed.
func (q *Quota) Debit(n int64) error {
	if n < 0 {
		return fmt.Errorf("cert: negative debit %d", n)
	}
	if q.used+n > q.limit {
		return fmt.Errorf("%w: used %d + %d > limit %d", ErrQuotaExceeded, q.used, n, q.limit)
	}
	q.used += n
	return nil
}

// Credit releases n bytes (after a verified reclaim).
func (q *Quota) Credit(n int64) {
	q.used -= n
	if q.used < 0 {
		q.used = 0
	}
}

// Used returns the bytes currently debited.
func (q *Quota) Used() int64 { return q.used }

// Limit returns the quota limit.
func (q *Quota) Limit() int64 { return q.limit }
