package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"past/internal/fleetobs"
	"past/internal/id"
	"past/internal/obs"
)

// Fault kinds at the process level.
const (
	FaultKill = "sigkill" // crash: no leave, logstore recovery on restart
	FaultTerm = "sigterm" // graceful: offload replicas, clean store close
)

// Fault is one planned process-level fault: in round Round, node Node
// receives Kind and is then restarted (rejoining through a live peer).
type Fault struct {
	Round int
	Node  int
	Kind  string
}

// Scenario names.
const (
	ScenarioMixed    = "mixed"    // seeded mix of sigkill and sigterm
	ScenarioKill     = "kill"     // sigkill only
	ScenarioGraceful = "graceful" // sigterm only
	ScenarioRolling  = "rolling"  // staggered rolling restart, one node per round in index order
)

// PlanFaults derives the deterministic fault schedule: same scenario,
// node count, rounds, kill rate, and seed — same plan, byte for byte.
// Per round it disturbs max(1, round(killRate*nodes)) distinct victims
// (capped at nodes-1 so the fleet always keeps a live member).
func PlanFaults(scenario string, nodes, rounds int, killRate float64, seed int64) ([]Fault, error) {
	if nodes <= 1 {
		return nil, fmt.Errorf("cluster: fault plans need at least 2 nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	var plan []Fault
	switch scenario {
	case ScenarioRolling:
		for r := 0; r < rounds; r++ {
			plan = append(plan, Fault{Round: r, Node: r % nodes, Kind: FaultTerm})
		}
	case ScenarioMixed, ScenarioKill, ScenarioGraceful:
		victims := int(math.Round(killRate * float64(nodes)))
		if victims < 1 {
			victims = 1
		}
		if victims > nodes-1 {
			victims = nodes - 1
		}
		for r := 0; r < rounds; r++ {
			perm := rng.Perm(nodes)
			for v := 0; v < victims; v++ {
				kind := FaultKill
				switch scenario {
				case ScenarioGraceful:
					kind = FaultTerm
				case ScenarioMixed:
					if rng.Intn(2) == 1 {
						kind = FaultTerm
					}
				}
				plan = append(plan, Fault{Round: r, Node: perm[v], Kind: kind})
			}
		}
	default:
		return nil, fmt.Errorf("cluster: unknown scenario %q (want %s, %s, %s, or %s)",
			scenario, ScenarioMixed, ScenarioKill, ScenarioGraceful, ScenarioRolling)
	}
	return plan, nil
}

// PlanFingerprint hashes a fault plan into a short stable identifier.
func PlanFingerprint(plan []Fault) string {
	h := sha256.New()
	for _, f := range plan {
		fmt.Fprintf(h, "%d:%d:%s\n", f.Round, f.Node, f.Kind)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ScenarioConfig shapes a live-chaos run against a started Cluster.
type ScenarioConfig struct {
	// Scenario picks the fault mix (default ScenarioMixed).
	Scenario string
	// Rounds is the number of fault rounds (default 6).
	Rounds int
	// KillRate is the fraction of the fleet disturbed per round
	// (default 0.1; at least one victim per round regardless).
	KillRate float64
	// FilesPerRound inserts this many new files before each round, and
	// once more before round 0 (default 6).
	FilesPerRound int
	// PayloadBytes caps the deterministic payload size (default 2048).
	PayloadBytes int
	// Seed drives the schedule, victims, payloads, and access-point
	// choice. Defaults to the cluster's seed.
	Seed int64
	// ConvergeTimeout bounds the post-round repair wait (default 45s).
	ConvergeTimeout time.Duration
	// Deadline, when nonzero, stops scheduling new rounds past it (the
	// CLI's -duration). Cutting a run short is recorded in the result
	// and forfeits summary determinism.
	Deadline time.Time
	// NoCheck skips the live invariant audit and acked-write
	// verification: the fleet is churned but not judged (the CLI
	// without -check). Fsck after every life still runs.
	NoCheck bool
	// SLOs are the objectives evaluated per round against the fleet's
	// aggregated metric window (nil: fleetobs.DefaultScenarioSLOs).
	SLOs []fleetobs.Objective
	// Out receives narration (nil: the cluster's writer).
	Out io.Writer
}

func (s *ScenarioConfig) withDefaults(c *Cluster) {
	if s.Scenario == "" {
		s.Scenario = ScenarioMixed
	}
	if s.Rounds <= 0 {
		s.Rounds = 6
	}
	if s.KillRate <= 0 {
		s.KillRate = 0.1
	}
	if s.FilesPerRound <= 0 {
		s.FilesPerRound = 6
	}
	if s.PayloadBytes <= 0 {
		s.PayloadBytes = 2048
	}
	if s.Seed == 0 {
		s.Seed = c.cfg.Seed
	}
	if s.ConvergeTimeout <= 0 {
		s.ConvergeTimeout = 45 * time.Second
	}
	if s.SLOs == nil {
		s.SLOs = fleetobs.DefaultScenarioSLOs()
	}
	if s.Out == nil {
		s.Out = c.cfg.Out
	}
}

// ackedWrite is one insert the fleet acknowledged: the durability
// contract the checker holds it to across every subsequent fault.
type ackedWrite struct {
	file id.File
	name string
	sum  [32]byte
}

// ScenarioResult aggregates a run. Summary() renders only the fields
// that are deterministic under a fixed seed when the run passes, so
// repeated passing runs produce identical summaries.
type ScenarioResult struct {
	Scenario        string
	Nodes           int
	K               int
	Seed            int64
	Rounds          int // planned
	RoundsRun       int
	PlanFP          string
	PlannedKills    int
	PlannedTerms    int
	Kills           int // faults actually delivered
	Terms           int
	Restarts        int
	Inserted        int // inserts attempted
	Acked           int // inserts acknowledged
	LostAcked       int // acked writes that later failed lookup
	CorruptAcked    int // acked writes that came back with different bytes
	FsckErrors      int
	Checked         bool // the invariant audit ran (false: churn only)
	Violations      int  // invariant violations still standing after convergence
	ViolationDetail []string
	// SLO is the per-objective burn state over the run's round windows.
	// On a passing run each line is deterministic under a fixed seed
	// (breaches=0, burn=0.00), so it may appear in seed-stable reports.
	SLO     []fleetobs.Burn
	Elapsed time.Duration
}

// Passed reports the run's verdict.
func (r *ScenarioResult) Passed() bool {
	return r.RoundsRun == r.Rounds &&
		r.Kills+r.Terms == r.PlannedKills+r.PlannedTerms &&
		r.LostAcked == 0 && r.CorruptAcked == 0 &&
		r.FsckErrors == 0 && r.Violations == 0
}

// Summary is the stable scenario summary: identical across runs with
// the same seed whenever both runs pass.
func (r *ScenarioResult) Summary() string {
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	check := "on"
	if !r.Checked {
		check = "off"
	}
	return fmt.Sprintf(
		"scenario=%s nodes=%d k=%d seed=%d rounds=%d plan=%s faults=%d (kill=%d term=%d) check=%s acked-loss=%d corrupt=%d fsck-errors=%d violations=%d verdict=%s",
		r.Scenario, r.Nodes, r.K, r.Seed, r.Rounds, r.PlanFP,
		r.PlannedKills+r.PlannedTerms, r.PlannedKills, r.PlannedTerms,
		check, r.LostAcked, r.CorruptAcked, r.FsckErrors, r.Violations, verdict)
}

// String renders the full (run-variable) report.
func (r *ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Summary())
	fmt.Fprintf(&b, "rounds run %d/%d, faults delivered %d/%d, restarts %d, inserts %d acked %d, elapsed %v\n",
		r.RoundsRun, r.Rounds, r.Kills+r.Terms, r.PlannedKills+r.PlannedTerms,
		r.Restarts, r.Inserted, r.Acked, r.Elapsed.Round(time.Millisecond))
	for _, burn := range r.SLO {
		fmt.Fprintf(&b, "%s\n", burn.Line())
	}
	for _, v := range r.ViolationDetail {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	return b.String()
}

// RunScenario executes the seeded fault schedule against the live
// fleet: per round it inserts fresh files through rotating access
// points, delivers the round's process-level faults (SIGKILL or
// SIGTERM, fsck of the victim's store while it is down, restart with
// rejoin), waits for the replica invariants to converge, and verifies
// every acked write is still retrievable byte for byte.
func RunScenario(c *Cluster, cfg ScenarioConfig) (*ScenarioResult, error) {
	cfg.withDefaults(c)
	plan, err := PlanFaults(cfg.Scenario, len(c.Procs), cfg.Rounds, cfg.KillRate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Scenario: cfg.Scenario,
		Nodes:    len(c.Procs),
		K:        c.cfg.K,
		Seed:     cfg.Seed,
		Rounds:   cfg.Rounds,
		PlanFP:   PlanFingerprint(plan),
		Checked:  !cfg.NoCheck,
	}
	for _, f := range plan {
		if f.Kind == FaultKill {
			res.PlannedKills++
		} else {
			res.PlannedTerms++
		}
	}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()

	trafficRng := rand.New(rand.NewSource(cfg.Seed + 0x74726166)) // payloads + access points
	var acked []ackedWrite

	insertBatch := func(round int) error {
		for j := 0; j < cfg.FilesPerRound; j++ {
			name := fmt.Sprintf("s%d-r%d-f%d", cfg.Seed, round, j)
			size := 64 + trafficRng.Intn(cfg.PayloadBytes-63)
			content := make([]byte, size)
			trafficRng.Read(content)
			res.Inserted++
			var lastErr error
			okInsert := false
			for attempt := 0; attempt < 4 && !okInsert; attempt++ {
				live := c.LiveIndexes()
				if len(live) == 0 {
					return fmt.Errorf("cluster: no live nodes to insert through")
				}
				ap := live[trafficRng.Intn(len(live))]
				fid, err := c.InsertVia(ap, name, content)
				if err != nil {
					lastErr = err
					time.Sleep(150 * time.Millisecond)
					continue
				}
				acked = append(acked, ackedWrite{file: fid, name: name, sum: sha256.Sum256(content)})
				res.Acked++
				okInsert = true
			}
			if !okInsert {
				// Not acked: no durability obligation, but note it.
				fmt.Fprintf(cfg.Out, "cluster: insert %s never acked: %v\n", name, lastErr)
			}
		}
		return nil
	}

	// verifyAcked looks every acked write up through a live access
	// point, retrying transient routing failures, and counts writes
	// that are gone or corrupt.
	verifyAcked := func(round int) {
		for _, w := range acked {
			found := false
			var content []byte
			for attempt := 0; attempt < 5; attempt++ {
				live := c.LiveIndexes()
				if len(live) == 0 {
					break
				}
				ap := live[(round+attempt)%len(live)]
				ok, got, err := c.LookupVia(ap, w.file)
				if err == nil && ok {
					found, content = true, got
					break
				}
				time.Sleep(200 * time.Millisecond)
			}
			switch {
			case !found:
				res.LostAcked++
				res.ViolationDetail = append(res.ViolationDetail,
					fmt.Sprintf("round=%d acked write %s (%s) unreachable", round, w.file.Short(), w.name))
				c.event(obs.Event{Kind: "violation", Op: "acked-loss", Tick: round, Detail: w.name})
			case sha256.Sum256(content) != w.sum:
				res.CorruptAcked++
				res.ViolationDetail = append(res.ViolationDetail,
					fmt.Sprintf("round=%d acked write %s (%s) content mismatch", round, w.file.Short(), w.name))
				c.event(obs.Event{Kind: "violation", Op: "acked-corrupt", Tick: round, Detail: w.name})
			}
		}
	}

	// converge polls the live invariant check until it comes back clean
	// or the budget is spent; lingering violations are recorded.
	converge := func(round int) error {
		files := make([]id.File, len(acked))
		for i, w := range acked {
			files[i] = w.file
		}
		deadline := time.Now().Add(cfg.ConvergeTimeout)
		for {
			violations, err := c.CheckInvariants(files, round)
			if err != nil {
				return err
			}
			if len(violations) == 0 {
				return nil
			}
			if time.Now().After(deadline) {
				res.Violations += len(violations)
				for _, v := range violations {
					res.ViolationDetail = append(res.ViolationDetail, v.String())
					c.event(obs.Event{Kind: "violation", Op: string(v.Kind), Tick: round, Node: v.Node.Short(), Detail: v.File.Short()})
				}
				return nil
			}
			time.Sleep(500 * time.Millisecond)
		}
	}

	byRound := make(map[int][]Fault)
	for _, f := range plan {
		byRound[f.Round] = append(byRound[f.Round], f)
	}

	// The fleet observability plane: per round, scrape every live node's
	// registry, delta it against the previous round (restart-aware — a
	// crashed-and-rejoined node's reset registry must not produce
	// negative rates), aggregate the deltas into the round's fleet
	// window, fold in the scenario's own outcome counters, and evaluate
	// the SLOs against the window. The window also rides the event
	// stream as a "stats" event, leaving a queryable metrics timeline
	// next to the fault/violation/tick events.
	tracker := fleetobs.NewTracker()
	eval := fleetobs.NewEvaluator(cfg.SLOs)
	var prevAcked, prevLost, prevCorrupt, prevViolations int
	scrapeRound := func(round int) {
		var deltas []obs.Snapshot
		scraped := 0
		for _, i := range c.LiveIndexes() {
			_, snap, err := c.ObsReport(i)
			if err != nil {
				continue
			}
			d, _ := tracker.Delta(fmt.Sprintf("node%02d", i), snap)
			deltas = append(deltas, d)
			scraped++
		}
		window := obs.Aggregate(deltas...)
		violations := res.Violations + res.FsckErrors
		window.Set("scenario_rounds_total", 1)
		window.Set("scenario_acked_total", int64(res.Acked-prevAcked))
		window.Set("scenario_acked_lost_total", int64(res.LostAcked-prevLost))
		window.Set("scenario_acked_corrupt_total", int64(res.CorruptAcked-prevCorrupt))
		window.Set("scenario_violations_total", int64(violations-prevViolations))
		prevAcked, prevLost, prevCorrupt, prevViolations =
			res.Acked, res.LostAcked, res.CorruptAcked, violations
		eval.Observe(window)
		c.event(obs.Event{Kind: "stats", Tick: round, N: int64(scraped), Counters: window.Counters})
	}

	for r := 0; r < cfg.Rounds; r++ {
		if !cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline) {
			fmt.Fprintf(cfg.Out, "cluster: duration budget spent after %d round(s)\n", r)
			break
		}
		fmt.Fprintf(cfg.Out, "cluster: round %d: inserting %d files\n", r, cfg.FilesPerRound)
		if err := insertBatch(r); err != nil {
			return res, err
		}
		for _, f := range byRound[r] {
			p := c.Procs[f.Node]
			fmt.Fprintf(cfg.Out, "cluster: round %d: %s node %d (%s)\n", r, f.Kind, f.Node, p.ID.Short())
			switch f.Kind {
			case FaultKill:
				if err := c.Kill(f.Node); err != nil {
					return res, err
				}
				res.Kills++
			case FaultTerm:
				if err := c.Terminate(f.Node); err != nil {
					return res, err
				}
				res.Terms++
			}
			// The victim's store must verify clean after EVERY life —
			// a clean close for sigterm, a recoverable log for sigkill.
			if err := c.Fsck(f.Node); err != nil {
				res.FsckErrors++
				res.ViolationDetail = append(res.ViolationDetail, err.Error())
				c.event(obs.Event{Kind: "violation", Op: "fsck", Tick: r, Node: p.ID.Short(), Detail: err.Error()})
			}
			if err := c.Restart(f.Node); err != nil {
				return res, err
			}
			res.Restarts++
		}
		if !cfg.NoCheck {
			if err := converge(r); err != nil {
				return res, err
			}
			verifyAcked(r)
		}
		scrapeRound(r)
		res.RoundsRun++
		c.event(obs.Event{Kind: "tick", Tick: r, N: int64(res.Acked), OK: res.LostAcked == 0 && res.Violations == 0})
	}
	res.SLO = eval.Burns()
	for _, burn := range res.SLO {
		fmt.Fprintf(cfg.Out, "cluster: %s\n", burn.Line())
	}

	c.event(obs.Event{Kind: "summary", Detail: res.Summary(), OK: res.Passed()})
	return res, nil
}
