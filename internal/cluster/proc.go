package cluster

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"past/internal/id"
)

// Proc supervises one daemon process across its lives. The zero state
// is "never started"; start/kill/terminate are driven by the Cluster,
// which serializes them, so Proc carries no lock — the only concurrent
// writer is the waiter goroutine, which publishes through the exited
// channel.
type Proc struct {
	Index     int
	Seed      int64   // daemon -seed; fixes the node id across lives
	ID        id.Node // derived from Seed, constant across restarts
	Addr      string  // overlay listen address, constant across lives
	DebugAddr string  // /metrics + /healthz address, constant across lives
	DataDir   string  // per-node persistent store; survives lives
	LogPath   string  // captured stdout+stderr, appended across lives

	Lives    int // times the process was started
	Restarts int // times it was started again after a fault

	cmd     *exec.Cmd
	logf    *os.File
	exited  chan struct{}
	exitErr error
}

// start launches one life of the daemon. args is the full daemon argv
// (the Cluster builds it). The previous life must have exited.
func (p *Proc) start(c Command, args []string) error {
	if p.alive() {
		return fmt.Errorf("cluster: node %d is already running", p.Index)
	}
	logf, err := os.OpenFile(p.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: node %d log: %w", p.Index, err)
	}
	fmt.Fprintf(logf, "=== life %d: %s %s\n", p.Lives+1, c.Path, strings.Join(args, " "))
	cmd := exec.Command(c.Path, append(append([]string{}, c.Args...), args...)...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	cmd.Env = append(os.Environ(), c.Env...)
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("cluster: node %d start: %w", p.Index, err)
	}
	p.cmd = cmd
	p.logf = logf
	p.Lives++
	exited := make(chan struct{})
	p.exited = exited
	go func() {
		err := cmd.Wait()
		logf.Close()
		p.exitErr = err
		close(exited)
	}()
	return nil
}

// alive reports whether the current life is still running.
func (p *Proc) alive() bool {
	if p.exited == nil {
		return false
	}
	select {
	case <-p.exited:
		return false
	default:
		return true
	}
}

// signal delivers sig to the current life.
func (p *Proc) signal(sig syscall.Signal) error {
	if !p.alive() {
		return fmt.Errorf("cluster: node %d is not running", p.Index)
	}
	return p.cmd.Process.Signal(sig)
}

// waitExit blocks until the current life exits (returning its Wait
// error: nil for a clean exit, an ExitError for signals and nonzero
// statuses) or the timeout passes.
func (p *Proc) waitExit(timeout time.Duration) (error, bool) {
	if p.exited == nil {
		return nil, true
	}
	select {
	case <-p.exited:
		return p.exitErr, true
	case <-time.After(timeout):
		return nil, false
	}
}

// waitReady polls /healthz until the daemon reports ready, the process
// exits, or the timeout passes.
func (p *Proc) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	url := "http://" + p.DebugAddr + "/healthz"
	for {
		if !p.alive() {
			return fmt.Errorf("cluster: node %d exited while coming up (%v); log: %s", p.Index, p.exitErr, p.LogPath)
		}
		resp, err := client.Get(url)
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: node %d not ready after %v; log: %s", p.Index, timeout, p.LogPath)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Metric fetches one counter/gauge from the node's /metrics endpoint by
// its obs name (without the "past_" prefix), e.g.
// "logstore_recovered_records_total".
func (p *Proc) Metric(name string) (int64, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + p.DebugAddr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	want := "past_" + name
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, want) {
			continue
		}
		rest := line[len(want):]
		// Exact metric only: the next byte is a label brace or a space,
		// not more name characters.
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("cluster: metric %s: %w", name, err)
		}
		return v, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("cluster: metric %s not found on node %d", name, p.Index)
}
