// Package cluster boots and supervises a fleet of REAL pastd processes
// on loopback — separate address spaces, real TCP between them, real
// signals killing them — and drives the same invariant checks against
// the live fleet that internal/chaos enforces against the emulator.
// It is the harness that promotes the robustness stack (crash recovery,
// retries, admission control, cache persistence) from emulated to
// end-to-end verified: a fault here is SIGKILL delivered to a process
// whose logstore then has to recover from disk, not a dropped message
// in a simulated network.
//
// The daemon processes come from self-execution: the hosting executable
// (cmd/past-cluster, or a test binary) re-execs itself with the
// PAST_CLUSTER_DAEMON sentinel in the environment and dispatches into
// internal/daemon.Run before any of its own logic. That gives every
// host a fleet of true pastd subprocesses without a separately built
// binary; pointing Command.Path at a real pastd binary works too.
package cluster

import (
	"os"
)

// DaemonEnv is the environment sentinel that turns an exec of the
// hosting binary into a pastd daemon process.
const DaemonEnv = "PAST_CLUSTER_DAEMON"

// Command describes how to launch one daemon process. Args are
// prepended before the per-node daemon flags; Env entries are appended
// to the inherited environment.
type Command struct {
	Path string
	Args []string
	Env  []string
}

// SelfCommand launches the current executable as the daemon, relying on
// the host calling MaybeRunDaemon first thing in main (or TestMain).
func SelfCommand() (Command, error) {
	exe, err := os.Executable()
	if err != nil {
		return Command{}, err
	}
	return Command{Path: exe, Env: []string{DaemonEnv + "=1"}}, nil
}

// MaybeRunDaemon checks the sentinel and, in a child, runs the daemon
// and exits with its code; in the parent it returns immediately. run is
// internal/daemon.Run, passed in by the host to keep this package free
// of the daemon's dependency tree. Call it before flag parsing:
//
//	func main() {
//		cluster.MaybeRunDaemon(daemon.Run)
//		...
//	}
func MaybeRunDaemon(run func(args []string) int) {
	if os.Getenv(DaemonEnv) == "" {
		return
	}
	os.Exit(run(os.Args[1:]))
}
