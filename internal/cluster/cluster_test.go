package cluster_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"past/internal/cluster"
	"past/internal/daemon"
	"past/internal/id"
	"past/internal/obs"
)

// TestMain is the self-exec pivot: when the test binary is re-executed
// with the daemon sentinel in the environment, it IS a pastd process.
func TestMain(m *testing.M) {
	cluster.MaybeRunDaemon(daemon.Run)
	os.Exit(m.Run())
}

// startFleet boots a fleet under the test's temp dir, registers a
// cleanup that tears it down, and dumps per-node process logs when the
// test fails.
func startFleet(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	c, err := cluster.Start(cfg)
	if err != nil {
		t.Fatalf("start fleet: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		if t.Failed() {
			for _, p := range c.Procs {
				data, err := os.ReadFile(p.LogPath)
				if err != nil {
					continue
				}
				if len(data) > 8*1024 {
					data = data[len(data)-8*1024:]
				}
				t.Logf("--- node %d log tail ---\n%s", p.Index, data)
			}
		}
	})
	return c
}

// waitClean polls the live invariant check until it comes back with no
// violations or the deadline passes.
func waitClean(t *testing.T, c *cluster.Cluster, files []id.File, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		violations, err := c.CheckInvariants(files, 0)
		if err == nil && len(violations) == 0 {
			return
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("invariant check did not go clean in %v: %v", timeout, err)
			}
			for _, v := range violations {
				t.Errorf("lingering violation: %s", v)
			}
			t.Fatalf("%d violation(s) after %v", len(violations), timeout)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func TestFleetBootInsertLookup(t *testing.T) {
	c := startFleet(t, cluster.Config{Nodes: 5, Seed: 42})

	type entry struct {
		file id.File
		sum  [32]byte
	}
	var files []entry
	var ids []id.File
	for j := 0; j < 6; j++ {
		content := bytes.Repeat([]byte{byte(j + 1)}, 512+j*100)
		fid, err := c.InsertVia(j%5, fmt.Sprintf("boot-%d", j), content)
		if err != nil {
			t.Fatalf("insert %d: %v", j, err)
		}
		files = append(files, entry{file: fid, sum: sha256.Sum256(content)})
		ids = append(ids, fid)
	}
	waitClean(t, c, ids, 30*time.Second)

	for j, e := range files {
		found, content, err := c.LookupVia((j+2)%5, e.file)
		if err != nil {
			t.Fatalf("lookup %d: %v", j, err)
		}
		if !found {
			t.Fatalf("file %d (%s) not found", j, e.file.Short())
		}
		if sha256.Sum256(content) != e.sum {
			t.Fatalf("file %d (%s) content mismatch", j, e.file.Short())
		}
	}

	st, err := c.Status(0)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.LeafSetSize == 0 {
		t.Fatalf("node 0 reports empty leaf set after 5-node boot")
	}
}

// TestSigtermCleanCloseSigkillRecovery is the process-fault satellite:
// one node is SIGTERMed mid-insert-stream and must close its store
// clean (its next life replays zero WAL records), another is SIGKILLed
// and must come back through logstore recovery — with every acked write
// still retrievable byte for byte and both stores fsck-clean.
func TestSigtermCleanCloseSigkillRecovery(t *testing.T) {
	c := startFleet(t, cluster.Config{Nodes: 5, Seed: 7})

	type acked struct {
		file id.File
		sum  [32]byte
	}
	var (
		mu    sync.Mutex
		writs []acked
		stop  = make(chan struct{})
		done  = make(chan struct{})
	)
	ackedCount := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(writs)
	}
	// The insert stream: access points rotate over nodes 0-2 (the
	// survivors), so the stream keeps flowing while 3 and 4 take faults.
	go func() {
		defer close(done)
		for j := 0; ; j++ {
			select {
			case <-stop:
				return
			default:
			}
			content := make([]byte, 256+(j%7)*128)
			for i := range content {
				content[i] = byte(j + i)
			}
			fid, err := c.InsertVia(j%3, fmt.Sprintf("stream-%d", j), content)
			if err == nil {
				mu.Lock()
				writs = append(writs, acked{file: fid, sum: sha256.Sum256(content)})
				mu.Unlock()
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Let the stream establish itself before faulting.
	for deadline := time.Now().Add(20 * time.Second); ackedCount() < 5; {
		if time.Now().After(deadline) {
			t.Fatal("insert stream never acked 5 writes")
		}
		time.Sleep(50 * time.Millisecond)
	}

	if err := c.Terminate(3); err != nil {
		t.Fatalf("graceful leave: %v", err)
	}
	if err := c.Kill(4); err != nil {
		t.Fatalf("kill: %v", err)
	}

	// A few more acked writes with two nodes down, then stop.
	low := ackedCount()
	for deadline := time.Now().Add(20 * time.Second); ackedCount() < low+3; {
		if time.Now().After(deadline) {
			t.Fatal("insert stream stalled after faults")
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	<-done

	// Both stores must verify clean while their processes are down.
	if err := c.Fsck(3); err != nil {
		t.Fatalf("fsck after graceful leave: %v", err)
	}
	if err := c.Fsck(4); err != nil {
		t.Fatalf("fsck after SIGKILL: %v", err)
	}

	if err := c.Restart(3); err != nil {
		t.Fatalf("restart 3: %v", err)
	}
	if err := c.Restart(4); err != nil {
		t.Fatalf("restart 4: %v", err)
	}

	// The graceful node checkpointed at close: its new life replays
	// nothing. (The SIGKILLed node's replay count is workload-dependent,
	// so only the clean-close side is pinned.)
	replayed, err := c.Procs[3].Metric(obs.CtrRecoveredRecords)
	if err != nil {
		t.Fatalf("recovered-records metric: %v", err)
	}
	if replayed != 0 {
		t.Fatalf("SIGTERM node replayed %d WAL records; clean close must checkpoint", replayed)
	}

	mu.Lock()
	all := append([]acked(nil), writs...)
	mu.Unlock()
	ids := make([]id.File, len(all))
	for i, w := range all {
		ids[i] = w.file
	}
	waitClean(t, c, ids, 60*time.Second)

	// Zero acked-write loss: every acknowledged insert is retrievable
	// with identical bytes.
	for i, w := range all {
		var found bool
		var content []byte
		for attempt := 0; attempt < 5 && !found; attempt++ {
			ap := (i + attempt) % 5
			ok, got, err := c.LookupVia(ap, w.file)
			if err == nil && ok {
				found, content = true, got
			} else {
				time.Sleep(200 * time.Millisecond)
			}
		}
		if !found {
			t.Fatalf("acked write %d (%s) lost", i, w.file.Short())
		}
		if sha256.Sum256(content) != w.sum {
			t.Fatalf("acked write %d (%s) corrupted", i, w.file.Short())
		}
	}
}
