package cluster_test

import (
	"testing"

	"past/internal/cluster"
)

func TestPlanFaultsDeterministic(t *testing.T) {
	a, err := cluster.PlanFaults(cluster.ScenarioMixed, 10, 6, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cluster.PlanFaults(cluster.ScenarioMixed, 10, 6, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 6 {
		t.Fatalf("want 6 faults (1 victim x 6 rounds), got %d", len(a))
	}
	if fpA, fpB := cluster.PlanFingerprint(a), cluster.PlanFingerprint(b); fpA != fpB {
		t.Fatalf("same seed produced different plans: %s vs %s", fpA, fpB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := cluster.PlanFaults(cluster.ScenarioMixed, 10, 6, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cluster.PlanFingerprint(a) == cluster.PlanFingerprint(c) {
		t.Fatalf("seeds 1 and 2 produced identical plans")
	}
}

func TestPlanFaultsKinds(t *testing.T) {
	kill, err := cluster.PlanFaults(cluster.ScenarioKill, 8, 4, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(kill) != 8 { // 2 victims x 4 rounds
		t.Fatalf("kill plan: want 8 faults, got %d", len(kill))
	}
	for _, f := range kill {
		if f.Kind != cluster.FaultKill {
			t.Fatalf("kill scenario planned %q", f.Kind)
		}
	}
	grace, err := cluster.PlanFaults(cluster.ScenarioGraceful, 8, 4, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range grace {
		if f.Kind != cluster.FaultTerm {
			t.Fatalf("graceful scenario planned %q", f.Kind)
		}
	}
}

func TestPlanFaultsRolling(t *testing.T) {
	plan, err := cluster.PlanFaults(cluster.ScenarioRolling, 3, 5, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for r, f := range plan {
		want := cluster.Fault{Round: r, Node: r % 3, Kind: cluster.FaultTerm}
		if f != want {
			t.Fatalf("rolling fault %d: got %+v, want %+v", r, f, want)
		}
	}
}

func TestPlanFaultsNeverKillsWholeFleet(t *testing.T) {
	// killRate 5.0 would nominally disturb 5x the fleet; the planner
	// caps victims at nodes-1 so a live member always remains.
	plan, err := cluster.PlanFaults(cluster.ScenarioKill, 4, 3, 5.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	byRound := map[int]map[int]bool{}
	for _, f := range plan {
		if byRound[f.Round] == nil {
			byRound[f.Round] = map[int]bool{}
		}
		if byRound[f.Round][f.Node] {
			t.Fatalf("round %d disturbs node %d twice", f.Round, f.Node)
		}
		byRound[f.Round][f.Node] = true
	}
	for r, victims := range byRound {
		if len(victims) != 3 {
			t.Fatalf("round %d: want 3 victims (nodes-1), got %d", r, len(victims))
		}
	}
	if _, err := cluster.PlanFaults("bogus", 4, 3, 0.1, 1); err == nil {
		t.Fatal("unknown scenario must error")
	}
	if _, err := cluster.PlanFaults(cluster.ScenarioKill, 1, 3, 0.1, 1); err == nil {
		t.Fatal("single-node fleet must error")
	}
}
