package cluster

import (
	"fmt"

	"past/internal/chaos"
	"past/internal/id"
	"past/internal/past"
)

// LiveState is a point-in-time window onto the fleet, built from one
// ClientReplicaReport RPC per live node. It implements
// chaos.ClusterState, so the SAME invariant checker that audits the
// single-process emulator audits the live fleet: replica placement,
// pointer validity, under-replication, and stray primaries — but here
// "alive" means a real process and "holds a replica" means bytes a
// logstore serves after however many SIGKILLs its node has absorbed.
type LiveState struct {
	ids     []id.Node
	alive   map[id.Node]bool
	fileIdx map[id.File]int
	holds   map[id.Node][]past.ReplicaHold
}

var _ chaos.ClusterState = (*LiveState)(nil)

// SnapshotState interrogates every live node about the listed files.
// Dead processes are in the state as not-alive, exactly as the
// emulator's checker sees failed nodes.
func (c *Cluster) SnapshotState(files []id.File) (*LiveState, error) {
	st := &LiveState{
		alive:   make(map[id.Node]bool, len(c.Procs)),
		fileIdx: make(map[id.File]int, len(files)),
		holds:   make(map[id.Node][]past.ReplicaHold, len(c.Procs)),
	}
	for i, f := range files {
		st.fileIdx[f] = i
	}
	for i, p := range c.Procs {
		st.ids = append(st.ids, p.ID)
		if !p.alive() {
			st.alive[p.ID] = false
			continue
		}
		reply, err := c.invoke(i, &past.ClientReplicaReport{Files: files})
		if err != nil {
			return nil, fmt.Errorf("cluster: replica report from node %d: %w", i, err)
		}
		rep, ok := reply.(*past.ClientReplicaReportReply)
		if !ok {
			return nil, fmt.Errorf("cluster: unexpected replica report reply %T", reply)
		}
		if rep.Node != p.ID {
			return nil, fmt.Errorf("cluster: node %d identifies as %s, expected %s (seed drift?)",
				i, rep.Node.Short(), p.ID.Short())
		}
		if len(rep.Holds) != len(files) {
			return nil, fmt.Errorf("cluster: node %d reported %d holds for %d files", i, len(rep.Holds), len(files))
		}
		st.alive[p.ID] = true
		st.holds[p.ID] = rep.Holds
	}
	return st, nil
}

// GlobalClosest returns the k live nodes numerically closest to key, by
// brute force — the same ground truth the emulator's checker uses.
func (s *LiveState) GlobalClosest(key id.Node, k int) []id.Node {
	out := make([]id.Node, 0, k)
	used := make(map[id.Node]bool, k)
	live := 0
	for _, nid := range s.ids {
		if s.alive[nid] {
			live++
		}
	}
	for len(out) < k && len(out) < live {
		var best id.Node
		first := true
		for _, nid := range s.ids {
			if !s.alive[nid] || used[nid] {
				continue
			}
			if first || key.Closer(nid, best) {
				best, first = nid, false
			}
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}

// Alive implements chaos.ClusterState.
func (s *LiveState) Alive(nid id.Node) bool { return s.alive[nid] }

func (s *LiveState) hold(nid id.Node, f id.File) (past.ReplicaHold, bool) {
	hs, ok := s.holds[nid]
	if !ok {
		return past.ReplicaHold{}, false
	}
	i, ok := s.fileIdx[f]
	if !ok || i >= len(hs) {
		return past.ReplicaHold{}, false
	}
	return hs[i], true
}

// NodeHasReplica implements chaos.ClusterState.
func (s *LiveState) NodeHasReplica(nid id.Node, f id.File) bool {
	h, ok := s.hold(nid, f)
	return ok && h.Has
}

// NodePointer implements chaos.ClusterState.
func (s *LiveState) NodePointer(nid id.Node, f id.File) (id.Node, bool) {
	h, ok := s.hold(nid, f)
	if !ok || !h.HasPtr {
		return id.Node{}, false
	}
	return h.Ptr, true
}

// ReplicaHolders implements chaos.ClusterState.
func (s *LiveState) ReplicaHolders(f id.File) []id.Node {
	var out []id.Node
	for _, nid := range s.ids {
		if s.alive[nid] && s.NodeHasReplica(nid, f) {
			out = append(out, nid)
		}
	}
	return out
}

// PrimaryHolders implements chaos.ClusterState.
func (s *LiveState) PrimaryHolders(f id.File) []id.Node {
	var out []id.Node
	for _, nid := range s.ids {
		if !s.alive[nid] {
			continue
		}
		if h, ok := s.hold(nid, f); ok && h.Has && h.Primary {
			out = append(out, nid)
		}
	}
	return out
}

var _ chaos.FragmentState = (*LiveState)(nil)

// ECFile implements chaos.FragmentState: the coding parameters a live
// map holder reported for f. (Unlike the emulator's omniscient state, a
// live snapshot cannot interrogate dead processes; if every map holder
// is down the durability pass already reports the file lost.)
func (s *LiveState) ECFile(f id.File) (data, total int, ok bool) {
	for _, nid := range s.ids {
		if !s.alive[nid] {
			continue
		}
		if h, ok := s.hold(nid, f); ok && h.ECTotal > 0 {
			return h.ECData, h.ECTotal, true
		}
	}
	return 0, 0, false
}

// FragmentHolders implements chaos.FragmentState: live nodes holding
// each fragment index of f, as self-reported over the replica-report
// RPC.
func (s *LiveState) FragmentHolders(f id.File) map[int][]id.Node {
	out := make(map[int][]id.Node)
	for _, nid := range s.ids {
		if !s.alive[nid] {
			continue
		}
		if h, ok := s.hold(nid, f); ok {
			for _, idx := range h.Frags {
				out[idx] = append(out[idx], nid)
			}
		}
	}
	return out
}

// CheckInvariants snapshots the fleet and runs the emulator's
// post-repair invariant check over it (replica counts, pointer
// validity, strays). epoch labels the violations.
func (c *Cluster) CheckInvariants(files []id.File, epoch int) ([]chaos.Violation, error) {
	st, err := c.SnapshotState(files)
	if err != nil {
		return nil, err
	}
	ck := chaos.Checker{K: c.cfg.K}
	return ck.CheckConverged(st, files, epoch), nil
}

// CheckDurability snapshots the fleet and asserts the mid-fault safety
// property alone: every file retains at least one live replica.
func (c *Cluster) CheckDurability(files []id.File, epoch int) ([]chaos.Violation, error) {
	st, err := c.SnapshotState(files)
	if err != nil {
		return nil, err
	}
	ck := chaos.Checker{K: c.cfg.K}
	return ck.CheckDurability(st, files, epoch), nil
}
