package cluster

import (
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"past/internal/daemon"
	"past/internal/id"
	"past/internal/logstore"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

// Config shapes a fleet.
type Config struct {
	// Nodes is the fleet size. Required.
	Nodes int
	// Seed fixes node identities (each process gets a derived -seed) and
	// the scenario schedule. Required nonzero for reproducible runs.
	Seed int64
	// K is the replication factor (default 3).
	K int
	// Capacity is each node's advertised capacity (default "64MB").
	Capacity string
	// Store is the storage backend (default "log"; fsck support needs log).
	Store string
	// Dir is the base directory for per-node data dirs and captured
	// logs. Empty: a fresh temp directory (see Dir()).
	Dir string
	// Command launches the daemon (default SelfCommand()).
	Command Command
	// Keepalive is the daemons' leaf-set keep-alive period (default
	// 500ms — failure detection is the churn clock, so fleets converge
	// faster than the 5s production default).
	Keepalive time.Duration
	// Maintain is the daemons' periodic anti-entropy period (default 1s).
	Maintain time.Duration
	// ReadyTimeout bounds each node's boot-to-healthy wait (default 30s).
	ReadyTimeout time.Duration
	// ExitTimeout bounds graceful-leave waits (default 20s).
	ExitTimeout time.Duration
	// EC, when non-empty ("m,n"), runs the fleet in erasure-coded
	// storage mode: every daemon gets -ec, inserts fragment over the
	// leaf set, and lost fragments are re-created by lazy repair.
	EC string
	// ECRepairBudget caps each daemon's per-maintenance-pass repair
	// bytes (passed as -ec-repair-budget; empty: uncapped).
	ECRepairBudget string
	// ExtraArgs are appended to every daemon's argv.
	ExtraArgs []string
	// Out receives orchestrator narration (nil: discarded).
	Out io.Writer
	// Events receives the structured JSONL event stream (nil: none).
	Events *obs.EventLog
}

func (c *Config) withDefaults() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: Nodes must be > 0")
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.Capacity == "" {
		c.Capacity = "64MB"
	}
	if c.Store == "" {
		c.Store = "log"
	}
	if c.Keepalive <= 0 {
		c.Keepalive = 500 * time.Millisecond
	}
	if c.Maintain <= 0 {
		c.Maintain = time.Second
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 30 * time.Second
	}
	if c.ExitTimeout <= 0 {
		c.ExitTimeout = 20 * time.Second
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Command.Path == "" {
		cmd, err := SelfCommand()
		if err != nil {
			return fmt.Errorf("cluster: self command: %w", err)
		}
		c.Command = cmd
	}
	return nil
}

// Cluster is a running fleet.
type Cluster struct {
	cfg    Config
	dir    string
	tmpDir bool
	Procs  []*Proc
	client *transport.TCP
}

// Start boots the fleet: node 0 bootstraps a new network, every other
// node joins via node 0 — each start gated on the previous node
// reporting ready at /healthz, so join order is deterministic and the
// overlay never sees a half-up bootstrap peer.
func Start(cfg Config) (*Cluster, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	dir, tmp := cfg.Dir, false
	if dir == "" {
		d, err := os.MkdirTemp("", "past-cluster-")
		if err != nil {
			return nil, err
		}
		dir, tmp = d, true
	}
	if err := os.MkdirAll(filepath.Join(dir, "logs"), 0o755); err != nil {
		return nil, err
	}

	addrs, err := freePorts(2 * cfg.Nodes)
	if err != nil {
		return nil, err
	}

	wire.RegisterWire()
	past.RegisterWire()
	var cid id.Node
	if _, err := rand.Read(cid[:]); err != nil {
		return nil, err
	}
	client, err := transport.New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		return nil, err
	}

	c := &Cluster{cfg: cfg, dir: dir, tmpDir: tmp, client: client}
	for i := 0; i < cfg.Nodes; i++ {
		seed := cfg.Seed*1_000_003 + int64(i) + 1
		if seed == 0 {
			seed = int64(i) + 1
		}
		p := &Proc{
			Index:     i,
			Seed:      seed,
			ID:        daemon.NodeIDFromSeed(seed),
			Addr:      addrs[2*i],
			DebugAddr: addrs[2*i+1],
			DataDir:   filepath.Join(dir, fmt.Sprintf("node%02d", i)),
			LogPath:   filepath.Join(dir, "logs", fmt.Sprintf("node%02d.log", i)),
		}
		c.Procs = append(c.Procs, p)
	}

	for i, p := range c.Procs {
		join := ""
		if i > 0 {
			join = c.Procs[0].Addr
		}
		if err := p.start(cfg.Command, c.daemonArgs(p, join)); err != nil {
			c.Close()
			return nil, err
		}
		if err := p.waitReady(cfg.ReadyTimeout); err != nil {
			c.Close()
			return nil, err
		}
		fmt.Fprintf(cfg.Out, "cluster: node %d (%s) up on %s\n", i, p.ID.Short(), p.Addr)
	}
	return c, nil
}

// daemonArgs builds one node's daemon argv. Positions on the proximity
// plane are a deterministic function of the index, so routing locality
// is reproducible across runs.
func (c *Cluster) daemonArgs(p *Proc, joinAddr string) []string {
	args := []string{
		"-addr", p.Addr,
		"-debug-addr", p.DebugAddr,
		"-data", p.DataDir,
		"-store", c.cfg.Store,
		"-capacity", c.cfg.Capacity,
		"-k", strconv.Itoa(c.cfg.K),
		"-seed", strconv.FormatInt(p.Seed, 10),
		"-keepalive", c.cfg.Keepalive.String(),
		"-maintain", c.cfg.Maintain.String(),
		"-retries", "3",
		"-x", strconv.FormatFloat(float64(10+20*(p.Index%8)), 'f', -1, 64),
		"-y", strconv.FormatFloat(float64(10+20*(p.Index/8)), 'f', -1, 64),
	}
	if c.cfg.EC != "" {
		args = append(args, "-ec", c.cfg.EC)
		if c.cfg.ECRepairBudget != "" {
			args = append(args, "-ec-repair-budget", c.cfg.ECRepairBudget)
		}
	}
	if joinAddr != "" {
		args = append(args,
			"-join", joinAddr,
			"-join-retries", "20",
			"-join-backoff", "100ms",
		)
	}
	return append(args, c.cfg.ExtraArgs...)
}

// Dir returns the fleet's base directory (data dirs under node##/,
// captured process logs under logs/).
func (c *Cluster) Dir() string { return c.dir }

// TempDir reports whether the base directory was created by Start (and
// so is the caller's to remove).
func (c *Cluster) TempDir() bool { return c.tmpDir }

// Alive reports whether node i's process is currently running.
func (c *Cluster) Alive(i int) bool { return c.Procs[i].alive() }

// LiveIndexes returns the indexes of running nodes, ascending.
func (c *Cluster) LiveIndexes() []int {
	var out []int
	for i, p := range c.Procs {
		if p.alive() {
			out = append(out, i)
		}
	}
	return out
}

// Kill delivers SIGKILL to node i — the crash fault: no leave, no
// flush, the logstore must recover — and waits for the process to die.
func (c *Cluster) Kill(i int) error {
	p := c.Procs[i]
	if err := p.signal(syscall.SIGKILL); err != nil {
		return err
	}
	if _, ok := p.waitExit(10 * time.Second); !ok {
		return fmt.Errorf("cluster: node %d survived SIGKILL", i)
	}
	c.event(obs.Event{Kind: "fault", Node: p.ID.Short(), Op: "sigkill", N: int64(i)})
	return nil
}

// Terminate delivers SIGTERM to node i — the graceful leave: the node
// offloads replicas and closes its store clean — and waits for exit.
// A leave that outlives ExitTimeout is escalated to SIGKILL and
// reported as an error.
func (c *Cluster) Terminate(i int) error {
	p := c.Procs[i]
	if err := p.signal(syscall.SIGTERM); err != nil {
		return err
	}
	exitErr, ok := p.waitExit(c.cfg.ExitTimeout)
	if !ok {
		p.signal(syscall.SIGKILL)
		p.waitExit(10 * time.Second)
		return fmt.Errorf("cluster: node %d graceful leave exceeded %v; killed", i, c.cfg.ExitTimeout)
	}
	if exitErr != nil {
		return fmt.Errorf("cluster: node %d graceful leave exited dirty: %v; log: %s", i, exitErr, p.LogPath)
	}
	c.event(obs.Event{Kind: "fault", Node: p.ID.Short(), Op: "sigterm", N: int64(i)})
	return nil
}

// Restart boots a new life of node i (which must be down), rejoining
// through a live peer, with capped backoff between attempts — the
// supervisor's restart policy. The node keeps its identity (same seed,
// same address) and its data directory, so a log store recovers its
// previous life's replicas.
func (c *Cluster) Restart(i int) error {
	p := c.Procs[i]
	if p.alive() {
		return fmt.Errorf("cluster: node %d is still running", i)
	}
	join := ""
	for _, li := range c.LiveIndexes() {
		if li != i {
			join = c.Procs[li].Addr
			break
		}
	}
	backoff := 200 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err := p.start(c.cfg.Command, c.daemonArgs(p, join)); err != nil {
			lastErr = err
			continue
		}
		if err := p.waitReady(c.cfg.ReadyTimeout); err != nil {
			lastErr = err
			if p.alive() {
				p.signal(syscall.SIGKILL)
				p.waitExit(10 * time.Second)
			}
			continue
		}
		p.Restarts++
		c.event(obs.Event{Kind: "fault", Node: p.ID.Short(), Op: "restart", N: int64(i)})
		return nil
	}
	return fmt.Errorf("cluster: node %d restart failed after backoff: %v", i, lastErr)
}

// Fsck runs the offline store checker on node i's data directory. The
// process must be down; the store must be the log backend.
func (c *Cluster) Fsck(i int) error {
	p := c.Procs[i]
	if p.alive() {
		return fmt.Errorf("cluster: node %d is running; fsck needs the store closed", i)
	}
	if c.cfg.Store != "log" {
		return fmt.Errorf("cluster: fsck supports -store=log only (have %q)", c.cfg.Store)
	}
	rep, err := logstore.Fsck(p.DataDir)
	if err != nil {
		return fmt.Errorf("cluster: fsck node %d: %w", i, err)
	}
	if !rep.OK() {
		return fmt.Errorf("cluster: fsck node %d found %d error(s):\n%s", i, len(rep.Errors), rep)
	}
	return nil
}

// invoke sends a client RPC to node i with one transparent retry on a
// freshly restarted peer still settling (the transport already retries
// stale pooled conns once; this covers the dial-refused window).
func (c *Cluster) invoke(i int, msg any) (any, error) {
	return c.invokeCtx(context.Background(), i, msg)
}

func (c *Cluster) invokeCtx(ctx context.Context, i int, msg any) (any, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(100 * time.Millisecond)
		}
		reply, err := c.client.InvokeAddrContext(ctx, c.Procs[i].Addr, msg)
		if err == nil {
			return reply, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Status fetches node i's operator snapshot.
func (c *Cluster) Status(i int) (past.Status, error) {
	reply, err := c.invoke(i, &past.ClientStatus{})
	if err != nil {
		return past.Status{}, err
	}
	sr, ok := reply.(*past.ClientStatusReply)
	if !ok {
		return past.Status{}, fmt.Errorf("cluster: unexpected status reply %T", reply)
	}
	return sr.Status, nil
}

// InsertVia inserts content through node i as the access point.
func (c *Cluster) InsertVia(i int, name string, content []byte) (id.File, error) {
	reply, err := c.invoke(i, &past.ClientInsert{Name: name, Content: content})
	if err != nil {
		return id.File{}, err
	}
	ir, ok := reply.(*past.ClientInsertReply)
	if !ok {
		return id.File{}, fmt.Errorf("cluster: unexpected insert reply %T", reply)
	}
	if !ir.OK {
		return id.File{}, fmt.Errorf("cluster: insert rejected: %s", ir.Reason)
	}
	return ir.FileID, nil
}

// LookupVia retrieves f through node i as the access point.
func (c *Cluster) LookupVia(i int, f id.File) (found bool, content []byte, err error) {
	reply, err := c.invoke(i, &past.ClientLookup{File: f})
	if err != nil {
		return false, nil, err
	}
	lr, ok := reply.(*past.ClientLookupReply)
	if !ok {
		return false, nil, fmt.Errorf("cluster: unexpected lookup reply %T", reply)
	}
	return lr.Found, lr.Content, nil
}

// TraceVia retrieves f through node i under a fresh trace context: the
// reply carries the stitched cross-process route (per-hop records with
// RPC latencies spanning every pastd the route crossed).
func (c *Cluster) TraceVia(i int, f id.File) (*past.ClientLookupReply, error) {
	tc := obs.TraceContext{ID: obs.NewTraceID(), Sampled: true, Budget: obs.DefaultTraceBudget}
	ctx := obs.ContextWithTrace(context.Background(), tc)
	reply, err := c.invokeCtx(ctx, i, &past.ClientLookup{File: f})
	if err != nil {
		return nil, err
	}
	lr, ok := reply.(*past.ClientLookupReply)
	if !ok {
		return nil, fmt.Errorf("cluster: unexpected lookup reply %T", reply)
	}
	return lr, nil
}

// ObsReport fetches node i's identity and full observability snapshot
// in one round trip — the fleet scraper's collection path.
func (c *Cluster) ObsReport(i int) (id.Node, obs.Snapshot, error) {
	reply, err := c.invoke(i, &past.ClientObsReport{})
	if err != nil {
		return id.Node{}, obs.Snapshot{}, err
	}
	rep, ok := reply.(*past.ClientObsReportReply)
	if !ok {
		return id.Node{}, obs.Snapshot{}, fmt.Errorf("cluster: unexpected obs reply %T", reply)
	}
	return rep.Node, rep.Snapshot, nil
}

// Close terminates every live node gracefully (escalating to SIGKILL on
// timeout) and closes the client transport. The base directory is left
// on disk; callers remove it when they don't need the logs.
func (c *Cluster) Close() error {
	var firstErr error
	for i, p := range c.Procs {
		if !p.alive() {
			continue
		}
		if err := p.signal(syscall.SIGTERM); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: close node %d: %w", i, err)
		}
	}
	for i, p := range c.Procs {
		if p.exited == nil {
			continue
		}
		if _, ok := p.waitExit(c.cfg.ExitTimeout); !ok {
			p.signal(syscall.SIGKILL)
			p.waitExit(10 * time.Second)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: node %d did not exit on SIGTERM", i)
			}
		}
	}
	if c.client != nil {
		c.client.Close()
	}
	return firstErr
}

func (c *Cluster) event(e obs.Event) { c.cfg.Events.Emit(e) }

// freePorts reserves n distinct loopback ports by binding them all
// before releasing any, so no two allocations collide with each other.
// (Another process could still grab one in the gap; daemon start
// failures surface through waitReady and the restart backoff.)
func freePorts(n int) ([]string, error) {
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: reserve port: %w", err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}
