package cluster_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"past/internal/cluster"
	"past/internal/obs"
)

// TestRunScenarioSmall drives the full scenario runner against a real
// 5-process fleet: seeded faults with restarts, fsck after every life,
// convergence checks, and acked-write verification — and pins the
// summary to the value derivable from the plan alone, which is what
// makes repeated same-seed runs byte-identical.
func TestRunScenarioSmall(t *testing.T) {
	var events bytes.Buffer
	log := obs.NewEventLog(&events)
	c := startFleet(t, cluster.Config{Nodes: 5, Seed: 11, Events: log})

	scfg := cluster.ScenarioConfig{
		Scenario:        cluster.ScenarioMixed,
		Rounds:          2,
		KillRate:        0.2,
		FilesPerRound:   3,
		Seed:            11,
		ConvergeTimeout: 60 * time.Second,
	}
	res, err := cluster.RunScenario(c, scfg)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("scenario failed:\n%s", res)
	}

	// The summary must be derivable from the plan alone — that is the
	// seed-stability contract: any two passing same-seed runs agree.
	plan, err := cluster.PlanFaults(scfg.Scenario, 5, scfg.Rounds, scfg.KillRate, scfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	expect := &cluster.ScenarioResult{
		Scenario: scfg.Scenario,
		Nodes:    5,
		K:        3,
		Seed:     scfg.Seed,
		Rounds:   scfg.Rounds,
		PlanFP:   cluster.PlanFingerprint(plan),
		Checked:  true,
	}
	for _, f := range plan {
		if f.Kind == cluster.FaultKill {
			expect.PlannedKills++
		} else {
			expect.PlannedTerms++
		}
	}
	expect.RoundsRun = expect.Rounds
	expect.Kills, expect.Terms = expect.PlannedKills, expect.PlannedTerms
	if got, want := res.Summary(), expect.Summary(); got != want {
		t.Fatalf("summary not derivable from the plan:\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(res.Summary(), "verdict=PASS") {
		t.Fatalf("summary missing verdict: %s", res.Summary())
	}

	if err := log.Close(); err != nil {
		t.Fatalf("event log: %v", err)
	}
	evs, err := obs.ReadEvents(&events)
	if err != nil {
		t.Fatalf("event stream unparseable: %v", err)
	}
	kinds := obs.CountByKind(evs)
	if kinds["fault"] < len(plan) {
		t.Fatalf("want >= %d fault events (plus restarts), got %d", len(plan), kinds["fault"])
	}
	if kinds["summary"] != 1 {
		t.Fatalf("want 1 summary event, got %d", kinds["summary"])
	}
	if kinds["violation"] != 0 {
		t.Fatalf("want 0 violation events, got %d", kinds["violation"])
	}
	// Every round scraped the fleet's registries and emitted its
	// aggregated window as a stats event carrying the scenario counters
	// the SLOs evaluate.
	if kinds["stats"] != res.RoundsRun {
		t.Fatalf("want %d stats events (one per round), got %d", res.RoundsRun, kinds["stats"])
	}
	for _, e := range evs {
		if e.Kind != "stats" {
			continue
		}
		if e.Counters == nil || e.Counters["scenario_rounds_total"] != 1 {
			t.Fatalf("stats event lacks the round marker: %+v", e)
		}
		if e.Counters["scenario_acked_total"] <= 0 {
			t.Fatalf("stats event saw no acked writes: %+v", e)
		}
	}

	// The SLO layer evaluated one window per round, and a passing run
	// renders the deterministic all-clear burn lines in the report (but
	// never in the byte-pinned Summary).
	if len(res.SLO) == 0 {
		t.Fatal("result carries no SLO burns")
	}
	report := res.String()
	for _, burn := range res.SLO {
		if burn.Windows != res.RoundsRun {
			t.Fatalf("slo %s evaluated %d windows, want %d", burn.Objective.Name, burn.Windows, res.RoundsRun)
		}
		if !burn.OK() {
			t.Fatalf("passing scenario burned an SLO: %s", burn.Line())
		}
		if !strings.Contains(report, burn.Line()) {
			t.Fatalf("report lacks burn line %q:\n%s", burn.Line(), report)
		}
		if !strings.Contains(burn.Line(), "breaches=0") {
			t.Fatalf("passing run's burn line is not the stable all-clear: %s", burn.Line())
		}
	}
	if strings.Contains(res.Summary(), "slo ") {
		t.Fatal("SLO lines leaked into the byte-pinned Summary")
	}

	// Fault rounds restarted their victims: lives beyond the first.
	restarts := 0
	for _, p := range c.Procs {
		restarts += p.Restarts
	}
	if restarts != len(plan) {
		t.Fatalf("want %d restarts, got %d", len(plan), restarts)
	}
}
