package netsim

import (
	"context"
	"errors"
	"testing"

	"past/internal/id"
	"past/internal/topology"
)

type echo struct{ seen []any }

func (e *echo) Deliver(from id.Node, msg any) (any, error) {
	e.seen = append(e.seen, msg)
	return msg, nil
}

type sizedMsg struct{ n int }

func (s sizedMsg) WireSize() int { return s.n }

func TestInvoke(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	eb := &echo{}
	n.Register(a, topology.Point{}, &echo{})
	n.Register(b, topology.Point{X: 3, Y: 4}, eb)

	reply, err := n.Invoke(context.Background(), a, b, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if reply != "hello" || len(eb.seen) != 1 {
		t.Fatalf("reply = %v, seen = %v", reply, eb.seen)
	}
	if n.Messages() != 1 {
		t.Fatalf("messages = %d", n.Messages())
	}
}

func TestInvokeUnknownAndDown(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	n.Register(a, topology.Point{}, &echo{})

	if _, err := n.Invoke(context.Background(), a, b, "x"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v; want ErrUnknownNode", err)
	}
	n.Register(b, topology.Point{}, &echo{})
	n.Fail(b)
	if _, err := n.Invoke(context.Background(), a, b, "x"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v; want ErrNodeDown", err)
	}
	if n.Alive(b) {
		t.Fatal("failed node reported alive")
	}
	n.Recover(b)
	if !n.Alive(b) {
		t.Fatal("recovered node reported down")
	}
	if _, err := n.Invoke(context.Background(), a, b, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	n := New()
	a := id.NodeFromUint64(1)
	n.Register(a, topology.Point{}, &echo{})
	n.Remove(a)
	if n.Alive(a) || n.Len() != 0 {
		t.Fatal("removed node still present")
	}
}

func TestProximity(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	n.Register(a, topology.Point{X: 0, Y: 0}, &echo{})
	n.Register(b, topology.Point{X: 3, Y: 4}, &echo{})
	d, ok := n.Proximity(a, b)
	if !ok || d != 5 {
		t.Fatalf("proximity = %g,%v; want 5,true", d, ok)
	}
	if _, ok := n.Proximity(a, id.NodeFromUint64(9)); ok {
		t.Fatal("proximity to unknown node must report false")
	}
	if p, ok := n.Position(b); !ok || p.X != 3 {
		t.Fatal("position lookup wrong")
	}
}

func TestNodesSortedAndAlive(t *testing.T) {
	n := New()
	for _, v := range []uint64{5, 1, 3} {
		n.Register(id.NodeFromUint64(v), topology.Point{}, &echo{})
	}
	nodes := n.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("len = %d", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if !nodes[i-1].Less(nodes[i]) {
			t.Fatal("Nodes not sorted")
		}
	}
	n.Fail(id.NodeFromUint64(3))
	alive := n.AliveNodes()
	if len(alive) != 2 {
		t.Fatalf("alive = %d; want 2", len(alive))
	}
}

func TestByteAccounting(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	n.Register(a, topology.Point{}, &echo{})
	n.Register(b, topology.Point{}, &echo{})
	if _, err := n.Invoke(context.Background(), a, b, sizedMsg{n: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Invoke(context.Background(), a, b, "unsized"); err != nil {
		t.Fatal(err)
	}
	if n.Bytes() != 100 {
		t.Fatalf("bytes = %d; want 100", n.Bytes())
	}
	if n.Messages() != 2 {
		t.Fatalf("messages = %d; want 2", n.Messages())
	}
	n.ResetCounters()
	if n.Bytes() != 0 || n.Messages() != 0 {
		t.Fatal("counters not reset")
	}
}

func TestReRegisterReplaces(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	n.Register(a, topology.Point{}, &echo{})
	first := &echo{}
	n.Register(b, topology.Point{}, first)
	second := &echo{}
	n.Register(b, topology.Point{X: 1}, second)
	if _, err := n.Invoke(context.Background(), a, b, "x"); err != nil {
		t.Fatal(err)
	}
	if len(first.seen) != 0 || len(second.seen) != 1 {
		t.Fatal("re-registration did not replace endpoint")
	}
}

func TestMessagesByType(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	n.Register(a, topology.Point{}, &echo{})
	n.Register(b, topology.Point{}, &echo{})
	if _, err := n.Invoke(context.Background(), a, b, "str"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Invoke(context.Background(), a, b, "str2"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Invoke(context.Background(), a, b, sizedMsg{n: 1}); err != nil {
		t.Fatal(err)
	}
	counts := n.MessagesByType()
	if counts["string"] != 2 || counts["netsim.sizedMsg"] != 1 {
		t.Fatalf("type counts = %v", counts)
	}
}

func TestInvokeAgainstFailedNode(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	eb := &echo{}
	n.Register(a, topology.Point{}, &echo{})
	n.Register(b, topology.Point{}, eb)
	n.Fail(b)

	before := n.Messages()
	if _, err := n.Invoke(context.Background(), a, b, "x"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("invoke to failed node: %v; want ErrNodeDown", err)
	}
	if len(eb.seen) != 0 {
		t.Fatal("failed node must not observe the message")
	}
	if n.Messages() != before {
		t.Fatal("a rejected invoke must not count as a delivered message")
	}
	// A failed node can still originate messages: in a real deployment
	// "failed" means unreachable to peers, not necessarily halted, and
	// the driver (not the network) decides when a node stops acting.
	if _, err := n.Invoke(context.Background(), b, a, "x"); err != nil {
		t.Fatalf("invoke from failed node: %v", err)
	}
}

func TestRecoverAfterRemoveIsNoOp(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	n.Register(a, topology.Point{}, &echo{})
	n.Register(b, topology.Point{}, &echo{})
	n.Remove(b)
	n.Recover(b) // must NOT resurrect a removed node
	if n.Alive(b) {
		t.Fatal("recover after remove resurrected the node")
	}
	if _, err := n.Invoke(context.Background(), a, b, "x"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("invoke after remove+recover: %v; want ErrUnknownNode", err)
	}
	if got := n.Len(); got != 1 {
		t.Fatalf("Len() = %d; want 1", got)
	}
	// Recover of a never-registered id is equally inert.
	n.Recover(id.NodeFromUint64(99))
	if n.Alive(id.NodeFromUint64(99)) {
		t.Fatal("recover invented an unregistered node")
	}
}

func TestDoubleFailAndRecoverIdempotent(t *testing.T) {
	n := New()
	a, b := id.NodeFromUint64(1), id.NodeFromUint64(2)
	eb := &echo{}
	n.Register(a, topology.Point{}, &echo{})
	n.Register(b, topology.Point{}, eb)

	n.Fail(b)
	n.Fail(b) // second fail must not corrupt state
	if n.Alive(b) {
		t.Fatal("node alive after double fail")
	}
	if _, err := n.Invoke(context.Background(), a, b, "x"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("invoke after double fail: %v", err)
	}
	n.Recover(b)
	if !n.Alive(b) {
		t.Fatal("node dead after recover")
	}
	if _, err := n.Invoke(context.Background(), a, b, "x"); err != nil || len(eb.seen) != 1 {
		t.Fatalf("invoke after recover: %v (seen %d)", err, len(eb.seen))
	}
	n.Recover(b) // recover of a live node is a no-op too
	if !n.Alive(b) {
		t.Fatal("recover of a live node killed it")
	}
	// Fail after remove must not re-create the entry.
	n.Remove(b)
	n.Fail(b)
	if got := n.Len(); got != 1 {
		t.Fatalf("Len() = %d after fail-of-removed; want 1", got)
	}
}
