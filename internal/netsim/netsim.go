// Package netsim is the network emulation environment the experiments
// run on. The paper evaluated PAST with all 2250 nodes inside a single
// JVM, communication reduced to local invocation; netsim is the same
// idea: a registry of endpoints keyed by nodeId, message delivery by
// direct call, plus the bookkeeping a real network would make observable
// (message counts, payload bytes, per-node liveness, and the proximity
// metric between any two nodes).
//
// The routing layer (internal/pastry) and the storage layer
// (internal/past) talk to the network only through the small Net
// interface, so the identical node code also runs over the real TCP
// transport in internal/transport.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"past/internal/id"
	"past/internal/topology"
)

// Errors returned by message delivery. These are the error taxonomy the
// whole stack classifies failures with: every transport (emulated, fault
// injected, TCP) maps its failures onto these sentinels, so the routing
// and storage layers can decide uniformly whether an operation is worth
// retrying.
var (
	// ErrUnknownNode reports a destination that was never registered.
	ErrUnknownNode = errors.New("netsim: unknown node")
	// ErrNodeDown reports a destination that is currently failed.
	ErrNodeDown = errors.New("netsim: node down")
	// ErrTimeout reports a message that got no reply in time: an expired
	// context deadline, a socket deadline, or an injected message drop
	// (the fault injector's model of a lost message IS a timeout at the
	// sender). Unlike ErrNodeDown it carries no claim that the peer is
	// dead — only that this exchange failed.
	ErrTimeout = errors.New("netsim: timeout")
	// ErrOverloaded reports a request shed by a node's admission control
	// (internal/admit): the node is alive but refusing work because its
	// request queue is saturated. It is retryable — a different replica,
	// hop, or a later (extra-backed-off) attempt may find capacity — and
	// it is the signal the routing layer reroutes around and the retry
	// layer slows down for.
	ErrOverloaded = errors.New("netsim: node overloaded")
)

// Retryable reports whether err is a transient delivery failure that a
// different attempt (another hop, another replica, a later retry) could
// plausibly get past: a down, unknown, or overloaded node, or a
// timeout. Application errors and context cancellation (the caller gave
// up) are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, ErrNodeDown) ||
		errors.Is(err, ErrUnknownNode) ||
		errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrOverloaded)
}

// CtxErr maps a context failure onto the delivery-error taxonomy: a
// deadline that expired is a timeout (retryable by a caller that still
// has budget); an explicit cancellation is passed through untouched so
// hedged losers and aborted requests are never retried.
func CtxErr(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	default:
		return err
	}
}

// Endpoint is the receiving side of a node: it handles one message and
// returns a reply. Implementations must be safe for concurrent use if
// the network is driven from multiple goroutines.
type Endpoint interface {
	Deliver(from id.Node, msg any) (any, error)
}

// Sized is implemented by messages that can report their encoded size;
// the network adds it to the traffic counters.
type Sized interface {
	WireSize() int
}

// Net is the communication interface node code depends on. Both the
// in-process Network here and the TCP transport implement it.
type Net interface {
	// Invoke delivers msg from src to dst and returns dst's reply. The
	// context bounds the exchange: implementations must honor its
	// deadline (reporting expiry as ErrTimeout) and its cancellation.
	Invoke(ctx context.Context, src, dst id.Node, msg any) (any, error)
	// Alive reports whether dst is currently reachable.
	Alive(dst id.Node) bool
	// Proximity returns the scalar proximity metric between two nodes,
	// and false if either is unknown.
	Proximity(a, b id.Node) (float64, bool)
}

type entry struct {
	ep    Endpoint
	pos   topology.Point
	alive bool
}

// Network is the in-process emulated network.
type Network struct {
	mu    sync.RWMutex
	nodes map[id.Node]*entry

	messages atomic.Int64
	bytes    atomic.Int64
	byType   sync.Map // message type name -> *atomic.Int64
}

var _ Net = (*Network)(nil)

// New creates an empty emulated network.
func New() *Network {
	return &Network{nodes: make(map[id.Node]*entry)}
}

// Register adds a live node at the given position. Registering an
// existing id replaces its endpoint and position (a node re-joining
// after losing its disk does exactly this).
func (n *Network) Register(nid id.Node, pos topology.Point, ep Endpoint) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[nid] = &entry{ep: ep, pos: pos, alive: true}
}

// Fail marks a node unreachable; its state is retained so it can recover.
func (n *Network) Fail(nid id.Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.nodes[nid]; ok {
		e.alive = false
	}
}

// Recover marks a previously failed node reachable again.
func (n *Network) Recover(nid id.Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.nodes[nid]; ok {
		e.alive = true
	}
}

// Remove deletes a node entirely.
func (n *Network) Remove(nid id.Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, nid)
}

// Alive reports whether nid is registered and not failed.
func (n *Network) Alive(nid id.Node) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.nodes[nid]
	return ok && e.alive
}

// Invoke delivers msg to dst and returns its reply. Messages to unknown
// or failed nodes fail with ErrUnknownNode or ErrNodeDown, which is how
// senders detect failures (the emulated analogue of a timeout). An
// already-expired or cancelled context fails the delivery up front; the
// emulation's zero-latency calls never expire mid-flight.
func (n *Network) Invoke(ctx context.Context, src, dst id.Node, msg any) (any, error) {
	if err := CtxErr(ctx); err != nil {
		return nil, err
	}
	n.mu.RLock()
	e, ok := n.nodes[dst]
	n.mu.RUnlock()
	if !ok {
		return nil, ErrUnknownNode
	}
	if !e.alive {
		return nil, ErrNodeDown
	}
	n.messages.Add(1)
	n.countType(msg)
	if s, ok := msg.(Sized); ok {
		n.bytes.Add(int64(s.WireSize()))
	}
	return e.ep.Deliver(src, msg)
}

// countType attributes the message to its concrete type, for overhead
// decomposition (e.g. how many of an insert's messages were free-space
// queries vs replica stores).
func (n *Network) countType(msg any) {
	name := fmt.Sprintf("%T", msg)
	c, ok := n.byType.Load(name)
	if !ok {
		c, _ = n.byType.LoadOrStore(name, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(1)
}

// MessagesByType returns a snapshot of per-message-type delivery counts,
// keyed by the concrete Go type name.
func (n *Network) MessagesByType() map[string]int64 {
	out := make(map[string]int64)
	n.byType.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Proximity returns the emulated proximity metric (Euclidean plane
// distance) between two registered nodes.
func (n *Network) Proximity(a, b id.Node) (float64, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ea, oka := n.nodes[a]
	eb, okb := n.nodes[b]
	if !oka || !okb {
		return 0, false
	}
	return topology.Distance(ea.pos, eb.pos), true
}

// Position returns a node's plane coordinates.
func (n *Network) Position(nid id.Node) (topology.Point, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.nodes[nid]
	if !ok {
		return topology.Point{}, false
	}
	return e.pos, true
}

// Nodes returns all registered nodeIds (live and failed) in ascending
// order, for deterministic iteration.
func (n *Network) Nodes() []id.Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]id.Node, 0, len(n.nodes))
	for nid := range n.nodes {
		out = append(out, nid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AliveNodes returns the live nodeIds in ascending order.
func (n *Network) AliveNodes() []id.Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]id.Node, 0, len(n.nodes))
	for nid, e := range n.nodes {
		if e.alive {
			out = append(out, nid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Len returns the number of registered nodes.
func (n *Network) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.nodes)
}

// Messages returns the total number of messages delivered.
func (n *Network) Messages() int64 { return n.messages.Load() }

// Bytes returns the total payload bytes of Sized messages delivered.
func (n *Network) Bytes() int64 { return n.bytes.Load() }

// ResetCounters zeroes the traffic counters.
func (n *Network) ResetCounters() {
	n.messages.Store(0)
	n.bytes.Store(0)
}
