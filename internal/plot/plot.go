// Package plot renders line charts and scatter plots as fixed-width
// text, so past-bench can draw the paper's figures — not just their
// data tables — on a terminal. The renderer is deliberately simple:
// linear or log10 y-axis, multiple series distinguished by marker
// runes, automatic bounds, and a legend.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Chart describes a plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot columns (default 64)
	Height int  // plot rows (default 16)
	LogY   bool // log10 y-axis (Figures 2 and 3 use one)
	// YMin/YMax fix the y-range; both zero = automatic.
	YMin, YMax float64
	Series     []Series
}

// DefaultMarkers are assigned to series lacking one.
var DefaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}

	// Collect bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if !any {
		return c.Title + "\n(no data)\n"
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
		if c.LogY {
			ymin, ymax = math.Log10(math.Max(c.YMin, 1e-12)), math.Log10(c.YMax)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = make([]rune, w)
		for col := range grid[r] {
			grid[r][col] = ' '
		}
	}
	plotPoint := func(x, y float64, m rune) {
		if c.LogY {
			if y <= 0 {
				return
			}
			y = math.Log10(y)
		}
		if y < ymin || y > ymax || x < xmin || x > xmax {
			return
		}
		col := int((x - xmin) / (xmax - xmin) * float64(w-1))
		row := h - 1 - int((y-ymin)/(ymax-ymin)*float64(h-1))
		if grid[row][col] == ' ' || grid[row][col] == m {
			grid[row][col] = m
		} else {
			grid[row][col] = '&' // overlapping series
		}
	}
	for si, s := range c.Series {
		m := s.Marker
		if m == 0 {
			m = DefaultMarkers[si%len(DefaultMarkers)]
		}
		for i := range s.X {
			plotPoint(s.X[i], s.Y[i], m)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLabelAt := func(row int) string {
		v := ymax - (ymax-ymin)*float64(row)/float64(h-1)
		if c.LogY {
			v = math.Pow(10, v)
			return fmt.Sprintf("%9.2g", v)
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", 9)
		if r == 0 || r == h-1 || r == h/2 {
			label = yLabelAt(r)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s  %-10.3g%s%10.3g\n", strings.Repeat(" ", 9),
		xmin, strings.Repeat(" ", maxInt(1, w-20)), xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s", strings.Repeat(" ", 9), c.XLabel, yAxisName(c))
		b.WriteByte('\n')
	}
	var legend []string
	for si, s := range c.Series {
		m := s.Marker
		if m == 0 {
			m = DefaultMarkers[si%len(DefaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", m, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 9), strings.Join(legend, "   "))
	}
	return b.String()
}

func yAxisName(c Chart) string {
	if c.LogY {
		return c.YLabel + " (log)"
	}
	return c.YLabel
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
