package plot

import (
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatal("missing legend")
	}
	// Both markers (or the overlap rune) must appear in the grid.
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Fatal("markers not plotted")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 18 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestRenderMonotoneSeriesShape(t *testing.T) {
	// An increasing series must place its marker lower (later row) for
	// smaller x: verify the first column's marker row is below the last
	// column's.
	c := Chart{Width: 20, Height: 10, Series: []Series{
		{Name: "s", Marker: '*', X: []float64{0, 1}, Y: []float64{0, 1}},
	}}
	out := c.Render()
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, l := range lines {
		if idx := strings.IndexRune(l, '*'); idx >= 0 {
			if firstRow == -1 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if firstRow == -1 || firstRow >= lastRow {
		t.Fatalf("increasing series not rendered top-right to bottom-left: rows %d..%d", firstRow, lastRow)
	}
}

func TestRenderLogY(t *testing.T) {
	c := Chart{
		LogY: true,
		Series: []Series{{
			Name: "f",
			X:    []float64{0, 50, 100},
			Y:    []float64{0.0001, 0.01, 1},
		}},
	}
	out := c.Render()
	if !strings.ContainsRune(out, '*') {
		t.Fatal("log chart empty")
	}
	// Zero/negative values are skipped, not crashed on.
	c.Series[0].Y[0] = 0
	if out := c.Render(); !strings.ContainsRune(out, '*') {
		t.Fatal("log chart with zero value lost all points")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "no data") {
		t.Fatal("empty chart must say so")
	}
	// All-nonpositive with LogY is also empty.
	out = Chart{LogY: true, Series: []Series{{Name: "z", X: []float64{1}, Y: []float64{0}}}}.Render()
	if !strings.Contains(out, "no data") {
		t.Fatal("all-skipped log chart must be empty")
	}
}

func TestOverlapMarker(t *testing.T) {
	c := Chart{Width: 10, Height: 5, Series: []Series{
		{Name: "a", Marker: 'a', X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "b", Marker: 'b', X: []float64{0, 1}, Y: []float64{0, 1}},
	}}
	out := c.Render()
	if !strings.ContainsRune(out, '&') {
		t.Fatal("overlapping points must render the overlap rune")
	}
}

func TestFixedYRange(t *testing.T) {
	c := Chart{
		Width: 20, Height: 8,
		YMin: 0, YMax: 100,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{50, 150}}},
	}
	out := c.Render()
	// The out-of-range point is clipped, the in-range one plotted; count
	// markers only inside the grid (legend lines carry one too).
	plotted := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			plotted += strings.Count(l, "*")
		}
	}
	if plotted != 1 {
		t.Fatalf("clipping failed, %d plotted:\n%s", plotted, out)
	}
}
