package pastry

import (
	"testing"

	"past/internal/id"
)

// Section 2.3: Pastry as described is deterministic and thus vulnerable
// to a malicious node along the route that accepts messages but does not
// forward them correctly; repeated queries would fail each time. The
// routing is therefore randomized so the client's retries eventually
// avoid the bad node.

// servedApp marks deliveries so the test can tell a real delivery from a
// swallowed message.
type servedApp struct{ self id.Node }

func (a servedApp) Forward(id.Node, any) (bool, any, error) { return false, nil, nil }
func (a servedApp) Deliver(key id.Node, msg any) (any, error) {
	return "served-by-" + a.self.Short(), nil
}
func (a servedApp) Backward(id.Node, any, any) {}

// evilEndpoint swallows routed messages: it acknowledges them with an
// empty reply instead of forwarding, but answers everything else
// honestly so it is never presumed failed.
type evilEndpoint struct{ inner *Node }

func (e *evilEndpoint) Deliver(from id.Node, msg any) (any, error) {
	if req, ok := msg.(*RouteRequest); ok {
		return &RouteReply{Hops: req.Hops, Path: req.Path}, nil
	}
	return e.inner.Deliver(from, msg)
}

// buildServedCluster is buildCluster with the marking application.
func buildServedCluster(t *testing.T, n int, cfg Config, seed int64) *cluster {
	t.Helper()
	c := buildCluster(t, n, cfg, seed)
	for _, node := range c.nodes {
		node.SetApplication(servedApp{self: node.ID()})
	}
	return c
}

// plantEvil finds a (client, key) pair whose route has an intermediate
// node, corrupts that node, and returns the pieces. It reports false if
// no suitable route exists at this scale.
func plantEvil(t *testing.T, c *cluster) (client *Node, key id.Node, evil id.Node, ok bool) {
	t.Helper()
	for try := 0; try < 200; try++ {
		key = randKey(c.rng)
		client = c.randomAliveNode()
		_, _, path, err := client.RouteTraced(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) < 3 {
			continue // no intermediate hop to corrupt
		}
		evil = path[1] // first hop: intermediate, not origin, not terminal
		pos, _ := c.net.Position(evil)
		c.net.Register(evil, pos, &evilEndpoint{inner: c.nodes[evil]})
		return client, key, evil, true
	}
	return nil, id.Node{}, id.Node{}, false
}

func TestMaliciousNodeDefeatsDeterministicRouting(t *testing.T) {
	c := buildServedCluster(t, 150, Config{B: 4, L: 16}, 41) // RandomizeP = 0
	client, key, _, ok := plantEvil(t, c)
	if !ok {
		t.Skip("no multi-hop route at this scale")
	}
	// Every retry takes the identical path through the bad node and is
	// swallowed.
	for i := 0; i < 20; i++ {
		reply, _, err := client.Route(key, "probe")
		if err != nil {
			t.Fatal(err)
		}
		if reply != nil {
			t.Fatalf("retry %d was served despite the deterministic path crossing the bad node", i)
		}
	}
}

func TestRandomizedRoutingEvadesMaliciousNode(t *testing.T) {
	c := buildServedCluster(t, 150, Config{B: 4, L: 16, RandomizeP: 0.5}, 41)
	client, key, evil, ok := plantEvil(t, c)
	if !ok {
		t.Skip("no multi-hop route at this scale")
	}
	served := false
	for i := 0; i < 40 && !served; i++ {
		reply, _, err := client.Route(key, "probe")
		if err != nil {
			t.Fatal(err)
		}
		if s, isStr := reply.(string); isStr && s != "" {
			served = true
		}
	}
	if !served {
		t.Fatalf("40 randomized retries never avoided the malicious node %s", evil.Short())
	}
}
