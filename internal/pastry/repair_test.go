package pastry

import (
	"testing"

	"past/internal/id"
)

// TestTableRepairAfterFailure exercises the lazy routing-table repair:
// a route that discovers a dead table entry must both drop it and
// refill the slot from same-row peers when a live candidate exists.
func TestTableRepairAfterFailure(t *testing.T) {
	c := buildCluster(t, 200, Config{B: 4, L: 16}, 77)

	repaired := 0
	for _, nid := range c.net.AliveNodes() {
		if repaired >= 3 {
			break
		}
		a := c.nodes[nid]
		row := a.TableRow(0)
		for col, dead := range row {
			if dead.IsZero() || !c.net.Alive(dead) {
				continue
			}
			// Is there another live node with first digit col (a
			// replacement candidate)?
			replacements := 0
			for _, other := range c.net.AliveNodes() {
				if other != dead && other.Digit(0, 4) == col {
					replacements++
				}
			}
			if replacements == 0 {
				continue
			}

			c.net.Fail(dead)
			// Route toward the dead node's id: the first hop uses the
			// dead table entry, discovers the failure, and repairs.
			if _, _, err := a.Route(dead, nil); err != nil {
				t.Fatal(err)
			}
			got := a.TableRow(0)[col]
			if got == dead {
				t.Fatalf("dead entry %s still in table", dead.Short())
			}
			if got.IsZero() {
				t.Fatalf("slot (0,%d) not repaired despite %d live candidates", col, replacements)
			}
			if got.Digit(0, 4) != col || !c.net.Alive(got) {
				t.Fatalf("repair installed invalid entry %s", got.Short())
			}
			c.net.Recover(dead)
			repaired++
			break
		}
	}
	if repaired == 0 {
		t.Fatal("no repairable slot found at this scale")
	}
}

// TestRowRequestBounds checks the repair RPC's row validation.
func TestRowRequestBounds(t *testing.T) {
	c := buildCluster(t, 10, Config{B: 4, L: 8}, 78)
	a := c.nodes[c.order[0]]
	res, err := a.Deliver(id.NodeFromUint64(1), &RowRequest{Row: -1})
	if err != nil || len(res.(*RowReply).Entries) != 0 {
		t.Fatal("negative row must return empty")
	}
	res, err = a.Deliver(id.NodeFromUint64(1), &RowRequest{Row: 10_000})
	if err != nil || len(res.(*RowReply).Entries) != 0 {
		t.Fatal("out-of-range row must return empty")
	}
	res, err = a.Deliver(id.NodeFromUint64(1), &RowRequest{Row: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.(*RowReply).Entries {
		if e.IsZero() {
			t.Fatal("row reply contains empty entries")
		}
	}
}

// TestDepartRemovesFromAllState verifies graceful departure: after
// Depart, no node the leaver knew still lists it in its leaf set (the
// symmetric state that matters for replica placement), and routing
// remains correct. Routing-table references elsewhere are asymmetric —
// the leaver cannot know who points at it — and are repaired lazily on
// first use, exactly as the paper prescribes.
func TestDepartRemovesFromAllState(t *testing.T) {
	c := buildCluster(t, 40, Config{B: 4, L: 8}, 79)
	leaver := c.nodes[c.order[7]]
	leaver.Depart()
	c.net.Remove(leaver.ID())

	for _, nid := range c.net.AliveNodes() {
		n := c.nodes[nid]
		for _, m := range n.LeafSet() {
			if m == leaver.ID() {
				t.Fatalf("node %s still has departed node in leaf set", nid.Short())
			}
		}
	}
	if leaver.Joined() {
		t.Fatal("departed node still reports joined")
	}
	// Routing still reaches the correct closest nodes.
	for i := 0; i < 50; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, _, path, err := src.RouteTraced(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := path[len(path)-1], c.globalClosest(key); got != want {
			t.Fatalf("post-departure route ended at %s; want %s", got.Short(), want.Short())
		}
	}
}
