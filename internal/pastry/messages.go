package pastry

import (
	"context"
	"fmt"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/obs"
)

// Wire-visible message types. These are the only values Pastry nodes
// exchange; the application payload inside RouteRequest is opaque to
// this package.

// RouteRequest carries a routed message. It travels hop by hop: every
// node either consumes it (application Forward/Deliver) or forwards it to
// the next hop, incrementing Hops.
type RouteRequest struct {
	Key     id.Node
	Payload any
	Hops    int

	// CollectPath asks every hop to append itself to Path.
	CollectPath bool
	Path        []id.Node

	// Traced asks every hop to append its routing decision to Trace —
	// one record per decision, including failed attempts that forced a
	// reroute. The consuming node copies the accumulated records into
	// the reply.
	Traced bool
	Trace  []obs.HopRecord

	// TC is the end-to-end trace context the route runs under (zero:
	// none). It rides the request across process boundaries so every
	// relay keeps recording into Trace under the same trace id, and its
	// Budget caps how many hop records accumulate — the budget bounds
	// recording only, never the route itself.
	TC obs.TraceContext

	// JoinCollect asks every hop to contribute routing-table candidates
	// for a joining node; used only by the join protocol.
	JoinCollect bool
	Rows        []id.Node
}

// RouteReply is the response to a RouteRequest, produced by the node
// that consumed the message and passed back through every hop.
type RouteReply struct {
	Payload any
	Hops    int
	Path    []id.Node
	Trace   []obs.HopRecord

	// Load is the admission-control load hint (0 idle .. 255 saturated)
	// of the last node the reply passed through: each relay overwrites
	// it on the way back, so the sender of the RouteRequest reads its
	// own next hop's load. Zero when the node runs no admission control.
	Load uint8

	// Join protocol results: the terminal node's identity and leaf set,
	// and the routing candidates collected along the path.
	Terminal id.Node
	Leaf     []id.Node
	Rows     []id.Node
}

// joinPayload marks a RouteRequest as a node-join message; it is
// consumed by the Pastry layer itself at the terminal node.
type joinPayload struct {
	Joiner id.Node
}

// Ping is the keep-alive probe neighboring nodes exchange.
type Ping struct{}

// Pong answers a Ping.
type Pong struct{}

// StateRequest asks a node for its leaf set and neighborhood set; used
// during join, recovery, and leaf-set repair.
type StateRequest struct{}

// StateReply carries a node's visible routing state.
type StateReply struct {
	ID   id.Node
	Leaf []id.Node
	Nbrs []id.Node
}

// Announce tells a node that NewNode has arrived (or recovered) so it
// can update its leaf set, routing table, and neighborhood set.
type Announce struct {
	NewNode id.Node
}

// Depart tells a node that Node is leaving the network gracefully, so
// it can be dropped from all state immediately instead of waiting for
// keep-alive timeouts.
type Depart struct {
	Node id.Node
}

// RowRequest asks a node for routing-table row Row; used to repair a
// table entry that referred to a failed node (the "repaired lazily"
// procedure of section 2.1: a peer that shares the dead entry's prefix
// likely knows a live replacement).
type RowRequest struct {
	Row int
}

// RowReply carries the non-empty entries of the requested row.
type RowReply struct {
	Entries []id.Node
}

// Ack is the generic empty acknowledgment.
type Ack struct{}

// Deliver implements netsim.Endpoint for a bare Pastry node; nodes
// wrapped by an application (PAST) route through the wrapper instead,
// which delegates unknown messages here.
func (n *Node) Deliver(from id.Node, msg any) (any, error) {
	// A node that has not (re)joined is not on the overlay, even if its
	// endpoint is reachable: a crashed node's replacement process binds
	// the same address before rejoining, and answering pings or routes
	// in that window would keep the previous incarnation's entries
	// alive in peers' state — the join route would then terminate at
	// the joiner itself and misread its own stale entry as an id
	// collision. Refusing makes peers purge the entry (keep-alive
	// failure) or route around it (next-hop failure), exactly as if the
	// process were still down.
	if !n.Joined() {
		return nil, ErrNotJoined
	}
	switch m := msg.(type) {
	case *RouteRequest:
		// A relayed message runs under a fresh context: the originator's
		// deadline bounds its own Invoke of the first hop, and each relay
		// bounds its onward RPCs with cfg.HopTimeout.
		rr, err := n.routeStep(context.Background(), m)
		if err == nil {
			// Stamp this node's load on the reply as it passes back, so
			// the upstream hop learns how loaded we are. Only nodes the
			// request reached over the network stamp; the origin never
			// overwrites with its own load.
			if lf := n.LoadFunc; lf != nil {
				rr.Load = lf()
			}
		}
		return rr, err
	case *Ping:
		return &Pong{}, nil
	case *StateRequest:
		return n.stateReply(), nil
	case *Announce:
		if n.consider(m.NewNode) {
			n.notifyLeafChange()
		}
		return &Ack{}, nil
	case *Depart:
		// Forget immediately so routes avoid the departing node; the
		// vacated leaf/table slots refill on the next keep-alive round,
		// once the node is actually gone (repairing now could re-learn
		// it from peers that have not yet processed their Depart).
		if n.forget(m.Node) {
			n.notifyLeafChange()
		}
		return &Ack{}, nil
	case *RowRequest:
		if m.Row < 0 || m.Row >= len(n.rows) {
			return &RowReply{}, nil
		}
		n.mu.Lock()
		var entries []id.Node
		for _, e := range n.rows[m.Row] {
			if !e.IsZero() {
				entries = append(entries, e)
			}
		}
		n.mu.Unlock()
		return &RowReply{Entries: entries}, nil
	default:
		return nil, fmt.Errorf("pastry: node %s: unknown message %T", n.self.Short(), msg)
	}
}

var _ netsim.Endpoint = (*Node)(nil)

func (n *Node) stateReply() *StateReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	return &StateReply{
		ID:   n.self,
		Leaf: n.leafSetLocked(),
		Nbrs: append([]id.Node(nil), n.nbrs...),
	}
}
