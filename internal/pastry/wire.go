package pastry

import "encoding/gob"

// RegisterWire registers every Pastry message type with the gob codec
// used by the TCP transport. The in-process emulation passes values
// directly and does not need this.
func RegisterWire() {
	gob.Register(&RouteRequest{})
	gob.Register(&RouteReply{})
	gob.Register(joinPayload{})
	gob.Register(&Ping{})
	gob.Register(&Pong{})
	gob.Register(&StateRequest{})
	gob.Register(&StateReply{})
	gob.Register(&Announce{})
	gob.Register(&Depart{})
	gob.Register(&RowRequest{})
	gob.Register(&RowReply{})
	gob.Register(&Ack{})
}
