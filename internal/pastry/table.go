package pastry

import (
	"past/internal/id"
)

// Routing-table maintenance. Row r of the table holds, for each of the
// 2^b-1 digit values other than the present node's own digit at position
// r, a node whose nodeId shares the first r digits with the present node
// and has that digit value at position r. Among the potentially many
// qualifying nodes, the entry is kept pointing at the proximally closest
// candidate seen so far, which is what gives Pastry its locality
// properties.

// tableConsiderLocked offers x as a candidate for the routing table.
// Returns whether the table changed. Caller holds n.mu.
func (n *Node) tableConsiderLocked(x id.Node) bool {
	if x == n.self || x.IsZero() {
		return false
	}
	r := n.self.SharedPrefix(x, n.cfg.B)
	if r >= len(n.rows) {
		return false // x == self, already excluded
	}
	col := x.Digit(r, n.cfg.B)
	cur := n.rows[r][col]
	if cur == x {
		return false
	}
	if cur.IsZero() {
		n.rows[r][col] = x
		return true
	}
	// Keep the proximally closer of the two candidates; if either
	// proximity is unknown, keep the incumbent.
	dNew, ok1 := n.net.Proximity(n.self, x)
	dCur, ok2 := n.net.Proximity(n.self, cur)
	if ok1 && ok2 && dNew < dCur {
		n.rows[r][col] = x
		return true
	}
	return false
}

// tableRemoveLocked clears any table entry referring to x. Caller holds
// n.mu.
func (n *Node) tableRemoveLocked(x id.Node) {
	if x.IsZero() {
		return
	}
	r := n.self.SharedPrefix(x, n.cfg.B)
	if r >= len(n.rows) {
		return
	}
	col := x.Digit(r, n.cfg.B)
	if n.rows[r][col] == x {
		n.rows[r][col] = id.Node{}
	}
}

// tableLookupLocked returns the entry for the key's digit at the row
// where the shared prefix with self ends, or a zero id if empty. Caller
// holds n.mu.
func (n *Node) tableLookupLocked(key id.Node) id.Node {
	r := n.self.SharedPrefix(key, n.cfg.B)
	if r >= len(n.rows) {
		return id.Node{}
	}
	return n.rows[r][key.Digit(r, n.cfg.B)]
}

// TableRow returns a copy of routing-table row r.
func (n *Node) TableRow(r int) []id.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]id.Node(nil), n.rows[r]...)
}

// TableEntries returns all non-empty routing table entries.
func (n *Node) TableEntries() []id.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tableEntriesLocked()
}

func (n *Node) tableEntriesLocked() []id.Node {
	var out []id.Node
	for _, row := range n.rows {
		for _, e := range row {
			if !e.IsZero() {
				out = append(out, e)
			}
		}
	}
	return out
}

// TableSize returns the number of populated routing-table entries.
func (n *Node) TableSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, row := range n.rows {
		for _, e := range row {
			if !e.IsZero() {
				c++
			}
		}
	}
	return c
}

// nbrConsiderLocked offers x as a neighborhood-set candidate (the M
// proximally closest nodes known). Caller holds n.mu.
func (n *Node) nbrConsiderLocked(x id.Node) bool {
	if x == n.self || x.IsZero() {
		return false
	}
	for _, m := range n.nbrs {
		if m == x {
			return false
		}
	}
	d, ok := n.net.Proximity(n.self, x)
	if !ok {
		return false
	}
	if len(n.nbrs) < n.cfg.M {
		n.nbrs = append(n.nbrs, x)
		n.sortNbrsLocked()
		return true
	}
	// Replace the farthest member if x is closer.
	far := n.nbrs[len(n.nbrs)-1]
	dFar, ok := n.net.Proximity(n.self, far)
	if ok && d < dFar {
		n.nbrs[len(n.nbrs)-1] = x
		n.sortNbrsLocked()
		return true
	}
	return false
}

func (n *Node) sortNbrsLocked() {
	self := n.self
	nbrs := n.nbrs
	// Insertion sort by proximity; M is small.
	for i := 1; i < len(nbrs); i++ {
		for j := i; j > 0; j-- {
			dj, _ := n.net.Proximity(self, nbrs[j])
			dp, _ := n.net.Proximity(self, nbrs[j-1])
			if dj < dp {
				nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
			} else {
				break
			}
		}
	}
}

// nbrRemoveLocked removes x from the neighborhood set. Caller holds n.mu.
func (n *Node) nbrRemoveLocked(x id.Node) {
	for i, m := range n.nbrs {
		if m == x {
			n.nbrs = append(n.nbrs[:i], n.nbrs[i+1:]...)
			return
		}
	}
}

// Neighborhood returns a copy of the neighborhood set, proximally
// closest first.
func (n *Node) Neighborhood() []id.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]id.Node(nil), n.nbrs...)
}

// consider offers x to every state component; it reports whether the
// leaf set changed but does not fire the leaf-set callback, so callers
// can batch notifications.
func (n *Node) consider(x id.Node) (leafChanged bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	leafChanged = n.leafInsertLocked(x)
	n.tableConsiderLocked(x)
	n.nbrConsiderLocked(x)
	return leafChanged
}

// forget removes x from every state component (used when x is found
// dead); like consider it reports leaf-set changes without firing the
// callback.
func (n *Node) forget(x id.Node) (leafChanged bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	leafChanged = n.leafRemoveLocked(x)
	n.tableRemoveLocked(x)
	n.nbrRemoveLocked(x)
	return leafChanged
}
