// Package pastry implements the Pastry peer-to-peer routing substrate
// that PAST is layered on (Rowstron & Druschel, Middleware 2001, as
// summarized in section 2.1 of the PAST paper).
//
// Every node keeps three pieces of state:
//
//   - a routing table with ceil(log_2^b N) populated rows of 2^b-1
//     entries; the entries in row n refer to nodes sharing the first n
//     digits with the present node but differing in digit n+1, chosen to
//     be close under the proximity metric;
//   - a leaf set: the l/2 numerically closest larger and l/2 numerically
//     closest smaller nodeIds;
//   - a neighborhood set of nodes close under the proximity metric, used
//     during node addition.
//
// In each routing step a message is forwarded to a node whose nodeId
// shares a prefix with the key at least one digit longer than the present
// node's, or failing that, to a node sharing an equally long prefix but
// numerically closer to the key. Routing therefore terminates in
// O(log_2^b N) hops at the live node with nodeId numerically closest to
// the key.
//
// Routing is recursive: each node picks the next hop and invokes it
// directly, so identical node code runs over the in-process emulation
// (internal/netsim) and the TCP transport (internal/transport).
package pastry

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"past/internal/id"
	"past/internal/netsim"
)

// Config carries the Pastry protocol parameters.
type Config struct {
	// B is the number of bits per digit (the paper's b, typically 4).
	B int
	// L is the leaf set size (the paper's l, typically 32). Must be even.
	L int
	// M is the neighborhood set size (typically l).
	M int
	// RandomizeP is the probability that a routing step forwards to a
	// random valid candidate instead of the best one. Randomized routing
	// defeats malicious nodes that repeatedly swallow messages on a
	// deterministic path (section 2.3 of the PAST paper). Zero disables.
	RandomizeP float64
	// HopLimit bounds route length as a defense against state-corruption
	// bugs; 0 selects a generous default.
	HopLimit int
	// HopTimeout, when positive, bounds each forwarding RPC (on top of
	// any request-level deadline), so one silent next hop costs a bounded
	// wait before the route tries an alternate. Zero leaves per-hop RPCs
	// bounded only by the request context, which is right for the
	// in-process emulation where calls cannot hang.
	HopTimeout time.Duration
	// FailFast disables per-hop reroute: a failed next-hop RPC aborts
	// the route immediately instead of trying alternates. This restores
	// the pre-resilience baseline and exists for the chaos soak's
	// layer-off comparison and for ablations.
	FailFast bool
}

// DefaultConfig returns the paper's standard parameters: b=4, l=32.
func DefaultConfig() Config { return Config{B: 4, L: 32} }

func (c Config) withDefaults() Config {
	if c.B == 0 {
		c.B = 4
	}
	if c.L == 0 {
		c.L = 32
	}
	if c.L%2 != 0 {
		panic(fmt.Sprintf("pastry: leaf set size %d must be even", c.L))
	}
	if c.M == 0 {
		c.M = c.L
	}
	if c.HopLimit == 0 {
		c.HopLimit = 4*id.NumDigits(c.B) + 2*c.L
	}
	return c
}

// Application is the upcall interface Pastry exposes to the layer above
// (PAST). It mirrors the common Pastry API: Forward fires at every node a
// routed message visits and may consume the message; Deliver fires at the
// node with nodeId numerically closest to the key; Backward fires on the
// path nodes, in reverse order, as the reply returns toward the origin.
type Application interface {
	Forward(key id.Node, msg any) (handled bool, reply any, err error)
	Deliver(key id.Node, msg any) (reply any, err error)
	Backward(key id.Node, msg, reply any)
}

// NopApplication ignores every upcall; useful for routing-only nodes.
type NopApplication struct{}

// Forward never consumes a message.
func (NopApplication) Forward(id.Node, any) (bool, any, error) { return false, nil, nil }

// Deliver returns a nil reply.
func (NopApplication) Deliver(id.Node, any) (any, error) { return nil, nil }

// Backward does nothing.
func (NopApplication) Backward(id.Node, any, any) {}

// Node is one Pastry node. All exported methods are safe for concurrent
// use. A Node must be registered as (or wrapped by) the netsim endpoint
// for its nodeId before Join is called.
type Node struct {
	cfg  Config
	self id.Node
	net  netsim.Net
	app  Application

	mu     sync.Mutex
	rows   [][]id.Node // routing table: rows[digit][value], zero = empty
	leafLo []id.Node   // counter-clockwise (numerically smaller), closest first
	leafHi []id.Node   // clockwise (numerically larger), closest first
	nbrs   []id.Node   // neighborhood set, proximally closest first
	rng    *rand.Rand
	joined bool

	reroutes     atomic.Int64
	leafRepairs  atomic.Int64
	overloadHops atomic.Int64

	// OnLeafSetChange, if set, is called (without the node lock held)
	// after any mutation of the leaf set. PAST uses it to re-establish
	// the k-replica invariant.
	OnLeafSetChange func()

	// OnReroute, if set, observes every next hop presumed failed during
	// routing (after the hop was evicted and the route moved to an
	// alternate). The metrics layer counts these. Called without the
	// node lock held.
	OnReroute func(dead id.Node)

	// LoadFunc, if set, reports this node's current admission-control
	// load (0 idle .. 255 saturated). Replies to routed requests this
	// node relayed or consumed are stamped with it, so upstream nodes
	// learn how loaded their next hops are. Must be safe for concurrent
	// use.
	LoadFunc func() uint8

	// OnLoadHint, if set, observes the load hint piggybacked on each
	// route reply received from a next hop (and a synthetic 255 when a
	// hop sheds with ErrOverloaded). PAST uses it to steer hedged
	// lookups toward less-loaded entry points. Called without the node
	// lock held; must be safe for concurrent use.
	OnLoadHint func(hop id.Node, load uint8)
}

// New creates a node with the given identifier. app may be nil, in which
// case routing works but all payloads are delivered to a NopApplication.
func New(self id.Node, net netsim.Net, cfg Config, app Application, seed int64) *Node {
	cfg = cfg.withDefaults()
	if app == nil {
		app = NopApplication{}
	}
	n := &Node{
		cfg:  cfg,
		self: self,
		net:  net,
		app:  app,
		rng:  rand.New(rand.NewSource(seed)),
	}
	n.rows = make([][]id.Node, id.NumDigits(cfg.B))
	for i := range n.rows {
		n.rows[i] = make([]id.Node, 1<<cfg.B)
	}
	return n
}

// ID returns the node's 128-bit identifier.
func (n *Node) ID() id.Node { return n.self }

// Config returns the node's protocol parameters.
func (n *Node) Config() Config { return n.cfg }

// SetApplication replaces the application layer. It must be called
// before the node joins or receives traffic.
func (n *Node) SetApplication(app Application) { n.app = app }

// Joined reports whether the node has completed Bootstrap or Join.
func (n *Node) Joined() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.joined
}

// Bootstrap initializes the very first node of a network.
func (n *Node) Bootstrap() {
	n.mu.Lock()
	n.joined = true
	n.mu.Unlock()
}

// Reroutes returns how many next hops this node has presumed failed and
// routed around since creation.
func (n *Node) Reroutes() int64 { return n.reroutes.Load() }

// LeafRepairs returns how many CheckLeafSet rounds actually changed the
// leaf set (dead members dropped or missing neighbors re-learned).
func (n *Node) LeafRepairs() int64 { return n.leafRepairs.Load() }

// OverloadHops returns how many next hops answered ErrOverloaded and
// were routed around (without being evicted — an overloaded node is
// alive).
func (n *Node) OverloadHops() int64 { return n.overloadHops.Load() }

// notifyLeafChange invokes the leaf-set callback outside the lock.
func (n *Node) notifyLeafChange() {
	if cb := n.OnLeafSetChange; cb != nil {
		cb()
	}
}
