package pastry

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/topology"
)

// cluster is an emulated Pastry network for tests.
type cluster struct {
	net   *netsim.Network
	nodes map[id.Node]*Node
	order []id.Node // join order
	rng   *rand.Rand
}

// buildCluster constructs an n-node network by sequential joins, each new
// node bootstrapping from the proximally closest existing node (as the
// protocol prescribes).
func buildCluster(t testing.TB, n int, cfg Config, seed int64) *cluster {
	t.Helper()
	c := &cluster{
		net:   netsim.New(),
		nodes: make(map[id.Node]*Node),
		rng:   rand.New(rand.NewSource(seed)),
	}
	plane := topology.DefaultPlane
	for i := 0; i < n; i++ {
		var nid id.Node
		c.rng.Read(nid[:])
		pos := plane.RandomPoint(c.rng)
		node := New(nid, c.net, cfg, nil, c.rng.Int63())
		c.net.Register(nid, pos, node)
		if i == 0 {
			node.Bootstrap()
		} else {
			boot := c.closestExisting(pos)
			if err := node.Join(boot); err != nil {
				t.Fatalf("join node %d: %v", i, err)
			}
		}
		c.nodes[nid] = node
		c.order = append(c.order, nid)
	}
	return c
}

func (c *cluster) closestExisting(pos topology.Point) id.Node {
	best := id.Node{}
	bestD := math.Inf(1)
	for nid := range c.nodes {
		p, _ := c.net.Position(nid)
		if d := topology.Distance(pos, p); d < bestD {
			best, bestD = nid, d
		}
	}
	return best
}

// globalClosest returns the live node numerically closest to key, by
// brute force.
func (c *cluster) globalClosest(key id.Node) id.Node {
	var best id.Node
	first := true
	for nid := range c.nodes {
		if !c.net.Alive(nid) {
			continue
		}
		if first || key.Closer(nid, best) {
			best, first = nid, false
		}
	}
	return best
}

func (c *cluster) randomAliveNode() *Node {
	alive := c.net.AliveNodes()
	return c.nodes[alive[c.rng.Intn(len(alive))]]
}

func randKey(r *rand.Rand) id.Node {
	var k id.Node
	r.Read(k[:])
	return k
}

func TestRouteReachesNumericallyClosest(t *testing.T) {
	c := buildCluster(t, 60, Config{B: 4, L: 16}, 1)
	for i := 0; i < 300; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, hops, path, err := src.RouteTraced(key, nil)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		want := c.globalClosest(key)
		if got := path[len(path)-1]; got != want {
			t.Fatalf("route %d for key %s ended at %s; want %s",
				i, key.Short(), got.Short(), want.Short())
		}
		if hops != len(path)-1 {
			t.Fatalf("hops %d inconsistent with path length %d", hops, len(path))
		}
	}
}

func TestRouteHopBoundLogarithmic(t *testing.T) {
	c := buildCluster(t, 150, Config{B: 4, L: 16}, 2)
	bound := int(math.Ceil(math.Log(150)/math.Log(16))) + 2 // ceil(log_16 N) with slack for leaf steps
	total, worst := 0, 0
	const trials = 400
	for i := 0; i < trials; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, hops, err := src.Route(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
		if hops > worst {
			worst = hops
		}
	}
	avg := float64(total) / trials
	if avg > float64(bound) {
		t.Fatalf("average hops %.2f exceeds %d", avg, bound)
	}
	if worst > 2*bound {
		t.Fatalf("worst hops %d exceeds %d", worst, 2*bound)
	}
	t.Logf("avg hops %.2f, worst %d (ceil(log_16 150)=%d)", avg, worst, bound)
}

func TestLeafSetMatchesGroundTruth(t *testing.T) {
	cfg := Config{B: 4, L: 8}
	c := buildCluster(t, 40, cfg, 3)
	all := c.net.Nodes()
	for nid, node := range c.nodes {
		lo, hi := node.LeafSides()
		wantHi := ringSuccessors(all, nid, cfg.L/2)
		wantLo := ringPredecessors(all, nid, cfg.L/2)
		if !sameSet(hi, wantHi) {
			t.Fatalf("node %s leafHi = %v; want %v", nid.Short(), short(hi), short(wantHi))
		}
		if !sameSet(lo, wantLo) {
			t.Fatalf("node %s leafLo = %v; want %v", nid.Short(), short(lo), short(wantLo))
		}
	}
}

func ringSuccessors(sorted []id.Node, from id.Node, k int) []id.Node {
	idx := indexOf(sorted, from)
	var out []id.Node
	for i := 1; i <= k && i < len(sorted); i++ {
		out = append(out, sorted[(idx+i)%len(sorted)])
	}
	return out
}

func ringPredecessors(sorted []id.Node, from id.Node, k int) []id.Node {
	idx := indexOf(sorted, from)
	var out []id.Node
	for i := 1; i <= k && i < len(sorted); i++ {
		out = append(out, sorted[(idx-i+len(sorted))%len(sorted)])
	}
	return out
}

func indexOf(sorted []id.Node, x id.Node) int {
	for i, n := range sorted {
		if n == x {
			return i
		}
	}
	return -1
}

func sameSet(a, b []id.Node) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[id.Node]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func short(ids []id.Node) []string {
	out := make([]string, len(ids))
	for i, n := range ids {
		out[i] = n.Short()
	}
	sort.Strings(out)
	return out
}

func TestReplicaSetMatchesBruteForce(t *testing.T) {
	c := buildCluster(t, 50, Config{B: 4, L: 16}, 4)
	all := c.net.Nodes()
	for i := 0; i < 100; i++ {
		key := randKey(c.rng)
		// Brute-force k closest.
		sorted := append([]id.Node(nil), all...)
		sort.Slice(sorted, func(a, b int) bool { return key.Closer(sorted[a], sorted[b]) })
		want := sorted[:5]
		// Ask the globally closest node (a member of the replica set).
		got := c.nodes[want[0]].ReplicaSet(key, 5)
		if !sameSet(got, want) {
			t.Fatalf("replica set for %s = %v; want %v", key.Short(), short(got), short(want))
		}
	}
}

func TestNodeFailureRepair(t *testing.T) {
	cfg := Config{B: 4, L: 8}
	c := buildCluster(t, 40, cfg, 5)

	// Fail 6 random nodes (fewer than l/2 adjacent, with high probability).
	alive := c.net.AliveNodes()
	c.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, nid := range alive[:6] {
		c.net.Fail(nid)
	}

	// Two maintenance rounds, as the keep-alive timers would do.
	for round := 0; round < 2; round++ {
		for _, nid := range c.net.AliveNodes() {
			c.nodes[nid].CheckLeafSet()
		}
	}

	// Leaf sets must now match ground truth over live nodes.
	liveSorted := c.net.AliveNodes()
	for _, nid := range liveSorted {
		lo, hi := c.nodes[nid].LeafSides()
		wantHi := ringSuccessors(liveSorted, nid, cfg.L/2)
		wantLo := ringPredecessors(liveSorted, nid, cfg.L/2)
		if !sameSet(hi, wantHi) || !sameSet(lo, wantLo) {
			t.Fatalf("node %s leaf sets not repaired: hi=%v want %v / lo=%v want %v",
				nid.Short(), short(hi), short(wantHi), short(lo), short(wantLo))
		}
	}

	// Routing still reaches the numerically closest live node.
	for i := 0; i < 200; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, _, path, err := src.RouteTraced(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := path[len(path)-1], c.globalClosest(key); got != want {
			t.Fatalf("after failures, route ended at %s; want %s", got.Short(), want.Short())
		}
	}
}

func TestRouteAroundFreshFailure(t *testing.T) {
	// Routing must succeed even before any maintenance round, by
	// discovering dead next-hops and retrying.
	c := buildCluster(t, 60, Config{B: 4, L: 16}, 6)
	alive := c.net.AliveNodes()
	c.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, nid := range alive[:8] {
		c.net.Fail(nid)
	}
	for i := 0; i < 100; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, _, path, err := src.RouteTraced(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := path[len(path)-1], c.globalClosest(key); got != want {
			t.Fatalf("route ended at %s; want %s", got.Short(), want.Short())
		}
	}
}

func TestRejoinAfterRecovery(t *testing.T) {
	cfg := Config{B: 4, L: 8}
	c := buildCluster(t, 30, cfg, 7)
	victim := c.order[10]
	lastLeaf := c.nodes[victim].LeafSet()

	c.net.Fail(victim)
	for _, nid := range c.net.AliveNodes() {
		c.nodes[nid].CheckLeafSet()
	}

	c.net.Recover(victim)
	if err := c.nodes[victim].Rejoin(lastLeaf); err != nil {
		t.Fatal(err)
	}
	for _, nid := range c.net.AliveNodes() {
		c.nodes[nid].CheckLeafSet()
	}

	liveSorted := c.net.AliveNodes()
	lo, hi := c.nodes[victim].LeafSides()
	if !sameSet(hi, ringSuccessors(liveSorted, victim, cfg.L/2)) ||
		!sameSet(lo, ringPredecessors(liveSorted, victim, cfg.L/2)) {
		t.Fatal("recovered node's leaf set not rebuilt")
	}
	// And the ring routes through it again.
	want := c.globalClosest(victim)
	if want != victim {
		t.Fatal("sanity: recovered node should be closest to its own id")
	}
	_, _, path, err := c.randomAliveNode().RouteTraced(victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if path[len(path)-1] != victim {
		t.Fatal("routes do not reach the recovered node")
	}
}

func TestRejoinAllDeadFails(t *testing.T) {
	c := buildCluster(t, 10, Config{B: 4, L: 4}, 8)
	victim := c.order[5]
	lastLeaf := c.nodes[victim].LeafSet()
	for _, m := range lastLeaf {
		c.net.Fail(m)
	}
	c.net.Fail(victim)
	c.net.Recover(victim)
	if err := c.nodes[victim].Rejoin(lastLeaf); err == nil {
		t.Fatal("rejoin with all known nodes dead must fail")
	}
}

func TestRandomizedRoutingStillCorrect(t *testing.T) {
	c := buildCluster(t, 60, Config{B: 4, L: 16, RandomizeP: 0.5}, 9)
	for i := 0; i < 200; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, _, path, err := src.RouteTraced(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := path[len(path)-1], c.globalClosest(key); got != want {
			t.Fatalf("randomized route ended at %s; want %s", got.Short(), want.Short())
		}
	}
}

func TestRandomizedRoutingDiversifiesPaths(t *testing.T) {
	c := buildCluster(t, 200, Config{B: 4, L: 16, RandomizeP: 0.5}, 10)
	// Routes are short (log_16 N), so randomization only has room to act
	// on some (src, key) pairs; require that at least one pair shows
	// multiple distinct paths.
	diversified := false
	for trial := 0; trial < 10 && !diversified; trial++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		paths := make(map[string]bool)
		for i := 0; i < 30; i++ {
			_, _, path, err := src.RouteTraced(key, nil)
			if err != nil {
				t.Fatal(err)
			}
			s := ""
			for _, p := range path {
				s += p.Short()
			}
			paths[s] = true
		}
		if len(paths) >= 2 {
			diversified = true
		}
	}
	if !diversified {
		t.Fatal("randomized routing never explored multiple paths")
	}
}

func TestIDCollisionRejected(t *testing.T) {
	c := buildCluster(t, 5, Config{B: 4, L: 4}, 11)
	dup := New(c.order[2], c.net, Config{B: 4, L: 4}, nil, 99)
	// Register under a throwaway id so the duplicate can receive replies;
	// its Join must still detect the collision via the terminal node.
	if err := dup.Join(c.order[0]); err != ErrIDCollision {
		t.Fatalf("err = %v; want ErrIDCollision", err)
	}
}

func TestJoinSelfBootstrapRejected(t *testing.T) {
	n := New(id.NodeFromUint64(1), netsim.New(), Config{B: 4, L: 4}, nil, 1)
	if err := n.Join(n.ID()); err == nil {
		t.Fatal("joining via self must fail")
	}
}

func TestLeafSetChangeCallback(t *testing.T) {
	net := netsim.New()
	cfg := Config{B: 4, L: 4}
	rng := rand.New(rand.NewSource(12))
	a := New(randKey(rng), net, cfg, nil, 1)
	net.Register(a.ID(), topology.Point{}, a)
	a.Bootstrap()

	fired := 0
	a.OnLeafSetChange = func() { fired++ }

	b := New(randKey(rng), net, cfg, nil, 2)
	net.Register(b.ID(), topology.Point{X: 1}, b)
	if err := b.Join(a.ID()); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("a's leaf-set callback did not fire when b joined")
	}
}

func TestDeliverUnknownMessage(t *testing.T) {
	n := New(id.NodeFromUint64(1), netsim.New(), Config{B: 4, L: 4}, nil, 1)
	if _, err := n.Deliver(id.NodeFromUint64(2), "bogus"); err == nil {
		t.Fatal("unknown message must error")
	}
}

func TestPingPong(t *testing.T) {
	n := New(id.NodeFromUint64(1), netsim.New(), Config{B: 4, L: 4}, nil, 1)
	// Before (re)joining, the node is off the overlay even though its
	// endpoint answers: pings are refused so a crashed predecessor's
	// stale entries get purged rather than kept alive.
	if _, err := n.Deliver(id.NodeFromUint64(2), &Ping{}); !errors.Is(err, ErrNotJoined) {
		t.Fatalf("ping before join: err = %v; want ErrNotJoined", err)
	}
	n.Bootstrap()
	res, err := n.Deliver(id.NodeFromUint64(2), &Ping{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.(*Pong); !ok {
		t.Fatalf("reply = %T; want *Pong", res)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd leaf set size must panic")
		}
	}()
	New(id.NodeFromUint64(1), netsim.New(), Config{B: 4, L: 3}, nil, 1)
}

func TestTableRowsPopulated(t *testing.T) {
	c := buildCluster(t, 100, Config{B: 4, L: 16}, 13)
	// With 100 nodes and b=4, on average each node should have a healthy
	// row 0 (entries for most of the 15 other digit values).
	totalRow0 := 0
	for _, n := range c.nodes {
		row := n.TableRow(0)
		cnt := 0
		for _, e := range row {
			if !e.IsZero() {
				cnt++
			}
		}
		totalRow0 += cnt
	}
	avg := float64(totalRow0) / float64(len(c.nodes))
	if avg < 8 {
		t.Fatalf("average row-0 population %.1f too sparse", avg)
	}
}

func TestLocalityOfRoutes(t *testing.T) {
	// Pastry's locality: because each hop goes to a proximally close node
	// with a longer prefix, total route distance should be within a small
	// factor of the direct source-destination distance on average. The
	// paper reports ~1.5x for the real implementation; the emulation is
	// cruder, so assert a loose bound and log the measured stretch.
	c := buildCluster(t, 150, Config{B: 4, L: 16}, 14)
	var totDirect, totRoute float64
	for i := 0; i < 200; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, _, path, err := src.RouteTraced(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		dst := path[len(path)-1]
		if dst == src.ID() {
			continue
		}
		direct, _ := c.net.Proximity(src.ID(), dst)
		route := 0.0
		for j := 1; j < len(path); j++ {
			d, _ := c.net.Proximity(path[j-1], path[j])
			route += d
		}
		totDirect += direct
		totRoute += route
	}
	stretch := totRoute / totDirect
	t.Logf("route stretch = %.2f", stretch)
	if stretch > 8 {
		t.Fatalf("route stretch %.2f unreasonably high; locality heuristic broken", stretch)
	}
}

func BenchmarkRoute(b *testing.B) {
	c := buildCluster(b, 200, Config{B: 4, L: 16}, 15)
	keys := make([]id.Node, 512)
	for i := range keys {
		keys[i] = randKey(c.rng)
	}
	src := c.randomAliveNode()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := src.Route(keys[i%len(keys)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	// One base cluster; every iteration joins one more node, so the
	// benchmark measures join cost on a growing (50+N)-node network.
	cfg := Config{B: 4, L: 16}
	c := buildCluster(b, 50, cfg, 99)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var nid id.Node
		c.rng.Read(nid[:])
		node := New(nid, c.net, cfg, nil, int64(i))
		c.net.Register(nid, topology.DefaultPlane.RandomPoint(c.rng), node)
		b.StartTimer()
		if err := node.Join(c.order[0]); err != nil {
			b.Fatal(err)
		}
	}
}
