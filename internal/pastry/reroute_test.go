package pastry

import (
	"context"
	"errors"
	"testing"

	"past/internal/id"
	"past/internal/netsim"
)

// TestRouteCompletesViaAlternate kills the exact next hop a route is
// about to take and asserts the route still completes — delivered at
// the numerically closest live node — with the reroute accounted and
// the dead hop absent from the traversed path.
func TestRouteCompletesViaAlternate(t *testing.T) {
	c := buildCluster(t, 60, Config{B: 4, L: 16}, 91)
	rerouted := 0
	for i := 0; i < 200 && rerouted < 5; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		hop := src.FirstHop(key)
		if hop.IsZero() {
			continue // src would consume the message itself
		}
		c.net.Fail(hop)
		before := src.Reroutes()
		_, _, path, err := src.RouteTraced(key, nil)
		if err != nil {
			t.Fatalf("route with dead first hop %s: %v", hop.Short(), err)
		}
		if got, want := path[len(path)-1], c.globalClosest(key); got != want {
			t.Fatalf("rerouted request ended at %s; want %s", got.Short(), want.Short())
		}
		for _, p := range path {
			if p == hop {
				t.Fatalf("path traversed the dead hop %s", hop.Short())
			}
		}
		if src.Reroutes() <= before {
			t.Fatal("reroute not accounted on the source node")
		}
		c.net.Recover(hop)
		rerouted++
	}
	if rerouted < 5 {
		t.Fatalf("only %d reroutes exercised at this scale", rerouted)
	}
}

// TestFailFastDisablesReroute pins the baseline semantics the soak
// comparison relies on: with FailFast set, a dead next hop aborts the
// route with a retryable error instead of trying alternates.
func TestFailFastDisablesReroute(t *testing.T) {
	c := buildCluster(t, 60, Config{B: 4, L: 16, FailFast: true}, 92)
	failed := 0
	for i := 0; i < 200 && failed < 5; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		hop := src.FirstHop(key)
		if hop.IsZero() {
			continue
		}
		c.net.Fail(hop)
		before := src.Reroutes()
		_, _, err := src.Route(key, nil)
		if err == nil {
			t.Fatal("fail-fast route through a dead hop must error")
		}
		if !netsim.Retryable(err) {
			t.Fatalf("fail-fast route error must stay retryable, got %v", err)
		}
		if src.Reroutes() != before {
			t.Fatal("fail-fast route must not account reroutes")
		}
		c.net.Recover(hop)
		failed++
	}
	if failed < 5 {
		t.Fatalf("only %d fail-fast routes exercised at this scale", failed)
	}
}

// TestRouteAvoidingExhaustionIsNoRoute checks the hedged-request
// primitive's fail-fast contract: when every admissible first hop is
// excluded, RouteAvoiding reports ErrNoRoute rather than replaying the
// primary's path.
func TestRouteAvoidingExhaustionIsNoRoute(t *testing.T) {
	c := buildCluster(t, 8, Config{B: 4, L: 16}, 93)
	src := c.nodes[c.order[0]]
	key := randKey(c.rng)
	// Exclude every other node: no admissible first hop can remain.
	avoid := make([]id.Node, 0, len(c.order)-1)
	for _, nid := range c.order[1:] {
		avoid = append(avoid, nid)
	}
	_, _, err := src.RouteAvoiding(context.Background(), key, nil, avoid...)
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want ErrNoRoute with every first hop excluded, got %v", err)
	}
}
