package pastry

import (
	"context"
	"testing"

	"past/internal/obs"
)

// TestTracedRouteHopRecords checks the per-hop trace of clean routes:
// records chain from the origin to the consuming node, end in exactly
// one local record, and count the same hops the route reply reports.
func TestTracedRouteHopRecords(t *testing.T) {
	c := buildCluster(t, 60, Config{B: 4, L: 16}, 94)
	multi := 0
	for i := 0; i < 50; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		_, hops, trace, err := src.RouteTracedContext(context.Background(), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) == 0 {
			t.Fatal("traced route returned no hop records")
		}
		last := trace[len(trace)-1]
		if last.Choice != obs.ChoiceLocal || last.From != last.To {
			t.Fatalf("trace must end in a local record, got %+v", last)
		}
		for j, h := range trace[:len(trace)-1] {
			if h.Choice == obs.ChoiceLocal {
				t.Fatalf("interior record %d is local: %+v", j, h)
			}
			if h.To != trace[j+1].From {
				t.Fatalf("trace broken at %d: hop to %s but next record from %s",
					j, h.To.Short(), trace[j+1].From.Short())
			}
		}
		if trace[0].From != src.ID() {
			t.Fatalf("trace starts at %s, want origin %s", trace[0].From.Short(), src.ID().Short())
		}
		tr := obs.Trace{Hops: trace}
		if tr.HopCount() != hops {
			t.Fatalf("trace hop count %d != route hops %d", tr.HopCount(), hops)
		}
		if hops > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-hop route traced at this scale; test proves nothing")
	}
}

// TestTracedRerouteOrdering kills the route's first hop and checks the
// failure's trace shape: the dead hop's record stays, marked failed,
// immediately followed by the alternate labeled as a reroute, and the
// failed record never counts toward the hop count.
func TestTracedRerouteOrdering(t *testing.T) {
	c := buildCluster(t, 60, Config{B: 4, L: 16}, 95)
	rerouted := 0
	for i := 0; i < 200 && rerouted < 5; i++ {
		key := randKey(c.rng)
		src := c.randomAliveNode()
		hop := src.FirstHop(key)
		if hop.IsZero() {
			continue
		}
		c.net.Fail(hop)
		_, hops, trace, err := src.RouteTracedContext(context.Background(), key, nil)
		if err != nil {
			t.Fatalf("route with dead first hop %s: %v", hop.Short(), err)
		}
		c.net.Recover(hop)

		failedAt := -1
		for j, h := range trace {
			if h.Failed {
				if h.To != hop {
					t.Fatalf("failed record points at %s, want dead hop %s", h.To.Short(), hop.Short())
				}
				failedAt = j
				break
			}
		}
		if failedAt == -1 {
			t.Fatal("no failed hop record in a rerouted trace")
		}
		next := trace[failedAt+1]
		if next.Choice != obs.ChoiceReroute {
			t.Fatalf("record after the failure has choice %q, want %q", next.Choice, obs.ChoiceReroute)
		}
		if next.From != trace[failedAt].From {
			t.Fatal("reroute must be retried from the node that saw the failure")
		}
		tr := obs.Trace{Hops: trace}
		if tr.HopCount() != hops {
			t.Fatalf("trace hop count %d != route hops %d", tr.HopCount(), hops)
		}
		if tr.Reroutes() < 1 {
			t.Fatal("trace reroute count must include the failed hop")
		}
		rerouted++
	}
	if rerouted < 5 {
		t.Fatalf("only %d reroutes exercised at this scale", rerouted)
	}
}
