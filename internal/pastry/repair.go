package pastry

import (
	"context"
	"past/internal/id"
)

// Failure handling (section 2.1): neighboring nodes in the nodeId space
// exchange periodic keep-alive messages; a node unresponsive for a
// period T is presumed failed, all members of its leaf set are notified
// and update their leaf sets to restore the invariant. In the emulation
// the keep-alive period is modeled by explicit maintenance rounds: the
// experiment driver calls CheckLeafSet on every node after failure
// events, which is exactly what the timer would have done.

// repairTableEntry implements the routing-table repair of section 2.1:
// when the node that occupied a routing-table slot fails, peers in the
// same table row are asked for their corresponding row — any entry of
// theirs shares the same digit prefix and is a candidate replacement.
// Leaf-set members serve as a fallback source.
func (n *Node) repairTableEntry(dead id.Node) {
	row := n.self.SharedPrefix(dead, n.cfg.B)
	if row >= len(n.rows) {
		return
	}
	col := dead.Digit(row, n.cfg.B)

	n.mu.Lock()
	var peers []id.Node
	for _, e := range n.rows[row] {
		if !e.IsZero() && e != dead {
			peers = append(peers, e)
		}
	}
	peers = append(peers, n.leafLo...)
	peers = append(peers, n.leafHi...)
	n.mu.Unlock()

	asked := 0
	changed := false
	for _, p := range peers {
		if asked >= 3 {
			break
		}
		res, err := n.net.Invoke(context.Background(), n.self, p, &RowRequest{Row: row})
		if err != nil {
			continue
		}
		asked++
		for _, e := range res.(*RowReply).Entries {
			if e == dead || e == n.self || !n.net.Alive(e) {
				continue
			}
			if n.consider(e) {
				changed = true
			}
		}
		n.mu.Lock()
		filled := !n.rows[row][col].IsZero()
		n.mu.Unlock()
		if filled {
			break
		}
	}
	if changed {
		n.notifyLeafChange()
	}
}

// CheckLeafSet probes every leaf-set member, removes the dead ones, and
// repairs the leaf set by pulling state from the farthest live members
// on each side (their leaf sets overlap ours by exactly half, so they
// know the replacement candidates). It returns the ids of the members
// found dead. The leaf-set callback fires at most once.
func (n *Node) CheckLeafSet() (dead []id.Node) {
	changed := false
	for _, m := range n.LeafSet() {
		if _, err := n.net.Invoke(context.Background(), n.self, m, &Ping{}); err != nil {
			dead = append(dead, m)
			if n.forget(m) {
				changed = true
			}
		}
	}
	// Exchange state even when every member answered: the keep-alives of
	// the real protocol carry leaf-set contents, which is what lets a
	// node re-discover a live neighbor it wrongly dropped (e.g. after the
	// neighbor's recovery announcement was lost in transit). Probing
	// alone can never repair that hole.
	if n.repairLeafSet() {
		changed = true
	}
	if changed {
		n.leafRepairs.Add(1)
		n.notifyLeafChange()
	}
	return dead
}

// repairLeafSet merges the leaf sets of the farthest live member on each
// side into our own and announces our presence to every current member
// (so the repair is symmetric). Reports whether the leaf set changed.
func (n *Node) repairLeafSet() bool {
	changed := false
	lo, hi := n.LeafSides()
	for _, side := range [][]id.Node{lo, hi} {
		for i := len(side) - 1; i >= 0; i-- { // farthest live member first
			res, err := n.net.Invoke(context.Background(), n.self, side[i], &StateRequest{})
			if err != nil {
				if n.forget(side[i]) {
					changed = true
				}
				continue
			}
			st := res.(*StateReply)
			for _, c := range st.Leaf {
				if alive := n.net.Alive(c); alive {
					if n.consider(c) {
						changed = true
					}
				}
			}
			break
		}
	}
	// Symmetric repair: make sure every member has us.
	for _, m := range n.LeafSet() {
		if _, err := n.net.Invoke(context.Background(), n.self, m, &Announce{NewNode: n.self}); err != nil {
			if n.forget(m) {
				changed = true
			}
		}
	}
	return changed
}
