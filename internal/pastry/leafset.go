package pastry

import (
	"sort"

	"past/internal/id"
)

// Leaf-set maintenance. The leaf set holds the l/2 nodes with numerically
// closest larger nodeIds (the clockwise side, leafHi) and the l/2 nodes
// with numerically closest smaller nodeIds (the counter-clockwise side,
// leafLo), relative to the present node on the circular namespace. In a
// network with fewer than l+1 nodes a node may legitimately appear on
// both sides.

// cwLess orders a before b by clockwise distance from base.
func cwLess(base, a, b id.Node) bool {
	da, db := base.CWDist(a), base.CWDist(b)
	if c := da.Cmp(db); c != 0 {
		return c < 0
	}
	return a.Less(b)
}

// leafInsertLocked adds x to the leaf set if it belongs there, returning
// whether the set changed. Caller holds n.mu.
func (n *Node) leafInsertLocked(x id.Node) bool {
	if x == n.self || x.IsZero() {
		return false
	}
	changed := false
	if insertSide(&n.leafHi, x, n.cfg.L/2, func(a, b id.Node) bool {
		return cwLess(n.self, a, b) // successors: small CWDist(self, x) first
	}) {
		changed = true
	}
	if insertSide(&n.leafLo, x, n.cfg.L/2, func(a, b id.Node) bool {
		// predecessors: small CWDist(x, self) first
		da, db := a.CWDist(n.self), b.CWDist(n.self)
		if c := da.Cmp(db); c != 0 {
			return c < 0
		}
		return a.Less(b)
	}) {
		changed = true
	}
	return changed
}

// insertSide inserts x into a side kept sorted by less, capped at max.
func insertSide(side *[]id.Node, x id.Node, max int, less func(a, b id.Node) bool) bool {
	s := *side
	for _, m := range s {
		if m == x {
			return false
		}
	}
	s = append(s, x)
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
	if len(s) > max {
		// x may itself be the trimmed entry; report change only if kept.
		trimmed := s[max:]
		s = s[:max]
		*side = s
		for _, t := range trimmed {
			if t == x {
				return false
			}
		}
		return true
	}
	*side = s
	return true
}

// leafRemoveLocked removes x from both sides; reports whether anything
// was removed. Caller holds n.mu.
func (n *Node) leafRemoveLocked(x id.Node) bool {
	rm := func(side *[]id.Node) bool {
		s := *side
		for i, m := range s {
			if m == x {
				*side = append(s[:i], s[i+1:]...)
				return true
			}
		}
		return false
	}
	a := rm(&n.leafLo)
	b := rm(&n.leafHi)
	return a || b
}

// LeafSet returns the members of the leaf set, deduplicated, ordered by
// ring distance from this node (closest first).
func (n *Node) LeafSet() []id.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leafSetLocked()
}

func (n *Node) leafSetLocked() []id.Node {
	seen := make(map[id.Node]bool, len(n.leafLo)+len(n.leafHi))
	out := make([]id.Node, 0, len(n.leafLo)+len(n.leafHi))
	for _, s := range [][]id.Node{n.leafLo, n.leafHi} {
		for _, m := range s {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return n.self.Closer(out[i], out[j]) })
	return out
}

// LeafSides returns copies of the smaller-side and larger-side leaf
// lists, each ordered closest-first. Used by the state printer and by
// PAST's "two most distant members" overflow procedure.
func (n *Node) LeafSides() (lo, hi []id.Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]id.Node(nil), n.leafLo...), append([]id.Node(nil), n.leafHi...)
}

// inLeafRangeLocked reports whether key lies within the span of the leaf
// set (from the farthest counter-clockwise member, through this node, to
// the farthest clockwise member). When a side is not full the node knows
// the whole ring on that side, so the answer is true. Caller holds n.mu.
func (n *Node) inLeafRangeLocked(key id.Node) bool {
	loFull := len(n.leafLo) >= n.cfg.L/2
	hiFull := len(n.leafHi) >= n.cfg.L/2
	if !loFull || !hiFull {
		return true
	}
	lo := n.leafLo[len(n.leafLo)-1]
	hi := n.leafHi[len(n.leafHi)-1]
	// key in [lo, hi] going clockwise.
	return lo.CWDist(key).Cmp(lo.CWDist(hi)) <= 0
}

// closestLeafAvoidingLocked returns the member of leaf set + self
// numerically closest to key, skipping excluded members (hops already
// found dead on the current route). Self is never excluded: with every
// closer member dead, this node takes over as the closest live one.
// Caller holds n.mu.
func (n *Node) closestLeafAvoidingLocked(key id.Node, excluded func(id.Node) bool) id.Node {
	best := n.self
	for _, s := range [][]id.Node{n.leafLo, n.leafHi} {
		for _, m := range s {
			if excluded(m) {
				continue
			}
			if key.Closer(m, best) {
				best = m
			}
		}
	}
	return best
}

// InLeafRange reports whether key lies within the span of this node's
// leaf set.
func (n *Node) InLeafRange(key id.Node) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inLeafRangeLocked(key)
}

// IsAmongKClosest reports whether this node is, to its knowledge, among
// the k live nodes with nodeIds numerically closest to key. The test is
// sound when k <= l/2+1: if the key is inside the leaf-set span and
// fewer than k leaf members are closer to it than this node, then every
// node closer to the key is inside the leaf set, so the local answer
// matches the global one. PAST's insert and reclaim operations are
// consumed by the first such node a route encounters.
func (n *Node) IsAmongKClosest(key id.Node, k int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.inLeafRangeLocked(key) {
		return false
	}
	closer := 0
	seen := make(map[id.Node]bool, len(n.leafLo)+len(n.leafHi))
	for _, s := range [][]id.Node{n.leafLo, n.leafHi} {
		for _, m := range s {
			if !seen[m] && key.Closer(m, n.self) {
				seen[m] = true
				closer++
			}
		}
	}
	return closer < k
}

// ReplicaSet returns the k nodes (from this node's leaf set plus itself)
// with nodeIds numerically closest to key. This is the set PAST stores
// the k replicas of a file on; the paper requires k <= l/2+1 so that any
// of the k closest nodes can compute the full set from its own leaf set.
func (n *Node) ReplicaSet(key id.Node, k int) []id.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	cands := append(n.leafSetLocked(), n.self)
	sort.Slice(cands, func(i, j int) bool { return key.Closer(cands[i], cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// FragmentTargets returns up to want distinct nodes for erasure-coded
// fragment placement: the leaf set plus this node, ordered numerically
// closest to key. Unlike ReplicaSet it is not bounded by k — an EC
// object spreads m+n fragments across as much of the leaf set as the
// coding needs, so a single node loss costs at most one fragment.
func (n *Node) FragmentTargets(key id.Node, want int) []id.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	cands := append(n.leafSetLocked(), n.self)
	sort.Slice(cands, func(i, j int) bool { return key.Closer(cands[i], cands[j]) })
	if len(cands) > want {
		cands = cands[:want]
	}
	return cands
}
