package pastry

import (
	"errors"
	"fmt"

	"past/internal/id"
	"past/internal/netsim"
)

// ErrHopLimit reports a route that exceeded the configured hop bound,
// which indicates corrupted routing state rather than a transient fault.
var ErrHopLimit = errors.New("pastry: hop limit exceeded")

// Route routes payload toward key and returns the consuming node's reply
// and the number of overlay hops taken (0 if this node consumed the
// message itself).
func (n *Node) Route(key id.Node, payload any) (reply any, hops int, err error) {
	req := &RouteRequest{Key: key, Payload: payload}
	rr, err := n.routeStep(req)
	if err != nil {
		return nil, 0, err
	}
	return rr.Payload, rr.Hops, nil
}

// RouteTraced is Route with per-hop path collection, for experiments and
// diagnostics.
func (n *Node) RouteTraced(key id.Node, payload any) (reply any, hops int, path []id.Node, err error) {
	req := &RouteRequest{Key: key, Payload: payload, CollectPath: true}
	rr, err := n.routeStep(req)
	if err != nil {
		return nil, 0, nil, err
	}
	return rr.Payload, rr.Hops, rr.Path, nil
}

// routeStep processes a routed message at this node: consume it here
// (application Forward, application Deliver, or join handling) or
// forward it to the next hop. It is called both for messages originated
// by this node and for messages received from the network.
func (n *Node) routeStep(req *RouteRequest) (*RouteReply, error) {
	if req.Hops > n.cfg.HopLimit {
		return nil, fmt.Errorf("%w: key %s at node %s after %d hops",
			ErrHopLimit, req.Key.Short(), n.self.Short(), req.Hops)
	}
	if req.CollectPath {
		req.Path = append(req.Path, n.self)
	}
	join, isJoin := req.Payload.(joinPayload)
	if isJoin {
		n.collectJoinRows(req, join.Joiner)
	} else {
		handled, reply, err := n.app.Forward(req.Key, req.Payload)
		if err != nil {
			return nil, err
		}
		if handled {
			return &RouteReply{Payload: reply, Hops: req.Hops, Path: req.Path}, nil
		}
	}

	for {
		next := n.nextHop(req.Key)
		if next.IsZero() {
			// This node is the numerically closest live node it knows of:
			// consume the message.
			if isJoin {
				st := n.stateReply()
				return &RouteReply{
					Hops: req.Hops, Path: req.Path,
					Terminal: n.self, Leaf: st.Leaf, Rows: req.Rows,
				}, nil
			}
			reply, err := n.app.Deliver(req.Key, req.Payload)
			if err != nil {
				return nil, err
			}
			return &RouteReply{Payload: reply, Hops: req.Hops, Path: req.Path}, nil
		}

		req.Hops++
		res, err := n.net.Invoke(n.self, next, req)
		if errors.Is(err, netsim.ErrNodeDown) || errors.Is(err, netsim.ErrUnknownNode) {
			// The presumed-failed analogue of a keep-alive timeout: drop
			// the dead entry, repair the vacated table slot from peers,
			// and retry with the next best candidate.
			req.Hops--
			if n.forget(next) {
				n.notifyLeafChange()
			}
			n.repairTableEntry(next)
			continue
		}
		if err != nil {
			return nil, err
		}
		rr, ok := res.(*RouteReply)
		if !ok {
			return nil, fmt.Errorf("pastry: unexpected route reply %T from %s", res, next.Short())
		}
		if !isJoin {
			n.app.Backward(req.Key, req.Payload, rr.Payload)
		}
		return rr, nil
	}
}

// collectJoinRows contributes this node's routing-table rows (up to and
// including the row indexed by the shared-prefix length with the joiner)
// plus itself to the join message's candidate set.
func (n *Node) collectJoinRows(req *RouteRequest, joiner id.Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.self.SharedPrefix(joiner, n.cfg.B)
	if p >= len(n.rows) {
		p = len(n.rows) - 1
	}
	for r := 0; r <= p; r++ {
		for _, e := range n.rows[r] {
			if !e.IsZero() {
				req.Rows = append(req.Rows, e)
			}
		}
	}
	req.Rows = append(req.Rows, n.self)
}

// nextHop selects the node to forward a message for key to, or the zero
// id if this node should consume it. This is the routing procedure of
// section 2.1: leaf set if the key is in range, otherwise the routing
// table entry with a longer prefix match, otherwise any known node that
// is closer to the key without shortening the prefix match (the "rare
// case"). With RandomizeP > 0 the choice is occasionally made among all
// valid candidates to defeat repeat-interception.
func (n *Node) nextHop(key id.Node) id.Node {
	n.mu.Lock()
	defer n.mu.Unlock()

	if key == n.self {
		return id.Node{}
	}
	if n.inLeafRangeLocked(key) {
		c := n.closestLeafLocked(key)
		if c == n.self {
			return id.Node{}
		}
		return c
	}

	best := n.tableLookupLocked(key)
	if n.cfg.RandomizeP > 0 && n.rng.Float64() < n.cfg.RandomizeP {
		if c := n.randomValidCandidateLocked(key); !c.IsZero() {
			return c
		}
	}
	if !best.IsZero() {
		return best
	}

	// Rare case: no table entry. Use any known node that shares at least
	// as long a prefix with the key and is numerically closer to it.
	myPrefix := n.self.SharedPrefix(key, n.cfg.B)
	myDist := n.self.RingDist(key)
	var fallback id.Node
	bestPrefix := myPrefix
	bestDist := myDist
	for _, c := range n.candidatesLocked() {
		p := c.SharedPrefix(key, n.cfg.B)
		if p < myPrefix {
			continue
		}
		d := c.RingDist(key)
		if d.Cmp(myDist) >= 0 {
			continue
		}
		// Prefer longer prefix, then smaller distance.
		if fallback.IsZero() || p > bestPrefix || (p == bestPrefix && d.Less(bestDist)) {
			fallback, bestPrefix, bestDist = c, p, d
		}
	}
	return fallback
}

// candidatesLocked returns the union of leaf set, routing table, and
// neighborhood set. Caller holds n.mu.
func (n *Node) candidatesLocked() []id.Node {
	out := n.tableEntriesLocked()
	out = append(out, n.leafLo...)
	out = append(out, n.leafHi...)
	out = append(out, n.nbrs...)
	return out
}

// randomValidCandidateLocked picks a uniformly random candidate that
// preserves routing progress: at least as long a prefix match with the
// key, strictly smaller numerical distance. Caller holds n.mu.
func (n *Node) randomValidCandidateLocked(key id.Node) id.Node {
	myPrefix := n.self.SharedPrefix(key, n.cfg.B)
	myDist := n.self.RingDist(key)
	var valid []id.Node
	seen := make(map[id.Node]bool)
	for _, c := range n.candidatesLocked() {
		if seen[c] {
			continue
		}
		seen[c] = true
		if c.SharedPrefix(key, n.cfg.B) >= myPrefix && c.RingDist(key).Less(myDist) {
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 {
		return id.Node{}
	}
	return valid[n.rng.Intn(len(valid))]
}
