package pastry

import (
	"context"
	"errors"
	"fmt"
	"time"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/obs"
)

// ErrHopLimit reports a route that exceeded the configured hop bound,
// which indicates corrupted routing state rather than a transient fault.
var ErrHopLimit = errors.New("pastry: hop limit exceeded")

// ErrNoRoute reports that every admissible next hop was excluded or
// found dead: the route ran out of alternates. It is retryable in the
// large (routing state repairs between attempts) but fatal for the
// attempt that observed it.
var ErrNoRoute = errors.New("pastry: no route")

// Route routes payload toward key and returns the consuming node's reply
// and the number of overlay hops taken (0 if this node consumed the
// message itself). It carries no deadline; use RouteContext to bound the
// request.
func (n *Node) Route(key id.Node, payload any) (reply any, hops int, err error) {
	return n.RouteContext(context.Background(), key, payload)
}

// RouteContext is Route bounded by a context: the deadline covers the
// whole route (every hop and reroute), and cancellation aborts it
// between hops. Expiry surfaces as netsim.ErrTimeout.
func (n *Node) RouteContext(ctx context.Context, key id.Node, payload any) (reply any, hops int, err error) {
	req := &RouteRequest{Key: key, Payload: payload}
	rr, err := n.routeStep(ctx, req)
	if err != nil {
		return nil, 0, err
	}
	return rr.Payload, rr.Hops, nil
}

// RouteTraced is Route with per-hop path collection, for experiments and
// diagnostics.
func (n *Node) RouteTraced(key id.Node, payload any) (reply any, hops int, path []id.Node, err error) {
	req := &RouteRequest{Key: key, Payload: payload, CollectPath: true}
	rr, err := n.routeStep(context.Background(), req)
	if err != nil {
		return nil, 0, nil, err
	}
	return rr.Payload, rr.Hops, rr.Path, nil
}

// RouteTracedContext is RouteContext with per-hop decision recording:
// every node on the route appends an obs.HopRecord describing which
// routing rule chose the hop, the prefix depth, proximity, and RPC
// latency; failed hop attempts stay in the record with Failed set. On
// error the records accumulated so far are still returned. Recording is
// out-of-band: it draws no randomness and alters no routing decision.
func (n *Node) RouteTracedContext(ctx context.Context, key id.Node, payload any) (reply any, hops int, trace []obs.HopRecord, err error) {
	req := &RouteRequest{Key: key, Payload: payload, Traced: true}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.TC = tc
	}
	rr, err := n.routeStep(ctx, req)
	if err != nil {
		return nil, 0, req.Trace, err
	}
	return rr.Payload, rr.Hops, rr.Trace, nil
}

// FirstHop returns the node this node would forward a message for key to
// right now (the zero id if it would consume the message itself). Hedged
// requests use it to steer a second attempt around the primary's entry
// point.
func (n *Node) FirstHop(key id.Node) id.Node { return n.nextHop(key) }

// RouteAvoiding routes payload toward key like RouteContext, but never
// uses any of the avoid nodes as the first hop. It is the hedged-request
// primitive: a second attempt that enters the overlay somewhere else, so
// a fault on the primary's path is not simply replayed. If no admissible
// first hop exists it fails fast with ErrNoRoute (duplicating the
// primary's exact path would add load without adding diversity). The
// origin's Forward upcall is skipped — the primary attempt already ran
// it locally.
func (n *Node) RouteAvoiding(ctx context.Context, key id.Node, payload any, avoid ...id.Node) (reply any, hops int, err error) {
	reply, hops, _, err = n.routeAvoiding(ctx, key, payload, false, avoid)
	return reply, hops, err
}

// RouteAvoidingTraced is RouteAvoiding with per-hop decision recording
// (see RouteTracedContext).
func (n *Node) RouteAvoidingTraced(ctx context.Context, key id.Node, payload any, avoid ...id.Node) (reply any, hops int, trace []obs.HopRecord, err error) {
	return n.routeAvoiding(ctx, key, payload, true, avoid)
}

func (n *Node) routeAvoiding(ctx context.Context, key id.Node, payload any, traced bool, avoid []id.Node) (reply any, hops int, trace []obs.HopRecord, err error) {
	tried := make(map[id.Node]bool, len(avoid))
	for _, a := range avoid {
		if !a.IsZero() {
			tried[a] = true
		}
	}
	req := &RouteRequest{Key: key, Payload: payload, Traced: traced}
	if traced {
		if tc, ok := obs.TraceFromContext(ctx); ok {
			req.TC = tc
		}
	}
	for {
		if err := netsim.CtxErr(ctx); err != nil {
			return nil, 0, req.Trace, err
		}
		next, choice := n.nextHopChoose(key, tried)
		if next.IsZero() {
			return nil, 0, req.Trace, fmt.Errorf("%w: key %s: no first hop outside %d avoided at %s",
				ErrNoRoute, key.Short(), len(tried), n.self.Short())
		}
		if len(tried) > 0 {
			// The preferred entry point was excluded — by the hedge's
			// avoid set or by an earlier failure on this route.
			choice = obs.ChoiceReroute
		}
		req.Hops = 1
		var mark int
		var hopStart time.Time
		recorded := traced && req.TC.HasRoom(len(req.Trace))
		if recorded {
			mark = len(req.Trace)
			req.Trace = append(req.Trace, n.hopRecord(key, next, choice))
			hopStart = time.Now()
		}
		res, err := n.invokeHop(ctx, next, req)
		if err != nil && netsim.Retryable(err) && netsim.CtxErr(ctx) == nil && !n.cfg.FailFast {
			if recorded {
				req.Trace = req.Trace[:mark+1]
				req.Trace[mark].Failed = true
				req.Trace[mark].RPCNanos = time.Since(hopStart).Nanoseconds()
			}
			tried[next] = true
			n.noteHopRejection(next, err)
			continue
		}
		if err != nil {
			return nil, 0, req.Trace, err
		}
		rr, ok := res.(*RouteReply)
		if !ok {
			return nil, 0, req.Trace, fmt.Errorf("pastry: unexpected route reply %T from %s", res, next.Short())
		}
		if recorded && mark < len(rr.Trace) {
			rr.Trace[mark].RPCNanos = time.Since(hopStart).Nanoseconds()
		}
		n.noteLoadHint(next, rr.Load)
		n.app.Backward(key, payload, rr.Payload)
		return rr.Payload, rr.Hops, rr.Trace, nil
	}
}

// invokeHop sends one routed message to the next hop, applying the
// per-hop timeout (if configured) on top of the request context. An
// active trace context is restamped onto the context so the transport
// carries it on the wire envelope too — relays run routed messages
// under a fresh context, and the envelope is how the receiving process
// knows the RPC belongs to a trace before decoding the payload.
func (n *Node) invokeHop(ctx context.Context, next id.Node, req *RouteRequest) (any, error) {
	if req.TC.Active() {
		ctx = obs.ContextWithTrace(ctx, req.TC)
	}
	if n.cfg.HopTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, n.cfg.HopTimeout)
		defer cancel()
	}
	return n.net.Invoke(ctx, n.self, next, req)
}

// noteHopRejection dispatches a retryable hop error to the right
// bookkeeping: an overloaded hop is alive — it is routed around for
// this request but kept in the routing state (evicting it would tear
// down leaf sets every time a node saturates); anything else is
// presumed dead.
func (n *Node) noteHopRejection(next id.Node, err error) {
	if errors.Is(err, netsim.ErrOverloaded) {
		n.overloadHops.Add(1)
		// A shed is the strongest possible load signal.
		n.noteLoadHint(next, 255)
		return
	}
	n.noteHopFailure(next)
}

// noteLoadHint reports a hop's piggybacked (or shed-implied) load to
// the application hook.
func (n *Node) noteLoadHint(hop id.Node, load uint8) {
	if load == 0 {
		return
	}
	if cb := n.OnLoadHint; cb != nil {
		cb(hop, load)
	}
}

// noteHopFailure records a next hop found dead mid-route: drop it from
// all routing state, repair the vacated table slot from peers (the
// presumed-failed analogue of a keep-alive timeout), and account the
// reroute.
func (n *Node) noteHopFailure(dead id.Node) {
	if n.forget(dead) {
		n.notifyLeafChange()
	}
	n.repairTableEntry(dead)
	n.reroutes.Add(1)
	if cb := n.OnReroute; cb != nil {
		cb(dead)
	}
}

// routeStep processes a routed message at this node: consume it here
// (application Forward, application Deliver, or join handling) or
// forward it to the next hop. It is called both for messages originated
// by this node and for messages received from the network. A next hop
// that fails or times out is excluded and the step reroutes through the
// best remaining alternate (routing-table entries, then leaf-set
// neighbors, per section 2.1's repair semantics); only when every
// alternate is exhausted does the node consume the message itself as
// the numerically closest live node it knows of.
func (n *Node) routeStep(ctx context.Context, req *RouteRequest) (*RouteReply, error) {
	if err := netsim.CtxErr(ctx); err != nil {
		return nil, err
	}
	if req.Hops > n.cfg.HopLimit {
		return nil, fmt.Errorf("%w: key %s at node %s after %d hops",
			ErrHopLimit, req.Key.Short(), n.self.Short(), req.Hops)
	}
	if req.CollectPath {
		req.Path = append(req.Path, n.self)
	}
	join, isJoin := req.Payload.(joinPayload)
	if isJoin {
		n.collectJoinRows(req, join.Joiner)
	} else {
		handled, reply, err := n.app.Forward(req.Key, req.Payload)
		if err != nil {
			return nil, err
		}
		if handled {
			if req.Traced && req.TC.HasRoom(len(req.Trace)) {
				req.Trace = append(req.Trace, n.localRecord(req.Key))
			}
			return &RouteReply{Payload: reply, Hops: req.Hops, Path: req.Path, Trace: req.Trace}, nil
		}
	}

	var tried map[id.Node]bool
	for {
		next, choice := n.nextHopChoose(req.Key, tried)
		if next.IsZero() {
			// This node is the numerically closest live node it knows of:
			// consume the message.
			if req.Traced && req.TC.HasRoom(len(req.Trace)) {
				req.Trace = append(req.Trace, n.localRecord(req.Key))
			}
			if isJoin {
				st := n.stateReply()
				return &RouteReply{
					Hops: req.Hops, Path: req.Path, Trace: req.Trace,
					Terminal: n.self, Leaf: st.Leaf, Rows: req.Rows,
				}, nil
			}
			reply, err := n.app.Deliver(req.Key, req.Payload)
			if err != nil {
				return nil, err
			}
			return &RouteReply{Payload: reply, Hops: req.Hops, Path: req.Path, Trace: req.Trace}, nil
		}
		if len(tried) > 0 {
			// The best candidate was excluded by an earlier failure on
			// this route: this hop is the repair alternate.
			choice = obs.ChoiceReroute
		}

		req.Hops++
		var mark int
		var hopStart time.Time
		// The trace budget caps recording, not routing: a route past the
		// budget keeps going, it just stops accumulating hop records.
		recorded := req.Traced && req.TC.HasRoom(len(req.Trace))
		if recorded {
			mark = len(req.Trace)
			req.Trace = append(req.Trace, n.hopRecord(req.Key, next, choice))
			hopStart = time.Now()
		}
		res, err := n.invokeHop(ctx, next, req)
		if err != nil && netsim.Retryable(err) && !n.cfg.FailFast {
			if ctxErr := netsim.CtxErr(ctx); ctxErr != nil {
				// The request deadline, not the hop, expired: stop.
				return nil, ctxErr
			}
			// Presumed failed: exclude the hop for this route, evict it
			// from routing state, repair the slot, and retry with the
			// next best candidate. The failed attempt stays in the trace;
			// anything recorded beyond it belonged to the dead subtree.
			if recorded {
				req.Trace = req.Trace[:mark+1]
				req.Trace[mark].Failed = true
				req.Trace[mark].RPCNanos = time.Since(hopStart).Nanoseconds()
			}
			req.Hops--
			if tried == nil {
				tried = make(map[id.Node]bool)
			}
			tried[next] = true
			n.noteHopRejection(next, err)
			continue
		}
		if err != nil {
			return nil, err
		}
		rr, ok := res.(*RouteReply)
		if !ok {
			return nil, fmt.Errorf("pastry: unexpected route reply %T from %s", res, next.Short())
		}
		if recorded && mark < len(rr.Trace) {
			// Fill in this hop's RPC latency on the reply's copy of the
			// trace as it propagates back toward the origin.
			rr.Trace[mark].RPCNanos = time.Since(hopStart).Nanoseconds()
		}
		n.noteLoadHint(next, rr.Load)
		if !isJoin {
			n.app.Backward(req.Key, req.Payload, rr.Payload)
		}
		return rr, nil
	}
}

// hopRecord builds the trace record for forwarding a message for key to
// next under the given routing rule.
func (n *Node) hopRecord(key, next id.Node, choice string) obs.HopRecord {
	dist := -1.0
	if d, ok := n.net.Proximity(n.self, next); ok {
		dist = d
	}
	return obs.HopRecord{
		From:     n.self,
		To:       next,
		Choice:   choice,
		Prefix:   n.self.SharedPrefix(key, n.cfg.B),
		Distance: dist,
	}
}

// localRecord builds the terminal trace record for a message this node
// consumed itself.
func (n *Node) localRecord(key id.Node) obs.HopRecord {
	return obs.HopRecord{
		From:   n.self,
		To:     n.self,
		Choice: obs.ChoiceLocal,
		Prefix: n.self.SharedPrefix(key, n.cfg.B),
	}
}

// collectJoinRows contributes this node's routing-table rows (up to and
// including the row indexed by the shared-prefix length with the joiner)
// plus itself to the join message's candidate set.
func (n *Node) collectJoinRows(req *RouteRequest, joiner id.Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := n.self.SharedPrefix(joiner, n.cfg.B)
	if p >= len(n.rows) {
		p = len(n.rows) - 1
	}
	for r := 0; r <= p; r++ {
		for _, e := range n.rows[r] {
			if !e.IsZero() {
				req.Rows = append(req.Rows, e)
			}
		}
	}
	req.Rows = append(req.Rows, n.self)
}

// nextHop selects the node to forward a message for key to, or the zero
// id if this node should consume it.
func (n *Node) nextHop(key id.Node) id.Node { return n.nextHopAvoiding(key, nil) }

// nextHopAvoiding is the routing procedure of section 2.1 with an
// exclusion set: leaf set if the key is in range, otherwise the routing
// table entry with a longer prefix match, otherwise any known node that
// is closer to the key without shortening the prefix match (the "rare
// case"). Nodes in avoid — hops already found dead on this route, or a
// hedge's primary entry point — are skipped, which is what turns the
// procedure into per-hop reroute: excluding the best candidate makes the
// same rules yield the best alternate. With RandomizeP > 0 the choice is
// occasionally made among all valid candidates to defeat
// repeat-interception.
func (n *Node) nextHopAvoiding(key id.Node, avoid map[id.Node]bool) id.Node {
	next, _ := n.nextHopChoose(key, avoid)
	return next
}

// nextHopChoose is nextHopAvoiding reporting which routing rule produced
// the hop (an obs.Choice* label): leaf-set routing, the routing table,
// the randomized candidate pick, or the rare-case fallback. A zero next
// hop pairs with ChoiceLocal: this node consumes the message.
func (n *Node) nextHopChoose(key id.Node, avoid map[id.Node]bool) (id.Node, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	excluded := func(c id.Node) bool { return avoid != nil && avoid[c] }

	if key == n.self {
		return id.Node{}, obs.ChoiceLocal
	}
	if n.inLeafRangeLocked(key) {
		c := n.closestLeafAvoidingLocked(key, excluded)
		if c == n.self {
			return id.Node{}, obs.ChoiceLocal
		}
		return c, obs.ChoiceLeaf
	}

	best := n.tableLookupLocked(key)
	if excluded(best) {
		best = id.Node{}
	}
	if n.cfg.RandomizeP > 0 && n.rng.Float64() < n.cfg.RandomizeP {
		if c := n.randomValidCandidateLocked(key, excluded); !c.IsZero() {
			return c, obs.ChoiceRandom
		}
	}
	if !best.IsZero() {
		return best, obs.ChoiceTable
	}

	// Rare case (and the reroute fallback): no usable table entry. Use
	// any known node that shares at least as long a prefix with the key
	// and is numerically closer to it.
	myPrefix := n.self.SharedPrefix(key, n.cfg.B)
	myDist := n.self.RingDist(key)
	var fallback id.Node
	bestPrefix := myPrefix
	bestDist := myDist
	for _, c := range n.candidatesLocked() {
		if excluded(c) {
			continue
		}
		p := c.SharedPrefix(key, n.cfg.B)
		if p < myPrefix {
			continue
		}
		d := c.RingDist(key)
		if d.Cmp(myDist) >= 0 {
			continue
		}
		// Prefer longer prefix, then smaller distance.
		if fallback.IsZero() || p > bestPrefix || (p == bestPrefix && d.Less(bestDist)) {
			fallback, bestPrefix, bestDist = c, p, d
		}
	}
	if fallback.IsZero() {
		return fallback, obs.ChoiceLocal
	}
	return fallback, obs.ChoiceRare
}

// candidatesLocked returns the union of leaf set, routing table, and
// neighborhood set. Caller holds n.mu.
func (n *Node) candidatesLocked() []id.Node {
	out := n.tableEntriesLocked()
	out = append(out, n.leafLo...)
	out = append(out, n.leafHi...)
	out = append(out, n.nbrs...)
	return out
}

// randomValidCandidateLocked picks a uniformly random non-excluded
// candidate that preserves routing progress: at least as long a prefix
// match with the key, strictly smaller numerical distance. Caller holds
// n.mu.
func (n *Node) randomValidCandidateLocked(key id.Node, excluded func(id.Node) bool) id.Node {
	myPrefix := n.self.SharedPrefix(key, n.cfg.B)
	myDist := n.self.RingDist(key)
	var valid []id.Node
	seen := make(map[id.Node]bool)
	for _, c := range n.candidatesLocked() {
		if seen[c] || excluded(c) {
			continue
		}
		seen[c] = true
		if c.SharedPrefix(key, n.cfg.B) >= myPrefix && c.RingDist(key).Less(myDist) {
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 {
		return id.Node{}
	}
	return valid[n.rng.Intn(len(valid))]
}
