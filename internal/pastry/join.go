package pastry

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"past/internal/id"
)

// Node arrival (section 2.1, "Node addition and failure"): an arriving
// node X contacts a nearby node A, asks A to route a special join
// message with destination X. The message reaches Z, the existing node
// numerically closest to X. X then initializes its leaf set from Z's
// leaf set, its neighborhood set from A's, and its routing table from
// the rows collected at the nodes encountered along the route, and
// finally announces itself to every node that needs to know of its
// arrival.

// ErrIDCollision is returned when a joining node's id is already taken;
// the paper requires the newcomer to obtain a new nodeId in this
// exceedingly unlikely event.
var ErrIDCollision = errors.New("pastry: nodeId collision, choose a new nodeId")

// ErrNotJoined is returned to peers that reach a node which is not (or
// not yet) part of the overlay: booting before its join completes, or
// leaving. Callers treat it like a dead peer — purge and route around.
var ErrNotJoined = errors.New("pastry: not joined")

// Join inserts this node into the network via the bootstrap node, which
// should be close to this node under the proximity metric. The node's
// endpoint must already be registered with the network.
func (n *Node) Join(bootstrap id.Node) error {
	if bootstrap == n.self {
		return fmt.Errorf("pastry: node %s cannot bootstrap from itself", n.self.Short())
	}
	// Obtain the bootstrap node's neighborhood set: A is proximally
	// nearby, so A's neighbors are good candidates for ours.
	res, err := n.net.Invoke(context.Background(), n.self, bootstrap, &StateRequest{})
	if err != nil {
		return fmt.Errorf("pastry: join via %s: %w", bootstrap.Short(), err)
	}
	st := res.(*StateReply)

	// Ask A to route the join message to Z.
	req := &RouteRequest{Key: n.self, Payload: joinPayload{Joiner: n.self}, JoinCollect: true}
	res, err = n.net.Invoke(context.Background(), n.self, bootstrap, req)
	if err != nil {
		return fmt.Errorf("pastry: join route via %s: %w", bootstrap.Short(), err)
	}
	rr := res.(*RouteReply)
	if rr.Terminal == n.self {
		return ErrIDCollision
	}

	// Build state from everything learned. consider() places each
	// candidate in the leaf set, routing table, and neighborhood set as
	// appropriate.
	n.consider(bootstrap)
	for _, c := range st.Nbrs {
		n.consider(c)
	}
	n.consider(rr.Terminal)
	for _, c := range rr.Leaf {
		n.consider(c)
	}
	for _, c := range rr.Rows {
		n.consider(c)
	}

	n.mu.Lock()
	n.joined = true
	n.mu.Unlock()

	n.announce()
	n.notifyLeafChange()
	return nil
}

// announce notifies every node this node knows of about its arrival, so
// they can restore Pastry's invariants.
func (n *Node) announce() {
	n.mu.Lock()
	targets := dedupSorted(n.candidatesLocked())
	n.mu.Unlock()
	for _, t := range targets {
		// Best effort: a dead target will be noticed by keep-alives.
		if _, err := n.net.Invoke(context.Background(), n.self, t, &Announce{NewNode: n.self}); err != nil {
			n.forget(t)
		}
	}
}

// dedupSorted returns the distinct ids in ascending order, so that
// best-effort broadcasts contact nodes in a reproducible order.
func dedupSorted(ids []id.Node) []id.Node {
	out := append([]id.Node(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	w := 0
	for _, c := range out {
		if w == 0 || out[w-1] != c {
			out[w] = c
			w++
		}
	}
	return out[:w]
}

// Announce-Depart: a gracefully leaving node tells everyone it knows,
// so routes avoid it immediately rather than after keep-alive timeouts.
// The caller is expected to take the node off the network right after.
func (n *Node) Depart() {
	n.mu.Lock()
	targets := dedupSorted(n.candidatesLocked())
	n.joined = false
	n.mu.Unlock()
	for _, t := range targets {
		_, _ = n.net.Invoke(context.Background(), n.self, t, &Depart{Node: n.self})
	}
}

// Rejoin re-inserts a recovering node using its last known leaf set: it
// contacts those nodes, obtains their current leaf sets, rebuilds its
// own, and announces its presence (section 2.1). If none of the known
// nodes are reachable, Rejoin fails and a full Join via a live bootstrap
// is required.
func (n *Node) Rejoin(lastLeaf []id.Node) error {
	reached := 0
	for _, m := range lastLeaf {
		res, err := n.net.Invoke(context.Background(), n.self, m, &StateRequest{})
		if err != nil {
			continue
		}
		reached++
		st := res.(*StateReply)
		n.consider(st.ID)
		for _, c := range st.Leaf {
			n.consider(c)
		}
		for _, c := range st.Nbrs {
			n.consider(c)
		}
	}
	if reached == 0 {
		return fmt.Errorf("pastry: rejoin of %s: no node of the last leaf set is reachable", n.self.Short())
	}
	n.mu.Lock()
	n.joined = true
	n.mu.Unlock()
	n.announce()
	n.notifyLeafChange()
	return nil
}
