package pastry

import (
	"testing"
)

// TestNextHopProgressProperty checks the routing-progress invariant on
// every (node, key) pair the cluster offers: whenever nextHop forwards,
// the chosen hop either shares a strictly longer prefix with the key
// (the table step) or is strictly numerically closer to it (the
// leaf-set and rare-case steps) — each step decreases a well-founded
// measure, so routing is loop-free and terminates (section 2.1).
func TestNextHopProgressProperty(t *testing.T) {
	for _, cfg := range []Config{
		{B: 4, L: 16},
		{B: 2, L: 8},
		{B: 4, L: 16, RandomizeP: 0.5},
	} {
		c := buildCluster(t, 80, cfg, 91)
		checked := 0
		for _, nid := range c.net.AliveNodes() {
			n := c.nodes[nid]
			for trial := 0; trial < 20; trial++ {
				key := randKey(c.rng)
				next := n.nextHop(key)
				if next.IsZero() {
					continue // consumed locally; termination trivially holds
				}
				checked++
				pSelf := nid.SharedPrefix(key, cfg.B)
				pNext := next.SharedPrefix(key, cfg.B)
				if pNext > pSelf {
					continue // prefix progress
				}
				if next.RingDist(key).Less(nid.RingDist(key)) {
					continue // numeric progress
				}
				t.Fatalf("b=%d: hop %s -> %s for key %s violates progress (prefix %d->%d)",
					cfg.B, nid.Short(), next.Short(), key.Short(), pSelf, pNext)
			}
		}
		if checked == 0 {
			t.Fatal("no forwarding decisions exercised")
		}
	}
}

// TestLeafSetSymmetry checks the pairwise invariant that makes failure
// notification work: if y is in x's leaf set, then x is in y's (in a
// stable network whose node count exceeds l).
func TestLeafSetSymmetry(t *testing.T) {
	cfg := Config{B: 4, L: 8}
	c := buildCluster(t, 60, cfg, 92)
	for _, nid := range c.net.AliveNodes() {
		for _, m := range c.nodes[nid].LeafSet() {
			found := false
			for _, back := range c.nodes[m].LeafSet() {
				if back == nid {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("leaf sets asymmetric: %s has %s but not vice versa", nid.Short(), m.Short())
			}
		}
	}
}
