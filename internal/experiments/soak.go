package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"past/internal/admit"
	"past/internal/cache"
	"past/internal/chaos"
	"past/internal/id"
	"past/internal/metrics"
	"past/internal/netsim"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/stats"
)

// The chaos soak is not one of the paper's figures: it validates the
// property every figure presumes — that the section 3.5 maintenance
// protocol actually preserves the storage invariant under the failures
// the paper's design sections argue about (node failure and recovery,
// lossy and slow links, network partitions). The soak drives a cluster
// through a seeded fault schedule, runs the maintenance protocol each
// virtual tick, and asserts the invariants with an omniscient checker.

// SoakConfig parameterizes one fault-injection soak run. Zero values
// take defaults chosen so the run finishes in test time with zero
// violations.
type SoakConfig struct {
	Nodes int
	Files int

	B, L, K int
	Seed    int64

	// Ticks is the length of the fault phase in virtual ticks; one
	// maintenance round runs per tick.
	Ticks int

	// Drop and Dup are per-message probabilities on every link; DelayMS
	// is per-message virtual latency.
	Drop, Dup float64
	DelayMS   int

	// Every ChurnEvery ticks, FailPer nodes crash; each recovers and
	// rejoins DownFor ticks later.
	ChurnEvery, FailPer, DownFor int

	// A symmetric partition isolates a minority of PartitionFrac of the
	// nodes for ticks [PartitionFrom, PartitionFrom+PartitionFor).
	// PartitionFor = 0 disables it (set PartitionFrom < 0 to disable
	// while keeping the default duration).
	PartitionFrom, PartitionFor int
	PartitionFrac               float64

	// HealRounds is the number of maintenance rounds after all faults
	// lift, before convergence is asserted.
	HealRounds int

	// Resilience enables the client-side resilience layer on every
	// node: a deterministic retry policy (budgeted retries, sequential
	// failover hedging) plus partial inserts. BuildSoakSchedule never
	// consults it, so the fault timeline is identical with the layer on
	// and off — the flag changes only how clients cope.
	Resilience bool

	// FaultOps is the measurement traffic issued every fault-phase
	// tick: FaultOps lookups of seeded files plus one insert, from
	// deterministically chosen clients. The success rates quantify how
	// the cluster degrades while faults are active. Zero selects 8;
	// negative disables the traffic.
	FaultOps int

	// Admit, when non-nil, puts every node behind an admission
	// controller, so the soak also exercises overload shedding under
	// faults. Rejections are counted (FaultSheds) and emitted as
	// "overload" events; the schedule itself never consults them.
	Admit *admit.Config

	// TraceEvery samples every Nth client operation for a full per-hop
	// route trace; sampled traces are retained on the result's Tracer
	// and summarized onto the event log. Zero disables tracing. The
	// sampler is counter-based (no RNG draws), so the chaos fingerprint
	// is identical with tracing on or off.
	TraceEvery int

	// Events, when non-nil, receives the run's structured JSONL event
	// stream: phase markers, every injected fault, every invariant
	// violation, per-tick traffic summaries, sampled trace summaries,
	// and a final run summary. Purely observational — the fingerprint
	// does not change when a log is attached.
	Events *obs.EventLog
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Nodes == 0 {
		c.Nodes = 30
	}
	if c.Files == 0 {
		c.Files = 40
	}
	if c.B == 0 {
		c.B = 4
	}
	if c.L == 0 {
		c.L = 16
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Ticks == 0 {
		c.Ticks = 12
	}
	if c.Drop == 0 {
		c.Drop = 0.05
	}
	if c.Dup == 0 {
		c.Dup = 0.05
	}
	if c.DelayMS == 0 {
		c.DelayMS = 5
	}
	if c.ChurnEvery == 0 {
		c.ChurnEvery = 3
	}
	if c.FailPer == 0 {
		c.FailPer = 1
	}
	if c.DownFor == 0 {
		c.DownFor = 2
	}
	if c.PartitionFor == 0 {
		c.PartitionFor = 3
	}
	if c.PartitionFrom == 0 {
		c.PartitionFrom = 4
	} else if c.PartitionFrom < 0 {
		c.PartitionFor = 0
	}
	if c.PartitionFrac == 0 {
		c.PartitionFrac = 0.2
	}
	if c.HealRounds == 0 {
		c.HealRounds = 4
	}
	if c.FaultOps == 0 {
		c.FaultOps = 8
	} else if c.FaultOps < 0 {
		c.FaultOps = 0
	}
	return c
}

// minoritySize returns the size of the partitioned minority: at least
// K (so the minority can keep repairing internally), at most a third of
// the cluster.
func (c SoakConfig) minoritySize() int {
	m := int(c.PartitionFrac * float64(c.Nodes))
	if m < c.K {
		m = c.K
	}
	if max := c.Nodes / 3; m > max {
		m = max
	}
	return m
}

// BuildSoakSchedule derives the deterministic chaos.Schedule for a soak:
// background loss/duplication/latency on every link for the whole fault
// phase, one symmetric partition window isolating the first
// minoritySize() roster indices, and a churn script failing majority
// nodes round-robin. Schedule node indices are cluster build order.
func BuildSoakSchedule(cfg SoakConfig) chaos.Schedule {
	cfg = cfg.withDefaults()
	sched := chaos.Schedule{Seed: cfg.Seed}
	sched.Links = []chaos.LinkRule{{
		Window:  chaos.Window{From: 0, Until: cfg.Ticks},
		Drop:    cfg.Drop,
		Dup:     cfg.Dup,
		DelayMS: cfg.DelayMS,
	}}
	m := cfg.minoritySize()
	if cfg.PartitionFor > 0 {
		minority := make([]int, m)
		majority := make([]int, 0, cfg.Nodes-m)
		for i := 0; i < cfg.Nodes; i++ {
			if i < m {
				minority[i] = i
			} else {
				majority = append(majority, i)
			}
		}
		sched.Partitions = []chaos.PartitionRule{{
			Window:    chaos.Window{From: cfg.PartitionFrom, Until: cfg.PartitionFrom + cfg.PartitionFor},
			A:         minority,
			B:         majority,
			Symmetric: true,
		}}
	}
	// Churn victims come from the majority side only: a minority node
	// crashing inside the partition window could not rejoin (its whole
	// last leaf set may be unreachable), which would stall the script.
	rng := stats.NewRand(cfg.Seed ^ 0x50AC)
	next := m
	for t := cfg.ChurnEvery; t < cfg.Ticks; t += cfg.ChurnEvery {
		ev := chaos.ChurnEvent{At: t}
		for i := 0; i < cfg.FailPer; i++ {
			ev.Fail = append(ev.Fail, m+(next-m+rng.Intn(3))%(cfg.Nodes-m))
			next = m + (next-m+1)%(cfg.Nodes-m)
		}
		sched.Churn = append(sched.Churn, ev)
		rec := chaos.ChurnEvent{At: t + cfg.DownFor, Recover: ev.Fail}
		sched.Churn = append(sched.Churn, rec)
	}
	return sched
}

// PhaseStats summarizes one phase of a soak run: cluster-wide deltas
// of the per-node obs registries over the phase, plus the phase's
// measurement traffic. The registry deltas come from obs.Aggregate over
// every node's StatsSnapshot at the phase boundaries, so they count the
// whole emulated system, not just the clients.
type PhaseStats struct {
	// Faults is the number of chaos events recorded during the phase.
	Faults int64
	// Registry deltas.
	Reroutes       int64
	Retries        int64
	Hedges         int64
	HedgeWins      int64
	PartialInserts int64
	LeafRepairs    int64
	MsgsOut        int64
	// Measurement lookups issued during the phase and their successes.
	Lookups, LookupsOK int
	// MeanHops is the mean hop count over the phase's successful
	// lookups (0 when none succeeded).
	MeanHops float64
}

// String renders the phase stats as one compact line.
func (p PhaseStats) String() string {
	return fmt.Sprintf(
		"faults=%d reroutes=%d retries=%d hedges=%d (won %d) partial-inserts=%d leaf-repairs=%d msgs=%d lookups=%d/%d mean-hops=%.2f",
		p.Faults, p.Reroutes, p.Retries, p.Hedges, p.HedgeWins,
		p.PartialInserts, p.LeafRepairs, p.MsgsOut,
		p.LookupsOK, p.Lookups, p.MeanHops)
}

// SoakResult reports one soak run.
type SoakResult struct {
	Config   SoakConfig
	Schedule chaos.Schedule

	// Inserted counts the files whose insert was confirmed (only those
	// are subject to the invariants).
	Inserted int

	// Fingerprint is the chaos core's run digest; identical config must
	// produce identical fingerprints.
	Fingerprint string
	EventCount  int64
	Faults      map[string]int64
	// Events is the retained prefix of the fault log (the fingerprint
	// covers all EventCount events).
	Events []chaos.Event

	// Violations is every invariant violation found, in discovery order.
	Violations []chaos.Violation

	// LookupsOK counts post-heal lookups that found their file (out of
	// Inserted).
	LookupsOK int

	// Fault-phase measurement traffic: operations issued while the
	// fault schedule was active. These quantify degradation under
	// faults; they do not affect OK(), which tracks the invariants and
	// post-heal retrievability.
	FaultLookups, FaultLookupsOK int
	FaultInserts, FaultInsertsOK int
	// FaultSheds counts fault-phase operations rejected with
	// ErrOverloaded by an admission controller (only with Config.Admit).
	FaultSheds int

	// FaultPhase and HealPhase are the per-phase registry deltas: the
	// fault phase covers the ticks the schedule is active, the heal
	// phase covers the heal rounds plus the post-heal lookups.
	FaultPhase, HealPhase PhaseStats

	// Tracer holds the run's sampled route traces when Config.TraceEvery
	// is set (nil otherwise).
	Tracer *obs.Tracer

	Collector *metrics.Collector

	// Cluster is the final cluster, for post-mortem inspection.
	Cluster *past.Cluster

	// hopSum/hopN accumulate route hops of successful measurement
	// lookups; soakMark samples them for PhaseStats.MeanHops.
	hopSum, hopN int
}

// OK reports whether the soak completed with zero invariant violations
// and every post-heal lookup succeeding.
func (r *SoakResult) OK() bool {
	return len(r.Violations) == 0 && r.LookupsOK == r.Inserted
}

// FaultLookupRate returns the fraction of fault-phase lookups that
// succeeded (1 when none were issued).
func (r *SoakResult) FaultLookupRate() float64 {
	if r.FaultLookups == 0 {
		return 1
	}
	return float64(r.FaultLookupsOK) / float64(r.FaultLookups)
}

// FaultInsertRate returns the fraction of fault-phase inserts that
// succeeded (1 when none were issued).
func (r *SoakResult) FaultInsertRate() float64 {
	if r.FaultInserts == 0 {
		return 1
	}
	return float64(r.FaultInsertsOK) / float64(r.FaultInserts)
}

// RunSoak builds a cluster over the fault injector, inserts a
// population of files, executes the fault schedule with one maintenance
// round per tick, heals, and checks the invariants: durability at every
// tick, full convergence (replica counts back at k, no dangling
// pointers, no stray replicas) after the heal rounds.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	sched := BuildSoakSchedule(cfg)
	core := chaos.NewCore(sched)

	// Capacity is generous: the soak isolates fault dynamics from the
	// storage-pressure dynamics the other experiments cover.
	capacity := int64(1) << 26
	col := metrics.NewCollector(int64(cfg.Nodes)*capacity, cfg.Files/10+1)
	elog := cfg.Events
	core.OnFault = func(kind string) {
		col.RecordFault(kind)
		elog.Emit(obs.Event{Kind: "fault", Tick: core.Tick(), Op: kind})
	}

	pcfg := pastConfig(cfg.B, cfg.L, cfg.K, 0.1, 0.05, 4, cache.None, col)
	// Admission under the soak must stay deterministic: unless the
	// caller supplied a clock, pin the controllers to virtual time — one
	// second per tick — so token refill never depends on the wall clock.
	var admitTick int
	if cfg.Admit != nil {
		ac := *cfg.Admit
		if ac.Clock == nil {
			epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
			ac.Clock = func() time.Time {
				return epoch.Add(time.Duration(admitTick) * time.Second)
			}
		}
		pcfg.Admit = &ac
	}
	var tracer *obs.Tracer
	if cfg.TraceEvery > 0 {
		tracer = obs.NewTracer(cfg.TraceEvery, 64)
		tracer.OnTrace = func(tr *obs.Trace) {
			elog.Emit(obs.Event{
				Kind: "trace", Tick: core.Tick(), Op: tr.Op,
				Node: tr.Key.Short(), N: tr.Seq,
				Hops: tr.RouteHops, OK: tr.OK,
			})
		}
		pcfg.Tracer = tracer
	}
	if cfg.Resilience {
		// BaseDelay 0 (no real sleeps — the emulated network resolves
		// synchronously) and HedgeDelay 0 (sequential failover hedge)
		// keep the run fully deterministic.
		pcfg.Retry = &past.RetryPolicy{
			MaxAttempts: 3,
			JitterSeed:  cfg.Seed ^ 0x7E57,
			Hedge:       true,
		}
		pcfg.PartialInsert = true
	} else {
		// The layer-off baseline is the pre-resilience system: fail-fast
		// routing (no per-hop reroute), single attempts, no hedging.
		pcfg.Pastry.FailFast = true
	}
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        cfg.Nodes,
		Cfg:      pcfg,
		Capacity: func(int, *rand.Rand) int64 { return capacity },
		Seed:     cfg.Seed,
		WrapNet: func(nid id.Node, inner netsim.Net) netsim.Net {
			return core.Bind(nid, inner)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: soak cluster: %w", err)
	}

	res := &SoakResult{Config: cfg, Schedule: sched, Collector: col, Cluster: cluster, Tracer: tracer}
	checker := &chaos.Checker{K: cfg.K, OnViolation: func(v chaos.Violation) {
		col.RecordViolation(string(v.Kind))
		res.Violations = append(res.Violations, v)
		elog.Emit(obs.Event{Kind: "violation", Tick: core.Tick(), Op: string(v.Kind), Detail: v.String()})
	}}

	// Seed the file population on a quiet network (the core is not yet
	// active), so every tracked file had a confirmed, clean insert.
	elog.Emit(obs.Event{Kind: "phase", Detail: "seed", N: int64(cfg.Files)})
	var files []id.File
	sizeRng := stats.NewRand(cfg.Seed ^ 0xF11E)
	for i := 0; i < cfg.Files; i++ {
		client := cluster.RandomAliveNode()
		ins, err := client.Insert(past.InsertSpec{
			Name: fmt.Sprintf("soak-%d", i),
			Size: 512 + int64(sizeRng.Intn(4096)),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: soak insert %d: %w", i, err)
		}
		if ins.OK {
			files = append(files, ins.FileID)
		}
	}
	res.Inserted = len(files)

	// Fault phase: churn + maintenance + durability check each tick,
	// plus the measurement traffic that quantifies degradation. The
	// traffic RNG is dedicated and its draw sequence depends only on
	// the schedule-driven alive set, so the resilience-on and -off
	// variants of one schedule issue identical request streams.
	core.SetActive(true)
	elog.Emit(obs.Event{Kind: "phase", Detail: "fault", N: int64(cfg.Ticks)})
	faultStart := soakMark(core, cluster, res)
	opRng := stats.NewRand(cfg.Seed ^ 0x0B5E)
	lastLeaf := make(map[id.Node][]id.Node)
	var pendingRejoin []id.Node
	var shedSeen int64
	for t := 0; t < cfg.Ticks; t++ {
		core.SetTick(t)
		admitTick = t
		fail, rec := sched.ChurnAt(t)
		for _, i := range fail {
			nid, ok := core.NodeAt(i)
			if !ok || !cluster.Alive(nid) {
				continue
			}
			lastLeaf[nid] = cluster.ByID[nid].Overlay().LeafSet()
			cluster.Fail(nid)
			core.RecordChurn(chaos.FaultFail, nid)
		}
		for _, i := range rec {
			if nid, ok := core.NodeAt(i); ok && !cluster.Alive(nid) {
				cluster.Recover(nid)
				core.RecordChurn(chaos.FaultRecover, nid)
				pendingRejoin = append(pendingRejoin, nid)
			}
		}
		// Rejoins can fail under message loss; retry until they land.
		pendingRejoin = rejoin(cluster, lastLeaf, pendingRejoin)
		cluster.MaintainAll()
		checker.CheckDurability(cluster, files, t)
		soakFaultOps(cluster, core, opRng, files, t, res)
		if cfg.Admit != nil {
			// Hop-level rejections this tick: sheds absorbed by per-hop
			// reroute never reach a client, so they are read off the
			// admission controllers instead.
			if total := soakShedTotal(cluster); total > shedSeen {
				elog.Emit(obs.Event{Kind: "overload", Tick: t, Op: "hop-shed", N: total - shedSeen})
				shedSeen = total
			}
		}
		elog.Emit(obs.Event{
			Kind: "tick", Tick: t, N: core.EventCount(),
			OK: len(res.Violations) == 0,
			Detail: fmt.Sprintf("lookups %d/%d inserts %d/%d",
				res.FaultLookupsOK, res.FaultLookups, res.FaultInsertsOK, res.FaultInserts),
		})
	}
	faultEnd := soakMark(core, cluster, res)
	res.FaultPhase = phaseDelta(faultStart, faultEnd)
	res.FaultPhase.Lookups = res.FaultLookups
	res.FaultPhase.LookupsOK = res.FaultLookupsOK

	// Heal: advance past every schedule window, recover all nodes still
	// down, and re-merge the partitioned minority by re-announcing it to
	// the majority (the administrative step a real partition heal needs,
	// since keep-alives only probe known members).
	healTick := cfg.Ticks
	if e := sched.End(); e > healTick {
		healTick = e
	}
	elog.Emit(obs.Event{Kind: "phase", Tick: healTick, Detail: "heal", N: int64(cfg.HealRounds)})
	core.SetTick(healTick)
	for i := 0; i < core.Len(); i++ {
		if nid, ok := core.NodeAt(i); ok && !cluster.Alive(nid) {
			cluster.Recover(nid)
			core.RecordChurn(chaos.FaultRecover, nid)
			pendingRejoin = append(pendingRejoin, nid)
		}
	}
	pendingRejoin = rejoin(cluster, lastLeaf, pendingRejoin)
	if len(pendingRejoin) > 0 {
		return nil, fmt.Errorf("experiments: soak: %d nodes failed to rejoin on a clean network", len(pendingRejoin))
	}
	if cfg.PartitionFor > 0 {
		m := cfg.minoritySize()
		roster := cluster.Net.AliveNodes()
		for i := 0; i < m; i++ {
			nid, ok := core.NodeAt(i)
			if !ok || !cluster.Alive(nid) {
				continue
			}
			// Pull state from the full membership: each side of the split
			// has forgotten the other, so a bridge node alone leaves both
			// sides' leaf sets incomplete; the resulting wrong replica
			// sets would strand extra copies.
			seeds := make([]id.Node, 0, len(roster)-1)
			for _, x := range roster {
				if x != nid {
					seeds = append(seeds, x)
				}
			}
			if err := cluster.ByID[nid].Overlay().Rejoin(seeds); err != nil {
				return nil, fmt.Errorf("experiments: soak: partition re-merge: %w", err)
			}
		}
	}
	for r := 0; r < cfg.HealRounds; r++ {
		core.SetTick(healTick + r)
		admitTick = healTick + r
		cluster.MaintainAll()
	}

	// Final invariants: durability plus full convergence.
	finalEpoch := healTick + cfg.HealRounds
	checker.CheckDurability(cluster, files, finalEpoch)
	checker.CheckConverged(cluster, files, finalEpoch)

	// End-to-end sanity: every file must still be retrievable. The
	// admission clock advances a virtual second per lookup so the final
	// sweep is not starved by tokens spent during the fault phase.
	for i, f := range files {
		admitTick = finalEpoch + i
		client := cluster.RandomAliveNode()
		lr, err := client.Lookup(f)
		found := err == nil && lr.Found
		col.RecordLookup(col.Utilization(), hopsOf(lr), found, lr != nil && lr.FromCache)
		if found {
			res.LookupsOK++
			res.hopSum += lr.Hops
			res.hopN++
		}
	}
	healEnd := soakMark(core, cluster, res)
	res.HealPhase = phaseDelta(faultEnd, healEnd)
	res.HealPhase.Lookups = len(files)
	res.HealPhase.LookupsOK = res.LookupsOK

	res.Fingerprint = core.Fingerprint()
	res.EventCount = core.EventCount()
	res.Faults = core.Counters()
	res.Events = core.Events()
	elog.Emit(obs.Event{
		Kind: "summary", Tick: finalEpoch, N: res.EventCount, OK: res.OK(),
		Detail: fmt.Sprintf("fingerprint=%s violations=%d post-heal=%d/%d",
			res.Fingerprint, len(res.Violations), res.LookupsOK, res.Inserted),
	})
	return res, nil
}

// soakMark samples the cluster-wide observability state at a phase
// boundary: the aggregate of every node's registry snapshot, the chaos
// event count, and the result's hop accumulators.
type soakMarkT struct {
	snap         obs.Snapshot
	faults       int64
	hopSum, hopN int
}

func soakMark(core *chaos.Core, cluster *past.Cluster, res *SoakResult) soakMarkT {
	snaps := make([]obs.Snapshot, 0, len(cluster.Nodes))
	for _, n := range cluster.Nodes {
		snaps = append(snaps, n.StatsSnapshot())
	}
	return soakMarkT{
		snap:   obs.Aggregate(snaps...),
		faults: core.EventCount(),
		hopSum: res.hopSum,
		hopN:   res.hopN,
	}
}

// phaseDelta turns two boundary marks into the phase's PhaseStats.
// Lookups/LookupsOK are filled by the caller (they are per-phase
// already, not cumulative registry counters of measurement traffic
// alone — the registries also count maintenance-driven operations).
func phaseDelta(from, to soakMarkT) PhaseStats {
	d := to.snap.Delta(from.snap)
	ps := PhaseStats{
		Faults:         to.faults - from.faults,
		Reroutes:       d.Get(obs.CtrReroutes),
		Retries:        d.Get(obs.CtrRetries),
		Hedges:         d.Get(obs.CtrHedges),
		HedgeWins:      d.Get(obs.CtrHedgeWins),
		PartialInserts: d.Get(obs.CtrPartialInserts),
		LeafRepairs:    d.Get(obs.CtrLeafRepairs),
		MsgsOut:        d.Get(obs.CtrMsgsOut),
	}
	if n := to.hopN - from.hopN; n > 0 {
		ps.MeanHops = float64(to.hopSum-from.hopSum) / float64(n)
	}
	return ps
}

// soakFaultOps issues one tick's measurement traffic: cfg.FaultOps
// lookups of seeded files plus one insert, each from a client drawn off
// the dedicated traffic RNG. Inserted files are deliberately NOT added
// to the invariant-checked population: an insert attempted into a
// faulty network has no clean confirmation, so it is measured (did the
// client get an acknowledgment?) but not asserted durable.
func soakFaultOps(cluster *past.Cluster, core *chaos.Core, rng *rand.Rand, files []id.File, tick int, res *SoakResult) {
	cfg := res.Config
	if cfg.FaultOps <= 0 || len(files) == 0 {
		return
	}
	for i := 0; i < cfg.FaultOps; i++ {
		client := soakClient(cluster, core, rng)
		f := files[rng.Intn(len(files))]
		if client == nil {
			continue
		}
		res.FaultLookups++
		lr, err := client.Lookup(f)
		if err == nil && lr.Found {
			res.FaultLookupsOK++
			res.hopSum += lr.Hops
			res.hopN++
		}
		soakNoteOverload(res, tick, "lookup", err)
	}
	client := soakClient(cluster, core, rng)
	size := 512 + int64(rng.Intn(4096))
	if client == nil {
		return
	}
	res.FaultInserts++
	ins, err := client.Insert(past.InsertSpec{
		Name: fmt.Sprintf("soak-fault-%d", tick),
		Size: size,
	})
	if err == nil && ins.OK {
		res.FaultInsertsOK++
	}
	soakNoteOverload(res, tick, "insert", err)
}

// soakNoteOverload records a client-visible admission rejection: the
// operation came back ErrOverloaded instead of being absorbed by
// per-hop reroute.
func soakNoteOverload(res *SoakResult, tick int, op string, err error) {
	if err == nil || !errors.Is(err, netsim.ErrOverloaded) {
		return
	}
	res.FaultSheds++
	res.Config.Events.Emit(obs.Event{Kind: "overload", Tick: tick, Op: op, Detail: err.Error()})
}

// hopsOf reads a lookup's hop count, tolerating failed lookups.
func hopsOf(lr *past.LookupResult) int {
	if lr == nil {
		return 0
	}
	return lr.Hops
}

// soakShedTotal sums hop-level admission rejections across the cluster.
func soakShedTotal(cluster *past.Cluster) int64 {
	var total int64
	for _, n := range cluster.Nodes {
		if ctl := n.AdmitController(); ctl != nil {
			total += ctl.Shed()
		}
	}
	return total
}

// soakClient picks an alive client node by walking the build roster
// from a seeded random start. Exactly one RNG draw per call, and the
// outcome depends only on the (schedule-driven) alive set — never on
// how earlier operations fared — so paired runs pick the same clients.
func soakClient(cluster *past.Cluster, core *chaos.Core, rng *rand.Rand) *past.Node {
	n := core.Len()
	if n == 0 {
		return nil
	}
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		if nid, ok := core.NodeAt((start + i) % n); ok && cluster.Alive(nid) {
			return cluster.ByID[nid]
		}
	}
	return nil
}

// SoakComparison pairs two runs of one fault schedule: resilience
// layer off and on.
type SoakComparison struct {
	Off, On *SoakResult
}

// CompareSoak runs the identical seeded fault schedule twice — once
// with the resilience layer off, once on — and returns both results.
// BuildSoakSchedule does not consult Resilience, so the fault timelines
// (and the measurement request streams) match; only how the clients
// cope differs.
func CompareSoak(cfg SoakConfig) (*SoakComparison, error) {
	off := cfg
	off.Resilience = false
	roff, err := RunSoak(off)
	if err != nil {
		return nil, fmt.Errorf("experiments: soak compare (resilience off): %w", err)
	}
	on := cfg
	on.Resilience = true
	ron, err := RunSoak(on)
	if err != nil {
		return nil, fmt.Errorf("experiments: soak compare (resilience on): %w", err)
	}
	return &SoakComparison{Off: roff, On: ron}, nil
}

// rejoin attempts Overlay().Rejoin for every listed node, returning the
// nodes whose rejoin still failed (to be retried next tick).
func rejoin(cluster *past.Cluster, lastLeaf map[id.Node][]id.Node, pending []id.Node) []id.Node {
	var still []id.Node
	for _, nid := range pending {
		if err := cluster.ByID[nid].Overlay().Rejoin(lastLeaf[nid]); err != nil {
			still = append(still, nid)
		}
	}
	return still
}

// RenderSoak formats a soak result in the repo's table style.
func RenderSoak(r *SoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak: %d nodes, k=%d, %d files, %d ticks (seed %d)\n",
		r.Config.Nodes, r.Config.K, r.Inserted, r.Config.Ticks, r.Config.Seed)
	fmt.Fprintf(&b, "  faults injected: %d\n", r.EventCount)
	for _, kv := range chaos.SortedCounters(r.Faults) {
		fmt.Fprintf(&b, "    %s\n", kv)
	}
	if r.FaultLookups > 0 || r.FaultInserts > 0 {
		fmt.Fprintf(&b, "  fault-phase traffic: lookups %d/%d ok (%.0f%%), inserts %d/%d ok\n",
			r.FaultLookupsOK, r.FaultLookups, 100*r.FaultLookupRate(),
			r.FaultInsertsOK, r.FaultInserts)
	}
	if r.Config.Admit != nil {
		fmt.Fprintf(&b, "  admission: rate=%g burst=%d depth=%d, client-visible sheds %d\n",
			r.Config.Admit.Rate, r.Config.Admit.Burst, r.Config.Admit.Depth, r.FaultSheds)
	}
	if r.Config.Resilience {
		fmt.Fprintf(&b, "  resilience: retries=%d hedges=%d (won %d) reroutes=%d partial-inserts=%d\n",
			r.Collector.Retries(), r.Collector.Hedges(), r.Collector.HedgeWins(),
			r.Collector.Reroutes(), r.Collector.PartialInserts())
	}
	fmt.Fprintf(&b, "  fault phase: %s\n", r.FaultPhase)
	fmt.Fprintf(&b, "  heal phase:  %s\n", r.HealPhase)
	if r.Tracer != nil {
		fmt.Fprintf(&b, "  traces: sampled %d of %d client ops\n", r.Tracer.Sampled(), r.Tracer.Started())
	}
	fmt.Fprintf(&b, "  post-heal lookups: %d/%d ok\n", r.LookupsOK, r.Inserted)
	fmt.Fprintf(&b, "  invariant violations: %d\n", len(r.Violations))
	for i, v := range r.Violations {
		if i == 20 {
			fmt.Fprintf(&b, "    ... %d more\n", len(r.Violations)-20)
			break
		}
		fmt.Fprintf(&b, "    %s\n", v)
	}
	fmt.Fprintf(&b, "  fingerprint: %s\n", r.Fingerprint)
	if r.OK() {
		b.WriteString("  RESULT: PASS\n")
	} else {
		b.WriteString("  RESULT: FAIL\n")
	}
	return b.String()
}

// RenderSoakComparison formats the paired off/on runs side by side.
func RenderSoakComparison(c *SoakComparison) string {
	var b strings.Builder
	cfg := c.Off.Config
	fmt.Fprintf(&b, "Resilience comparison: %d nodes, k=%d, %d files, %d ticks, drop=%.2f (seed %d)\n",
		cfg.Nodes, cfg.K, cfg.Files, cfg.Ticks, cfg.Drop, cfg.Seed)
	row := func(name string, r *SoakResult) {
		fmt.Fprintf(&b, "  %-3s  fault lookups %3d/%3d (%5.1f%%)  fault inserts %2d/%2d  post-heal %d/%d  violations %d\n",
			name, r.FaultLookupsOK, r.FaultLookups, 100*r.FaultLookupRate(),
			r.FaultInsertsOK, r.FaultInserts, r.LookupsOK, r.Inserted, len(r.Violations))
	}
	row("off", c.Off)
	row("on", c.On)
	fmt.Fprintf(&b, "  layer activity (on): retries=%d hedges=%d (won %d) reroutes=%d partial-inserts=%d\n",
		c.On.Collector.Retries(), c.On.Collector.Hedges(), c.On.Collector.HedgeWins(),
		c.On.Collector.Reroutes(), c.On.Collector.PartialInserts())
	delta := c.On.FaultLookupRate() - c.Off.FaultLookupRate()
	fmt.Fprintf(&b, "  fault-phase lookup success: %.1f%% -> %.1f%% (%+.1f points)\n",
		100*c.Off.FaultLookupRate(), 100*c.On.FaultLookupRate(), 100*delta)
	b.WriteString("  per-phase registry deltas (off vs on):\n")
	phase := func(name string, off, on PhaseStats) {
		fmt.Fprintf(&b, "    %-5s  off: %s\n", name, off)
		fmt.Fprintf(&b, "    %-5s  on:  %s\n", "", on)
	}
	phase("fault", c.Off.FaultPhase, c.On.FaultPhase)
	phase("heal", c.Off.HealPhase, c.On.HealPhase)
	return b.String()
}
