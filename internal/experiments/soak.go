package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"past/internal/cache"
	"past/internal/chaos"
	"past/internal/id"
	"past/internal/metrics"
	"past/internal/netsim"
	"past/internal/past"
	"past/internal/stats"
)

// The chaos soak is not one of the paper's figures: it validates the
// property every figure presumes — that the section 3.5 maintenance
// protocol actually preserves the storage invariant under the failures
// the paper's design sections argue about (node failure and recovery,
// lossy and slow links, network partitions). The soak drives a cluster
// through a seeded fault schedule, runs the maintenance protocol each
// virtual tick, and asserts the invariants with an omniscient checker.

// SoakConfig parameterizes one fault-injection soak run. Zero values
// take defaults chosen so the run finishes in test time with zero
// violations.
type SoakConfig struct {
	Nodes int
	Files int

	B, L, K int
	Seed    int64

	// Ticks is the length of the fault phase in virtual ticks; one
	// maintenance round runs per tick.
	Ticks int

	// Drop and Dup are per-message probabilities on every link; DelayMS
	// is per-message virtual latency.
	Drop, Dup float64
	DelayMS   int

	// Every ChurnEvery ticks, FailPer nodes crash; each recovers and
	// rejoins DownFor ticks later.
	ChurnEvery, FailPer, DownFor int

	// A symmetric partition isolates a minority of PartitionFrac of the
	// nodes for ticks [PartitionFrom, PartitionFrom+PartitionFor).
	// PartitionFor = 0 disables it (set PartitionFrom < 0 to disable
	// while keeping the default duration).
	PartitionFrom, PartitionFor int
	PartitionFrac               float64

	// HealRounds is the number of maintenance rounds after all faults
	// lift, before convergence is asserted.
	HealRounds int
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Nodes == 0 {
		c.Nodes = 30
	}
	if c.Files == 0 {
		c.Files = 40
	}
	if c.B == 0 {
		c.B = 4
	}
	if c.L == 0 {
		c.L = 16
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Ticks == 0 {
		c.Ticks = 12
	}
	if c.Drop == 0 {
		c.Drop = 0.05
	}
	if c.Dup == 0 {
		c.Dup = 0.05
	}
	if c.DelayMS == 0 {
		c.DelayMS = 5
	}
	if c.ChurnEvery == 0 {
		c.ChurnEvery = 3
	}
	if c.FailPer == 0 {
		c.FailPer = 1
	}
	if c.DownFor == 0 {
		c.DownFor = 2
	}
	if c.PartitionFor == 0 {
		c.PartitionFor = 3
	}
	if c.PartitionFrom == 0 {
		c.PartitionFrom = 4
	} else if c.PartitionFrom < 0 {
		c.PartitionFor = 0
	}
	if c.PartitionFrac == 0 {
		c.PartitionFrac = 0.2
	}
	if c.HealRounds == 0 {
		c.HealRounds = 4
	}
	return c
}

// minoritySize returns the size of the partitioned minority: at least
// K (so the minority can keep repairing internally), at most a third of
// the cluster.
func (c SoakConfig) minoritySize() int {
	m := int(c.PartitionFrac * float64(c.Nodes))
	if m < c.K {
		m = c.K
	}
	if max := c.Nodes / 3; m > max {
		m = max
	}
	return m
}

// BuildSoakSchedule derives the deterministic chaos.Schedule for a soak:
// background loss/duplication/latency on every link for the whole fault
// phase, one symmetric partition window isolating the first
// minoritySize() roster indices, and a churn script failing majority
// nodes round-robin. Schedule node indices are cluster build order.
func BuildSoakSchedule(cfg SoakConfig) chaos.Schedule {
	cfg = cfg.withDefaults()
	sched := chaos.Schedule{Seed: cfg.Seed}
	sched.Links = []chaos.LinkRule{{
		Window:  chaos.Window{From: 0, Until: cfg.Ticks},
		Drop:    cfg.Drop,
		Dup:     cfg.Dup,
		DelayMS: cfg.DelayMS,
	}}
	m := cfg.minoritySize()
	if cfg.PartitionFor > 0 {
		minority := make([]int, m)
		majority := make([]int, 0, cfg.Nodes-m)
		for i := 0; i < cfg.Nodes; i++ {
			if i < m {
				minority[i] = i
			} else {
				majority = append(majority, i)
			}
		}
		sched.Partitions = []chaos.PartitionRule{{
			Window:    chaos.Window{From: cfg.PartitionFrom, Until: cfg.PartitionFrom + cfg.PartitionFor},
			A:         minority,
			B:         majority,
			Symmetric: true,
		}}
	}
	// Churn victims come from the majority side only: a minority node
	// crashing inside the partition window could not rejoin (its whole
	// last leaf set may be unreachable), which would stall the script.
	rng := stats.NewRand(cfg.Seed ^ 0x50AC)
	next := m
	for t := cfg.ChurnEvery; t < cfg.Ticks; t += cfg.ChurnEvery {
		ev := chaos.ChurnEvent{At: t}
		for i := 0; i < cfg.FailPer; i++ {
			ev.Fail = append(ev.Fail, m+(next-m+rng.Intn(3))%(cfg.Nodes-m))
			next = m + (next-m+1)%(cfg.Nodes-m)
		}
		sched.Churn = append(sched.Churn, ev)
		rec := chaos.ChurnEvent{At: t + cfg.DownFor, Recover: ev.Fail}
		sched.Churn = append(sched.Churn, rec)
	}
	return sched
}

// SoakResult reports one soak run.
type SoakResult struct {
	Config   SoakConfig
	Schedule chaos.Schedule

	// Inserted counts the files whose insert was confirmed (only those
	// are subject to the invariants).
	Inserted int

	// Fingerprint is the chaos core's run digest; identical config must
	// produce identical fingerprints.
	Fingerprint string
	EventCount  int64
	Faults      map[string]int64
	// Events is the retained prefix of the fault log (the fingerprint
	// covers all EventCount events).
	Events []chaos.Event

	// Violations is every invariant violation found, in discovery order.
	Violations []chaos.Violation

	// LookupsOK counts post-heal lookups that found their file (out of
	// Inserted).
	LookupsOK int

	Collector *metrics.Collector

	// Cluster is the final cluster, for post-mortem inspection.
	Cluster *past.Cluster
}

// OK reports whether the soak completed with zero invariant violations
// and every post-heal lookup succeeding.
func (r *SoakResult) OK() bool {
	return len(r.Violations) == 0 && r.LookupsOK == r.Inserted
}

// RunSoak builds a cluster over the fault injector, inserts a
// population of files, executes the fault schedule with one maintenance
// round per tick, heals, and checks the invariants: durability at every
// tick, full convergence (replica counts back at k, no dangling
// pointers, no stray replicas) after the heal rounds.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	sched := BuildSoakSchedule(cfg)
	core := chaos.NewCore(sched)

	// Capacity is generous: the soak isolates fault dynamics from the
	// storage-pressure dynamics the other experiments cover.
	capacity := int64(1) << 26
	col := metrics.NewCollector(int64(cfg.Nodes)*capacity, cfg.Files/10+1)
	core.OnFault = col.RecordFault

	pcfg := pastConfig(cfg.B, cfg.L, cfg.K, 0.1, 0.05, 4, cache.None, col)
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        cfg.Nodes,
		Cfg:      pcfg,
		Capacity: func(int, *rand.Rand) int64 { return capacity },
		Seed:     cfg.Seed,
		WrapNet: func(nid id.Node, inner netsim.Net) netsim.Net {
			return core.Bind(nid, inner)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: soak cluster: %w", err)
	}

	res := &SoakResult{Config: cfg, Schedule: sched, Collector: col, Cluster: cluster}
	checker := &chaos.Checker{K: cfg.K, OnViolation: func(v chaos.Violation) {
		col.RecordViolation(string(v.Kind))
		res.Violations = append(res.Violations, v)
	}}

	// Seed the file population on a quiet network (the core is not yet
	// active), so every tracked file had a confirmed, clean insert.
	var files []id.File
	sizeRng := stats.NewRand(cfg.Seed ^ 0xF11E)
	for i := 0; i < cfg.Files; i++ {
		client := cluster.RandomAliveNode()
		ins, err := client.Insert(past.InsertSpec{
			Name: fmt.Sprintf("soak-%d", i),
			Size: 512 + int64(sizeRng.Intn(4096)),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: soak insert %d: %w", i, err)
		}
		if ins.OK {
			files = append(files, ins.FileID)
		}
	}
	res.Inserted = len(files)

	// Fault phase: churn + maintenance + durability check each tick.
	core.SetActive(true)
	lastLeaf := make(map[id.Node][]id.Node)
	var pendingRejoin []id.Node
	for t := 0; t < cfg.Ticks; t++ {
		core.SetTick(t)
		fail, rec := sched.ChurnAt(t)
		for _, i := range fail {
			nid, ok := core.NodeAt(i)
			if !ok || !cluster.Alive(nid) {
				continue
			}
			lastLeaf[nid] = cluster.ByID[nid].Overlay().LeafSet()
			cluster.Fail(nid)
			core.RecordChurn(chaos.FaultFail, nid)
		}
		for _, i := range rec {
			if nid, ok := core.NodeAt(i); ok && !cluster.Alive(nid) {
				cluster.Recover(nid)
				core.RecordChurn(chaos.FaultRecover, nid)
				pendingRejoin = append(pendingRejoin, nid)
			}
		}
		// Rejoins can fail under message loss; retry until they land.
		pendingRejoin = rejoin(cluster, lastLeaf, pendingRejoin)
		cluster.MaintainAll()
		checker.CheckDurability(cluster, files, t)
	}

	// Heal: advance past every schedule window, recover all nodes still
	// down, and re-merge the partitioned minority by re-announcing it to
	// the majority (the administrative step a real partition heal needs,
	// since keep-alives only probe known members).
	healTick := cfg.Ticks
	if e := sched.End(); e > healTick {
		healTick = e
	}
	core.SetTick(healTick)
	for i := 0; i < core.Len(); i++ {
		if nid, ok := core.NodeAt(i); ok && !cluster.Alive(nid) {
			cluster.Recover(nid)
			core.RecordChurn(chaos.FaultRecover, nid)
			pendingRejoin = append(pendingRejoin, nid)
		}
	}
	pendingRejoin = rejoin(cluster, lastLeaf, pendingRejoin)
	if len(pendingRejoin) > 0 {
		return nil, fmt.Errorf("experiments: soak: %d nodes failed to rejoin on a clean network", len(pendingRejoin))
	}
	if cfg.PartitionFor > 0 {
		m := cfg.minoritySize()
		roster := cluster.Net.AliveNodes()
		for i := 0; i < m; i++ {
			nid, ok := core.NodeAt(i)
			if !ok || !cluster.Alive(nid) {
				continue
			}
			// Pull state from the full membership: each side of the split
			// has forgotten the other, so a bridge node alone leaves both
			// sides' leaf sets incomplete; the resulting wrong replica
			// sets would strand extra copies.
			seeds := make([]id.Node, 0, len(roster)-1)
			for _, x := range roster {
				if x != nid {
					seeds = append(seeds, x)
				}
			}
			if err := cluster.ByID[nid].Overlay().Rejoin(seeds); err != nil {
				return nil, fmt.Errorf("experiments: soak: partition re-merge: %w", err)
			}
		}
	}
	for r := 0; r < cfg.HealRounds; r++ {
		core.SetTick(healTick + r)
		cluster.MaintainAll()
	}

	// Final invariants: durability plus full convergence.
	finalEpoch := healTick + cfg.HealRounds
	checker.CheckDurability(cluster, files, finalEpoch)
	checker.CheckConverged(cluster, files, finalEpoch)

	// End-to-end sanity: every file must still be retrievable.
	for _, f := range files {
		client := cluster.RandomAliveNode()
		lr, err := client.Lookup(f)
		col.RecordLookup(col.Utilization(), lr.Hops, err == nil && lr.Found, lr.FromCache)
		if err == nil && lr.Found {
			res.LookupsOK++
		}
	}

	res.Fingerprint = core.Fingerprint()
	res.EventCount = core.EventCount()
	res.Faults = core.Counters()
	res.Events = core.Events()
	return res, nil
}

// rejoin attempts Overlay().Rejoin for every listed node, returning the
// nodes whose rejoin still failed (to be retried next tick).
func rejoin(cluster *past.Cluster, lastLeaf map[id.Node][]id.Node, pending []id.Node) []id.Node {
	var still []id.Node
	for _, nid := range pending {
		if err := cluster.ByID[nid].Overlay().Rejoin(lastLeaf[nid]); err != nil {
			still = append(still, nid)
		}
	}
	return still
}

// RenderSoak formats a soak result in the repo's table style.
func RenderSoak(r *SoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos soak: %d nodes, k=%d, %d files, %d ticks (seed %d)\n",
		r.Config.Nodes, r.Config.K, r.Inserted, r.Config.Ticks, r.Config.Seed)
	fmt.Fprintf(&b, "  faults injected: %d\n", r.EventCount)
	for _, kv := range chaos.SortedCounters(r.Faults) {
		fmt.Fprintf(&b, "    %s\n", kv)
	}
	fmt.Fprintf(&b, "  post-heal lookups: %d/%d ok\n", r.LookupsOK, r.Inserted)
	fmt.Fprintf(&b, "  invariant violations: %d\n", len(r.Violations))
	for i, v := range r.Violations {
		if i == 20 {
			fmt.Fprintf(&b, "    ... %d more\n", len(r.Violations)-20)
			break
		}
		fmt.Fprintf(&b, "    %s\n", v)
	}
	fmt.Fprintf(&b, "  fingerprint: %s\n", r.Fingerprint)
	if r.OK() {
		b.WriteString("  RESULT: PASS\n")
	} else {
		b.WriteString("  RESULT: FAIL\n")
	}
	return b.String()
}
