package experiments

import (
	"fmt"
	"strings"

	"past/internal/cache"
	"past/internal/metrics"
	"past/internal/plot"
)

// pointsToSeries converts a metrics series to a plottable one (x in
// percent).
func pointsToSeries(name string, pts []metrics.Point) plot.Series {
	s := plot.Series{Name: name}
	for _, p := range pts {
		s.X = append(s.X, 100*p.Util)
		s.Y = append(s.Y, p.Value)
	}
	return s
}

// StandardRun is the canonical storage run (tpri=0.1, tdiv=0.05, d1,
// l=32) whose collector yields Figures 4, 5, and 6 for the web workload
// and Figure 7 for the filesystem workload.
func StandardRun(sc Scale, kind WorkloadKind, seed int64) (*StorageResult, error) {
	capScale := 1.0
	if kind == FSWorkload {
		// The paper increased every node's capacity by a factor of 10
		// for the filesystem workload (section 5.1, Figure 7).
		capScale = 10
	}
	return RunStorage(StorageConfig{
		Nodes: sc.Nodes,
		Dist:  D1, CapScale: capScale, L: 32,
		TPri: 0.1, TDiv: 0.05, MaxRetries: 3,
		Workload: kind, Seed: seed,
	})
}

// RenderFig2 renders the cumulative-failure-ratio-vs-utilization curves
// of Figure 2 from the Table 3 sweep (one curve per tpri).
func RenderFig2(rows []*StorageResult) string {
	return renderFailureCurves("Figure 2: cumulative failure ratio vs utilization (tpri sweep)",
		"tpri", rows, func(r *StorageResult) float64 { return r.Config.TPri })
}

// RenderFig3 renders Figure 3 from the Table 4 sweep (one curve per
// tdiv).
func RenderFig3(rows []*StorageResult) string {
	return renderFailureCurves("Figure 3: cumulative failure ratio vs utilization (tdiv sweep)",
		"tdiv", rows, func(r *StorageResult) float64 { return r.Config.TDiv })
}

func renderFailureCurves(title, param string, rows []*StorageResult, val func(*StorageResult) float64) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%8s", "util%")
	for _, r := range rows {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("%s=%g", param, val(r)))
	}
	fmt.Fprintln(&b)
	curves := make([][]metrics.Point, len(rows))
	for i, r := range rows {
		curves[i] = r.Collector.CumulativeFailureByUtil(20)
	}
	for step := 1; step <= 20; step++ {
		util := float64(step) / 20
		fmt.Fprintf(&b, "%7.0f%%", util*100)
		for _, c := range curves {
			fmt.Fprintf(&b, " %12s", fmtAt(c, util))
		}
		fmt.Fprintln(&b)
	}
	// The paper draws these on a log y-axis.
	ch := plot.Chart{XLabel: "utilization %", YLabel: "cumulative failure ratio", LogY: true}
	for _, r := range rows {
		ch.Series = append(ch.Series, pointsToSeries(
			fmt.Sprintf("%s=%g", param, val(r)),
			r.Collector.CumulativeFailureByUtil(100)))
	}
	b.WriteString(ch.Render())
	return b.String()
}

// fmtAt finds the last series value at or below util.
func fmtAt(pts []metrics.Point, util float64) string {
	v := -1.0
	for _, p := range pts {
		if p.Util <= util+1e-9 {
			v = p.Value
		}
	}
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.5f", v)
}

// RenderFig4 renders Figure 4: the cumulative ratio of files diverted
// once, twice, and three times, and of insertion failures, against
// utilization.
func RenderFig4(r *StorageResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4: file diversions and insertion failures vs utilization (tpri=0.1, tdiv=0.05)")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %12s\n", "util%", "1 redirect", "2 redirects", "3 redirects", "failures")
	c1 := r.Collector.CumulativeDiversionByUtil(20, 1)
	c2 := r.Collector.CumulativeDiversionByUtil(20, 2)
	c3 := r.Collector.CumulativeDiversionByUtil(20, 3)
	cf := r.Collector.CumulativeFailureByUtil(20)
	for step := 1; step <= 20; step++ {
		util := float64(step) / 20
		fmt.Fprintf(&b, "%7.0f%% %12s %12s %12s %12s\n", util*100,
			fmtAt(c1, util), fmtAt(c2, util), fmtAt(c3, util), fmtAt(cf, util))
	}
	b.WriteString("paper: file diversions negligible below 83% utilization\n")
	return b.String()
}

// RenderFig5 renders Figure 5: the cumulative ratio of replica
// diversions to stored replicas against utilization.
func RenderFig5(r *StorageResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5: cumulative replica-diversion ratio vs utilization (tpri=0.1, tdiv=0.05)")
	fmt.Fprintf(&b, "%8s %14s\n", "util%", "diverted ratio")
	series := r.Collector.DivertedSeries
	// Thin the series to ~20 rows.
	printed := -1.0
	for _, p := range series {
		if p.Util-printed >= 0.05 {
			fmt.Fprintf(&b, "%7.1f%% %14.4f\n", 100*p.Util, p.Ratio)
			printed = p.Util
		}
	}
	if len(series) > 0 {
		last := series[len(series)-1]
		fmt.Fprintf(&b, "%7.1f%% %14.4f (final)\n", 100*last.Util, last.Ratio)
	}
	ch := plot.Chart{XLabel: "utilization %", YLabel: "diverted / stored replicas"}
	s := plot.Series{Name: "replica diversion ratio"}
	for _, p := range series {
		s.X = append(s.X, 100*p.Util)
		s.Y = append(s.Y, p.Ratio)
	}
	ch.Series = []plot.Series{s}
	b.WriteString(ch.Render())
	b.WriteString("paper: <10% of stored replicas diverted at 80% utilization\n")
	return b.String()
}

// RenderFig6 renders Figure 6 (and, for the filesystem workload,
// Figure 7): the sizes of failed insertions against the utilization at
// which they failed, plus the cumulative failure ratio.
func RenderFig6(r *StorageResult, title string) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	scatter := r.Collector.FailedInsertScatter()

	// Scatter summary per utilization decile: count, min size, median
	// size, max size of failures.
	fmt.Fprintf(&b, "%10s %8s %12s %12s %12s %10s\n",
		"util range", "fails", "min size", "median size", "max size", "cum. fail")
	cf := r.Collector.CumulativeFailureByUtil(20)
	for d := 0; d < 20; d++ {
		lo, hi := float64(d)/20, float64(d+1)/20
		var sizes []int64
		for _, p := range scatter {
			if p.Util >= lo && p.Util < hi {
				sizes = append(sizes, int64(p.Value))
			}
		}
		if len(sizes) == 0 {
			continue
		}
		mn, md, mx := sizeStats(sizes)
		fmt.Fprintf(&b, "%4.0f-%3.0f%% %8d %12d %12d %12d %10s\n",
			lo*100, hi*100, len(sizes), mn, md, mx, fmtAt(cf, hi))
	}
	fmt.Fprintf(&b, "first failure of an average-size file: %s\n", firstAvgFailure(r))

	// The paper's scatter: failed-insert sizes (log scale) against the
	// utilization at which they failed.
	sc := plot.Series{Name: "failed insertion", Marker: '.'}
	for _, p := range scatter {
		sc.X = append(sc.X, 100*p.Util)
		sc.Y = append(sc.Y, p.Value)
	}
	ch := plot.Chart{XLabel: "utilization %", YLabel: "failed file size (bytes)", LogY: true,
		Series: []plot.Series{sc}}
	b.WriteString(ch.Render())
	return b.String()
}

func sizeStats(sizes []int64) (mn, md, mx int64) {
	mn, mx = sizes[0], sizes[0]
	for _, s := range sizes {
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	// Median by partial selection (sizes is small per bucket).
	cp := append([]int64(nil), sizes...)
	for i := 0; i < len(cp); i++ {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return mn, cp[len(cp)/2], mx
}

// firstAvgFailure reports the utilization at which a file of at most the
// workload's mean size (10,517 B for NLANR) first failed — the paper
// reports 90.5%.
func firstAvgFailure(r *StorageResult) string {
	var meanSize float64
	if r.Totals.Total > 0 {
		var sum float64
		for _, s := range r.Collector.Inserts {
			sum += float64(s.Size)
		}
		meanSize = sum / float64(r.Totals.Total)
	}
	for _, s := range r.Collector.Inserts {
		if !s.OK && float64(s.Size) <= meanSize {
			return fmt.Sprintf("%.1f%% utilization (size %d <= mean %.0f; paper: 90.5%%)",
				100*s.Util, s.Size, meanSize)
		}
	}
	return "never"
}

// Fig8Policies are the cache policies Figure 8 compares.
var Fig8Policies = []cache.Policy{cache.GDS, cache.LRU, cache.None}

// RunFig8 replays the caching experiment once per policy.
func RunFig8(sc Scale, seed int64) ([]*CachingResult, error) {
	var out []*CachingResult
	for _, pol := range Fig8Policies {
		r, err := RunCaching(CachingConfig{
			Nodes:       sc.CacheNodes,
			UniqueFiles: 0, // derive from overshoot
			Clients:     sc.Clients,
			Sites:       sc.Sites,
			Policy:      pol,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderFig8 renders Figure 8: global cache hit rate and mean routing
// hops against utilization for GD-S, LRU, and no caching.
func RenderFig8(rows []*CachingResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: cache hit ratio and mean routing hops vs utilization")
	fmt.Fprintf(&b, "%8s", "util%")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s %10s", r.Config.Policy.String()+":hit", r.Config.Policy.String()+":hops")
	}
	fmt.Fprintln(&b)
	buckets := len(rows[0].Series.BucketLo)
	for i := 0; i < buckets; i++ {
		any := false
		for _, r := range rows {
			if r.Series.Count[i] > 0 {
				any = true
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(&b, "%7.0f%%", rows[0].Series.BucketLo[i]*100)
		for _, r := range rows {
			if r.Series.Count[i] == 0 {
				fmt.Fprintf(&b, " %10s %10s", "-", "-")
			} else {
				fmt.Fprintf(&b, " %10.3f %10.2f", r.Series.HitRate[i], r.Series.Hops[i])
			}
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "overall:")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %s hit=%.3f hops=%.2f", r.Config.Policy, r.HitRate, r.MeanHops)
	}
	fmt.Fprintln(&b)

	hitChart := plot.Chart{XLabel: "utilization %", YLabel: "global cache hit rate"}
	hopChart := plot.Chart{XLabel: "utilization %", YLabel: "mean routing hops"}
	for _, r := range rows {
		hs := plot.Series{Name: r.Config.Policy.String()}
		ps := plot.Series{Name: r.Config.Policy.String()}
		for i, lo := range r.Series.BucketLo {
			if r.Series.Count[i] == 0 {
				continue
			}
			hs.X = append(hs.X, 100*lo)
			hs.Y = append(hs.Y, r.Series.HitRate[i])
			ps.X = append(ps.X, 100*lo)
			ps.Y = append(ps.Y, r.Series.Hops[i])
		}
		if r.Config.Policy != cache.None {
			hitChart.Series = append(hitChart.Series, hs)
		}
		hopChart.Series = append(hopChart.Series, ps)
	}
	b.WriteString(hitChart.Render())
	b.WriteString(hopChart.Render())
	b.WriteString("paper: GD-S >= LRU hit rate; hops with caching below no-caching even at 99% utilization\n")
	return b.String()
}
