package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"past/internal/cache"
	"past/internal/id"
	"past/internal/past"
	"past/internal/trace"
)

// The overhead experiment quantifies section 3.3's cost accounting:
// "The overhead of diverting a replica is an additional entry in the
// file tables of two nodes, two additional RPCs during insert and one
// additional RPC during a lookup that reaches the diverted copy", and
// the claim that the overhead "remains acceptable" even at high
// utilization. It measures overlay messages per insert and fetch
// distance per lookup as utilization rises.

// OverheadBucket aggregates one utilization decile.
type OverheadBucket struct {
	UtilLo        float64
	Inserts       int
	MsgsPerInsert float64
	Lookups       int
	HopsPerLookup float64
	IndirectPct   float64 // lookups that chased a diverted-replica pointer
}

// OverheadResult is the measured series.
type OverheadResult struct {
	Buckets   []OverheadBucket
	FinalUtil float64
	// ByType decomposes total traffic by message type (whole run,
	// normalized per insert), which makes the paper's "two additional
	// RPCs" accounting directly visible: the diversion-related types
	// (free-space queries, divert stores, pointer installs) appear only
	// once diversion begins.
	ByType map[string]float64
}

// RunOverhead replays the web workload, sampling per-insert message
// counts from the emulated network and probing lookups of previously
// inserted files (caching disabled so fetch distance reflects replica
// placement, not cache luck).
func RunOverhead(sc Scale, seed int64) (*OverheadResult, error) {
	cfg := pastConfig(4, 32, 5, 0.1, 0.05, 3, cache.None, nil)
	caps := D1.Sample(rand.New(rand.NewSource(seed^0xCAFE)), sc.Nodes, 1)
	var totalCap int64
	for _, c := range caps {
		totalCap += c
	}
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        sc.Nodes,
		Cfg:      cfg,
		Capacity: func(i int, _ *rand.Rand) int64 { return caps[i] },
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}

	w := trace.InsertOnly(filesFor(D1, sc.Nodes, 5, 1, webMeanSize, DefaultOvershoot),
		trace.NLANRSizes(), seed)
	rng := rand.New(rand.NewSource(seed ^ 0x0ead))

	const buckets = 10
	type agg struct {
		inserts, lookups, indirect int
		msgs, hops                 float64
	}
	aggs := make([]agg, buckets)
	bucketOf := func() int {
		u := float64(cluster.StoredBytes()) / float64(totalCap)
		b := int(u * buckets)
		if b >= buckets {
			b = buckets - 1
		}
		return b
	}

	var inserted []id.File
	for i, ev := range w.Events {
		b := bucketOf()
		client := cluster.Nodes[rng.Intn(len(cluster.Nodes))]
		before := cluster.Net.Messages()
		res, err := client.Insert(past.InsertSpec{
			Name: trace.FileName(ev.File), Size: ev.Size, Salt: uint64(ev.File) + 1,
		})
		if err != nil {
			return nil, err
		}
		aggs[b].inserts++
		aggs[b].msgs += float64(cluster.Net.Messages() - before)
		if res.OK {
			inserted = append(inserted, res.FileID)
		}

		// Probe lookups every 50 inserts.
		if i%50 == 0 && len(inserted) > 0 {
			for p := 0; p < 5; p++ {
				f := inserted[rng.Intn(len(inserted))]
				lr, err := cluster.Nodes[rng.Intn(len(cluster.Nodes))].Lookup(f)
				if err != nil {
					return nil, err
				}
				if !lr.Found {
					continue
				}
				lb := bucketOf()
				aggs[lb].lookups++
				aggs[lb].hops += float64(lr.Hops)
				if lr.Indirect {
					aggs[lb].indirect++
				}
			}
		}
	}

	out := &OverheadResult{FinalUtil: cluster.Utilization(), ByType: map[string]float64{}}
	totalInserts := 0
	for _, a := range aggs {
		totalInserts += a.inserts
	}
	if totalInserts > 0 {
		for name, count := range cluster.Net.MessagesByType() {
			out.ByType[name] = float64(count) / float64(totalInserts)
		}
	}
	for b, a := range aggs {
		if a.inserts == 0 && a.lookups == 0 {
			continue
		}
		ob := OverheadBucket{UtilLo: float64(b) / buckets, Inserts: a.inserts, Lookups: a.lookups}
		if a.inserts > 0 {
			ob.MsgsPerInsert = a.msgs / float64(a.inserts)
		}
		if a.lookups > 0 {
			ob.HopsPerLookup = a.hops / float64(a.lookups)
			ob.IndirectPct = 100 * float64(a.indirect) / float64(a.lookups)
		}
		out.Buckets = append(out.Buckets, ob)
	}
	return out, nil
}

// RenderOverhead formats the series.
func RenderOverhead(r *OverheadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Storage-management overhead vs utilization (section 3.3)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %10s %12s %12s\n",
		"util", "inserts", "msgs/insert", "lookups", "hops/lookup", "indirect%")
	for _, ob := range r.Buckets {
		fmt.Fprintf(&b, "%6.0f%%+ %10d %12.1f %10d %12.2f %11.1f%%\n",
			100*ob.UtilLo, ob.Inserts, ob.MsgsPerInsert, ob.Lookups, ob.HopsPerLookup, ob.IndirectPct)
	}
	if len(r.ByType) > 0 {
		fmt.Fprintf(&b, "message mix over the whole run (per insert):\n")
		names := make([]string, 0, len(r.ByType))
		for name := range r.ByType {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  %-32s %8.2f\n", name, r.ByType[name])
		}
	}
	b.WriteString("paper: a diverted replica costs 2 extra insert RPCs and 1 extra lookup RPC;\n")
	b.WriteString("overhead moderate below 95% utilization and acceptable beyond\n")
	b.WriteString("(note: this implementation also queries leaf-set free space explicitly at\n")
	b.WriteString("diversion time, which a deployment piggybacks on keep-alives)\n")
	return b.String()
}
