package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"past/internal/cache"
	"past/internal/id"
	"past/internal/metrics"
	"past/internal/past"
	"past/internal/topology"
	"past/internal/trace"
)

// CachingConfig parameterizes the section 5.2 caching experiment
// (Figure 8): the NLANR-like trace replayed with inserts and lookups
// issued from client-mapped nodes, measuring global cache hit rate and
// mean routing hops as utilization rises.
type CachingConfig struct {
	Nodes int
	// UniqueFiles is the URL population; 0 derives it from the overshoot
	// ratio so the trace drives utilization toward 100%, as the paper's
	// did.
	UniqueFiles int
	// Requests defaults to ~2.15x UniqueFiles, the paper's ratio.
	Requests       int
	Clients, Sites int
	Policy         cache.Policy
	// CacheFrac is the insertion-policy parameter c (paper: 1).
	CacheFrac float64

	Dist      CapDist
	Overshoot float64

	B, L, K    int
	TPri, TDiv float64
	MaxRetries int

	Seed int64
}

func (c CachingConfig) withDefaults() CachingConfig {
	if c.Dist.Name == "" {
		c.Dist = D1
	}
	if c.Overshoot == 0 {
		c.Overshoot = DefaultOvershoot
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.UniqueFiles == 0 {
		// A Zipf(0.8) request stream at the paper's 2.15 requests/URL
		// ratio references only ~61% of the URL population; the unseen
		// tail never gets inserted. Inflate the population so the
		// *inserted* bytes reach the storage overshoot, pushing the run
		// to the high utilizations Figure 8's right-hand side covers.
		c.UniqueFiles = filesFor(c.Dist, c.Nodes, c.K, 1, webMeanSize, c.Overshoot) * 100 / 61
	}
	if c.Requests == 0 {
		c.Requests = c.UniqueFiles * 215 / 100
	}
	if c.Clients == 0 {
		c.Clients = 775
	}
	if c.Sites == 0 {
		c.Sites = 8
	}
	if c.CacheFrac == 0 {
		c.CacheFrac = 1
	}
	if c.B == 0 {
		c.B = 4
	}
	if c.L == 0 {
		c.L = 32
	}
	if c.TPri == 0 {
		c.TPri = 0.1
	}
	if c.TDiv == 0 {
		c.TDiv = 0.05
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	return c
}

// CachingResult carries Figure 8's data for one replacement policy.
type CachingResult struct {
	Config    CachingConfig
	Collector *metrics.Collector
	// Series buckets lookups by the utilization at request time.
	Series metrics.LookupSeries
	// Global aggregates across the whole run.
	MeanHops, HitRate float64
	Lookups           int
	FinalUtil         float64
}

// RunCaching replays a web trace with the given cache policy.
func RunCaching(cfg CachingConfig) (*CachingResult, error) {
	cfg = cfg.withDefaults()
	spec := trace.DefaultWebSpec(cfg.UniqueFiles, cfg.Seed)
	spec.Requests = cfg.Requests
	spec.Clients = cfg.Clients
	spec.Sites = cfg.Sites
	w := trace.WebTrace(spec)

	capRng := rand.New(rand.NewSource(cfg.Seed ^ 0xCAFE))
	caps := cfg.Dist.Sample(capRng, cfg.Nodes, 1)
	var totalCap int64
	for _, c := range caps {
		totalCap += c
	}

	col := metrics.NewCollector(totalCap, cfg.UniqueFiles/500+1)
	pcfg := pastConfig(cfg.B, cfg.L, cfg.K, cfg.TPri, cfg.TDiv, cfg.MaxRetries, cfg.Policy, col)
	pcfg.CacheFrac = cfg.CacheFrac
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        cfg.Nodes,
		Cfg:      pcfg,
		Capacity: func(i int, _ *rand.Rand) int64 { return caps[i] },
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: caching cluster: %w", err)
	}

	clientNodes := mapClientsToNodes(cluster, w, cfg.Seed)

	// fileIDs tracks the fileId each unique file ended up under (file
	// diversion may re-salt them).
	fileIDs := make(map[int32]id.File, w.Files)
	for _, ev := range w.Events {
		node := clientNodes[ev.Client]
		util := col.Utilization()
		switch ev.Op {
		case trace.OpInsert:
			res, err := node.Insert(past.InsertSpec{
				Name: trace.FileName(ev.File),
				Size: ev.Size,
				Salt: uint64(ev.File) + 1,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: caching insert: %w", err)
			}
			col.RecordInsert(util, ev.Size, res.Attempts, res.OK, res.Diverted)
			if res.OK {
				fileIDs[ev.File] = res.FileID
			}
		case trace.OpLookup:
			f, ok := fileIDs[ev.File]
			if !ok {
				continue // the insert failed; the paper skips such URLs too
			}
			res, err := node.Lookup(f)
			if err != nil {
				return nil, fmt.Errorf("experiments: caching lookup: %w", err)
			}
			col.RecordLookup(util, res.Hops, res.Found, res.FromCache)
		}
	}

	meanHops, hitRate, found := col.GlobalLookupStats()
	return &CachingResult{
		Config:    cfg,
		Collector: col,
		Series:    col.LookupsByUtil(50),
		MeanHops:  meanHops,
		HitRate:   hitRate,
		Lookups:   found,
		FinalUtil: col.Utilization(),
	}, nil
}

// mapClientsToNodes implements the paper's client mapping: requests from
// clients of the same trace site are issued from PAST nodes close to
// each other in the emulated network. Each site gets a random center;
// its clients are spread over the nodes nearest that center.
func mapClientsToNodes(cluster *past.Cluster, w *trace.Workload, seed int64) []*past.Node {
	r := rand.New(rand.NewSource(seed ^ 0x517e5))
	centers := make([]topology.Point, w.Sites)
	for i := range centers {
		centers[i] = topology.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
	}
	// Pool size per site: enough nodes that one site doesn't collapse
	// onto a single node, small enough to stay "close".
	poolSize := len(cluster.Nodes) / (2 * w.Sites)
	if poolSize < 1 {
		poolSize = 1
	}
	pools := make([][]*past.Node, w.Sites)
	for s := range pools {
		type nd struct {
			n *past.Node
			d float64
		}
		all := make([]nd, 0, len(cluster.Nodes))
		for _, n := range cluster.Nodes {
			p, _ := cluster.Net.Position(n.ID())
			all = append(all, nd{n: n, d: topology.Distance(p, centers[s])})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < poolSize; i++ {
			pools[s] = append(pools[s], all[i].n)
		}
	}
	clients := make([]*past.Node, w.Clients)
	perSiteIdx := make([]int, w.Sites)
	for c := 0; c < w.Clients; c++ {
		s := w.SiteOf[c]
		pool := pools[s]
		clients[c] = pool[perSiteIdx[s]%len(pool)]
		perSiteIdx[s]++
	}
	return clients
}
