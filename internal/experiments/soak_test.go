package experiments

import (
	"bytes"
	"strings"
	"testing"

	"past/internal/admit"
	"past/internal/obs"
)

func TestSoakZeroViolations(t *testing.T) {
	r, err := RunSoak(SoakConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Inserted == 0 {
		t.Fatal("no files inserted")
	}
	if r.EventCount == 0 {
		t.Fatal("schedule injected no faults")
	}
	if len(r.Violations) != 0 {
		t.Fatalf("invariant violations:\n%s", RenderSoak(r))
	}
	if r.LookupsOK != r.Inserted {
		t.Fatalf("post-heal lookups: %d/%d ok", r.LookupsOK, r.Inserted)
	}
	if !r.OK() {
		t.Fatal("OK() must be true on a clean run")
	}
	// The metrics wiring must have observed the same faults the core
	// counted.
	var metered int64
	for _, v := range r.Collector.Faults() {
		metered += v
	}
	if metered == 0 {
		t.Fatal("collector saw no faults")
	}
	if r.Collector.TotalViolations() != 0 {
		t.Fatalf("collector violations = %v", r.Collector.Violations())
	}
}

func TestSoakReproducible(t *testing.T) {
	cfg := SoakConfig{Seed: 7, Nodes: 25, Files: 30, Ticks: 9}
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same config produced different fingerprints:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	if a.EventCount != b.EventCount || a.LookupsOK != b.LookupsOK || a.Inserted != b.Inserted {
		t.Fatalf("same config produced different outcomes: %+v vs %+v", a, b)
	}
	c, err := RunSoak(SoakConfig{Seed: 8, Nodes: 25, Files: 30, Ticks: 9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seed produced an identical fingerprint")
	}
}

// TestSoakResilienceImproves is the layer's headline validation: under
// one seeded chaos schedule with ≥10% message drop, fault-phase lookup
// success with the resilience layer on must strictly exceed the
// fail-fast baseline, with zero invariant violations either way.
func TestSoakResilienceImproves(t *testing.T) {
	c, err := CompareSoak(SoakConfig{Seed: 3, Drop: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Off.OK() {
		t.Fatalf("baseline run violated invariants:\n%s", RenderSoak(c.Off))
	}
	if !c.On.OK() {
		t.Fatalf("resilience run violated invariants:\n%s", RenderSoak(c.On))
	}
	if c.On.FaultLookups != c.Off.FaultLookups || c.On.FaultInserts != c.Off.FaultInserts {
		t.Fatalf("paired runs issued different request streams: %d/%d lookups, %d/%d inserts",
			c.Off.FaultLookups, c.On.FaultLookups, c.Off.FaultInserts, c.On.FaultInserts)
	}
	if c.On.FaultLookupsOK <= c.Off.FaultLookupsOK {
		t.Fatalf("resilience layer must strictly improve fault-phase lookups:\n%s", RenderSoakComparison(c))
	}
	if c.On.FaultInsertsOK < c.Off.FaultInsertsOK {
		t.Fatalf("resilience layer made fault-phase inserts worse:\n%s", RenderSoakComparison(c))
	}
	// The improvement must come from the layer actually working, and the
	// baseline must not have used it.
	if c.On.Collector.Retries()+c.On.Collector.Hedges()+c.On.Collector.Reroutes() == 0 {
		t.Fatal("resilience run reported no layer activity")
	}
	if c.Off.Collector.Retries()+c.Off.Collector.Hedges() != 0 {
		t.Fatal("baseline run must not retry or hedge")
	}
}

// TestSoakResilienceReproducible asserts determinism with the layer on:
// identical config (sequential failover hedging, zero backoff) must
// reproduce the fault fingerprint and every traffic counter.
func TestSoakResilienceReproducible(t *testing.T) {
	cfg := SoakConfig{Seed: 5, Nodes: 25, Files: 30, Ticks: 9, Drop: 0.10, Resilience: true}
	a, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("resilience-on runs diverged:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	if a.FaultLookupsOK != b.FaultLookupsOK || a.FaultInsertsOK != b.FaultInsertsOK ||
		a.EventCount != b.EventCount || a.LookupsOK != b.LookupsOK {
		t.Fatalf("resilience-on runs produced different outcomes: %+v vs %+v", a, b)
	}
	if a.Collector.Retries() != b.Collector.Retries() || a.Collector.Hedges() != b.Collector.Hedges() ||
		a.Collector.Reroutes() != b.Collector.Reroutes() {
		t.Fatal("resilience-on runs recorded different layer activity")
	}
}

func TestBuildSoakScheduleShape(t *testing.T) {
	cfg := SoakConfig{Seed: 3}
	s := BuildSoakSchedule(cfg)
	if len(s.Links) != 1 || s.Links[0].Drop == 0 {
		t.Fatalf("links = %+v", s.Links)
	}
	if len(s.Partitions) != 1 || !s.Partitions[0].Symmetric {
		t.Fatalf("partitions = %+v", s.Partitions)
	}
	if len(s.Churn) == 0 {
		t.Fatal("no churn events")
	}
	// Every churn victim must be outside the partitioned minority.
	m := cfg.withDefaults().minoritySize()
	for _, ev := range s.Churn {
		for _, i := range ev.Fail {
			if i < m {
				t.Fatalf("churn victim %d inside minority (size %d)", i, m)
			}
		}
	}
	// Schedules are deterministic.
	s2 := BuildSoakSchedule(cfg)
	if len(s2.Churn) != len(s.Churn) {
		t.Fatal("schedule not deterministic")
	}
	for i := range s.Churn {
		if s.Churn[i].At != s2.Churn[i].At {
			t.Fatal("schedule not deterministic")
		}
	}
}

// TestSoakObservabilityPreservesFingerprint is the determinism
// guarantee of the observability layer: running the identical schedule
// with tracing, the stats registry snapshots, and the JSONL event
// stream all active must reproduce the bare run's fingerprint
// bit-for-bit — observation draws no RNG and alters no message flow.
func TestSoakObservabilityPreservesFingerprint(t *testing.T) {
	base := SoakConfig{Seed: 6, Nodes: 25, Files: 25, Ticks: 8}
	plain, err := RunSoak(base)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	observed := base
	observed.TraceEvery = 2
	observed.Events = obs.NewEventLog(&buf)
	r, err := RunSoak(observed)
	if err != nil {
		t.Fatal(err)
	}
	if err := observed.Events.Close(); err != nil {
		t.Fatal(err)
	}

	if r.Fingerprint != plain.Fingerprint {
		t.Fatalf("tracing+events changed the fingerprint:\n  off %s\n  on  %s",
			plain.Fingerprint, r.Fingerprint)
	}
	if r.Tracer == nil || r.Tracer.Sampled() == 0 {
		t.Fatal("observed run sampled no traces")
	}

	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("emitted event stream does not parse: %v", err)
	}
	byKind := obs.CountByKind(evs)
	if byKind["phase"] < 3 {
		t.Fatalf("want >=3 phase events (seed, fault, heal), got %d", byKind["phase"])
	}
	if byKind["tick"] != base.withDefaults().Ticks {
		t.Fatalf("want %d tick events, got %d", base.withDefaults().Ticks, byKind["tick"])
	}
	if byKind["fault"] == 0 || byKind["trace"] == 0 {
		t.Fatalf("want fault and trace events, got %v", byKind)
	}
	if byKind["summary"] != 1 {
		t.Fatalf("want exactly one summary event, got %d", byKind["summary"])
	}
}

// TestSoakPhaseStats sanity-checks the per-phase registry deltas the
// comparison report prints.
func TestSoakPhaseStats(t *testing.T) {
	r, err := RunSoak(SoakConfig{Seed: 4, Nodes: 25, Files: 25, Ticks: 8, Drop: 0.10, Resilience: true})
	if err != nil {
		t.Fatal(err)
	}
	fp, hp := r.FaultPhase, r.HealPhase
	if fp.Faults == 0 {
		t.Fatal("fault phase recorded no chaos events")
	}
	if fp.MsgsOut == 0 || hp.MsgsOut == 0 {
		t.Fatalf("phases recorded no traffic: fault=%d heal=%d msgs", fp.MsgsOut, hp.MsgsOut)
	}
	if fp.Lookups != r.FaultLookups || fp.LookupsOK != r.FaultLookupsOK {
		t.Fatalf("fault phase lookups %d/%d, result says %d/%d",
			fp.LookupsOK, fp.Lookups, r.FaultLookupsOK, r.FaultLookups)
	}
	if hp.Lookups != r.Inserted || hp.LookupsOK != r.LookupsOK {
		t.Fatalf("heal phase lookups %d/%d, result says %d/%d",
			hp.LookupsOK, hp.Lookups, r.LookupsOK, r.Inserted)
	}
	if hp.LookupsOK > 0 && hp.MeanHops <= 0 {
		t.Fatal("heal phase mean hops not accumulated")
	}
	// The collector and the registry deltas observe the same retries.
	if got, want := fp.Retries+hp.Retries, r.Collector.Retries(); got != want {
		t.Fatalf("registry retries %d != collector retries %d", got, want)
	}
	out := RenderSoakComparison(&SoakComparison{Off: r, On: r})
	if !strings.Contains(out, "per-phase registry deltas") || !strings.Contains(out, "mean-hops") {
		t.Fatalf("comparison report missing per-phase deltas:\n%s", out)
	}
}

// TestSoakWithAdmissionShedsDeterministically puts every soak node
// behind a tight admission controller: the run must stay reproducible
// (the controllers are pinned to virtual time), record hop-level
// rejections, and emit the distinct "overload" event kind.
func TestSoakWithAdmissionShedsDeterministically(t *testing.T) {
	cfg := SoakConfig{
		Seed: 5, Nodes: 20, Files: 25, Ticks: 8, FaultOps: 20,
		Admit: &admit.Config{Rate: 2, Burst: 2, Depth: 2},
	}
	var buf bytes.Buffer
	acfg := cfg
	acfg.Events = obs.NewEventLog(&buf)
	a, err := RunSoak(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := acfg.Events.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("admission broke reproducibility:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	if a.FaultLookupsOK != b.FaultLookupsOK || a.FaultSheds != b.FaultSheds {
		t.Fatalf("admission broke traffic determinism: %d/%d ok, %d/%d shed",
			a.FaultLookupsOK, b.FaultLookupsOK, a.FaultSheds, b.FaultSheds)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := obs.CountByKind(evs)["overload"]; n == 0 {
		t.Fatalf("no overload events with Rate=2 admission and %d ops/tick; kinds: %v",
			cfg.FaultOps, obs.CountByKind(evs))
	}
	if !strings.Contains(RenderSoak(a), "admission:") {
		t.Fatalf("render missing admission line:\n%s", RenderSoak(a))
	}
}
