package experiments

import (
	"strings"
	"testing"

	"past/internal/loadgen"
)

// smallOverload keeps the sweep cheap: two rates bracketing
// saturation, small cluster, short runs.
func smallOverload(seed int64) OverloadConfig {
	return OverloadConfig{
		Nodes:       8,
		NodeRate:    20, // capacity 160/s
		Multipliers: []float64{0.5, 2},
		Requests:    800,
		Workload:    loadgen.Workload{Files: 40},
		Seed:        seed,
	}
}

func TestRunOverloadFingerprintBitIdentical(t *testing.T) {
	a, err := RunOverload(smallOverload(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOverload(smallOverload(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ across identical runs:\n%s\n%s",
			a.Fingerprint, b.Fingerprint)
	}
	for i := range a.Points {
		if *a.Points[i].Result != *b.Points[i].Result {
			t.Fatalf("point %d diverged:\n%+v\n%+v",
				i, a.Points[i].Result, b.Points[i].Result)
		}
	}
	c, err := RunOverload(smallOverload(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

func TestRunOverloadSheddingWinsAtTwiceCapacity(t *testing.T) {
	res, err := RunOverload(smallOverload(7))
	if err != nil {
		t.Fatal(err)
	}
	off, on := res.At(2, false), res.At(2, true)
	if off == nil || on == nil {
		t.Fatal("sweep missing the 2x points")
	}
	if off.Result.Shed != 0 {
		t.Fatalf("unbounded-queue run shed %d requests", off.Result.Shed)
	}
	if on.Result.Shed == 0 {
		t.Fatal("admission control shed nothing at 2x capacity")
	}
	if on.Goodput() <= off.Goodput() {
		t.Fatalf("goodput with shedding %.1f/s <= without %.1f/s",
			on.Goodput(), off.Goodput())
	}
	if on.Result.P(99) >= off.Result.P(99) {
		t.Fatalf("p99 with shedding %v >= without %v",
			on.Result.P(99), off.Result.P(99))
	}
	// Below saturation admission control must be invisible: nothing
	// shed, goodput essentially identical.
	uOff, uOn := res.At(0.5, false), res.At(0.5, true)
	if uOn.Result.Shed != 0 {
		t.Fatalf("shed %d requests at half capacity", uOn.Result.Shed)
	}
	if uOn.Result.Good != uOff.Result.Good {
		t.Fatalf("underload goodput changed with admission on: %d vs %d",
			uOn.Result.Good, uOff.Result.Good)
	}
}

func TestRenderOverload(t *testing.T) {
	res, err := RunOverload(OverloadConfig{
		Nodes:       5,
		NodeRate:    20,
		Multipliers: []float64{1},
		Requests:    200,
		Workload:    loadgen.Workload{Files: 20},
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderOverload(res)
	for _, want := range []string{"Overload sweep", "goodput", "p999", "fingerprint:", res.Fingerprint} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got < 4 {
		t.Fatalf("render too short (%d lines):\n%s", got, out)
	}
}
