package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"past/internal/cache"
	"past/internal/frag"
	"past/internal/past"
	"past/internal/stats"
	"past/internal/trace"
)

// The fragmentation experiment evaluates the paper's section 3.4
// recourse ("retry with a smaller file size, e.g. by fragmenting the
// file") and section 3.6 file-encoding sketch: at high utilization,
// large files that fail whole-file insertion succeed when fragmented,
// and Reed-Solomon coded fragments cut the storage overhead further.

// FragmentationResult compares insertion strategies for large files on
// a nearly full system.
type FragmentationResult struct {
	Utilization float64 // utilization when the large-file batch ran
	Files       int     // large files attempted per strategy

	WholeOK     int
	FragOK      int
	RSOK        int
	WholeBytes  int64 // replica bytes consumed by successful inserts
	FragBytes   int64
	RSBytes     int64
	FetchOKFrag int // fragmented objects retrievable afterwards
	FetchOKRS   int
}

// RunFragmentation fills a cluster to high utilization with the web
// workload, then attempts a batch of large files three ways: whole-file
// insertion, replicated fragments, and RS(8,4) fragments.
func RunFragmentation(sc Scale, seed int64) (*FragmentationResult, error) {
	cfg := pastConfig(4, 32, 5, 0.1, 0.05, 3, cache.None, nil)
	caps := D1.Sample(rand.New(rand.NewSource(seed^0xCAFE)), sc.Nodes, 1)
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        sc.Nodes,
		Cfg:      cfg,
		Capacity: func(i int, _ *rand.Rand) int64 { return caps[i] },
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}

	// Fill to ~85% utilization with the standard workload.
	fill := trace.InsertOnly(
		filesFor(D1, sc.Nodes, 5, 1, webMeanSize, 0.85),
		trace.NLANRSizes(), seed)
	rng := rand.New(rand.NewSource(seed ^ 0xF11))
	for _, ev := range fill.Events {
		client := cluster.Nodes[rng.Intn(len(cluster.Nodes))]
		if _, err := client.Insert(past.InsertSpec{
			Name: trace.FileName(ev.File), Size: ev.Size, Salt: uint64(ev.File) + 1,
		}); err != nil {
			return nil, err
		}
	}

	res := &FragmentationResult{Utilization: cluster.Utilization(), Files: 20}

	// Large files: 2-6 MB, far beyond tpri x free on typical nodes.
	sizes := make([]int, res.Files)
	szr := stats.NewRand(seed ^ 0x51e)
	for i := range sizes {
		sizes[i] = 2<<20 + szr.Intn(4<<20)
	}

	node := cluster.Nodes[0]
	fragStore, err := frag.NewStore(node, frag.Options{FragmentSize: 64 << 10})
	if err != nil {
		return nil, err
	}
	rsStore, err := frag.NewStore(node, frag.Options{Mode: frag.ReedSolomon, DataShards: 8, ParityShards: 4, FragmentSize: 64 << 10})
	if err != nil {
		return nil, err
	}

	content := make([]byte, 6<<20)
	szr.Read(content)
	for i, size := range sizes {
		payload := content[:size]

		w, err := node.Insert(past.InsertSpec{Name: fmt.Sprintf("whole-%d", i), Size: int64(size)})
		if err != nil {
			return nil, err
		}
		if w.OK {
			res.WholeOK++
			res.WholeBytes += int64(size) * int64(w.Stored)
		}

		f, err := fragStore.Insert(fmt.Sprintf("frag-%d", i), payload)
		if err == nil {
			res.FragOK++
			res.FragBytes += f.StoredBytes
			if _, err := fragStore.Fetch(f.ManifestID); err == nil {
				res.FetchOKFrag++
			}
		}

		r, err := rsStore.Insert(fmt.Sprintf("rs-%d", i), payload)
		if err == nil {
			res.RSOK++
			res.RSBytes += r.StoredBytes
			if _, err := rsStore.Fetch(r.ManifestID); err == nil {
				res.FetchOKRS++
			}
		}
	}
	return res, nil
}

// RenderFragmentation formats the comparison.
func RenderFragmentation(r *FragmentationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fragmentation at %.1f%% utilization: %d large files (2-6 MB) per strategy\n",
		100*r.Utilization, r.Files)
	fmt.Fprintf(&b, "%-22s %9s %14s %12s\n", "strategy", "succeeded", "stored bytes", "retrievable")
	fmt.Fprintf(&b, "%-22s %8d/%d %14d %12s\n", "whole file (k=5)", r.WholeOK, r.Files, r.WholeBytes, "-")
	fmt.Fprintf(&b, "%-22s %8d/%d %14d %9d/%d\n", "fragments (k=5)", r.FragOK, r.Files, r.FragBytes, r.FetchOKFrag, r.FragOK)
	fmt.Fprintf(&b, "%-22s %8d/%d %14d %9d/%d\n", "RS(8,4) fragments", r.RSOK, r.Files, r.RSBytes, r.FetchOKRS, r.RSOK)
	b.WriteString("paper 3.4/3.6: fragmentation is the recourse for failed large inserts;\n")
	b.WriteString("RS coding cuts storage overhead from k to (n+m)/n at equal loss tolerance\n")
	return b.String()
}
