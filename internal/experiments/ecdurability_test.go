package experiments

import (
	"strings"
	"testing"

	"past/internal/ec"
)

func TestECDurabilityFingerprintBitIdentical(t *testing.T) {
	cfg := ECDurabilityConfig{Seed: 42}
	a, err := RunECDurability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunECDurability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	c, err := RunECDurability(ECDurabilityConfig{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

// The acceptance sweep: at equal 3.0x storage overhead, EC(4,8) with
// repair on matches or beats k=3 replication, decays without repair,
// and no node ever exceeds its per-epoch repair byte cap.
func TestECDurabilityAcceptance(t *testing.T) {
	r, err := RunECDurability(ECDurabilityConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckECDurability(r); err != nil {
		t.Fatal(err)
	}

	// The cap witness is not vacuous: the sweep's constrained budget
	// must actually defer repairs somewhere.
	var deferred int64
	for _, p := range r.Points {
		deferred += p.RepairsDeferred
	}
	if deferred == 0 {
		t.Fatal("no repairs were ever deferred; the byte cap was never binding")
	}

	// Overhead parity between the two schemes is what makes the
	// comparison fair; guard it against config drift.
	rep := ec.Params{Data: 1, Parity: r.Config.Replication - 1}
	if rep.Overhead() != r.Config.EC.Overhead() {
		t.Fatalf("schemes not at equal overhead: rep %.2fx vs ec %.2fx",
			rep.Overhead(), r.Config.EC.Overhead())
	}
}

func TestECDurabilityRender(t *testing.T) {
	r, err := RunECDurability(ECDurabilityConfig{
		Nodes: 20, Objects: 40, Epochs: 12, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderECDurability(r)
	for _, want := range []string{"rs(1,2)", "rs(4,8)", "survive%", "fingerprint:", "off"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
