// Package experiments reproduces every table and figure of the paper's
// evaluation (section 5): the no-diversion baseline, Tables 1-4, Figures
// 2-8, plus the Pastry routing-property measurements of section 2.1.
// Each experiment has a Run function returning structured results and a
// Render function producing the paper-style text table or series.
package experiments

import (
	"fmt"
	"math/rand"

	"past/internal/cache"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/stats"
	"past/internal/trace"
)

// MB is a megabyte, the unit of Table 1.
const MB = 1 << 20

// CapDist is a node-capacity distribution of Table 1 (values in MB; they
// are rescaled so the workload's storage demand overshoots the system
// capacity by the paper's ratio).
type CapDist struct {
	Name   string
	M      float64 // mean
	Sigma  float64 // standard deviation
	Lo, Hi float64 // truncation bounds
}

// Distributions d1-d4 of Table 1.
var (
	D1 = CapDist{Name: "d1", M: 27, Sigma: 10.8, Lo: 2, Hi: 51}
	D2 = CapDist{Name: "d2", M: 27, Sigma: 9.6, Lo: 4, Hi: 49}
	D3 = CapDist{Name: "d3", M: 27, Sigma: 54, Lo: 6, Hi: 48}
	D4 = CapDist{Name: "d4", M: 27, Sigma: 54, Lo: 1, Hi: 53}
)

// AllDists lists the Table 1 distributions in order.
var AllDists = []CapDist{D1, D2, D3, D4}

// DistByName returns the capacity distribution with the given name.
func DistByName(name string) (CapDist, error) {
	for _, d := range AllDists {
		if d.Name == name {
			return d, nil
		}
	}
	return CapDist{}, fmt.Errorf("experiments: unknown capacity distribution %q", name)
}

// Sample draws n capacities (bytes) with the distribution's shape,
// scaled by factor s (1 reproduces the paper's MB values).
func (d CapDist) Sample(r *rand.Rand, n int, s float64) []int64 {
	tn := stats.TruncNormal{Mean: d.M * s * MB, Sigma: d.Sigma * s * MB, Lo: d.Lo * s * MB, Hi: d.Hi * s * MB}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(tn.Sample(r))
	}
	return out
}

// DefaultOvershoot is the storage-demand-to-capacity ratio that drives
// utilization toward 100% by the end of a run.
//
// Calibration note: the paper's nominal ratio is 1.53 (18.7 GB of unique
// content x k=5 = 93.5 GB of replica demand against 61 GB of capacity,
// Table 1), yet it ends at 98.2% utilization with only 0.7% failed
// insertions — consistent only if the ~0.7% largest files carried the
// ~36% of bytes that had to be shed. Its real trace had exactly such a
// tail. Our lognormal tail (33% of bytes in the top 0.7% of files) sheds
// slightly less, so the nominal 1.53 leaves ~2% residual over-demand and
// pins the run at 100% utilization with mass small-file failures — a
// shape the paper never exhibits. An overshoot of 1.15 reproduces the
// paper's equilibrium (measured at tiny scale: 0.5% failures, 99.7%
// utilization, 15.9% replica diversion vs the paper's 0.7%/98.2%/16.1%).
const DefaultOvershoot = 1.15

// Published mean file sizes; with the Table 1 capacities these fix the
// unique-file count a run needs to reach the overshoot ratio.
const (
	webMeanSize = 10_517
	fsMeanSize  = 88_233
)

func (k WorkloadKind) meanSize() float64 {
	if k == FSWorkload {
		return fsMeanSize
	}
	return webMeanSize
}

// filesFor computes the unique-file count whose expected storage demand
// (k replicas each) overshoots the system capacity by the given ratio.
// Scaling node count down therefore scales the trace down with it while
// preserving the paper's capacity-to-file-size ratios exactly — the
// quantity the storage-management dynamics depend on. At the paper's
// 2250 nodes this yields ~1.79M web files (paper: 1.86M inserted).
func filesFor(d CapDist, nodes, k int, capScale float64, meanSize, overshoot float64) int {
	totalCap := float64(nodes) * d.M * capScale * MB
	return int(overshoot * totalCap / (float64(k) * meanSize))
}

// Scale bundles the experiment sizing knobs. File counts derive from
// node counts via the overshoot ratio.
type Scale struct {
	Name string
	// Nodes is the number of PAST nodes (paper: 2250).
	Nodes int
	// CacheNodes sizes the caching experiment's network.
	CacheNodes int
	// Clients and Sites for the caching experiment (paper: 775 and 8).
	Clients, Sites int
}

// Predefined scales. Tiny keeps unit tests tolerable; Bench is the
// default for `go test -bench` and the past-bench tool; Full is the
// paper's.
var (
	ScaleTiny = Scale{Name: "tiny", Nodes: 60,
		CacheNodes: 60, Clients: 96, Sites: 8}
	ScaleBench = Scale{Name: "bench", Nodes: 300,
		CacheNodes: 250, Clients: 775, Sites: 8}
	ScaleFull = Scale{Name: "full", Nodes: 2250,
		CacheNodes: 2250, Clients: 775, Sites: 8}
)

// ScaleByName resolves a scale preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return ScaleTiny, nil
	case "bench":
		return ScaleBench, nil
	case "full":
		return ScaleFull, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (tiny|bench|full)", name)
}

// WorkloadKind selects which of the paper's two workloads drives a
// storage experiment.
type WorkloadKind int

// Workload kinds.
const (
	// WebWorkload is the NLANR-like web-proxy workload.
	WebWorkload WorkloadKind = iota
	// FSWorkload is the filesystem-scan workload (Figure 7 uses it with
	// capacities scaled x10, which the overshoot scaling supersedes).
	FSWorkload
)

func (k WorkloadKind) String() string {
	if k == FSWorkload {
		return "filesystem"
	}
	return "web"
}

func (k WorkloadKind) sizes() stats.SizeDist {
	if k == FSWorkload {
		return trace.FilesystemSizes()
	}
	return trace.NLANRSizes()
}

// pastConfig assembles a past.Config from experiment knobs.
func pastConfig(b, l, k int, tpri, tdiv float64, retries int, policy cache.Policy, mon past.Monitor) past.Config {
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: b, L: l}
	cfg.K = k
	cfg.TPri = tpri
	cfg.TDiv = tdiv
	cfg.MaxRetries = retries
	cfg.CachePolicy = policy
	cfg.Monitor = mon
	return cfg
}
