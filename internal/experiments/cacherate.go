package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"time"

	"past/internal/cachengine"
	"past/internal/loadgen"
)

// CacheRateConfig parameterizes the cache-engine experiment: an
// offered-rate sweep run three times per point — with the legacy
// single-structure cache (unbounded RAM grant), with the sharded
// engine's RAM tier capped at RAMBytes, and with the same capped RAM
// tier plus a flash tier — so the curves show what each tier buys when
// the cached working set no longer fits in memory.
type CacheRateConfig struct {
	// Nodes is the cluster size. Default 16.
	Nodes int
	// NodeRate is each node's service rate in requests/s. Default 50.
	NodeRate float64
	// Multipliers are the offered rates swept, as fractions of
	// aggregate capacity. Default {0.25, 0.5, 1}.
	Multipliers []float64
	// Requests is the request count per point. Default 2000.
	Requests int
	// Files is the unique-file population; with MaxPayload it shapes
	// the working set. Default 256.
	Files int
	// Alpha is the Zipf popularity skew. Default 0.9.
	Alpha float64
	// MaxPayload clamps file sizes. Default 4096.
	MaxPayload int64
	// RAMBytes caps each node's RAM tier in the engine runs. Sized
	// below the hot working set, it is what forces the flash tier to
	// matter. Default 64 KiB.
	RAMBytes int64
	// FlashBytes is each node's flash-tier capacity. Default 1 MiB.
	FlashBytes int64
	// Shards is the engine's RAM-tier shard count. Default 4.
	Shards int
	// Doorkeeper enables the admission filter in the engine runs.
	Doorkeeper bool
	// NegativeEntries bounds the engine runs' negative cache. Default
	// 128; the sweep's lookups all target inserted files, so this only
	// exercises the bookkeeping.
	NegativeEntries int
	// FlashDir is the base directory for flash segments; each run gets
	// a fresh subtree and nodes get per-node subdirectories. Empty uses
	// a temp directory that is removed afterwards.
	FlashDir string

	Seed int64
}

func (c CacheRateConfig) withDefaults() CacheRateConfig {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.NodeRate <= 0 {
		c.NodeRate = 50
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{0.25, 0.5, 1}
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.Files <= 0 {
		c.Files = 256
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.9
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = 4096
	}
	if c.RAMBytes <= 0 {
		c.RAMBytes = 64 << 10
	}
	if c.FlashBytes <= 0 {
		c.FlashBytes = 1 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.NegativeEntries <= 0 {
		c.NegativeEntries = 128
	}
	return c
}

// Capacity returns the aggregate cluster capacity in requests/s.
func (c CacheRateConfig) Capacity() float64 {
	return float64(c.Nodes) * c.NodeRate
}

// Cache-engine modes swept per offered rate.
const (
	ModeLegacy = "legacy"    // single structure, RAM grant unbounded
	ModeRAM    = "engine"    // sharded engine, RAM tier capped
	ModeFlash  = "eng+flash" // capped RAM tier + flash tier
)

// CacheRatePoint is one (offered rate, engine mode) cell.
type CacheRatePoint struct {
	// Multiplier is the offered rate as a fraction of capacity.
	Multiplier float64
	// Offered is the offered rate in requests/s.
	Offered float64
	// Mode identifies the cache configuration (ModeLegacy/RAM/Flash).
	Mode string
	// Result is the full driver result; Result.Cache has the tier
	// counters this experiment is about.
	Result *loadgen.Result
}

// HitRate is the point's cluster-wide cache hit rate.
func (p CacheRatePoint) HitRate() float64 { return p.Result.Cache.HitRate() }

// CacheRateResult carries the sweep, mode-major within each rate.
type CacheRateResult struct {
	Config CacheRateConfig
	Points []CacheRatePoint
	// Fingerprint hashes the per-run fingerprints in sweep order.
	Fingerprint string
}

// At returns the point for a multiplier and mode, or nil.
func (r *CacheRateResult) At(mult float64, mode string) *CacheRatePoint {
	for i := range r.Points {
		if r.Points[i].Multiplier == mult && r.Points[i].Mode == mode {
			return &r.Points[i]
		}
	}
	return nil
}

// RunCacheRate sweeps offered rate against a virtual-time cluster,
// pairing every rate with the three cache configurations. Seeded and
// deterministic per configuration; note the three modes legitimately
// produce different request outcomes (cache hits change hop counts),
// so their run fingerprints differ from each other by design.
func RunCacheRate(cfg CacheRateConfig) (*CacheRateResult, error) {
	cfg = cfg.withDefaults()
	base := cfg.FlashDir
	if base == "" {
		dir, err := os.MkdirTemp("", "past-cacherate-*")
		if err != nil {
			return nil, fmt.Errorf("experiments: cacherate: %w", err)
		}
		defer os.RemoveAll(dir)
		base = dir
	}

	engineCfg := func(flash bool, runTag string) *cachengine.Config {
		ec := &cachengine.Config{
			Shards:          cfg.Shards,
			RAMBytes:        cfg.RAMBytes,
			Doorkeeper:      cfg.Doorkeeper,
			NegativeEntries: cfg.NegativeEntries,
		}
		if flash {
			ec.Flash = &cachengine.FlashConfig{
				Dir:      fmt.Sprintf("%s/%s", base, runTag),
				Capacity: cfg.FlashBytes,
			}
		}
		return ec
	}

	res := &CacheRateResult{Config: cfg}
	fp := sha256.New()
	for _, mult := range cfg.Multipliers {
		offered := mult * cfg.Capacity()
		for _, mode := range []string{ModeLegacy, ModeRAM, ModeFlash} {
			var cc *cachengine.Config
			switch mode {
			case ModeRAM:
				cc = engineCfg(false, "")
			case ModeFlash:
				cc = engineCfg(true, fmt.Sprintf("x%.2f", mult))
			}
			run, err := loadgen.RunSim(loadgen.SimConfig{
				Nodes:    cfg.Nodes,
				Seed:     cfg.Seed,
				Requests: cfg.Requests,
				Arrivals: loadgen.NewConstant(offered),
				Workload: loadgen.Workload{
					Files:      cfg.Files,
					Alpha:      cfg.Alpha,
					MaxPayload: cfg.MaxPayload,
				},
				NodeRate: cfg.NodeRate,
				Cache:    cc,
				Payloads: true,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: cacherate %.2gx %s: %w", mult, mode, err)
			}
			res.Points = append(res.Points, CacheRatePoint{
				Multiplier: mult,
				Offered:    offered,
				Mode:       mode,
				Result:     run,
			})
			fmt.Fprintf(fp, "%.6f/%s/%s\n", mult, mode, run.Fingerprint)
		}
	}
	res.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	return res, nil
}

// RenderCacheRate formats the sweep as hit rate and goodput per
// (offered rate, mode) — the tier table the cache demo prints.
func RenderCacheRate(r *CacheRateResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cache-rate sweep: %d nodes x %.0f req/s, %d files <=%dB, zipf %.2f, RAM tier %dKB, flash %dKB\n",
		r.Config.Nodes, r.Config.NodeRate, r.Config.Files, r.Config.MaxPayload,
		r.Config.Alpha, r.Config.RAMBytes>>10, r.Config.FlashBytes>>10)
	fmt.Fprintf(&b, "%8s %10s %7s %9s %9s %8s %8s %9s %10s\n",
		"offered", "mode", "hit%", "ram-hit", "flash-hit", "miss", "spill", "goodput", "p99")
	for _, p := range r.Points {
		c := p.Result.Cache
		fmt.Fprintf(&b, "%6.2fx %10s %6.1f%% %9d %9d %8d %8d %7.1f/s %10v\n",
			p.Multiplier, p.Mode, 100*p.HitRate(), c.RAMHits, c.FlashHits,
			c.Misses, c.FlashSpills, p.Result.Goodput(),
			p.Result.P(99).Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "fingerprint: %s\n", r.Fingerprint)
	return b.String()
}

// CheckCacheRate asserts the property the flash tier exists for: at
// every offered rate, the flash-enabled engine's hit rate is at least
// the capped-RAM engine's (same RAM capacity, flash adds a second
// chance), and strictly better somewhere in the sweep.
func CheckCacheRate(r *CacheRateResult) error {
	improved := false
	for _, mult := range r.Config.Multipliers {
		ram, flash := r.At(mult, ModeRAM), r.At(mult, ModeFlash)
		if ram == nil || flash == nil {
			return fmt.Errorf("cacherate: sweep missing points at %.2fx", mult)
		}
		if flash.HitRate() < ram.HitRate() {
			return fmt.Errorf("cacherate: at %.2fx flash hit rate %.3f below RAM-only %.3f",
				mult, flash.HitRate(), ram.HitRate())
		}
		if flash.HitRate() > ram.HitRate() {
			improved = true
		}
	}
	if !improved {
		return fmt.Errorf("cacherate: flash tier never improved the hit rate")
	}
	return nil
}
