package experiments

import (
	"strings"
	"testing"
)

// These tests validate the qualitative shapes the paper reports, at a
// scale small enough for CI. The bench harness (bench_test.go at the
// repository root and cmd/past-bench) runs the same experiments at
// paper-like scale.

func TestTable1Render(t *testing.T) {
	rows := RunTable1(2250, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper totals: 61,009 / 61,154 / 61,493 / 59,595 MB. Means are all
	// 27 MB over 2250 nodes => ~60,750 MB; allow 5%.
	for _, r := range rows {
		if r.TotalCapacityMB < 55_000 || r.TotalCapacityMB > 66_000 {
			t.Fatalf("%s total %.0f MB implausible", r.Dist.Name, r.TotalCapacityMB)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "d1") || !strings.Contains(out, "d4") {
		t.Fatal("render missing rows")
	}
}

func TestBaselineVsDiversionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	base, err := Baseline(ScaleTiny, 42)
	if err != nil {
		t.Fatal(err)
	}
	std, err := StandardRun(ScaleTiny, WebWorkload, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: fail=%.1f%% util=%.1f%%", base.FailPct, 100*base.FinalUtil)
	t.Logf("standard: fail=%.1f%% util=%.1f%% filediv=%.1f%% repdiv=%.1f%%",
		std.FailPct, 100*std.FinalUtil, std.FileDiversionPct, std.ReplicaDiversionPct)

	// Paper, section 5.1: without diversion 51.1% of insertions fail and
	// utilization tops out at 60.8%; with diversion failures drop to ~1%
	// and utilization exceeds 94%. Qualitative assertions:
	if base.FailPct < 10 {
		t.Fatalf("baseline failure rate %.1f%% suspiciously low; storage management appears unneeded", base.FailPct)
	}
	if base.FinalUtil > 0.85 {
		t.Fatalf("baseline utilization %.1f%% too high", 100*base.FinalUtil)
	}
	if std.FinalUtil <= base.FinalUtil {
		t.Fatalf("diversion did not improve utilization: %.3f <= %.3f", std.FinalUtil, base.FinalUtil)
	}
	if std.FailPct >= base.FailPct/2 {
		t.Fatalf("diversion did not cut failures: %.1f%% vs %.1f%%", std.FailPct, base.FailPct)
	}
	if std.FinalUtil < 0.85 {
		t.Fatalf("with diversion utilization %.1f%% below 85%%", 100*std.FinalUtil)
	}
	// Replica diversion must actually occur, and both diversion renders
	// must produce output.
	if std.ReplicaDiversionPct <= 0 {
		t.Fatal("no replica diversions in the standard run")
	}
	for _, s := range []string{RenderBaseline(base), RenderFig4(std), RenderFig5(std),
		RenderFig6(std, "Figure 6")} {
		if len(s) == 0 {
			t.Fatal("empty render")
		}
	}
}

func TestFailuresBiasedTowardLargeFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	std, err := StandardRun(ScaleTiny, WebWorkload, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Paper (Fig 6 discussion): failed insertions are heavily biased
	// toward large files. Mean size of failures must exceed the overall
	// mean size by a wide margin.
	var failSum, okSum float64
	var failN, okN int
	for _, s := range std.Collector.Inserts {
		if s.OK {
			okSum += float64(s.Size)
			okN++
		} else {
			failSum += float64(s.Size)
			failN++
		}
	}
	if failN == 0 {
		t.Skip("no failures at this scale/seed")
	}
	if failSum/float64(failN) < 3*okSum/float64(okN) {
		t.Fatalf("failed-insert mean size %.0f not >> successful mean %.0f",
			failSum/float64(failN), okSum/float64(okN))
	}
}

func TestTPriSweepDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	rows, err := RunTable3(ScaleTiny, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TPriSweep) {
		t.Fatal("row count")
	}
	// Paper: higher tpri => higher final utilization but more failures.
	hi := rows[0] // tpri = 0.5
	lo := rows[3] // tpri = 0.05
	t.Logf("tpri=0.5: fail=%.2f%% util=%.1f%% | tpri=0.05: fail=%.2f%% util=%.1f%%",
		hi.FailPct, 100*hi.FinalUtil, lo.FailPct, 100*lo.FinalUtil)
	if hi.FinalUtil < lo.FinalUtil {
		t.Fatalf("utilization not increasing in tpri: %.3f < %.3f", hi.FinalUtil, lo.FinalUtil)
	}
	if hi.FailPct < lo.FailPct {
		t.Fatalf("failures not increasing in tpri: %.2f%% < %.2f%%", hi.FailPct, lo.FailPct)
	}
	if s := RenderTable3(rows) + RenderFig2(rows); len(s) == 0 {
		t.Fatal("empty render")
	}
}

func TestTDivSweepDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	rows, err := RunTable4(ScaleTiny, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: larger tdiv => higher utilization, more failures.
	hi := rows[0] // tdiv = 0.1
	lo := rows[3] // tdiv = 0.005
	t.Logf("tdiv=0.1: fail=%.2f%% util=%.1f%% | tdiv=0.005: fail=%.2f%% util=%.1f%%",
		hi.FailPct, 100*hi.FinalUtil, lo.FailPct, 100*lo.FinalUtil)
	if hi.FinalUtil < lo.FinalUtil {
		t.Fatalf("utilization not increasing in tdiv: %.3f < %.3f", hi.FinalUtil, lo.FinalUtil)
	}
	if s := RenderTable4(rows) + RenderFig3(rows); len(s) == 0 {
		t.Fatal("empty render")
	}
}

func TestDiversionNegligibleAtLowUtil(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	std, err := StandardRun(ScaleTiny, WebWorkload, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Paper (Fig 4): file diversions are negligible below ~83%
	// utilization. Assert: of the successful inserts issued below 50%
	// utilization, under 2% needed a re-salt.
	low, lowDiv := 0, 0
	for _, s := range std.Collector.Inserts {
		if s.Util < 0.5 && s.OK {
			low++
			if s.Attempts > 1 {
				lowDiv++
			}
		}
	}
	if low == 0 {
		t.Fatal("no low-utilization inserts")
	}
	if ratio := float64(lowDiv) / float64(low); ratio > 0.02 {
		t.Fatalf("file-diversion ratio %.3f below 50%% utilization; paper says negligible", ratio)
	}
}

func TestFilesystemWorkloadRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	std, err := StandardRun(ScaleTiny, FSWorkload, 14)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fs workload: fail=%.2f%% util=%.1f%%", std.FailPct, 100*std.FinalUtil)
	if std.FinalUtil < 0.7 {
		t.Fatalf("filesystem workload utilization %.1f%% too low", 100*std.FinalUtil)
	}
	if s := RenderFig6(std, "Figure 7"); !strings.Contains(s, "Figure 7") {
		t.Fatal("render")
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	rows, err := RunFig8(ScaleTiny, 15)
	if err != nil {
		t.Fatal(err)
	}
	var gds, lru, none *CachingResult
	for _, r := range rows {
		switch r.Config.Policy.String() {
		case "gd-s":
			gds = r
		case "lru":
			lru = r
		case "none":
			none = r
		}
	}
	t.Logf("gd-s: hit=%.3f hops=%.2f | lru: hit=%.3f hops=%.2f | none: hit=%.3f hops=%.2f",
		gds.HitRate, gds.MeanHops, lru.HitRate, lru.MeanHops, none.HitRate, none.MeanHops)

	// Paper Fig 8 shapes:
	if none.HitRate != 0 {
		t.Fatal("no-caching run recorded cache hits")
	}
	if gds.MeanHops >= none.MeanHops {
		t.Fatalf("caching did not reduce hops: gd-s %.2f vs none %.2f", gds.MeanHops, none.MeanHops)
	}
	if lru.MeanHops >= none.MeanHops {
		t.Fatalf("LRU caching did not reduce hops: %.2f vs %.2f", lru.MeanHops, none.MeanHops)
	}
	if gds.HitRate < lru.HitRate-0.05 {
		t.Fatalf("GD-S hit rate %.3f well below LRU %.3f", gds.HitRate, lru.HitRate)
	}
	if gds.HitRate < 0.1 {
		t.Fatalf("GD-S hit rate %.3f implausibly low", gds.HitRate)
	}
	if s := RenderFig8(rows); !strings.Contains(s, "gd-s") {
		t.Fatal("render")
	}
}

func TestRoutingProperties(t *testing.T) {
	r, err := RunRouting(ScaleTiny, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderRouting(r))
	if r.Lookups == 0 {
		t.Fatal("no lookups measured")
	}
	if r.MeanHops > float64(r.LogBound)+1 {
		t.Fatalf("mean hops %.2f exceeds log bound %d + 1", r.MeanHops, r.LogBound)
	}
	// Locality: the nearest replica should serve far more often than the
	// 1-in-k chance (20%).
	if r.NearestPct < 30 {
		t.Fatalf("nearest-replica rate %.1f%% shows no locality", r.NearestPct)
	}
}

func TestScaleAndDistLookup(t *testing.T) {
	if _, err := ScaleByName("bench"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScaleByName("nope"); err == nil {
		t.Fatal("want error")
	}
	if _, err := DistByName("d3"); err != nil {
		t.Fatal(err)
	}
	if _, err := DistByName("d9"); err == nil {
		t.Fatal("want error")
	}
}
