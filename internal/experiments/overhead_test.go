package experiments

import "testing"

func TestOverheadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	r, err := RunOverhead(ScaleTiny, 81)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderOverhead(r))
	if len(r.Buckets) < 5 {
		t.Fatalf("only %d buckets", len(r.Buckets))
	}
	first, last := r.Buckets[0], r.Buckets[len(r.Buckets)-1]
	// Section 3.3: overhead rises with utilization (diversion work),
	// and lookups increasingly chase diverted-replica pointers.
	if last.MsgsPerInsert <= first.MsgsPerInsert {
		t.Fatalf("insert overhead did not rise: %.1f -> %.1f", first.MsgsPerInsert, last.MsgsPerInsert)
	}
	if last.IndirectPct <= first.IndirectPct {
		t.Fatalf("indirect lookups did not rise: %.1f%% -> %.1f%%", first.IndirectPct, last.IndirectPct)
	}
	// Fetch distance stays bounded by the log-route plus the one-hop
	// pointer chase.
	if last.HopsPerLookup > first.HopsPerLookup+1.5 {
		t.Fatalf("lookup hops blew up: %.2f -> %.2f", first.HopsPerLookup, last.HopsPerLookup)
	}
}
