package experiments

import (
	"math/rand"
	"testing"
)

func TestCapDistSampleBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, d := range AllDists {
		caps := d.Sample(r, 2000, 1)
		if len(caps) != 2000 {
			t.Fatal("length")
		}
		lo, hi := int64(d.Lo*MB), int64(d.Hi*MB)
		var sum int64
		for _, c := range caps {
			if c < lo-1 || c > hi+1 {
				t.Fatalf("%s: capacity %d outside [%d, %d]", d.Name, c, lo, hi)
			}
			sum += c
		}
		mean := float64(sum) / 2000
		if mean < 0.9*d.M*MB || mean > 1.1*d.M*MB {
			t.Fatalf("%s: mean %.0f too far from %g MB", d.Name, mean, d.M)
		}
	}
}

func TestCapDistScale(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	caps := D1.Sample(r, 100, 10)
	for _, c := range caps {
		if c < int64(10*D1.Lo*MB)-1 || c > int64(10*D1.Hi*MB)+1 {
			t.Fatalf("scaled capacity %d outside x10 bounds", c)
		}
	}
}

func TestFilesForRatios(t *testing.T) {
	// At the paper's parameters the derived file count must land near
	// the paper's 1.86M unique NLANR files (we derive ~1.79M from the
	// same capacity and mean size).
	files := filesFor(D1, 2250, 5, 1, webMeanSize, DefaultOvershoot)
	if files < 1_200_000 || files > 2_200_000 {
		t.Fatalf("full-scale file count %d implausible", files)
	}
	// Doubling the overshoot doubles the files; doubling k halves them.
	if f2 := filesFor(D1, 2250, 5, 1, webMeanSize, 2*DefaultOvershoot); f2 < 2*files-2 || f2 > 2*files+2 {
		t.Fatalf("overshoot scaling broken: %d vs %d", f2, files)
	}
	if fk := filesFor(D1, 2250, 10, 1, webMeanSize, DefaultOvershoot); fk < files/2-2 || fk > files/2+2 {
		t.Fatalf("k scaling broken: %d vs %d", fk, files)
	}
}

func TestStorageConfigDefaults(t *testing.T) {
	cfg := StorageConfig{Nodes: 100}.withDefaults()
	if cfg.B != 4 || cfg.L != 32 || cfg.K != 5 || cfg.Dist.Name != "d1" ||
		cfg.CapScale != 1 || cfg.Overshoot != DefaultOvershoot {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Files == 0 || cfg.SampleEvery == 0 {
		t.Fatal("derived values missing")
	}
	// Baseline semantics preserved: explicit zeroes are kept.
	base := StorageConfig{Nodes: 10, TPri: 1, TDiv: 0, MaxRetries: 0}.withDefaults()
	if base.TDiv != 0 || base.MaxRetries != 0 || base.TPri != 1 {
		t.Fatalf("baseline knobs overridden: %+v", base)
	}
}

func TestCachingConfigDefaults(t *testing.T) {
	cfg := CachingConfig{Nodes: 100}.withDefaults()
	if cfg.UniqueFiles == 0 || cfg.Requests != cfg.UniqueFiles*215/100 {
		t.Fatalf("caching defaults: %+v", cfg)
	}
	if cfg.Clients != 775 || cfg.Sites != 8 || cfg.CacheFrac != 1 {
		t.Fatalf("caching client defaults: %+v", cfg)
	}
}
