package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"past/internal/cache"
	"past/internal/id"
	"past/internal/past"
	"past/internal/trace"
)

// RoutingResult measures the Pastry properties section 2.1 quotes:
// routes of at most ceil(log_2^b N) overlay hops under normal operation,
// and the locality property that lookups tend to reach the replica
// closest to the client (the Pastry paper reports the nearest of 5
// copies found in 76% of lookups, one of the two nearest in 92%).
type RoutingResult struct {
	Nodes, Lookups int
	LogBound       int
	MeanHops       float64
	MaxHops        int
	// HopHistogram[h] counts lookups that took h hops.
	HopHistogram []int
	// NearestPct is the fraction of lookups served by the proximally
	// nearest of the k replica holders; Nearest2Pct by one of the two
	// nearest.
	NearestPct, Nearest2Pct float64
}

// RunRouting builds a cluster, inserts files with caching disabled, and
// measures hop counts and which replica serves each lookup.
func RunRouting(sc Scale, seed int64) (*RoutingResult, error) {
	cfg := pastConfig(4, 32, 5, 0.1, 0.05, 3, cache.None, nil)
	files := sc.Nodes * 40 // plenty of targets, ample capacity
	if files < 200 {
		files = 200
	}
	w := trace.InsertOnly(files, trace.NLANRSizes(), seed)
	// Capacity ample: routing, not storage, is under test.
	perNode := 4 * w.TotalBytes * 5 / int64(sc.Nodes)
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        sc.Nodes,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return perNode },
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed ^ 0x407))
	type placed struct {
		fid     id.File
		holders []*past.Node
	}
	var inserted []placed
	for _, ev := range w.Events {
		client := cluster.Nodes[rng.Intn(len(cluster.Nodes))]
		res, err := client.Insert(past.InsertSpec{Name: trace.FileName(ev.File), Size: ev.Size, Salt: uint64(ev.File) + 1})
		if err != nil {
			return nil, err
		}
		if !res.OK {
			continue
		}
		var holders []*past.Node
		for _, nid := range cluster.GlobalClosest(res.FileID.Key(), 5) {
			if cluster.ByID[nid].HasReplica(res.FileID) {
				holders = append(holders, cluster.ByID[nid])
			}
		}
		inserted = append(inserted, placed{fid: res.FileID, holders: holders})
	}

	rr := &RoutingResult{
		Nodes:    sc.Nodes,
		LogBound: int(math.Ceil(math.Log(float64(sc.Nodes)) / math.Log(16))),
	}
	hopHist := make([]int, 64)
	var hops, nearest, nearest2 int
	lookups := 0
	for trial := 0; trial < 4*len(inserted); trial++ {
		p := inserted[rng.Intn(len(inserted))]
		if len(p.holders) == 0 {
			continue
		}
		client := cluster.Nodes[rng.Intn(len(cluster.Nodes))]
		// Identify which holder is proximally nearest to the client.
		type hd struct {
			n *past.Node
			d float64
		}
		var hds []hd
		for _, h := range p.holders {
			d, _ := cluster.Net.Proximity(client.ID(), h.ID())
			hds = append(hds, hd{n: h, d: d})
		}
		for i := 0; i < len(hds); i++ {
			for j := i + 1; j < len(hds); j++ {
				if hds[j].d < hds[i].d {
					hds[i], hds[j] = hds[j], hds[i]
				}
			}
		}
		// Which node actually served it? Trace the route: with caching
		// off, the serving node is the first holder on the path (or a
		// pointer chase, which we skip by requiring a direct holder).
		reply, hopsTaken, path, err := client.Overlay().RouteTraced(p.fid.Key(), &past.LookupMsg{File: p.fid})
		if err != nil {
			return nil, err
		}
		lr, ok := reply.(*past.LookupReply)
		if !ok || !lr.Found {
			continue
		}
		lookups++
		hops += hopsTaken
		if hopsTaken < len(hopHist) {
			hopHist[hopsTaken]++
		}
		if rr.MaxHops < hopsTaken {
			rr.MaxHops = hopsTaken
		}
		server := path[len(path)-1]
		if len(hds) > 0 && server == hds[0].n.ID() {
			nearest++
			nearest2++
		} else if len(hds) > 1 && server == hds[1].n.ID() {
			nearest2++
		}
	}
	rr.Lookups = lookups
	if lookups > 0 {
		rr.MeanHops = float64(hops) / float64(lookups)
		rr.NearestPct = 100 * float64(nearest) / float64(lookups)
		rr.Nearest2Pct = 100 * float64(nearest2) / float64(lookups)
	}
	// Trim histogram.
	last := 0
	for i, c := range hopHist {
		if c > 0 {
			last = i
		}
	}
	rr.HopHistogram = hopHist[:last+1]
	return rr, nil
}

// RenderRouting formats the routing-property measurements.
func RenderRouting(r *RoutingResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Routing properties (section 2.1)")
	fmt.Fprintf(&b, "nodes=%d lookups=%d ceil(log16 N)=%d\n", r.Nodes, r.Lookups, r.LogBound)
	fmt.Fprintf(&b, "mean hops=%.2f max hops=%d\n", r.MeanHops, r.MaxHops)
	for h, c := range r.HopHistogram {
		fmt.Fprintf(&b, "  %d hops: %6d (%.1f%%)\n", h, c, 100*float64(c)/float64(max(1, r.Lookups)))
	}
	fmt.Fprintf(&b, "served by proximally nearest replica: %.1f%% (paper: 76%%)\n", r.NearestPct)
	fmt.Fprintf(&b, "served by one of two nearest: %.1f%% (paper: 92%%)\n", r.Nearest2Pct)
	return b.String()
}
