package experiments

import "testing"

func TestFragmentationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace-driven run; skipped with -short")
	}
	r, err := RunFragmentation(ScaleTiny, 71)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFragmentation(r))
	if r.Utilization < 0.7 {
		t.Fatalf("fill reached only %.1f%% utilization", 100*r.Utilization)
	}
	// The section 3.4/3.6 claims: fragmentation stores large files that
	// whole-file insertion rejects, and RS fragments cost less storage.
	if r.FragOK <= r.WholeOK {
		t.Fatalf("fragmented %d <= whole %d successes", r.FragOK, r.WholeOK)
	}
	if r.FetchOKFrag != r.FragOK || r.FetchOKRS != r.RSOK {
		t.Fatal("stored objects not retrievable")
	}
	if r.RSOK > 0 && r.FragOK > 0 {
		perRS := float64(r.RSBytes) / float64(r.RSOK)
		perFrag := float64(r.FragBytes) / float64(r.FragOK)
		if perRS >= perFrag {
			t.Fatalf("RS per-object bytes %.0f not below replicated %.0f", perRS, perFrag)
		}
	}
}
