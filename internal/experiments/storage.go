package experiments

import (
	"fmt"
	"math/rand"

	"past/internal/cache"
	"past/internal/metrics"
	"past/internal/past"
	"past/internal/store"
	"past/internal/trace"
)

// StorageConfig parameterizes one trace-driven storage-management run
// (the experiments of section 5.1).
type StorageConfig struct {
	Nodes int
	// Files is the unique-file count; 0 derives it from the overshoot
	// ratio against the (capacity-scaled) Table 1 distribution, which is
	// the faithful choice.
	Files int
	Dist  CapDist
	// CapScale multiplies the Table 1 capacities (1 reproduces the
	// paper's web-workload setup; the filesystem experiment of Figure 7
	// uses 10, exactly as the paper did).
	CapScale float64
	// Overshoot is the storage-demand/capacity ratio (default 1.53, the
	// paper's). Larger pushes utilization past the knee sooner.
	Overshoot float64

	B, L, K    int
	TPri, TDiv float64
	MaxRetries int

	Workload WorkloadKind
	Seed     int64
	// SampleEvery thins the diverted-ratio series (default files/500).
	SampleEvery int
	// RandomDivert enables the ablation that replaces max-free-space
	// diverted-replica target selection with a random eligible node.
	RandomDivert bool
}

// withDefaults fills paper defaults for unset knobs.
func (c StorageConfig) withDefaults() StorageConfig {
	if c.Overshoot == 0 {
		c.Overshoot = DefaultOvershoot
	}
	if c.B == 0 {
		c.B = 4
	}
	if c.L == 0 {
		c.L = 32
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.Dist.Name == "" {
		c.Dist = D1
	}
	if c.CapScale == 0 {
		c.CapScale = 1
	}
	if c.Files == 0 {
		c.Files = filesFor(c.Dist, c.Nodes, c.K, c.CapScale, c.Workload.meanSize(), c.Overshoot)
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = c.Files/500 + 1
	}
	return c
}

// StorageResult carries everything the tables and figures derive from a
// storage run.
type StorageResult struct {
	Config        StorageConfig
	TotalCapacity int64
	WorkloadBytes int64
	Collector     *metrics.Collector
	Totals        metrics.InsertTotals

	// FinalUtil is the global storage utilization at the end of the
	// trace.
	FinalUtil float64
	// FileDiversionPct is the percentage of successful inserts that
	// required at least one file diversion (Table 2's "File diversion").
	FileDiversionPct float64
	// ReplicaDiversionPct is the percentage of stored replicas that are
	// diverted replicas at the end of the run (Table 2's "Replica
	// diversion").
	ReplicaDiversionPct float64
	// SuccessPct and FailPct are Table 2's first two columns.
	SuccessPct, FailPct float64
}

// RunStorage replays an insert-only workload against a fresh cluster.
func RunStorage(cfg StorageConfig) (*StorageResult, error) {
	cfg = cfg.withDefaults()
	w := trace.InsertOnly(cfg.Files, cfg.Workload.sizes(), cfg.Seed)

	capRng := rand.New(rand.NewSource(cfg.Seed ^ 0xCAFE))
	caps := cfg.Dist.Sample(capRng, cfg.Nodes, cfg.CapScale)
	var totalCap int64
	for _, c := range caps {
		totalCap += c
	}

	col := metrics.NewCollector(totalCap, cfg.SampleEvery)
	pcfg := pastConfig(cfg.B, cfg.L, cfg.K, cfg.TPri, cfg.TDiv, cfg.MaxRetries, cache.None, col)
	pcfg.RandomDivert = cfg.RandomDivert
	cluster, err := past.NewCluster(past.ClusterSpec{
		N:        cfg.Nodes,
		Cfg:      pcfg,
		Capacity: func(i int, _ *rand.Rand) int64 { return caps[i] },
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: storage cluster: %w", err)
	}

	clientRng := rand.New(rand.NewSource(cfg.Seed ^ 0xC11E17))
	nodes := cluster.Nodes
	for _, ev := range w.Events {
		util := col.Utilization()
		client := nodes[clientRng.Intn(len(nodes))]
		res, err := client.Insert(past.InsertSpec{
			Name: trace.FileName(ev.File),
			Size: ev.Size,
			Salt: uint64(ev.File) + 1, // deterministic; re-salts increment
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: insert %d: %w", ev.File, err)
		}
		col.RecordInsert(util, ev.Size, res.Attempts, res.OK, res.Diverted)
	}

	r := &StorageResult{
		Config:        cfg,
		TotalCapacity: totalCap,
		WorkloadBytes: w.TotalBytes,
		Collector:     col,
		Totals:        col.Totals(),
		FinalUtil:     col.Utilization(),
	}
	if r.Totals.Total > 0 {
		r.SuccessPct = 100 * float64(r.Totals.Succeeded) / float64(r.Totals.Total)
		r.FailPct = 100 * float64(r.Totals.Failed) / float64(r.Totals.Total)
	}
	if r.Totals.Succeeded > 0 {
		r.FileDiversionPct = 100 * float64(r.Totals.FileDiverted) / float64(r.Totals.Succeeded)
	}

	// Replica diversion ratio: fraction of stored replicas that are
	// diverted, from a final scan of every node's file table.
	var total, diverted int64
	for _, n := range cluster.Nodes {
		entries, _ := n.StoreSnapshot()
		for _, e := range entries {
			total++
			if e.Kind == store.DivertedIn {
				diverted++
			}
		}
	}
	if total > 0 {
		r.ReplicaDiversionPct = 100 * float64(diverted) / float64(total)
	}
	return r, nil
}
