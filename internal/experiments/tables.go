package experiments

import (
	"fmt"
	"math/rand"
	"strings"
)

// Table 1: the node storage-size distributions. The paper reports the
// parameters and the sampled total capacity over 2250 nodes; we sample
// at the same unscaled parameters for the table, while experiment runs
// rescale capacities to preserve the workload-overshoot ratio.

// Table1Row is one row of Table 1.
type Table1Row struct {
	Dist            CapDist
	TotalCapacityMB float64
}

// RunTable1 samples each distribution over n nodes (paper: 2250).
func RunTable1(n int, seed int64) []Table1Row {
	rows := make([]Table1Row, 0, len(AllDists))
	for _, d := range AllDists {
		r := rand.New(rand.NewSource(seed))
		caps := d.Sample(r, n, 1)
		var tot int64
		for _, c := range caps {
			tot += c
		}
		rows = append(rows, Table1Row{Dist: d, TotalCapacityMB: float64(tot) / MB})
	}
	return rows
}

// RenderTable1 formats Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: node storage-size distributions (MBytes)\n")
	fmt.Fprintf(&b, "%-6s %6s %6s %6s %6s %10s\n", "Dist.", "m", "sigma", "lower", "upper", "total cap")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %6.0f %6.1f %6.0f %6.0f %10.0f\n",
			r.Dist.Name, r.Dist.M, r.Dist.Sigma, r.Dist.Lo, r.Dist.Hi, r.TotalCapacityMB)
	}
	return b.String()
}

// Baseline runs the no-diversion experiment of section 5.1: tpri=1,
// tdiv=0, no re-salting. The paper measures 51.1% failed insertions and
// 60.8% final utilization — the motivation for storage management.
func Baseline(sc Scale, seed int64) (*StorageResult, error) {
	return RunStorage(StorageConfig{
		Nodes: sc.Nodes,
		Dist:  D1, L: 32,
		TPri: 1, TDiv: 0, MaxRetries: 0, // declare failure on the first negative ack
		Workload: WebWorkload, Seed: seed,
	})
}

// RenderBaseline formats the baseline result against the paper's claim.
func RenderBaseline(r *StorageResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Baseline (no replica/file diversion): tpri=1 tdiv=0 no re-salting\n")
	fmt.Fprintf(&b, "  insertions failed: %5.1f%%   (paper: 51.1%%)\n", r.FailPct)
	fmt.Fprintf(&b, "  final utilization: %5.1f%%   (paper: 60.8%%)\n", 100*r.FinalUtil)
	return b.String()
}

// RunTable2 sweeps the four capacity distributions and both leaf-set
// sizes at tpri=0.1, tdiv=0.05 (Table 2).
func RunTable2(sc Scale, seed int64) ([]*StorageResult, error) {
	var out []*StorageResult
	for _, l := range []int{16, 32} {
		for _, d := range AllDists {
			r, err := RunStorage(StorageConfig{
				Nodes: sc.Nodes,
				Dist:  d, L: l,
				TPri: 0.1, TDiv: 0.05, MaxRetries: 3,
				Workload: WebWorkload, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// RenderTable2 formats Table 2 in the paper's layout.
func RenderTable2(rows []*StorageResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: storage distribution and leaf-set size sweep (tpri=0.1, tdiv=0.05)\n")
	fmt.Fprintf(&b, "%-6s %9s %7s %10s %12s %7s\n",
		"Dist.", "Succeed", "Fail", "File div.", "Replica div.", "Util.")
	lastL := 0
	for _, r := range rows {
		if r.Config.L != lastL {
			lastL = r.Config.L
			fmt.Fprintf(&b, "l = %d\n", lastL)
		}
		fmt.Fprintf(&b, "%-6s %8.1f%% %6.1f%% %9.1f%% %11.1f%% %6.1f%%\n",
			r.Config.Dist.Name, r.SuccessPct, r.FailPct,
			r.FileDiversionPct, r.ReplicaDiversionPct, 100*r.FinalUtil)
	}
	b.WriteString("paper (l=16, d1): 97.6% / 2.4% / 8.4% / 14.8% / 94.9%\n")
	b.WriteString("paper (l=32, d1): 99.3% / 0.7% / 3.5% / 16.1% / 98.2%\n")
	return b.String()
}

// TPriSweep is Table 3's parameter set, in the paper's row order.
var TPriSweep = []float64{0.5, 0.2, 0.1, 0.05}

// RunTable3 sweeps tpri with tdiv=0.05 on d1 (Table 3 / Figure 2).
func RunTable3(sc Scale, seed int64) ([]*StorageResult, error) {
	var out []*StorageResult
	for _, tpri := range TPriSweep {
		r, err := RunStorage(StorageConfig{
			Nodes: sc.Nodes,
			Dist:  D1, L: 32,
			TPri: tpri, TDiv: 0.05, MaxRetries: 3,
			Workload: WebWorkload, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []*StorageResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: tpri sweep (tdiv=0.05, d1, l=32)\n")
	fmt.Fprintf(&b, "%-6s %9s %7s %10s %12s %7s\n",
		"tpri", "Succeed", "Fail", "File div.", "Replica div.", "Util.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %8.2f%% %6.2f%% %9.2f%% %11.2f%% %6.1f%%\n",
			r.Config.TPri, r.SuccessPct, r.FailPct,
			r.FileDiversionPct, r.ReplicaDiversionPct, 100*r.FinalUtil)
	}
	b.WriteString("paper: tpri=0.5: 88.0%/12.0%/4.4%/18.8%/99.7% ... tpri=0.05: 99.7%/0.3%/2.2%/12.9%/97.4%\n")
	return b.String()
}

// TDivSweep is Table 4's parameter set, in the paper's row order.
var TDivSweep = []float64{0.1, 0.05, 0.01, 0.005}

// RunTable4 sweeps tdiv with tpri=0.1 on d1 (Table 4 / Figure 3).
func RunTable4(sc Scale, seed int64) ([]*StorageResult, error) {
	var out []*StorageResult
	for _, tdiv := range TDivSweep {
		r, err := RunStorage(StorageConfig{
			Nodes: sc.Nodes,
			Dist:  D1, L: 32,
			TPri: 0.1, TDiv: tdiv, MaxRetries: 3,
			Workload: WebWorkload, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []*StorageResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: tdiv sweep (tpri=0.1, d1, l=32)\n")
	fmt.Fprintf(&b, "%-6s %9s %7s %10s %12s %7s\n",
		"tdiv", "Succeed", "Fail", "File div.", "Replica div.", "Util.")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.3f %8.2f%% %6.2f%% %9.2f%% %11.2f%% %6.1f%%\n",
			r.Config.TDiv, r.SuccessPct, r.FailPct,
			r.FileDiversionPct, r.ReplicaDiversionPct, 100*r.FinalUtil)
	}
	b.WriteString("paper: tdiv=0.1: 93.7%/6.3%/5.1%/13.8%/99.8% ... tdiv=0.005: 99.6%/0.4%/0.5%/14.7%/90.5%\n")
	return b.String()
}
