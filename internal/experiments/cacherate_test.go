package experiments

import (
	"strings"
	"testing"
)

func smallCacheRateCfg() CacheRateConfig {
	return CacheRateConfig{
		Nodes:       10,
		NodeRate:    50,
		Multipliers: []float64{0.5},
		Requests:    900,
		Files:       192,
		RAMBytes:    32 << 10,
		Seed:        7,
	}
}

func TestCacheRateFlashBeatsCappedRAM(t *testing.T) {
	r, err := RunCacheRate(smallCacheRateCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(r.Points))
	}
	if err := CheckCacheRate(r); err != nil {
		t.Fatal(err)
	}
	// The flash runs must actually have exercised the tier.
	fl := r.At(0.5, ModeFlash)
	if fl.Result.Cache.FlashSpills == 0 || fl.Result.Cache.FlashHits == 0 {
		t.Fatalf("flash tier idle: %+v", fl.Result.Cache)
	}
	// The RAM-capped run must have been genuinely constrained, or the
	// comparison says nothing.
	ram := r.At(0.5, ModeRAM)
	if ram.Result.Cache.Evictions == 0 {
		t.Fatalf("RAM-only run never evicted: %+v", ram.Result.Cache)
	}
}

func TestCacheRateDeterministic(t *testing.T) {
	a, err := RunCacheRate(smallCacheRateCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCacheRate(smallCacheRateCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	for i := range a.Points {
		if a.Points[i].Result.Cache != b.Points[i].Result.Cache {
			t.Fatalf("point %d cache counters differ:\n%+v\n%+v",
				i, a.Points[i].Result.Cache, b.Points[i].Result.Cache)
		}
	}
}

func TestRenderCacheRate(t *testing.T) {
	r, err := RunCacheRate(smallCacheRateCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderCacheRate(r)
	for _, want := range []string{ModeLegacy, ModeRAM, ModeFlash, "hit%", "fingerprint:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
