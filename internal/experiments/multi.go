package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Multi-seed aggregation: the paper reports single-trace numbers (its
// input was one fixed log); with synthetic workloads we can do better
// and quote mean +/- standard deviation over independent seeds
// (past-bench -seeds N).

// SummaryCell is one aggregated table cell.
type SummaryCell struct {
	Mean, SD float64
}

func (c SummaryCell) String() string {
	if c.SD == 0 {
		return fmt.Sprintf("%.2f", c.Mean)
	}
	return fmt.Sprintf("%.2f±%.2f", c.Mean, c.SD)
}

func summarize(vals []float64) SummaryCell {
	if len(vals) == 0 {
		return SummaryCell{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var sq float64
	for _, v := range vals {
		d := v - mean
		sq += d * d
	}
	sd := 0.0
	if len(vals) > 1 {
		sd = math.Sqrt(sq / float64(len(vals)-1))
	}
	return SummaryCell{Mean: mean, SD: sd}
}

// storageColumns are the five quantities every storage table reports.
var storageColumns = []struct {
	name string
	get  func(*StorageResult) float64
}{
	{"Succeed%", func(r *StorageResult) float64 { return r.SuccessPct }},
	{"Fail%", func(r *StorageResult) float64 { return r.FailPct }},
	{"FileDiv%", func(r *StorageResult) float64 { return r.FileDiversionPct }},
	{"ReplDiv%", func(r *StorageResult) float64 { return r.ReplicaDiversionPct }},
	{"Util%", func(r *StorageResult) float64 { return 100 * r.FinalUtil }},
}

// RenderStorageMulti aggregates repeated runs of the same configuration
// list: runs[s][i] is configuration i at seed s. labels names the
// configurations (one per i).
func RenderStorageMulti(title string, labels []string, runs [][]*StorageResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%d seeds, mean±sd)\n", title, len(runs))
	fmt.Fprintf(&b, "%-12s", "config")
	for _, c := range storageColumns {
		fmt.Fprintf(&b, " %14s", c.name)
	}
	fmt.Fprintln(&b)
	for i, label := range labels {
		fmt.Fprintf(&b, "%-12s", label)
		for _, c := range storageColumns {
			var vals []float64
			for s := range runs {
				if i < len(runs[s]) && runs[s][i] != nil {
					vals = append(vals, c.get(runs[s][i]))
				}
			}
			fmt.Fprintf(&b, " %14s", summarize(vals))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// MultiSeed runs a storage-sweep experiment once per seed.
func MultiSeed(seeds []int64, run func(seed int64) ([]*StorageResult, error)) ([][]*StorageResult, error) {
	var out [][]*StorageResult
	for _, s := range seeds {
		rows, err := run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, rows)
	}
	return out, nil
}

// StorageLabels derives row labels from a single sweep's configurations.
func StorageLabels(rows []*StorageResult, f func(*StorageResult) string) []string {
	labels := make([]string, len(rows))
	for i, r := range rows {
		labels[i] = f(r)
	}
	return labels
}
