package experiments

import (
	"strings"
	"testing"

	"past/internal/metrics"
)

// fabricateResult builds a StorageResult from synthetic samples, so the
// renderers can be exercised without trace-driven cluster runs.
func fabricateResult(tpri, tdiv float64) *StorageResult {
	col := metrics.NewCollector(1_000_000, 1)
	for i := 0; i < 1000; i++ {
		util := float64(i) / 1000
		col.ReplicaStored([20]byte{byte(i)}, 1000, i%7 == 0)
		ok := !(util > 0.9 && i%5 == 0)
		attempts := 1
		if util > 0.8 && i%9 == 0 {
			attempts = 2
		}
		col.RecordInsert(util, int64(1000+i*13), attempts, ok, 0)
	}
	r := &StorageResult{
		Config:    StorageConfig{Dist: D1, L: 32, TPri: tpri, TDiv: tdiv},
		Collector: col,
		Totals:    col.Totals(),
		FinalUtil: col.Utilization(),
	}
	r.SuccessPct = 100 * float64(r.Totals.Succeeded) / float64(r.Totals.Total)
	r.FailPct = 100 - r.SuccessPct
	return r
}

func TestRenderTablesFromFabricatedResults(t *testing.T) {
	rows := []*StorageResult{fabricateResult(0.5, 0.05), fabricateResult(0.1, 0.05)}
	for _, out := range []string{
		RenderTable2(rows),
		RenderTable3(rows),
		RenderTable4(rows),
		RenderFig2(rows),
		RenderFig3(rows),
	} {
		if !strings.Contains(out, "%") || len(out) < 100 {
			t.Fatalf("render too thin:\n%s", out)
		}
	}
}

func TestRenderFiguresFromFabricatedResult(t *testing.T) {
	r := fabricateResult(0.1, 0.05)
	fig4 := RenderFig4(r)
	if !strings.Contains(fig4, "1 redirect") {
		t.Fatal("fig4 render")
	}
	fig5 := RenderFig5(r)
	if !strings.Contains(fig5, "diverted ratio") || !strings.Contains(fig5, "|") {
		t.Fatal("fig5 render must include the chart")
	}
	fig6 := RenderFig6(r, "Figure 6 test")
	if !strings.Contains(fig6, "Figure 6 test") || !strings.Contains(fig6, "cum. fail") {
		t.Fatal("fig6 render")
	}
}

func TestRenderOverheadAndFragmentation(t *testing.T) {
	or := &OverheadResult{
		Buckets: []OverheadBucket{
			{UtilLo: 0, Inserts: 10, MsgsPerInsert: 5, Lookups: 4, HopsPerLookup: 1.5},
			{UtilLo: 0.9, Inserts: 10, MsgsPerInsert: 50, Lookups: 4, HopsPerLookup: 2.0, IndirectPct: 12},
		},
		FinalUtil: 0.95,
	}
	if out := RenderOverhead(or); !strings.Contains(out, "msgs/insert") {
		t.Fatal("overhead render")
	}
	fr := &FragmentationResult{Utilization: 0.76, Files: 20, FragOK: 20, RSOK: 20,
		FragBytes: 416_000_000, RSBytes: 125_000_000, FetchOKFrag: 20, FetchOKRS: 20}
	if out := RenderFragmentation(fr); !strings.Contains(out, "RS(8,4)") {
		t.Fatal("fragmentation render")
	}
}

func TestRenderRoutingText(t *testing.T) {
	rr := &RoutingResult{Nodes: 300, Lookups: 100, LogBound: 3, MeanHops: 1.6,
		MaxHops: 3, HopHistogram: []int{2, 30, 60, 8}, NearestPct: 40, Nearest2Pct: 57}
	out := RenderRouting(rr)
	if !strings.Contains(out, "nearest replica") || !strings.Contains(out, "3 hops") {
		t.Fatal("routing render")
	}
}

func TestWorkloadKindString(t *testing.T) {
	if WebWorkload.String() != "web" || FSWorkload.String() != "filesystem" {
		t.Fatal("workload names")
	}
}

func TestFmtAt(t *testing.T) {
	pts := []metrics.Point{{Util: 0.1, Value: 0.5}, {Util: 0.5, Value: 0.7}}
	if fmtAt(pts, 0.05) != "-" {
		t.Fatal("before first point must be -")
	}
	if fmtAt(pts, 0.3) != "0.50000" {
		t.Fatalf("fmtAt(0.3) = %s", fmtAt(pts, 0.3))
	}
	if fmtAt(pts, 1.0) != "0.70000" {
		t.Fatal("last value")
	}
}

func TestRenderStorageMulti(t *testing.T) {
	runs := [][]*StorageResult{
		{fabricateResult(0.1, 0.05), fabricateResult(0.5, 0.05)},
		{fabricateResult(0.1, 0.05), fabricateResult(0.5, 0.05)},
	}
	labels := StorageLabels(runs[0], func(r *StorageResult) string {
		return "tpri=" + r.Config.Dist.Name
	})
	out := RenderStorageMulti("test sweep", labels, runs)
	if !strings.Contains(out, "2 seeds") || !strings.Contains(out, "Util%") {
		t.Fatalf("multi render:\n%s", out)
	}
	// Identical seeds: sd must be 0, so no cell renders a ± (the header
	// legend is the only occurrence).
	if strings.Count(out, "±") != 1 {
		t.Fatalf("identical runs should have zero sd:\n%s", out)
	}
}

func TestSummaryCell(t *testing.T) {
	c := summarize([]float64{1, 2, 3})
	if c.Mean != 2 || c.SD < 0.99 || c.SD > 1.01 {
		t.Fatalf("summarize: %+v", c)
	}
	if summarize(nil).Mean != 0 {
		t.Fatal("empty summarize")
	}
	if s := (SummaryCell{Mean: 5}).String(); s != "5.00" {
		t.Fatalf("zero-sd string: %s", s)
	}
}
