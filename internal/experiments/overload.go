package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"past/internal/admit"
	"past/internal/loadgen"
)

// OverloadConfig parameterizes the overload experiment: an offered-rate
// sweep against a fixed-capacity cluster, run twice per point — once
// with an unbounded per-node queue and once with bounded-queue
// admission control — so the curves show what shedding buys (and
// costs) on either side of saturation.
type OverloadConfig struct {
	// Nodes is the cluster size. Default 10.
	Nodes int
	// NodeRate is each node's sustained service rate in requests/s;
	// aggregate capacity is Nodes * NodeRate. Default 20.
	NodeRate float64
	// Burst and Depth shape the admission controller on the
	// shedding-on runs. Defaults 4 and 8.
	Burst, Depth int
	// Policy picks who is shed at a full queue.
	Policy admit.Policy
	// Multipliers are the offered rates swept, as fractions of
	// aggregate capacity. Default {0.5, 1, 1.5, 2}.
	Multipliers []float64
	// Requests is the request count per point. Default 1200.
	Requests int
	// Workload is the request mix (defaulted by loadgen).
	Workload loadgen.Workload
	// HopLatency is the virtual per-hop service time. Default 1ms.
	HopLatency time.Duration
	// SLO classifies a completion as good. Default 500ms.
	SLO time.Duration

	Seed int64
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Nodes <= 0 {
		c.Nodes = 10
	}
	if c.NodeRate <= 0 {
		c.NodeRate = 20
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	if c.Depth <= 0 {
		c.Depth = 8
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{0.5, 1, 1.5, 2}
	}
	if c.Requests <= 0 {
		c.Requests = 1200
	}
	if c.HopLatency <= 0 {
		c.HopLatency = time.Millisecond
	}
	if c.SLO <= 0 {
		c.SLO = 500 * time.Millisecond
	}
	return c
}

// Capacity returns the aggregate cluster capacity in requests/s.
func (c OverloadConfig) Capacity() float64 {
	return float64(c.Nodes) * c.NodeRate
}

// OverloadPoint is one (offered rate, shedding mode) cell of the sweep.
type OverloadPoint struct {
	// Multiplier is the offered rate as a fraction of capacity.
	Multiplier float64
	// Offered is the offered rate in requests/s.
	Offered float64
	// Shed reports whether admission control was on for this run.
	Shed bool
	// Result is the full driver result, fingerprint included.
	Result *loadgen.Result
}

// Goodput is the point's good completions per second.
func (p OverloadPoint) Goodput() float64 { return p.Result.Goodput() }

// OverloadResult carries the sweep: for each multiplier, the
// shedding-off point followed by the shedding-on point.
type OverloadResult struct {
	Config OverloadConfig
	Points []OverloadPoint
	// Fingerprint hashes the per-run fingerprints in sweep order; two
	// runs with the same config must agree bit for bit.
	Fingerprint string
}

// At returns the point for the given multiplier and shedding mode, or
// nil if the sweep has none.
func (r *OverloadResult) At(mult float64, shed bool) *OverloadPoint {
	for i := range r.Points {
		if r.Points[i].Multiplier == mult && r.Points[i].Shed == shed {
			return &r.Points[i]
		}
	}
	return nil
}

// RunOverload sweeps offered rate against a virtual-time cluster,
// pairing every rate with a shedding-off and a shedding-on run. All
// randomness is seeded; the result fingerprint is bit-identical across
// runs with equal configs.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	res := &OverloadResult{Config: cfg}
	fp := sha256.New()
	for _, mult := range cfg.Multipliers {
		offered := mult * cfg.Capacity()
		for _, shed := range []bool{false, true} {
			// Arrivals carry a cursor, so each run gets a fresh one.
			run, err := loadgen.RunSim(loadgen.SimConfig{
				Nodes:      cfg.Nodes,
				Seed:       cfg.Seed,
				Requests:   cfg.Requests,
				Arrivals:   loadgen.NewConstant(offered),
				Workload:   cfg.Workload,
				NodeRate:   cfg.NodeRate,
				Burst:      cfg.Burst,
				Depth:      cfg.Depth,
				Policy:     cfg.Policy,
				Shed:       shed,
				HopLatency: cfg.HopLatency,
				SLO:        cfg.SLO,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: overload %.2gx shed=%v: %w", mult, shed, err)
			}
			res.Points = append(res.Points, OverloadPoint{
				Multiplier: mult,
				Offered:    offered,
				Shed:       shed,
				Result:     run,
			})
			fmt.Fprintf(fp, "%.6f/%v/%s\n", mult, shed, run.Fingerprint)
		}
	}
	res.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	return res, nil
}

// RenderOverload formats the sweep as offered-rate vs goodput and tail
// latency, one row per (rate, shedding mode).
func RenderOverload(r *OverloadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload sweep: %d nodes x %.0f req/s each = %.0f req/s capacity (queue depth %d, SLO %v)\n",
		r.Config.Nodes, r.Config.NodeRate, r.Config.Capacity(), r.Config.Depth, r.Config.SLO)
	fmt.Fprintf(&b, "%8s %9s %6s %9s %7s %10s %10s %10s\n",
		"offered", "shedding", "shed", "goodput", "good%", "p50", "p99", "p999")
	for _, p := range r.Points {
		mode := "off"
		if p.Shed {
			mode = "on"
		}
		fmt.Fprintf(&b, "%6.2fx %9s %6d %7.1f/s %6.1f%% %10v %10v %10v\n",
			p.Multiplier, mode, p.Result.Shed, p.Goodput(),
			100*float64(p.Result.Good)/float64(max(1, p.Result.Issued)),
			p.Result.P(50).Round(time.Millisecond),
			p.Result.P(99).Round(time.Millisecond),
			p.Result.P(99.9).Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "fingerprint: %s\n", r.Fingerprint)
	return b.String()
}
