package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"

	"past/internal/ec"
	"past/internal/id"
)

// The erasure-coding durability experiment: the paper's section 3.6
// trade-off, measured. Both schemes are expressed as fragment codes at
// EQUAL storage overhead — k=3 replication is RS(1,2) (three full
// copies, any one suffices) and the coded mode is RS(4,8) (twelve
// quarter-size fragments, any four suffice), both 3.0x — and swept
// against per-node repair bandwidth under sustained crash-restart
// churn. Each model node runs the production ec.RepairQueue, so
// deterministic scheduling, dedup, and the strict per-epoch byte cap
// are the real code paths, not a re-implementation; what is simulated
// is only the fleet around them (fragment placement, node churn,
// leader-driven anti-entropy). A node crash loses its fragments AND
// its repair queue — repair state is soft state, rediscovered by the
// next anti-entropy pass, exactly as in the live daemons.
//
// The curves show why lazy repair is the half that makes erasure
// coding usable: without repair both schemes decay, the coded one
// faster once losses accumulate past its parity margin; with even a
// modest byte budget the coded mode holds every object at the same
// storage cost, because each repair moves 1/m of the object and the
// code tolerates 2x the dead fragments while the queue catches up.

// ECDurabilityConfig parameterizes the sweep.
type ECDurabilityConfig struct {
	// Nodes is the fleet size. Default 30.
	Nodes int
	// Objects is the object population. Default 120.
	Objects int
	// ObjectSize is each object's size in bytes. Default 48 KiB.
	ObjectSize int
	// Epochs is the churn length. Default 24.
	Epochs int
	// ChurnRate is each node's per-epoch crash-restart probability.
	// Default 0.08.
	ChurnRate float64
	// RepairBudgets are the per-node per-epoch repair byte caps swept
	// (0 = repair off). Default {0, 96 KiB, 512 KiB}.
	RepairBudgets []int64
	// Replication is the baseline copy count, modeled as RS(1, k-1).
	// Default 3.
	Replication int
	// EC is the coded mode. Defaults to RS(4, 8) — the same 3.0x
	// overhead as the k=3 baseline.
	EC ec.Params

	Seed int64
}

func (c ECDurabilityConfig) withDefaults() ECDurabilityConfig {
	if c.Nodes <= 0 {
		c.Nodes = 30
	}
	if c.Objects <= 0 {
		c.Objects = 120
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 48 << 10
	}
	if c.Epochs <= 0 {
		c.Epochs = 24
	}
	if c.ChurnRate <= 0 {
		c.ChurnRate = 0.08
	}
	if len(c.RepairBudgets) == 0 {
		c.RepairBudgets = []int64{0, 96 << 10, 512 << 10}
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.EC.Data == 0 {
		c.EC = ec.Params{Data: 4, Parity: 8}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ECDurabilityPoint is one (scheme, repair budget) cell of the sweep.
type ECDurabilityPoint struct {
	// Scheme renders the coding parameters ("rs(1,2)" is replication).
	Scheme string
	// Params are the cell's coding parameters.
	Params ec.Params
	// Budget is the per-node per-epoch repair byte cap (0: repair off).
	Budget int64
	// Alive[e] is the object count still reconstructible after epoch e.
	Alive []int
	// RepairsDone / RepairsDeferred / RepairBytes aggregate the fleet's
	// queue counters over the run.
	RepairsDone     int64
	RepairsDeferred int64
	RepairBytes     int64
	// MaxNodeEpochBytes is the most repair bytes any single node spent
	// in one epoch — the cap compliance witness (<= Budget when capped).
	MaxNodeEpochBytes int64
}

// Survival is the fraction of objects alive after the final epoch.
func (p ECDurabilityPoint) Survival() float64 {
	if len(p.Alive) == 0 {
		return 0
	}
	return float64(p.Alive[len(p.Alive)-1]) / float64(p.Alive[0])
}

// ECDurabilityResult carries the sweep, budget-major, scheme-minor.
type ECDurabilityResult struct {
	Config ECDurabilityConfig
	Points []ECDurabilityPoint
	// Fingerprint hashes every cell's survival curve and repair
	// counters in sweep order; seed-stable across runs.
	Fingerprint string
}

// At returns the cell for a scheme and budget, or nil.
func (r *ECDurabilityResult) At(scheme string, budget int64) *ECDurabilityPoint {
	for i := range r.Points {
		if r.Points[i].Scheme == scheme && r.Points[i].Budget == budget {
			return &r.Points[i]
		}
	}
	return nil
}

// ecdObject is one object's fragment placement: holders[idx] is the
// node index holding fragment idx, or -1.
type ecdObject struct {
	holders []int
	lost    bool // fell below m live fragments; unrecoverable
}

func (o *ecdObject) liveFragments() int {
	n := 0
	for _, h := range o.holders {
		if h >= 0 {
			n++
		}
	}
	return n
}

// RunECDurability sweeps repair bandwidth against object survival
// under churn for the replication baseline and the coded mode.
// Deterministic for a given configuration.
func RunECDurability(cfg ECDurabilityConfig) (*ECDurabilityResult, error) {
	cfg = cfg.withDefaults()
	rep := ec.Params{Data: 1, Parity: cfg.Replication - 1}
	for _, p := range []ec.Params{rep, cfg.EC} {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: ecdurability: %w", err)
		}
		if p.Total() > cfg.Nodes {
			return nil, fmt.Errorf("experiments: ecdurability: %s needs %d nodes, have %d", p, p.Total(), cfg.Nodes)
		}
	}

	res := &ECDurabilityResult{Config: cfg}
	fp := sha256.New()
	for _, budget := range cfg.RepairBudgets {
		for _, p := range []ec.Params{rep, cfg.EC} {
			pt := runECDurabilityCell(cfg, p, budget)
			res.Points = append(res.Points, pt)
			fmt.Fprintf(fp, "%s/%d:", pt.Scheme, pt.Budget)
			for _, a := range pt.Alive {
				fmt.Fprintf(fp, "%d,", a)
			}
			fmt.Fprintf(fp, "%d/%d/%d/%d\n", pt.RepairsDone, pt.RepairsDeferred, pt.RepairBytes, pt.MaxNodeEpochBytes)
		}
	}
	res.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	return res, nil
}

// cellSeed derives a per-cell seed so every (scheme, budget) cell has
// an independent but reproducible stream.
func cellSeed(base int64, p ec.Params, budget int64) int64 {
	h := sha256.New()
	binary.Write(h, binary.BigEndian, base)
	binary.Write(h, binary.BigEndian, int64(p.Data))
	binary.Write(h, binary.BigEndian, int64(p.Parity))
	binary.Write(h, binary.BigEndian, budget)
	s := h.Sum(nil)
	return int64(binary.BigEndian.Uint64(s[:8]) &^ (1 << 63))
}

func runECDurabilityCell(cfg ECDurabilityConfig, p ec.Params, budget int64) ECDurabilityPoint {
	rng := rand.New(rand.NewSource(cellSeed(cfg.Seed, p, budget)))
	total := p.Total()
	shardSize := (cfg.ObjectSize + p.Data - 1) / p.Data
	// One repair moves m survivor fragments in and one rebuilt fragment
	// out — the same cost model the node-level queue uses.
	repairCost := int64(shardSize) * int64(p.Data+1)

	// Place each object's fragments on distinct random nodes; the
	// object's repair leader is fixed (its first holder's slot in a
	// round-robin), standing in for the replica-set head.
	objs := make([]*ecdObject, cfg.Objects)
	leader := make([]int, cfg.Objects)
	for i := range objs {
		perm := rng.Perm(cfg.Nodes)
		o := &ecdObject{holders: make([]int, total)}
		for idx := 0; idx < total; idx++ {
			o.holders[idx] = perm[idx]
		}
		objs[i] = o
		leader[i] = i % cfg.Nodes
	}

	queues := make([]*ec.RepairQueue, cfg.Nodes)
	for n := range queues {
		queues[n] = ec.NewRepairQueue(cellSeed(cfg.Seed, p, budget) ^ int64(n))
	}

	pt := ECDurabilityPoint{Scheme: p.String(), Params: p, Budget: budget}
	pt.Alive = append(pt.Alive, cfg.Objects)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Churn: each node crash-restarts with probability ChurnRate,
		// losing its fragments and its (soft-state) repair queue.
		for n := 0; n < cfg.Nodes; n++ {
			if rng.Float64() >= cfg.ChurnRate {
				continue
			}
			for _, o := range objs {
				for idx, h := range o.holders {
					if h == n {
						o.holders[idx] = -1
					}
				}
			}
			queues[n] = ec.NewRepairQueue(cellSeed(cfg.Seed, p, budget) ^ int64(n) ^ int64(epoch+1)<<32)
		}

		// Mark objects that fell below m live fragments: unrecoverable.
		for _, o := range objs {
			if !o.lost && o.liveFragments() < p.Data {
				o.lost = true
			}
		}

		// Anti-entropy: each object's leader enqueues its missing
		// fragments (dedup and scheduling are the production queue's).
		if budget != 0 {
			for i, o := range objs {
				if o.lost {
					continue
				}
				for idx, h := range o.holders {
					if h < 0 {
						queues[leader[i]].Enqueue(ec.RepairItem{
							File: objFile(i), Index: idx, Cost: repairCost,
						})
					}
				}
			}

			// Drain every node's queue under the per-epoch byte cap.
			for n := 0; n < cfg.Nodes; n++ {
				start := rng.Intn(cfg.Nodes)
				spent := queues[n].Drain(budget, func(it ec.RepairItem) (int64, bool) {
					i := objIndex(it.File)
					o := objs[i]
					if o.lost || o.holders[it.Index] >= 0 {
						return 0, false
					}
					if o.liveFragments() < p.Data {
						return 0, false // below m survivors; nothing to rebuild from
					}
					// Re-place on a node not already holding a fragment
					// of this object.
					for d := 0; d < cfg.Nodes; d++ {
						cand := (start + d) % cfg.Nodes
						taken := false
						for _, h := range o.holders {
							if h == cand {
								taken = true
								break
							}
						}
						if !taken {
							o.holders[it.Index] = cand
							return repairCost, true
						}
					}
					return 0, false
				})
				if spent > pt.MaxNodeEpochBytes {
					pt.MaxNodeEpochBytes = spent
				}
			}
		}

		alive := 0
		for _, o := range objs {
			if !o.lost {
				alive++
			}
		}
		pt.Alive = append(pt.Alive, alive)
	}

	for _, q := range queues {
		c := q.ObsCounters()
		pt.RepairsDone += c["ec_repairs_done_total"]
		pt.RepairsDeferred += c["ec_repairs_deferred_total"]
		pt.RepairBytes += c["ec_repair_bytes_total"]
	}
	return pt
}

// objFile packs an object index into the id.File key the repair queue
// orders by; objIndex unpacks it.
func objFile(i int) (f id.File) {
	binary.BigEndian.PutUint64(f[:8], uint64(i))
	return f
}

func objIndex(f id.File) int {
	return int(binary.BigEndian.Uint64(f[:8]))
}

// RenderECDurability formats the sweep: one row per (budget, scheme)
// with survival at the end of the run and the repair-side counters.
func RenderECDurability(r *ECDurabilityResult) string {
	var b strings.Builder
	c := r.Config
	fmt.Fprintf(&b, "EC durability sweep: %d nodes, %d objects x %dKB, churn %.0f%%/epoch x %d epochs, overhead %.1fx both schemes\n",
		c.Nodes, c.Objects, c.ObjectSize>>10, 100*c.ChurnRate, c.Epochs, c.EC.Overhead())
	fmt.Fprintf(&b, "%10s %9s %9s %9s %9s %10s %12s %14s\n",
		"budget/ep", "scheme", "alive@1/3", "alive@2/3", "survive%", "repairs", "deferred", "max-node-ep")
	for _, p := range r.Points {
		e := len(p.Alive) - 1
		bud := "off"
		if p.Budget > 0 {
			bud = fmt.Sprintf("%dKB", p.Budget>>10)
		}
		fmt.Fprintf(&b, "%10s %9s %9d %9d %8.1f%% %10d %12d %12dKB\n",
			bud, p.Scheme, p.Alive[e/3], p.Alive[2*e/3], 100*p.Survival(),
			p.RepairsDone, p.RepairsDeferred, p.MaxNodeEpochBytes>>10)
	}
	fmt.Fprintf(&b, "fingerprint: %s\n", r.Fingerprint)
	return b.String()
}

// CheckECDurability asserts the properties the experiment exists to
// show: the repair byte cap is respected by every node in every epoch;
// at the largest budget the coded mode's survival matches or beats
// replication at the same storage overhead; and with repair off both
// schemes decay below their repaired survival.
func CheckECDurability(r *ECDurabilityResult) error {
	rep := ec.Params{Data: 1, Parity: r.Config.Replication - 1}.String()
	ecs := r.Config.EC.String()
	for _, p := range r.Points {
		if p.Budget > 0 && p.MaxNodeEpochBytes > p.Budget {
			return fmt.Errorf("ecdurability: %s at %dB budget: a node spent %dB in one epoch",
				p.Scheme, p.Budget, p.MaxNodeEpochBytes)
		}
	}
	top := r.Config.RepairBudgets[len(r.Config.RepairBudgets)-1]
	if top == 0 {
		return fmt.Errorf("ecdurability: sweep has no repair-on budget")
	}
	repTop, ecTop := r.At(rep, top), r.At(ecs, top)
	if repTop == nil || ecTop == nil {
		return fmt.Errorf("ecdurability: sweep missing top-budget cells")
	}
	if ecTop.Survival() < repTop.Survival() {
		return fmt.Errorf("ecdurability: at %dB budget EC survival %.3f below replication %.3f",
			top, ecTop.Survival(), repTop.Survival())
	}
	repOff, ecOff := r.At(rep, 0), r.At(ecs, 0)
	if repOff == nil || ecOff == nil {
		return fmt.Errorf("ecdurability: sweep missing repair-off cells")
	}
	if ecOff.Survival() >= ecTop.Survival() || repOff.Survival() >= repTop.Survival() {
		return fmt.Errorf("ecdurability: repair-off survival (ec %.3f, rep %.3f) did not decay below repaired (ec %.3f, rep %.3f)",
			ecOff.Survival(), repOff.Survival(), ecTop.Survival(), repTop.Survival())
	}
	return nil
}
