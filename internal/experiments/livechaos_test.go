package experiments

import (
	"strings"
	"testing"

	"past/internal/cluster"
)

// synthLiveChaos builds the result a PASSING run with this
// configuration must produce — every field of the stable render is a
// function of the plan.
func synthLiveChaos(t *testing.T, nodes, rounds int, killRate float64, seed int64) *LiveChaosResult {
	t.Helper()
	plan, err := cluster.PlanFaults(cluster.ScenarioMixed, nodes, rounds, killRate, seed)
	if err != nil {
		t.Fatal(err)
	}
	s := &cluster.ScenarioResult{
		Scenario: cluster.ScenarioMixed,
		Nodes:    nodes,
		K:        3,
		Seed:     seed,
		Rounds:   rounds,
		PlanFP:   cluster.PlanFingerprint(plan),
		Checked:  true,
	}
	r := &LiveChaosResult{Scenario: s}
	r.NodeLives = make([]int, nodes)
	r.NodeRestarts = make([]int, nodes)
	for i := range r.NodeLives {
		r.NodeLives[i] = 1
	}
	for _, f := range plan {
		if f.Kind == cluster.FaultKill {
			s.PlannedKills++
		} else {
			s.PlannedTerms++
		}
		r.NodeLives[f.Node]++
		r.NodeRestarts[f.Node]++
	}
	s.RoundsRun, s.Kills, s.Terms = rounds, s.PlannedKills, s.PlannedTerms
	return r
}

func TestLiveChaosStableRender(t *testing.T) {
	a := synthLiveChaos(t, 10, 6, 0.1, 1)
	b := synthLiveChaos(t, 10, 6, 0.1, 1)
	if sa, sb := StableLiveChaos(a), StableLiveChaos(b); sa != sb {
		t.Fatalf("same seed renders differently:\n%s\nvs\n%s", sa, sb)
	}
	c := synthLiveChaos(t, 10, 6, 0.1, 2)
	if StableLiveChaos(a) == StableLiveChaos(c) {
		t.Fatal("different seeds render identically")
	}
	if !a.Scenario.Passed() {
		t.Fatal("synthetic passing run does not pass")
	}
	stable := StableLiveChaos(a)
	if !strings.Contains(stable, "verdict=PASS") {
		t.Fatalf("stable render missing verdict:\n%s", stable)
	}
	if !strings.Contains(stable, "plan="+a.Scenario.PlanFP) {
		t.Fatalf("stable render missing plan fingerprint:\n%s", stable)
	}
	// The run-variable portion stays below the rule.
	if strings.Contains(stable, "elapsed") {
		t.Fatalf("stable render leaks wall-clock detail:\n%s", stable)
	}
	full := RenderLiveChaos(a)
	if !strings.Contains(full, "elapsed") || !strings.Contains(full, "---") {
		t.Fatalf("full render missing variable section:\n%s", full)
	}
}

func TestLiveChaosDefaults(t *testing.T) {
	cfg := LiveChaosConfig{}.withDefaults()
	if cfg.Nodes != 10 || cfg.K != 3 || cfg.Seed != 1 ||
		cfg.Scenario != cluster.ScenarioMixed || cfg.Rounds != 6 ||
		cfg.KillRate != 0.1 || cfg.FilesPerRound != 6 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
