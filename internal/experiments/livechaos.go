package experiments

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"past/internal/cluster"
	"past/internal/fleetobs"
	"past/internal/obs"
)

// Live chaos is the promotion of the emulated chaos soak to real
// processes: the same invariants (replica placement, pointer validity,
// durability of acked writes) audited over a fleet of pastd processes
// taking real signals, with logstore recovery — not simulated state
// restoration — bringing crashed nodes back. It validates that the
// robustness results measured in emulation survive contact with
// address-space isolation, TCP, and the filesystem.
//
// IMPORTANT: RunLiveChaos spawns subprocesses by re-executing the
// current binary; the hosting main (or TestMain) must call
// cluster.MaybeRunDaemon(daemon.Run) first. Tests in this package
// exercise only the deterministic planning/rendering halves.

// LiveChaosConfig parameterizes one live-fleet chaos run.
type LiveChaosConfig struct {
	// Nodes is the fleet size. Default 10.
	Nodes int
	// K is the replication factor. Default 3.
	K int
	// Seed fixes node identities, the fault schedule, and the traffic.
	// Default 1.
	Seed int64
	// Scenario is the fault mix (cluster.Scenario*). Default "mixed".
	Scenario string
	// Rounds is the number of fault rounds. Default 6.
	Rounds int
	// KillRate is the fraction of the fleet disturbed per round.
	// Default 0.1 (at least one victim per round).
	KillRate float64
	// FilesPerRound is the insert batch before each round. Default 6.
	FilesPerRound int
	// Duration, when nonzero, bounds the run's wall-clock; rounds not
	// started by then are skipped (and the run reports FAIL, since the
	// plan was not delivered).
	Duration time.Duration
	// Check enables the live invariant audit and acked-write
	// verification after every round.
	Check bool
	// EC, when non-empty ("m,n"), runs the fleet in erasure-coded
	// storage mode; with Check on, the fragment-loss invariant is
	// audited alongside the replica invariants.
	EC string
	// ECRepairBudget caps each daemon's per-pass repair bytes
	// (empty: uncapped).
	ECRepairBudget string
	// Dir is the base directory for node data and captured logs
	// (empty: temp, removed on success unless Keep).
	Dir string
	// Keep retains the base directory even on success.
	Keep bool
	// Command overrides how daemons launch (default: self-exec).
	Command cluster.Command
	// Out receives narration (default: discard).
	Out io.Writer
	// Events receives the JSONL event stream (nil: none).
	Events *obs.EventLog
}

func (c LiveChaosConfig) withDefaults() LiveChaosConfig {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scenario == "" {
		c.Scenario = cluster.ScenarioMixed
	}
	if c.Rounds == 0 {
		c.Rounds = 6
	}
	if c.KillRate == 0 {
		c.KillRate = 0.1
	}
	if c.FilesPerRound == 0 {
		c.FilesPerRound = 6
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// LiveChaosResult is one run's outcome. Scenario carries the
// seed-stable summary; NodeLives/NodeRestarts the per-node fate table;
// Dir the retained artifact directory ("" when cleaned up).
type LiveChaosResult struct {
	Scenario     *cluster.ScenarioResult
	NodeLives    []int
	NodeRestarts []int
	Dir          string
}

// RunLiveChaos boots the fleet, runs the seeded scenario, and tears the
// fleet down. On success a temp base directory is removed (unless
// cfg.Keep); on failure it is always retained so the per-node logs can
// be read.
func RunLiveChaos(cfg LiveChaosConfig) (*LiveChaosResult, error) {
	cfg = cfg.withDefaults()
	cl, err := cluster.Start(cluster.Config{
		Nodes:          cfg.Nodes,
		Seed:           cfg.Seed,
		K:              cfg.K,
		EC:             cfg.EC,
		ECRepairBudget: cfg.ECRepairBudget,
		Dir:            cfg.Dir,
		Command:        cfg.Command,
		Out:            cfg.Out,
		Events:         cfg.Events,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	scfg := cluster.ScenarioConfig{
		Scenario:      cfg.Scenario,
		Rounds:        cfg.Rounds,
		KillRate:      cfg.KillRate,
		FilesPerRound: cfg.FilesPerRound,
		Seed:          cfg.Seed,
		NoCheck:       !cfg.Check,
		Out:           cfg.Out,
	}
	if cfg.EC != "" {
		scfg.SLOs = fleetobs.ECScenarioSLOs()
	}
	if cfg.Duration > 0 {
		scfg.Deadline = time.Now().Add(cfg.Duration)
	}
	sres, err := cluster.RunScenario(cl, scfg)
	if err != nil {
		return nil, fmt.Errorf("live chaos (logs under %s): %w", cl.Dir(), err)
	}

	res := &LiveChaosResult{Scenario: sres, Dir: cl.Dir()}
	for _, p := range cl.Procs {
		res.NodeLives = append(res.NodeLives, p.Lives)
		res.NodeRestarts = append(res.NodeRestarts, p.Restarts)
	}
	if cl.TempDir() && sres.Passed() && !cfg.Keep {
		cl.Close()
		os.RemoveAll(cl.Dir())
		res.Dir = ""
	}
	return res, nil
}

// RenderLiveChaos renders the run. Everything above the "---" rule is
// derivable from the seed and plan alone, so two passing runs with the
// same configuration render it identically; wall-clock details live
// below the rule.
func RenderLiveChaos(r *LiveChaosResult) string {
	var b strings.Builder
	s := r.Scenario
	fmt.Fprintf(&b, "live chaos — real process fleet\n")
	fmt.Fprintf(&b, "%s\n", s.Summary())
	fmt.Fprintf(&b, "node  lives  restarts\n")
	for i := range r.NodeLives {
		fmt.Fprintf(&b, "%4d  %5d  %8d\n", i, r.NodeLives[i], r.NodeRestarts[i])
	}
	// SLO burn lines are deterministic on passing runs (breaches=0,
	// burn=0.00, windows = the planned round count), so they belong to
	// the stable region: a compliance regression changes the comparison
	// summary, exactly like a lost write would.
	for _, burn := range s.SLO {
		fmt.Fprintf(&b, "%s\n", burn.Line())
	}
	fmt.Fprintf(&b, "---\n")
	fmt.Fprintf(&b, "rounds run %d/%d, faults delivered %d/%d, inserts %d acked %d, elapsed %v\n",
		s.RoundsRun, s.Rounds, s.Kills+s.Terms, s.PlannedKills+s.PlannedTerms,
		s.Inserted, s.Acked, s.Elapsed.Round(time.Millisecond))
	if r.Dir != "" {
		fmt.Fprintf(&b, "artifacts: %s\n", r.Dir)
	}
	for _, v := range s.ViolationDetail {
		fmt.Fprintf(&b, "violation: %s\n", v)
	}
	return b.String()
}

// StableLiveChaos returns only the seed-stable portion of the render —
// what the CLI prints for summary comparison across runs.
func StableLiveChaos(r *LiveChaosResult) string {
	full := RenderLiveChaos(r)
	if i := strings.Index(full, "---\n"); i >= 0 {
		return full[:i]
	}
	return full
}
