package daemon

import (
	"net"
	"strings"
	"testing"
	"time"

	"past/internal/past"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

func newTestNode(t *testing.T, seed int64) (*past.Node, *transport.TCP) {
	t.Helper()
	wire.RegisterWire()
	past.RegisterWire()
	nid := NodeIDFromSeed(seed)
	tr, err := transport.New(nid, "127.0.0.1:0", topology.Point{X: float64(seed), Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	cfg := past.DefaultConfig()
	cfg.K = 1
	node := past.New(nid, tr, cfg, 1<<20, seed)
	tr.Serve(node)
	return node, tr
}

// TestJoinWithRetryExhaustsBudget: nothing ever listens at the target,
// so the bounded budget is spent and the error names the address and
// attempt count instead of the old immediate fatal.
func TestJoinWithRetryExhaustsBudget(t *testing.T) {
	node, tr := newTestNode(t, 101)
	// Reserve a port and close it so nothing is listening there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	start := time.Now()
	err = joinWithRetry(tr, node, dead, 2, 5*time.Millisecond)
	if err == nil {
		t.Fatal("joinWithRetry succeeded against a dead address")
	}
	if !strings.Contains(err.Error(), dead) || !strings.Contains(err.Error(), "3 attempt(s)") {
		t.Fatalf("error %q does not name the address and attempt count", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("budget of 3 quick attempts took %v", time.Since(start))
	}
}

// TestJoinWithRetryBootstrapComesUpLate: the bootstrap node starts
// listening only after the joiner's first attempts have failed; the
// retry loop must ride over the gap and complete the join.
func TestJoinWithRetryBootstrapComesUpLate(t *testing.T) {
	joiner, jtr := newTestNode(t, 102)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bootAddr := ln.Addr().String()
	ln.Close()

	go func() {
		time.Sleep(300 * time.Millisecond)
		wire.RegisterWire()
		past.RegisterWire()
		nid := NodeIDFromSeed(103)
		tr, err := transport.New(nid, bootAddr, topology.Point{X: 1, Y: 1})
		if err != nil {
			return
		}
		cfg := past.DefaultConfig()
		cfg.K = 1
		boot := past.New(nid, tr, cfg, 1<<20, 103)
		tr.Serve(boot)
		boot.Overlay().Bootstrap()
	}()

	if err := joinWithRetry(jtr, joiner, bootAddr, 20, 50*time.Millisecond); err != nil {
		t.Fatalf("joinWithRetry with a late bootstrap: %v", err)
	}
	if !joiner.Overlay().Joined() {
		t.Fatal("joiner reports not joined after successful joinWithRetry")
	}
}
