// Package daemon is the PAST storage daemon: the whole of what the
// pastd binary does, packaged as a callable Run so other executables
// can host it. cmd/pastd is a one-line wrapper; cmd/past-cluster and
// the internal/cluster tests re-exec *themselves* with a sentinel
// environment variable and dispatch into Run, which is how the
// orchestrator boots a fleet of real daemon processes without needing
// a separately built binary on disk.
//
// Start the first node of a network:
//
//	pastd -addr 127.0.0.1:7001 -capacity 64MB
//
// Join additional nodes to it:
//
//	pastd -addr 127.0.0.1:7002 -capacity 64MB -join 127.0.0.1:7001
//
// The node then accepts overlay traffic from peers and client requests
// from pastctl. The proximity metric is an emulated 2-D coordinate
// (-x/-y); a deployment would substitute network measurements.
//
// With -debug-addr the node additionally serves a plaintext debug
// endpoint: Prometheus-format metrics at /metrics, a readiness probe
// at /healthz (503 until the store has recovered and the overlay has
// joined, 200 after), and the standard net/http/pprof profiling
// handlers under /debug/pprof/.
package daemon

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	mrand "math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"past/internal/admit"
	"past/internal/cachengine"
	"past/internal/ec"
	"past/internal/id"
	"past/internal/logstore"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/store"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

// Run executes the daemon with the given command-line arguments
// (excluding the program name) and returns the process exit code. It
// blocks until the node leaves (SIGINT/SIGTERM) or setup fails.
func Run(args []string) int {
	fs := flag.NewFlagSet("pastd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7001", "listen address (host:port; must be reachable by peers)")
		capacity  = fs.String("capacity", "64MB", "advertised storage capacity (e.g. 512KB, 64MB, 2GB)")
		dataDir   = fs.String("data", "", "data directory for persistent storage (empty: in-memory)")
		join      = fs.String("join", "", "address of an existing node to join via (empty: bootstrap a new network)")
		x         = fs.Float64("x", math.NaN(), "proximity-plane x coordinate (default random)")
		y         = fs.Float64("y", math.NaN(), "proximity-plane y coordinate (default random)")
		k         = fs.Int("k", 5, "replication factor")
		leafSet   = fs.Int("l", 32, "Pastry leaf set size")
		keepalive = fs.Duration("keepalive", 5*time.Second, "leaf-set keep-alive period")
		maintain  = fs.Duration("maintain", 0, "periodic replica-maintenance (anti-entropy) period (0: leaf-set-change-triggered only)")
		seed      = fs.Int64("seed", 0, "node id seed (0: cryptographically random)")

		joinRetries = fs.Int("join-retries", 10, "bounded retries when the -join bootstrap node is not up yet (0: single attempt)")
		joinBackoff = fs.Duration("join-backoff", 100*time.Millisecond, "initial backoff between join attempts (doubles, capped at 2s)")

		storeKind  = fs.String("store", "", "storage backend: mem, disk, or log (empty: disk when -data is set, else mem)")
		syncPolicy = fs.String("sync", "always", "log store durability: always (group commit), interval, or never")
		syncEvery  = fs.Duration("sync-every", 100*time.Millisecond, "log store: fsync period for -sync=interval")
		segBytes   = fs.String("segment-bytes", "64MB", "log store: target segment size before rotation")
		ckptBytes  = fs.String("checkpoint-bytes", "4MB", "log store: WAL bytes between automatic checkpoints (0: disable)")
		compactR   = fs.Float64("compact-ratio", 0.5, "log store: compact a sealed segment when its live fraction falls below this (negative: disable)")
		compactEv  = fs.Duration("compact-every", time.Minute, "log store: background compaction scan period (0: disable)")

		retries    = fs.Int("retries", 0, "resilience layer: attempts per client operation, with backoff (0: single attempt, no retry layer)")
		hedge      = fs.Duration("hedge", 0, "hedged lookups: delay before a second attempt races the first through a different first hop (0: off; needs -retries)")
		hopTimeout = fs.Duration("hop-timeout", 2*time.Second, "per-hop routing RPC timeout before trying an alternate (0: unbounded)")
		partial    = fs.Bool("partial-insert", false, "accept inserts that stored at least one but fewer than k replicas; maintenance repairs the shortfall")
		debugAddr  = fs.String("debug-addr", "", "serve /metrics, /healthz, /traces, and /debug/pprof/ on this address (empty: off)")

		traceEvery = fs.Int("trace-every", 0, "route tracing: sample every Nth client operation into the trace ring (0: off; explicit pastctl trace requests always record)")
		traceKeep  = fs.Int("trace-keep", 64, "route tracing: ring capacity served at /traces")

		admitRate   = fs.Float64("admit-rate", 0, "admission control: sustained request rate in req/s; excess load is shed with an overload error (0: off)")
		admitBurst  = fs.Int("admit-burst", 8, "admission control: token-bucket burst")
		admitDepth  = fs.Int("admit-depth", 16, "admission control: bounded queue depth before shedding")
		admitPolicy = fs.String("admit-policy", "droptail", "admission control: shed policy — droptail, dropfront, or lifo")

		cacheShards = fs.Int("cache-shards", 8, "cache engine: RAM-tier shard count (rounded up to a power of two; 1 = legacy single structure)")
		cacheRAM    = fs.String("cache-ram", "0", "cache engine: RAM-tier cap (e.g. 16MB); 0 lets the cache use all free store space, as the paper does")
		cacheDoor   = fs.Bool("cache-doorkeeper", false, "cache engine: admit a file only on its second offer within a window (one-hit-wonder filter)")
		cacheNeg    = fs.Int("cache-negative", 0, "cache engine: negative-cache entries — repeated lookups for absent files answer locally (0: off)")
		cacheFlash  = fs.String("cache-flash", "0", "cache engine: flash-tier capacity (e.g. 256MB); spills RAM evictions into segments under <data>/flashcache (0: off; needs -data)")
		cacheFlSeg  = fs.String("cache-flash-segment", "4MB", "cache engine: flash segment rotation target")

		ecMode   = fs.String("ec", "", "erasure-coded storage mode: m,n (e.g. 4,2) RS-codes inserts into m data + n parity fragments spread over the leaf set, k-replicating only the fragment map (empty: plain k-way replication)")
		ecBudget = fs.String("ec-repair-budget", "0", "erasure coding: per-maintenance-pass byte cap on lazy fragment repair (e.g. 256KB); 0: uncapped")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	capBytes, err := parseSize(*capacity)
	if err != nil {
		log.Printf("pastd: %v", err)
		return 1
	}

	var nid id.Node
	if *seed != 0 {
		r := mrand.New(mrand.NewSource(*seed))
		r.Read(nid[:])
	} else if _, err := rand.Read(nid[:]); err != nil {
		log.Printf("pastd: node id: %v", err)
		return 1
	}

	pos := topology.Point{X: *x, Y: *y}
	if math.IsNaN(pos.X) || math.IsNaN(pos.Y) {
		r := mrand.New(mrand.NewSource(time.Now().UnixNano()))
		pos = topology.DefaultPlane.RandomPoint(r)
	}

	wire.RegisterWire()
	past.RegisterWire()

	tr, err := transport.New(nid, *addr, pos)
	if err != nil {
		log.Printf("pastd: %v", err)
		return 1
	}
	cfg := past.DefaultConfig()
	cfg.K = *k
	cfg.Pastry.L = *leafSet
	cfg.Pastry.HopTimeout = *hopTimeout
	cfg.PartialInsert = *partial
	if *ecMode != "" {
		p, err := ec.ParseParams(*ecMode)
		if err != nil {
			log.Printf("pastd: -ec: %v", err)
			return 1
		}
		cfg.ECMode = &p
		budget, err := parseSize(*ecBudget)
		if err != nil {
			log.Printf("pastd: -ec-repair-budget: %v", err)
			return 1
		}
		cfg.ECRepairBudget = budget
	}
	var tracer *obs.Tracer
	if *traceEvery > 0 {
		tracer = obs.NewTracer(*traceEvery, *traceKeep)
		cfg.Tracer = tracer
	}
	if *retries > 0 {
		cfg.Retry = &past.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   50 * time.Millisecond,
			Timeout:     5 * time.Second,
			JitterSeed:  time.Now().UnixNano(),
			Hedge:       *hedge > 0,
			HedgeDelay:  *hedge,
		}
	}
	if *admitRate > 0 {
		pol, err := admit.ParsePolicy(*admitPolicy)
		if err != nil {
			log.Printf("pastd: %v", err)
			return 1
		}
		cfg.Admit = &admit.Config{
			Rate:   *admitRate,
			Burst:  *admitBurst,
			Depth:  *admitDepth,
			Policy: pol,
		}
	}
	cacheRAMBytes, err := parseSize(*cacheRAM)
	if err != nil {
		log.Printf("pastd: -cache-ram: %v", err)
		return 1
	}
	cacheFlashBytes, err := parseSize(*cacheFlash)
	if err != nil {
		log.Printf("pastd: -cache-flash: %v", err)
		return 1
	}
	cfg.CacheEngine = &cachengine.Config{
		Shards:          *cacheShards,
		RAMBytes:        cacheRAMBytes,
		Doorkeeper:      *cacheDoor,
		NegativeEntries: *cacheNeg,
	}
	if cacheFlashBytes > 0 {
		if *dataDir == "" {
			log.Printf("pastd: -cache-flash requires -data")
			return 1
		}
		flashSeg, err := parseSize(*cacheFlSeg)
		if err != nil {
			log.Printf("pastd: -cache-flash-segment: %v", err)
			return 1
		}
		cfg.CacheEngine.Flash = &cachengine.FlashConfig{
			Dir:          filepath.Join(*dataDir, "flashcache"),
			Capacity:     cacheFlashBytes,
			SegmentBytes: flashSeg,
		}
	}

	kind := *storeKind
	if kind == "" {
		if *dataDir != "" {
			kind = "disk"
		} else {
			kind = "mem"
		}
	}
	var backend store.Backend
	switch kind {
	case "mem":
		backend = store.New(capBytes)
	case "disk":
		if *dataDir == "" {
			log.Printf("pastd: -store=disk requires -data")
			return 1
		}
		backend, err = store.OpenDisk(*dataDir, capBytes)
		if err != nil {
			log.Printf("pastd: %v", err)
			return 1
		}
		log.Printf("pastd: persistent storage at %s (%d replicas on disk)", *dataDir, backend.Len())
	case "log":
		if *dataDir == "" {
			log.Printf("pastd: -store=log requires -data")
			return 1
		}
		policy, err := logstore.ParseSyncPolicy(*syncPolicy)
		if err != nil {
			log.Printf("pastd: %v", err)
			return 1
		}
		segTarget, err := parseSize(*segBytes)
		if err != nil {
			log.Printf("pastd: -segment-bytes: %v", err)
			return 1
		}
		ckpt, err := parseSize(*ckptBytes)
		if err != nil {
			log.Printf("pastd: -checkpoint-bytes: %v", err)
			return 1
		}
		if ckpt == 0 {
			ckpt = -1
		}
		ls, err := logstore.Open(*dataDir, logstore.Options{
			Capacity:        capBytes,
			Sync:            policy,
			SyncEvery:       *syncEvery,
			SegmentTarget:   segTarget,
			CheckpointBytes: ckpt,
			CompactRatio:    *compactR,
			CompactEvery:    *compactEv,
		})
		if err != nil {
			log.Printf("pastd: %v", err)
			return 1
		}
		st := ls.Stats()
		log.Printf("pastd: log-structured storage at %s (%d replicas, %d WAL records replayed in %s, %d torn tails truncated, sync=%s)",
			*dataDir, ls.Len(), st.RecoveredRecords.Load(),
			time.Duration(st.RecoveryNanos.Load()), st.TornTruncations.Load(), policy)
		backend = ls
	default:
		log.Printf("pastd: unknown -store %q (want mem, disk, or log)", kind)
		return 1
	}
	node, err := past.NewWithStoreEngine(nid, tr, cfg, backend, int64(nid[0])<<8|int64(nid[1]))
	if err != nil {
		log.Printf("pastd: %v", err)
		return 1
	}
	ec := node.Cache().Config()
	if ec.Flash != nil {
		log.Printf("pastd: cache engine: %d shards, flash tier %d bytes at %s", ec.Shards, ec.Flash.Capacity, ec.Flash.Dir)
	} else {
		log.Printf("pastd: cache engine: %d shards", ec.Shards)
	}
	tr.Serve(node)

	// The readiness flag gates /healthz: the store has recovered by the
	// time the backend is open (recovery is synchronous in Open), so
	// readiness flips when the overlay join completes. The orchestrator
	// polls /healthz to order joins and to detect restarts.
	var ready atomic.Bool
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Printf("pastd: debug listener: %v", err)
			return 1
		}
		go func() {
			if err := http.Serve(ln, NewDebugMux(node, tracer, &ready)); err != nil {
				log.Printf("pastd: debug server: %v", err)
			}
		}()
		log.Printf("pastd: debug endpoint on http://%s/ (metrics, healthz, traces, pprof)", ln.Addr())
	}

	if *join == "" {
		node.Overlay().Bootstrap()
		log.Printf("pastd: bootstrapped network; node %s listening on %s (capacity %d bytes)",
			nid.Short(), tr.Addr(), capBytes)
	} else {
		if err := joinWithRetry(tr, node, *join, *joinRetries, *joinBackoff); err != nil {
			log.Printf("pastd: %v", err)
			return 1
		}
		log.Printf("pastd: node %s joined via %s; listening on %s", nid.Short(), *join, tr.Addr())
	}
	ready.Store(true)

	ticker := time.NewTicker(*keepalive)
	defer ticker.Stop()
	var maintainC <-chan time.Time
	if *maintain > 0 {
		mt := time.NewTicker(*maintain)
		defer mt.Stop()
		maintainC = mt.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			if dead := node.Overlay().CheckLeafSet(); len(dead) > 0 {
				for _, d := range dead {
					log.Printf("pastd: leaf-set member %s presumed failed", d.Short())
				}
			}
		case <-maintainC:
			// Anti-entropy: leaf-set-change-triggered maintenance can be
			// starved when the change's RPCs were lost; a periodic pass
			// restores the replica invariant. Maintain coalesces
			// overlapping invocations, so a slow pass cannot pile up.
			go node.Maintain()
		case <-sig:
			ready.Store(false)
			log.Printf("pastd: leaving gracefully")
			lr := node.Leave()
			log.Printf("pastd: offloaded %d replicas (%d failed, %d owners notified)",
				lr.Offloaded, lr.Failed, lr.OwnersNotified)
			if err := node.Cache().Close(); err != nil {
				log.Printf("pastd: cache close: %v", err)
			}
			if c, ok := backend.(io.Closer); ok {
				if err := c.Close(); err != nil {
					log.Printf("pastd: store close: %v", err)
				}
			}
			if err := tr.Close(); err != nil {
				log.Printf("pastd: close: %v", err)
			}
			return 0
		}
	}
}

// joinWithRetry bootstraps the transport directory and joins the
// overlay via the node at joinAddr, retrying with capped exponential
// backoff while the bootstrap node is not up yet. retries is the
// number of attempts *after* the first; the error after the budget is
// spent names the address and the attempt count.
func joinWithRetry(tr *transport.TCP, node *past.Node, joinAddr string, retries int, backoff time.Duration) error {
	if retries < 0 {
		retries = 0
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	const backoffCap = 2 * time.Second
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > backoffCap {
				backoff = backoffCap
			}
		}
		bootID, err := tr.Bootstrap(joinAddr)
		if err != nil {
			lastErr = err
			log.Printf("pastd: join attempt %d/%d: %v", attempt+1, retries+1, err)
			continue
		}
		if err := node.Overlay().Join(bootID); err != nil {
			lastErr = err
			log.Printf("pastd: join attempt %d/%d: overlay join: %v", attempt+1, retries+1, err)
			continue
		}
		return nil
	}
	return fmt.Errorf("join %s: giving up after %d attempt(s): %v", joinAddr, retries+1, lastErr)
}

// NewDebugMux builds the debug endpoint: live node metrics in the
// Prometheus text format at /metrics, a readiness probe at /healthz,
// the sampled route-trace ring at /traces, the standard pprof handlers
// under /debug/pprof/, and an index at / — unknown paths get a real
// 404, not a 200 echo of the index. ready may be nil, in which case
// /healthz reports the overlay join state alone; tracer may be nil
// (sampling off), in which case /traces reports that.
func NewDebugMux(node *past.Node, tracer *obs.Tracer, ready *atomic.Bool) *http.ServeMux {
	mux := http.NewServeMux()
	labels := map[string]string{"node": node.ID().Short()}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteProm(w, node.StatsSnapshot(), labels); err != nil {
			log.Printf("pastd: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if (ready == nil || ready.Load()) && node.Overlay().Joined() {
			fmt.Fprintf(w, "ok %s\n", node.ID().Short())
			return
		}
		http.Error(w, "starting", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tracer == nil {
			fmt.Fprintf(w, "trace sampling off (start with -trace-every N)\n")
			return
		}
		traces := tracer.Traces()
		fmt.Fprintf(w, "node %s: %d sampled of %d operations, keeping %d\n",
			node.ID().Short(), tracer.Sampled(), tracer.Started(), len(traces))
		for _, tr := range traces {
			fmt.Fprintf(w, "%s\n", tr.Detailed())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "pastd %s\n/metrics\n/healthz\n/traces\n/debug/pprof/\n", node.ID().Short())
	})
	return mux
}

// NodeIDFromSeed reproduces the daemon's -seed to nodeId derivation, so
// an orchestrator that assigns seeds knows each process's identity
// without a round trip.
func NodeIDFromSeed(seed int64) id.Node {
	var nid id.Node
	r := mrand.New(mrand.NewSource(seed))
	r.Read(nid[:])
	return nid
}

// parseSize parses sizes like "512", "64KB", "2MB", "1GB".
func parseSize(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	case strings.HasSuffix(u, "B"):
		u = strings.TrimSuffix(u, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	return n * mult, nil
}
