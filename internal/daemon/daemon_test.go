package daemon

import (
	"io"
	mrand "math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"past/internal/id"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"512", 512, true},
		{"512B", 512, true},
		{"4KB", 4 << 10, true},
		{"64MB", 64 << 20, true},
		{"2GB", 2 << 30, true},
		{" 8 MB ", 8 << 20, true},
		{"1gb", 1 << 30, true},
		{"", 0, false},
		{"abc", 0, false},
		{"-5MB", 0, false},
		{"12TB", 0, false}, // unsupported suffix -> parse failure
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("parseSize(%q) succeeded; want error", c.in)
		}
	}
}

// TestNodeIDFromSeed pins the seed -> nodeId derivation to the one Run
// performs, so orchestrators that predict identities stay correct.
func TestNodeIDFromSeed(t *testing.T) {
	var want id.Node
	r := mrand.New(mrand.NewSource(42))
	r.Read(want[:])
	if got := NodeIDFromSeed(42); got != want {
		t.Fatalf("NodeIDFromSeed(42) = %s, want %s", got, want)
	}
	if NodeIDFromSeed(1) == NodeIDFromSeed(2) {
		t.Fatal("distinct seeds produced the same node id")
	}
}

// TestDebugMux drives the -debug-addr endpoint: /metrics serves the
// node's registry in the Prometheus text format, /healthz tracks the
// readiness flag and join state, and the pprof handlers answer under
// /debug/pprof/.
func TestDebugMux(t *testing.T) {
	wire.RegisterWire()
	past.RegisterWire()
	rng := mrand.New(mrand.NewSource(3))
	var nid id.Node
	rng.Read(nid[:])
	tr, err := transport.New(nid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := past.DefaultConfig()
	cfg.K = 1
	tracer := obs.NewTracer(1, 8)
	cfg.Tracer = tracer
	node := past.New(nid, tr, cfg, 1<<20, 1)
	tr.Serve(node)

	var ready atomic.Bool
	srv := httptest.NewServer(NewDebugMux(node, tracer, &ready))
	defer srv.Close()

	// Before Bootstrap and before the ready flag: 503.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz before join: status %d, want 503", resp.StatusCode)
	}

	node.Overlay().Bootstrap()
	// Joined but the daemon has not flipped the flag yet: still 503.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz before ready: status %d, want 503", resp.StatusCode)
	}

	ready.Store(true)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), nid.Short()) {
		t.Fatalf("GET /healthz ready: status %d body %q", resp.StatusCode, body)
	}

	if _, err := node.Insert(past.InsertSpec{Name: "m", Content: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, err %v", resp.StatusCode, err)
	}
	out := string(mb)
	for _, want := range []string{
		"# TYPE past_inserts_total counter",
		"past_inserts_total{node=\"" + nid.Short() + "\"} 1",
		"past_store_capacity_bytes",
		"# TYPE past_rpc_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: status %d", resp.StatusCode)
	}

	// The sampled-trace ring answers (the insert above was sampled at
	// -trace-every 1).
	resp, err = http.Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(tb), "insert") {
		t.Fatalf("GET /traces: status %d body %q", resp.StatusCode, tb)
	}

	// The index answers only at "/"; unknown paths are a real 404, not
	// a 200 echo of the index (a scraper probing a wrong path must see
	// the error).
	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	ib, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(ib), "/traces") {
		t.Fatalf("GET /: status %d body %q", resp.StatusCode, ib)
	}
	resp, err = http.Get(srv.URL + "/no-such-endpoint")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /no-such-endpoint: status %d, want 404", resp.StatusCode)
	}
}
