package ec

import (
	"hash/fnv"
	"sort"
	"sync"

	"past/internal/id"
	"past/internal/obs"
)

// RepairItem is one missing or corrupt fragment awaiting repair. Cost
// is the estimated bytes the repair will move (fetching m survivor
// shards plus re-placing the rebuilt one); the queue's bandwidth cap is
// enforced against it before the repair starts.
type RepairItem struct {
	File  id.File
	Index int
	Cost  int64
}

// RepairQueue is a node's lazy-repair work queue. Anti-entropy probes
// enqueue missing fragments (deduplicated by file and index); each
// maintenance pass drains the queue in a deterministic seeded order
// under a strict per-pass byte budget, so repair traffic after a
// correlated failure is spread over many passes instead of spiking.
type RepairQueue struct {
	mu    sync.Mutex
	seed  int64
	items map[fragKey]RepairItem

	enqueued int64
	repaired int64
	failed   int64
	deferred int64
	bytes    int64
}

// NewRepairQueue creates a queue whose drain order is a pure function
// of seed and the pending (file, index) pairs.
func NewRepairQueue(seed int64) *RepairQueue {
	return &RepairQueue{seed: seed, items: make(map[fragKey]RepairItem)}
}

// Enqueue adds a repair, deduplicating by (file, index). Returns true
// if the item was new.
func (q *RepairQueue) Enqueue(it RepairItem) bool {
	k := fragKey{it.File, it.Index}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.items[k]; ok {
		return false
	}
	q.items[k] = it
	q.enqueued++
	return true
}

// Len returns the current queue depth.
func (q *RepairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Drop removes a pending repair (e.g. the file was reclaimed or the
// fragment reappeared).
func (q *RepairQueue) Drop(file id.File, idx int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.items, fragKey{file, idx})
}

// priority orders the queue deterministically: a seeded hash of the
// fragment identity, with the identity itself as tiebreak. Different
// nodes (different seeds) drain in different orders, which spreads
// repair load for a shared loss across the fleet.
func (q *RepairQueue) priority(k fragKey) uint64 {
	h := fnv.New64a()
	var s [8]byte
	for i := 0; i < 8; i++ {
		s[i] = byte(q.seed >> (8 * i))
	}
	h.Write(s[:])
	h.Write(k.file[:])
	h.Write([]byte{byte(k.idx), byte(k.idx >> 8)})
	return h.Sum64()
}

// Drain runs repairs until the queue is empty or the byte budget is
// spent. budget <= 0 means unlimited. The cap is strict: an item whose
// estimated cost exceeds the remaining budget is deferred to the next
// pass, never started — so the bytes a single pass moves can never
// exceed the budget (given honest cost estimates; the actual bytes a
// repair reports are also accumulated and returned). repair returns the
// bytes it actually moved and whether it succeeded; failed items are
// dropped and rediscovered by the next anti-entropy probe.
func (q *RepairQueue) Drain(budget int64, repair func(RepairItem) (int64, bool)) int64 {
	q.mu.Lock()
	keys := make([]fragKey, 0, len(q.items))
	for k := range q.items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		pi, pj := q.priority(keys[i]), q.priority(keys[j])
		if pi != pj {
			return pi < pj
		}
		if keys[i].file != keys[j].file {
			return string(keys[i].file[:]) < string(keys[j].file[:])
		}
		return keys[i].idx < keys[j].idx
	})
	q.mu.Unlock()

	var spent int64
	for _, k := range keys {
		q.mu.Lock()
		it, ok := q.items[k]
		if !ok {
			q.mu.Unlock()
			continue
		}
		if budget > 0 && spent+it.Cost > budget {
			q.deferred++
			q.mu.Unlock()
			continue
		}
		delete(q.items, k)
		q.mu.Unlock()

		n, ok := repair(it)
		q.mu.Lock()
		if ok {
			q.repaired++
		} else {
			q.failed++
		}
		q.bytes += n
		q.mu.Unlock()
		spent += n
	}
	return spent
}

// ObsCounters reports the queue's lifetime counters plus current depth
// in the obs.CounterSource shape, so a node can fold them into its
// stats snapshot.
func (q *RepairQueue) ObsCounters() map[string]int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return map[string]int64{
		obs.CtrECRepairDepth:    int64(len(q.items)),
		obs.CtrECRepairEnqueued: q.enqueued,
		obs.CtrECRepairDone:     q.repaired,
		obs.CtrECRepairFailed:   q.failed,
		obs.CtrECRepairDeferred: q.deferred,
		obs.CtrECRepairBytes:    q.bytes,
	}
}
