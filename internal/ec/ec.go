// Package ec makes erasure coding a first-class storage mode: the
// node-level subsystem the paper sketches as future work in section 3.6
// and internal/frag only emulates client-side. An object inserted in EC
// mode is RS(m, n)-coded by the root node into m data + n parity
// fragments placed on distinct leaf-set members; a fragment map —
// fileId, object size, coding parameters, per-fragment checksums, and
// holders — is stored as the k-replicated root object, so the map
// inherits PAST's replica maintenance while the bulk data pays only
// (m+n)/m storage overhead. Lookups reconstruct from any m fragments.
//
// The piece that makes this a subsystem rather than a codec is the lazy
// repair engine (see the queue in this package and the maintenance hook
// in internal/past): fragment-level anti-entropy detects missing or
// corrupt fragments (CRC-verified on every read, like the logstore),
// enqueues them on a per-node repair queue with deterministic seeded
// scheduling and a configurable per-pass bandwidth cap, re-encodes the
// lost fragment from m survivors, and re-places it.
package ec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"

	"past/internal/id"
)

// Params is one RS(m, n) configuration: Data (m) data fragments plus
// Parity (n) parity fragments. Any Data fragments reconstruct the
// object; storage overhead is (m+n)/m.
type Params struct {
	Data   int
	Parity int
}

// Validate checks the shard counts against the GF(2^8) coder's bounds.
func (p Params) Validate() error {
	if p.Data <= 0 || p.Parity <= 0 || p.Data+p.Parity > 255 {
		return fmt.Errorf("ec: invalid params rs(%d,%d)", p.Data, p.Parity)
	}
	return nil
}

// Total returns Data+Parity, the fragment count per object.
func (p Params) Total() int { return p.Data + p.Parity }

// Overhead returns the storage multiplier (m+n)/m.
func (p Params) Overhead() float64 { return float64(p.Total()) / float64(p.Data) }

func (p Params) String() string { return fmt.Sprintf("rs(%d,%d)", p.Data, p.Parity) }

// ParseParams parses the CLI form "m,n" (e.g. "4,2").
func ParseParams(s string) (Params, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return Params{}, fmt.Errorf("ec: want m,n (e.g. 4,2), got %q", s)
	}
	m, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil {
		return Params{}, fmt.Errorf("ec: want m,n (e.g. 4,2), got %q", s)
	}
	p := Params{Data: m, Parity: n}
	return p, p.Validate()
}

// castagnoli is the CRC32-C table, the same polynomial the logstore
// uses for its record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of a fragment payload.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// Fragment is one stored shard of an erasure-coded object.
type Fragment struct {
	File    id.File
	Index   int
	Version uint32
	Data    []byte
	CRC     uint32 // CRC32-C of Data, computed at encode time
}

// Map is the fragment map stored (k-replicated) under the object's
// fileId: everything a node needs to reconstruct the object or repair a
// fragment. Version increments on every re-placement so stale maps lose
// to repaired ones.
type Map struct {
	File      id.File
	Size      int64 // original object size
	Data      int   // RS data shards (m)
	Parity    int   // RS parity shards (n)
	ShardSize int   // bytes per fragment
	Version   uint32
	Holders   []id.Node // Holders[i] holds fragment i
	CRCs      []uint32  // CRCs[i] is fragment i's CRC32-C
}

const mapMagic = "PASTECM1"

// Params returns the map's coding parameters.
func (m *Map) Params() Params { return Params{Data: m.Data, Parity: m.Parity} }

// Encode serializes the map; the result is the content of the
// k-replicated root object.
func (m *Map) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(mapMagic)
	b.Write(m.File[:])
	binary.Write(&b, binary.BigEndian, m.Size)
	binary.Write(&b, binary.BigEndian, int32(m.Data))
	binary.Write(&b, binary.BigEndian, int32(m.Parity))
	binary.Write(&b, binary.BigEndian, int32(m.ShardSize))
	binary.Write(&b, binary.BigEndian, m.Version)
	binary.Write(&b, binary.BigEndian, int32(len(m.Holders)))
	for i := range m.Holders {
		b.Write(m.Holders[i][:])
		binary.Write(&b, binary.BigEndian, m.CRCs[i])
	}
	return b.Bytes()
}

// IsMap reports whether raw looks like an encoded fragment map — the
// test the lookup and maintenance paths use to recognize an EC root
// object among ordinary replicas.
func IsMap(raw []byte) bool {
	return len(raw) > len(mapMagic) && string(raw[:len(mapMagic)]) == mapMagic
}

// MaxMapSize bounds Encode's output over all valid parameters (255
// holders). Content-on-demand store engines list metadata-only entries;
// this lets the maintenance scan rule out large replicas without
// loading their bytes just to test IsMap.
var MaxMapSize = int64(len(mapMagic) + len(id.File{}) + 28 + 255*(len(id.Node{})+4))

// DecodeMap parses an encoded fragment map.
func DecodeMap(raw []byte) (*Map, error) {
	if !IsMap(raw) {
		return nil, fmt.Errorf("ec: not a fragment map")
	}
	r := bytes.NewReader(raw[len(mapMagic):])
	var m Map
	if _, err := r.Read(m.File[:]); err != nil {
		return nil, fmt.Errorf("ec: truncated map")
	}
	var data, parity, shard, holders int32
	for _, dst := range []any{&m.Size, &data, &parity, &shard, &m.Version, &holders} {
		if err := binary.Read(r, binary.BigEndian, dst); err != nil {
			return nil, fmt.Errorf("ec: truncated map")
		}
	}
	m.Data, m.Parity, m.ShardSize = int(data), int(parity), int(shard)
	if err := m.Params().Validate(); err != nil {
		return nil, err
	}
	if int(holders) != m.Params().Total() || m.ShardSize <= 0 || m.Size <= 0 {
		return nil, fmt.Errorf("ec: malformed map")
	}
	m.Holders = make([]id.Node, holders)
	m.CRCs = make([]uint32, holders)
	for i := range m.Holders {
		if _, err := r.Read(m.Holders[i][:]); err != nil {
			return nil, fmt.Errorf("ec: truncated map")
		}
		if err := binary.Read(r, binary.BigEndian, &m.CRCs[i]); err != nil {
			return nil, fmt.Errorf("ec: truncated map")
		}
	}
	return &m, nil
}

type fragKey struct {
	file id.File
	idx  int
}

// FragStore is a node's local fragment table. Fragments are bulk data
// held on behalf of an object rooted elsewhere — deliberately volatile
// (a crashed node loses them, and lazy repair re-creates them from
// survivors), unlike the fragment map, which rides the durable replica
// store. Reads verify the CRC; a corrupt fragment is dropped on read
// and reported missing, turning silent corruption into a repair.
type FragStore struct {
	mu          sync.Mutex
	frags       map[fragKey]*Fragment
	bytes       int64
	reads       int64
	crcFailures int64
}

// NewFragStore creates an empty fragment table.
func NewFragStore() *FragStore {
	return &FragStore{frags: make(map[fragKey]*Fragment)}
}

// Put stores (or replaces) a fragment.
func (s *FragStore) Put(f Fragment) {
	k := fragKey{f.File, f.Index}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.frags[k]; ok {
		s.bytes -= int64(len(old.Data))
	}
	cp := f
	cp.Data = append([]byte(nil), f.Data...)
	s.frags[k] = &cp
	s.bytes += int64(len(cp.Data))
}

// Get returns the fragment, CRC-verified. A checksum mismatch deletes
// the fragment and reports it missing — the caller's repair machinery
// takes it from there.
func (s *FragStore) Get(file id.File, idx int) (Fragment, bool) {
	k := fragKey{file, idx}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frags[k]
	if !ok {
		return Fragment{}, false
	}
	s.reads++
	if Checksum(f.Data) != f.CRC {
		s.crcFailures++
		s.bytes -= int64(len(f.Data))
		delete(s.frags, k)
		return Fragment{}, false
	}
	return *f, true
}

// Has reports whether the fragment is present with a valid CRC, and its
// version. Like Get it drops a corrupt fragment, but it does not count
// as a read.
func (s *FragStore) Has(file id.File, idx int) (uint32, bool) {
	k := fragKey{file, idx}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frags[k]
	if !ok {
		return 0, false
	}
	if Checksum(f.Data) != f.CRC {
		s.crcFailures++
		s.bytes -= int64(len(f.Data))
		delete(s.frags, k)
		return 0, false
	}
	return f.Version, true
}

// Delete removes a fragment.
func (s *FragStore) Delete(file id.File, idx int) {
	k := fragKey{file, idx}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.frags[k]; ok {
		s.bytes -= int64(len(f.Data))
		delete(s.frags, k)
	}
}

// DeleteFile removes every fragment of a file (reclaim).
func (s *FragStore) DeleteFile(file id.File) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, f := range s.frags {
		if k.file == file {
			s.bytes -= int64(len(f.Data))
			delete(s.frags, k)
		}
	}
}

// Indices returns the sorted fragment indices held for a file.
func (s *FragStore) Indices(file id.File) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for k := range s.frags {
		if k.file == file {
			out = append(out, k.idx)
		}
	}
	sort.Ints(out)
	return out
}

// CorruptForTest flips a bit in a stored fragment's payload without
// touching its CRC — the fault injection hook for corruption tests.
func (s *FragStore) CorruptForTest(file id.File, idx int) bool {
	k := fragKey{file, idx}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.frags[k]
	if !ok || len(f.Data) == 0 {
		return false
	}
	f.Data[0] ^= 0x01
	return true
}

// Len returns the number of fragments held.
func (s *FragStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frags)
}

// Bytes returns the fragment payload bytes held.
func (s *FragStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Reads returns the number of CRC-verified fragment reads served.
func (s *FragStore) Reads() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads
}

// CRCFailures returns how many fragments failed their checksum on read.
func (s *FragStore) CRCFailures() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crcFailures
}
