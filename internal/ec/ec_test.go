package ec

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"past/internal/id"
	"past/internal/obs"
)

func testFile(b byte) id.File {
	var f id.File
	f[0] = b
	return f
}

func TestParamsParse(t *testing.T) {
	p, err := ParseParams("4,2")
	if err != nil || p.Data != 4 || p.Parity != 2 {
		t.Fatalf("ParseParams(4,2) = %v, %v", p, err)
	}
	if p.Total() != 6 || p.Overhead() != 1.5 {
		t.Fatalf("Total/Overhead wrong: %d %f", p.Total(), p.Overhead())
	}
	for _, bad := range []string{"", "4", "4,0", "0,2", "a,b", "300,300"} {
		if _, err := ParseParams(bad); err == nil {
			t.Fatalf("ParseParams(%q) should fail", bad)
		}
	}
}

func TestMapRoundTrip(t *testing.T) {
	m := &Map{
		File:      testFile(9),
		Size:      12345,
		Data:      4,
		Parity:    2,
		ShardSize: 3087,
		Version:   7,
		Holders:   make([]id.Node, 6),
		CRCs:      []uint32{1, 2, 3, 4, 5, 6},
	}
	for i := range m.Holders {
		m.Holders[i][0] = byte(i + 1)
	}
	raw := m.Encode()
	if !IsMap(raw) {
		t.Fatal("encoded map not recognized by IsMap")
	}
	got, err := DecodeMap(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", m, got)
	}
	// Ordinary file content must not be mistaken for a map.
	if IsMap([]byte("hello world this is not a map")) {
		t.Fatal("plain content misidentified as map")
	}
	if _, err := DecodeMap(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated map decoded without error")
	}
}

func TestFragStoreCRC(t *testing.T) {
	s := NewFragStore()
	f := testFile(1)
	data := []byte("fragment payload")
	s.Put(Fragment{File: f, Index: 2, Version: 1, Data: data, CRC: Checksum(data)})
	if s.Len() != 1 || s.Bytes() != int64(len(data)) {
		t.Fatalf("Len/Bytes = %d/%d", s.Len(), s.Bytes())
	}
	got, ok := s.Get(f, 2)
	if !ok || !bytes.Equal(got.Data, data) {
		t.Fatal("Get lost the fragment")
	}
	// Corrupt in place: the next read must detect, drop, and count it.
	if !s.CorruptForTest(f, 2) {
		t.Fatal("CorruptForTest missed")
	}
	if _, ok := s.Get(f, 2); ok {
		t.Fatal("corrupt fragment served")
	}
	if s.CRCFailures() != 1 {
		t.Fatalf("CRCFailures = %d, want 1", s.CRCFailures())
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("corrupt fragment not dropped: len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestFragStoreIndices(t *testing.T) {
	s := NewFragStore()
	f := testFile(3)
	for _, idx := range []int{5, 1, 3} {
		d := []byte{byte(idx)}
		s.Put(Fragment{File: f, Index: idx, Data: d, CRC: Checksum(d)})
	}
	if got := s.Indices(f); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("Indices = %v", got)
	}
	s.DeleteFile(f)
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("DeleteFile left fragments behind")
	}
}

func TestRepairQueueDedup(t *testing.T) {
	q := NewRepairQueue(1)
	it := RepairItem{File: testFile(1), Index: 0, Cost: 10}
	if !q.Enqueue(it) {
		t.Fatal("first enqueue rejected")
	}
	if q.Enqueue(it) {
		t.Fatal("duplicate enqueue accepted")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.Drop(it.File, it.Index)
	if q.Len() != 0 {
		t.Fatal("Drop left the item")
	}
}

// TestRepairQueueBandwidthCap is the acceptance-criteria assertion that
// repair traffic respects the configured cap: no single drain pass may
// move more bytes than its budget, items over the remaining budget are
// deferred (not started), and deferred items complete in later passes.
func TestRepairQueueBandwidthCap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := NewRepairQueue(42)
	const n = 50
	total := int64(0)
	for i := 0; i < n; i++ {
		cost := int64(100 + rng.Intn(400))
		total += cost
		q.Enqueue(RepairItem{File: testFile(byte(i)), Index: i % 4, Cost: cost})
	}
	const budget = 1000
	var done int
	passes := 0
	for q.Len() > 0 {
		passes++
		if passes > 100 {
			t.Fatal("queue did not drain")
		}
		spent := q.Drain(budget, func(it RepairItem) (int64, bool) {
			done++
			return it.Cost, true
		})
		if spent > budget {
			t.Fatalf("pass %d spent %d bytes, budget %d", passes, spent, budget)
		}
	}
	if done != n {
		t.Fatalf("repaired %d of %d items", done, n)
	}
	if passes < int(total/budget) {
		t.Fatalf("drained %d bytes in %d passes under a %d-byte cap", total, passes, budget)
	}
	ctrs := q.ObsCounters()
	if ctrs[obs.CtrECRepairDone] != n || ctrs[obs.CtrECRepairBytes] != total {
		t.Fatalf("counters: %+v", ctrs)
	}
	if ctrs[obs.CtrECRepairDeferred] == 0 {
		t.Fatal("expected deferrals under a tight budget")
	}
}

// Drain order must be a pure function of the seed and the pending set.
func TestRepairQueueDeterministicOrder(t *testing.T) {
	run := func(seed int64) []int {
		q := NewRepairQueue(seed)
		for i := 0; i < 20; i++ {
			q.Enqueue(RepairItem{File: testFile(byte(i)), Index: i, Cost: 1})
		}
		var order []int
		q.Drain(0, func(it RepairItem) (int64, bool) {
			order = append(order, it.Index)
			return it.Cost, true
		})
		return order
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different order:\n%v\n%v", a, b)
	}
	c := run(8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical order (suspicious)")
	}
}

func TestRepairQueueFailedCounted(t *testing.T) {
	q := NewRepairQueue(3)
	q.Enqueue(RepairItem{File: testFile(1), Index: 0, Cost: 5})
	q.Drain(0, func(it RepairItem) (int64, bool) { return 2, false })
	ctrs := q.ObsCounters()
	if ctrs[obs.CtrECRepairFailed] != 1 || ctrs[obs.CtrECRepairDone] != 0 {
		t.Fatalf("counters: %+v", ctrs)
	}
	if q.Len() != 0 {
		t.Fatal("failed item should leave the queue (anti-entropy re-finds it)")
	}
}
