package loadgen

import (
	"fmt"

	"past/internal/id"
	"past/internal/past"
	"past/internal/transport"
)

// AddrClient drives a remote PAST access point over the TCP transport
// via the client RPCs — the pure-client role cmd/past-load and
// cmd/pastctl play. Remote errors arrive rehydrated onto the sentinel
// taxonomy, so sheds still classify as netsim.ErrOverloaded.
type AddrClient struct {
	T    *transport.TCP
	Addr string
}

// Insert implements Client.
func (a AddrClient) Insert(name string, size int64, content []byte) (id.File, error) {
	reply, err := a.T.InvokeAddr(a.Addr, &past.ClientInsert{Name: name, Content: content})
	if err != nil {
		return id.File{}, err
	}
	ir, ok := reply.(*past.ClientInsertReply)
	if !ok {
		return id.File{}, fmt.Errorf("loadgen: unexpected insert reply %T", reply)
	}
	if !ir.OK {
		return id.File{}, fmt.Errorf("loadgen: insert rejected: %s", ir.Reason)
	}
	return ir.FileID, nil
}

// Lookup implements Client.
func (a AddrClient) Lookup(f id.File) (bool, error) {
	reply, err := a.T.InvokeAddr(a.Addr, &past.ClientLookup{File: f})
	if err != nil {
		return false, err
	}
	lr, ok := reply.(*past.ClientLookupReply)
	if !ok {
		return false, fmt.Errorf("loadgen: unexpected lookup reply %T", reply)
	}
	return lr.Found, nil
}
