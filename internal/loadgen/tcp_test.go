package loadgen

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"past/internal/admit"
	"past/internal/id"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/topology"
	"past/internal/transport"
	"past/internal/wire"
)

var wireOnce sync.Once

// startTCPCluster brings up n PAST nodes on loopback sockets, the
// first bootstrapped and the rest joined through it.
func startTCPCluster(t *testing.T, n int, seed int64, cfg past.Config) []*transport.TCP {
	t.Helper()
	wireOnce.Do(func() {
		wire.RegisterWire()
		past.RegisterWire()
	})
	rng := rand.New(rand.NewSource(seed))
	var trs []*transport.TCP
	for i := 0; i < n; i++ {
		var nid id.Node
		rng.Read(nid[:])
		tr, err := transport.New(nid, "127.0.0.1:0", topology.DefaultPlane.RandomPoint(rng))
		if err != nil {
			t.Fatal(err)
		}
		node := past.New(nid, tr, cfg, 1<<26, rng.Int63())
		tr.Serve(node)
		if i == 0 {
			node.Overlay().Bootstrap()
		} else {
			bootID, err := tr.Bootstrap(trs[0].Addr())
			if err != nil {
				t.Fatal(err)
			}
			if err := node.Overlay().Join(bootID); err != nil {
				t.Fatal(err)
			}
		}
		trs = append(trs, tr)
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

func TestRunOverTCP(t *testing.T) {
	// The same driver that runs the virtual-time experiments drives a
	// real socket cluster through the client RPCs, including an
	// admission gate at the access point: everything resolves as
	// served, not-found (open-loop reordering), or a wire-coded shed.
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 8}
	cfg.K = 3
	cfg.Admit = &admit.Config{Rate: 400, Burst: 16, Depth: 32}
	trs := startTCPCluster(t, 5, 1, cfg)

	var cid id.Node
	rand.New(rand.NewSource(99)).Read(cid[:])
	ct, err := transport.New(cid, "127.0.0.1:0", topology.Point{})
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	res, err := Run(Config{
		Arrivals:    NewConstant(300),
		Requests:    120,
		Seed:        4,
		Workload:    Workload{Files: 16, LookupFrac: 0.75, MaxPayload: 512},
		Concurrency: 8,
		SLO:         2 * time.Second,
	}, AddrClient{T: ct, Addr: trs[2].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 120 {
		t.Fatalf("issued %d of 120", res.Issued)
	}
	if res.OK == 0 || res.Latency.Count() == 0 {
		t.Fatalf("nothing served over TCP: %s", res)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected hard errors over TCP: %s", res)
	}
	if res.P(99) <= 0 {
		t.Fatalf("no latency recorded: %s", res)
	}
}
