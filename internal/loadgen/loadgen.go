// Package loadgen is a deterministic open-loop workload driver for
// PAST clusters. Requests arrive on a seeded schedule — constant rate,
// Poisson, or square-wave bursts — regardless of how fast the system
// answers, which is what distinguishes an open-loop driver from a
// closed-loop benchmark whose offered rate silently collapses to the
// service rate under overload.
//
// Latency is measured from each request's *intended* send time, not
// from the moment the driver actually got around to sending it. When
// the system (or the driver's own send path) stalls, requests queue
// behind the stall; measuring from actual send would erase that
// queueing delay from the percentiles — the coordinated-omission error.
// Measuring from the schedule keeps the tail honest.
//
// The driver runs in two modes sharing one workload generator:
//
//   - Run: real clock, against anything implementing Client — an
//     in-process node (NodeClient) or a TCP access point (cmd/past-load
//     wires transport.InvokeAddr to the same interface).
//   - RunSim: virtual time against an emulated cluster. The admission
//     controllers run in Offer mode, the driver owns the clock, and a
//     fixed seed yields a bit-identical Result fingerprint.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"past/internal/stats"
	"past/internal/trace"
)

// Arrivals generates a request schedule: successive calls return the
// nondecreasing intended send offsets of requests, measured from the
// start of the run. Implementations keep their cursor internally; all
// randomness comes from the caller's seeded RNG.
type Arrivals interface {
	Next(r *rand.Rand) time.Duration
}

// Constant is a fixed-rate arrival process: requests exactly 1/rate
// apart, the first at offset zero. It draws no randomness.
type Constant struct {
	gap time.Duration
	at  time.Duration
}

// NewConstant returns a constant-rate arrival process of rate requests
// per second.
func NewConstant(rate float64) *Constant {
	if rate <= 0 {
		panic(fmt.Sprintf("loadgen: constant rate must be > 0, got %g", rate))
	}
	return &Constant{gap: time.Duration(math.Round(float64(time.Second) / rate))}
}

// Next implements Arrivals.
func (c *Constant) Next(*rand.Rand) time.Duration {
	at := c.at
	c.at += c.gap
	return at
}

// Poisson is a memoryless arrival process: exponential inter-arrival
// gaps with the given mean rate, the standard model for independent
// clients.
type Poisson struct {
	exp stats.Exponential
	at  time.Duration
}

// NewPoisson returns a Poisson arrival process of mean rate requests
// per second.
func NewPoisson(rate float64) *Poisson {
	return &Poisson{exp: stats.Exponential{Rate: rate}}
}

// Next implements Arrivals.
func (p *Poisson) Next(r *rand.Rand) time.Duration {
	p.at += time.Duration(math.Round(p.exp.Sample(r) * float64(time.Second)))
	return p.at
}

// SquareWave alternates between a low and a high constant rate — Duty
// of every Period is spent at High — modeling flash-crowd bursts
// against a quiet background. The rate is evaluated at each request's
// offset, so a gap that straddles a phase edge uses the rate of the
// phase it started in.
type SquareWave struct {
	low, high float64
	period    time.Duration
	duty      float64
	at        time.Duration
}

// NewSquareWave returns a square-wave arrival process: high requests
// per second for the first duty fraction of every period, low for the
// rest.
func NewSquareWave(low, high float64, period time.Duration, duty float64) *SquareWave {
	if low <= 0 || high <= 0 || period <= 0 || duty <= 0 || duty >= 1 {
		panic(fmt.Sprintf("loadgen: bad square wave (low %g high %g period %v duty %g)",
			low, high, period, duty))
	}
	return &SquareWave{low: low, high: high, period: period, duty: duty}
}

// Next implements Arrivals.
func (s *SquareWave) Next(*rand.Rand) time.Duration {
	at := s.at
	rate := s.low
	if float64(s.at%s.period) < s.duty*float64(s.period) {
		rate = s.high
	}
	s.at += time.Duration(math.Round(float64(time.Second) / rate))
	return at
}

// Workload shapes the request mix: a Zipf-popular population of files
// with sizes from the trace distributions.
type Workload struct {
	// Files is the unique-file population. Default 128.
	Files int
	// Alpha is the Zipf popularity skew of lookups. Default 0.8 (the
	// web-trace range the paper cites).
	Alpha float64
	// Sizes draws file sizes. Default trace.NLANRSizes().
	Sizes stats.SizeDist
	// LookupFrac is the fraction of requests that are lookups (the
	// rest insert new files until the population is exhausted).
	// Default 0.9.
	LookupFrac float64
	// MaxPayload clamps sampled file sizes — a load driver measures
	// request handling, not bulk transfer. Default 4096.
	MaxPayload int64
}

func (w Workload) withDefaults() Workload {
	if w.Files <= 0 {
		w.Files = 128
	}
	if w.Alpha <= 0 {
		w.Alpha = 0.8
	}
	if w.Sizes == (stats.SizeDist{}) {
		w.Sizes = trace.NLANRSizes()
	}
	if w.LookupFrac <= 0 {
		w.LookupFrac = 0.9
	}
	if w.MaxPayload <= 0 {
		w.MaxPayload = 4096
	}
	return w
}

// op is one scheduled request.
type op struct {
	At   time.Duration // intended send offset from run start
	Op   trace.Op
	File int32 // unique-file index
	Size int64 // set on inserts
}

// schedule materializes the full deterministic request schedule: the
// arrival offsets interleaved with the insert:lookup mix. Lookups
// target a Zipf-ranked file among those already inserted; until the
// first insert completes (and after the population is exhausted) the
// mix degenerates gracefully.
func schedule(a Arrivals, w Workload, n int, r *rand.Rand) []op {
	z := stats.NewZipf(w.Files, w.Alpha)
	ops := make([]op, 0, n)
	inserted := 0
	for i := 0; i < n; i++ {
		at := a.Next(r)
		lookup := inserted > 0 && (inserted >= w.Files || r.Float64() < w.LookupFrac)
		if lookup {
			f := int32(z.Rank(r) % inserted)
			ops = append(ops, op{At: at, Op: trace.OpLookup, File: f})
			continue
		}
		sz := w.Sizes.Sample(r)
		if sz < 1 {
			sz = 1
		}
		if sz > w.MaxPayload {
			sz = w.MaxPayload
		}
		ops = append(ops, op{At: at, Op: trace.OpInsert, File: int32(inserted), Size: sz})
		inserted++
	}
	return ops
}

// Result aggregates one run. Latency holds served requests only
// (successes and authoritative not-founds), measured from intended
// send time; sheds and errors are counted but kept out of the
// percentiles so the curves describe what the service delivered.
type Result struct {
	Issued   int64
	OK       int64 // requests answered successfully
	NotFound int64 // lookups answered authoritatively empty
	Shed     int64 // rejected with netsim.ErrOverloaded
	Errors   int64 // any other failure
	// Good counts OK requests that completed within the SLO — the
	// numerator of goodput.
	Good int64
	// Latency is the served-request latency histogram in nanoseconds
	// from intended send time.
	Latency stats.LogHist
	// Elapsed is the offered-load window: the span of the arrival
	// schedule (virtual mode) or the wall time of the run (real mode).
	Elapsed time.Duration
	// Fingerprint is the SHA-256 of the per-request outcome stream.
	// Virtual runs at a fixed seed reproduce it bit-identically; real
	// runs leave it empty (wall-clock latencies are not reproducible).
	Fingerprint string
	// Cache aggregates the cluster's cache-engine tier counters at the
	// end of the run (virtual mode only). It is derived state, not part
	// of the fingerprint: the fingerprint covers per-request outcomes,
	// which already reflect cache behavior through hop counts.
	Cache CacheSummary
}

// CacheSummary sums cache-engine tier counters across a cluster. In
// erasure-coded runs (SimConfig.EC) it also carries the fragment-level
// serving counters: FragHits are CRC-verified fragment reads served
// from holders' fragment stores, FragCRCDrops corrupt copies detected
// and discarded on read, and Reconstructs whole-object rebuilds from
// m-of-n fragments.
type CacheSummary struct {
	RAMHits, FlashHits, Misses int64
	Evictions                  int64
	AdmitRejects, NegHits      int64
	FlashSpills, FlashSegDrops int64
	FragHits, FragCRCDrops     int64
	Reconstructs               int64
}

// HitRate is (RAM + flash hits) / all cache probes, or 0 with no
// traffic.
func (c CacheSummary) HitRate() float64 {
	total := c.RAMHits + c.FlashHits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.RAMHits+c.FlashHits) / float64(total)
}

// Goodput is SLO-satisfying completions per second over the offered
// window.
func (r *Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Good) / r.Elapsed.Seconds()
}

// P returns the p-th served-latency percentile.
func (r *Result) P(p float64) time.Duration {
	return time.Duration(r.Latency.Quantile(p))
}

// String renders the one-line summary the CLIs print.
func (r *Result) String() string {
	return fmt.Sprintf(
		"issued %d ok %d notfound %d shed %d errors %d goodput %.1f/s p50 %v p99 %v p999 %v",
		r.Issued, r.OK, r.NotFound, r.Shed, r.Errors, r.Goodput(),
		r.P(50).Round(time.Microsecond), r.P(99).Round(time.Microsecond),
		r.P(99.9).Round(time.Microsecond))
}
