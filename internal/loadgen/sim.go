package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand"
	"path/filepath"
	"time"

	"past/internal/admit"
	"past/internal/cachengine"
	"past/internal/ec"
	"past/internal/id"
	"past/internal/obs"
	"past/internal/past"
	"past/internal/pastry"
	"past/internal/stats"
	"past/internal/trace"
)

// SimConfig shapes a virtual-time run against an emulated cluster.
//
// The queueing model: every request enters through a deterministically
// chosen access node whose admission controller (in Offer mode) grants
// it service at an exact virtual token time or sheds it. Service
// itself is the real overlay operation — routing, replicas, caching —
// executed synchronously, with hop count converted to virtual service
// latency at HopLatency per hop. With Shed false the queue is
// unbounded: the open-loop excess accumulates as queueing delay, which
// is exactly the pathology admission control exists to prevent.
type SimConfig struct {
	// Nodes is the cluster size. Default 25.
	Nodes int
	// Seed drives the cluster build, the schedule, and the access-node
	// choice. Same seed, same everything — including the fingerprint.
	Seed int64
	// Requests is the total number of requests. Required.
	Requests int
	// Arrivals is the arrival process. Default NewConstant(200).
	Arrivals Arrivals
	// Workload is the request mix.
	Workload Workload
	// NodeRate is each access node's sustained service rate in
	// requests/second — the capacity knob. Aggregate cluster capacity
	// is Nodes * NodeRate. Default 100.
	NodeRate float64
	// Burst is the per-node token-bucket burst. Default 4.
	Burst int
	// Depth bounds the per-node queue when Shed is set. Default 8.
	Depth int
	// Policy picks who is shed at a full queue.
	Policy admit.Policy
	// Shed enables admission control. When false the queue is
	// unbounded and nothing is ever rejected.
	Shed bool
	// HopLatency is the virtual per-hop service time. Default 1ms.
	HopLatency time.Duration
	// SLO classifies a completion as good. Default 500ms.
	SLO time.Duration
	// Capacity is per-node storage capacity in bytes. Default 1 GiB.
	Capacity int64
	// Cache, when non-nil, runs every node's cache engine with this
	// configuration (sharding, doorkeeper, negative cache, flash tier)
	// instead of the legacy-equivalent default. When the flash tier is
	// enabled, Flash.Dir is treated as a base directory and each node
	// gets its own subdirectory under it. The per-request fingerprint
	// is sensitive to this knob — cache behavior changes hop counts —
	// so fingerprint-checked experiments must leave it nil.
	Cache *cachengine.Config
	// Payloads makes inserts carry real (deterministic) content instead
	// of size-only accounting. The flash tier only spills objects whose
	// bytes it holds, so flash experiments need this on. Off by default:
	// the legacy experiments account sizes only.
	Payloads bool
	// EC, when non-nil, runs the cluster in erasure-coded storage mode:
	// inserts are RS(Data, Parity)-coded into fragments and lookups
	// reconstruct from any Data of them. Forces Payloads (content-free
	// inserts cannot be coded). The fingerprint is sensitive to this
	// knob — reconstruction changes hop accounting — so
	// fingerprint-compared experiments must hold it fixed.
	EC *ec.Params
}

func (sc SimConfig) withDefaults() SimConfig {
	if sc.Nodes <= 0 {
		sc.Nodes = 25
	}
	if sc.Arrivals == nil {
		sc.Arrivals = NewConstant(200)
	}
	if sc.NodeRate <= 0 {
		sc.NodeRate = 100
	}
	if sc.Burst <= 0 {
		sc.Burst = 4
	}
	if sc.Depth <= 0 {
		sc.Depth = 8
	}
	if sc.HopLatency <= 0 {
		sc.HopLatency = time.Millisecond
	}
	if sc.SLO <= 0 {
		sc.SLO = 500 * time.Millisecond
	}
	if sc.Capacity <= 0 {
		sc.Capacity = 1 << 30
	}
	return sc
}

// unboundedDepth stands in for "no queue bound" when shedding is off.
const unboundedDepth = 1 << 30

// RunSim executes a virtual-time run. All randomness is seeded and all
// request resolution happens synchronously on this goroutine in Offer
// order, so two runs with equal configs produce bit-identical Results,
// fingerprint included.
func RunSim(sc SimConfig) (*Result, error) {
	sc = sc.withDefaults()
	if sc.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be > 0")
	}
	cfg := past.DefaultConfig()
	cfg.Pastry = pastry.Config{B: 4, L: 16}
	cfg.K = 3
	cfg.CacheEngine = sc.Cache
	if sc.EC != nil {
		cfg.ECMode = sc.EC
		sc.Payloads = true
	}
	spec := past.ClusterSpec{
		N:        sc.Nodes,
		Cfg:      cfg,
		Capacity: func(int, *rand.Rand) int64 { return sc.Capacity },
		Seed:     sc.Seed,
	}
	if sc.Cache != nil && sc.Cache.Flash != nil {
		base := sc.Cache.Flash.Dir
		spec.PerNode = func(i int, c past.Config) past.Config {
			ec := *sc.Cache
			fc := *ec.Flash
			fc.Dir = filepath.Join(base, fmt.Sprintf("node-%03d", i))
			ec.Flash = &fc
			c.CacheEngine = &ec
			return c
		}
	}
	cluster, err := past.NewCluster(spec)
	if err != nil {
		return nil, err
	}

	w := sc.Workload.withDefaults()
	rng := stats.NewRand(sc.Seed)
	ops := schedule(sc.Arrivals, w, sc.Requests, rng)

	depth := sc.Depth
	if !sc.Shed {
		depth = unboundedDepth
	}
	ctls := make([]*admit.Controller, sc.Nodes)
	for i := range ctls {
		ctls[i] = admit.New(admit.Config{
			Rate: sc.NodeRate, Burst: sc.Burst, Depth: depth, Policy: sc.Policy,
		})
	}

	var (
		epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		ids   = make([]id.File, w.Files)
		res   = &Result{}
		fp    = sha256.New()
	)
	exec := func(i int, o op, access *past.Node, d admit.Decision) {
		res.Issued++
		if !d.Granted {
			res.Shed++
			fpRecord(fp, i, o, false, false, 0, 0)
			return
		}
		var found bool
		var err error
		hops := 0
		switch {
		case o.Op == trace.OpInsert:
			spec := past.InsertSpec{Name: trace.FileName(o.File), Size: o.Size}
			if sc.Payloads {
				spec.Content = simPayload(o.File, o.Size)
			}
			var ir *past.InsertResult
			ir, err = access.Insert(spec)
			if err == nil && ir.OK {
				ids[o.File] = ir.FileID
				found = true
				hops = ir.Hops
			} else if err == nil {
				err = fmt.Errorf("loadgen: insert rejected: %s", ir.Reason)
			}
		case ids[o.File].IsZero():
			// Lookup scheduled before its insert was served (open
			// loop). The access node answers not-found locally.
		default:
			var lr *past.LookupResult
			lr, err = access.Lookup(ids[o.File])
			if err == nil {
				found = lr.Found
				hops = lr.Hops
			}
		}
		lat := d.Wait + sc.HopLatency*time.Duration(hops+1)
		switch {
		case err == nil && found:
			res.OK++
			if lat <= sc.SLO {
				res.Good++
			}
		case err == nil:
			res.NotFound++
		default:
			res.Errors++
		}
		if err == nil {
			res.Latency.Record(lat.Nanoseconds())
		}
		fpRecord(fp, i, o, true, found, hops, lat)
	}

	for i, o := range ops {
		i, o := i, o
		ai := rng.Intn(sc.Nodes)
		access := cluster.Nodes[ai]
		ctls[ai].Offer(epoch.Add(o.At), func(d admit.Decision) {
			exec(i, o, access, d)
		})
	}
	for _, c := range ctls {
		c.Drain()
	}

	res.Elapsed = ops[len(ops)-1].At
	if res.Elapsed <= 0 {
		res.Elapsed = time.Second
	}
	res.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	for _, n := range cluster.Nodes {
		st := n.Cache().Stats()
		res.Cache.RAMHits += st.RAMHits
		res.Cache.FlashHits += st.FlashHits
		res.Cache.Misses += st.Misses
		res.Cache.Evictions += st.Evictions
		res.Cache.AdmitRejects += st.AdmitRejects
		res.Cache.NegHits += st.NegHits
		res.Cache.FlashSpills += st.FlashSpills
		res.Cache.FlashSegDrops += st.FlashSegDrops
		if sc.EC != nil {
			snap := n.StatsSnapshot()
			res.Cache.FragHits += snap.Get(obs.CtrECFragReads)
			res.Cache.FragCRCDrops += snap.Get(obs.CtrECCRCFailures)
			res.Cache.Reconstructs += snap.Get(obs.CtrECReconstructs)
		}
		n.Cache().Close()
	}
	return res, nil
}

// simPayload builds deterministic content for file index f.
func simPayload(f int32, size int64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(int64(f)*31 + int64(i))
	}
	return b
}

// fpRecord folds one request's outcome into the fingerprint.
func fpRecord(h hash.Hash, i int, o op, granted, found bool, hops int, lat time.Duration) {
	var rec [40]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(i))
	rec[8] = byte(o.Op)
	binary.LittleEndian.PutUint32(rec[9:], uint32(o.File))
	if granted {
		rec[13] = 1
	}
	if found {
		rec[14] = 1
	}
	binary.LittleEndian.PutUint64(rec[16:], uint64(hops))
	binary.LittleEndian.PutUint64(rec[24:], uint64(lat))
	binary.LittleEndian.PutUint64(rec[32:], uint64(o.At))
	h.Write(rec[:])
}
