package loadgen

import (
	"math"
	"sync"
	"testing"
	"time"

	"past/internal/id"
	"past/internal/stats"
	"past/internal/trace"
)

func TestConstantArrivals(t *testing.T) {
	a := NewConstant(1000)
	for i := 0; i < 5; i++ {
		if got := a.Next(nil); got != time.Duration(i)*time.Millisecond {
			t.Fatalf("arrival %d at %v", i, got)
		}
	}
}

func TestPoissonArrivalsMeanGap(t *testing.T) {
	a := NewPoisson(1000) // mean gap 1ms
	r := stats.NewRand(5)
	const n = 20000
	var last time.Duration
	var sum float64
	for i := 0; i < n; i++ {
		at := a.Next(r)
		if at < last {
			t.Fatal("arrival offsets must be nondecreasing")
		}
		sum += float64(at - last)
		last = at
	}
	mean := sum / n
	if math.Abs(mean-float64(time.Millisecond)) > 0.05*float64(time.Millisecond) {
		t.Fatalf("mean gap %v; want ~1ms", time.Duration(mean))
	}
}

func TestSquareWaveBursts(t *testing.T) {
	// 100ms period, first half at 1000/s, second half at 100/s: the
	// high phase must hold roughly 10x the low phase's arrivals.
	a := NewSquareWave(100, 1000, 100*time.Millisecond, 0.5)
	high, low := 0, 0
	for i := 0; i < 2000; i++ {
		at := a.Next(nil)
		if at >= time.Second {
			break
		}
		if float64(at%(100*time.Millisecond)) < 0.5*float64(100*time.Millisecond) {
			high++
		} else {
			low++
		}
	}
	if high < 5*low || low == 0 {
		t.Fatalf("high %d low %d; want strongly burst-skewed", high, low)
	}
}

func TestScheduleMixAndReferences(t *testing.T) {
	w := Workload{Files: 50, LookupFrac: 0.8}.withDefaults()
	ops := schedule(NewConstant(1000), w, 5000, stats.NewRand(9))
	if len(ops) != 5000 {
		t.Fatalf("scheduled %d ops", len(ops))
	}
	inserted := 0
	lookups := 0
	for i, o := range ops {
		switch o.Op {
		case trace.OpInsert:
			if int(o.File) != inserted {
				t.Fatalf("op %d inserts file %d; want next new index %d", i, o.File, inserted)
			}
			if o.Size < 1 || o.Size > w.MaxPayload {
				t.Fatalf("op %d size %d outside [1,%d]", i, o.Size, w.MaxPayload)
			}
			inserted++
		case trace.OpLookup:
			if int(o.File) >= inserted {
				t.Fatalf("op %d looks up file %d before its insert", i, o.File)
			}
			lookups++
		}
		if i > 0 && o.At < ops[i-1].At {
			t.Fatal("schedule not time-ordered")
		}
	}
	if inserted != w.Files {
		t.Fatalf("population %d of %d inserted over 5000 requests", inserted, w.Files)
	}
	frac := float64(lookups) / 5000
	if frac < 0.9 { // 50 inserts of 5000 -> ~99% lookups
		t.Fatalf("lookup fraction %.2f; want dominated by lookups", frac)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	w := Workload{Files: 20}
	a := schedule(NewPoisson(500), w.withDefaults(), 1000, stats.NewRand(3))
	b := schedule(NewPoisson(500), w.withDefaults(), 1000, stats.NewRand(3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// stallClient answers instantly except for one scripted request, which
// stalls; used to prove the driver measures from intended send time.
type stallClient struct {
	mu      sync.Mutex
	calls   int
	stallAt int
	stall   time.Duration
}

func (s *stallClient) serve() {
	s.mu.Lock()
	s.calls++
	doStall := s.calls == s.stallAt
	s.mu.Unlock()
	if doStall {
		time.Sleep(s.stall)
	}
}

func (s *stallClient) Insert(name string, size int64, content []byte) (id.File, error) {
	s.serve()
	var f id.File
	f[0] = 1 // any non-zero id; lookups only need a stable handle
	return f, nil
}

func (s *stallClient) Lookup(id.File) (bool, error) {
	s.serve()
	return true, nil
}

func TestNoCoordinatedOmission(t *testing.T) {
	// One 200ms server stall on a 2ms-per-request schedule with a
	// single sender: every request scheduled behind the stall is late,
	// and the recorded latency — measured from *intended* send time —
	// must expose that queueing delay. A driver that measured from
	// actual send time would report near-zero latency for every one of
	// them (the coordinated-omission error).
	sc := &stallClient{stallAt: 5, stall: 200 * time.Millisecond}
	res, err := Run(Config{
		Arrivals:    NewConstant(500),
		Requests:    50,
		Seed:        1,
		Workload:    Workload{Files: 8, LookupFrac: 0.9},
		Concurrency: 1,
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 50 || res.Errors != 0 {
		t.Fatalf("run: %s", res)
	}
	if p99 := res.P(99); p99 < 100*time.Millisecond {
		t.Fatalf("p99 %v hides the 200ms stall: coordinated omission", p99)
	}
	if p50 := res.P(50); p50 < 20*time.Millisecond {
		t.Fatalf("p50 %v: the stall delayed most of the schedule, median must show it", p50)
	}
}

func TestRunOpenLoopAgainstStub(t *testing.T) {
	// Unbounded concurrency: a stall delays only the stalled request.
	sc := &stallClient{stallAt: 5, stall: 100 * time.Millisecond}
	res, err := Run(Config{
		Arrivals: NewConstant(2000),
		Requests: 100,
		Seed:     2,
		Workload: Workload{Files: 8},
	}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 100 || res.Errors != 0 {
		t.Fatalf("run: %s", res)
	}
	if res.Latency.Count() == 0 || res.OK == 0 {
		t.Fatalf("nothing recorded: %s", res)
	}
	if p50 := res.P(50); p50 > 50*time.Millisecond {
		t.Fatalf("open loop p50 %v; one stalled request must not drag the median", p50)
	}
}

func TestRunSimFingerprintBitIdentical(t *testing.T) {
	cfg := SimConfig{
		Nodes:    15,
		Seed:     11,
		Requests: 600,
		Arrivals: NewPoisson(300),
		Workload: Workload{Files: 40},
		NodeRate: 30,
		Shed:     true,
	}
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arrivals = NewPoisson(300) // fresh cursor, same process
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ:\n%s\n%s", a.Fingerprint, b.Fingerprint)
	}
	if *a != *b {
		t.Fatalf("results differ:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 12
	cfg.Arrivals = NewPoisson(300)
	c, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced identical fingerprints")
	}
}

func TestRunSimSheddingBeatsUnboundedQueueAtOverload(t *testing.T) {
	// Offered 2x aggregate capacity: with an unbounded queue every
	// request is served eventually but waits grow without bound, so
	// goodput (completions within SLO) collapses and the tail explodes.
	// Bounded-queue shedding keeps served requests fast.
	base := SimConfig{
		Nodes:    10,
		Seed:     21,
		Requests: 1500,
		Workload: Workload{Files: 50},
		NodeRate: 20, // aggregate capacity 200/s
		Depth:    8,
		SLO:      500 * time.Millisecond,
	}
	off := base
	off.Arrivals = NewConstant(400) // 2x capacity
	off.Shed = false
	noShed, err := RunSim(off)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Arrivals = NewConstant(400)
	on.Shed = true
	shed, err := RunSim(on)
	if err != nil {
		t.Fatal(err)
	}
	if noShed.Shed != 0 {
		t.Fatalf("unbounded queue shed %d requests", noShed.Shed)
	}
	if shed.Shed == 0 {
		t.Fatal("admission control shed nothing at 2x capacity")
	}
	if shed.Goodput() <= noShed.Goodput() {
		t.Fatalf("goodput with shedding %.1f/s <= without %.1f/s",
			shed.Goodput(), noShed.Goodput())
	}
	if shed.P(99) >= noShed.P(99) {
		t.Fatalf("p99 with shedding %v >= without %v", shed.P(99), noShed.P(99))
	}
}
