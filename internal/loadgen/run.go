package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/netsim"
	"past/internal/past"
	"past/internal/stats"
	"past/internal/trace"
)

// Client is one access point as the driver sees it: an in-process node
// (NodeClient), or a remote one reached over TCP (cmd/past-load adapts
// transport.InvokeAddr). Implementations must be safe for concurrent
// calls.
type Client interface {
	// Insert stores a file and returns its fileId.
	Insert(name string, size int64, content []byte) (id.File, error)
	// Lookup fetches a file, reporting whether it was found.
	Lookup(f id.File) (bool, error)
}

// Config shapes a real-clock run.
type Config struct {
	// Arrivals is the arrival process. Default NewConstant(200).
	Arrivals Arrivals
	// Requests is the total number of requests to issue. Required.
	Requests int
	// Seed makes the schedule (not the measured latencies)
	// reproducible.
	Seed int64
	// Workload is the request mix.
	Workload Workload
	// Concurrency caps in-flight requests: the open loop keeps firing
	// on schedule, but at most this many requests are on the wire at
	// once — excess sends queue, and their queueing time is *included*
	// in measured latency (the coordinated-omission correction). Zero
	// means unbounded: one goroutine per request.
	Concurrency int
	// SLO classifies a completion as good. Default 500ms.
	SLO time.Duration
}

// Run drives cfg.Requests requests against c on the real clock and
// aggregates the outcome. The schedule is fixed up front from the
// seed; a request whose intended time has passed is sent immediately
// and its lateness counts against its latency.
func Run(cfg Config, c Client) (*Result, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("loadgen: Requests must be > 0")
	}
	if cfg.Arrivals == nil {
		cfg.Arrivals = NewConstant(200)
	}
	if cfg.SLO <= 0 {
		cfg.SLO = 500 * time.Millisecond
	}
	w := cfg.Workload.withDefaults()
	ops := schedule(cfg.Arrivals, w, cfg.Requests, stats.NewRand(cfg.Seed))

	var (
		mu  sync.Mutex
		ids = make([]id.File, w.Files)
		res = &Result{}
	)
	start := time.Now()
	exec := func(o op) {
		intended := start.Add(o.At)
		var found bool
		var err error
		served := true
		if o.Op == trace.OpInsert {
			content := payload(o.File, o.Size)
			var fid id.File
			fid, err = c.Insert(trace.FileName(o.File), o.Size, content)
			if err == nil {
				mu.Lock()
				ids[o.File] = fid
				mu.Unlock()
				found = true
			}
		} else {
			mu.Lock()
			fid := ids[o.File]
			mu.Unlock()
			if fid.IsZero() {
				// The insert this lookup depends on has not completed
				// yet (open loop: nothing waits). Count the miss
				// without a wire round trip.
				served = false
			} else {
				found, err = c.Lookup(fid)
			}
		}
		lat := time.Since(intended)

		mu.Lock()
		defer mu.Unlock()
		res.Issued++
		switch {
		case err == nil && found:
			res.OK++
			if lat <= cfg.SLO {
				res.Good++
			}
		case err == nil:
			res.NotFound++
		case errors.Is(err, netsim.ErrOverloaded):
			res.Shed++
		default:
			res.Errors++
		}
		if err == nil && served {
			res.Latency.Record(lat.Nanoseconds())
		}
	}

	var wg sync.WaitGroup
	if cfg.Concurrency > 0 {
		ch := make(chan op)
		for i := 0; i < cfg.Concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for o := range ch {
					sleepUntil(start.Add(o.At))
					exec(o)
				}
			}()
		}
		for _, o := range ops {
			ch <- o
		}
		close(ch)
	} else {
		for _, o := range ops {
			sleepUntil(start.Add(o.At))
			wg.Add(1)
			go func(o op) {
				defer wg.Done()
				exec(o)
			}(o)
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

func sleepUntil(t time.Time) {
	if d := time.Until(t); d > 0 {
		time.Sleep(d)
	}
}

// payload deterministically fills a file's content from its index, so
// re-runs insert identical bytes.
func payload(file int32, size int64) []byte {
	b := make([]byte, size)
	r := rand.New(rand.NewSource(int64(file) + 1))
	r.Read(b)
	return b
}

// NodeClient adapts an in-process PAST node to the Client interface:
// the node acts as the driver's access point, exactly as it would for
// a TCP client.
type NodeClient struct {
	Node *past.Node
}

// Insert implements Client.
func (nc NodeClient) Insert(name string, size int64, content []byte) (id.File, error) {
	res, err := nc.Node.Insert(past.InsertSpec{Name: name, Size: size, Content: content})
	if err != nil {
		return id.File{}, err
	}
	if !res.OK {
		return id.File{}, fmt.Errorf("loadgen: insert rejected: %s", res.Reason)
	}
	return res.FileID, nil
}

// Lookup implements Client.
func (nc NodeClient) Lookup(f id.File) (bool, error) {
	res, err := nc.Node.Lookup(f)
	if err != nil {
		return false, err
	}
	return res.Found, nil
}
