package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The paper replays NLANR web-proxy logs (squid access.log format).
// Those traces are not redistributable, but anyone holding equivalent
// logs can replay them through this parser instead of the synthetic
// generator: the first appearance of a URL inserts the file with the
// logged size, subsequent appearances look it up, and clients are
// mapped exactly as the paper describes.

// SquidRecord is one parsed access.log entry.
type SquidRecord struct {
	Timestamp float64
	Client    string
	Size      int64
	URL       string
}

// ErrSquidFormat reports an unparseable log line.
var ErrSquidFormat = errors.New("trace: malformed squid log line")

// ParseSquidLine parses one line of the native squid access.log format:
//
//	timestamp elapsed client action/code size method URL rfc931 peerstatus/peerhost type
//
// Lines may have trailing fields missing; the first seven are required.
func ParseSquidLine(line string) (SquidRecord, error) {
	f := strings.Fields(line)
	if len(f) < 7 {
		return SquidRecord{}, fmt.Errorf("%w: %d fields", ErrSquidFormat, len(f))
	}
	ts, err := strconv.ParseFloat(f[0], 64)
	if err != nil {
		return SquidRecord{}, fmt.Errorf("%w: timestamp %q", ErrSquidFormat, f[0])
	}
	size, err := strconv.ParseInt(f[4], 10, 64)
	if err != nil || size < 0 {
		return SquidRecord{}, fmt.Errorf("%w: size %q", ErrSquidFormat, f[4])
	}
	return SquidRecord{Timestamp: ts, Client: f[2], Size: size, URL: f[6]}, nil
}

// ReadSquidLog parses a whole access.log stream, skipping blank lines
// and '#' comments. A malformed line aborts with its line number.
func ReadSquidLog(r io.Reader) ([]SquidRecord, error) {
	var out []SquidRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseSquidLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading squid log: %w", err)
	}
	return out, nil
}

// FromSquid builds a replayable workload from parsed log records,
// exactly as the paper built its trace: records merged in timestamp
// order, the first appearance of each URL becoming an insert (with that
// record's size) and every later appearance a lookup; each distinct
// client string becomes a client index, and clients are partitioned
// into `sites` groups in order of first appearance (the paper's eight
// proxy sites, when the per-site logs are concatenated). maxEntries
// truncates the trace (the paper used the first 4,000,000 entries);
// 0 keeps everything.
func FromSquid(records []SquidRecord, sites, maxEntries int) (*Workload, error) {
	if sites <= 0 {
		return nil, fmt.Errorf("trace: FromSquid needs sites > 0")
	}
	recs := append([]SquidRecord(nil), records...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Timestamp < recs[j].Timestamp })
	if maxEntries > 0 && len(recs) > maxEntries {
		recs = recs[:maxEntries]
	}

	w := &Workload{Sites: sites}
	urlIdx := make(map[string]int32)
	clientIdx := make(map[string]int32)
	for _, rec := range recs {
		ci, ok := clientIdx[rec.Client]
		if !ok {
			ci = int32(len(clientIdx))
			clientIdx[rec.Client] = ci
			w.SiteOf = append(w.SiteOf, ci%int32(sites))
		}
		fi, ok := urlIdx[rec.URL]
		if !ok {
			fi = int32(len(urlIdx))
			urlIdx[rec.URL] = fi
			w.Sizes = append(w.Sizes, rec.Size)
			w.TotalBytes += rec.Size
			w.Events = append(w.Events, Event{Op: OpInsert, File: fi, Client: ci, Size: rec.Size})
		} else {
			w.Events = append(w.Events, Event{Op: OpLookup, File: fi, Client: ci})
		}
	}
	w.Files = len(urlIdx)
	w.Clients = len(clientIdx)
	if w.Clients == 0 {
		return nil, fmt.Errorf("trace: empty squid log")
	}
	return w, nil
}
