package trace

import (
	"math"
	"testing"

	"past/internal/stats"
)

func TestInsertOnlyShape(t *testing.T) {
	w := InsertOnly(5000, NLANRSizes(), 1)
	if w.Files != 5000 || len(w.Events) != 5000 {
		t.Fatalf("files=%d events=%d", w.Files, len(w.Events))
	}
	var sum int64
	for _, e := range w.Events {
		if e.Op != OpInsert {
			t.Fatal("insert-only workload contains lookups")
		}
		if e.Size != w.Sizes[e.File] {
			t.Fatal("event size disagrees with size table")
		}
		sum += e.Size
	}
	if sum != w.TotalBytes {
		t.Fatalf("TotalBytes %d != sum %d", w.TotalBytes, sum)
	}
}

func TestNLANRSizeCalibration(t *testing.T) {
	w := InsertOnly(60000, NLANRSizes(), 2)
	s := stats.Summarize(w.Sizes)
	// Published: mean 10,517 B, median 1,312 B. Allow sampling slack.
	if math.Abs(s.Mean-10517)/10517 > 0.2 {
		t.Fatalf("mean %f too far from 10517", s.Mean)
	}
	if math.Abs(float64(s.Median)-1312)/1312 > 0.1 {
		t.Fatalf("median %d too far from 1312", s.Median)
	}
	if s.Max > 138<<20 {
		t.Fatalf("max %d exceeds published 138MB clamp", s.Max)
	}
}

func TestFilesystemSizeCalibration(t *testing.T) {
	w := InsertOnly(60000, FilesystemSizes(), 3)
	s := stats.Summarize(w.Sizes)
	if math.Abs(s.Mean-88233)/88233 > 0.25 {
		t.Fatalf("mean %f too far from 88233", s.Mean)
	}
	if math.Abs(float64(s.Median)-4578)/4578 > 0.1 {
		t.Fatalf("median %d too far from 4578", s.Median)
	}
}

func TestWebTraceSemantics(t *testing.T) {
	spec := DefaultWebSpec(4000, 4)
	w := WebTrace(spec)
	if len(w.Events) != spec.Requests {
		t.Fatalf("events=%d want %d", len(w.Events), spec.Requests)
	}
	// First reference inserts; repeats look up; never a lookup before
	// its insert.
	inserted := map[int32]bool{}
	uniques := 0
	var bytes int64
	for _, e := range w.Events {
		switch e.Op {
		case OpInsert:
			if inserted[e.File] {
				t.Fatal("double insert of a file")
			}
			inserted[e.File] = true
			uniques++
			bytes += e.Size
		case OpLookup:
			if !inserted[e.File] {
				t.Fatal("lookup before insert")
			}
		}
		if e.Client < 0 || int(e.Client) >= spec.Clients {
			t.Fatal("client out of range")
		}
	}
	if uniques != w.Files {
		t.Fatalf("unique count %d != reported %d", uniques, w.Files)
	}
	if bytes != w.TotalBytes {
		t.Fatal("TotalBytes mismatch")
	}
	// With requests ~2.15x population, a large majority of the
	// population should be touched.
	if float64(w.Files) < 0.5*float64(spec.UniqueFiles) {
		t.Fatalf("only %d of %d files referenced", w.Files, spec.UniqueFiles)
	}
	// And there must be plenty of repeat references for caching to matter.
	if len(w.Events)-uniques < len(w.Events)/4 {
		t.Fatal("too few repeat references")
	}
}

func TestWebTracePopularitySkew(t *testing.T) {
	w := WebTrace(DefaultWebSpec(2000, 5))
	counts := map[int32]int{}
	for _, e := range w.Events {
		counts[e.File]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf: the most popular file must be referenced far more often than
	// the mean (~2.15).
	if max < 20 {
		t.Fatalf("max popularity %d; stream not skewed", max)
	}
}

func TestWebTraceSiteAffinity(t *testing.T) {
	spec := DefaultWebSpec(2000, 6)
	w := WebTrace(spec)
	// For each file referenced >= 8 times, the modal site should exceed
	// the uniform share (1/8) substantially on average.
	bySite := map[int32]map[int32]int{}
	tot := map[int32]int{}
	for _, e := range w.Events {
		if bySite[e.File] == nil {
			bySite[e.File] = map[int32]int{}
		}
		bySite[e.File][w.SiteOf[e.Client]]++
		tot[e.File]++
	}
	var modalShare float64
	n := 0
	for f, sites := range bySite {
		if tot[f] < 8 {
			continue
		}
		max := 0
		for _, c := range sites {
			if c > max {
				max = c
			}
		}
		modalShare += float64(max) / float64(tot[f])
		n++
	}
	if n == 0 {
		t.Skip("no popular files at this scale")
	}
	avg := modalShare / float64(n)
	if avg < 0.3 { // uniform would give ~0.2 for 8 sites at these counts
		t.Fatalf("average modal site share %.2f; affinity not working", avg)
	}
}

func TestWebTraceDeterministic(t *testing.T) {
	a := WebTrace(DefaultWebSpec(1000, 7))
	b := WebTrace(DefaultWebSpec(1000, 7))
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("event streams differ for equal seeds")
		}
	}
}

func TestWebTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	WebTrace(WebSpec{})
}

func TestFileName(t *testing.T) {
	if FileName(7) != "trace-file-7" {
		t.Fatalf("FileName = %q", FileName(7))
	}
}
