// Package trace generates the workloads of the paper's evaluation.
//
// The paper drives PAST with two traces we cannot redistribute:
//
//   - eight NLANR web-proxy logs (4,000,000 entries, 1,863,055 unique
//     URLs, 18.7 GB, mean file size 10,517 B, median 1,312 B, maximum
//     138 MB, 775 clients at 8 geographically distinct sites);
//   - a filesystem scan of the authors' home institutions (2,027,908
//     files, 166.6 GB, mean 88,233 B, median 4,578 B, maximum 2.7 GB).
//
// This package substitutes statistically equivalent synthetic workloads:
// lognormal file sizes fitted exactly to the published median and mean
// (clamped at the published maxima, with a small probability of
// zero-byte files, which both traces contain), Zipf-like request
// popularity (Breslau et al., cited by the paper, report alpha around
// 0.64-0.83 for web traces), and clients partitioned into 8 proximity
// sites. The storage results depend only on the size distribution and
// arrival order; the caching results additionally on popularity skew and
// client locality — all of which are preserved. See DESIGN.md section 3.
package trace

import (
	"fmt"
	"math/rand"

	"past/internal/stats"
)

// Op is the type of a trace event.
type Op uint8

// Event operations.
const (
	// OpInsert is the first reference to a file: the client inserts it.
	OpInsert Op = iota
	// OpLookup is a repeat reference: the client retrieves the file.
	OpLookup
)

// Event is one trace record.
type Event struct {
	Op     Op
	File   int32 // unique-file index
	Client int32 // client index issuing the request
	Size   int64 // file size; set on OpInsert events
}

// Workload is a replayable sequence of events.
type Workload struct {
	Events  []Event
	Files   int // number of unique files referenced
	Clients int // number of distinct clients
	Sites   int // number of client sites (proximity clusters)
	// SiteOf maps client index to site index.
	SiteOf []int32
	// Sizes maps unique-file index to size in bytes.
	Sizes []int64
	// TotalBytes is the sum of unique-file sizes.
	TotalBytes int64
}

// FileName returns the canonical name of unique file i, the input to
// fileId derivation during replay.
func FileName(i int32) string { return fmt.Sprintf("trace-file-%d", i) }

// NLANRSizes is the published NLANR web-proxy size distribution,
// expressed as a stats.SizeDist.
func NLANRSizes() stats.SizeDist {
	return stats.SizeDist{
		LN:    stats.LogNormalFromMedianMean(1312, 10517),
		Min:   0,
		Max:   138 << 20, // 138 MB
		PZero: 0.0005,
	}
}

// FilesystemSizes is the published filesystem-scan size distribution.
func FilesystemSizes() stats.SizeDist {
	return stats.SizeDist{
		LN:    stats.LogNormalFromMedianMean(4578, 88233),
		Min:   0,
		Max:   27 << 30 / 10, // 2.7 GB
		PZero: 0.0005,
	}
}

// InsertOnly generates an insert-only workload of n unique files with
// the given size distribution — the form the storage-management
// experiments consume (they ignore repeat references).
func InsertOnly(n int, dist stats.SizeDist, seed int64) *Workload {
	r := rand.New(rand.NewSource(seed))
	w := &Workload{
		Events:  make([]Event, 0, n),
		Files:   n,
		Clients: 1,
		Sites:   1,
		SiteOf:  []int32{0},
		Sizes:   make([]int64, n),
	}
	for i := 0; i < n; i++ {
		sz := dist.Sample(r)
		w.Sizes[i] = sz
		w.TotalBytes += sz
		w.Events = append(w.Events, Event{Op: OpInsert, File: int32(i), Client: 0, Size: sz})
	}
	return w
}

// WebSpec parameterizes a web-proxy-like request stream.
type WebSpec struct {
	// UniqueFiles is the size of the URL population.
	UniqueFiles int
	// Requests is the total number of trace entries (first references
	// insert, repeats look up). The paper's ratio is ~2.15 requests per
	// unique URL.
	Requests int
	// Clients and Sites partition requesters (the paper: 775 clients at
	// 8 sites).
	Clients, Sites int
	// ZipfAlpha is the popularity exponent (~0.8 for web traces).
	ZipfAlpha float64
	// AffinityP is the probability that a request for a file comes from
	// the file's home site rather than a uniformly random site; it
	// models the geographic interest locality that makes per-site
	// caching effective.
	AffinityP float64
	// Sizes is the file-size distribution.
	Sizes stats.SizeDist
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultWebSpec returns a paper-shaped specification at the given scale
// (unique file count); requests scale at the paper's 2.15x ratio.
func DefaultWebSpec(uniqueFiles int, seed int64) WebSpec {
	return WebSpec{
		UniqueFiles: uniqueFiles,
		Requests:    uniqueFiles * 215 / 100,
		Clients:     775,
		Sites:       8,
		ZipfAlpha:   0.8,
		AffinityP:   0.5,
		Sizes:       NLANRSizes(),
		Seed:        seed,
	}
}

// WebTrace generates a full request stream: files are drawn by Zipf
// popularity; a file's first appearance is its insertion (exactly how
// the paper replays the NLANR log: "the first appearance of a URL being
// used to insert the file, with subsequent references ... performing a
// lookup"). The number of unique files actually referenced is reported
// in the result and is at most UniqueFiles.
func WebTrace(spec WebSpec) *Workload {
	if spec.UniqueFiles <= 0 || spec.Requests <= 0 || spec.Clients <= 0 || spec.Sites <= 0 {
		panic("trace: WebTrace needs positive counts")
	}
	r := rand.New(rand.NewSource(spec.Seed))
	z := stats.NewZipf(spec.UniqueFiles, spec.ZipfAlpha)

	// Popularity rank -> file index permutation, so popularity is
	// independent of file index and hence of size.
	perm := r.Perm(spec.UniqueFiles)

	// Per-file size and home site.
	sizes := make([]int64, spec.UniqueFiles)
	home := make([]int32, spec.UniqueFiles)
	for i := range sizes {
		sizes[i] = spec.Sizes.Sample(r)
		home[i] = int32(r.Intn(spec.Sites))
	}
	siteOf := make([]int32, spec.Clients)
	for c := range siteOf {
		siteOf[c] = int32(c % spec.Sites)
	}
	// Clients grouped by site for affinity draws.
	bySite := make([][]int32, spec.Sites)
	for c, s := range siteOf {
		bySite[s] = append(bySite[s], int32(c))
	}

	w := &Workload{
		Events:  make([]Event, 0, spec.Requests),
		Clients: spec.Clients,
		Sites:   spec.Sites,
		SiteOf:  siteOf,
		Sizes:   sizes,
	}
	seen := make([]bool, spec.UniqueFiles)
	unique := 0
	for i := 0; i < spec.Requests; i++ {
		f := int32(perm[z.Rank(r)])
		var site int32
		if r.Float64() < spec.AffinityP {
			site = home[f]
		} else {
			site = int32(r.Intn(spec.Sites))
		}
		clients := bySite[site]
		client := clients[r.Intn(len(clients))]
		if !seen[f] {
			seen[f] = true
			unique++
			w.TotalBytes += sizes[f]
			w.Events = append(w.Events, Event{Op: OpInsert, File: f, Client: client, Size: sizes[f]})
		} else {
			w.Events = append(w.Events, Event{Op: OpLookup, File: f, Client: client})
		}
	}
	w.Files = unique
	return w
}
