package trace

import (
	"strings"
	"testing"
)

const sampleLog = `# squid access.log excerpt
983836801.123    210 10.0.0.1 TCP_MISS/200 5120 GET http://example.com/a.html - DIRECT/1.2.3.4 text/html
983836802.456     95 10.0.0.2 TCP_HIT/200 1312 GET http://example.com/b.css - NONE/- text/css
983836803.789    130 10.0.0.1 TCP_MISS/200 5120 GET http://example.com/a.html - DIRECT/1.2.3.4 text/html

983836804.000     80 10.0.0.3 TCP_MISS/200 99 GET http://example.org/c.js - DIRECT/5.6.7.8 application/js
`

func TestParseSquidLine(t *testing.T) {
	rec, err := ParseSquidLine("983836801.123 210 10.0.0.1 TCP_MISS/200 5120 GET http://example.com/a.html - DIRECT/1.2.3.4 text/html")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Client != "10.0.0.1" || rec.Size != 5120 || rec.URL != "http://example.com/a.html" {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Timestamp != 983836801.123 {
		t.Fatalf("ts = %f", rec.Timestamp)
	}
}

func TestParseSquidLineErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"too few fields",
		"notatime 1 c TCP/200 5 GET http://u",
		"983836801.1 1 c TCP/200 notasize GET http://u",
		"983836801.1 1 c TCP/200 -5 GET http://u",
	} {
		if _, err := ParseSquidLine(line); err == nil {
			t.Fatalf("line %q parsed", line)
		}
	}
}

func TestReadSquidLog(t *testing.T) {
	recs, err := ReadSquidLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d; want 4 (comments and blanks skipped)", len(recs))
	}
	if _, err := ReadSquidLog(strings.NewReader("garbage line here\n")); err == nil {
		t.Fatal("garbage log accepted")
	}
}

func TestFromSquid(t *testing.T) {
	recs, err := ReadSquidLog(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromSquid(recs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Files != 3 {
		t.Fatalf("unique files = %d; want 3", w.Files)
	}
	if w.Clients != 3 || w.Sites != 2 {
		t.Fatalf("clients=%d sites=%d", w.Clients, w.Sites)
	}
	if len(w.Events) != 4 {
		t.Fatalf("events = %d", len(w.Events))
	}
	// First reference to a.html inserts; the repeat looks up.
	if w.Events[0].Op != OpInsert || w.Events[0].Size != 5120 {
		t.Fatalf("event 0: %+v", w.Events[0])
	}
	if w.Events[2].Op != OpLookup || w.Events[2].File != w.Events[0].File {
		t.Fatalf("event 2: %+v", w.Events[2])
	}
	if w.TotalBytes != 5120+1312+99 {
		t.Fatalf("total bytes = %d", w.TotalBytes)
	}
	// Client site assignment round-robins in order of first appearance.
	if w.SiteOf[0] != 0 || w.SiteOf[1] != 1 || w.SiteOf[2] != 0 {
		t.Fatalf("sites = %v", w.SiteOf)
	}
}

func TestFromSquidTruncationAndOrder(t *testing.T) {
	recs := []SquidRecord{
		{Timestamp: 30, Client: "c", Size: 3, URL: "u3"},
		{Timestamp: 10, Client: "a", Size: 1, URL: "u1"},
		{Timestamp: 20, Client: "b", Size: 2, URL: "u2"},
	}
	w, err := FromSquid(recs, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by timestamp, truncated to 2 entries: u1, u2.
	if len(w.Events) != 2 || w.Sizes[0] != 1 || w.Sizes[1] != 2 {
		t.Fatalf("workload = %+v", w)
	}
}

func TestFromSquidErrors(t *testing.T) {
	if _, err := FromSquid(nil, 0, 0); err == nil {
		t.Fatal("sites=0 accepted")
	}
	if _, err := FromSquid(nil, 8, 0); err == nil {
		t.Fatal("empty log accepted")
	}
}
