package logstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"past/internal/id"
	"past/internal/store"
)

// oracleState is the expected metadata after a durable prefix of ops.
type oracleState struct {
	walOff   int64 // WAL offset after the op that produced this state
	entries  map[id.File]store.Entry
	contents map[id.File][]byte
	pointers map[id.File]store.Pointer
}

func (o oracleState) clone() oracleState {
	c := oracleState{
		walOff:   o.walOff,
		entries:  make(map[id.File]store.Entry, len(o.entries)),
		contents: make(map[id.File][]byte, len(o.contents)),
		pointers: make(map[id.File]store.Pointer, len(o.pointers)),
	}
	for k, v := range o.entries {
		c.entries[k] = v
	}
	for k, v := range o.contents {
		c.contents[k] = v
	}
	for k, v := range o.pointers {
		c.pointers[k] = v
	}
	return c
}

// runOpSequence applies n random seeded ops to a fresh store at dir and
// returns the state snapshot after every op that appended a WAL record
// (index 0 is the empty store).
func runOpSequence(t *testing.T, dir string, seed int64, n int) []oracleState {
	t.Helper()
	s := mustOpen(t, dir, testOpts())
	r := rand.New(rand.NewSource(seed))
	cur := oracleState{
		walOff:   fileHeaderSize,
		entries:  map[id.File]store.Entry{},
		contents: map[id.File][]byte{},
		pointers: map[id.File]store.Pointer{},
	}
	states := []oracleState{cur.clone()}
	var live []id.File
	var livePtr []id.File
	for i := 0; i < n; i++ {
		mutated := false
		switch op := r.Intn(10); {
		case op < 5: // add, usually with content
			f := fid(uint64(r.Intn(1 << 20)))
			if _, dup := cur.entries[f]; dup {
				continue
			}
			size := int64(r.Intn(300) + 1)
			e := store.Entry{File: f, Size: size, Kind: store.Kind(r.Intn(2))}
			var content []byte
			if r.Intn(4) != 0 {
				content = make([]byte, size)
				r.Read(content)
				e.Content = content
			}
			if err := s.Add(e); err != nil {
				t.Fatal(err)
			}
			e.Content = nil
			cur.entries[f] = e
			if content != nil {
				cur.contents[f] = content
			}
			live = append(live, f)
			mutated = true
		case op < 7: // remove a live entry
			if len(live) == 0 {
				continue
			}
			j := r.Intn(len(live))
			f := live[j]
			live = append(live[:j], live[j+1:]...)
			if _, ok := s.Remove(f); !ok {
				t.Fatalf("remove %s failed", f.Short())
			}
			delete(cur.entries, f)
			delete(cur.contents, f)
			mutated = true
		case op < 9: // set pointer
			f := fid(uint64(2_000_000 + r.Intn(1<<16)))
			p := store.Pointer{File: f, Target: id.NodeFromUint64(uint64(r.Intn(1 << 16))), Size: int64(r.Intn(100)), Role: store.PtrRole(r.Intn(2))}
			s.SetPointer(p)
			cur.pointers[f] = p
			livePtr = append(livePtr, f)
			mutated = true
		default: // remove pointer
			if len(livePtr) == 0 {
				continue
			}
			j := r.Intn(len(livePtr))
			f := livePtr[j]
			livePtr = append(livePtr[:j], livePtr[j+1:]...)
			if _, ok := s.RemovePointer(f); !ok {
				continue // duplicate SetPointer target already removed
			}
			delete(cur.pointers, f)
			mutated = true
		}
		if mutated {
			cur.walOff = s.log.walOff
			states = append(states, cur.clone())
		}
	}
	s.Kill() // crash: no checkpoint, no final sync
	return states
}

// copyDir clones a logstore directory so each truncation experiment
// starts from the same crashed image.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// verifyAgainstOracle opens dir and asserts it matches the oracle state
// exactly on metadata, and content-wise returns either the right bytes
// or nothing (lost tail), never wrong bytes.
func verifyAgainstOracle(t *testing.T, dir string, want oracleState, label string) {
	t.Helper()
	s := mustOpen(t, dir, testOpts())
	defer s.Kill()
	if got := s.Len(); got != len(want.entries) {
		t.Fatalf("%s: len=%d want %d", label, got, len(want.entries))
	}
	for f, we := range want.entries {
		e, ok := s.Get(f)
		if !ok {
			t.Fatalf("%s: entry %s missing", label, f.Short())
		}
		if e.Size != we.Size || e.Kind != we.Kind || e.Owner != we.Owner {
			t.Fatalf("%s: entry %s metadata mismatch: %+v vs %+v", label, f.Short(), e, we)
		}
		if wc, hadContent := want.contents[f]; hadContent && e.Content != nil {
			if !bytes.Equal(e.Content, wc) {
				t.Fatalf("%s: entry %s surfaced wrong content", label, f.Short())
			}
		}
	}
	ptrs := s.Pointers()
	if len(ptrs) != len(want.pointers) {
		t.Fatalf("%s: pointers=%d want %d", label, len(ptrs), len(want.pointers))
	}
	for _, p := range ptrs {
		if want.pointers[p.File] != p {
			t.Fatalf("%s: pointer %s mismatch", label, p.File.Short())
		}
	}
}

// stateForOffset returns the last oracle state whose WAL offset fits
// within a WAL truncated to length n.
func stateForOffset(states []oracleState, n int64) oracleState {
	best := states[0]
	for _, st := range states {
		if st.walOff <= n {
			best = st
		}
	}
	return best
}

// TestCrashRecoveryEveryByteBoundary is the property test from the
// issue: run a seeded op sequence, crash, then truncate the WAL at
// every byte boundary of the tail record (and at every op boundary) and
// assert the reopened store equals the longest durable prefix.
func TestCrashRecoveryEveryByteBoundary(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := t.TempDir()
			img := filepath.Join(base, "img")
			states := runOpSequence(t, img, seed, 60)
			if len(states) < 10 {
				t.Fatalf("degenerate sequence: %d states", len(states))
			}
			walName := ""
			{
				seqs, err := listNumbered(img, "wal-", ".log")
				if err != nil || len(seqs) != 1 {
					t.Fatalf("want one WAL file: %v %v", seqs, err)
				}
				walName = filepath.Base(walPath(img, seqs[0]))
			}

			// Every op boundary.
			for i, st := range states {
				dir := filepath.Join(base, fmt.Sprintf("op%d", i))
				copyDir(t, img, dir)
				if err := os.Truncate(filepath.Join(dir, walName), st.walOff); err != nil {
					t.Fatal(err)
				}
				verifyAgainstOracle(t, dir, st, fmt.Sprintf("op boundary %d", i))
			}

			// Every byte boundary inside the tail record.
			last := states[len(states)-1]
			prev := states[len(states)-2]
			for n := prev.walOff; n < last.walOff; n++ {
				dir := filepath.Join(base, fmt.Sprintf("byte%d", n))
				copyDir(t, img, dir)
				if err := os.Truncate(filepath.Join(dir, walName), n); err != nil {
					t.Fatal(err)
				}
				verifyAgainstOracle(t, dir, stateForOffset(states, n), fmt.Sprintf("byte boundary %d", n))
			}
		})
	}
}

// TestCrashRecoveryBitFlipInTail flips each byte of the tail record in
// turn; the reopened store must fall back to the previous durable state
// (the corrupt record fails its CRC) and never surface corrupt data.
func TestCrashRecoveryBitFlipInTail(t *testing.T) {
	base := t.TempDir()
	img := filepath.Join(base, "img")
	states := runOpSequence(t, img, 99, 40)
	last, prev := states[len(states)-1], states[len(states)-2]
	seqs, _ := listNumbered(img, "wal-", ".log")
	walName := filepath.Base(walPath(img, seqs[0]))

	stride := int64(1)
	if last.walOff-prev.walOff > 64 {
		stride = 7 // sample large records; still hits header and payload
	}
	for off := prev.walOff; off < last.walOff; off += stride {
		dir := filepath.Join(base, fmt.Sprintf("flip%d", off))
		copyDir(t, img, dir)
		p := filepath.Join(dir, walName)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0xa5
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		verifyAgainstOracle(t, dir, prev, fmt.Sprintf("bit flip at %d", off))
	}
}

// TestConcurrentOpsUnderGroupCommit hammers Add/Get/Remove/pointer ops
// from many goroutines under SyncAlways. Run with -race; it also checks
// final accounting exactly.
func TestConcurrentOpsUnderGroupCommit(t *testing.T) {
	opts := testOpts()
	opts.Sync = SyncAlways
	opts.SegmentTarget = 8192 // rotate often to stress the fd map
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				f := fid(uint64(w*perWorker + i))
				content := make([]byte, 64+r.Intn(128))
				r.Read(content)
				if err := s.Add(store.Entry{File: f, Size: int64(len(content)), Content: content}); err != nil {
					errs <- err
					return
				}
				if e, ok := s.Get(f); !ok || !bytes.Equal(e.Content, content) {
					errs <- fmt.Errorf("worker %d: read-own-write failed for %s", w, f.Short())
					return
				}
				if i%3 == 0 {
					if _, ok := s.Remove(f); !ok {
						errs <- fmt.Errorf("worker %d: remove failed", w)
						return
					}
				}
				if i%5 == 0 {
					s.SetPointer(store.Pointer{File: fid(uint64(1_000_000 + w*perWorker + i)), Target: id.NodeFromUint64(uint64(w)), Size: 1})
				}
				// Read a random other worker's key; must never see torn data.
				other := fid(uint64(r.Intn(workers * perWorker)))
				if e, ok := s.Get(other); ok && e.Content != nil {
					if int64(len(e.Content)) != e.Size {
						errs <- fmt.Errorf("torn read: content %d bytes, size %d", len(e.Content), e.Size)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	wantLen := 0
	var wantUsed int64
	for w := 0; w < workers; w++ {
		r := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWorker; i++ {
			n := 64 + r.Intn(128)
			buf := make([]byte, n)
			r.Read(buf)
			if i%3 != 0 {
				wantLen++
				wantUsed += int64(n)
			}
			r.Intn(workers * perWorker) // consume the "other" draw
		}
	}
	if s.Len() != wantLen || s.Used() != wantUsed {
		t.Fatalf("final accounting: len=%d used=%d want len=%d used=%d", s.Len(), s.Used(), wantLen, wantUsed)
	}
	if s.Stats().Fsyncs.Load() == 0 {
		t.Fatal("SyncAlways ran without fsyncs")
	}
}
