package logstore

import (
	"bytes"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"

	"past/internal/id"
	"past/internal/store"
)

func fid(n uint64) id.File { return id.NewFile("f", nil, n) }

func testOpts() Options {
	return Options{Capacity: 1 << 30, Sync: SyncNever, CheckpointBytes: -1, CompactRatio: -1}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func contentFor(n uint64, size int) []byte {
	r := rand.New(rand.NewSource(int64(n)))
	b := make([]byte, size)
	r.Read(b)
	return b
}

func TestAddGetRemove(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOpts())
	defer s.Close()

	content := contentFor(1, 512)
	if err := s.Add(store.Entry{File: fid(1), Size: 512, Kind: store.Primary, Content: content}); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get(fid(1))
	if !ok || !bytes.Equal(e.Content, content) || e.Size != 512 {
		t.Fatalf("get: ok=%v %+v", ok, e)
	}
	if s.Used() != 512 || s.Len() != 1 {
		t.Fatalf("accounting: used=%d len=%d", s.Used(), s.Len())
	}
	if err := s.Add(store.Entry{File: fid(1), Size: 1}); err == nil {
		t.Fatal("duplicate add succeeded")
	}
	if err := s.Add(store.Entry{File: fid(2), Size: -1}); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, ok := s.Remove(fid(1)); !ok {
		t.Fatal("remove failed")
	}
	if _, ok := s.Get(fid(1)); ok {
		t.Fatal("entry survived removal")
	}
	if s.Used() != 0 || s.Len() != 0 {
		t.Fatalf("accounting after remove: used=%d len=%d", s.Used(), s.Len())
	}
}

func TestCapacityEnforced(t *testing.T) {
	opts := testOpts()
	opts.Capacity = 100
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	if err := s.Add(store.Entry{File: fid(1), Size: 80}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(store.Entry{File: fid(2), Size: 30}); err == nil {
		t.Fatal("over-capacity add succeeded")
	}
	if !s.CanAccept(0, 0.1) {
		t.Fatal("zero-size must always be accepted")
	}
	if s.CanAccept(19, 0.5) {
		t.Fatal("19/20 above threshold 0.5 accepted")
	}
	if !s.CanAccept(10, 0.5) {
		t.Fatal("10/20 at threshold 0.5 rejected")
	}
}

// populate adds n entries (content on the even ones) and a pointer per
// multiple of 5, returning the expected state.
func populate(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		e := store.Entry{File: fid(uint64(i)), Size: int64(16 + i), Kind: store.Primary}
		if i%2 == 0 {
			e.Content = contentFor(uint64(i), 16+i)
			e.Kind = store.DivertedIn
			e.Owner = id.NodeFromUint64(uint64(i))
		}
		if err := s.Add(e); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			s.SetPointer(store.Pointer{File: fid(uint64(1000 + i)), Target: id.NodeFromUint64(uint64(i)), Size: int64(i), Role: store.Backup})
		}
	}
}

// checkPopulated asserts the state written by populate survived (it
// does not bound Len, so callers may add entries beyond populate's).
func checkPopulated(t *testing.T, s *Store, n int) {
	t.Helper()
	if s.Len() < n {
		t.Fatalf("len=%d want >=%d", s.Len(), n)
	}
	for i := 1; i <= n; i++ {
		e, ok := s.Get(fid(uint64(i)))
		if !ok || e.Size != int64(16+i) {
			t.Fatalf("entry %d: ok=%v %+v", i, ok, e)
		}
		if i%2 == 0 {
			if !bytes.Equal(e.Content, contentFor(uint64(i), 16+i)) {
				t.Fatalf("entry %d content mismatch", i)
			}
			if e.Kind != store.DivertedIn || e.Owner != id.NodeFromUint64(uint64(i)) {
				t.Fatalf("entry %d metadata: %+v", i, e)
			}
		}
		if i%5 == 0 {
			p, ok := s.GetPointer(fid(uint64(1000 + i)))
			if !ok || p.Target != id.NodeFromUint64(uint64(i)) || p.Role != store.Backup {
				t.Fatalf("pointer %d: ok=%v %+v", i, ok, p)
			}
		}
	}
}

func TestReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	populate(t, s, 40)
	entries, pointers := s.Entries(), s.Pointers()
	used := s.Used()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	checkPopulated(t, s2, 40)
	if s2.Used() != used {
		t.Fatalf("used=%d want %d", s2.Used(), used)
	}
	if !reflect.DeepEqual(s2.Entries(), entries) {
		t.Fatal("Entries() differ after reopen")
	}
	if !reflect.DeepEqual(s2.Pointers(), pointers) {
		t.Fatal("Pointers() differ after reopen")
	}
}

func TestReopenWithoutCloseReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	populate(t, s, 25)
	s.Remove(fid(3))
	s.RemovePointer(fid(1005))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Kill() // no checkpoint: recovery must replay the WAL

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if s2.Len() != 24 {
		t.Fatalf("len=%d want 24", s2.Len())
	}
	if _, ok := s2.Get(fid(3)); ok {
		t.Fatal("removed entry resurrected")
	}
	if _, ok := s2.GetPointer(fid(1005)); ok {
		t.Fatal("removed pointer resurrected")
	}
	if s2.Stats().RecoveredRecords.Load() == 0 {
		t.Fatal("no WAL records replayed")
	}
}

func TestCheckpointShortensRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	populate(t, s, 30)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Checkpoints.Load(); got != 1 {
		t.Fatalf("checkpoints=%d", got)
	}
	// Post-checkpoint mutations land in the fresh WAL.
	if err := s.Add(store.Entry{File: fid(99), Size: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Kill()

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	checkPopulated(t, s2, 30)
	if _, ok := s2.Get(fid(99)); !ok {
		t.Fatal("post-checkpoint add lost")
	}
	// Only the post-checkpoint records should have been replayed.
	if n := s2.Stats().RecoveredRecords.Load(); n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
}

func TestSegmentRotationAndGet(t *testing.T) {
	opts := testOpts()
	opts.SegmentTarget = 4096 // force frequent rotation
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	for i := 1; i <= 30; i++ {
		c := contentFor(uint64(i), 700)
		if err := s.Add(store.Entry{File: fid(uint64(i)), Size: 700, Content: c}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().SegRotations.Load() < 4 {
		t.Fatalf("rotations=%d, want several", s.Stats().SegRotations.Load())
	}
	for i := 1; i <= 30; i++ {
		e, ok := s.Get(fid(uint64(i)))
		if !ok || !bytes.Equal(e.Content, contentFor(uint64(i), 700)) {
			t.Fatalf("entry %d unreadable after rotation", i)
		}
	}
}

func TestCompaction(t *testing.T) {
	opts := testOpts()
	opts.SegmentTarget = 4096
	opts.CompactRatio = 0.5
	dir := t.TempDir()
	s := mustOpen(t, dir, opts)
	for i := 1; i <= 40; i++ {
		c := contentFor(uint64(i), 600)
		if err := s.Add(store.Entry{File: fid(uint64(i)), Size: 600, Content: c}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill most entries so sealed segments drop below the live threshold.
	for i := 1; i <= 40; i++ {
		if i%4 != 0 {
			s.Remove(fid(uint64(i)))
		}
	}
	compacted := 0
	for {
		did, err := s.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
		compacted++
	}
	if compacted == 0 {
		t.Fatal("nothing compacted")
	}
	if s.Stats().Compactions.Load() != int64(compacted) {
		t.Fatal("compaction counter mismatch")
	}
	// Survivors still readable, through relocation.
	for i := 4; i <= 40; i += 4 {
		e, ok := s.Get(fid(uint64(i)))
		if !ok || !bytes.Equal(e.Content, contentFor(uint64(i), 600)) {
			t.Fatalf("entry %d lost by compaction", i)
		}
	}
	// And across a restart: relocate records must be in the WAL.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, opts)
	defer s2.Close()
	for i := 4; i <= 40; i += 4 {
		e, ok := s2.Get(fid(uint64(i)))
		if !ok || !bytes.Equal(e.Content, contentFor(uint64(i), 600)) {
			t.Fatalf("entry %d lost after compaction+restart", i)
		}
	}
	r, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("fsck after compaction:\n%s", r)
	}
}

func TestEntriesSortedAndMatchBackendSemantics(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOpts())
	defer s.Close()
	ref := store.New(1 << 30)
	for i := 1; i <= 20; i++ {
		e := store.Entry{File: fid(uint64(i)), Size: int64(i)}
		if err := s.Add(e); err != nil {
			t.Fatal(err)
		}
		if err := ref.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	got, want := s.Entries(), ref.Entries()
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].File != want[i].File || got[i].Size != want[i].Size {
			t.Fatalf("order mismatch at %d: %v vs %v", i, got[i].File.Short(), want[i].File.Short())
		}
	}
}

func TestObsCounters(t *testing.T) {
	s := mustOpen(t, t.TempDir(), testOpts())
	defer s.Close()
	if err := s.Add(store.Entry{File: fid(1), Size: 5, Content: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	m := s.ObsCounters()
	if m["logstore_wal_appends_total"] != 1 {
		t.Fatalf("wal appends counter: %v", m)
	}
	if m["logstore_segments"] != 1 {
		t.Fatalf("segments gauge: %v", m)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	populate(t, s, 10)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("clean store flagged:\n%s", r)
	}

	// Flip a content byte inside a referenced segment record.
	segs, err := listNumbered(dir, "seg-", ".seg")
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	path := segPath(dir, uint32(segs[0]))
	data, err := readFileForTest(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := writeFileForTest(path, data); err != nil {
		t.Fatal(err)
	}
	r, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() {
		t.Fatalf("corruption not detected:\n%s", r)
	}
}

func TestGetWithholdsCorruptContent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	c := contentFor(7, 256)
	if err := s.Add(store.Entry{File: fid(7), Size: 256, Content: c}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored content on disk, then reopen.
	segs, _ := listNumbered(dir, "seg-", ".seg")
	path := segPath(dir, uint32(segs[0]))
	data, err := readFileForTest(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x55
	if err := writeFileForTest(path, data); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	e, ok := s2.Get(fid(7))
	if !ok {
		t.Fatal("metadata must survive content corruption")
	}
	if e.Content != nil {
		t.Fatal("corrupt content surfaced")
	}
	if s2.Stats().ChecksumFailures.Load() == 0 {
		t.Fatal("checksum failure not counted")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("%s: %v %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("round-trip %s -> %s", tc.in, got)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestClosedStoreRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(store.Entry{File: fid(1), Size: 1}); err == nil {
		t.Fatal("add on closed store succeeded")
	}
	if _, ok := s.Remove(fid(1)); ok {
		t.Fatal("remove on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func readFileForTest(path string) ([]byte, error)  { return os.ReadFile(path) }
func writeFileForTest(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }

// TestRotationSealsSegmentDurably verifies that sealing a segment
// fsyncs it: under SyncNever with checkpoints disabled, the only fsync
// source is rotateSegmentLocked, so the counter must track rotations.
// Without the seal-sync, content acknowledged just before a rotation
// could vanish in a crash even though its WAL record was fsynced.
func TestRotationSealsSegmentDurably(t *testing.T) {
	opts := testOpts()
	opts.SegmentTarget = 1024
	s := mustOpen(t, t.TempDir(), opts)
	defer s.Close()

	for i := uint64(0); i < 8; i++ {
		content := contentFor(i, 512)
		if err := s.Add(store.Entry{File: fid(i), Size: int64(len(content)), Content: content}); err != nil {
			t.Fatal(err)
		}
	}
	rot := s.Stats().SegRotations.Load()
	if rot < 2 {
		t.Fatalf("expected multiple rotations, got %d", rot)
	}
	// First Add creates segment 1 via rotate (no predecessor to seal);
	// every later rotation must have fsynced the outgoing segment.
	if got := s.Stats().Fsyncs.Load(); got < rot-1 {
		t.Fatalf("rotations=%d but only %d fsyncs: sealed segments not synced", rot, got)
	}
}

// TestCloseRacesCheckpoint hammers explicit Checkpoint calls and
// auto-checkpoint kicks (tiny CheckpointBytes) while Close runs. Run
// with -race: this used to trip bg.Add-vs-bg.Wait WaitGroup misuse and
// let two checkpoint bodies interleave, which could commit a stale
// snapshot after a newer one had deleted the WAL files it points at.
func TestCloseRacesCheckpoint(t *testing.T) {
	for round := 0; round < 10; round++ {
		dir := t.TempDir()
		opts := testOpts()
		opts.CheckpointBytes = 256 // kick a checkpoint every few ops
		s := mustOpen(t, dir, opts)

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					n := uint64(round*1_000_000 + w*10_000 + i)
					f := fid(n)
					content := contentFor(n, 64)
					_ = s.Add(store.Entry{File: f, Size: 64, Content: content})
					if i%7 == 0 {
						_ = s.Checkpoint()
					}
				}
			}()
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		if err := s.Checkpoint(); err != errClosed {
			t.Fatalf("Checkpoint after Close: got %v, want errClosed", err)
		}

		// The directory must reopen cleanly and hold every entry whose
		// Add succeeded before Close won the race.
		entriesBefore := s.Len()
		s2 := mustOpen(t, dir, testOpts())
		if got := s2.Len(); got != entriesBefore {
			t.Fatalf("round %d: reopened with %d entries, closed with %d", round, got, entriesBefore)
		}
		s2.Close()
	}
}
