package logstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"past/internal/id"
	"past/internal/store"
)

// Open opens (or creates) a log store at dir: load the last checkpoint,
// replay the WAL over it, truncate torn tails, rebuild the segment
// accounting, and resume appending. A node restarted on its directory
// comes back with exactly the metadata and content that were durable at
// the crash.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Capacity < 0 {
		return nil, fmt.Errorf("logstore: negative capacity")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts, stop: make(chan struct{})}
	for i := range s.shards {
		s.shards[i].entries = make(map[id.File]*entryRec)
		s.shards[i].pointers = make(map[id.File]store.Pointer)
	}
	s.segFDs.m = make(map[uint32]*os.File)
	s.log.segLive = make(map[uint32]int64)
	s.log.segTotal = make(map[uint32]int64)
	s.commit.cond = sync.NewCond(&s.commit.Mutex)

	start := time.Now()
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.stats.RecoveryNanos.Store(time.Since(start).Nanoseconds())

	s.bg.Add(1)
	go s.background()
	return s, nil
}

// recover rebuilds the in-memory state from disk. Runs single-threaded
// before the store is visible, so it mutates the index without locks.
func (s *Store) recover() error {
	ckpt, err := loadCheckpointFile(s.dir)
	if err != nil {
		return err
	}
	firstSeq := uint64(1)
	if ckpt != nil {
		firstSeq = ckpt.WALSeq
		for _, ce := range ckpt.Entries {
			e := ce.Entry
			e.Content = nil
			s.applyAdd(e, ce.HasContent, location{Seg: ce.Seg, Off: ce.Off, Len: ce.Len, CRC: ce.CRC})
		}
		for _, p := range ckpt.Pointers {
			s.shardOf(p.File).pointers[p.File] = p
		}
	}

	seqs, err := listNumbered(s.dir, "wal-", ".log")
	if err != nil {
		return err
	}
	var replaySeqs []uint64
	for _, seq := range seqs {
		if seq < firstSeq {
			// Superseded by the checkpoint; a crash interrupted cleanup.
			os.Remove(walPath(s.dir, seq))
			continue
		}
		replaySeqs = append(replaySeqs, seq)
	}

	lastOff := int64(fileHeaderSize)
	lastSeq := firstSeq
	if len(replaySeqs) == 0 {
		wal, err := createLogFile(walPath(s.dir, firstSeq), walMagic)
		if err != nil {
			return fmt.Errorf("logstore: create WAL: %w", err)
		}
		syncDir(s.dir) // dir entry durable before records are acknowledged
		s.log.wal = wal
	} else {
		for i, seq := range replaySeqs {
			isLast := i == len(replaySeqs)-1
			n, validLen, torn, err := s.replayWALFile(walPath(s.dir, seq), isLast)
			if err != nil {
				return err
			}
			s.stats.RecoveredRecords.Add(int64(n))
			if torn {
				s.stats.TornTruncations.Add(1)
			}
			if isLast {
				lastSeq, lastOff = seq, validLen
			}
		}
		wal, err := os.OpenFile(walPath(s.dir, lastSeq), os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("logstore: reopen WAL: %w", err)
		}
		s.log.wal = wal
	}
	s.log.walSeq = lastSeq
	s.log.walOff = lastOff
	s.log.walSince = lastOff - fileHeaderSize

	return s.recoverSegments()
}

// applyAdd inserts an entry during recovery, replacing any previous
// version (replay is idempotent that way) and keeping the accounting
// consistent.
func (s *Store) applyAdd(e store.Entry, hasContent bool, loc location) {
	sh := s.shardOf(e.File)
	if old, ok := sh.entries[e.File]; ok {
		s.used.Add(-old.meta.Size)
		s.count.Add(-1)
	}
	sh.entries[e.File] = &entryRec{meta: e, hasContent: hasContent, loc: loc}
	s.used.Add(e.Size)
	s.count.Add(1)
}

// applyRecord folds one replayed WAL record into the index.
func (s *Store) applyRecord(r walRecord) {
	sh := s.shardOf(r.file)
	switch r.typ {
	case recAdd:
		s.applyAdd(r.entry, r.hasContent, r.loc)
	case recRemove:
		if old, ok := sh.entries[r.file]; ok {
			delete(sh.entries, r.file)
			s.used.Add(-old.meta.Size)
			s.count.Add(-1)
		}
	case recSetPointer:
		sh.pointers[r.file] = r.ptr
	case recRemovePointer:
		delete(sh.pointers, r.file)
	case recRelocate:
		if e, ok := sh.entries[r.file]; ok && e.hasContent {
			e.loc = r.loc
		}
	}
}

// replayWALFile replays one WAL file. On the last file a torn tail —
// short header, short payload, impossible length, or CRC mismatch — is
// truncated away; anywhere else it is corruption and recovery fails.
func (s *Store) replayWALFile(path string, isLast bool) (records int, validLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("logstore: read WAL: %w", err)
	}
	if len(data) < fileHeaderSize || string(data[:fileHeaderSize]) != walMagic {
		if !isLast {
			return 0, 0, false, fmt.Errorf("logstore: %s: bad WAL header", path)
		}
		// The file creation itself was torn; reset it.
		f, cerr := createLogFile(path, walMagic)
		if cerr != nil {
			return 0, 0, false, fmt.Errorf("logstore: reset torn WAL: %w", cerr)
		}
		f.Close()
		return 0, fileHeaderSize, true, nil
	}
	off := int64(fileHeaderSize)
	for {
		rec, n, ok, derr := nextWALRecord(data, off)
		if derr != nil {
			return records, off, false, fmt.Errorf("logstore: %s at offset %d: %w", path, off, derr)
		}
		if !ok {
			tail := int64(len(data)) > off
			if tail {
				if !isLast {
					return records, off, false, fmt.Errorf("logstore: %s: invalid record at offset %d in non-final WAL", path, off)
				}
				if terr := os.Truncate(path, off); terr != nil {
					return records, off, false, fmt.Errorf("logstore: truncate torn WAL tail: %w", terr)
				}
			}
			return records, off, tail, nil
		}
		s.applyRecord(rec)
		records++
		off += n
	}
}

// nextWALRecord parses the record at off. ok=false means the bytes at
// off do not form a complete valid record (torn tail or corruption —
// the caller decides which). A decode failure on a CRC-valid payload is
// a hard error.
func nextWALRecord(data []byte, off int64) (rec walRecord, n int64, ok bool, err error) {
	rest := data[off:]
	if len(rest) < recHeaderSize {
		return rec, 0, false, nil
	}
	plen := binary.LittleEndian.Uint32(rest[0:])
	crc := binary.LittleEndian.Uint32(rest[4:])
	if plen > maxRecordLen || int64(len(rest)-recHeaderSize) < int64(plen) {
		return rec, 0, false, nil
	}
	payload := rest[recHeaderSize : recHeaderSize+int(plen)]
	if crc32Checksum(payload) != crc {
		return rec, 0, false, nil
	}
	rec, derr := decodeWALPayload(payload)
	if derr != nil {
		return rec, 0, false, derr
	}
	return rec, recHeaderSize + int64(plen), true, nil
}

// recoverSegments opens every segment file, rebuilds the live/total
// accounting from the recovered index, and trims the active segment:
// bytes past the last live record are either dead or torn, and the
// write point must never overlap a referenced offset.
func (s *Store) recoverSegments() error {
	ids, err := listNumbered(s.dir, "seg-", ".seg")
	if err != nil {
		return err
	}
	sizes := make(map[uint32]int64, len(ids))
	for _, sid64 := range ids {
		sid := uint32(sid64)
		f, err := os.OpenFile(segPath(s.dir, sid), os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("logstore: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("logstore: stat segment: %w", err)
		}
		s.segFDs.m[sid] = f
		size := st.Size()
		if size < fileHeaderSize {
			size = fileHeaderSize // torn creation; no records can be valid
		}
		sizes[sid] = size
		s.log.segTotal[sid] = size - fileHeaderSize
	}

	// Live bytes and high-water marks from the index.
	maxEnd := make(map[uint32]int64)
	for i := range s.shards {
		for _, r := range s.shards[i].entries {
			if !r.hasContent {
				continue
			}
			s.log.segLive[r.loc.Seg] += r.loc.recordSize()
			if end := r.loc.Off + r.loc.recordSize(); end > maxEnd[r.loc.Seg] {
				maxEnd[r.loc.Seg] = end
			}
		}
	}

	if len(ids) == 0 {
		return nil // first segment is created on the first content append
	}
	active := uint32(ids[len(ids)-1])
	s.log.seg = s.segFDs.m[active]
	s.log.segID = active
	end := maxEnd[active]
	if end < fileHeaderSize {
		end = fileHeaderSize
	}
	switch size := sizes[active]; {
	case size > end:
		// Tail bytes past the last live record: dead records or a torn
		// append whose WAL record did not survive. Either way they are
		// unreferenced — reclaim them so new appends cannot collide.
		if err := s.log.seg.Truncate(end); err != nil {
			return fmt.Errorf("logstore: trim active segment: %w", err)
		}
		s.stats.TornTruncations.Add(1)
		s.log.segTotal[active] = end - fileHeaderSize
		s.log.segOff = end
	case size < end:
		// Referenced content is missing (the segment fsync lost the
		// race with the crash). The affected reads fail their CRC and
		// return metadata only; seal the segment so the lost range is
		// never overwritten with new records.
		s.stats.TornTruncations.Add(1)
		s.log.segOff = s.opts.SegmentTarget // forces rotation on next append
	default:
		s.log.segOff = size
	}
	return nil
}

// listNumbered returns the sorted numeric suffixes of dir entries named
// <prefix><number><suffix>.
func listNumbered(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logstore: list %s: %w", dir, err)
	}
	var out []uint64
	for _, de := range entries {
		name := de.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		n, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue // not ours
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
