// Package logstore implements a log-structured, concurrent-safe
// store.Backend: replica contents live in append-only segment files,
// metadata mutations append compact records to a write-ahead log, and
// periodic checkpoints bound recovery time. This replaces the
// snapshot-per-mutation DiskStore for durable deployments — an Add is
// one segment append plus one WAL append instead of an O(n) metadata
// rewrite.
//
// On-disk layout under the store directory (see DESIGN.md §10 for the
// full format diagram and recovery algorithm):
//
//	checkpoint.gob      gob snapshot of the metadata index + WAL seq
//	wal-<seq>.log       metadata write-ahead log (rotated at checkpoint)
//	seg-<id>.seg        append-only content segments
//
// Every WAL and segment record carries a CRC32C checksum and explicit
// length, so recovery can detect and truncate a torn tail, and reads
// never surface corrupt content.
package logstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"sort"

	"past/internal/cert"
	"past/internal/id"
	"past/internal/store"
)

// File-format constants. The magics version the format: readers reject
// files whose first 8 bytes differ.
const (
	walMagic = "PASTWAL1"
	segMagic = "PASTSEG1"

	// fileHeaderSize is the length of the magic prefix on both file kinds.
	fileHeaderSize = 8

	// recHeaderSize frames every WAL record: u32 payload length + u32
	// CRC32C of the payload, little-endian.
	recHeaderSize = 8

	// segRecHeaderSize frames every segment record: u32 content length +
	// u32 CRC32C of the content + the fileId, little-endian.
	segRecHeaderSize = 8 + id.FileBytes

	// maxRecordLen is a sanity bound on record payloads; a framed length
	// beyond it is treated as corruption, not an allocation request.
	maxRecordLen = 1 << 30
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recType enumerates the WAL record types.
type recType byte

const (
	recAdd recType = iota + 1 // store a replica (metadata + content location)
	recRemove
	recSetPointer
	recRemovePointer
	recRelocate // compaction moved a content record to a new location
)

func (t recType) String() string {
	switch t {
	case recAdd:
		return "add"
	case recRemove:
		return "remove"
	case recSetPointer:
		return "set-pointer"
	case recRemovePointer:
		return "remove-pointer"
	case recRelocate:
		return "relocate"
	default:
		return fmt.Sprintf("recType(%d)", byte(t))
	}
}

// location addresses one content record inside a segment file.
type location struct {
	Seg uint32 // segment id
	Off int64  // byte offset of the record header within the segment
	Len uint32 // content length
	CRC uint32 // CRC32C of the content
}

// recordSize returns the bytes the record occupies in its segment.
func (l location) recordSize() int64 { return segRecHeaderSize + int64(l.Len) }

// walRecord is one decoded WAL record.
type walRecord struct {
	typ  recType
	file id.File

	// recAdd fields.
	entry      store.Entry // metadata only; Content always nil
	hasContent bool

	// recAdd (when hasContent) and recRelocate.
	loc location

	// recSetPointer fields.
	ptr store.Pointer
}

// Add-record flag bits.
const (
	flagContent = 1 << 0
	flagCert    = 1 << 1
)

// encodeWALPayload renders a record's payload (everything after the
// length+CRC frame).
func encodeWALPayload(r walRecord) ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(r.typ))
	buf = append(buf, r.file[:]...)
	switch r.typ {
	case recAdd:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.entry.Size))
		buf = append(buf, byte(r.entry.Kind))
		buf = append(buf, r.entry.Owner[:]...)
		flags := byte(0)
		if r.hasContent {
			flags |= flagContent
		}
		var certBytes []byte
		if r.entry.Cert != nil {
			var cb bytes.Buffer
			if err := gob.NewEncoder(&cb).Encode(r.entry.Cert); err != nil {
				return nil, fmt.Errorf("logstore: encode cert: %w", err)
			}
			certBytes = cb.Bytes()
			flags |= flagCert
		}
		buf = append(buf, flags)
		if r.hasContent {
			buf = appendLocation(buf, r.loc)
		}
		if certBytes != nil {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(certBytes)))
			buf = append(buf, certBytes...)
		}
	case recRemove, recRemovePointer:
		// fileId only.
	case recSetPointer:
		buf = append(buf, r.ptr.Target[:]...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ptr.Size))
		buf = append(buf, byte(r.ptr.Role))
	case recRelocate:
		buf = appendLocation(buf, r.loc)
	default:
		return nil, fmt.Errorf("logstore: encode unknown record type %d", r.typ)
	}
	return buf, nil
}

func appendLocation(buf []byte, l location) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, l.Seg)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.Off))
	buf = binary.LittleEndian.AppendUint32(buf, l.Len)
	buf = binary.LittleEndian.AppendUint32(buf, l.CRC)
	return buf
}

// decodeWALPayload parses one payload back into a walRecord.
func decodeWALPayload(p []byte) (walRecord, error) {
	var r walRecord
	d := decoder{buf: p}
	r.typ = recType(d.u8())
	d.bytes(r.file[:])
	switch r.typ {
	case recAdd:
		r.entry.File = r.file
		r.entry.Size = int64(d.u64())
		r.entry.Kind = store.Kind(d.u8())
		d.bytes(r.entry.Owner[:])
		flags := d.u8()
		if flags&flagContent != 0 {
			r.hasContent = true
			r.loc = d.location()
		}
		if flags&flagCert != 0 {
			n := d.u32()
			if int64(n) > int64(len(d.buf))-int64(d.off) {
				return r, fmt.Errorf("logstore: cert length %d overruns record", n)
			}
			cb := make([]byte, n)
			d.bytes(cb)
			var fc cert.FileCertificate
			if err := gob.NewDecoder(bytes.NewReader(cb)).Decode(&fc); err != nil {
				return r, fmt.Errorf("logstore: decode cert: %w", err)
			}
			r.entry.Cert = &fc
		}
	case recRemove, recRemovePointer:
		// fileId only.
	case recSetPointer:
		r.ptr.File = r.file
		d.bytes(r.ptr.Target[:])
		r.ptr.Size = int64(d.u64())
		r.ptr.Role = store.PtrRole(d.u8())
	case recRelocate:
		r.loc = d.location()
	default:
		return r, fmt.Errorf("logstore: unknown record type %d", byte(r.typ))
	}
	if d.err != nil {
		return r, fmt.Errorf("logstore: short %s record: %w", r.typ, d.err)
	}
	return r, nil
}

// frameWALRecord wraps a payload in the [len][crc] frame.
func frameWALRecord(payload []byte) []byte {
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[recHeaderSize:], payload)
	return buf
}

// encodeSegRecord renders one content record: frame + fileId + content.
func encodeSegRecord(f id.File, content []byte) ([]byte, uint32) {
	crc := crc32.Checksum(content, castagnoli)
	buf := make([]byte, segRecHeaderSize+len(content))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(content)))
	binary.LittleEndian.PutUint32(buf[4:], crc)
	copy(buf[8:], f[:])
	copy(buf[segRecHeaderSize:], content)
	return buf, crc
}

// parseSegRecord splits a full segment record buffer (header included)
// into its fields. It validates only framing; the caller compares the
// CRC against the content.
func parseSegRecord(buf []byte) (clen, crc uint32, f id.File, content []byte, err error) {
	if len(buf) < segRecHeaderSize {
		return 0, 0, f, nil, fmt.Errorf("logstore: segment record shorter than header (%d bytes)", len(buf))
	}
	clen = binary.LittleEndian.Uint32(buf[0:])
	crc = binary.LittleEndian.Uint32(buf[4:])
	copy(f[:], buf[8:segRecHeaderSize])
	if int64(len(buf)-segRecHeaderSize) < int64(clen) {
		return clen, crc, f, nil, fmt.Errorf("logstore: segment record content truncated (want %d, have %d)", clen, len(buf)-segRecHeaderSize)
	}
	content = buf[segRecHeaderSize : segRecHeaderSize+int(clen)]
	return clen, crc, f, content, nil
}

// parseSegHeader decodes just the fixed header of a segment record,
// for scans that only need lengths and file ids (compaction).
func parseSegHeader(buf []byte) (clen, crc uint32, f id.File, err error) {
	if len(buf) < segRecHeaderSize {
		return 0, 0, f, fmt.Errorf("logstore: segment record shorter than header (%d bytes)", len(buf))
	}
	clen = binary.LittleEndian.Uint32(buf[0:])
	crc = binary.LittleEndian.Uint32(buf[4:])
	copy(f[:], buf[8:segRecHeaderSize])
	return clen, crc, f, nil
}

func crc32Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// sortEntries orders entries by fileId, matching the in-memory store's
// deterministic scan order.
func sortEntries(out []store.Entry) {
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].File[:], out[j].File[:]) < 0
	})
}

// sortPointers orders pointers by fileId.
func sortPointers(out []store.Pointer) {
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].File[:], out[j].File[:]) < 0
	})
}

// decoder is a bounds-checked little-endian reader. After a short read
// err is set and subsequent reads return zeros, so callers can decode
// straight-line and check err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) bytes(dst []byte) {
	b := d.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

func (d *decoder) location() location {
	return location{
		Seg: d.u32(),
		Off: int64(d.u64()),
		Len: d.u32(),
		CRC: d.u32(),
	}
}
