package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"past/internal/id"
	"past/internal/obs"
	"past/internal/store"
)

// SyncPolicy selects when WAL and segment appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways makes every mutation durable before it returns, with
	// group commit: concurrent committers share one fsync batch.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer (Options.SyncEvery); a crash loses
	// at most the last interval.
	SyncInterval
	// SyncNever leaves flushing to the OS (still fsynced at checkpoint
	// and clean Close). Matches DiskStore's durability, minus its cost.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "interval", or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("logstore: unknown sync policy %q (want always, interval, or never)", s)
	}
}

// Options configures a Store. The zero value of every field selects a
// sensible default; negative CheckpointBytes or CompactRatio disable
// the feature.
type Options struct {
	// Capacity is the advertised capacity in bytes. Required.
	Capacity int64
	// Sync is the durability policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 100ms).
	SyncEvery time.Duration
	// SegmentTarget seals the active segment once it exceeds this many
	// bytes (default 64MB).
	SegmentTarget int64
	// CheckpointBytes triggers a background checkpoint once that many
	// WAL bytes accumulate since the last one (default 4MB; negative
	// disables automatic checkpoints).
	CheckpointBytes int64
	// CompactRatio marks a sealed segment for compaction when its
	// live-bytes fraction falls below it (default 0.5; negative disables).
	CompactRatio float64
	// CompactEvery runs a background compaction scan on this period;
	// zero (the default) leaves compaction to explicit CompactOnce calls.
	CompactEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncEvery == 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentTarget == 0 {
		o.SegmentTarget = 64 << 20
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 4 << 20
	}
	if o.CompactRatio == 0 {
		o.CompactRatio = 0.5
	}
	return o
}

// nShards is the index shard count; reads lock one shard, so lookups
// proceed while a commit holds the log mutex.
const nShards = 16

// entryRec is one live replica in the index: its metadata plus, when
// content was stored, the segment location.
type entryRec struct {
	meta       store.Entry // Content always nil
	hasContent bool
	loc        location
}

type shard struct {
	mu       sync.RWMutex
	entries  map[id.File]*entryRec
	pointers map[id.File]store.Pointer
}

// Store is the log-structured storage engine. It implements
// store.Backend and, unlike the in-memory Store and DiskStore, is safe
// for concurrent use: reads take only a shard read-lock and a segment
// pread; mutations serialize on the log mutex but fsync outside it, so
// a slow group commit never blocks readers.
type Store struct {
	dir   string
	opts  Options
	stats Stats

	used  atomic.Int64
	count atomic.Int64

	shards [nShards]shard

	// log guards all mutations: WAL/segment appends, index writes, and
	// the accounting checks that must be atomic with them.
	log struct {
		sync.Mutex
		failed   error // sticky write-path failure; all mutations refuse
		wal      *os.File
		walSeq   uint64
		walOff   int64
		walSince int64 // WAL bytes since the last checkpoint
		seg      *os.File
		segID    uint32
		segOff   int64
		segLive  map[uint32]int64 // live record bytes per segment
		segTotal map[uint32]int64 // total record bytes per segment
	}

	// lsn counts appended WAL records; the group committer compares it
	// against the synced watermark.
	lsn atomic.Uint64

	// segFDs maps segment id -> open file. Readers hold the read lock
	// across their pread, so compaction cannot close a file mid-read.
	segFDs struct {
		sync.RWMutex
		m map[uint32]*os.File
	}

	// commit is the group-commit state: the first committer past the
	// synced watermark becomes the leader and fsyncs for everyone queued
	// behind it.
	commit struct {
		sync.Mutex
		cond    *sync.Cond
		synced  uint64
		syncing bool
		err     error
	}

	// syncMu serializes fsync batches against WAL rotation, so a leader
	// never fsyncs a file the checkpoint just closed.
	syncMu sync.Mutex

	// ckptMu serializes checkpoint bodies: the exported Checkpoint
	// path, automatic checkpoints, and the final one from Close. Two
	// interleaved checkpoints could otherwise race the snapshot rename
	// — the lower-WALSeq snapshot winning after the higher one already
	// deleted the WAL files below its seq, silently losing records on
	// the next recovery.
	ckptMu      sync.Mutex
	ckptRunning atomic.Bool
	closed      atomic.Bool
	stop        chan struct{}
	// bgMu makes the closed-check + bg.Add in kickCheckpoint atomic
	// against Close/Kill's closed-store + bg.Wait (a bare Add racing
	// Wait is WaitGroup misuse).
	bgMu sync.Mutex
	bg   sync.WaitGroup
}

var (
	_ store.Backend     = (*Store)(nil)
	_ obs.CounterSource = (*Store)(nil)
)

// errClosed is returned by mutations on a closed store.
var errClosed = fmt.Errorf("logstore: store is closed")

func (s *Store) shardOf(f id.File) *shard { return &s.shards[f[0]%nShards] }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the engine's live counters.
func (s *Store) Stats() *Stats { return &s.stats }

// ObsCounters implements obs.CounterSource: the engine counters plus
// the live segment-count gauge.
func (s *Store) ObsCounters() map[string]int64 {
	m := s.stats.Counters()
	s.segFDs.RLock()
	m[obs.CtrSegments] = int64(len(s.segFDs.m))
	s.segFDs.RUnlock()
	return m
}

// Accounting. Reads are atomic loads; the writes happen under the log
// mutex, atomically with the WAL append that justifies them.

func (s *Store) Capacity() int64 { return s.opts.Capacity }
func (s *Store) Used() int64     { return s.used.Load() }
func (s *Store) Free() int64     { return s.opts.Capacity - s.used.Load() }
func (s *Store) Len() int        { return int(s.count.Load()) }

// Utilization returns Used/Capacity in [0, 1].
func (s *Store) Utilization() float64 {
	if s.opts.Capacity == 0 {
		return 0
	}
	return float64(s.used.Load()) / float64(s.opts.Capacity)
}

// CanAccept applies the SD/FN acceptance policy (same rules as the
// in-memory store).
func (s *Store) CanAccept(size int64, t float64) bool {
	if size == 0 {
		return true
	}
	if size < 0 {
		return false
	}
	free := s.Free()
	if free <= 0 {
		return false
	}
	return float64(size)/float64(free) <= t
}

// Add stores a replica: content appended to the active segment, one
// WAL record, index insert, then (under SyncAlways) a group commit.
// If the commit fsync fails the error is returned but the entry may
// remain visible (see waitDurable); the store then refuses all
// further mutations.
func (s *Store) Add(e store.Entry) error {
	if s.closed.Load() {
		return errClosed
	}
	content := e.Content
	e.Content = nil

	s.log.Lock()
	if err := s.log.failed; err != nil {
		s.log.Unlock()
		return err
	}
	sh := s.shardOf(e.File)
	if _, dup := sh.entries[e.File]; dup {
		s.log.Unlock()
		return fmt.Errorf("logstore: %s already held", e.File.Short())
	}
	if e.Size < 0 {
		s.log.Unlock()
		return fmt.Errorf("logstore: negative size %d", e.Size)
	}
	if free := s.opts.Capacity - s.used.Load(); e.Size > free {
		s.log.Unlock()
		return fmt.Errorf("logstore: %s needs %d bytes, only %d free", e.File.Short(), e.Size, free)
	}

	rec := walRecord{typ: recAdd, file: e.File, entry: e}
	if content != nil {
		loc, err := s.appendSegmentLocked(e.File, content)
		if err != nil {
			s.log.Unlock()
			return err
		}
		rec.hasContent = true
		rec.loc = loc
	}
	lsn, err := s.appendWALLocked(rec)
	if err != nil {
		s.log.Unlock()
		return err
	}

	r := &entryRec{meta: e, hasContent: rec.hasContent, loc: rec.loc}
	sh.mu.Lock()
	sh.entries[e.File] = r
	sh.mu.Unlock()
	s.used.Add(e.Size)
	s.count.Add(1)
	if rec.hasContent {
		s.log.segLive[rec.loc.Seg] += rec.loc.recordSize()
	}
	ckpt := s.checkpointDueLocked()
	s.log.Unlock()

	if ckpt {
		s.kickCheckpoint()
	}
	return s.waitDurable(lsn)
}

// Get returns the entry, reading and CRC-verifying content from its
// segment. Content that fails verification is withheld (the entry is
// still returned), so a torn write can never surface corrupt bytes.
func (s *Store) Get(f id.File) (store.Entry, bool) {
	sh := s.shardOf(f)
	sh.mu.RLock()
	r, ok := sh.entries[f]
	if !ok {
		sh.mu.RUnlock()
		return store.Entry{}, false
	}
	e := r.meta
	hasContent, loc := r.hasContent, r.loc
	sh.mu.RUnlock()

	if !hasContent {
		return e, true
	}
	// Retry once if the read raced a compaction that moved the record:
	// the re-fetched location then points into the new segment.
	for attempt := 0; attempt < 2; attempt++ {
		if content, ok := s.readContent(f, loc); ok {
			e.Content = content
			return e, true
		}
		sh.mu.RLock()
		r, stillThere := sh.entries[f]
		if !stillThere {
			sh.mu.RUnlock()
			return store.Entry{}, false
		}
		moved := r.loc != loc
		loc = r.loc
		sh.mu.RUnlock()
		if !moved {
			break
		}
	}
	return e, true // content lost or corrupt; metadata survives
}

// readContent preads one content record and verifies frame and CRC.
// The segFDs read lock is held across the pread so compaction cannot
// delete the file underneath it.
func (s *Store) readContent(f id.File, loc location) ([]byte, bool) {
	s.segFDs.RLock()
	fd := s.segFDs.m[loc.Seg]
	if fd == nil {
		s.segFDs.RUnlock()
		return nil, false
	}
	buf := make([]byte, loc.recordSize())
	_, err := fd.ReadAt(buf, loc.Off)
	s.segFDs.RUnlock()
	if err != nil {
		s.stats.ChecksumFailures.Add(1)
		return nil, false
	}
	clen, crc, rf, content, perr := parseSegRecord(buf)
	if perr != nil || rf != f || clen != loc.Len || crc != loc.CRC || crc32Checksum(content) != crc {
		s.stats.ChecksumFailures.Add(1)
		return nil, false
	}
	return content, true
}

// Remove discards the replica of f. The content record stays in its
// segment as dead bytes until compaction reclaims it.
func (s *Store) Remove(f id.File) (store.Entry, bool) {
	if s.closed.Load() {
		return store.Entry{}, false
	}
	s.log.Lock()
	if s.log.failed != nil {
		s.log.Unlock()
		return store.Entry{}, false
	}
	sh := s.shardOf(f)
	r, ok := sh.entries[f]
	if !ok {
		s.log.Unlock()
		return store.Entry{}, false
	}
	lsn, err := s.appendWALLocked(walRecord{typ: recRemove, file: f})
	if err != nil {
		s.log.Unlock()
		return store.Entry{}, false
	}
	sh.mu.Lock()
	delete(sh.entries, f)
	sh.mu.Unlock()
	s.used.Add(-r.meta.Size)
	s.count.Add(-1)
	if r.hasContent {
		s.log.segLive[r.loc.Seg] -= r.loc.recordSize()
	}
	s.log.Unlock()
	_ = s.waitDurable(lsn)
	return r.meta, true
}

// SetPointer records and persists a diverted-replica reference.
func (s *Store) SetPointer(p store.Pointer) {
	if s.closed.Load() {
		return
	}
	s.log.Lock()
	if s.log.failed != nil {
		s.log.Unlock()
		return
	}
	lsn, err := s.appendWALLocked(walRecord{typ: recSetPointer, file: p.File, ptr: p})
	if err != nil {
		s.log.Unlock()
		return
	}
	sh := s.shardOf(p.File)
	sh.mu.Lock()
	sh.pointers[p.File] = p
	sh.mu.Unlock()
	s.log.Unlock()
	_ = s.waitDurable(lsn)
}

// GetPointer returns the pointer entry for f.
func (s *Store) GetPointer(f id.File) (store.Pointer, bool) {
	sh := s.shardOf(f)
	sh.mu.RLock()
	p, ok := sh.pointers[f]
	sh.mu.RUnlock()
	return p, ok
}

// RemovePointer deletes the pointer entry for f.
func (s *Store) RemovePointer(f id.File) (store.Pointer, bool) {
	if s.closed.Load() {
		return store.Pointer{}, false
	}
	s.log.Lock()
	if s.log.failed != nil {
		s.log.Unlock()
		return store.Pointer{}, false
	}
	sh := s.shardOf(f)
	p, ok := sh.pointers[f]
	if !ok {
		s.log.Unlock()
		return store.Pointer{}, false
	}
	lsn, err := s.appendWALLocked(walRecord{typ: recRemovePointer, file: f})
	if err != nil {
		s.log.Unlock()
		return store.Pointer{}, false
	}
	sh.mu.Lock()
	delete(sh.pointers, f)
	sh.mu.Unlock()
	s.log.Unlock()
	_ = s.waitDurable(lsn)
	return p, true
}

// Entries returns all replica entries ordered by fileId (metadata only;
// use Get for content, as with DiskStore).
func (s *Store) Entries() []store.Entry {
	var out []store.Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, r := range sh.entries {
			out = append(out, r.meta)
		}
		sh.mu.RUnlock()
	}
	sortEntries(out)
	return out
}

// Pointers returns all pointer entries ordered by fileId.
func (s *Store) Pointers() []store.Pointer {
	var out []store.Pointer
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, p := range sh.pointers {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	sortPointers(out)
	return out
}

// appendSegmentLocked appends one content record to the active segment,
// rotating first if the target size is exceeded. Caller holds s.log.
func (s *Store) appendSegmentLocked(f id.File, content []byte) (location, error) {
	if s.log.seg == nil || s.log.segOff >= s.opts.SegmentTarget {
		if err := s.rotateSegmentLocked(); err != nil {
			return location{}, err
		}
	}
	buf, crc := encodeSegRecord(f, content)
	if _, err := s.log.seg.WriteAt(buf, s.log.segOff); err != nil {
		s.log.failed = fmt.Errorf("logstore: segment append: %w", err)
		return location{}, s.log.failed
	}
	loc := location{Seg: s.log.segID, Off: s.log.segOff, Len: uint32(len(content)), CRC: crc}
	s.log.segOff += int64(len(buf))
	s.log.segTotal[s.log.segID] += int64(len(buf))
	return loc, nil
}

// rotateSegmentLocked seals the active segment and opens the next. The
// outgoing segment is fsynced before the swap: fsyncFiles and
// checkpoint only ever sync the *active* segment, so without this a
// record appended just before rotation would be acknowledged durable
// (its WAL record fsyncs) while the sealed file holding its content
// never reached disk. Sealing keeps the invariant that every sealed
// segment is fully durable.
func (s *Store) rotateSegmentLocked() error {
	if s.log.seg != nil {
		if err := s.log.seg.Sync(); err != nil {
			// Content already acknowledged durable may not be on disk;
			// the store can no longer honor its guarantees.
			s.log.failed = fmt.Errorf("logstore: seal segment %d: %w", s.log.segID, err)
			return s.log.failed
		}
		s.stats.Fsyncs.Add(1)
	}
	nid := s.log.segID + 1
	f, err := createLogFile(segPath(s.dir, nid), segMagic)
	if err != nil {
		return fmt.Errorf("logstore: new segment: %w", err)
	}
	// The new file's directory entry must be durable before any WAL
	// record referencing it is acknowledged.
	syncDir(s.dir)
	s.log.seg = f
	s.log.segID = nid
	s.log.segOff = fileHeaderSize
	s.segFDs.Lock()
	s.segFDs.m[nid] = f
	s.segFDs.Unlock()
	s.stats.SegRotations.Add(1)
	return nil
}

// appendWALLocked frames and appends one record, returning its LSN.
// A partial write is rolled back by truncation; if even that fails the
// store is marked failed (the log tail would be garbage).
func (s *Store) appendWALLocked(r walRecord) (uint64, error) {
	payload, err := encodeWALPayload(r)
	if err != nil {
		return 0, err
	}
	buf := frameWALRecord(payload)
	if _, err := s.log.wal.WriteAt(buf, s.log.walOff); err != nil {
		if terr := s.log.wal.Truncate(s.log.walOff); terr != nil {
			s.log.failed = fmt.Errorf("logstore: WAL append failed and truncate failed (%v): %w", terr, err)
			return 0, s.log.failed
		}
		return 0, fmt.Errorf("logstore: WAL append: %w", err)
	}
	s.log.walOff += int64(len(buf))
	s.log.walSince += int64(len(buf))
	s.stats.WALAppends.Add(1)
	s.stats.WALBytes.Add(int64(len(buf)))
	return s.lsn.Add(1), nil
}

// checkpointDueLocked reports whether the auto-checkpoint threshold has
// been crossed. Caller holds s.log.
func (s *Store) checkpointDueLocked() bool {
	return s.opts.CheckpointBytes > 0 && s.log.walSince >= s.opts.CheckpointBytes
}

// waitDurable blocks (under SyncAlways) until the record at lsn is
// fsynced, batching with every other committer in flight: the first
// waiter past the watermark fsyncs once for all of them.
//
// On fsync failure the store is marked failed (all future mutations
// refuse at the front door) and the error is returned. The caller's
// mutation was already applied to the index before waiting, so an
// errored Add/Remove may still be visible on the (now read-only)
// store — the index is not rolled back, matching what a crash-reopen
// could surface if the appends did in fact reach disk.
func (s *Store) waitDurable(lsn uint64) error {
	if s.opts.Sync != SyncAlways {
		return nil
	}
	c := &s.commit
	c.Lock()
	defer c.Unlock()
	for c.synced < lsn {
		if c.err != nil {
			return c.err
		}
		if c.syncing {
			c.cond.Wait()
			continue
		}
		c.syncing = true
		c.Unlock()
		target := s.lsn.Load() // records appended so far are covered
		err := s.fsyncFiles()
		if err != nil {
			// Durability of acknowledged data is now unknown; wedge the
			// write path consistently (not just this commit group).
			s.log.Lock()
			if s.log.failed == nil {
				s.log.failed = err
			}
			s.log.Unlock()
		}
		c.Lock()
		c.syncing = false
		if err != nil {
			c.err = err
			c.cond.Broadcast()
			return err
		}
		if target > c.synced {
			c.synced = target
		}
		c.cond.Broadcast()
	}
	return nil
}

// fsyncFiles syncs the active segment, then the WAL — in that order, so
// the WAL is never durable ahead of content it references. syncMu
// excludes WAL rotation for the duration.
func (s *Store) fsyncFiles() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.log.Lock()
	wal, seg := s.log.wal, s.log.seg
	s.log.Unlock()
	if seg != nil {
		if err := seg.Sync(); err != nil {
			return fmt.Errorf("logstore: fsync segment: %w", err)
		}
	}
	if err := wal.Sync(); err != nil {
		return fmt.Errorf("logstore: fsync WAL: %w", err)
	}
	s.stats.Fsyncs.Add(1)
	return nil
}

// Sync forces an fsync of the active segment and WAL regardless of
// policy.
func (s *Store) Sync() error { return s.fsyncFiles() }

// kickCheckpoint starts an asynchronous checkpoint unless one is
// already running. bgMu keeps the closed-check and bg.Add atomic: any
// kick that wins the lock before Close marks the store closed is
// covered by Close's bg.Wait; any kick after sees closed and backs off.
func (s *Store) kickCheckpoint() {
	if s.ckptRunning.Load() {
		return
	}
	s.bgMu.Lock()
	if s.closed.Load() {
		s.bgMu.Unlock()
		return
	}
	s.bg.Add(1)
	s.bgMu.Unlock()
	go func() {
		defer s.bg.Done()
		_ = s.Checkpoint()
	}()
}

// Close checkpoints (making the next open replay-free), syncs, and
// closes every file. Safe to call twice.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.bgMu.Lock() // flush any kickCheckpoint that raced the closed flag
	s.bgMu.Unlock()
	s.bg.Wait()
	err := s.checkpoint()
	s.closeFiles()
	return err
}

// WALOffset returns the append offset in the active WAL file: the
// durability horizon of the last mutation. Crash-test instrumentation.
func (s *Store) WALOffset() int64 {
	s.log.Lock()
	defer s.log.Unlock()
	return s.log.walOff
}

// WALFile returns the active WAL file's path and valid length, so a
// crash harness can truncate it after Kill. Crash-test instrumentation.
func (s *Store) WALFile() (string, int64) {
	s.log.Lock()
	defer s.log.Unlock()
	return walPath(s.dir, s.log.walSeq), s.log.walOff
}

// Kill abandons the store without syncing or checkpointing — the
// crash-testing hook. On-disk state is whatever the OS was handed;
// reopening exercises the recovery path.
func (s *Store) Kill() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.stop)
	s.bgMu.Lock() // flush any kickCheckpoint that raced the closed flag
	s.bgMu.Unlock()
	s.bg.Wait()
	s.closeFiles()
}

func (s *Store) closeFiles() {
	s.log.Lock()
	if s.log.wal != nil {
		s.log.wal.Close()
	}
	s.log.Unlock()
	s.segFDs.Lock()
	for _, f := range s.segFDs.m {
		f.Close()
	}
	s.segFDs.m = make(map[uint32]*os.File)
	s.segFDs.Unlock()
}

// background runs the interval-sync and periodic-compaction loops.
func (s *Store) background() {
	defer s.bg.Done()
	var syncC, compactC <-chan time.Time
	if s.opts.Sync == SyncInterval {
		t := time.NewTicker(s.opts.SyncEvery)
		defer t.Stop()
		syncC = t.C
	}
	if s.opts.CompactEvery > 0 {
		t := time.NewTicker(s.opts.CompactEvery)
		defer t.Stop()
		compactC = t.C
	}
	if syncC == nil && compactC == nil {
		return
	}
	for {
		select {
		case <-s.stop:
			return
		case <-syncC:
			_ = s.fsyncFiles()
		case <-compactC:
			for {
				did, err := s.CompactOnce()
				if !did || err != nil {
					break
				}
			}
		}
	}
}

// Path helpers.

func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

func segPath(dir string, seg uint32) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%08d.seg", seg))
}

func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint.gob") }

// createLogFile creates a fresh file with the given magic header.
func createLogFile(path, magic string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt([]byte(magic), 0); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Errors are ignored on filesystems that reject directory
// fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
